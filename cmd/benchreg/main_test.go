package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

const capturedBench = `pkg: repro/internal/core
cpu: Test CPU
BenchmarkScanBatch-4 	 2 	 500000000 ns/op	 1000 B/op	 10 allocs/op
BenchmarkParseFlow-4 	 50 	 10000000 ns/op	 500 B/op	 5 allocs/op
PASS
`

func writeInput(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFromInputWritesBaseline(t *testing.T) {
	input := writeInput(t, capturedBench)
	out := filepath.Join(t.TempDir(), "BENCH.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"run", "-input", input, "-out", out, "-note", "unit test"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var f benchfmt.File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.Schema != benchfmt.Schema || f.CreatedUnix == 0 || f.GoVersion == "" {
		t.Fatalf("baseline metadata incomplete: %+v", f)
	}
	if f.CPU != "Test CPU" || f.Note != "unit test" {
		t.Fatalf("provenance lost: %+v", f)
	}
	if len(f.Results) != 2 {
		t.Fatalf("results = %+v, want 2", f.Results)
	}
	r, ok := f.Lookup("repro/internal/core.BenchmarkScanBatch")
	if !ok || r.NsPerOp != 500000000 {
		t.Fatalf("Lookup = %+v, %v", r, ok)
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	input := writeInput(t, capturedBench)
	out := filepath.Join(t.TempDir(), "BENCH.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"run", "-input", input, "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("run exit = %d: %s", code, stderr.String())
	}
	// A +10% drift stays under the 15% gate.
	drifted := strings.ReplaceAll(capturedBench, "500000000", "550000000")
	stdout.Reset()
	code := run([]string{"compare", "-baseline", out, "-input", writeInput(t, drifted)}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("compare exit = %d, stdout:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "ok: no benchmark regressions") {
		t.Fatalf("missing ok line:\n%s", stdout.String())
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	input := writeInput(t, capturedBench)
	out := filepath.Join(t.TempDir(), "BENCH.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"run", "-input", input, "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("run exit = %d: %s", code, stderr.String())
	}
	// +40% on ScanBatch must trip the default 15% gate with exit 2.
	regressed := strings.ReplaceAll(capturedBench, "500000000", "700000000")
	stdout.Reset()
	code := run([]string{"compare", "-baseline", out, "-input", writeInput(t, regressed)}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("compare exit = %d, want 2, stdout:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "REGRESSED") || !strings.Contains(stdout.String(), "FAIL") {
		t.Fatalf("regression not reported:\n%s", stdout.String())
	}
	// A looser gate lets the same drift through.
	stdout.Reset()
	code = run([]string{"compare", "-baseline", out, "-tolerance", "0.5", "-input", writeInput(t, regressed)}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("compare -tolerance 0.5 exit = %d, stdout:\n%s", code, stdout.String())
	}
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	input := writeInput(t, capturedBench)
	out := filepath.Join(t.TempDir(), "BENCH.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"run", "-input", input, "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("run exit = %d: %s", code, stderr.String())
	}
	// Timing unchanged, allocs/op +100% on ScanBatch: the memory gate alone
	// must flag the run.
	regressed := strings.ReplaceAll(capturedBench, " 10 allocs/op", " 20 allocs/op")
	stdout.Reset()
	code := run([]string{"compare", "-baseline", out, "-input", writeInput(t, regressed)}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("compare exit = %d, want 2, stdout:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "REGRESSED (allocs/op)") {
		t.Fatalf("alloc regression not attributed to its column:\n%s", stdout.String())
	}
	// -alloc-tolerance -1 disables memory gating; timing is clean, so the
	// same drift passes.
	stdout.Reset()
	code = run([]string{"compare", "-baseline", out, "-alloc-tolerance", "-1", "-input", writeInput(t, regressed)}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("compare -alloc-tolerance -1 exit = %d, stdout:\n%s", code, stdout.String())
	}
}

func TestDiffSubcommand(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "old.json")
	newer := filepath.Join(dir, "new.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"run", "-input", writeInput(t, capturedBench), "-out", old}, &stdout, &stderr); code != 0 {
		t.Fatal(stderr.String())
	}
	faster := strings.ReplaceAll(capturedBench, "500000000", "300000000")
	if code := run([]string{"run", "-input", writeInput(t, faster), "-out", newer}, &stdout, &stderr); code != 0 {
		t.Fatal(stderr.String())
	}
	stdout.Reset()
	if code := run([]string{"diff", old, newer}, &stdout, &stderr); code != 0 {
		t.Fatalf("diff exit = %d:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "improved") {
		t.Fatalf("improvement not reported:\n%s", stdout.String())
	}
}

func TestErrorPaths(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown subcommand: exit %d, want 2", code)
	}
	if code := run([]string{"run", "-input", "x"}, &stdout, &stderr); code != 2 {
		t.Errorf("run without -out: exit %d, want 2", code)
	}
	if code := run([]string{"run", "-input", "/no/such/file", "-out", filepath.Join(t.TempDir(), "o.json")}, &stdout, &stderr); code != 1 {
		t.Errorf("run with missing input: exit %d, want 1", code)
	}
	if code := run([]string{"compare", "-input", "x"}, &stdout, &stderr); code != 2 {
		t.Errorf("compare without -baseline: exit %d, want 2", code)
	}
	if code := run([]string{"diff", "only-one.json"}, &stdout, &stderr); code != 2 {
		t.Errorf("diff with one file: exit %d, want 2", code)
	}
	// Empty parse output is an error, not an empty baseline.
	empty := writeInput(t, "PASS\nok 	 pkg 	 0.1s\n")
	if code := run([]string{"run", "-input", empty, "-out", filepath.Join(t.TempDir(), "o.json")}, &stdout, &stderr); code != 1 {
		t.Errorf("run with no parsed results: exit %d, want 1", code)
	}
	// Baseline with the wrong schema is rejected.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9","results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"compare", "-baseline", bad, "-input", writeInput(t, capturedBench)}, &stdout, &stderr); code != 1 {
		t.Errorf("bad schema: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "schema") {
		t.Errorf("schema error not attributed: %s", stderr.String())
	}
	if code := run([]string{"help"}, &stdout, &stderr); code != 0 {
		t.Errorf("help: exit %d, want 0", code)
	}
}
