// Command benchreg runs the repo's benchmark suite and gates it against a
// checked-in baseline.
//
//	benchreg run -out BENCH_4.json [-bench .] [-count 3] [-note "..."] ./pkg...
//	benchreg run -input bench.txt -out BENCH_4.json
//	benchreg compare -baseline BENCH_4.json [-tolerance 0.15] [-alloc-tolerance 0.10] -input bench.txt
//	benchreg compare -baseline BENCH_4.json [-bench .] ./pkg...
//	benchreg diff old.json new.json [-tolerance 0.15] [-alloc-tolerance 0.10]
//
// run executes `go test -run '^$' -bench <pat> -benchmem` over the named
// packages (or parses a pre-captured output file with -input), aggregates
// repeated runs, and writes a schema'd baseline JSON. compare produces a
// fresh measurement the same way and diffs it against the baseline with a
// relative tolerance on ns/op plus a separate, tighter tolerance on the
// allocs/op and B/op columns (allocation counts are near-deterministic, so
// memory regressions are gated harder than timing; -alloc-tolerance -1
// turns memory gating off); any benchmark beyond either tolerance exits
// with status 2 so scripts/bench.sh and scripts/check.sh can fail the gate.
// diff compares two baseline files directly.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"time"

	"repro/internal/benchfmt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "compare":
		return cmdCompare(args[1:], stdout, stderr)
	case "diff":
		return cmdDiff(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "benchreg: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  benchreg run -out FILE [-bench PAT] [-count N] [-note S] [-input TXT] [pkg...]
  benchreg compare -baseline FILE [-tolerance F] [-alloc-tolerance F] [-bench PAT] [-count N] [-input TXT] [pkg...]
  benchreg diff OLD.json NEW.json [-tolerance F] [-alloc-tolerance F]
`)
}

// measureFlags are the knobs shared by run and compare for producing a
// fresh set of results.
type measureFlags struct {
	bench string
	count int
	input string
}

func addMeasureFlags(fs *flag.FlagSet, m *measureFlags) {
	fs.StringVar(&m.bench, "bench", ".", "benchmark pattern passed to go test -bench")
	fs.IntVar(&m.count, "count", 1, "benchmark repetitions (go test -count)")
	fs.StringVar(&m.input, "input", "", "parse pre-captured `go test -bench` output from this file instead of running go test")
}

// measure produces benchmark results either by parsing a captured output
// file or by shelling out to go test over the given packages.
func measure(m measureFlags, pkgs []string, stderr io.Writer) ([]benchfmt.Result, string, error) {
	if m.input != "" {
		f, err := os.Open(m.input)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		return benchfmt.ParseOutput(f)
	}
	if len(pkgs) == 0 {
		return nil, "", fmt.Errorf("no packages given and no -input file")
	}
	args := []string{"test", "-run", "^$", "-bench", m.bench, "-benchmem",
		fmt.Sprintf("-count=%d", m.count)}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	var out bytes.Buffer
	// go test interleaves benchmark lines and failures on stdout; tee the
	// raw stream to stderr so a long run shows progress.
	cmd.Stdout = io.MultiWriter(&out, stderr)
	cmd.Stderr = stderr
	if err := cmd.Run(); err != nil {
		return nil, "", fmt.Errorf("go test -bench: %w", err)
	}
	return benchfmt.ParseOutput(&out)
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchreg run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		m    measureFlags
		out  = fs.String("out", "", "baseline JSON file to write (required)")
		note = fs.String("note", "", "free-form provenance recorded in the baseline")
	)
	addMeasureFlags(fs, &m)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *out == "" {
		fmt.Fprintln(stderr, "benchreg run: -out is required")
		return 2
	}
	results, cpu, err := measure(m, fs.Args(), stderr)
	if err != nil {
		fmt.Fprintf(stderr, "benchreg run: %v\n", err)
		return 1
	}
	if len(results) == 0 {
		fmt.Fprintln(stderr, "benchreg run: no benchmark results parsed")
		return 1
	}
	file := benchfmt.File{
		Schema:      benchfmt.Schema,
		CreatedUnix: time.Now().Unix(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPU:         cpu,
		Note:        *note,
		Results:     results,
	}
	if err := writeBaseline(*out, &file); err != nil {
		fmt.Fprintf(stderr, "benchreg run: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s: %d benchmarks\n", *out, len(results))
	return 0
}

func cmdCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchreg compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		m         measureFlags
		baseline  = fs.String("baseline", "", "baseline JSON file to compare against (required)")
		tolerance = fs.Float64("tolerance", 0.15, "relative ns/op tolerance before a benchmark counts as regressed")
		allocTol  = fs.Float64("alloc-tolerance", 0.10, "relative allocs/op and B/op tolerance (-1 disables memory gating)")
	)
	addMeasureFlags(fs, &m)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baseline == "" {
		fmt.Fprintln(stderr, "benchreg compare: -baseline is required")
		return 2
	}
	base, err := readBaseline(*baseline)
	if err != nil {
		fmt.Fprintf(stderr, "benchreg compare: %v\n", err)
		return 1
	}
	current, _, err := measure(m, fs.Args(), stderr)
	if err != nil {
		fmt.Fprintf(stderr, "benchreg compare: %v\n", err)
		return 1
	}
	return report(base.Results, current, *tolerance, *allocTol, stdout)
}

func cmdDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchreg diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tolerance := fs.Float64("tolerance", 0.15, "relative ns/op tolerance before a benchmark counts as regressed")
	allocTol := fs.Float64("alloc-tolerance", 0.10, "relative allocs/op and B/op tolerance (-1 disables memory gating)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "benchreg diff: want exactly two baseline files")
		return 2
	}
	old, err := readBaseline(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchreg diff: %v\n", err)
		return 1
	}
	new, err := readBaseline(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchreg diff: %v\n", err)
		return 1
	}
	return report(old.Results, new.Results, *tolerance, *allocTol, stdout)
}

// report renders the diff and maps it to an exit code: 0 clean, 2 regressed.
func report(baseline, current []benchfmt.Result, tolerance, allocTolerance float64, stdout io.Writer) int {
	deltas := benchfmt.Compare(baseline, current, tolerance, allocTolerance)
	benchfmt.WriteDiff(stdout, deltas, tolerance, allocTolerance)
	if benchfmt.AnyRegressed(deltas) {
		fmt.Fprintln(stdout, "FAIL: benchmark regression beyond tolerance")
		return 2
	}
	fmt.Fprintln(stdout, "ok: no benchmark regressions beyond tolerance")
	return 0
}

func readBaseline(path string) (*benchfmt.File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchfmt.File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != benchfmt.Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, benchfmt.Schema)
	}
	return &f, nil
}

func writeBaseline(path string, f *benchfmt.File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
