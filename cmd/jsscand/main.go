// Command jsscand is the long-running scan service: the jsdetect pipeline
// behind an HTTP/JSON API, with models loaded once at startup instead of
// once per invocation.
//
// Usage:
//
//	jsscand -models models/ -addr :8329
//	curl -X POST --data-binary @file.js localhost:8329/v1/scan
//	curl -X POST -H 'Content-Type: application/json' \
//	     -d '{"files":[{"path":"a.js","source":"var x = 1;"}]}' \
//	     localhost:8329/v1/scan
//	curl localhost:8329/healthz
//	curl localhost:8329/admin/metrics
//
// The daemon classifies every submission with the batch scan engine: a
// worker pool (-concurrent) over a bounded job queue (-queue) that rejects
// with 429 + Retry-After under saturation, a per-request scan budget
// (-timeout), a request-size limit (-max-bytes), and the content-hash dedup
// LRU (-dedup) shared across all requests. -triage enables the stage-0
// cascade (high-confidence regular/minified submissions skip the full
// pipeline), and -store dir/ persists verdicts on disk so a redeployed
// daemon answers repeat content without rescanning — responses are identical
// across the restart; store traffic shows on /admin/metrics.
// SIGINT/SIGTERM trigger a graceful drain: the listener stops accepting,
// queued and in-flight scans finish (bounded by -grace), and the final
// metrics line is flushed.
//
// Models come from the trainer command; v2 model files embed the feature
// fingerprint they were trained with, and startup fails loudly on mismatch.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stderr))
}

func run(ctx context.Context, args []string, stderr io.Writer) int {
	flags := flag.NewFlagSet("jsscand", flag.ContinueOnError)
	flags.SetOutput(stderr)
	addr := flags.String("addr", "localhost:8329", "HTTP listen address")
	models := flags.String("models", "models", "directory containing level1.model and level2.model")
	dims := flags.Int("dims", 1024, "hashed 4-gram dimensions (must match training)")
	workers := flags.Int("workers", 0, "scan worker pool size per job (0 = GOMAXPROCS)")
	concurrent := flags.Int("concurrent", 0, "scan jobs processed at once (0 = GOMAXPROCS)")
	queue := flags.Int("queue", service.DefaultQueueSize, "job queue bound; beyond it requests get 429")
	timeout := flags.Duration("timeout", service.DefaultRequestTimeout, "per-request scan budget")
	maxBytes := flags.Int64("max-bytes", service.DefaultMaxRequestBytes, "request body size limit")
	grace := flags.Duration("grace", 30*time.Second, "shutdown drain budget")
	dedup := flags.Bool("dedup", true, "share the content-hash verdict cache across requests")
	dedupCap := flags.Int("dedup-cap", core.DefaultDedupCapacity, "distinct contents the dedup cache retains")
	triage := flags.Bool("triage", false, "route high-confidence regular/minified files around the full pipeline")
	storeDir := flags.String("store", "", "persist verdicts to this directory so repeat content survives restarts")
	explain := flags.Bool("explain", false, "run the static indicator rules so requests can ask for diagnostics")
	fullProbs := flags.Bool("full-probs", true, "rank all techniques for every file, not only transformed ones")
	pprofAddr := flags.String("pprof", "", "serve net/http/pprof on this address for the daemon's lifetime")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	// The registry is on for the daemon's lifetime: the admin endpoint is
	// the service's metrics surface, so unlike the one-shot CLI there is no
	// scoped measurement window to manage.
	obs.Enable()

	logger := log.New(stderr, "jsscand: ", log.LstdFlags|log.Lmsgprefix)

	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(stderr, "jsscand: -pprof: %v\n", err)
			return 1
		}
		logger.Printf("event=pprof addr=http://%s/debug/pprof/", ln.Addr())
		stopPprof := service.StartHTTP(ln, nil)
		defer stopPprof()
	}

	// Models load exactly once, before the listener opens: a daemon that
	// would misclassify every request (wrong -dims, swapped level files) must
	// die here, loudly, not serve garbage.
	featOpts := features.Options{NGramDims: *dims}
	l1, err := core.LoadLevelFile(filepath.Join(*models, "level1.model"), featOpts, core.Level1Labels)
	if err != nil {
		fmt.Fprintf(stderr, "jsscand: load level 1: %v\n", err)
		return 1
	}
	l2, err := core.LoadLevelFile(filepath.Join(*models, "level2.model"), featOpts, core.Level2Labels())
	if err != nil {
		fmt.Fprintf(stderr, "jsscand: load level 2: %v\n", err)
		return 1
	}
	scanOpts := core.ScanOptions{
		Workers:       *workers,
		Explain:       *explain,
		ForceLevel2:   *fullProbs,
		Dedup:         *dedup,
		DedupCapacity: *dedupCap,
		Triage:        *triage,
	}
	if *storeDir != "" {
		vs, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(stderr, "jsscand: -store: %v\n", err)
			return 1
		}
		defer func() {
			if err := vs.Close(); err != nil {
				fmt.Fprintf(stderr, "jsscand: close store: %v\n", err)
			}
		}()
		st := vs.Stats()
		logger.Printf("event=store dir=%s entries=%d recovered=%d dropped_bytes=%d",
			*storeDir, st.Entries, st.Recovered, st.DroppedBytes)
		scanOpts.VerdictStore = vs
	}
	scanner, err := core.NewScanner(l1, l2, scanOpts)
	if err != nil {
		fmt.Fprintf(stderr, "jsscand: %v\n", err)
		return 1
	}

	srv := service.New(scanner, service.Config{
		Concurrency:     *concurrent,
		QueueSize:       *queue,
		MaxRequestBytes: *maxBytes,
		RequestTimeout:  *timeout,
		Explain:         *explain,
		Log:             logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "jsscand: listen: %v\n", err)
		return 1
	}
	logger.Printf("event=listening addr=http://%s/ queue=%d concurrent=%d", ln.Addr(), *queue, *concurrent)
	if err := srv.Serve(ctx, ln, *grace); err != nil {
		fmt.Fprintf(stderr, "jsscand: %v\n", err)
		return 1
	}
	return 0
}
