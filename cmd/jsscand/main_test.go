package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/transform"
)

// The daemon test drives run() end to end the way the jsdetect integration
// tests drive theirs: tiny constant-output model files on disk, a real
// listener on an ephemeral port, real HTTP traffic, and a context
// cancellation standing in for SIGTERM.

// writeTinyModels writes constant-output level1/level2 model files for the
// default feature options (dims 1024), matching the daemon's -dims default.
func writeTinyModels(t *testing.T, dir string) {
	t.Helper()
	featOpts := features.Options{}
	fp := ml.Fingerprint{
		NGramDims:    uint32(featOpts.Dims()),
		NGramLen:     uint32(featOpts.NGramLength()),
		RuleFeatures: featOpts.RuleFeatures,
	}
	l2labels := make([]string, len(transform.Techniques))
	l2probs := make([]float64, len(transform.Techniques))
	for i, tech := range transform.Techniques {
		l2labels[i] = tech.String()
		l2probs[i] = 0.9 - 0.05*float64(i)
	}
	for name, m := range map[string]ml.MultiTask{
		"level1.model": constChain(core.Level1Labels, []float64{0.1, 0.9, 0.2}),
		"level2.model": constChain(l2labels, l2probs),
	} {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := ml.WriteModel(f, m, fp); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// constChain builds a chain of single-leaf forests with fixed outputs.
func constChain(labels []string, probs []float64) ml.MultiTask {
	forests := make([]*ml.Forest, len(labels))
	for i := range forests {
		forests[i] = &ml.Forest{Trees: []*ml.Tree{
			{Nodes: []ml.TreeNode{{Feature: 0, Left: -1, Right: -1, Prob: probs[i]}}},
		}}
	}
	return &ml.Chain{Names: append([]string(nil), labels...), Forests: forests}
}

// syncBuffer is a goroutine-safe log sink: run() writes from the daemon's
// goroutines while the test polls for the listening line.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listeningRE = regexp.MustCompile(`event=listening addr=http://([^/\s]+)/`)

// startDaemon runs the daemon on an ephemeral port and returns its base URL
// plus the channel carrying run's exit code.
func startDaemon(t *testing.T, ctx context.Context, stderr *syncBuffer, extraArgs ...string) (url string, exit chan int) {
	t.Helper()
	models := t.TempDir()
	writeTinyModels(t, models)
	return startDaemonAt(t, ctx, stderr, models, extraArgs...)
}

// startDaemonAt is startDaemon with a caller-owned models directory, for
// tests that restart the daemon against the same models and state.
func startDaemonAt(t *testing.T, ctx context.Context, stderr *syncBuffer, models string, extraArgs ...string) (url string, exit chan int) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-models", models}, extraArgs...)
	exit = make(chan int, 1)
	go func() { exit <- run(ctx, args, stderr) }()

	deadline := time.Now().Add(15 * time.Second)
	for {
		if m := listeningRE.FindStringSubmatch(stderr.String()); m != nil {
			return "http://" + m[1], exit
		}
		select {
		case code := <-exit:
			t.Fatalf("daemon exited %d before listening:\n%s", code, stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never logged its listening address:\n%s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonLifecycle: start, serve a scan, shut down via the signal
// context, exit 0 with the drain line flushed.
func TestDaemonLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stderr syncBuffer
	url, exit := startDaemon(t, ctx, &stderr)

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	resp, err = http.Post(url+"/v1/scan", "application/javascript", strings.NewReader("var a = 1;"))
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Path        string             `json:"path"`
		Transformed bool               `json:"transformed"`
		Probs       map[string]float64 `json:"probabilities"`
	}
	decErr := json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if decErr != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("scan: status %d err %v", resp.StatusCode, decErr)
	}
	if rep.Path != "body.js" || !rep.Transformed {
		t.Errorf("verdict = %+v", rep)
	}
	// -full-probs defaults on: the canned level 2 ranking is present.
	if len(rep.Probs) != len(transform.Techniques) {
		t.Errorf("%d technique probabilities, want %d", len(rep.Probs), len(transform.Techniques))
	}

	// The per-request log line landed.
	if !strings.Contains(stderr.String(), "method=POST path=/v1/scan status=200") {
		t.Errorf("missing request log line in:\n%s", stderr.String())
	}

	// SIGTERM path: the NotifyContext in main cancels this ctx.
	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit = %d after graceful shutdown:\n%s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after cancellation")
	}
	if !strings.Contains(stderr.String(), "event=drained") {
		t.Errorf("drain summary not flushed:\n%s", stderr.String())
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("daemon still answering after exit")
	}
}

// TestDaemonBackpressureFlags: -queue and -concurrent wire through to the
// service (saturating the tiny queue yields 429 without felling the daemon).
func TestDaemonAdminSurface(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stderr syncBuffer
	url, exit := startDaemon(t, ctx, &stderr, "-queue", "3", "-concurrent", "1", "-dedup-cap", "16")

	resp, err := http.Post(url+"/v1/scan", "application/javascript", strings.NewReader("var a = 1;"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	aresp, err := http.Get(url + "/admin/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var admin struct {
		Requests int64 `json:"requests"`
		Queue    struct {
			Capacity int `json:"capacity"`
		} `json:"queue"`
		Cache *struct {
			Entries  int `json:"entries"`
			Capacity int `json:"capacity"`
		} `json:"cache"`
		Metrics struct {
			Counters []struct {
				Name  string `json:"name"`
				Value int64  `json:"value"`
			} `json:"counters"`
		} `json:"metrics"`
	}
	decErr := json.NewDecoder(aresp.Body).Decode(&admin)
	aresp.Body.Close()
	if decErr != nil {
		t.Fatal(decErr)
	}
	if admin.Requests != 1 || admin.Queue.Capacity != 3 {
		t.Errorf("admin = %+v, want 1 request, queue capacity 3", admin)
	}
	// -dedup defaults on; the scan populated one entry.
	if admin.Cache == nil || admin.Cache.Entries != 1 || admin.Cache.Capacity != 16 {
		t.Errorf("cache = %+v, want 1 entry of 16", admin.Cache)
	}
	// obs.Enable() is on for the daemon's lifetime, so service counters flow.
	// The registry is process-global (it outlives each run() in this test
	// binary), so assert presence rather than an exact count.
	found := false
	for _, c := range admin.Metrics.Counters {
		if c.Name == "service.requests" && c.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("service.requests counter missing from admin dump: %+v", admin.Metrics.Counters)
	}

	cancel()
	if code := <-exit; code != 0 {
		t.Fatalf("exit = %d:\n%s", code, stderr.String())
	}
}

// TestDaemonStartupFailures: the exit-code contract for a daemon that must
// die loudly rather than serve garbage.
func TestDaemonStartupFailures(t *testing.T) {
	var stderr syncBuffer
	if code := run(context.Background(), []string{"-definitely-not-a-flag"}, &stderr); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	stderr = syncBuffer{}
	if code := run(context.Background(), []string{"-models", t.TempDir()}, &stderr); code != 1 {
		t.Errorf("missing models exit = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "load level 1") {
		t.Errorf("missing-model error not loud:\n%s", stderr.String())
	}
	// A dims mismatch is a fingerprint failure, not a silent misclassifier.
	models := t.TempDir()
	writeTinyModels(t, models)
	stderr = syncBuffer{}
	if code := run(context.Background(), []string{"-models", models, "-dims", "512"}, &stderr); code != 1 {
		t.Errorf("dims mismatch exit = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "load level 1") {
		t.Errorf("fingerprint error not loud:\n%s", stderr.String())
	}
	// An unusable listen address fails after models load.
	stderr = syncBuffer{}
	if code := run(context.Background(), []string{"-models", models, "-addr", "256.256.256.256:1"}, &stderr); code != 1 {
		t.Errorf("bad addr exit = %d, want 1", code)
	}
}
