package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// The warm-restart contract: a daemon brought back up over the same -store
// directory answers a repeat batch entirely from persisted verdicts — zero
// full-pipeline scans — and the response is byte-identical to the cold run.
// Store provenance is visible only on /admin/metrics, never in scan
// responses, so a load balancer cannot tell the two daemons apart.

// scanBatch POSTs a JSON batch and returns the split response: the raw
// results array (the byte-stability surface) and the stats envelope.
func scanBatch(t *testing.T, url, body string) (results json.RawMessage, stats map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v1/scan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan status = %d", resp.StatusCode)
	}
	var envelope struct {
		Results json.RawMessage `json:"results"`
		Stats   map[string]any  `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	return envelope.Results, envelope.Stats
}

// adminSnapshot fetches /admin/metrics, returning the server-level aggregates
// and the obs counter values by name. The obs registry is process-global in
// this test binary (it outlives each run()), so callers compare deltas.
type adminSnapshot struct {
	Files     int64             `json:"files"`
	Deduped   int64             `json:"deduped"`
	Bypassed  int64             `json:"bypassed"`
	StoreHits int64             `json:"storeHits"`
	Stages    []json.RawMessage `json:"stages"`
	Store     *struct {
		Entries int `json:"entries"`
	} `json:"store"`
	Metrics struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	} `json:"metrics"`
}

func fetchAdmin(t *testing.T, url string) adminSnapshot {
	t.Helper()
	resp, err := http.Get(url + "/admin/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap adminSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

func (s adminSnapshot) counter(name string) int64 {
	for _, c := range s.Metrics.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// stopDaemon cancels the daemon's context and waits for a clean exit, which
// runs the deferred store close (the fsync-and-release half of a restart).
func stopDaemon(t *testing.T, cancel context.CancelFunc, exit chan int, stderr *syncBuffer) {
	t.Helper()
	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exit = %d:\n%s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after cancellation")
	}
}

func TestDaemonWarmStoreRestart(t *testing.T) {
	models := t.TempDir()
	writeTinyModels(t, models)
	storeDir := t.TempDir()

	// Distinct contents so the cold run's in-batch dedup and store both stay
	// out of the picture: every cold verdict is computed, every warm verdict
	// replayed. The mix exercises both cascade outcomes — a hand-shaped
	// regular source the triage router bypasses, a file too small to bypass,
	// and an eval-heavy one escalated on suspicion — all through the full
	// pipeline on the cold run.
	const batch = `{"files":[` +
		`{"path":"a.js","source":"var alpha = 1;\nvar beta = alpha + 2;\nfunction gamma(value) {\n  return value * beta;\n}\ngamma(alpha);\n"},` +
		`{"path":"b.js","source":"function beta(x) { return x + 2; }"},` +
		`{"path":"c.js","source":"eval(atob('aGVsbG8=')); eval(atob('d29ybGQ=')); eval(atob('YWdhaW4=')); eval(atob('bW9yZQ=='));"}]}`
	const nfiles = 3

	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	var stderr1 syncBuffer
	url1, exit1 := startDaemonAt(t, ctx1, &stderr1, models, "-triage", "-store", storeDir)

	coldResults, coldStats := scanBatch(t, url1, batch)
	coldAdmin := fetchAdmin(t, url1)
	if coldAdmin.StoreHits != 0 {
		t.Fatalf("cold daemon reported %d store hits", coldAdmin.StoreHits)
	}
	if coldAdmin.Store == nil || coldAdmin.Store.Entries != nfiles {
		t.Fatalf("cold store state = %+v, want %d entries", coldAdmin.Store, nfiles)
	}
	stopDaemon(t, cancel1, exit1, &stderr1)

	// Restart: same models, same store directory, fresh process state (empty
	// dedup cache, zeroed server aggregates).
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var stderr2 syncBuffer
	url2, exit2 := startDaemonAt(t, ctx2, &stderr2, models, "-triage", "-store", storeDir)
	if !strings.Contains(stderr2.String(), "event=store") {
		t.Errorf("restarted daemon did not log its store recovery:\n%s", stderr2.String())
	}

	warmResults, warmStats := scanBatch(t, url2, batch)

	// Byte-identical results: provenance (FromStore) is deliberately absent
	// from responses, and Bypassed is part of the persisted verdict.
	if !bytes.Equal(coldResults, warmResults) {
		t.Errorf("warm results differ from cold run:\n cold %s\n warm %s", coldResults, warmResults)
	}
	// The stats envelope matches too, except the wall-clock field.
	delete(coldStats, "durationNs")
	delete(warmStats, "durationNs")
	coldJSON, _ := json.Marshal(coldStats)
	warmJSON, _ := json.Marshal(warmStats)
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Errorf("warm stats differ from cold run:\n cold %s\n warm %s", coldJSON, warmJSON)
	}

	// Zero full-pipeline scans on the warm daemon: every verdict came off
	// disk, so nothing reached triage or the pipeline stages.
	warmAdmin := fetchAdmin(t, url2)
	if warmAdmin.StoreHits != nfiles {
		t.Errorf("warm daemon store hits = %d, want %d", warmAdmin.StoreHits, nfiles)
	}
	if warmAdmin.Files != nfiles {
		t.Errorf("warm daemon files = %d, want %d", warmAdmin.Files, nfiles)
	}
	if len(warmAdmin.Stages) != 0 {
		t.Errorf("warm daemon ran %d pipeline stages, want none", len(warmAdmin.Stages))
	}
	for name, want := range map[string]int64{
		"scan.store.hit":       nfiles,
		"scan.store.miss":      0,
		"scan.triage.bypass":   0,
		"scan.triage.escalate": 0,
	} {
		if delta := warmAdmin.counter(name) - coldAdmin.counter(name); delta != want {
			t.Errorf("counter %s moved by %d across the warm batch, want %d", name, delta, want)
		}
	}

	// And the cold run did exercise both cascade paths, so the warm-run
	// assertions above covered bypassed and escalated verdicts alike.
	if coldAdmin.counter("scan.triage.bypass") == 0 {
		t.Error("cold batch produced no triage bypasses; warm test lost its easy-path coverage")
	}
	if coldAdmin.counter("scan.triage.escalate") == 0 {
		t.Error("cold batch produced no escalations; warm test lost its hard-path coverage")
	}

	stopDaemon(t, cancel2, exit2, &stderr2)
}
