// Command trainer trains the level 1 and level 2 detectors on a synthesized
// corpus (Section III-D) and writes the two model files that jsdetect
// loads.
//
// Usage:
//
//	trainer -out models/ [-bases 240] [-trees 40] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ml"
)

func main() {
	os.Exit(run())
}

func run() int {
	out := flag.String("out", "models", "output directory for level1.model and level2.model")
	bases := flag.Int("bases", 240, "number of base regular scripts (the paper used 21,000)")
	trees := flag.Int("trees", 40, "random forest size per binary classifier")
	dims := flag.Int("dims", 1024, "hashed 4-gram dimensions")
	seed := flag.Int64("seed", 42, "training seed")
	flag.Parse()

	opts := core.Options{
		Features: features.Options{NGramDims: *dims},
		Forest: ml.ForestOptions{
			NumTrees: *trees,
			Parallel: true,
			Tree:     ml.TreeOptions{MTry: 128},
		},
		Seed: *seed,
	}
	start := time.Now()
	fmt.Fprintf(os.Stderr, "trainer: generating corpus and training on %d base scripts...\n", *bases)
	trained, err := core.Train(core.TrainConfig{NumRegular: *bases, Options: opts})
	if err != nil {
		fmt.Fprintf(os.Stderr, "trainer: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "trainer: trained both detectors in %v\n", time.Since(start).Round(time.Second))

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "trainer: %v\n", err)
		return 1
	}
	for name, det := range map[string]*core.Detector{
		"level1.model": trained.Level1,
		"level2.model": trained.Level2,
	} {
		path := filepath.Join(*out, name)
		if err := det.SaveFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "trainer: save %s: %v\n", path, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "trainer: wrote %s\n", path)
	}
	fmt.Fprintf(os.Stderr, "trainer: jsdetect must be invoked with the same -dims (%d); the model files embed the feature fingerprint, so a mismatch fails at load\n", *dims)
	return 0
}
