// Command jsdeobfuscate statically reverses common obfuscation techniques:
// string-expression folding, global string-array resolution, control-flow
// unflattening, dead-branch pruning, bracket-to-dot normalization, and
// hex-identifier renaming.
//
// Usage:
//
//	jsdeobfuscate [flags] [file.js]     # stdin when no file given
//	jsdeobfuscate -report file.js       # print the pass summary to stderr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/deobfuscate"
)

func main() {
	os.Exit(run())
}

func run() int {
	report := flag.Bool("report", false, "print a pass summary to stderr")
	skipRename := flag.Bool("keep-names", false, "do not rename hex identifiers")
	skipDots := flag.Bool("keep-brackets", false, "do not rewrite bracket accesses to dot notation")
	flag.Parse()

	var src []byte
	var err error
	if path := flag.Arg(0); path != "" && path != "-" {
		src, err = os.ReadFile(path)
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsdeobfuscate: %v\n", err)
		return 1
	}

	out, rep, err := deobfuscate.Source(string(src), deobfuscate.Options{
		SkipRename:     *skipRename,
		SkipDotRewrite: *skipDots,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsdeobfuscate: %v\n", err)
		return 1
	}
	fmt.Println(out)
	if *report {
		fmt.Fprintf(os.Stderr, "jsdeobfuscate: %s\n", rep)
	}
	return 0
}
