// Command jsdetect classifies JavaScript files with the two-level detector:
// level 1 reports regular vs minified vs obfuscated; level 2 names the
// transformation techniques of transformed files (top-k with the paper's
// 10% confidence floor).
//
// Usage:
//
//	jsdetect -models models/ file.js dir/ ...   # files and directories
//	cat file.js | jsdetect -models models/
//	jsdetect -models models/ -html page.html    # classify inline scripts
//	jsdetect -models models/ -json file.js      # machine-readable output
//
// Models come from the trainer command; -dims must match training.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/htmlext"
)

func main() {
	os.Exit(run())
}

// options bundles the CLI configuration.
type options struct {
	topK      int
	threshold float64
	html      bool
	jsonOut   bool
}

func run() int {
	models := flag.String("models", "models", "directory containing level1.model and level2.model")
	dims := flag.Int("dims", 1024, "hashed 4-gram dimensions (must match training)")
	opts := options{}
	flag.IntVar(&opts.topK, "k", 4, "maximum number of techniques to report")
	flag.Float64Var(&opts.threshold, "threshold", core.DefaultThreshold, "confidence floor for technique reporting")
	flag.BoolVar(&opts.html, "html", false, "treat inputs as HTML and classify the extracted inline scripts")
	flag.BoolVar(&opts.jsonOut, "json", false, "emit one JSON object per input")
	flag.Parse()

	featOpts := features.Options{NGramDims: *dims}
	l1, err := core.LoadFile(filepath.Join(*models, "level1.model"), featOpts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsdetect: load level 1: %v\n", err)
		return 1
	}
	l2, err := core.LoadFile(filepath.Join(*models, "level2.model"), featOpts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsdetect: load level 2: %v\n", err)
		return 1
	}

	paths, err := expandPaths(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsdetect: %v\n", err)
		return 1
	}
	exit := 0
	for _, path := range paths {
		if err := classify(l1, l2, path, opts); err != nil {
			fmt.Fprintf(os.Stderr, "jsdetect: %s: %v\n", path, err)
			exit = 1
		}
	}
	return exit
}

// expandPaths walks directory arguments into their .js files; "-" and
// plain files pass through.
func expandPaths(args []string) ([]string, error) {
	if len(args) == 0 {
		return []string{"-"}, nil
	}
	var out []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if arg == "-" || err != nil || !info.IsDir() {
			out = append(out, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(strings.ToLower(d.Name()), ".js") {
				out = append(out, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// report is the JSON output shape.
type report struct {
	Path        string            `json:"path"`
	Transformed bool              `json:"transformed"`
	Regular     float64           `json:"regular"`
	Minified    float64           `json:"minified"`
	Obfuscated  float64           `json:"obfuscated"`
	Techniques  []techniqueReport `json:"techniques,omitempty"`
	HTMLScripts int               `json:"htmlScripts,omitempty"`
}

type techniqueReport struct {
	Technique   string  `json:"technique"`
	Probability float64 `json:"probability"`
}

func classify(l1, l2 *core.Detector, path string, opts options) error {
	var src []byte
	var err error
	if path == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}

	code := string(src)
	rep := report{Path: path}
	if opts.html {
		scripts := htmlext.Extract(code)
		joined := htmlext.JoinInline(scripts)
		if strings.TrimSpace(joined) == "" {
			if opts.jsonOut {
				return json.NewEncoder(os.Stdout).Encode(rep)
			}
			fmt.Printf("%s: no inline scripts\n", path)
			return nil
		}
		rep.HTMLScripts = len(scripts)
		code = joined
	}

	res, err := l1.ClassifyLevel1(code)
	if err != nil {
		return err
	}
	rep.Transformed = res.IsTransformed()
	rep.Regular, rep.Minified, rep.Obfuscated = res.Regular, res.Minified, res.Obfuscated

	if res.IsTransformed() {
		l2res, err := l2.ClassifyLevel2(code)
		if err != nil {
			return err
		}
		for _, p := range l2res.TopK(opts.topK, opts.threshold) {
			rep.Techniques = append(rep.Techniques, techniqueReport{
				Technique:   p.Technique.String(),
				Probability: p.Probability,
			})
		}
	}

	if opts.jsonOut {
		return json.NewEncoder(os.Stdout).Encode(rep)
	}
	verdict := "regular"
	if rep.Transformed {
		verdict = "transformed"
	}
	fmt.Printf("%s: %s (regular %.2f, minified %.2f, obfuscated %.2f)\n",
		path, verdict, rep.Regular, rep.Minified, rep.Obfuscated)
	for _, t := range rep.Techniques {
		fmt.Printf("  %-26s %.2f\n", t.Technique, t.Probability)
	}
	return nil
}
