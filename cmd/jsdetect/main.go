// Command jsdetect classifies JavaScript files with the two-level detector:
// level 1 reports regular vs minified vs obfuscated; level 2 names the
// transformation techniques of transformed files (top-k with the paper's
// 10% confidence floor).
//
// Usage:
//
//	jsdetect -models models/ file.js dir/ ...   # files and directories
//	cat file.js | jsdetect -models models/
//	jsdetect -models models/ -html page.html    # classify inline scripts
//	jsdetect -models models/ -json file.js      # machine-readable output
//	jsdetect -models models/ -explain file.js   # attach static indicators
//
// Models come from the trainer command; -dims must match training.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/htmlext"
)

func main() {
	os.Exit(run())
}

// options bundles the CLI configuration.
type options struct {
	topK      int
	threshold float64
	html      bool
	jsonOut   bool
	explain   bool
}

func run() int {
	models := flag.String("models", "models", "directory containing level1.model and level2.model")
	dims := flag.Int("dims", 1024, "hashed 4-gram dimensions (must match training)")
	opts := options{}
	flag.IntVar(&opts.topK, "k", 4, "maximum number of techniques to report")
	flag.Float64Var(&opts.threshold, "threshold", core.DefaultThreshold, "confidence floor for technique reporting")
	flag.BoolVar(&opts.html, "html", false, "treat inputs as HTML and classify the extracted inline scripts")
	flag.BoolVar(&opts.jsonOut, "json", false, "emit one JSON object per input")
	flag.BoolVar(&opts.explain, "explain", false, "run the static indicator rules and attach attributable diagnostics")
	flag.Parse()

	featOpts := features.Options{NGramDims: *dims}
	l1, err := core.LoadFile(filepath.Join(*models, "level1.model"), featOpts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsdetect: load level 1: %v\n", err)
		return 1
	}
	l2, err := core.LoadFile(filepath.Join(*models, "level2.model"), featOpts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsdetect: load level 2: %v\n", err)
		return 1
	}

	paths, err := expandPaths(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsdetect: %v\n", err)
		return 1
	}
	exit := 0
	for _, path := range paths {
		if err := classify(l1, l2, path, opts); err != nil {
			fmt.Fprintf(os.Stderr, "jsdetect: %s: %v\n", path, err)
			exit = 1
		}
	}
	return exit
}

// expandPaths walks directory arguments into their .js files; "-" and
// plain files pass through.
func expandPaths(args []string) ([]string, error) {
	if len(args) == 0 {
		return []string{"-"}, nil
	}
	var out []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if arg == "-" || err != nil || !info.IsDir() {
			out = append(out, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(strings.ToLower(d.Name()), ".js") {
				out = append(out, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// report is the JSON output shape.
type report struct {
	Path        string            `json:"path"`
	Transformed bool              `json:"transformed"`
	Regular     float64           `json:"regular"`
	Minified    float64           `json:"minified"`
	Obfuscated  float64           `json:"obfuscated"`
	Techniques  []techniqueReport `json:"techniques,omitempty"`
	HTMLScripts int               `json:"htmlScripts,omitempty"`
	// Diagnostics carries the static indicator findings under -explain.
	Diagnostics []analysis.Diagnostic `json:"diagnostics,omitempty"`
}

type techniqueReport struct {
	Technique   string  `json:"technique"`
	Probability float64 `json:"probability"`
	// Supported marks techniques that at least one static indicator
	// diagnostic attributes (only set under -explain).
	Supported bool `json:"supported,omitempty"`
}

func classify(l1, l2 *core.Detector, path string, opts options) error {
	var src []byte
	var err error
	if path == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}

	code := string(src)
	htmlScripts := 0
	if opts.html {
		scripts := htmlext.Extract(code)
		joined := htmlext.JoinInline(scripts)
		if strings.TrimSpace(joined) == "" {
			rep := report{Path: path}
			if opts.jsonOut {
				return json.NewEncoder(os.Stdout).Encode(rep)
			}
			fmt.Printf("%s: no inline scripts\n", path)
			return nil
		}
		htmlScripts = len(scripts)
		code = joined
	}

	res, err := l1.ClassifyLevel1(code)
	if err != nil {
		return err
	}
	var l2res *core.Level2Result
	if res.IsTransformed() {
		r, err := l2.ClassifyLevel2(code)
		if err != nil {
			return err
		}
		l2res = &r
	}
	var diags []analysis.Diagnostic
	if opts.explain {
		if diags, err = analysis.Analyze(code); err != nil {
			return err
		}
	}

	rep := buildReport(path, res, l2res, diags, opts)
	rep.HTMLScripts = htmlScripts
	if opts.jsonOut {
		return json.NewEncoder(os.Stdout).Encode(rep)
	}
	renderText(os.Stdout, rep)
	return nil
}

// buildReport assembles the output report from the classifier results and
// the optional static indicator diagnostics. Pure so tests can drive it with
// fixed probabilities.
func buildReport(path string, l1 core.Level1Result, l2 *core.Level2Result, diags []analysis.Diagnostic, opts options) report {
	rep := report{
		Path:        path,
		Transformed: l1.IsTransformed(),
		Regular:     l1.Regular,
		Minified:    l1.Minified,
		Obfuscated:  l1.Obfuscated,
		Diagnostics: diags,
	}
	supported := make(map[string]bool)
	for _, d := range diags {
		if d.Technique != "" {
			supported[d.Technique] = true
		}
	}
	if l2 != nil {
		for _, p := range l2.TopK(opts.topK, opts.threshold) {
			rep.Techniques = append(rep.Techniques, techniqueReport{
				Technique:   p.Technique.String(),
				Probability: p.Probability,
				Supported:   supported[p.Technique.String()],
			})
		}
	}
	return rep
}

// renderText prints the human-readable form of a report.
func renderText(w io.Writer, rep report) {
	verdict := "regular"
	if rep.Transformed {
		verdict = "transformed"
	}
	fmt.Fprintf(w, "%s: %s (regular %.2f, minified %.2f, obfuscated %.2f)\n",
		rep.Path, verdict, rep.Regular, rep.Minified, rep.Obfuscated)
	for _, t := range rep.Techniques {
		mark := ""
		if t.Supported {
			mark = "  [supported by indicators]"
		}
		fmt.Fprintf(w, "  %-26s %.2f%s\n", t.Technique, t.Probability, mark)
	}
	if len(rep.Diagnostics) > 0 {
		fmt.Fprintf(w, "  indicators:\n")
		for _, d := range rep.Diagnostics {
			fmt.Fprintf(w, "    %s\n", formatDiagnostic(d))
			if len(d.Evidence) > 0 {
				fmt.Fprintf(w, "        evidence: %s\n", formatEvidence(d.Evidence))
			}
		}
	}
}

// formatDiagnostic renders one diagnostic as a single line.
func formatDiagnostic(d analysis.Diagnostic) string {
	attr := ""
	if d.Technique != "" {
		attr = " -> " + d.Technique
	}
	return fmt.Sprintf("[%s] %s%s @%d:%d-%d:%d: %s",
		d.Severity, d.Rule, attr,
		d.Span.Start.Line, d.Span.Start.Column+1,
		d.Span.End.Line, d.Span.End.Column+1,
		d.Message)
}

// formatEvidence renders the evidence map with deterministic key order.
func formatEvidence(ev map[string]float64) string {
	keys := make([]string, 0, len(ev))
	for k := range ev {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%g", k, ev[k]))
	}
	return strings.Join(parts, " ")
}
