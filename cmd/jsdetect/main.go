// Command jsdetect classifies JavaScript files with the two-level detector:
// level 1 reports regular vs minified vs obfuscated; level 2 names the
// transformation techniques of transformed files (top-k with the paper's
// 10% confidence floor).
//
// Usage:
//
//	jsdetect -models models/ file.js dir/ ...   # files and directories
//	cat file.js | jsdetect -models models/
//	jsdetect -models models/ -html page.html    # classify inline scripts
//	jsdetect -models models/ -json file.js      # machine-readable output
//	jsdetect -models models/ -explain file.js   # attach static indicators
//	jsdetect -models models/ -workers 8 dir/    # parallel batch scan
//	jsdetect -models models/ -dedup dir/        # classify duplicate files once
//	jsdetect -models models/ -triage dir/       # stage-0 cascade: easy files skip the pipeline
//	jsdetect -models models/ -store cache/ dir/ # persist verdicts across invocations
//	jsdetect -models models/ -metrics dir/      # per-stage metrics dump
//	jsdetect -models models/ -pprof :6060 dir/  # live pprof endpoints
//	jsdetect -models models/ -trace out.tr dir/ # runtime execution trace
//
// Directory scans run on the batch engine: every file is parsed once, the
// parse is shared across both detectors and the -explain rules, and a worker
// pool (-workers) provides the parallelism. Results stream in input order.
// A file that fails to parse is reported and skipped; only I/O-level
// failures (unreadable files, bad flags, missing models) make the exit code
// non-zero.
//
// Observability: -metrics enables the internal/obs registry for the run and
// prints the per-stage pipeline breakdown (parse, flow, rules, features,
// inference — durations summed across workers) plus every pipeline counter
// and histogram to stderr; with -json the metrics dump is a single JSON
// object on stderr instead. -pprof serves net/http/pprof on the given
// address for the lifetime of the scan, and -trace writes a runtime/trace
// of the scan for `go tool trace`.
//
// Models come from the trainer command; model files embed the feature
// configuration they were trained with, and loading fails loudly when -dims
// does not match.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime/trace"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/htmlext"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options bundles the CLI configuration.
type options struct {
	topK      int
	threshold float64
	html      bool
	jsonOut   bool
	explain   bool
	workers   int
	dedup     bool
	triage    bool
	storeDir  string
	stats     bool
	metrics   bool
	pprofAddr string
	traceFile string
}

func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("jsdetect", flag.ContinueOnError)
	flags.SetOutput(stderr)
	models := flags.String("models", "models", "directory containing level1.model and level2.model")
	dims := flags.Int("dims", 1024, "hashed 4-gram dimensions (must match training)")
	opts := options{}
	flags.IntVar(&opts.topK, "k", 4, "maximum number of techniques to report")
	flags.Float64Var(&opts.threshold, "threshold", core.DefaultThreshold, "confidence floor for technique reporting")
	flags.BoolVar(&opts.html, "html", false, "treat inputs as HTML and classify the extracted inline scripts")
	flags.BoolVar(&opts.jsonOut, "json", false, "emit one JSON object per input")
	flags.BoolVar(&opts.explain, "explain", false, "run the static indicator rules and attach attributable diagnostics")
	flags.IntVar(&opts.workers, "workers", 0, "batch scan worker pool size (0 = GOMAXPROCS)")
	flags.BoolVar(&opts.dedup, "dedup", false, "cache verdicts by content hash so duplicate files are classified once")
	flags.BoolVar(&opts.triage, "triage", false, "route high-confidence regular/minified files around the full pipeline")
	flags.StringVar(&opts.storeDir, "store", "", "persist verdicts to this directory so repeat scans answer from disk")
	flags.BoolVar(&opts.stats, "stats", false, "print aggregate scan statistics to stderr")
	flags.BoolVar(&opts.metrics, "metrics", false, "collect pipeline metrics and print the per-stage breakdown to stderr (JSON with -json)")
	flags.StringVar(&opts.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the scan's lifetime")
	flags.StringVar(&opts.traceFile, "trace", "", "write a runtime/trace of the scan to this file")
	if err := flags.Parse(args); err != nil {
		return 2
	}

	// Observability hooks come up before the models load so profiling covers
	// model loading too.
	if opts.metrics {
		// A fresh registry per run keeps repeated in-process invocations
		// (tests) from bleeding counts into each other.
		prev := obs.Swap(obs.NewRegistry())
		defer obs.Swap(prev)
	}
	if opts.pprofAddr != "" {
		ln, err := net.Listen("tcp", opts.pprofAddr)
		if err != nil {
			fmt.Fprintf(stderr, "jsdetect: -pprof: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "jsdetect: pprof listening on http://%s/debug/pprof/\n", ln.Addr())
		// The shared shutdown helper ties the server goroutine to a tracked
		// drain: stop closes the listener (unblocking Serve) and waits for
		// the goroutine, so it never outlives the run (goroutine-hygiene's
		// contract for every go statement). jsscand -pprof uses the same
		// helper.
		stop := service.StartHTTP(ln, nil)
		defer stop()
	}
	if opts.traceFile != "" {
		f, err := os.Create(opts.traceFile)
		if err != nil {
			fmt.Fprintf(stderr, "jsdetect: -trace: %v\n", err)
			return 1
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "jsdetect: -trace: %v\n", err)
			return 1
		}
		defer func() {
			trace.Stop()
			if err := f.Close(); err != nil {
				fmt.Fprintf(stderr, "jsdetect: -trace: %v\n", err)
			}
		}()
	}

	featOpts := features.Options{NGramDims: *dims}
	l1, err := core.LoadLevelFile(filepath.Join(*models, "level1.model"), featOpts, core.Level1Labels)
	if err != nil {
		fmt.Fprintf(stderr, "jsdetect: load level 1: %v\n", err)
		return 1
	}
	l2, err := core.LoadLevelFile(filepath.Join(*models, "level2.model"), featOpts, core.Level2Labels())
	if err != nil {
		fmt.Fprintf(stderr, "jsdetect: load level 2: %v\n", err)
		return 1
	}
	scanOpts := core.ScanOptions{Workers: opts.workers, Explain: opts.explain, StageStats: opts.metrics, Dedup: opts.dedup, Triage: opts.triage}
	if opts.storeDir != "" {
		vs, err := store.Open(opts.storeDir)
		if err != nil {
			fmt.Fprintf(stderr, "jsdetect: -store: %v\n", err)
			return 1
		}
		defer func() {
			if err := vs.Close(); err != nil {
				fmt.Fprintf(stderr, "jsdetect: close store: %v\n", err)
			}
		}()
		scanOpts.VerdictStore = vs
	}
	scanner, err := core.NewScanner(l1, l2, scanOpts)
	if err != nil {
		fmt.Fprintf(stderr, "jsdetect: %v\n", err)
		return 1
	}

	paths, err := expandPaths(flags.Args(), opts.html)
	if err != nil {
		fmt.Fprintf(stderr, "jsdetect: %v\n", err)
		return 1
	}

	// Read stage. An unreadable file is an I/O-level failure: it sets the
	// exit code but the rest of the batch still runs.
	exit := 0
	items := make([]item, len(paths))
	for i, path := range paths {
		items[i] = readItem(path, opts.html)
		if items[i].readErr != nil {
			exit = 1
		}
	}

	// Scan stage: only readable, non-empty inputs go through the engine.
	var inputs []core.Input
	var itemOf []int
	for j := range items {
		if items[j].readErr != nil || items[j].skip {
			continue
		}
		inputs = append(inputs, core.Input{Path: items[j].path, Source: items[j].source})
		itemOf = append(itemOf, j)
	}

	// Results stream back in input order; skipped and unreadable items are
	// flushed at their original positions so output order always matches
	// argument order.
	next := 0
	flushTo := func(j int) {
		for ; next < j; next++ {
			emitItem(items[next], opts, stdout, stderr)
		}
	}
	stats := scanner.ScanStream(inputs, func(i int, r core.FileResult) {
		j := itemOf[i]
		flushTo(j)
		next = j + 1
		emitResult(items[j], r, opts, stdout, stderr)
	})
	flushTo(len(items))

	if opts.stats {
		dedup := ""
		if opts.dedup {
			dedup = fmt.Sprintf(", %d deduped", stats.Deduped)
		}
		if opts.triage {
			dedup += fmt.Sprintf(", %d bypassed", stats.Bypassed)
		}
		if opts.storeDir != "" {
			dedup += fmt.Sprintf(", %d from store", stats.StoreHits)
		}
		fmt.Fprintf(stderr,
			"jsdetect: scanned %d files (%d bytes) in %v: %d regular, %d minified, %d obfuscated, %d transformed, %d parse failures%s (%.1f files/s, %.1f KB/s)\n",
			stats.Files, stats.Bytes, stats.Duration.Round(1e6),
			stats.Regular, stats.Minified, stats.Obfuscated, stats.Transformed,
			stats.ParseFailures, dedup, stats.FilesPerSec(), stats.BytesPerSec()/1024)
	}
	if opts.metrics {
		emitMetrics(stderr, stats, opts.jsonOut)
	}
	return exit
}

// metricsReport is the -metrics -json output shape.
type metricsReport struct {
	Stages     []core.StageStats `json:"stages"`
	StageTotal int64             `json:"stageTotalNs"`
	ScanWall   int64             `json:"scanWallNs"`
	Metrics    obs.Snapshot      `json:"metrics"`
}

// emitMetrics dumps the per-stage breakdown and the obs registry snapshot to
// w: aligned text by default, one JSON object under -json.
func emitMetrics(w io.Writer, stats core.ScanStats, jsonOut bool) {
	snap := obs.Snapshot{}
	if reg := obs.Get(); reg != nil {
		snap = reg.Snapshot()
	}
	if jsonOut {
		json.NewEncoder(w).Encode(metricsReport{
			Stages:     stats.Stages,
			StageTotal: int64(stats.StageTotal()),
			ScanWall:   int64(stats.Duration),
			Metrics:    snap,
		})
		return
	}
	fmt.Fprintf(w, "jsdetect: pipeline stage breakdown (durations summed across workers):\n")
	fmt.Fprintf(w, "  %-10s %8s %12s %14s %10s\n", "stage", "files", "bytes", "time", "% stages")
	total := stats.StageTotal()
	for _, st := range stats.Stages {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(st.Duration) / float64(total)
		}
		fmt.Fprintf(w, "  %-10s %8d %12d %14s %9.1f%%\n", st.Stage, st.Files, st.Bytes, st.Duration.Round(1e3), pct)
	}
	fmt.Fprintf(w, "  stages total %v, scan wall %v\n", total.Round(1e3), stats.Duration.Round(1e3))
	snap.WriteText(w)
}

// item is one CLI argument after the read/HTML-extract stage.
type item struct {
	path   string
	source string
	// htmlScripts is the number of inline scripts extracted under -html.
	htmlScripts int
	// skip marks an HTML input with no inline scripts: reported, not scanned.
	skip    bool
	readErr error
}

// readItem loads one path ("-" reads stdin) and, under -html, extracts its
// inline scripts.
func readItem(path string, html bool) item {
	it := item{path: path}
	var src []byte
	var err error
	if path == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		it.readErr = err
		return it
	}
	it.source = string(src)
	if html {
		scripts := htmlext.Extract(it.source)
		joined := htmlext.JoinInline(scripts)
		if strings.TrimSpace(joined) == "" {
			it.skip = true
			return it
		}
		it.htmlScripts = len(scripts)
		it.source = joined
	}
	return it
}

// emitItem reports an item that never reached the scanner (read error or
// scriptless HTML) at its position in the output stream.
func emitItem(it item, opts options, stdout, stderr io.Writer) {
	if it.readErr != nil {
		fmt.Fprintf(stderr, "jsdetect: %s: %v\n", it.path, it.readErr)
		if opts.jsonOut {
			json.NewEncoder(stdout).Encode(report{Path: it.path, Error: it.readErr.Error()})
		}
		return
	}
	if opts.jsonOut {
		json.NewEncoder(stdout).Encode(report{Path: it.path})
		return
	}
	fmt.Fprintf(stdout, "%s: no inline scripts\n", it.path)
}

// emitResult reports one scanned file. Parse failures are per-file: they go
// to stderr (and the JSON error field) without failing the run.
func emitResult(it item, r core.FileResult, opts options, stdout, stderr io.Writer) {
	if r.Err != nil {
		fmt.Fprintf(stderr, "jsdetect: %s: %v\n", it.path, r.Err)
		if opts.jsonOut {
			json.NewEncoder(stdout).Encode(report{Path: it.path, Error: r.Err.Error()})
		}
		return
	}
	rep := buildReport(it.path, r.Level1, r.Level2, r.Diagnostics, opts)
	rep.HTMLScripts = it.htmlScripts
	rep.Bypassed = r.Bypassed
	if opts.jsonOut {
		json.NewEncoder(stdout).Encode(rep)
		return
	}
	renderText(stdout, rep)
}

// expandPaths walks directory arguments into their .js files (.html/.htm
// under -html); "-" and plain files pass through. WalkDir visits entries in
// lexical order, so expansion is deterministic.
func expandPaths(args []string, html bool) ([]string, error) {
	if len(args) == 0 {
		return []string{"-"}, nil
	}
	exts := []string{".js"}
	if html {
		exts = []string{".html", ".htm"}
	}
	var out []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if arg == "-" || err != nil || !info.IsDir() {
			out = append(out, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				return nil
			}
			name := strings.ToLower(d.Name())
			for _, ext := range exts {
				if strings.HasSuffix(name, ext) {
					out = append(out, path)
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// report is the JSON output shape.
type report struct {
	Path        string            `json:"path"`
	Transformed bool              `json:"transformed"`
	Regular     float64           `json:"regular"`
	Minified    float64           `json:"minified"`
	Obfuscated  float64           `json:"obfuscated"`
	Techniques  []techniqueReport `json:"techniques,omitempty"`
	HTMLScripts int               `json:"htmlScripts,omitempty"`
	// Bypassed marks a verdict the stage-0 triage router synthesized
	// without running the full pipeline (-triage).
	Bypassed bool `json:"bypassed,omitempty"`
	// Diagnostics carries the static indicator findings under -explain.
	Diagnostics []analysis.Diagnostic `json:"diagnostics,omitempty"`
	// Error is the per-file failure (parse or read error), when any.
	Error string `json:"error,omitempty"`
}

type techniqueReport struct {
	Technique   string  `json:"technique"`
	Probability float64 `json:"probability"`
	// Supported marks techniques that at least one static indicator
	// diagnostic attributes (only set under -explain).
	Supported bool `json:"supported,omitempty"`
}

// buildReport assembles the output report from the classifier results and
// the optional static indicator diagnostics. Pure so tests can drive it with
// fixed probabilities.
func buildReport(path string, l1 core.Level1Result, l2 *core.Level2Result, diags []analysis.Diagnostic, opts options) report {
	rep := report{
		Path:        path,
		Transformed: l1.IsTransformed(),
		Regular:     l1.Regular,
		Minified:    l1.Minified,
		Obfuscated:  l1.Obfuscated,
		Diagnostics: diags,
	}
	supported := make(map[string]bool)
	for _, d := range diags {
		if d.Technique != "" {
			supported[d.Technique] = true
		}
	}
	if l2 != nil {
		for _, p := range l2.TopK(opts.topK, opts.threshold) {
			rep.Techniques = append(rep.Techniques, techniqueReport{
				Technique:   p.Technique.String(),
				Probability: p.Probability,
				Supported:   supported[p.Technique.String()],
			})
		}
	}
	return rep
}

// renderText prints the human-readable form of a report.
func renderText(w io.Writer, rep report) {
	verdict := "regular"
	if rep.Transformed {
		verdict = "transformed"
	}
	fmt.Fprintf(w, "%s: %s (regular %.2f, minified %.2f, obfuscated %.2f)\n",
		rep.Path, verdict, rep.Regular, rep.Minified, rep.Obfuscated)
	for _, t := range rep.Techniques {
		mark := ""
		if t.Supported {
			mark = "  [supported by indicators]"
		}
		fmt.Fprintf(w, "  %-26s %.2f%s\n", t.Technique, t.Probability, mark)
	}
	if len(rep.Diagnostics) > 0 {
		fmt.Fprintf(w, "  indicators:\n")
		for _, d := range rep.Diagnostics {
			fmt.Fprintf(w, "    %s\n", formatDiagnostic(d))
			if len(d.Evidence) > 0 {
				fmt.Fprintf(w, "        evidence: %s\n", formatEvidence(d.Evidence))
			}
		}
	}
}

// formatDiagnostic renders one diagnostic as a single line.
func formatDiagnostic(d analysis.Diagnostic) string {
	attr := ""
	if d.Technique != "" {
		attr = " -> " + d.Technique
	}
	return fmt.Sprintf("[%s] %s%s @%d:%d-%d:%d: %s",
		d.Severity, d.Rule, attr,
		d.Span.Start.Line, d.Span.Start.Column+1,
		d.Span.End.Line, d.Span.End.Column+1,
		d.Message)
}

// formatEvidence renders the evidence map with deterministic key order.
func formatEvidence(ev map[string]float64) string {
	keys := make([]string, 0, len(ev))
	for k := range ev {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%g", k, ev[k]))
	}
	return strings.Join(parts, " ")
}
