package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/transform"
)

var update = flag.Bool("update", false, "rewrite golden files")

// explainReport builds the report the -explain path produces for the fixture
// file, with fixed classifier probabilities so the golden file does not
// depend on model training.
func explainReport(t *testing.T) report {
	t.Helper()
	path := filepath.Join("testdata", "explain_input.js")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Analyze(string(src))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	l1 := core.Level1Result{Regular: 0.05, Minified: 0.10, Obfuscated: 0.85}
	l2 := &core.Level2Result{Ranked: []core.TechniquePrediction{
		{Technique: transform.GlobalArray, Probability: 0.61},
		{Technique: transform.StringObfuscation, Probability: 0.24},
		{Technique: transform.IdentifierObfuscation, Probability: 0.12},
		{Technique: transform.DeadCodeInjection, Probability: 0.02},
	}}
	opts := options{topK: 4, threshold: core.DefaultThreshold, explain: true}
	return buildReport(path, l1, l2, diags, opts)
}

// TestExplainDiagnostics checks the acceptance criterion directly: on an
// obfuscated sample, -explain yields at least one diagnostic whose technique
// matches a monitored label and whose span is non-zero.
func TestExplainDiagnostics(t *testing.T) {
	rep := explainReport(t)
	if len(rep.Diagnostics) == 0 {
		t.Fatal("no diagnostics on obfuscated fixture")
	}
	attributed := false
	for _, d := range rep.Diagnostics {
		if d.Span.Start.Line < 1 || d.Span.End.Line < 1 || d.Span.End.Offset <= d.Span.Start.Offset {
			t.Errorf("%s: zero or inverted span %+v", d.Rule, d.Span)
		}
		if d.Technique != "" {
			attributed = true
		}
	}
	if !attributed {
		t.Error("no diagnostic attributes a technique")
	}
	// The fixture's global-array accessor must mark the global array
	// prediction as indicator-supported.
	foundSupported := false
	for _, tr := range rep.Techniques {
		if tr.Technique == transform.GlobalArray.String() && tr.Supported {
			foundSupported = true
		}
	}
	if !foundSupported {
		t.Errorf("global array prediction not marked supported; techniques: %+v", rep.Techniques)
	}
}

// TestExplainJSONGolden locks the machine-readable -explain output shape.
// Regenerate with: go test ./cmd/jsdetect -run Golden -update
func TestExplainJSONGolden(t *testing.T) {
	rep := explainReport(t)
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "explain_report.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSON output differs from golden file (rerun with -update to regenerate):\n got: %s\nwant: %s", got, want)
	}

	// The emitted JSON must round-trip losslessly.
	var back report
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Errorf("report does not round-trip:\n got %+v\nwant %+v", back, rep)
	}
}

// TestExplainTextGolden locks the human-readable rendering, including the
// indicator lines and evidence maps.
func TestExplainTextGolden(t *testing.T) {
	rep := explainReport(t)
	var buf bytes.Buffer
	renderText(&buf, rep)
	golden := filepath.Join("testdata", "explain_report.golden.txt")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("text output differs from golden file (rerun with -update to regenerate):\n got:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
