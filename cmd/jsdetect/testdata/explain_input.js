var _0x12ab = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"];
function _0x34cd(_0x56ef) { return _0x12ab[_0x56ef - 2]; }
var _0x78aa = atob("aGVsbG8gd29ybGQhIQ==");
var _0x78bb = unescape("%68%65%6c%6c%6f%20%77%6f%72%6c%64");
eval(_0x78aa);
if (74 === 74 + 13) { _0x34cd(9); }
_0x34cd(2);
