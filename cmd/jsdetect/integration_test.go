package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/transform"
)

// writeTinyModels writes constant-output level1/level2 model files for the
// default feature options (dims 1024). The canned level 1 verdict flags
// everything as minified, so the level 2 ranking always appears; the
// integration tests only assert batch behavior (order, isolation, exit
// codes), never classification quality.
func writeTinyModels(t *testing.T, dir string) {
	t.Helper()
	featOpts := features.Options{}
	fp := ml.Fingerprint{
		NGramDims:    uint32(featOpts.Dims()),
		NGramLen:     uint32(featOpts.NGramLength()),
		RuleFeatures: featOpts.RuleFeatures,
	}
	l2labels := make([]string, len(transform.Techniques))
	l2probs := make([]float64, len(transform.Techniques))
	for i, tech := range transform.Techniques {
		l2labels[i] = tech.String()
		l2probs[i] = 0.9 - 0.05*float64(i)
	}
	for name, m := range map[string]ml.MultiTask{
		"level1.model": constChain(core.Level1Labels, []float64{0.1, 0.9, 0.2}),
		"level2.model": constChain(l2labels, l2probs),
	} {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := ml.WriteModel(f, m, fp); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// constChain builds a chain of single-leaf forests with fixed outputs.
func constChain(labels []string, probs []float64) ml.MultiTask {
	forests := make([]*ml.Forest, len(labels))
	for i := range forests {
		forests[i] = &ml.Forest{Trees: []*ml.Tree{
			{Nodes: []ml.TreeNode{{Feature: 0, Left: -1, Right: -1, Prob: probs[i]}}},
		}}
	}
	return &ml.Chain{Names: append([]string(nil), labels...), Forests: forests}
}

// writeMixedDir lays out the batch-scan fixture: good JS, broken JS, and an
// HTML page (ignored unless -html).
func writeMixedDir(t *testing.T) (models, dir string) {
	t.Helper()
	models = t.TempDir()
	writeTinyModels(t, models)
	dir = t.TempDir()
	files := map[string]string{
		"a.js":      "var a = 1; function f(x) { return x + a; } f(2);",
		"broken.js": "function ( {{{ not javascript",
		"c.js":      "for (var i = 0; i < 10; i++) { console.log(i); }",
		"page.html": "<html><script>var q = 42; q + 1;</script></html>",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return models, dir
}

// TestBatchScanMixedDirectory is the CLI acceptance test: a mixed directory
// scanned with -workers 4 yields deterministic, input-ordered output, the
// broken file is reported per-file, and the exit code stays zero (a parse
// failure is not an I/O failure).
func TestBatchScanMixedDirectory(t *testing.T) {
	models, dir := writeMixedDir(t)
	args := []string{"-models", models, "-json", "-workers", "4", dir}

	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}

	var paths []string
	var brokenErr string
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var rep report
		if err := dec.Decode(&rep); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, filepath.Base(rep.Path))
		switch filepath.Base(rep.Path) {
		case "broken.js":
			brokenErr = rep.Error
		default:
			if rep.Error != "" {
				t.Errorf("%s: unexpected error %q", rep.Path, rep.Error)
			}
			if !rep.Transformed || len(rep.Techniques) == 0 {
				t.Errorf("%s: canned verdict missing: %+v", rep.Path, rep)
			}
		}
	}
	// WalkDir order is lexical, HTML excluded without -html.
	want := []string{"a.js", "broken.js", "c.js"}
	if strings.Join(paths, ",") != strings.Join(want, ",") {
		t.Fatalf("output order = %v, want %v", paths, want)
	}
	if brokenErr == "" || !strings.Contains(brokenErr, "parse") {
		t.Fatalf("broken.js must report its parse error, got %q", brokenErr)
	}
	if !strings.Contains(stderr.String(), "broken.js") {
		t.Fatalf("stderr must name the broken file: %s", stderr.String())
	}

	// Determinism: a second identical run produces byte-identical output.
	var stdout2, stderr2 bytes.Buffer
	if code := run(args, &stdout2, &stderr2); code != 0 {
		t.Fatalf("second run exit = %d", code)
	}
	// stdout was consumed by the decoder; rerun the first scan fresh.
	var stdout1 bytes.Buffer
	run(args, &stdout1, &bytes.Buffer{})
	if !bytes.Equal(stdout1.Bytes(), stdout2.Bytes()) {
		t.Fatal("batch scan output is not deterministic across runs")
	}
}

// TestBatchScanHTMLDirectory covers the satellite fix: -html dir/ must
// collect .html/.htm files instead of finding nothing.
func TestBatchScanHTMLDirectory(t *testing.T) {
	models, dir := writeMixedDir(t)
	if err := os.WriteFile(filepath.Join(dir, "empty.htm"), []byte("<html><p>nope</p></html>"), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	code := run([]string{"-models", models, "-html", "-json", "-workers", "4", dir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	var reps []report
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var rep report
		if err := dec.Decode(&rep); err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
	}
	if len(reps) != 2 {
		t.Fatalf("-html dir scan found %d inputs, want empty.htm and page.html: %+v", len(reps), reps)
	}
	if filepath.Base(reps[0].Path) != "empty.htm" || filepath.Base(reps[1].Path) != "page.html" {
		t.Fatalf("paths = %s, %s", reps[0].Path, reps[1].Path)
	}
	if reps[0].Transformed || reps[0].HTMLScripts != 0 {
		t.Fatalf("scriptless page must produce an empty report: %+v", reps[0])
	}
	if reps[1].HTMLScripts != 1 || !reps[1].Transformed {
		t.Fatalf("page.html must classify its inline script: %+v", reps[1])
	}
}

// TestExitCodes pins the exit-code contract: flag errors are 2, I/O and
// model-loading failures are 1, per-file parse failures are 0.
func TestExitCodes(t *testing.T) {
	models, dir := writeMixedDir(t)
	var sink bytes.Buffer

	if code := run([]string{"-definitely-not-a-flag"}, &sink, &sink); code != 2 {
		t.Fatalf("bad flag: exit = %d, want 2", code)
	}
	if code := run([]string{"-models", t.TempDir(), filepath.Join(dir, "a.js")}, &sink, &sink); code != 1 {
		t.Fatalf("missing models: exit = %d, want 1", code)
	}
	if code := run([]string{"-models", models, filepath.Join(dir, "no_such.js")}, &sink, &sink); code != 1 {
		t.Fatalf("unreadable input: exit = %d, want 1", code)
	}
	if code := run([]string{"-models", models, filepath.Join(dir, "broken.js")}, &sink, &sink); code != 0 {
		t.Fatalf("parse failure alone: exit = %d, want 0", code)
	}

	// An unreadable file still lets the rest of the batch scan.
	var stdout, stderr bytes.Buffer
	code := run([]string{"-models", models, filepath.Join(dir, "no_such.js"), filepath.Join(dir, "a.js")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("mixed I/O failure: exit = %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "a.js") {
		t.Fatal("healthy file must still be classified after an I/O failure")
	}
}

// TestLoadRejectsWrongDimsAndSwap covers the model/CLI correctness fixes at
// the command level.
func TestLoadRejectsWrongDimsAndSwap(t *testing.T) {
	models, dir := writeMixedDir(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-models", models, "-dims", "512", filepath.Join(dir, "a.js")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("dims mismatch: exit = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "n-gram dims") {
		t.Fatalf("stderr must name the dims mismatch: %s", stderr.String())
	}

	// Swap the two model files: loading must fail with a descriptive error
	// instead of panicking in level1FromProbs.
	swapped := t.TempDir()
	for src, dst := range map[string]string{"level1.model": "level2.model", "level2.model": "level1.model"} {
		data, err := os.ReadFile(filepath.Join(models, src))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(swapped, dst), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-models", swapped, filepath.Join(dir, "a.js")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("swapped models: exit = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "swapped") {
		t.Fatalf("stderr must hint at the swap: %s", stderr.String())
	}
}

// TestDedupFlag scans a directory where one file's bytes repeat under
// several names: every copy must report the same verdict under its own path,
// and -stats must surface the dedup count.
func TestDedupFlag(t *testing.T) {
	models := t.TempDir()
	writeTinyModels(t, models)
	dir := t.TempDir()
	const src = "var dup = 7; function g(x) { return x * dup; } g(3);"
	for _, name := range []string{"a.js", "b.js", "c.js", "d.js"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-models", models, "-dedup", "-stats", "-json", "-workers", "1", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "3 deduped") {
		t.Fatalf("-stats must report the dedup count: %s", stderr.String())
	}
	var reps []report
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var rep report
		if err := dec.Decode(&rep); err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
	}
	if len(reps) != 4 {
		t.Fatalf("got %d reports, want 4", len(reps))
	}
	for i, rep := range reps {
		if filepath.Base(rep.Path) != []string{"a.js", "b.js", "c.js", "d.js"}[i] {
			t.Errorf("report %d has path %q, want its own file", i, rep.Path)
		}
		if rep.Transformed != reps[0].Transformed || rep.Minified != reps[0].Minified {
			t.Errorf("report %d verdict diverges from the first copy", i)
		}
	}
}

// TestStatsFlag checks the -stats summary reaches stderr with the verdict
// and failure counts.
func TestStatsFlag(t *testing.T) {
	models, dir := writeMixedDir(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-models", models, "-stats", "-workers", "2", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	out := stderr.String()
	if !strings.Contains(out, "scanned 3 files") || !strings.Contains(out, "1 parse failures") {
		t.Fatalf("stats line missing or wrong: %s", out)
	}
}
