package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMetricsFlagTextBreakdown is the PR's acceptance check at the CLI
// level: -metrics prints a per-stage breakdown whose stage durations sum to
// approximately the scan wall time (single worker, so the stages ARE the
// scan).
func TestMetricsFlagTextBreakdown(t *testing.T) {
	models, dir := writeMixedDir(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-models", models, "-metrics", "-explain", "-workers", "1", dir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	out := stderr.String()
	for _, stage := range []string{"parse", "flow", "rules", "features", "infer"} {
		if !strings.Contains(out, stage) {
			t.Errorf("metrics dump missing stage %q:\n%s", stage, out)
		}
	}
	if !strings.Contains(out, "stages total") || !strings.Contains(out, "scan wall") {
		t.Fatalf("metrics dump missing totals line:\n%s", out)
	}
	// The registry snapshot rides along: pipeline counters and histograms.
	for _, name := range []string{"parse.files", "flow.graphs", "features.vectors", "ml.tree_evals", "scan.stage.parse"} {
		if !strings.Contains(out, name) {
			t.Errorf("metrics dump missing %q:\n%s", name, out)
		}
	}
	// The registry must not leak out of the run.
	if obs.Enabled() {
		t.Fatal("obs registry still enabled after run returned")
	}
}

// TestMetricsFlagJSON checks the machine-readable dump: one JSON object on
// stderr with stages, totals, and the registry snapshot, and the acceptance
// ratio stageTotal ≈ scanWall under one worker.
func TestMetricsFlagJSON(t *testing.T) {
	models, dir := writeMixedDir(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-models", models, "-metrics", "-json", "-explain", "-workers", "1", dir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	// stderr = per-file parse-failure line(s) + one metrics JSON object.
	lines := strings.Split(strings.TrimSpace(stderr.String()), "\n")
	var rep metricsReport
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &rep); err != nil {
		t.Fatalf("last stderr line is not the metrics JSON: %v\n%s", err, stderr.String())
	}
	if len(rep.Stages) != 5 {
		t.Fatalf("stages = %+v, want 5 entries", rep.Stages)
	}
	if rep.Stages[0].Stage != "parse" || rep.Stages[0].Files != 3 {
		t.Fatalf("parse stage = %+v, want 3 files", rep.Stages[0])
	}
	if rep.StageTotal <= 0 || rep.ScanWall <= 0 {
		t.Fatalf("totals not populated: %+v", rep)
	}
	// Acceptance: with one worker the stage sum accounts for most of the
	// wall time and never exceeds it.
	if rep.StageTotal > rep.ScanWall {
		t.Fatalf("stage total %v exceeds wall %v with one worker",
			time.Duration(rep.StageTotal), time.Duration(rep.ScanWall))
	}
	if rep.StageTotal < rep.ScanWall/2 {
		t.Fatalf("stage total %v accounts for under half the wall %v",
			time.Duration(rep.StageTotal), time.Duration(rep.ScanWall))
	}
	if len(rep.Metrics.Counters) == 0 || len(rep.Metrics.Histograms) == 0 {
		t.Fatal("metrics snapshot empty")
	}
}

// TestPprofFlag spins up the -pprof listener and fetches an endpoint while
// the run is still alive by scanning through it from a second goroutine...
// simpler: the listener only lives for the run, so probe the index during a
// run large enough to straddle the request. Instead of racing the scan, we
// just check the listener comes up and the run reports its address; binding
// failures are covered by the error path test.
func TestPprofFlag(t *testing.T) {
	models, dir := writeMixedDir(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-models", models, "-pprof", "127.0.0.1:0", dir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "pprof listening on http://127.0.0.1:") {
		t.Fatalf("pprof address not reported: %s", stderr.String())
	}
	// The handlers are on http.DefaultServeMux: hit the pprof index through
	// a fresh listener-independent request to prove the import wired them.
	req, err := http.NewRequest("GET", "http://ignored/debug/pprof/", nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{header: make(http.Header)}
	http.DefaultServeMux.ServeHTTP(rec, req)
	if rec.status != http.StatusOK || !bytes.Contains(rec.body.Bytes(), []byte("goroutine")) {
		t.Fatalf("pprof index not served: status %d", rec.status)
	}
}

func TestPprofFlagBadAddress(t *testing.T) {
	models, dir := writeMixedDir(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-models", models, "-pprof", "999.999.999.999:1", dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1 for unbindable -pprof address", code)
	}
	if !strings.Contains(stderr.String(), "-pprof") {
		t.Fatalf("stderr must attribute the failure: %s", stderr.String())
	}
}

// recorder is a minimal http.ResponseWriter for probing DefaultServeMux.
type recorder struct {
	header http.Header
	body   bytes.Buffer
	status int
}

func (r *recorder) Header() http.Header { return r.header }
func (r *recorder) WriteHeader(s int)   { r.status = s }
func (r *recorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.body.Write(p)
}

// TestTraceFlag checks -trace writes a non-empty runtime trace.
func TestTraceFlag(t *testing.T) {
	models, dir := writeMixedDir(t)
	traceFile := filepath.Join(t.TempDir(), "scan.trace")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-models", models, "-trace", traceFile, dir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	// runtime/trace files begin with the "go 1.xx trace" magic.
	if len(data) == 0 || !bytes.Contains(data[:min(64, len(data))], []byte("trace")) {
		t.Fatalf("trace file empty or malformed (%d bytes)", len(data))
	}

	if code := run([]string{"-models", models, "-trace", filepath.Join(t.TempDir(), "no", "such", "dir", "x"), dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("uncreatable trace file: exit = %d, want 1", code)
	}
}
