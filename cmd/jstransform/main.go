// Command jstransform applies one or more transformation techniques to a
// JavaScript file, reproducing the tooling used to build the paper's ground
// truth (obfuscator.io-style obfuscations, minifiers, JSFuck encoding, and
// the Dean Edwards-style packer).
//
// Usage:
//
//	jstransform -t "minification simple" [-t "string obfuscation" ...] [-seed N] [file.js]
//	jstransform -list
//
// With no file argument, input is read from stdin; output goes to stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/corpus"
	"repro/internal/transform"
)

type techniqueList []transform.Technique

func (t *techniqueList) String() string { return fmt.Sprint(*t) }

func (t *techniqueList) Set(s string) error {
	tech, err := transform.ParseTechnique(s)
	if err != nil {
		return err
	}
	*t = append(*t, tech)
	return nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var techs techniqueList
	flag.Var(&techs, "t", "technique to apply (repeatable); see -list")
	seed := flag.Int64("seed", 1, "random seed for reproducible output")
	list := flag.Bool("list", false, "list available techniques and exit")
	flag.Parse()

	if *list {
		for _, t := range transform.Techniques {
			fmt.Println(t)
		}
		fmt.Println(transform.Packer, "(held-out generalization tool)")
		return 0
	}
	if len(techs) == 0 {
		fmt.Fprintln(os.Stderr, "jstransform: no techniques given; use -t (see -list)")
		return 2
	}

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "jstransform: %v\n", err)
		return 1
	}
	out, err := corpus.Apply(corpus.File{Source: src}, rand.New(rand.NewSource(*seed)), techs...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jstransform: %v\n", err)
		return 1
	}
	fmt.Println(out.Source)
	return 0
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
