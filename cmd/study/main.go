// Command study reruns the paper's experiments and prints every table and
// figure: detector accuracy (Section III-E, Figure 1), the wild analysis of
// Alexa-like, npm-like, and malicious collections (Figures 2-5, Table I),
// and the 65-month longitudinal series (Figures 6-8).
//
// Usage:
//
//	study                    # everything, quick scale
//	study -scale 3           # bigger corpora (closer to the paper)
//	study -experiment alexa  # one experiment
//	study -experiment cascade -shards 8 -store verdicts/
//	                         # sharded crawl through triage + the verdict store
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/study"
)

func main() {
	os.Exit(run())
}

func run() int {
	scale := flag.Int("scale", 1, "corpus scale multiplier")
	seed := flag.Int64("seed", 42, "study seed")
	experiment := flag.String("experiment", "all",
		"one of: all, tableI, level1, level2, figure1, packer, alexa, npm, malicious, longitudinal, unmonitored, importance, ablation, cascade")
	shards := flag.Int("shards", 4, "scanner shards for the cascade experiment")
	storeDir := flag.String("store", "", "cascade verdict store directory (empty: a fresh temp dir, removed afterwards)")
	flag.Parse()

	start := time.Now()
	fmt.Fprintf(os.Stderr, "study: training detectors (scale %d)...\n", *scale)
	runner, err := study.NewRunner(study.Config{Scale: *scale, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "study: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "study: detectors ready after %v\n", time.Since(start).Round(time.Second))

	run := func(name string, f func() error) int {
		if *experiment != "all" && *experiment != name {
			return 0
		}
		expStart := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "study: %s: %v\n", name, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "study: %s finished in %v\n\n", name, time.Since(expStart).Round(time.Second))
		return 0
	}

	exit := 0
	exit |= run("tableI", func() error {
		t, err := runner.RunTableI()
		if err != nil {
			return err
		}
		t.Print(os.Stdout)
		return nil
	})
	exit |= run("level1", func() error {
		a, err := runner.RunLevel1Accuracy()
		if err != nil {
			return err
		}
		a.Print(os.Stdout)
		return nil
	})
	exit |= run("level2", func() error {
		a, err := runner.RunLevel2Accuracy()
		if err != nil {
			return err
		}
		a.Print(os.Stdout)
		return nil
	})
	exit |= run("figure1", func() error {
		f, err := runner.RunFigure1(150 * *scale)
		if err != nil {
			return err
		}
		f.Print(os.Stdout)
		return nil
	})
	exit |= run("packer", func() error {
		p, err := runner.RunPacker(100 * *scale)
		if err != nil {
			return err
		}
		p.Print(os.Stdout)
		return nil
	})
	exit |= run("alexa", func() error {
		s, err := runner.RunAlexa()
		if err != nil {
			return err
		}
		s.Print(os.Stdout)
		return nil
	})
	exit |= run("npm", func() error {
		s, err := runner.RunNpm()
		if err != nil {
			return err
		}
		s.Print(os.Stdout)
		return nil
	})
	exit |= run("malicious", func() error {
		ms, err := runner.RunMalicious()
		if err != nil {
			return err
		}
		study.PrintMalicious(os.Stdout, ms)
		return nil
	})
	exit |= run("longitudinal", func() error {
		for _, origin := range []string{"alexa", "npm"} {
			l, err := runner.RunLongitudinal(origin)
			if err != nil {
				return err
			}
			l.Print(os.Stdout)
		}
		return nil
	})
	exit |= run("unmonitored", func() error {
		u, err := runner.RunUnmonitored(60 * *scale)
		if err != nil {
			return err
		}
		u.Print(os.Stdout)
		return nil
	})
	exit |= run("importance", func() error {
		rankings, err := runner.RunFeatureImportance(8)
		if err != nil {
			return err
		}
		study.PrintFeatureImportance(os.Stdout, rankings)
		return nil
	})
	exit |= run("ablation", func() error {
		c, err := runner.RunChainAblation()
		if err != nil {
			return err
		}
		c.Print(os.Stdout)
		return nil
	})
	exit |= run("cascade", func() error {
		dir := *storeDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "study-store-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		c, err := runner.RunCascade(dir, *shards)
		if err != nil {
			return err
		}
		c.Print(os.Stdout)
		return nil
	})
	return exit
}
