// Command jslint runs the project-native static-analysis suite over the
// module: the five analyzers in internal/lint that pin the pipeline's
// hot-path, pool, observability, and concurrency invariants.
//
// Usage:
//
//	go run ./cmd/jslint ./...          # analyze the whole module (the CI gate)
//	go run ./cmd/jslint ./internal/core
//	go run ./cmd/jslint -analyzers hotpath-noalloc,pool-discipline ./...
//	go run ./cmd/jslint -list          # print the analyzers and exit
//	go run ./cmd/jslint -gen-metrics   # regenerate internal/obs/metrics.go
//
// Exit status: 0 when the tree is clean, 1 when findings were reported, 2 on
// load or usage errors. Findings print as file:line:col: analyzer: message.
//
// Suppression: a finding can be silenced with
//
//	//jslint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it. The reason is mandatory — a bare
// ignore is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("jslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		analyzersFlag = fs.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
		listFlag      = fs.Bool("list", false, "list the analyzers and exit")
		genMetrics    = fs.Bool("gen-metrics", false, "regenerate internal/obs/metrics.go from the tree's obs calls")
		timingFlag    = fs.Bool("t", false, "print per-analyzer wall time to stderr")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	all := lint.Analyzers()
	if *listFlag {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-20s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	if *genMetrics {
		return runGenMetrics(stdout, stderr)
	}

	selected := all
	if *analyzersFlag != "" {
		byName := make(map[string]*lint.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*analyzersFlag, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "jslint: unknown analyzer %q (run -list for the suite)\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	start := time.Now()
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "jslint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "jslint: %v\n", err)
		return 2
	}
	loadDone := time.Now()

	diags := lint.Run(loader, pkgs, selected)
	if *timingFlag {
		fmt.Fprintf(stderr, "jslint: loaded %d packages in %v, analyzed in %v\n",
			len(pkgs), loadDone.Sub(start).Round(time.Millisecond), time.Since(loadDone).Round(time.Millisecond))
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	fmt.Fprintf(stderr, "jslint: %d finding(s)\n", len(diags))
	return 1
}

// runGenMetrics regenerates internal/obs/metrics.go from the obs calls in the
// tree. Unresolvable metric names are hard errors: the manifest must be
// complete or it is worthless.
func runGenMetrics(stdout, stderr *os.File) int {
	moduleDir, err := findModuleDir(".")
	if err != nil {
		fmt.Fprintf(stderr, "jslint: %v\n", err)
		return 2
	}
	uses, errs := lint.ScanMetricUses(moduleDir)
	if len(errs) > 0 {
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		for _, e := range errs {
			fmt.Fprintf(stderr, "jslint: %v\n", e)
		}
		return 2
	}
	src, err := lint.GenMetricsSource(uses)
	if err != nil {
		fmt.Fprintf(stderr, "jslint: %v\n", err)
		return 2
	}
	out := filepath.Join(moduleDir, "internal", "obs", "metrics.go")
	if err := os.WriteFile(out, src, 0o644); err != nil {
		fmt.Fprintf(stderr, "jslint: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "jslint: wrote %s (%d metrics)\n", out, countNames(uses))
	return 0
}

func countNames(uses []lint.MetricUse) int {
	seen := make(map[string]bool)
	for _, u := range uses {
		seen[u.Name] = true
	}
	return len(seen)
}

// findModuleDir walks up from dir to the directory holding go.mod.
func findModuleDir(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
