// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment end to end (corpus
// generation, classification, aggregation) and reports the headline numbers
// as benchmark metrics, with the full table logged via -v.
//
// The detectors are trained once and shared across benchmarks; training
// time is excluded from the measurements.
package transformdetect

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/study"
	"repro/internal/transform"
)

var (
	runnerOnce sync.Once
	runner     *study.Runner
	runnerErr  error
)

// benchScale lets `go test -bench . -benchscale 3`-style runs get closer to
// paper sizes via an environment variable (flags cannot be added here
// without colliding with the testing package).
func benchScale() int {
	if v := os.Getenv("BENCH_SCALE"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

func benchRunner(b *testing.B) *study.Runner {
	b.Helper()
	runnerOnce.Do(func() {
		runner, runnerErr = study.NewRunner(study.Config{Scale: benchScale(), Seed: 42})
	})
	if runnerErr != nil {
		b.Fatalf("train detectors: %v", runnerErr)
	}
	return runner
}

// BenchmarkTableI_Datasets regenerates the dataset inventory of Table I.
func BenchmarkTableI_Datasets(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		t, err := r.RunTableI()
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, row := range t.Rows {
			total += row.NumJS
		}
		if i == 0 {
			b.Logf("\n%s", renderTable(func(w *tableWriter) { t.Print(w) }))
		}
	}
	b.ReportMetric(float64(total), "scripts")
}

// BenchmarkLevel1Accuracy reproduces Section III-E1's level 1 numbers
// (paper: 98.65% regular, 99.71% minified, 99.81% obfuscated, 99.41%
// overall).
func BenchmarkLevel1Accuracy(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	var acc study.Level1Accuracy
	for i := 0; i < b.N; i++ {
		var err error
		acc, err = r.RunLevel1Accuracy()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", renderTable(func(w *tableWriter) { acc.Print(w) }))
	b.ReportMetric(acc.Regular*100, "regular_acc%")
	b.ReportMetric(acc.Minified*100, "minified_acc%")
	b.ReportMetric(acc.Obfuscated*100, "obfuscated_acc%")
	b.ReportMetric(acc.Overall*100, "overall_acc%")
}

// BenchmarkLevel2Accuracy reproduces Section III-E1's level 2 numbers
// (paper: 86.95% exact match; Top-1 99.63%).
func BenchmarkLevel2Accuracy(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	var acc study.Level2Accuracy
	for i := 0; i < b.N; i++ {
		var err error
		acc, err = r.RunLevel2Accuracy()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", renderTable(func(w *tableWriter) { acc.Print(w) }))
	b.ReportMetric(acc.ExactMatch*100, "exact_match%")
	b.ReportMetric(acc.TopK[1]*100, "top1%")
}

// benchFigure1 runs the mixed-sample experiment shared by the three
// Figure 1 panels.
func benchFigure1(b *testing.B) study.Figure1 {
	b.Helper()
	r := benchRunner(b)
	b.ResetTimer()
	var fig study.Figure1
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = r.RunFigure1(150 * benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	return fig
}

// BenchmarkFigure1a_TopK is panel (a): plain Top-k accuracy and
// wrong/missing labels on files mixing 1-7 techniques.
func BenchmarkFigure1a_TopK(b *testing.B) {
	fig := benchFigure1(b)
	b.Logf("\n%s", renderTable(func(w *tableWriter) { fig.Print(w) }))
	b.ReportMetric(fig.PlainTopK[0].Accuracy*100, "top1%")
	b.ReportMetric(fig.PlainTopK[2].Accuracy*100, "top3%")
	b.ReportMetric(fig.Level1TransformedAccuracy*100, "level1_transformed%")
}

// BenchmarkFigure1b_Threshold10 is panel (b): Top-k with the paper's 10%
// confidence floor (paper: <0.32 wrong labels on average, accuracy over 89%
// up to 7 techniques at low k).
func BenchmarkFigure1b_Threshold10(b *testing.B) {
	fig := benchFigure1(b)
	last := fig.Threshold10[len(fig.Threshold10)-1]
	b.ReportMetric(last.AvgWrong, "avg_wrong_labels")
	b.ReportMetric(fig.Threshold10[1].Accuracy*100, "top2%")
}

// BenchmarkFigure1c_ThresholdSweep is panel (c): how many techniques remain
// detectable as the confidence threshold rises (paper: a 50% threshold
// leaves only 3-4 techniques).
func BenchmarkFigure1c_ThresholdSweep(b *testing.B) {
	fig := benchFigure1(b)
	b.ReportMetric(fig.DetectableAtThreshold[10], "labels_at_10%")
	b.ReportMetric(fig.DetectableAtThreshold[50], "labels_at_50%")
}

// BenchmarkTestSet3_Packer reproduces Section III-E3: generalization to the
// Dean Edwards-style packer never seen in training (paper: 99.52% flagged).
func BenchmarkTestSet3_Packer(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	var res study.PackerResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.RunPacker(100 * benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", renderTable(func(w *tableWriter) { res.Print(w) }))
	b.ReportMetric(res.TransformedRate*100, "transformed%")
}

// BenchmarkAlexaTop10k reproduces Section IV-B1's headline rates (paper:
// 68.60% of scripts transformed; 89.4% of sites with ≥1 transformed
// script).
func BenchmarkAlexaTop10k(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	var st study.WildStudy
	for i := 0; i < b.N; i++ {
		var err error
		st, err = r.RunAlexa()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", renderTable(func(w *tableWriter) { st.Print(w) }))
	b.ReportMetric(st.ScriptTransformedRate*100, "scripts_transformed%")
	b.ReportMetric(st.UnitRate*100, "sites_with_transformed%")
}

// BenchmarkFigure2_AlexaTechniques reproduces Figure 2: technique usage
// probability in transformed Alexa scripts (paper: minification simple
// 45.96%, advanced 40.24%, identifier obfuscation 5.72%, rest <1.94%).
func BenchmarkFigure2_AlexaTechniques(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	var st study.WildStudy
	for i := 0; i < b.N; i++ {
		var err error
		st, err = r.RunAlexa()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(st.TechniqueAvg[transform.MinifySimple]*100, "min_simple%")
	b.ReportMetric(st.TechniqueAvg[transform.MinifyAdvanced]*100, "min_advanced%")
	b.ReportMetric(st.TechniqueAvg[transform.IdentifierObfuscation]*100, "ident_obf%")
}

// BenchmarkNpmTop10k reproduces Section IV-B2 (paper: 8.7% of scripts
// transformed; 15.14% of packages with ≥1 transformed script).
func BenchmarkNpmTop10k(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	var st study.WildStudy
	for i := 0; i < b.N; i++ {
		var err error
		st, err = r.RunNpm()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", renderTable(func(w *tableWriter) { st.Print(w) }))
	b.ReportMetric(st.ScriptTransformedRate*100, "scripts_transformed%")
	b.ReportMetric(st.UnitRate*100, "pkgs_with_transformed%")
}

// BenchmarkFigure3_NpmTechniques reproduces Figure 3 (paper: minification
// simple 58.34%, advanced 36.57%).
func BenchmarkFigure3_NpmTechniques(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	var st study.WildStudy
	for i := 0; i < b.N; i++ {
		var err error
		st, err = r.RunNpm()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(st.TechniqueAvg[transform.MinifySimple]*100, "min_simple%")
	b.ReportMetric(st.TechniqueAvg[transform.MinifyAdvanced]*100, "min_advanced%")
}

// BenchmarkFigure4_RankGroups reproduces the popularity-rank analyses: the
// Alexa gradient (top sites more transformed) and the npm inverse gradient
// (paper: top-1k packages 2.4-4.4x less likely to ship transformed code).
func BenchmarkFigure4_RankGroups(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	var alexa, npm study.WildStudy
	for i := 0; i < b.N; i++ {
		var err error
		alexa, err = r.RunAlexa()
		if err != nil {
			b.Fatal(err)
		}
		npm, err = r.RunNpm()
		if err != nil {
			b.Fatal(err)
		}
	}
	topHalf := func(g []float64) float64 { return (g[0] + g[1] + g[2] + g[3] + g[4]) / 5 }
	botHalf := func(g []float64) float64 { return (g[5] + g[6] + g[7] + g[8] + g[9]) / 5 }
	b.ReportMetric(topHalf(alexa.RankGroups)*100, "alexa_top_half%")
	b.ReportMetric(botHalf(alexa.RankGroups)*100, "alexa_bottom_half%")
	b.ReportMetric(topHalf(npm.RankGroups)*100, "npm_top_half%")
	b.ReportMetric(botHalf(npm.RankGroups)*100, "npm_bottom_half%")
}

// BenchmarkMaliciousLevel1 reproduces Section IV-C1: level 1 rates per
// malware feed (paper: 65.94% DNC, 73.07% Hynek, 28.93% BSI).
func BenchmarkMaliciousLevel1(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	var studies []study.MaliciousStudy
	for i := 0; i < b.N; i++ {
		var err error
		studies, err = r.RunMalicious()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", renderTable(func(w *tableWriter) { study.PrintMalicious(w, studies) }))
	for _, s := range studies {
		b.ReportMetric(s.TransformedRate*100, s.Source+"_transformed%")
	}
}

// BenchmarkFigure5_MaliciousTechniques reproduces Figure 5: the malicious
// technique mixture (paper: identifier obfuscation 25-37%, string
// obfuscation and advanced minification 17-21%).
func BenchmarkFigure5_MaliciousTechniques(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	var studies []study.MaliciousStudy
	for i := 0; i < b.N; i++ {
		var err error
		studies, err = r.RunMalicious()
		if err != nil {
			b.Fatal(err)
		}
	}
	var identSum, minSum float64
	for _, s := range studies {
		identSum += s.TechniqueAvg[transform.IdentifierObfuscation]
		minSum += s.TechniqueAvg[transform.MinifySimple]
	}
	b.ReportMetric(identSum/float64(len(studies))*100, "ident_obf%")
	b.ReportMetric(minSum/float64(len(studies))*100, "min_simple%")
}

// BenchmarkFigure6_Longitudinal reproduces Figure 6: transformed-code
// prevalence over 65 months (Alexa rising; npm in three phases).
func BenchmarkFigure6_Longitudinal(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	var alexa, npm study.Longitudinal
	for i := 0; i < b.N; i++ {
		var err error
		alexa, err = r.RunLongitudinal("alexa")
		if err != nil {
			b.Fatal(err)
		}
		npm, err = r.RunLongitudinal("npm")
		if err != nil {
			b.Fatal(err)
		}
	}
	aFirst, aSecond := alexa.HalfMeans()
	nFirst, nSecond := npm.HalfMeans()
	b.ReportMetric(aFirst*100, "alexa_first_half%")
	b.ReportMetric(aSecond*100, "alexa_second_half%")
	b.ReportMetric(nFirst*100, "npm_first_half%")
	b.ReportMetric(nSecond*100, "npm_second_half%")
}

// BenchmarkFigure7_AlexaLongitudinal reproduces Figure 7: Alexa technique
// drift (paper: minification simple 38.74%→47.02%; advanced 43.77%→40%).
func BenchmarkFigure7_AlexaLongitudinal(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	var long study.Longitudinal
	for i := 0; i < b.N; i++ {
		var err error
		long, err = r.RunLongitudinal("alexa")
		if err != nil {
			b.Fatal(err)
		}
	}
	first, second := techniqueHalves(long, transform.MinifySimple)
	b.ReportMetric(first*100, "min_simple_first_half%")
	b.ReportMetric(second*100, "min_simple_second_half%")
}

// BenchmarkFigure8_NpmLongitudinal reproduces Figure 8: the npm technique
// mixture staying flat over time (paper: minification simple ~58.62%,
// advanced ~34.28%, identifier obfuscation ~9.71%).
func BenchmarkFigure8_NpmLongitudinal(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	var long study.Longitudinal
	for i := 0; i < b.N; i++ {
		var err error
		long, err = r.RunLongitudinal("npm")
		if err != nil {
			b.Fatal(err)
		}
	}
	first, second := techniqueHalves(long, transform.MinifySimple)
	b.ReportMetric(first*100, "min_simple_first_half%")
	b.ReportMetric(second*100, "min_simple_second_half%")
}

// BenchmarkChainVsIndependent is the Section III-D3 validation ablation:
// classifier chain vs independence assumption (paper: the chain won).
func BenchmarkChainVsIndependent(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	var abl study.ChainAblation
	for i := 0; i < b.N; i++ {
		var err error
		abl, err = r.RunChainAblation()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", renderTable(func(w *tableWriter) { abl.Print(w) }))
	b.ReportMetric(abl.ChainExact*100, "chain_exact%")
	b.ReportMetric(abl.IndependentExact*100, "independent_exact%")
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// tableWriter buffers experiment tables for b.Logf.
type tableWriter struct{ buf []byte }

func (w *tableWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func renderTable(f func(w *tableWriter)) string {
	var w tableWriter
	f(&w)
	return string(w.buf)
}

// techniqueHalves averages a technique's probability over the first and
// second halves of a longitudinal series.
func techniqueHalves(l study.Longitudinal, t transform.Technique) (first, second float64) {
	half := len(l.Points) / 2
	for i, p := range l.Points {
		if i < half {
			first += p.TechniqueAvg[t]
		} else {
			second += p.TechniqueAvg[t]
		}
	}
	if half > 0 {
		first /= float64(half)
		second /= float64(len(l.Points) - half)
	}
	return first, second
}

// BenchmarkUnmonitoredTechnique quantifies the Section V-A claim: a
// technique with no level 2 class (obfuscated field reference) is still
// flagged as transformed by level 1.
func BenchmarkUnmonitoredTechnique(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	var res study.UnmonitoredResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = r.RunUnmonitored(60 * benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", renderTable(func(w *tableWriter) { res.Print(w) }))
	b.ReportMetric(res.TransformedRate*100, "transformed%")
}

// BenchmarkRuleFeaturesAblation trains the level 2 detector with and without
// the opt-in static-indicator feature block (features.Options.RuleFeatures,
// one dimension per analysis rule) and reports held-out Top-1 accuracy for
// both, so EXPERIMENTS.md can record the delta the rule features buy.
func BenchmarkRuleFeaturesAblation(b *testing.B) {
	train := func(ruleFeatures bool) float64 {
		cfg := core.TrainConfig{
			NumRegular: 90 * benchScale(),
			Options: core.Options{
				Features: features.Options{NGramDims: 512, RuleFeatures: ruleFeatures},
				Forest: ml.ForestOptions{
					NumTrees: 20,
					Parallel: true,
					Tree:     ml.TreeOptions{MTry: 96},
				},
				Seed: 7,
			},
		}
		tr, err := core.Train(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ok, n := 0, 0
		for _, tech := range transform.Techniques {
			for _, f := range tr.TestPool[tech] {
				n++
				res, err := tr.Level2.ClassifyLevel2(f.Source)
				if err != nil {
					b.Fatal(err)
				}
				for _, want := range core.EffectiveTechniques(f.Techniques) {
					if res.Ranked[0].Technique == want {
						ok++
						break
					}
				}
			}
		}
		return float64(ok) / float64(n)
	}
	b.ResetTimer()
	var with, without float64
	for i := 0; i < b.N; i++ {
		without = train(false)
		with = train(true)
	}
	b.Logf("level 2 top-1 accuracy: %.3f without rule features, %.3f with", without, with)
	b.ReportMetric(without*100, "top1_base%")
	b.ReportMetric(with*100, "top1_rules%")
}

// BenchmarkFeatureImportance computes the interpretability table: which
// features drive each level 1 class (an addition beyond the paper, using
// permutation importance over the held-out pools).
func BenchmarkFeatureImportance(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	var rankings []study.FeatureRanking
	for i := 0; i < b.N; i++ {
		var err error
		rankings, err = r.RunFeatureImportance(8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", renderTable(func(w *tableWriter) { study.PrintFeatureImportance(w, rankings) }))
	if len(rankings) > 0 && len(rankings[0].Features) > 0 {
		b.ReportMetric(rankings[0].Features[0].Drop, "top_drop")
	}
}
