// Package transformdetect statically detects JavaScript obfuscation and
// minification techniques, reproducing the pipeline of "Statically Detecting
// JavaScript Obfuscation and Minification Techniques in the Wild" (DSN
// 2021): an Esprima-compatible AST enhanced with control and data flows,
// AST 4-gram plus hand-picked features, and two random-forest classifier
// chains — level 1 separates regular from minified/obfuscated code, level 2
// names the specific techniques used.
//
// Quick start:
//
//	analyzer, err := transformdetect.TrainDefault(42)
//	res, err := analyzer.AnalyzeSource(src)
//	if res.Transformed {
//	    for _, p := range res.Techniques {
//	        fmt.Println(p.Technique, p.Probability)
//	    }
//	}
package transformdetect

import (
	"fmt"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/deobfuscate"
	"repro/internal/features"
	"repro/internal/htmlext"
	"repro/internal/ml"
	"repro/internal/transform"
)

// Technique re-exports the monitored transformation techniques.
type Technique = transform.Technique

// The ten monitored techniques plus the held-out packer.
const (
	IdentifierObfuscation = transform.IdentifierObfuscation
	StringObfuscation     = transform.StringObfuscation
	GlobalArray           = transform.GlobalArray
	NoAlphanumeric        = transform.NoAlphanumeric
	DeadCodeInjection     = transform.DeadCodeInjection
	ControlFlowFlattening = transform.ControlFlowFlattening
	SelfDefending         = transform.SelfDefending
	DebugProtection       = transform.DebugProtection
	MinifySimple          = transform.MinifySimple
	MinifyAdvanced        = transform.MinifyAdvanced
	Packer                = transform.Packer
)

// Techniques lists the ten monitored techniques in canonical order.
func Techniques() []Technique {
	return append([]Technique(nil), transform.Techniques...)
}

// TechniquePrediction is one ranked level 2 prediction.
type TechniquePrediction = core.TechniquePrediction

// Result is the full two-level analysis of one script.
type Result struct {
	// Regular, Minified, Obfuscated are the level 1 class probabilities.
	Regular    float64
	Minified   float64
	Obfuscated float64
	// Transformed is the level 1 verdict: minified and/or obfuscated.
	Transformed bool
	// Techniques ranks the monitored techniques for transformed scripts
	// (top-k with the paper's 10% confidence floor applied); nil for
	// regular scripts.
	Techniques []TechniquePrediction
	// AllTechniques carries the full ranked list, regardless of threshold.
	AllTechniques []TechniquePrediction
}

// Analyzer bundles both trained detectors behind one call.
type Analyzer struct {
	level1 *core.Detector
	level2 *core.Detector
	// TopK bounds the technique report; zero means 4 (the paper's Top-4
	// with 10% floor for wild studies).
	TopK int
	// Threshold is the confidence floor; zero means the paper's 10%.
	Threshold float64
}

// NewAnalyzer wraps two trained detectors.
func NewAnalyzer(level1, level2 *core.Detector) *Analyzer {
	return &Analyzer{level1: level1, level2: level2}
}

// Level1 exposes the first detector.
func (a *Analyzer) Level1() *core.Detector { return a.level1 }

// Level2 exposes the second detector.
func (a *Analyzer) Level2() *core.Detector { return a.level2 }

func (a *Analyzer) topK() int {
	if a.TopK <= 0 {
		return 4
	}
	return a.TopK
}

func (a *Analyzer) threshold() float64 {
	if a.Threshold <= 0 {
		return core.DefaultThreshold
	}
	return a.Threshold
}

// AnalyzeSource runs level 1 and, when the script is transformed, level 2.
func (a *Analyzer) AnalyzeSource(src string) (*Result, error) {
	l1, err := a.level1.ClassifyLevel1(src)
	if err != nil {
		return nil, fmt.Errorf("level 1: %w", err)
	}
	res := &Result{
		Regular:     l1.Regular,
		Minified:    l1.Minified,
		Obfuscated:  l1.Obfuscated,
		Transformed: l1.IsTransformed(),
	}
	if !res.Transformed {
		return res, nil
	}
	l2, err := a.level2.ClassifyLevel2(src)
	if err != nil {
		return nil, fmt.Errorf("level 2: %w", err)
	}
	res.AllTechniques = l2.Ranked
	res.Techniques = l2.TopK(a.topK(), a.threshold())
	return res, nil
}

// Diagnostic re-exports the static indicator finding type.
type Diagnostic = analysis.Diagnostic

// Diagnostics runs the static indicator rules alone — no trained model
// needed — and returns attributable findings with source spans.
func Diagnostics(src string) ([]Diagnostic, error) { return analysis.Analyze(src) }

// ExplainSource analyzes src and additionally runs the static indicator
// rules, marking which predicted techniques are supported by at least one
// diagnostic.
func (a *Analyzer) ExplainSource(src string) (*Result, []Diagnostic, error) {
	res, err := a.AnalyzeSource(src)
	if err != nil {
		return nil, nil, err
	}
	diags, err := analysis.Analyze(src)
	if err != nil {
		return nil, nil, err
	}
	return res, diags, nil
}

// TrainConfig re-exports the pipeline training configuration.
type TrainConfig = core.TrainConfig

// TrainOptions builds a reasonable default detector configuration for the
// given seed.
func TrainOptions(seed int64) core.Options {
	return core.Options{
		Features: features.Options{NGramDims: 1024},
		Forest: ml.ForestOptions{
			NumTrees: 40,
			Parallel: true,
			Tree:     ml.TreeOptions{MTry: 128},
		},
		Seed: seed,
	}
}

// Train fits both detectors from a synthesized corpus per the paper's
// Section III-D recipe and returns an Analyzer (plus the held-out material
// in Trained for evaluation).
func Train(cfg TrainConfig) (*Analyzer, *core.Trained, error) {
	trained, err := core.Train(cfg)
	if err != nil {
		return nil, nil, err
	}
	return NewAnalyzer(trained.Level1, trained.Level2), trained, nil
}

// TrainDefault trains with default sizes from a seed.
func TrainDefault(seed int64) (*Analyzer, error) {
	a, _, err := Train(TrainConfig{Options: TrainOptions(seed)})
	return a, err
}

// Transform applies transformation techniques to JavaScript source — the
// library also ships the ten technique implementations it detects.
func Transform(src string, seed int64, techs ...Technique) (string, error) {
	f := corpus.File{Source: src}
	out, err := corpus.Apply(f, newRand(seed), techs...)
	if err != nil {
		return "", err
	}
	return out.Source, nil
}

// FilterReason re-exports the corpus filter outcome.
type FilterReason = corpus.FilterReason

// Filter applies the paper's corpus filters (size bounds and the
// conditional/function/call AST requirement).
func Filter(src string) FilterReason { return corpus.Filter(src) }

// newRand builds a deterministic rand source (kept in a helper so the
// public API does not expose math/rand types).
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// DeobfuscationReport counts the rewrites each deobfuscation pass applied.
type DeobfuscationReport = deobfuscate.Report

// Deobfuscate statically reverses recognizable obfuscation: string folding,
// global-array resolution, control-flow unflattening, dead-branch pruning,
// bracket-to-dot normalization, and hex-identifier renaming.
func Deobfuscate(src string) (string, DeobfuscationReport, error) {
	return deobfuscate.Source(src, deobfuscate.Options{})
}

// HTMLScript is one JavaScript fragment extracted from an HTML document.
type HTMLScript = htmlext.Script

// ExtractScripts pulls JavaScript out of an HTML document: inline <script>
// bodies, on* event handlers, and javascript: URLs (external src references
// are returned with their URL and an empty Source).
func ExtractScripts(html string) []HTMLScript { return htmlext.Extract(html) }

// AnalyzeHTML extracts all inline JavaScript from an HTML document, joins
// it into one unit (countering payloads scattered across script blocks),
// and analyzes it.
func (a *Analyzer) AnalyzeHTML(html string) (*Result, error) {
	joined := htmlext.JoinInline(htmlext.Extract(html))
	if joined == "" {
		return nil, fmt.Errorf("no inline scripts found")
	}
	return a.AnalyzeSource(joined)
}
