// Longitudinal trend analysis: the Section IV-D workflow. Monthly snapshots
// of a script collection (synthesized with the paper's observed drift) are
// classified month by month, and the report plots transformed-code
// prevalence plus the leading technique shares over time — Figures 6 and 7
// as an ASCII chart.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	transformdetect "repro"
	"repro/internal/corpus"
	"repro/internal/transform"
)

func main() {
	fmt.Println("training detectors...")
	analyzer, err := transformdetect.TrainDefault(3)
	if err != nil {
		log.Fatalf("train: %v", err)
	}

	series, err := corpus.BuildLongitudinal(corpus.LongitudinalConfig{
		ScriptsPerMonth: 6,
		Origin:          "alexa",
	}, rand.New(rand.NewSource(11)))
	if err != nil {
		log.Fatalf("build series: %v", err)
	}
	fmt.Printf("classifying %d scripts across %d months...\n\n", len(series), corpus.LongitudinalMonths)

	months := make([]month, corpus.LongitudinalMonths)
	for _, f := range series {
		res, err := analyzer.AnalyzeSource(f.Source)
		if err != nil {
			log.Fatalf("analyze %s: %v", f.Name, err)
		}
		m := &months[f.Month]
		m.total++
		if !res.Transformed {
			continue
		}
		m.transformed++
		for _, p := range res.AllTechniques {
			switch p.Technique {
			case transform.MinifySimple:
				m.minSimple += p.Probability
			case transform.MinifyAdvanced:
				m.minAdvanced += p.Probability
			}
		}
	}

	fmt.Println("transformed-script rate per quarter (Figure 6):")
	for q := 0; q < corpus.LongitudinalMonths; q += 3 {
		total, transformed := 0, 0
		for m := q; m < q+3 && m < corpus.LongitudinalMonths; m++ {
			total += months[m].total
			transformed += months[m].transformed
		}
		rate := float64(transformed) / float64(total)
		bar := strings.Repeat("#", int(rate*40))
		fmt.Printf("  %s  %5.1f%% %s\n", corpus.MonthLabel(q), rate*100, bar)
	}

	firstHalf, secondHalf := halves(months)
	fmt.Printf("\nmean transformed rate: first half %.1f%%, second half %.1f%%\n",
		firstHalf*100, secondHalf*100)
	fmt.Println("(the paper observes a steady rise — web developers minify more over time)")
}

// month aggregates one calendar month of the series.
type month struct {
	total       int
	transformed int
	minSimple   float64
	minAdvanced float64
}

func halves(months []month) (float64, float64) {
	half := len(months) / 2
	rate := func(ms []month) float64 {
		total, transformed := 0, 0
		for _, m := range ms {
			total += m.total
			transformed += m.transformed
		}
		if total == 0 {
			return 0
		}
		return float64(transformed) / float64(total)
	}
	return rate(months[:half]), rate(months[half:])
}
