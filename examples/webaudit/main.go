// Web audit: the Section IV-B1 workflow as a reusable report. A "crawl" of
// ranked sites (synthesized here; swap in real scraped scripts the same
// way) is audited site by site: which sites ship transformed code, what the
// per-site technique profile looks like, and how transformation rate tracks
// popularity rank.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	transformdetect "repro"
	"repro/internal/corpus"
)

func main() {
	fmt.Println("training detectors...")
	analyzer, err := transformdetect.TrainDefault(21)
	if err != nil {
		log.Fatalf("train: %v", err)
	}

	const sites = 25
	crawl, err := corpus.BuildRanked(corpus.AlexaConfig(sites), rand.New(rand.NewSource(5)))
	if err != nil {
		log.Fatalf("build crawl: %v", err)
	}
	fmt.Printf("auditing %d scripts from %d sites...\n\n", len(crawl), sites)

	type siteReport struct {
		rank        int
		scripts     int
		transformed int
		minified    int
		obfuscated  int
	}
	reports := make(map[int]*siteReport)
	for _, f := range crawl {
		rep := reports[f.Rank]
		if rep == nil {
			rep = &siteReport{rank: f.Rank}
			reports[f.Rank] = rep
		}
		rep.scripts++
		res, err := analyzer.AnalyzeSource(f.Source)
		if err != nil {
			log.Fatalf("analyze %s: %v", f.Name, err)
		}
		if res.Transformed {
			rep.transformed++
		}
		if res.Minified >= 0.5 {
			rep.minified++
		}
		if res.Obfuscated >= 0.5 {
			rep.obfuscated++
		}
	}

	ranks := make([]int, 0, len(reports))
	for r := range reports {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)

	fmt.Printf("%5s %8s %12s %9s %11s\n", "rank", "scripts", "transformed", "minified", "obfuscated")
	sitesWithTransformed := 0
	totalScripts, totalTransformed := 0, 0
	for _, r := range ranks {
		rep := reports[r]
		fmt.Printf("%5d %8d %12d %9d %11d\n", rep.rank, rep.scripts, rep.transformed, rep.minified, rep.obfuscated)
		if rep.transformed > 0 {
			sitesWithTransformed++
		}
		totalScripts += rep.scripts
		totalTransformed += rep.transformed
	}
	fmt.Printf("\n%d/%d sites ship at least one transformed script (paper: 89.4%% of Alexa Top 10k)\n",
		sitesWithTransformed, sites)
	fmt.Printf("%.1f%% of scripts transformed overall (paper: 68.60%%)\n",
		100*float64(totalTransformed)/float64(totalScripts))
}
