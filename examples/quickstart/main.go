// Quickstart: train the two-level detector on a synthesized corpus, then
// classify a handful of scripts — one regular, one minified, one
// obfuscated — and print what the detector sees.
package main

import (
	"fmt"
	"log"

	transformdetect "repro"
)

const regularScript = `
// Format a price with a currency symbol.
function formatPrice(amount, currency) {
  if (currency === undefined) {
    currency = "EUR";
  }
  var rounded = Math.round(amount * 100) / 100;
  return rounded.toFixed(2) + " " + currency;
}

var cart = [
  {name: "notebook", price: 4.5, qty: 3},
  {name: "pencil", price: 0.8, qty: 10},
];

var total = cart.reduce(function (acc, item) {
  return acc + item.price * item.qty;
}, 0);

console.log("total:", formatPrice(total));
`

func main() {
	fmt.Println("training detectors on a synthesized corpus (about a minute)...")
	analyzer, err := transformdetect.TrainDefault(42)
	if err != nil {
		log.Fatalf("train: %v", err)
	}

	// Build two transformed variants with the library's own transformation
	// tooling: a minified one and an obfuscated one.
	minified, err := transformdetect.Transform(regularScript, 7,
		transformdetect.MinifySimple)
	if err != nil {
		log.Fatalf("minify: %v", err)
	}
	obfuscated, err := transformdetect.Transform(regularScript, 7,
		transformdetect.StringObfuscation, transformdetect.GlobalArray,
		transformdetect.IdentifierObfuscation)
	if err != nil {
		log.Fatalf("obfuscate: %v", err)
	}

	for _, tc := range []struct {
		name string
		src  string
	}{
		{"regular", regularScript},
		{"minified", minified},
		{"obfuscated", obfuscated},
	} {
		res, err := analyzer.AnalyzeSource(tc.src)
		if err != nil {
			log.Fatalf("analyze %s: %v", tc.name, err)
		}
		fmt.Printf("\n%s (%d bytes)\n", tc.name, len(tc.src))
		fmt.Printf("  level 1: regular %.2f  minified %.2f  obfuscated %.2f  -> transformed=%v\n",
			res.Regular, res.Minified, res.Obfuscated, res.Transformed)
		for _, p := range res.Techniques {
			fmt.Printf("  level 2: %-26s %.2f\n", p.Technique, p.Probability)
		}
	}
}
