// Deobfuscation walkthrough: obfuscate a script with the library's own
// transformation tools (global string array + string obfuscation + dead
// code + control-flow flattening), detect what was done, then statically
// reverse it and diff the round trip.
package main

import (
	"fmt"
	"log"
	"strings"

	transformdetect "repro"
)

const original = `
function buildGreeting(name, hour) {
  var part = "day";
  if (hour < 12) {
    part = "morning";
  }
  if (hour >= 18) {
    part = "evening";
  }
  var message = "Good " + part + ", " + name + "!";
  return message;
}
console.log(buildGreeting("Ada", 9));
console.log(buildGreeting("Grace", 20));
`

func main() {
	obfuscated, err := transformdetect.Transform(original, 31,
		transformdetect.StringObfuscation,
		transformdetect.GlobalArray,
		transformdetect.DeadCodeInjection,
		transformdetect.ControlFlowFlattening,
	)
	if err != nil {
		log.Fatalf("obfuscate: %v", err)
	}

	fmt.Printf("original: %d bytes\nobfuscated: %d bytes\n\n", len(original), len(obfuscated))
	fmt.Println("--- obfuscated (first lines) ---")
	printHead(obfuscated, 12)

	clear, report, err := transformdetect.Deobfuscate(obfuscated)
	if err != nil {
		log.Fatalf("deobfuscate: %v", err)
	}
	fmt.Println("\n--- deobfuscated ---")
	printHead(clear, 25)
	fmt.Printf("\npasses: %s\n", report)

	for _, needle := range []string{"Good ", "morning", "evening", "Ada"} {
		state := "recovered"
		if !strings.Contains(clear, needle) {
			state = "NOT recovered"
		}
		fmt.Printf("  %-12q %s\n", needle, state)
	}
}

func printHead(src string, lines int) {
	for i, line := range strings.Split(src, "\n") {
		if i >= lines {
			fmt.Println("  ...")
			return
		}
		if len(line) > 100 {
			line = line[:100] + "..."
		}
		fmt.Println("  " + line)
	}
}
