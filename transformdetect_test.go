package transformdetect

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ml"
)

// One small shared analyzer for the facade tests.
var (
	facadeOnce sync.Once
	facade     *Analyzer
	facadeErr  error
)

func getAnalyzer(t *testing.T) *Analyzer {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping facade training in -short mode")
	}
	facadeOnce.Do(func() {
		facade, _, facadeErr = Train(TrainConfig{
			NumRegular: 90,
			Options: core.Options{
				Features: features.Options{NGramDims: 512},
				Forest: ml.ForestOptions{
					NumTrees: 20,
					Parallel: true,
					Tree:     ml.TreeOptions{MTry: 96},
				},
				Seed: 11,
			},
		})
	})
	if facadeErr != nil {
		t.Fatalf("train: %v", facadeErr)
	}
	return facade
}

const facadeSrc = `
// Session helper utilities.
function readSession(storage, key) {
  var raw = storage.getItem(key);
  if (!raw) { return null; }
  try {
    return JSON.parse(raw);
  } catch (err) {
    return null;
  }
}
function writeSession(storage, key, value) {
  storage.setItem(key, JSON.stringify(value));
  return true;
}
var session = readSession(window.localStorage, "session-key");
if (!session) {
  session = {started: Date.now(), visits: 1};
} else {
  session.visits += 1;
}
writeSession(window.localStorage, "session-key", session);
`

func TestAnalyzeRegular(t *testing.T) {
	a := getAnalyzer(t)
	res, err := a.AnalyzeSource(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transformed {
		t.Fatalf("regular script misclassified: %+v", res)
	}
	if res.Techniques != nil {
		t.Fatal("regular scripts carry no technique report")
	}
}

func TestAnalyzeTransformed(t *testing.T) {
	a := getAnalyzer(t)
	min, err := Transform(facadeSrc, 5, MinifySimple)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.AnalyzeSource(min)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Transformed {
		t.Fatalf("minified script not flagged: %+v", res)
	}
	if len(res.Techniques) == 0 {
		t.Fatal("transformed script must carry a technique report")
	}
	if res.Techniques[0].Technique != MinifySimple && res.Techniques[0].Technique != MinifyAdvanced {
		t.Fatalf("top technique = %v, want minification", res.Techniques[0].Technique)
	}
}

func TestAnalyzeHTML(t *testing.T) {
	a := getAnalyzer(t)
	html := "<html><body><script>" + facadeSrc + "</script></body></html>"
	res, err := a.AnalyzeHTML(html)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transformed {
		t.Fatalf("regular inline script misclassified: %+v", res)
	}
	if _, err := a.AnalyzeHTML("<html><body>no scripts</body></html>"); err == nil {
		t.Fatal("expected error for script-free HTML")
	}
}

func TestTransformFacade(t *testing.T) {
	out, err := Transform(facadeSrc, 9, StringObfuscation, GlobalArray)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, `"session-key"`) {
		t.Fatal("strings must be hidden")
	}
	// Determinism.
	again, err := Transform(facadeSrc, 9, StringObfuscation, GlobalArray)
	if err != nil {
		t.Fatal(err)
	}
	if out != again {
		t.Fatal("facade Transform must be deterministic per seed")
	}
}

func TestDeobfuscateFacade(t *testing.T) {
	obf, err := Transform(facadeSrc, 13, StringObfuscation)
	if err != nil {
		t.Fatal(err)
	}
	clear, rep, err := Deobfuscate(obf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() == 0 {
		t.Fatal("deobfuscation applied no rewrites")
	}
	if !strings.Contains(clear, "session-key") {
		t.Fatalf("string not recovered:\n%s", clear)
	}
}

func TestExtractScriptsFacade(t *testing.T) {
	scripts := ExtractScripts(`<script>var a = 1;</script><script src="x.js"></script>`)
	if len(scripts) != 2 {
		t.Fatalf("scripts = %d", len(scripts))
	}
}

func TestFilterFacade(t *testing.T) {
	if Filter("tiny") == 1 { // FilterAccepted
		t.Fatal("tiny input must not pass the corpus filter")
	}
	big := facadeSrc + facadeSrc
	if got := Filter(big); got != 1 {
		t.Fatalf("Filter = %v, want accepted", got)
	}
}

func TestTechniquesList(t *testing.T) {
	techs := Techniques()
	if len(techs) != 10 {
		t.Fatalf("monitored techniques = %d, want 10", len(techs))
	}
	// The returned slice is a copy; mutating it must not corrupt state.
	techs[0] = Packer
	if Techniques()[0] == Packer {
		t.Fatal("Techniques() must return a copy")
	}
}
