#!/usr/bin/env sh
# Tier-2 quality gate: formatting, vet, the jslint static-analysis suite, and
# the full test suite under the race detector. Run from the repository root:
#
#   ./scripts/check.sh
#
# Tier-1 (go build ./... && go test ./...) remains the fast gate; this script
# is the slower pre-merge check.
#
# Knobs:
#   FUZZTIME=2s   shorten (or lengthen) the differential fuzz step; CI's PR
#                 gate uses a short burst, the default 10s is for pre-merge.
#   BENCH=1       also run the benchmark-regression gate (scripts/bench.sh).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt -s needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

# Project-native static analysis: the five jslint analyzers prove the
# hot-path/pool/obs/kind/goroutine invariants on every build. The suite is
# budgeted to stay under ~10s wall (loader plus analysis, currently ~2s); the
# recorded runtime is the early warning before it outgrows the gate.
echo "== jslint =="
jslint_start=$(date +%s)
go run ./cmd/jslint ./...
echo "jslint clean in $(( $(date +%s) - jslint_start ))s"

# The batch scan engine and the CLI on top of it are the concurrency-heavy
# paths; race-check them first and explicitly so a worker-pool regression
# fails fast (the full -race suite below still covers everything). Dedup
# covers the content-hash cache (shared LRU under concurrent workers) and
# the pooled zero-alloc extractors feeding the same scan path.
echo "== go test -race (batch scan + dedup) =="
go test -race -run 'Scan|Dedup|ParallelTrain' ./internal/core ./cmd/jsdetect
go test -race -run 'NGram|CollectStats|ExtractFull' ./internal/features

# The scan service is the worker-pool-over-HTTP layer: the soak test compares
# concurrent /v1/scan verdicts bit-for-bit against a direct ScanBatch, and
# the drain/backpressure tests pin the shutdown and 429 paths. Like jslint,
# the gate is budgeted (~60s wall under -race on a small machine) and the
# recorded runtime is the early warning before it outgrows that.
echo "== go test -race (scan service) =="
service_start=$(date +%s)
go test -race -short ./internal/service ./cmd/jsscand
echo "service suite clean in $(( $(date +%s) - service_start ))s (budget 60s)"

# The stage-0 cascade and the on-disk verdict store: the crash-recovery
# suite (torn writes, flipped checksums, double-open) must hold under the
# race detector, and the false-bypass gate is the measured license for the
# triage bypass to exist at all (<1% disagreement vs the full pipeline over
# the corpus plus all ten transforms).
echo "== go test -race (triage + verdict store) =="
go test -race ./internal/triage ./internal/store
echo "== triage false-bypass gate =="
go test -run TestTriageFalseBypassGate -count=1 ./internal/core

echo "== go test -race =="
go test -race ./...

# Semantic-equivalence oracle: the differential suites are the executable
# ground-truth check behind the transform/deobfuscate pipeline, so run them
# by name (fast, no -race needed — the interpreter is single-goroutine).
echo "== semantic oracle =="
go test -run 'Oracle|Differential' ./internal/oracle ./internal/js/interp

# Short differential fuzz. -fuzzminimizetime is pinned low because corpus
# minimization otherwise monopolizes the single fuzz worker on small
# machines and starves actual exploration.
fuzztime="${FUZZTIME:-10s}"
echo "== fuzz ($fuzztime) =="
go test -fuzz FuzzInterpDifferential -fuzztime "$fuzztime" -fuzzminimizetime 5x -run '^$' ./internal/oracle
# The store record codec: decode must never panic on arbitrary bytes, and
# encode→decode must be the identity (the crash-recovery contract rests on
# both).
go test -fuzz FuzzStoreRecordRoundTrip -fuzztime "$fuzztime" -fuzzminimizetime 5x -run '^$' ./internal/store

# Per-package coverage floors. The interpreter floor guards the oracle (the
# sandbox is only as trustworthy as its coverage); the flow and scope floors
# guard the graph layers every feature and rule is derived from.
echo "== coverage floors =="
check_floor() {
    pkg="$1"
    floor="$2"
    cov=$(go test -count=1 -cover "$pkg" | awk '{for (i=1; i<=NF; i++) if ($i ~ /^[0-9.]+%$/) {sub(/%/, "", $i); print $i}}')
    if [ -z "$cov" ]; then
        echo "could not read $pkg coverage" >&2
        exit 1
    fi
    if ! awk -v c="$cov" -v f="$floor" 'BEGIN { exit !(c >= f) }'; then
        echo "$pkg coverage ${cov}% is below the ${floor}% floor" >&2
        exit 1
    fi
    printf '%-28s %6s%%  (floor %s%%)\n' "$pkg" "$cov" "$floor"
}
check_floor ./internal/js/interp 80
check_floor ./internal/flow      75
check_floor ./internal/js/scope  75
# The two packages the allocation overhaul rewrote: the floors keep the
# pooled/zero-alloc paths and the dedup cache from shedding tests.
check_floor ./internal/features  85
check_floor ./internal/core      80
# The observability layer and the benchmark-diff parser the regression gate
# trusts: both are plumbing other gates depend on, so they get floors too.
check_floor ./internal/obs       75
check_floor ./internal/benchfmt  75
# The scan service: the daemon's correctness harness (soak, drain,
# backpressure, dedup-over-HTTP) must keep covering the package it proves.
check_floor ./internal/service   80
# The stage-0 router and the verdict store: a bypass decision nobody tests
# is a silent misclassification, and an untested recovery path is data loss.
check_floor ./internal/triage    80
check_floor ./internal/store     80

# Informational per-package coverage summary (no gate): a shrinking number
# here is the early warning before a floor trips. The run's output is
# captured first — with set -e a test failure aborts the script instead of
# vanishing into the formatter.
echo "== coverage summary =="
cov_out=$(go test -count=1 -cover ./internal/...)
echo "$cov_out" | awk '
    /^ok/ { cov = "-"; for (i=1; i<=NF; i++) if ($i ~ /%$/) cov = $i
            printf "%-40s %8s\n", $2, cov }'

# Benchmark-regression gate, opt-in via BENCH=1: compares a fresh run of the
# hot-path benchmarks against the last checked-in BENCH_<n>.json and fails
# on a >15% ns/op or >10% allocs/op / B/op regression. Off by default —
# benchmark noise on shared CI
# machines makes it a poor always-on gate; run it when touching the scan
# pipeline. See scripts/bench.sh.
if [ "${BENCH:-0}" = "1" ]; then
    echo "== benchmark regression gate =="
    ./scripts/bench.sh
    # The arena parse path is the most recent hard-won speedup, so it gets a
    # tighter gate than the fleet-wide ±15%: StageParse time and allocs both
    # at ±10% against the same checked-in baseline. A single benchmark is
    # cheap, so fold min-of-8 — the shared host drifts ±10-15% between
    # multi-minute windows, and a deeper fold is the only way a ±10% timing
    # gate stays signal rather than coin flip.
    echo "== benchmark regression gate (StageParse, ±10%) =="
    BENCH_PATTERN='BenchmarkStageParse$' TOLERANCE=0.10 BENCH_COUNT=8 ./scripts/bench.sh
    # The fused scope/flow plane gets the same focused treatment: the dense
    # NodeID rewrite bought the stage its speedup, and a ±10% time+allocs
    # gate on StageFlow is what keeps a stray allocation in the fused walk
    # or a pool-discipline slip from quietly eating it back.
    echo "== benchmark regression gate (StageFlow, ±10%) =="
    BENCH_PATTERN='BenchmarkStageFlow$' TOLERANCE=0.10 BENCH_COUNT=8 ./scripts/bench.sh
fi

echo "OK"
