#!/usr/bin/env sh
# Tier-2 quality gate: formatting, vet, and the full test suite under the
# race detector. Run from the repository root:
#
#   ./scripts/check.sh
#
# Tier-1 (go build ./... && go test ./...) remains the fast gate; this script
# is the slower pre-merge check.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

# The batch scan engine and the CLI on top of it are the concurrency-heavy
# paths; race-check them first and explicitly so a worker-pool regression
# fails fast (the full -race suite below still covers everything).
echo "== go test -race (batch scan) =="
go test -race -run 'Scan|ParallelTrain' ./internal/core ./cmd/jsdetect

echo "== go test -race =="
go test -race ./...

echo "OK"
