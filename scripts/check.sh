#!/usr/bin/env sh
# Tier-2 quality gate: formatting, vet, and the full test suite under the
# race detector. Run from the repository root:
#
#   ./scripts/check.sh
#
# Tier-1 (go build ./... && go test ./...) remains the fast gate; this script
# is the slower pre-merge check.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

# The batch scan engine and the CLI on top of it are the concurrency-heavy
# paths; race-check them first and explicitly so a worker-pool regression
# fails fast (the full -race suite below still covers everything).
echo "== go test -race (batch scan) =="
go test -race -run 'Scan|ParallelTrain' ./internal/core ./cmd/jsdetect

echo "== go test -race =="
go test -race ./...

# Semantic-equivalence oracle: the differential suites are the executable
# ground-truth check behind the transform/deobfuscate pipeline, so run them
# by name (fast, no -race needed — the interpreter is single-goroutine).
echo "== semantic oracle =="
go test -run 'Oracle|Differential' ./internal/oracle ./internal/js/interp

# Short differential fuzz. -fuzzminimizetime is pinned low because corpus
# minimization otherwise monopolizes the single fuzz worker on small
# machines and starves actual exploration.
echo "== fuzz (10s) =="
go test -fuzz FuzzInterpDifferential -fuzztime 10s -fuzzminimizetime 5x -run '^$' ./internal/oracle

# Coverage floor for the interpreter: the oracle is only as trustworthy as
# the sandbox under it.
echo "== interp coverage floor (80%) =="
cov=$(go test -count=1 -cover ./internal/js/interp | awk '{for (i=1; i<=NF; i++) if ($i ~ /^[0-9.]+%$/) {sub(/%/, "", $i); print $i}}')
if [ -z "$cov" ]; then
    echo "could not read internal/js/interp coverage" >&2
    exit 1
fi
if ! awk -v c="$cov" 'BEGIN { exit !(c >= 80.0) }'; then
    echo "internal/js/interp coverage ${cov}% is below the 80% floor" >&2
    exit 1
fi
echo "internal/js/interp coverage: ${cov}%"

echo "OK"
