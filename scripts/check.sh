#!/usr/bin/env sh
# Tier-2 quality gate: formatting, vet, and the full test suite under the
# race detector. Run from the repository root:
#
#   ./scripts/check.sh
#
# Tier-1 (go build ./... && go test ./...) remains the fast gate; this script
# is the slower pre-merge check.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "OK"
