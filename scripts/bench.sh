#!/usr/bin/env sh
# Benchmark-regression harness over the hot-path packages. Two modes:
#
#   ./scripts/bench.sh           compare a fresh run against the latest
#                                checked-in BENCH_<n>.json; exit 2 on any
#                                >TOLERANCE ns/op regression or any
#                                >ALLOC_TOLERANCE allocs/op / B/op regression
#   ./scripts/bench.sh -update   run and write the next BENCH_<n>.json
#                                baseline (check it in with the change that
#                                moved the numbers)
#
# Environment knobs:
#   BENCH_COUNT     go test -count repetitions (default 3; the harness takes
#                   the minimum per benchmark, so more runs = less noise)
#   BENCH_PATTERN   -bench pattern (default . over the hot-path packages)
#   TOLERANCE       relative ns/op gate for compare mode (default 0.15)
#   ALLOC_TOLERANCE relative allocs/op and B/op gate (default 0.10; tighter
#                   than timing because allocation counts are deterministic.
#                   Set to -1 to disable memory gating)
#
# Numbers in a checked-in baseline came from one specific machine; after a
# hardware change, refresh the baseline with -update rather than chasing
# phantom regressions.
set -eu

cd "$(dirname "$0")/.."

# The hot path: batch scan engine + the per-stage benchmarks feeding it.
# The repo-root Benchmark* experiment replications (figures, accuracy) are
# deliberately excluded: they train models and measure accuracy, not speed.
PKGS="./internal/core ./internal/js/parser ./internal/features ./internal/ml ./internal/analysis ./internal/transform"
BENCH_COUNT="${BENCH_COUNT:-3}"
BENCH_PATTERN="${BENCH_PATTERN:-.}"
TOLERANCE="${TOLERANCE:-0.15}"
ALLOC_TOLERANCE="${ALLOC_TOLERANCE:-0.10}"

# Latest checked-in baseline by trajectory number.
latest=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)

mode="${1:-check}"
case "$mode" in
-update|update)
    if [ -n "$latest" ]; then
        n=$(echo "$latest" | sed 's/BENCH_\([0-9]*\)\.json/\1/')
        next="BENCH_$((n + 1)).json"
    else
        # Seeded at the PR number that introduced the harness.
        next="BENCH_4.json"
    fi
    echo "== benchreg run -> $next (count=$BENCH_COUNT) =="
    go run ./cmd/benchreg run -out "$next" -count "$BENCH_COUNT" \
        -bench "$BENCH_PATTERN" \
        -note "scripts/bench.sh -update, count=$BENCH_COUNT" \
        $PKGS
    if [ -n "$latest" ]; then
        echo "== diff $latest -> $next =="
        # New baselines may move: report the diff but do not gate on it.
        # Flags must precede the positional files: the stdlib flag parser
        # stops at the first non-flag argument.
        go run ./cmd/benchreg diff \
            -tolerance "$TOLERANCE" -alloc-tolerance "$ALLOC_TOLERANCE" \
            "$latest" "$next" || true
    fi
    ;;
check|-check)
    if [ -z "$latest" ]; then
        echo "no BENCH_*.json baseline found; run ./scripts/bench.sh -update first" >&2
        exit 1
    fi
    echo "== benchreg compare vs $latest (count=$BENCH_COUNT, tolerance=$TOLERANCE, alloc-tolerance=$ALLOC_TOLERANCE) =="
    go run ./cmd/benchreg compare -baseline "$latest" \
        -tolerance "$TOLERANCE" -alloc-tolerance "$ALLOC_TOLERANCE" \
        -count "$BENCH_COUNT" \
        -bench "$BENCH_PATTERN" \
        $PKGS
    ;;
*)
    echo "usage: $0 [-update]" >&2
    exit 2
    ;;
esac
