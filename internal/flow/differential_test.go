// Differential test for the fused control-edge walk: the pre-fusion CFG
// builder (two walks — cfgBuilder over statements, then a whole-tree pass
// appending ConditionalExpression edges) is preserved below verbatim as the
// reference, and the fused scope/flow walk must emit exactly the same edge
// multiset over the corpus plus every transformation technique. Edges are
// compared as (From, To) NodeID pairs — the fused walk interleaves ternary
// edges with statement edges instead of batching them at the end, so edge
// order is not part of the contract; the multiset is.
package flow

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/corpus"
	"repro/internal/js/ast"
	"repro/internal/js/parser"
	"repro/internal/js/walker"
	"repro/internal/transform"
)

// refControlEdges is the pre-fusion control-edge builder, kept verbatim.
func refControlEdges(prog *ast.Program) []Edge {
	b := &refCfgBuilder{}
	b.stmtList(prog, prog.Body)
	walker.Walk(prog, func(n ast.Node, _ int) bool {
		if cond, ok := n.(*ast.ConditionalExpression); ok {
			b.edges = append(b.edges,
				Edge{From: cond, To: cond.Consequent},
				Edge{From: cond, To: cond.Alternate})
		}
		return true
	})
	return b.edges
}

type refCfgBuilder struct {
	edges []Edge
}

func (b *refCfgBuilder) edge(from, to ast.Node) {
	if from == nil || to == nil {
		return
	}
	b.edges = append(b.edges, Edge{From: from, To: to})
}

func (b *refCfgBuilder) stmtList(parent ast.Node, stmts []ast.Node) {
	var prev ast.Node
	for _, s := range stmts {
		if prev == nil {
			b.edge(parent, s)
		} else {
			b.edge(prev, s)
		}
		b.stmt(s)
		if refTerminates(s) {
			prev = nil
		} else {
			prev = s
		}
	}
}

func refTerminates(s ast.Node) bool {
	switch v := s.(type) {
	case *ast.ReturnStatement, *ast.ThrowStatement, *ast.BreakStatement, *ast.ContinueStatement:
		return true
	case *ast.BlockStatement:
		if len(v.Body) == 0 {
			return false
		}
		return refTerminates(v.Body[len(v.Body)-1])
	default:
		return false
	}
}

func (b *refCfgBuilder) stmt(n ast.Node) {
	switch v := n.(type) {
	case *ast.BlockStatement:
		b.stmtList(v, v.Body)
	case *ast.IfStatement:
		b.funcBodies(v.Test)
		b.edge(v, v.Consequent)
		b.stmt(v.Consequent)
		if v.Alternate != nil {
			b.edge(v, v.Alternate)
			b.stmt(v.Alternate)
		}
	case *ast.WhileStatement:
		b.funcBodies(v.Test)
		b.edge(v, v.Body)
		b.stmt(v.Body)
		b.edge(v.Body, v) // back edge
	case *ast.DoWhileStatement:
		b.edge(v, v.Body)
		b.stmt(v.Body)
		b.edge(v.Body, v)
	case *ast.ForStatement:
		b.funcBodies(v.Init)
		b.funcBodies(v.Test)
		b.funcBodies(v.Update)
		b.edge(v, v.Body)
		b.stmt(v.Body)
		b.edge(v.Body, v)
	case *ast.ForInStatement:
		b.edge(v, v.Body)
		b.stmt(v.Body)
		b.edge(v.Body, v)
	case *ast.ForOfStatement:
		b.edge(v, v.Body)
		b.stmt(v.Body)
		b.edge(v.Body, v)
	case *ast.SwitchStatement:
		b.funcBodies(v.Discriminant)
		for _, c := range v.Cases {
			b.edge(v, c)
			b.stmtList(c, c.Consequent)
		}
	case *ast.TryStatement:
		b.edge(v, v.Block)
		b.stmt(v.Block)
		if v.Handler != nil {
			b.edge(v, v.Handler)
			if v.Handler.Body != nil {
				b.edge(v.Handler, v.Handler.Body)
				b.stmt(v.Handler.Body)
			}
		}
		if v.Finalizer != nil {
			b.edge(v, v.Finalizer)
			b.stmt(v.Finalizer)
		}
	case *ast.LabeledStatement:
		b.edge(v, v.Body)
		b.stmt(v.Body)
	case *ast.WithStatement:
		b.edge(v, v.Body)
		b.stmt(v.Body)
	case *ast.FunctionDeclaration:
		if v.Body != nil {
			b.edge(v, v.Body)
			b.stmt(v.Body)
		}
	case *ast.ExpressionStatement:
		b.funcBodies(v.Expression)
	case *ast.VariableDeclaration:
		for _, d := range v.Declarations {
			if d.Init != nil {
				b.funcBodies(d.Init)
			}
		}
	case *ast.ReturnStatement:
		if v.Argument != nil {
			b.funcBodies(v.Argument)
		}
	case *ast.ExportNamedDeclaration:
		if v.Declaration != nil {
			b.stmt(v.Declaration)
		}
	case *ast.ExportDefaultDeclaration:
		b.funcBodies(v.Declaration)
	}
}

func (b *refCfgBuilder) funcBodies(expr ast.Node) {
	walker.Walk(expr, func(n ast.Node, _ int) bool {
		switch v := n.(type) {
		case *ast.FunctionExpression:
			if v.Body != nil {
				b.edge(v, v.Body)
				b.stmtList(v.Body, v.Body.Body)
			}
			return false
		case *ast.ArrowFunctionExpression:
			if blk, ok := v.Body.(*ast.BlockStatement); ok {
				b.edge(v, blk)
				b.stmtList(blk, blk.Body)
			}
			return false
		case *ast.FunctionDeclaration:
			if v.Body != nil {
				b.edge(v, v.Body)
				b.stmtList(v.Body, v.Body.Body)
			}
			return false
		}
		return true
	})
}

// edgeIDs projects edges onto sorted (From, To) NodeID pairs for multiset
// comparison. Every edge endpoint is a node of the stamped tree, so the
// pair identifies the edge exactly.
func edgeIDs(edges []Edge) [][2]uint32 {
	out := make([][2]uint32, len(edges))
	for i, e := range edges {
		out[i] = [2]uint32{uint32(e.From.NodeID()), uint32(e.To.NodeID())}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// TestFusedControlEdgesMatchReference drives the corpus and all ten
// transformation techniques through the pre-fusion builder and the fused
// walk and requires identical edge multisets.
func TestFusedControlEdgesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	files := corpus.RegularSet(3, rng)
	base := files[0]
	for _, tech := range transform.Techniques {
		out, err := corpus.Apply(base, rng, tech)
		if err != nil {
			t.Fatalf("apply %s: %v", tech, err)
		}
		files = append(files, out)
	}
	s := NewSession()
	for i, f := range files {
		name := fmt.Sprintf("%s#%d", f.Name, i)
		res, err := parser.ParseNoTokens(f.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		want := edgeIDs(refControlEdges(res.Program))
		g := s.Build(res.Program, Options{})
		got := edgeIDs(g.Control)
		if len(got) != len(want) {
			t.Fatalf("%s: %d control edges, reference %d", name, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s: sorted edge %d = %v, reference %v", name, j, got[j], want[j])
			}
		}
	}
}
