package flow

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/js/parser"
	"repro/internal/obs"
)

// Session-poisoning tests: a reused session must behave exactly like a
// fresh one, no matter what the previous Build did (completed, skipped data
// flow, or timed out), and a detached graph must survive the session moving
// on. These mirror the parser session's poisoning suite — the flow session
// recycles even more state (scope slabs, ref stores, edge buffers), so the
// hard-reset contract is load-bearing.

func parseT(t *testing.T, src string) *parser.Result {
	t.Helper()
	res, err := parser.ParseNoTokens(src)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// graphsEquivalent compares two graphs built over the same program.
func graphsEquivalent(t *testing.T, label string, got, want *Graph) {
	t.Helper()
	if got.Root != want.Root {
		t.Fatalf("%s: roots differ", label)
	}
	if got.DataFlowTimedOut != want.DataFlowTimedOut {
		t.Fatalf("%s: DataFlowTimedOut = %v, want %v", label, got.DataFlowTimedOut, want.DataFlowTimedOut)
	}
	if !edgesEqual(got.Control, want.Control) {
		t.Fatalf("%s: control edges differ: %d vs %d", label, len(got.Control), len(want.Control))
	}
	if !edgesEqual(got.Data, want.Data) {
		t.Fatalf("%s: data edges differ: %d vs %d", label, len(got.Data), len(want.Data))
	}
	if (got.Scopes == nil) != (want.Scopes == nil) {
		t.Fatalf("%s: Scopes nil-ness differs", label)
	}
	if got.Scopes != nil && len(got.Scopes.Bindings) != len(want.Scopes.Bindings) {
		t.Fatalf("%s: %d bindings, want %d", label, len(got.Scopes.Bindings), len(want.Scopes.Bindings))
	}
}

// TestSessionReuseMatchesFresh builds a sequence of different files through
// one session; each result must match a fresh session's build of the same
// file.
func TestSessionReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	files := corpus.RegularSet(4, rng)
	s := NewSession()
	for i, f := range files {
		res := parseT(t, f.Source)
		got := s.Build(res.Program, Options{}).Detach()
		want := NewSession().Build(res.Program, Options{})
		graphsEquivalent(t, fmt.Sprintf("%s#%d", f.Name, i), got, want)
	}
}

// TestSessionReuseAfterTimeout checks a Build that hit the data-flow
// deadline leaves no residue: the next Build on the same session is
// complete and correct.
func TestSessionReuseAfterTimeout(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	files := corpus.RegularSet(2, rng)
	s := NewSession()
	resA := parseT(t, files[0].Source)
	g := s.Build(resA.Program, Options{DataFlowDeadline: time.Nanosecond})
	if !g.DataFlowTimedOut {
		t.Fatal("1ns deadline did not time out")
	}
	resB := parseT(t, files[1].Source)
	got := s.Build(resB.Program, Options{})
	want := NewSession().Build(resB.Program, Options{})
	graphsEquivalent(t, "after-timeout", got, want)
	if got.DataFlowTimedOut {
		t.Fatal("timeout flag leaked into the next build")
	}
}

// TestSessionReuseAfterSkipDataFlow checks the SkipDataFlow path resets as
// cleanly as the full one.
func TestSessionReuseAfterSkipDataFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	files := corpus.RegularSet(2, rng)
	s := NewSession()
	resA := parseT(t, files[0].Source)
	if g := s.Build(resA.Program, Options{SkipDataFlow: true}); g.Scopes != nil {
		t.Fatal("SkipDataFlow graph carries scopes")
	}
	resB := parseT(t, files[1].Source)
	got := s.Build(resB.Program, Options{})
	want := NewSession().Build(resB.Program, Options{})
	graphsEquivalent(t, "after-skip", got, want)
}

// TestDetachOutlivesSession pins the escape hatch: a detached graph stays
// intact (edges, scopes, resolution table) while the session that built it
// churns through other files.
func TestDetachOutlivesSession(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	files := corpus.RegularSet(3, rng)
	s := NewSession()
	resA := parseT(t, files[0].Source)
	detached := s.Build(resA.Program, Options{}).Detach()
	want := NewSession().Build(resA.Program, Options{})

	// Churn the session: its internal storage is overwritten per build.
	for _, f := range files[1:] {
		s.Build(parseT(t, f.Source).Program, Options{})
	}

	graphsEquivalent(t, "detached", detached, want)
	checkGraphInvariants(t, detached, resA.Program, "detached")
	for i, b := range want.Scopes.Bindings {
		db := detached.Scopes.Bindings[i]
		if db.Name != b.Name || db.Decl != b.Decl || len(db.Refs) != len(b.Refs) {
			t.Fatalf("detached binding %d (%q) diverged after session reuse", i, b.Name)
		}
		for _, ref := range db.Refs {
			if got := detached.Scopes.BindingOf(ref); got == nil || got.Name != b.Name {
				t.Fatalf("detached BindingOf(%q ref) = %v after session reuse", b.Name, got)
			}
		}
	}
}

// TestDeadlineBurstSkipRegression pins the deadline-sampling fix. The old
// check ran only when len(Data)%4096 == 0 after a binding's refs were
// appended in one burst; a file whose running edge count stepped over every
// multiple (here 3, 6, 9, ...) was never checked at all and an expired
// deadline went unenforced. The counter-based check must time this build
// out.
func TestDeadlineBurstSkipRegression(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 8; i++ {
		// Each binding gets exactly 3 references, so the running total is
		// 3k — never congruent to 0 mod 4096 for any prefix of this file.
		fmt.Fprintf(&b, "var v%d = 1; use(v%d); use(v%d); use(v%d);\n", i, i, i, i)
	}
	res := parseT(t, b.String())
	g := NewSession().Build(res.Program, Options{DataFlowDeadline: time.Nanosecond})
	if !g.DataFlowTimedOut {
		t.Fatal("expired deadline not enforced on burst-stepping ref counts")
	}
	if len(g.Data) != 0 {
		t.Fatalf("timed-out graph carries %d data edges", len(g.Data))
	}
	if g.Scopes == nil {
		t.Fatal("timeout dropped the scope info along with the data edges")
	}
}

// TestFlowMetricNamesInManifest keeps the flow stage's obs recordings in
// lockstep with the metrics manifest (the full-tree sync lives in
// internal/obs's manifest test).
func TestFlowMetricNamesInManifest(t *testing.T) {
	for _, name := range []string{
		"flow.build",
		"flow.graphs",
		"flow.walk.fused",
		"flow.control_edges",
		"flow.data_edges",
		"flow.scope.bindings",
		"flow.dataflow_timeouts",
	} {
		if !obs.KnownMetric(name) {
			t.Errorf("flow records %q but the manifest does not know it", name)
		}
	}
}
