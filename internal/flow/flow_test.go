package flow

import (
	"testing"
	"time"

	"repro/internal/js/ast"
	"repro/internal/js/parser"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Build(prog, Options{})
}

func TestSequentialControlFlow(t *testing.T) {
	g := build(t, "a();\nb();\nc();")
	// Program→a, a→b, b→c.
	if len(g.Control) < 3 {
		t.Fatalf("control edges = %d, want >= 3", len(g.Control))
	}
	first := g.Control[0]
	if _, ok := first.From.(*ast.Program); !ok {
		t.Fatalf("first edge must start at Program, got %s", first.From.Type())
	}
}

func TestBranchEdges(t *testing.T) {
	g := build(t, "if (x) { a(); } else { b(); }")
	var ifNode ast.Node
	branchTargets := 0
	for _, e := range g.Control {
		if _, ok := e.From.(*ast.IfStatement); ok {
			ifNode = e.From
			branchTargets++
		}
	}
	if ifNode == nil || branchTargets != 2 {
		t.Fatalf("if statement must have 2 outgoing branch edges, got %d", branchTargets)
	}
}

func TestLoopBackEdge(t *testing.T) {
	g := build(t, "while (x) { tick(); }")
	seenBack := false
	for _, e := range g.Control {
		if _, ok := e.To.(*ast.WhileStatement); ok {
			if _, ok := e.From.(*ast.BlockStatement); ok {
				seenBack = true
			}
		}
	}
	if !seenBack {
		t.Fatal("missing loop back edge")
	}
}

func TestConditionalExpressionInControlFlow(t *testing.T) {
	g := build(t, "var x = cond ? a() : b();")
	found := 0
	for _, e := range g.Control {
		if _, ok := e.From.(*ast.ConditionalExpression); ok {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("ternary must contribute 2 control edges, got %d", found)
	}
}

func TestTryCatchEdges(t *testing.T) {
	g := build(t, "try { risky(); } catch (e) { recover(); } finally { done(); }")
	var toHandler, toFinalizer bool
	for _, e := range g.Control {
		if _, ok := e.From.(*ast.TryStatement); ok {
			if _, ok := e.To.(*ast.CatchClause); ok {
				toHandler = true
			}
			if blk, ok := e.To.(*ast.BlockStatement); ok && len(blk.Body) == 1 {
				toFinalizer = true
			}
		}
	}
	if !toHandler {
		t.Fatal("missing try→catch edge")
	}
	if !toFinalizer {
		t.Fatal("missing try→finally edge")
	}
}

func TestDataFlowEdges(t *testing.T) {
	g := build(t, "var x = 1;\nvar y = x + x;\nconsole.log(y);")
	// x def→use ×2, y def→use ×1.
	if len(g.Data) != 3 {
		t.Fatalf("data edges = %d, want 3", len(g.Data))
	}
	for _, e := range g.Data {
		if _, ok := e.From.(*ast.Identifier); !ok {
			t.Fatal("data edge source must be an Identifier")
		}
		if _, ok := e.To.(*ast.Identifier); !ok {
			t.Fatal("data edge target must be an Identifier")
		}
	}
}

func TestDataFlowScoping(t *testing.T) {
	g := build(t, `
var x = 1;
function f() {
  var x = 2;
  return x;
}
use(x);`)
	// Outer x: 1 use; inner x: 1 use. No cross-scope edges.
	if len(g.Data) != 2 {
		t.Fatalf("data edges = %d, want 2", len(g.Data))
	}
}

func TestSkipDataFlow(t *testing.T) {
	prog, err := parser.ParseProgram("var x = 1; use(x);")
	if err != nil {
		t.Fatal(err)
	}
	g := Build(prog, Options{SkipDataFlow: true})
	if len(g.Data) != 0 {
		t.Fatal("SkipDataFlow must omit data edges")
	}
	if len(g.Control) == 0 {
		t.Fatal("control edges must still be present")
	}
}

func TestDataFlowDeadline(t *testing.T) {
	prog, err := parser.ParseProgram("var x = 1; use(x);")
	if err != nil {
		t.Fatal(err)
	}
	// A generous deadline must not trigger the fallback.
	g := Build(prog, Options{DataFlowDeadline: time.Minute})
	if g.DataFlowTimedOut {
		t.Fatal("deadline must not fire on a tiny file")
	}
	if len(g.Data) == 0 {
		t.Fatal("expected data edges")
	}
}

func TestFunctionBodiesWired(t *testing.T) {
	g := build(t, "var f = function () { a(); b(); };")
	// The function expression body must have sequential edges.
	seen := false
	for _, e := range g.Control {
		if _, ok := e.From.(*ast.FunctionExpression); ok {
			seen = true
		}
	}
	if !seen {
		t.Fatal("function expression body must join the control flow")
	}
}
