// Package flow enhances the AST with control-flow and data-flow edges,
// mirroring the JStap-style graph the paper builds on top of Esprima. Per
// the paper's adjustments, control flow is restricted to nodes that have an
// impact on execution paths — statement nodes, CatchClause, and
// ConditionalExpression — and data-flow edges connect Identifier nodes only:
// there is an edge from a definition site to each use site of the same
// binding. Data-flow construction honors a configurable deadline (the paper
// uses two minutes); on timeout the graph falls back to control flow only.
//
// Construction is one fused traversal: scope.Session.AnalyzeFlow emits the
// control edges while it resolves scopes (what used to be two walks), and
// the data edges are then read straight off the binding list. A Session
// draws all edge and scope storage from per-session pools; the package-
// level Build wraps a pooled Session and detaches the result, so one-shot
// callers still get a self-contained Graph.
package flow

import (
	"sync"
	"time"

	"repro/internal/js/ast"
	"repro/internal/js/scope"
	"repro/internal/obs"
)

// Edge is a directed edge between two AST nodes. It is an alias for
// scope.Edge: the fused walk emits control edges during scope analysis, so
// the type lives in the lower layer.
type Edge = scope.Edge

// Graph is the AST enhanced with control and data flows.
type Graph struct {
	Root *ast.Program
	// Control edges between control-flow-relevant nodes.
	Control []Edge
	// Data edges from definition Identifiers to use Identifiers.
	Data []Edge
	// Scopes is the scope analysis the data flow was derived from.
	Scopes *scope.Info
	// DataFlowTimedOut reports that the data-flow pass hit its deadline and
	// the graph contains control flow only.
	DataFlowTimedOut bool
}

// Detach deep-copies a session-backed Graph into self-contained storage
// (edges copied, scope info detached). AST node pointers are shared, as
// ever — the nodes belong to the parser.Result.
func (g *Graph) Detach() *Graph {
	out := &Graph{Root: g.Root, DataFlowTimedOut: g.DataFlowTimedOut}
	if g.Control != nil {
		out.Control = append([]Edge(nil), g.Control...)
	}
	if g.Data != nil {
		out.Data = append([]Edge(nil), g.Data...)
	}
	if g.Scopes != nil {
		out.Scopes = g.Scopes.Detach()
	}
	return out
}

// Options configures graph construction.
type Options struct {
	// DataFlowDeadline bounds data-flow construction; zero means the
	// paper's default of two minutes.
	DataFlowDeadline time.Duration
	// SkipDataFlow builds a control-flow-only graph.
	SkipDataFlow bool
}

// DefaultDataFlowDeadline matches the two-minute timeout from the paper.
const DefaultDataFlowDeadline = 2 * time.Minute

// dataFlowCheckEvery is the number of data edges between deadline checks.
// It is a plain edges-since-last-check counter: the old sampling scheme
// (len(Data)%4096 == 0) never fired for files whose per-binding ref bursts
// stepped over the multiple, leaving the deadline unenforced.
const dataFlowCheckEvery = 4096

// Session is a reusable graph builder. It owns a scope.Session plus pooled
// edge storage, so a scan worker that flows many files pays steady-state
// zero allocations for graph construction.
//
// Ownership contract (mirroring parser.Session): the Graph returned by
// Build aliases session storage and is valid only until the next Build on
// the same Session. Use Graph.Detach (or the package-level Build) for a
// self-contained copy. Sessions are not safe for concurrent use.
type Session struct {
	sc   *scope.Session
	data []Edge
	g    Graph
}

// NewSession returns an empty flow session.
func NewSession() *Session {
	return &Session{sc: scope.NewSession()}
}

// Build constructs the enhanced graph for a program, reusing the session's
// pooled storage. It trusts the parser's NodeID stamping (stamping only
// unstamped trees); a tree mutated after stamping must be re-stamped first
// (see DESIGN.md "Dense node plane"). The result is invalidated by the
// next Build on the same Session.
func (s *Session) Build(prog *ast.Program, opts Options) *Graph {
	defer obs.Time("flow.build")()
	deadline := opts.DataFlowDeadline
	if deadline <= 0 {
		deadline = DefaultDataFlowDeadline
	}
	start := time.Now()
	info, control := s.sc.AnalyzeFlow(prog)
	g := &s.g
	*g = Graph{Root: prog, Control: control}
	if opts.SkipDataFlow {
		flushStats(g, info)
		return g
	}
	g.Scopes = info
	// One deadline check covers the fused walk itself; inside the edge loop
	// the counter below takes over.
	if time.Since(start) > deadline {
		g.DataFlowTimedOut = true
		flushStats(g, info)
		return g
	}
	s.data = s.data[:0]
	sinceCheck := 0
	for _, b := range info.Bindings {
		if b.Decl == nil {
			continue
		}
		for _, ref := range b.Refs {
			s.data = append(s.data, Edge{From: b.Decl, To: ref})
		}
		sinceCheck += len(b.Refs)
		if sinceCheck >= dataFlowCheckEvery {
			sinceCheck = 0
			if time.Since(start) > deadline {
				s.data = s.data[:0]
				g.DataFlowTimedOut = true
				flushStats(g, info)
				return g
			}
		}
	}
	g.Data = s.data
	flushStats(g, info)
	return g
}

// sessions recycles flow sessions for the package-level Build, so one-shot
// callers amortize warm-up and still receive self-contained graphs.
var sessions = sync.Pool{New: func() any { return NewSession() }}

// Build constructs the enhanced graph for a program. The returned Graph is
// self-contained; callers that build many graphs should hold a Session.
func Build(prog *ast.Program, opts Options) *Graph {
	s := sessions.Get().(*Session)
	g := s.Build(prog, opts).Detach()
	sessions.Put(s)
	return g
}

// flushStats records one built graph into the obs registry (no-ops when
// metrics are disabled). info is the fused walk's scope result, recorded
// even when the caller drops it (SkipDataFlow).
func flushStats(g *Graph, info *scope.Info) {
	if !obs.Enabled() {
		return
	}
	obs.Add("flow.graphs", 1)
	obs.Add("flow.walk.fused", 1)
	obs.Add("flow.control_edges", int64(len(g.Control)))
	obs.Add("flow.data_edges", int64(len(g.Data)))
	if info != nil {
		obs.Add("flow.scope.bindings", int64(len(info.Bindings)))
	}
	if g.DataFlowTimedOut {
		obs.Add("flow.dataflow_timeouts", 1)
	}
}
