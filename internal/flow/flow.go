// Package flow enhances the AST with control-flow and data-flow edges,
// mirroring the JStap-style graph the paper builds on top of Esprima. Per
// the paper's adjustments, control flow is restricted to nodes that have an
// impact on execution paths — statement nodes, CatchClause, and
// ConditionalExpression — and data-flow edges connect Identifier nodes only:
// there is an edge from a definition site to each use site of the same
// binding. Data-flow construction honors a configurable deadline (the paper
// uses two minutes); on timeout the graph falls back to control flow only.
package flow

import (
	"time"

	"repro/internal/js/ast"
	"repro/internal/js/scope"
	"repro/internal/js/walker"
	"repro/internal/obs"
)

// Edge is a directed edge between two AST nodes.
type Edge struct {
	From ast.Node
	To   ast.Node
}

// Graph is the AST enhanced with control and data flows.
type Graph struct {
	Root *ast.Program
	// Control edges between control-flow-relevant nodes.
	Control []Edge
	// Data edges from definition Identifiers to use Identifiers.
	Data []Edge
	// Scopes is the scope analysis the data flow was derived from.
	Scopes *scope.Info
	// DataFlowTimedOut reports that the data-flow pass hit its deadline and
	// the graph contains control flow only.
	DataFlowTimedOut bool
}

// Options configures graph construction.
type Options struct {
	// DataFlowDeadline bounds data-flow construction; zero means the
	// paper's default of two minutes.
	DataFlowDeadline time.Duration
	// SkipDataFlow builds a control-flow-only graph.
	SkipDataFlow bool
}

// DefaultDataFlowDeadline matches the two-minute timeout from the paper.
const DefaultDataFlowDeadline = 2 * time.Minute

// Build constructs the enhanced graph for a program.
func Build(prog *ast.Program, opts Options) *Graph {
	defer obs.Time("flow.build")()
	g := &Graph{Root: prog}
	g.Control = controlEdges(prog)
	if opts.SkipDataFlow {
		flushStats(g)
		return g
	}
	deadline := opts.DataFlowDeadline
	if deadline <= 0 {
		deadline = DefaultDataFlowDeadline
	}
	start := time.Now()
	info := scope.Analyze(prog)
	g.Scopes = info
	for _, b := range info.Bindings {
		if b.Decl == nil {
			continue
		}
		for _, ref := range b.Refs {
			g.Data = append(g.Data, Edge{From: b.Decl, To: ref})
		}
		if len(g.Data)%4096 == 0 && time.Since(start) > deadline {
			g.Data = nil
			g.DataFlowTimedOut = true
			flushStats(g)
			return g
		}
	}
	flushStats(g)
	return g
}

// flushStats records one built graph into the obs registry (no-ops when
// metrics are disabled).
func flushStats(g *Graph) {
	if !obs.Enabled() {
		return
	}
	obs.Add("flow.graphs", 1)
	obs.Add("flow.control_edges", int64(len(g.Control)))
	obs.Add("flow.data_edges", int64(len(g.Data)))
	if g.DataFlowTimedOut {
		obs.Add("flow.dataflow_timeouts", 1)
	}
}

// controlEdges builds intra-procedural control-flow edges over statement
// nodes, CatchClause, and ConditionalExpression.
func controlEdges(prog *ast.Program) []Edge {
	b := &cfgBuilder{}
	b.stmtList(prog, prog.Body)
	// ConditionalExpression nodes participate in control flow: add an edge
	// from each ternary to its consequent/alternate roots.
	walker.Walk(prog, func(n ast.Node, _ int) bool {
		if cond, ok := n.(*ast.ConditionalExpression); ok {
			b.edges = append(b.edges,
				Edge{From: cond, To: cond.Consequent},
				Edge{From: cond, To: cond.Alternate})
		}
		return true
	})
	return b.edges
}

type cfgBuilder struct {
	edges []Edge
}

func (b *cfgBuilder) edge(from, to ast.Node) {
	if from == nil || to == nil {
		return
	}
	b.edges = append(b.edges, Edge{From: from, To: to})
}

// stmtList wires parent→first, sequential, and structural edges for a
// statement list owned by parent.
func (b *cfgBuilder) stmtList(parent ast.Node, stmts []ast.Node) {
	var prev ast.Node
	for _, s := range stmts {
		if prev == nil {
			b.edge(parent, s)
		} else {
			b.edge(prev, s)
		}
		b.stmt(s)
		if terminates(s) {
			prev = nil
		} else {
			prev = s
		}
	}
}

// terminates reports whether control cannot fall through s.
func terminates(s ast.Node) bool {
	switch v := s.(type) {
	case *ast.ReturnStatement, *ast.ThrowStatement, *ast.BreakStatement, *ast.ContinueStatement:
		return true
	case *ast.BlockStatement:
		if len(v.Body) == 0 {
			return false
		}
		return terminates(v.Body[len(v.Body)-1])
	default:
		return false
	}
}

// stmt adds the internal control edges of one statement.
func (b *cfgBuilder) stmt(n ast.Node) {
	switch v := n.(type) {
	case *ast.BlockStatement:
		b.stmtList(v, v.Body)
	case *ast.IfStatement:
		b.funcBodies(v.Test)
		b.edge(v, v.Consequent)
		b.stmt(v.Consequent)
		if v.Alternate != nil {
			b.edge(v, v.Alternate)
			b.stmt(v.Alternate)
		}
	case *ast.WhileStatement:
		b.funcBodies(v.Test)
		b.edge(v, v.Body)
		b.stmt(v.Body)
		b.edge(v.Body, v) // back edge
	case *ast.DoWhileStatement:
		b.edge(v, v.Body)
		b.stmt(v.Body)
		b.edge(v.Body, v)
	case *ast.ForStatement:
		b.funcBodies(v.Init)
		b.funcBodies(v.Test)
		b.funcBodies(v.Update)
		b.edge(v, v.Body)
		b.stmt(v.Body)
		b.edge(v.Body, v)
	case *ast.ForInStatement:
		b.edge(v, v.Body)
		b.stmt(v.Body)
		b.edge(v.Body, v)
	case *ast.ForOfStatement:
		b.edge(v, v.Body)
		b.stmt(v.Body)
		b.edge(v.Body, v)
	case *ast.SwitchStatement:
		b.funcBodies(v.Discriminant)
		for _, c := range v.Cases {
			b.edge(v, c)
			b.stmtList(c, c.Consequent)
		}
	case *ast.TryStatement:
		b.edge(v, v.Block)
		b.stmt(v.Block)
		if v.Handler != nil {
			b.edge(v, v.Handler)
			if v.Handler.Body != nil {
				b.edge(v.Handler, v.Handler.Body)
				b.stmt(v.Handler.Body)
			}
		}
		if v.Finalizer != nil {
			b.edge(v, v.Finalizer)
			b.stmt(v.Finalizer)
		}
	case *ast.LabeledStatement:
		b.edge(v, v.Body)
		b.stmt(v.Body)
	case *ast.WithStatement:
		b.edge(v, v.Body)
		b.stmt(v.Body)
	case *ast.FunctionDeclaration:
		if v.Body != nil {
			b.edge(v, v.Body)
			b.stmt(v.Body)
		}
	case *ast.ExpressionStatement:
		b.funcBodies(v.Expression)
	case *ast.VariableDeclaration:
		for _, d := range v.Declarations {
			if d.Init != nil {
				b.funcBodies(d.Init)
			}
		}
	case *ast.ReturnStatement:
		if v.Argument != nil {
			b.funcBodies(v.Argument)
		}
	case *ast.ExportNamedDeclaration:
		if v.Declaration != nil {
			b.stmt(v.Declaration)
		}
	case *ast.ExportDefaultDeclaration:
		b.funcBodies(v.Declaration)
	}
}

// funcBodies descends into function expressions nested in an expression and
// wires their bodies (each function body is its own control-flow region).
func (b *cfgBuilder) funcBodies(expr ast.Node) {
	walker.Walk(expr, func(n ast.Node, _ int) bool {
		switch v := n.(type) {
		case *ast.FunctionExpression:
			if v.Body != nil {
				b.edge(v, v.Body)
				b.stmtList(v.Body, v.Body.Body)
			}
			return false
		case *ast.ArrowFunctionExpression:
			if blk, ok := v.Body.(*ast.BlockStatement); ok {
				b.edge(v, blk)
				b.stmtList(blk, blk.Body)
			}
			return false
		case *ast.FunctionDeclaration:
			if v.Body != nil {
				b.edge(v, v.Body)
				b.stmtList(v.Body, v.Body.Body)
			}
			return false
		}
		return true
	})
}
