package flow

import (
	"fmt"
	"math/rand"
	"testing"

	"time"

	"repro/internal/corpus"
	"repro/internal/js/ast"
	"repro/internal/js/parser"
	"repro/internal/js/walker"
	"repro/internal/transform"
)

// Structural invariants of the enhanced graph, checked over generated
// corpus programs (regular and transformed): every edge connects two nodes
// of the graph's own Program, no edge dangles or repeats, and building is
// idempotent — the graph is derived from the AST without mutating it.

// programNodes collects the node set of a program.
func programNodes(prog *ast.Program) map[ast.Node]bool {
	nodes := make(map[ast.Node]bool)
	walker.Walk(prog, func(n ast.Node, _ int) bool {
		nodes[n] = true
		return true
	})
	return nodes
}

// checkGraphInvariants asserts the structural invariants of g against the
// program it claims to enhance.
func checkGraphInvariants(t *testing.T, g *Graph, prog *ast.Program, label string) {
	t.Helper()
	if g.Root != prog {
		t.Fatalf("%s: graph root is not the built program", label)
	}
	nodes := programNodes(prog)
	seenControl := make(map[[2]ast.Node]bool, len(g.Control))
	for i, e := range g.Control {
		if e.From == nil || e.To == nil {
			t.Fatalf("%s: control edge %d has nil endpoint", label, i)
		}
		if !nodes[e.From] || !nodes[e.To] {
			t.Fatalf("%s: control edge %d (%T -> %T) leaves the program's node set",
				label, i, e.From, e.To)
		}
		key := [2]ast.Node{e.From, e.To}
		if seenControl[key] {
			t.Fatalf("%s: duplicate control edge %d (%T -> %T)", label, i, e.From, e.To)
		}
		seenControl[key] = true
	}
	seenData := make(map[[2]ast.Node]bool, len(g.Data))
	for i, e := range g.Data {
		if e.From == nil || e.To == nil {
			t.Fatalf("%s: data edge %d has nil endpoint", label, i)
		}
		if !nodes[e.From] || !nodes[e.To] {
			t.Fatalf("%s: data edge %d leaves the program's node set", label, i)
		}
		// Data flow connects Identifier nodes only (paper's adjustment).
		if _, ok := e.From.(*ast.Identifier); !ok {
			t.Fatalf("%s: data edge %d From is %T, want *ast.Identifier", label, i, e.From)
		}
		if _, ok := e.To.(*ast.Identifier); !ok {
			t.Fatalf("%s: data edge %d To is %T, want *ast.Identifier", label, i, e.To)
		}
		if e.From == e.To {
			t.Fatalf("%s: data edge %d is a self loop", label, i)
		}
		key := [2]ast.Node{e.From, e.To}
		if seenData[key] {
			t.Fatalf("%s: duplicate data edge %d", label, i)
		}
		seenData[key] = true
	}
}

// edgesEqual compares two edge slices for identical content and order.
func edgesEqual(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGraphInvariantsOverCorpus(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			src := corpus.GenerateRegular(rand.New(rand.NewSource(seed)))
			prog, err := parser.ParseProgram(src)
			if err != nil {
				t.Fatalf("corpus generator emitted unparseable JS: %v", err)
			}
			g := Build(prog, Options{})
			checkGraphInvariants(t, g, prog, "regular")
			if len(g.Control) == 0 {
				t.Fatal("generated program produced no control edges")
			}
			if g.Scopes == nil {
				t.Fatal("data-flow build left Scopes nil")
			}

			// Idempotence: a second build over the same AST is identical,
			// proving the first build did not mutate the program.
			g2 := Build(prog, Options{})
			if !edgesEqual(g.Control, g2.Control) {
				t.Fatalf("second build changed control edges: %d vs %d",
					len(g.Control), len(g2.Control))
			}
			if !edgesEqual(g.Data, g2.Data) {
				t.Fatalf("second build changed data edges: %d vs %d",
					len(g.Data), len(g2.Data))
			}
		})
	}
}

// TestGraphInvariantsOverTransforms runs the same invariants over each
// obfuscation/minification technique's output — the adversarial shapes the
// detector actually scans.
func TestGraphInvariantsOverTransforms(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	base := corpus.RegularSet(1, rng)[0]
	for _, tech := range transform.Techniques {
		tech := tech
		t.Run(tech.String(), func(t *testing.T) {
			tf, err := corpus.Apply(base, rng, tech)
			if err != nil {
				t.Fatalf("transform failed: %v", err)
			}
			prog, err := parser.ParseProgram(tf.Source)
			if err != nil {
				t.Fatalf("transformed source unparseable: %v", err)
			}
			g := Build(prog, Options{})
			checkGraphInvariants(t, g, prog, tech.String())
			g2 := Build(prog, Options{})
			if !edgesEqual(g.Control, g2.Control) || !edgesEqual(g.Data, g2.Data) {
				t.Fatal("rebuild over transformed program not idempotent")
			}
		})
	}
}

// TestTerminatorsCutFallthrough pins the control-flow treatment of
// terminating statements: no sequential edge leaves a return/throw/break/
// continue (or a block ending in one), and function bodies nested in
// expressions are still wired.
func TestTerminatorsCutFallthrough(t *testing.T) {
	src := `
function f(c) {
  if (c) { return 1; }
  throw new Error("x");
  unreachable();
}
for (;;) { if (x) break; else continue; after(); }
var g = (function named() { return 0; })();
var h = (() => { return 1; })();
var i = (() => shortArrow)();
`
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(prog, Options{})
	checkGraphInvariants(t, g, prog, "terminators")
	// No control edge may originate at a terminator statement's sequential
	// successor position: find edges whose From is a ThrowStatement — the
	// only edge into `unreachable()` would be throw -> expr, which the
	// builder must not create.
	for _, e := range g.Control {
		if _, ok := e.From.(*ast.ThrowStatement); ok {
			t.Fatalf("control edge leaves a throw statement into %T", e.To)
		}
		if _, ok := e.From.(*ast.BreakStatement); ok {
			t.Fatalf("control edge leaves a break statement into %T", e.To)
		}
	}
	// The IIFE and arrow bodies must participate in control flow: at least
	// one edge originates at each function-expression body.
	var fnBodies int
	for _, e := range g.Control {
		switch e.From.(type) {
		case *ast.FunctionExpression, *ast.ArrowFunctionExpression:
			fnBodies++
		}
	}
	if fnBodies < 2 {
		t.Fatalf("function/arrow expression bodies wired %d times, want >= 2", fnBodies)
	}
}

// TestGraphInvariantsControlFlowOnly checks the SkipDataFlow and timeout
// fallback paths keep the same control-flow invariants.
func TestGraphInvariantsControlFlowOnly(t *testing.T) {
	src := corpus.GenerateRegular(rand.New(rand.NewSource(9)))
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(prog, Options{SkipDataFlow: true})
	checkGraphInvariants(t, g, prog, "skip-data-flow")
	if len(g.Data) != 0 || g.Scopes != nil {
		t.Fatalf("SkipDataFlow graph carries data flow: %d edges", len(g.Data))
	}

	// A 1ns deadline has expired by the time the post-walk check runs
	// (negative/zero deadlines mean "use the default", so the smallest
	// positive duration is the way to force the fallback).
	g = Build(prog, Options{DataFlowDeadline: time.Nanosecond})
	checkGraphInvariants(t, g, prog, "expired-deadline")
	if !g.DataFlowTimedOut {
		t.Fatal("expired deadline did not set DataFlowTimedOut")
	}
	if len(g.Data) != 0 {
		t.Fatalf("timed-out graph carries %d data edges", len(g.Data))
	}
}
