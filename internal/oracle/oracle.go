// Package oracle is the semantic-equivalence oracle over the transform and
// deobfuscation pipelines. It runs an original program and a rewritten
// program in the sandboxed interpreter (internal/js/interp) and compares
// their observable behavior: the sequence of console lines plus the identity
// of the uncaught error, if any, that ended the run.
//
// The oracle is differential in the strict sense: both sides execute in the
// same sandbox, so what is asserted is that a rewrite preserves behavior
// *under this interpreter*, which is exactly the property the transforms and
// deobfuscator promise. Engine-perfect ECMAScript fidelity is not required.
//
// A run that trips a sandbox limit or reaches an unmodeled language feature
// is a Skip, never a silent pass: every skip carries the stable feature name
// reported by the interpreter ("feature.regex", "budget.steps", ...), so
// callers can count and attribute them.
package oracle

import (
	"fmt"

	"repro/internal/js/interp"
)

// Verdict classifies one differential comparison.
type Verdict int

const (
	// Equivalent: both runs completed (or failed) with identical observable
	// output.
	Equivalent Verdict = iota
	// Mismatch: observable output differed. Detail says where.
	Mismatch
	// Skipped: at least one side aborted on a sandbox budget or an
	// unsupported feature; no equivalence claim is made. SkipFeature names
	// the cause.
	Skipped
)

func (v Verdict) String() string {
	switch v {
	case Equivalent:
		return "equivalent"
	case Mismatch:
		return "mismatch"
	case Skipped:
		return "skipped"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Outcome is the result of one differential comparison.
type Outcome struct {
	Verdict Verdict
	// SkipFeature is the interpreter's stable feature name when Verdict is
	// Skipped ("feature.parse", "feature.regex", "budget.steps", ...).
	SkipFeature string
	// Detail describes a mismatch (first diverging log line or error-name
	// difference) or the skip in human-readable form.
	Detail string
	// Original and Transformed hold the raw interpreter results when the
	// corresponding side ran to an observable end.
	Original, Transformed interp.Result
}

// Compare runs both sources and compares observable output.
func Compare(original, transformed string, opts interp.Options) Outcome {
	a, err := interp.Run(original, opts)
	if err != nil {
		return skipOutcome(err, "original")
	}
	b, err := interp.Run(transformed, opts)
	if err != nil {
		return skipOutcome(err, "transformed")
	}
	out := Outcome{Original: a, Transformed: b}
	out.Verdict, out.Detail = diffResults(a, b)
	return out
}

func skipOutcome(err error, side string) Outcome {
	if a, ok := err.(*interp.Abort); ok {
		return Outcome{
			Verdict:     Skipped,
			SkipFeature: a.Feature,
			Detail:      fmt.Sprintf("%s program: %s", side, a.Error()),
		}
	}
	// interp.Run only returns *Abort errors; anything else is a bug worth
	// surfacing as a mismatch rather than a quiet skip.
	return Outcome{Verdict: Mismatch, Detail: fmt.Sprintf("%s program: unexpected error %v", side, err)}
}

// diffResults compares two completed runs.
func diffResults(a, b interp.Result) (Verdict, string) {
	if a.ErrorName != b.ErrorName {
		return Mismatch, fmt.Sprintf("uncaught error %q vs %q", a.ErrorName, b.ErrorName)
	}
	if len(a.Logs) != len(b.Logs) {
		return Mismatch, fmt.Sprintf("log count %d vs %d", len(a.Logs), len(b.Logs))
	}
	for i := range a.Logs {
		if a.Logs[i] != b.Logs[i] {
			return Mismatch, fmt.Sprintf("log line %d: %q vs %q", i, a.Logs[i], b.Logs[i])
		}
	}
	return Equivalent, ""
}

// Stats accumulates per-bucket oracle outcomes, typically one bucket per
// transformation technique.
type Stats struct {
	Pass, Fail int
	// Skips counts skipped comparisons by feature name.
	Skips map[string]int
}

// Record tallies one outcome.
func (s *Stats) Record(o Outcome) {
	switch o.Verdict {
	case Equivalent:
		s.Pass++
	case Mismatch:
		s.Fail++
	case Skipped:
		if s.Skips == nil {
			s.Skips = make(map[string]int)
		}
		s.Skips[o.SkipFeature]++
	}
}

// Total is the number of recorded comparisons.
func (s *Stats) Total() int {
	n := s.Pass + s.Fail
	for _, c := range s.Skips {
		n += c
	}
	return n
}

// SkipCount is the number of skipped comparisons.
func (s *Stats) SkipCount() int {
	n := 0
	for _, c := range s.Skips {
		n += c
	}
	return n
}

// SkipRate is the fraction of comparisons skipped (0 when nothing was
// recorded).
func (s *Stats) SkipRate() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(s.SkipCount()) / float64(t)
}
