package oracle

import (
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/deobfuscate"
	"repro/internal/js/interp"
	"repro/internal/js/parser"
	"repro/internal/js/printer"
	"repro/internal/transform"
)

// programsPerTechnique is the per-technique sample size for the equivalence
// suite; maxSkipRate is the accepted fraction of attributed skips.
const (
	programsPerTechnique = 50
	maxSkipRate          = 0.20
)

// genProgram produces the i-th deterministic corpus program for a suite.
func genProgram(suite int64, i int) (string, *rand.Rand) {
	rng := rand.New(rand.NewSource(suite*100_000 + int64(i)))
	return corpus.GenerateRegular(rng), rng
}

// fitNoAlpha shrinks src at statement granularity until the no-alphanumeric
// encoding is lossless (the technique truncates past its caps by design, so
// oversized programs cannot be semantics-preserving). It drops trailing
// statements first; if even a one-statement prefix is too costly it falls
// back to the first individually encodable statement. Returns "" when
// nothing fits.
func fitNoAlpha(src string) string {
	prog, err := parser.ParseProgram(src)
	if err != nil {
		return ""
	}
	all := prog.Body
	for len(prog.Body) > 0 {
		c := printer.Compact(prog)
		if transform.NoAlphaLossless(c) {
			return c
		}
		prog.Body = prog.Body[:len(prog.Body)-1]
	}
	for _, stmt := range all {
		prog.Body = all[:1]
		prog.Body[0] = stmt
		c := printer.Compact(prog)
		if transform.NoAlphaLossless(c) {
			return c
		}
	}
	return ""
}

// TestOracleTechniqueEquivalence asserts that every monitored transformation
// technique preserves observable behavior on generated corpus programs. Any
// mismatch fails; skips must be attributed and stay under maxSkipRate per
// technique.
func TestOracleTechniqueEquivalence(t *testing.T) {
	for _, tech := range transform.Techniques {
		tech := tech
		t.Run(tech.String(), func(t *testing.T) {
			t.Parallel()
			var st Stats
			for i := 0; i < programsPerTechnique; i++ {
				src, rng := genProgram(int64(tech), i)
				if tech == transform.NoAlphanumeric {
					src = fitNoAlpha(src)
					if src == "" {
						st.Record(Outcome{Verdict: Skipped, SkipFeature: "feature.noalpha-cap"})
						continue
					}
				}
				trans, err := transform.Transform(src, rng, tech)
				if err != nil {
					t.Fatalf("program %d: transform: %v", i, err)
				}
				o := Compare(src, trans, interp.Options{})
				st.Record(o)
				if o.Verdict == Mismatch {
					t.Errorf("program %d: not semantics-preserving: %s", i, o.Detail)
				}
				if o.Verdict == Skipped && o.SkipFeature == "" {
					t.Errorf("program %d: skip without an attributed feature", i)
				}
			}
			if rate := st.SkipRate(); rate >= maxSkipRate {
				t.Errorf("skip rate %.0f%% >= %.0f%% (skips by feature: %v)",
					rate*100, maxSkipRate*100, st.Skips)
			}
			t.Logf("pass=%d fail=%d skips=%v", st.Pass, st.Fail, st.Skips)
		})
	}
}

// TestOracleDeobfuscateRoundTrip obfuscates corpus programs, deobfuscates the
// result, and asserts the deobfuscated program behaves like the obfuscated
// one (and therefore like the original, by the equivalence suite).
func TestOracleDeobfuscateRoundTrip(t *testing.T) {
	// NoAlphanumeric is excluded: its output is a Function-constructor payload
	// the static deobfuscator does not (and is not meant to) unpack.
	techs := []transform.Technique{
		transform.IdentifierObfuscation, transform.StringObfuscation,
		transform.GlobalArray, transform.DeadCodeInjection,
		transform.ControlFlowFlattening, transform.SelfDefending,
		transform.DebugProtection, transform.MinifySimple,
		transform.MinifyAdvanced,
	}
	for _, tech := range techs {
		tech := tech
		t.Run(tech.String(), func(t *testing.T) {
			t.Parallel()
			var st Stats
			for i := 0; i < programsPerTechnique; i++ {
				src, rng := genProgram(1000+int64(tech), i)
				obf, err := transform.Transform(src, rng, tech)
				if err != nil {
					t.Fatalf("program %d: transform: %v", i, err)
				}
				deob, _, err := deobfuscate.Source(obf, deobfuscate.Options{})
				if err != nil {
					t.Fatalf("program %d: deobfuscate: %v", i, err)
				}
				o := Compare(obf, deob, interp.Options{})
				st.Record(o)
				if o.Verdict == Mismatch {
					t.Errorf("program %d: deobfuscation changed behavior: %s", i, o.Detail)
				}
			}
			if rate := st.SkipRate(); rate >= maxSkipRate {
				t.Errorf("skip rate %.0f%% >= %.0f%% (skips by feature: %v)",
					rate*100, maxSkipRate*100, st.Skips)
			}
			t.Logf("pass=%d fail=%d skips=%v", st.Pass, st.Fail, st.Skips)
		})
	}
}

// TestDifferentialPrintReparse asserts that pretty-printing and compacting
// are behavior-preserving: parse -> print -> reparse -> interpret must agree
// with interpreting the original text.
func TestDifferentialPrintReparse(t *testing.T) {
	printers := []struct {
		name  string
		print func(src string) (string, error)
	}{
		{"pretty", func(src string) (string, error) {
			prog, err := parser.ParseProgram(src)
			if err != nil {
				return "", err
			}
			return printer.Print(prog, printer.Options{}), nil
		}},
		{"compact", func(src string) (string, error) {
			prog, err := parser.ParseProgram(src)
			if err != nil {
				return "", err
			}
			return printer.Compact(prog), nil
		}},
	}
	for _, pr := range printers {
		pr := pr
		t.Run(pr.name, func(t *testing.T) {
			t.Parallel()
			var st Stats
			for i := 0; i < programsPerTechnique; i++ {
				src, _ := genProgram(2000, i)
				printed, err := pr.print(src)
				if err != nil {
					t.Fatalf("program %d: print: %v", i, err)
				}
				if _, err := parser.ParseProgram(printed); err != nil {
					t.Errorf("program %d: printed output does not reparse: %v", i, err)
					continue
				}
				o := Compare(src, printed, interp.Options{})
				st.Record(o)
				if o.Verdict == Mismatch {
					t.Errorf("program %d: print changed behavior: %s", i, o.Detail)
				}
			}
			if rate := st.SkipRate(); rate >= maxSkipRate {
				t.Errorf("skip rate %.0f%% >= %.0f%% (skips by feature: %v)",
					rate*100, maxSkipRate*100, st.Skips)
			}
			t.Logf("pass=%d fail=%d skips=%v", st.Pass, st.Fail, st.Skips)
		})
	}
}
