package oracle

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/corpus"
	"repro/internal/js/interp"
	"repro/internal/js/parser"
	"repro/internal/js/printer"
)

// fuzzSkips counts skipped fuzz executions by cause; it is reported at the
// end of the run by TestFuzzSkipReporting so skips are visible, never
// silently dropped.
var fuzzSkips struct {
	parse, feature, budget atomic.Int64
}

// FuzzInterpDifferential feeds arbitrary source through two differential
// properties at once:
//
//  1. Print stability: parse -> compact-print -> reparse -> compact-print
//     must reproduce the first printed form (an AST-equality proxy: a
//     structural change surfaces as a textual one).
//  2. Interpreter equality: the original text and its printed form must have
//     identical observable behavior under the sandboxed interpreter.
//
// Inputs the parser rejects, or that reach an unsupported interpreter
// feature, are skipped with the attributed cause and counted in fuzzSkips.
func FuzzInterpDifferential(f *testing.F) {
	for i := 0; i < 8; i++ {
		rng := rand.New(rand.NewSource(int64(42 + i)))
		f.Add(corpus.GenerateRegular(rng))
	}
	f.Add(`console.log(![]+[], +[![]], [][[]])`)
	f.Add(`var x = 1; try { null.y } catch (e) { console.log(e.name, x) }`)
	f.Add(`for (let i = 0; i < 3; i++) console.log(i)`)

	// Tight budgets keep pathological inputs from dominating the fuzz run.
	opts := interp.Options{MaxSteps: 200_000, MaxAlloc: 8 << 20, MaxLogs: 1000}

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.ParseProgram(src)
		if err != nil {
			fuzzSkips.parse.Add(1)
			t.Skipf("skip feature.parse: %v", err)
		}
		printed := printer.Compact(prog)

		reprog, err := parser.ParseProgram(printed)
		if err != nil {
			t.Fatalf("printed output does not reparse: %v\nsource: %q\nprinted: %q", err, src, printed)
		}
		reprinted := printer.Compact(reprog)
		if printed != reprinted {
			t.Fatalf("print not stable through reparse:\n first: %q\nsecond: %q", printed, reprinted)
		}

		o := Compare(src, printed, opts)
		switch o.Verdict {
		case Mismatch:
			t.Fatalf("printed form changed behavior: %s\nsource: %q", o.Detail, src)
		case Skipped:
			if o.SkipFeature == "" {
				t.Fatalf("skip without an attributed feature: %s", o.Detail)
			}
			if a := (&interp.Abort{Feature: o.SkipFeature}); a.IsUnsupported() {
				fuzzSkips.feature.Add(1)
			} else {
				fuzzSkips.budget.Add(1)
			}
			t.Skipf("skip %s: %s", o.SkipFeature, o.Detail)
		}
	})
}

// TestFuzzSkipReporting surfaces the skip counters accumulated by the seed
// corpus of FuzzInterpDifferential (and by -fuzz runs sharing the process).
func TestFuzzSkipReporting(t *testing.T) {
	t.Logf("fuzz skips: parse=%d feature=%d budget=%d",
		fuzzSkips.parse.Load(), fuzzSkips.feature.Load(), fuzzSkips.budget.Load())
}
