package features

import (
	"math"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/js/ast"
)

// stats aggregates the raw AST counts the hand-picked features are computed
// from.
type stats struct {
	nodes   int
	depth   int
	breadth int

	identCount    int
	identChars    int
	uniqueIdents  int
	hexIdents     int
	shortIdents   int
	identCharHist [128]int

	literalCount   int
	stringCount    int
	stringChars    int
	numberCount    int
	regexCount     int
	stringCharHist [128]int
	encodedStrings int
	base64Strings  int

	callCount       int
	memberCount     int
	bracketMember   int
	ternaryCount    int
	binaryCount     int
	strConcat       int
	arrayCount      int
	arrayElems      int
	switchCount     int
	caseCount       int
	whileTrueSwitch int
	pipeSplit       int
	debuggerCount   int
	debuggerStrings int
	emptyCatch      int
	funcCount       int
	functionCtor    int
	stringOps       int
	numericArgCalls int
	maxExprNesting  int
	largestStrArray int

	builtins map[string]bool
}

var stringOpNames = map[string]bool{
	"split": true, "join": true, "reverse": true, "concat": true,
	"replace": true, "charCodeAt": true, "charAt": true, "substring": true,
	"substr": true, "slice": true, "indexOf": true, "fromCharCode": true,
	"toString": true, "trim": true, "toLowerCase": true, "toUpperCase": true,
}

var builtinNames = map[string]bool{
	"eval": true, "atob": true, "btoa": true, "escape": true, "unescape": true,
	"decodeURIComponent": true, "decodeURI": true, "encodeURIComponent": true,
	"setInterval": true, "setTimeout": true, "Function": true,
	"parseInt": true, "parseFloat": true,
}

// statsCollector holds the reusable scratch state of one collectStats run:
// the seen-identifier set, the per-depth node counts, and the walk cursor.
// Instances recycle through statsCollectorPool so the per-file cost is one
// allocation for the returned stats value; the traversal itself runs over
// ast.EachChild with a visit closure bound once per instance, so it neither
// builds child slices (as ast.Children would) nor allocates closures per call.
type statsCollector struct {
	st          *stats
	names       map[string]bool
	levelCounts []int
	depth       int
	exprNesting int
	visit       func(ast.Node)
}

var statsCollectorPool = sync.Pool{New: func() any {
	c := &statsCollector{
		names:       make(map[string]bool, 256),
		levelCounts: make([]int, 0, 64),
	}
	c.visit = c.visitNode
	return c
}}

func collectStats(prog *ast.Program) *stats {
	c := statsCollectorPool.Get().(*statsCollector)
	st := &stats{builtins: make(map[string]bool)}
	c.st = st
	c.depth = 0
	c.exprNesting = 0
	c.visit(prog)

	st.uniqueIdents = len(c.names)
	for _, cnt := range c.levelCounts {
		if cnt > st.breadth {
			st.breadth = cnt
		}
	}

	clear(c.names)
	for i := range c.levelCounts {
		c.levelCounts[i] = 0
	}
	c.levelCounts = c.levelCounts[:0]
	c.st = nil
	statsCollectorPool.Put(c)
	return st
}

// visitNode tallies one node into the run's stats and recurses through the
// pre-bound c.visit method value (passing visitNode itself would allocate a
// bound closure per node). Its allocation budget is the amortized growth of
// the pooled scratch state — append into levelCounts, inserts into the reused
// maps — which a warmed pool never pays.
//
//jslint:hotpath
func (c *statsCollector) visitNode(n ast.Node) {
	st := c.st
	st.nodes++
	// Depth-first order means depth can exceed the recorded levels by at
	// most one, so a single append keeps levelCounts indexed by depth.
	if c.depth == len(c.levelCounts) {
		c.levelCounts = append(c.levelCounts, 0)
	}
	c.levelCounts[c.depth]++
	if c.depth > st.depth {
		st.depth = c.depth
	}

	isExpr := !ast.IsStatement(n)
	if isExpr {
		c.exprNesting++
		if c.exprNesting > st.maxExprNesting {
			st.maxExprNesting = c.exprNesting
		}
	}

	switch v := n.(type) {
	case *ast.Identifier:
		st.identCount++
		st.identChars += len(v.Name)
		c.names[v.Name] = true
		if strings.HasPrefix(v.Name, "_0x") {
			st.hexIdents++
		}
		if len(v.Name) <= 2 {
			st.shortIdents++
		}
		for i := 0; i < len(v.Name); i++ {
			if v.Name[i] < 128 {
				st.identCharHist[v.Name[i]]++
			}
		}
		if builtinNames[v.Name] {
			st.builtins[v.Name] = true
		}
		if v.Name == "Function" {
			st.functionCtor++
		}
	case *ast.Literal:
		st.literalCount++
		switch v.Kind {
		case ast.LiteralString:
			st.stringCount++
			st.stringChars += len(v.String)
			for i := 0; i < len(v.String); i++ {
				if v.String[i] < 128 {
					st.stringCharHist[v.String[i]]++
				}
			}
			if looksEncoded(v.String) {
				st.encodedStrings++
			}
			if looksBase64(v.String) {
				st.base64Strings++
			}
			if v.String == "debugger" {
				st.debuggerStrings++
			}
		case ast.LiteralNumber:
			st.numberCount++
		case ast.LiteralRegExp:
			st.regexCount++
		}
	case *ast.CallExpression:
		st.callCount++
		if m, ok := v.Callee.(*ast.MemberExpression); ok && !m.Computed {
			if id, ok := m.Property.(*ast.Identifier); ok {
				if stringOpNames[id.Name] {
					st.stringOps++
				}
				if id.Name == "fromCharCode" {
					st.builtins["fromCharCode"] = true
				}
				if id.Name == "split" && len(v.Arguments) == 1 {
					if lit, ok := v.Arguments[0].(*ast.Literal); ok && lit.Kind == ast.LiteralString && lit.String == "|" {
						st.pipeSplit++
					}
				}
				if id.Name == "constructor" {
					st.functionCtor++
				}
			}
		}
		if len(v.Arguments) == 1 {
			if lit, ok := v.Arguments[0].(*ast.Literal); ok && lit.Kind == ast.LiteralNumber {
				if _, isID := v.Callee.(*ast.Identifier); isID {
					st.numericArgCalls++
				}
			}
		}
	case *ast.MemberExpression:
		st.memberCount++
		if v.Computed {
			st.bracketMember++
		}
		if id, ok := v.Property.(*ast.Identifier); ok && !v.Computed && id.Name == "constructor" {
			st.functionCtor++
		}
	case *ast.ConditionalExpression:
		st.ternaryCount++
	case *ast.BinaryExpression:
		st.binaryCount++
		if v.Operator == "+" {
			if isStringLit(v.Left) || isStringLit(v.Right) {
				st.strConcat++
			}
		}
	case *ast.ArrayExpression:
		st.arrayCount++
		st.arrayElems += len(v.Elements)
		strElems := 0
		for _, el := range v.Elements {
			if isStringLit(el) {
				strElems++
			}
		}
		if strElems > st.largestStrArray {
			st.largestStrArray = strElems
		}
	case *ast.SwitchStatement:
		st.switchCount++
		st.caseCount += len(v.Cases)
	case *ast.WhileStatement:
		if lit, ok := v.Test.(*ast.Literal); ok && lit.Kind == ast.LiteralBoolean && lit.Bool {
			if blk, ok := v.Body.(*ast.BlockStatement); ok {
				for _, s := range blk.Body {
					if _, ok := s.(*ast.SwitchStatement); ok {
						st.whileTrueSwitch++
					}
				}
			}
		}
	case *ast.DebuggerStatement:
		st.debuggerCount++
	case *ast.TryStatement:
		if v.Handler != nil && v.Handler.Body != nil && len(v.Handler.Body.Body) == 0 {
			st.emptyCatch++
		}
	case *ast.FunctionDeclaration, *ast.FunctionExpression, *ast.ArrowFunctionExpression:
		st.funcCount++
	case *ast.NewExpression:
		if id, ok := v.Callee.(*ast.Identifier); ok && id.Name == "Function" {
			st.functionCtor++
		}
	}

	c.depth++
	ast.EachChild(n, c.visit)
	c.depth--
	if isExpr {
		c.exprNesting--
	}
}

func isStringLit(n ast.Node) bool {
	lit, ok := n.(*ast.Literal)
	return ok && lit.Kind == ast.LiteralString
}

// looksEncoded and looksBase64 delegate to the canonical definitions shared
// with the static indicator rules in internal/analysis.

func looksEncoded(s string) bool { return analysis.LooksEncoded(s) }

func looksBase64(s string) bool { return analysis.LooksBase64(s) }

// identEntropy is the Shannon entropy of the identifier character
// distribution, normalized to [0, 1].
func (st *stats) identEntropy() float64 {
	return entropy(st.identCharHist[:])
}

// stringEntropy is the Shannon entropy of string literal characters,
// normalized to [0, 1].
func (st *stats) stringEntropy() float64 {
	return entropy(st.stringCharHist[:])
}

func entropy(hist []int) float64 {
	total := 0
	for _, c := range hist {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range hist {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h / 7 // log2(128) = 7 normalizes to [0, 1]
}
