//go:build race

package features

// raceEnabled reports whether the race detector instruments this build; the
// allocation-count tests skip under it because instrumentation allocates.
const raceEnabled = true
