package features

import (
	"testing"

	"repro/internal/js/parser"
)

// TestKindStreamMatchesWalk locks the contract the zero-walk n-gram path
// rests on: the parser's NodeID-stamping pass records exactly the pre-order
// kind stream the pooled kindWalker would produce. Both sides descend via
// ast.EachChild, so any divergence means a child-order bug in one of them.
func TestKindStreamMatchesWalk(t *testing.T) {
	files := goldenFixtures(t)
	for _, f := range files {
		res, err := parser.ParseNoTokens(f.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", f.Name, err)
		}
		if res.Kinds == nil {
			t.Fatalf("%s: parser did not record a kind stream", f.Name)
		}
		w := kindWalkerPool.Get().(*kindWalker)
		w.seq = w.seq[:0]
		w.visitNode(res.Program)
		if len(res.Kinds) != len(w.seq) {
			t.Fatalf("%s: parser stream has %d kinds, walk has %d",
				f.Name, len(res.Kinds), len(w.seq))
		}
		for i := range w.seq {
			if res.Kinds[i] != w.seq[i] {
				t.Fatalf("%s: kind stream diverges at %d: parser %d, walk %d",
					f.Name, i, res.Kinds[i], w.seq[i])
			}
		}
	}
}

// TestNGramFallbackWalkIdentical checks the walk fallback (Results built
// without a parser kind stream) produces bit-identical vectors to the
// zero-walk path.
func TestNGramFallbackWalkIdentical(t *testing.T) {
	files := goldenFixtures(t)
	e := NewExtractor(Options{NGramDims: 256})
	for _, f := range files {
		res, err := parser.ParseNoTokens(f.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", f.Name, err)
		}
		fast := make([]float64, e.opts.dims())
		e.ngramFeatures(res, fast)
		res.Kinds = nil
		slow := make([]float64, e.opts.dims())
		e.ngramFeatures(res, slow)
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("%s: bucket %d = %v via kind stream, %v via walk",
					f.Name, i, fast[i], slow[i])
			}
		}
	}
}
