package features

import (
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/transform"
)

func BenchmarkExtractRegular(b *testing.B) {
	src := corpus.GenerateRegular(rand.New(rand.NewSource(1)))
	for len(src) < 2048 {
		src += corpus.GenerateRegular(rand.New(rand.NewSource(int64(len(src)))))
	}
	e := NewExtractor(Options{})
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Extract(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractMinified(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	src := corpus.GenerateRegular(rng)
	min, err := transform.Transform(src, rng, transform.MinifySimple)
	if err != nil {
		b.Fatal(err)
	}
	e := NewExtractor(Options{})
	b.SetBytes(int64(len(min)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Extract(min); err != nil {
			b.Fatal(err)
		}
	}
}
