// Package features turns a JavaScript file into the fixed-dimension feature
// vector the detectors consume (Section III-B): hashed 4-gram frequencies
// over the AST's syntactic units, plus hand-picked features derived from an
// in-depth study of each transformation technique's syntactic trace.
package features

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/flow"
	"repro/internal/js/ast"
	"repro/internal/js/lexer"
	"repro/internal/js/parser"
	"repro/internal/js/walker"
	"repro/internal/obs"
)

// Options configures extraction.
type Options struct {
	// NGramDims is the size of the hashed 4-gram bucket space. Zero means
	// the default of 1024.
	NGramDims int
	// NGramLen is the n-gram window length; zero means the paper's 4.
	NGramLen int
	// DataFlowDeadline bounds data-flow construction (paper: two minutes).
	DataFlowDeadline time.Duration
	// RuleFeatures appends one dimension per static-analysis rule
	// (internal/analysis) carrying that rule's capped diagnostic count, so
	// the forests can consume the same explainable signals. Opt-in: it
	// changes the vector layout, so models must be trained and loaded with
	// the same setting.
	RuleFeatures bool
}

func (o Options) dims() int {
	if o.NGramDims <= 0 {
		return 1024
	}
	return o.NGramDims
}

func (o Options) ngramLen() int {
	if o.NGramLen <= 0 {
		return 4
	}
	return o.NGramLen
}

// Dims returns the effective n-gram bucket count with the default applied.
// Model files embed it as part of the layout fingerprint.
func (o Options) Dims() int { return o.dims() }

// NGramLength returns the effective n-gram window length with the default
// applied.
func (o Options) NGramLength() int { return o.ngramLen() }

// Vector is a dense feature vector.
type Vector []float64

// Extractor extracts feature vectors with a fixed layout.
type Extractor struct {
	opts Options
	// engine and the rule layout are set only when opts.RuleFeatures is on.
	engine    *analysis.Engine
	ruleNames []string
	ruleIndex map[string]int
}

// NewExtractor builds an extractor.
func NewExtractor(opts Options) *Extractor {
	e := &Extractor{opts: opts}
	if opts.RuleFeatures {
		e.engine = analysis.Default()
		e.ruleIndex = make(map[string]int)
		for i, r := range e.engine.Rules() {
			id := r.Info().ID
			e.ruleNames = append(e.ruleNames, "rule_"+strings.ReplaceAll(id, "-", "_"))
			e.ruleIndex[id] = i
		}
	}
	return e
}

// Dim returns the total vector dimension.
func (e *Extractor) Dim() int { return e.opts.dims() + numHandPicked + len(e.ruleNames) }

// Options returns the extractor's configuration. Batch callers compare it to
// decide whether two detectors can share one feature vector per file.
func (e *Extractor) Options() Options { return e.opts }

// Names returns human-readable names for every dimension.
func (e *Extractor) Names() []string {
	names := make([]string, 0, e.Dim())
	for i := 0; i < e.opts.dims(); i++ {
		names = append(names, fmt.Sprintf("ngram_bucket_%d", i))
	}
	names = append(names, handPickedNames[:]...)
	return append(names, e.ruleNames...)
}

// Extract parses src and computes its feature vector.
func (e *Extractor) Extract(src string) (Vector, error) {
	res, err := parser.ParseNoTokens(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	return e.ExtractParsed(src, res), nil
}

// Flow builds the flow graph the extractor would use for res, honoring the
// configured data-flow deadline. Exposed so callers that also need the graph
// (e.g. core.Detector.Explain) can build it once and share it. The returned
// graph is self-contained.
func (e *Extractor) Flow(res *parser.Result) *flow.Graph {
	return flow.Build(res.Program, flow.Options{DataFlowDeadline: e.opts.DataFlowDeadline})
}

// FlowSession is Flow with the caller's reusable flow session: the scan
// worker loop holds one per worker, so graph storage is recycled across
// files. The returned graph aliases fs's storage and is invalidated by fs's
// next Build.
func (e *Extractor) FlowSession(fs *flow.Session, res *parser.Result) *flow.Graph {
	return fs.Build(res.Program, flow.Options{DataFlowDeadline: e.opts.DataFlowDeadline})
}

// ExtractParsed computes the feature vector from an already-parsed file.
func (e *Extractor) ExtractParsed(src string, res *parser.Result) Vector {
	return e.ExtractFull(src, res, nil, nil)
}

// ExtractFull computes the feature vector, reusing an already-built flow
// graph and/or already-computed diagnostics when the caller has them (both
// may be nil, in which case they are built here as needed).
func (e *Extractor) ExtractFull(src string, res *parser.Result, g *flow.Graph, diags []analysis.Diagnostic) Vector {
	defer obs.Time("features.extract")()
	obs.Add("features.vectors", 1)
	vec := make(Vector, e.Dim())
	e.ngramFeatures(res, vec[:e.opts.dims()])
	if g == nil {
		g = e.Flow(res)
	}
	handPicked(src, res, g, vec[e.opts.dims():e.opts.dims()+numHandPicked])
	if e.engine != nil {
		if diags == nil {
			diags = e.engine.Run(&analysis.Context{
				Src: src, Result: res, Program: res.Program, Graph: g,
			})
		}
		ruleBlock := vec[e.opts.dims()+numHandPicked:]
		for _, d := range diags {
			if i, ok := e.ruleIndex[d.Rule]; ok {
				// Capped count normalized to [0, 1].
				ruleBlock[i] = capAt(ruleBlock[i]+0.25, 1)
			}
		}
	}
	return vec
}

// ngramFeatures hashes sliding windows over the pre-order sequence of AST
// node types into the bucket space and stores normalized frequencies.
//
// This is the hottest loop of the extraction stage, so it is written to not
// allocate: the pre-order kind stream comes straight from the parser's
// NodeID-stamping walk (Result.Kinds) when available — zero re-traversal —
// with a pooled walk as the fallback for hand-built Results. Each window's
// FNV-1a hash is computed by an inlined byte loop over the precomputed
// per-kind byte table. The bucket assignment is bit-identical to hashing
// the Type() strings with hash/fnv (each node contributes its type name
// followed by a 0 separator) — golden_test.go locks this, because every
// trained model's fingerprint depends on the bucket layout staying
// byte-stable; the stamper and the fallback walk share ast.EachChild, so
// the two streams are identical (TestKindStreamMatchesWalk).
//
//jslint:hotpath
func (e *Extractor) ngramFeatures(res *parser.Result, out []float64) {
	seq := res.Kinds
	var w *kindWalker
	if seq == nil {
		w = kindWalkerPool.Get().(*kindWalker)
		w.seq = w.seq[:0]
		w.visitNode(res.Program)
		seq = w.seq
	}
	n := e.opts.ngramLen()
	total := 0
	for i := 0; i+n <= len(seq); i++ {
		h := uint32(fnvOffset32)
		for j := 0; j < n; j++ {
			for _, b := range kindHashBytes[seq[i+j]] {
				h = (h ^ uint32(b)) * fnvPrime32
			}
		}
		out[int(h)%len(out)]++
		total++
	}
	if total > 0 {
		for i := range out {
			out[i] /= float64(total)
		}
	}
	// No defer: the non-panicking hot path returns the buffer by hand to
	// keep the function allocation-free (a deferred closure would escape).
	if w != nil {
		kindWalkerPool.Put(w)
	}
}

// FNV-1a parameters, matching hash/fnv's 32-bit variant.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// kindHashBytes maps each interned kind to the exact bytes the n-gram hash
// historically fed FNV-1a for one node: the ESTree type name plus the 0
// separator.
var kindHashBytes = func() [ast.KindCount][]byte {
	var tbl [ast.KindCount][]byte
	for k := ast.Kind(1); k < ast.KindCount; k++ {
		tbl[k] = append([]byte(ast.KindName(k)), 0)
	}
	return tbl
}()

// kindWalker accumulates a program's pre-order kind sequence. The visit
// field holds visitNode as a method value bound once per instance (in the
// pool's cold New path) so the recursive walk allocates nothing; instances
// recycle through kindWalkerPool across files within a scan worker, so a
// warmed pool extracts n-grams with zero allocations per file (asserted by
// TestNGramFeaturesZeroAlloc and proven construct-by-construct by the jslint
// hotpath-noalloc analyzer).
type kindWalker struct {
	seq   []uint16
	visit func(ast.Node)
}

// visitNode records n's interned kind and recurses. The recursive step passes
// the pre-bound w.visit field, not the visitNode method itself: a method
// value in argument position would allocate its bound closure on every node.
//
//jslint:hotpath
func (w *kindWalker) visitNode(n ast.Node) {
	w.seq = append(w.seq, uint16(n.NodeKind()))
	ast.EachChild(n, w.visit)
}

var kindWalkerPool = sync.Pool{New: func() any {
	w := &kindWalker{seq: make([]uint16, 0, 4096)}
	w.visit = w.visitNode
	return w
}}

// ---------------------------------------------------------------------------
// Hand-picked features
// ---------------------------------------------------------------------------

// handPickedNames documents every hand-picked dimension, in vector order.
var handPickedNames = [...]string{
	"ast_depth_per_line",
	"ast_breadth_per_line",
	"member_per_unique_identifier",
	"prop_call_expression",
	"prop_literal",
	"prop_identifier",
	"has_eval",
	"has_from_char_code",
	"has_atob_btoa",
	"has_escape_unescape",
	"has_decode_uri",
	"has_function_ctor",
	"has_set_interval_timeout",
	"debugger_count_norm",
	"string_op_per_call",
	"avg_identifier_length",
	"avg_chars_per_line",
	"max_chars_per_line_capped",
	"prop_ternary",
	"bracket_member_ratio",
	"avg_array_size",
	"prop_vars_fetched_from_arrays",
	"comment_char_ratio",
	"whitespace_ratio",
	"newline_per_byte",
	"avg_string_length",
	"string_char_ratio",
	"identifier_entropy",
	"hex_identifier_ratio",
	"short_identifier_ratio",
	"string_entropy",
	"encoded_string_ratio",
	"numeric_literal_ratio",
	"string_concat_chain_ratio",
	"avg_switch_cases",
	"while_true_switch",
	"pipe_split_strings",
	"debugger_string_count",
	"regex_literal_ratio",
	"control_edges_per_node",
	"data_edges_per_node",
	"function_density",
	"empty_catch_count",
	"alnum_char_ratio",
	"jsfuck_char_ratio",
	"max_expression_nesting",
	"largest_string_array",
	"indexed_accessor_call_ratio",
	"base64_string_ratio",
	"token_per_byte",
}

const numHandPicked = len(handPickedNames)

// handPicked fills out with the hand-picked feature block.
func handPicked(src string, res *parser.Result, g *flow.Graph, out []float64) {
	prog := res.Program
	set := func(name string, v float64) {
		for i, n := range handPickedNames {
			if n == name {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0
				}
				out[i] = v
				return
			}
		}
		panic("unknown hand-picked feature " + name)
	}

	lines := 1 + strings.Count(src, "\n")
	bytes := len(src)
	if bytes == 0 {
		bytes = 1
	}

	st := collectStats(prog)

	set("ast_depth_per_line", float64(st.depth)/float64(lines))
	set("ast_breadth_per_line", float64(st.breadth)/float64(lines))
	if st.uniqueIdents > 0 {
		set("member_per_unique_identifier", float64(st.memberCount)/float64(st.uniqueIdents))
	}
	nodes := float64(st.nodes)
	if nodes == 0 {
		nodes = 1
	}
	set("prop_call_expression", float64(st.callCount)/nodes)
	set("prop_literal", float64(st.literalCount)/nodes)
	set("prop_identifier", float64(st.identCount)/nodes)
	set("has_eval", b2f(st.builtins["eval"]))
	set("has_from_char_code", b2f(st.builtins["fromCharCode"]))
	set("has_atob_btoa", b2f(st.builtins["atob"] || st.builtins["btoa"]))
	set("has_escape_unescape", b2f(st.builtins["escape"] || st.builtins["unescape"]))
	set("has_decode_uri", b2f(st.builtins["decodeURIComponent"] || st.builtins["decodeURI"]))
	set("has_function_ctor", b2f(st.functionCtor > 0))
	set("has_set_interval_timeout", b2f(st.builtins["setInterval"] || st.builtins["setTimeout"]))
	set("debugger_count_norm", capAt(float64(st.debuggerCount)/10, 1))
	if st.callCount > 0 {
		set("string_op_per_call", float64(st.stringOps)/float64(st.callCount))
	}
	if st.identCount > 0 {
		set("avg_identifier_length", float64(st.identChars)/float64(st.identCount))
	}
	set("avg_chars_per_line", capAt(float64(bytes)/float64(lines)/500, 1))
	set("max_chars_per_line_capped", capAt(maxLineLen(src)/2000, 1))
	set("prop_ternary", float64(st.ternaryCount)/nodes)
	if st.memberCount > 0 {
		set("bracket_member_ratio", float64(st.bracketMember)/float64(st.memberCount))
	}
	if st.arrayCount > 0 {
		set("avg_array_size", capAt(float64(st.arrayElems)/float64(st.arrayCount)/50, 1))
	}
	set("prop_vars_fetched_from_arrays", arrayFetchRatio(g))
	set("comment_char_ratio", commentRatio(res.Comments, bytes))
	set("whitespace_ratio", whitespaceRatio(src))
	set("newline_per_byte", float64(strings.Count(src, "\n"))/float64(bytes))
	if st.stringCount > 0 {
		set("avg_string_length", capAt(float64(st.stringChars)/float64(st.stringCount)/100, 1))
	}
	set("string_char_ratio", capAt(float64(st.stringChars)/float64(bytes), 1))
	set("identifier_entropy", st.identEntropy())
	if st.identCount > 0 {
		set("hex_identifier_ratio", float64(st.hexIdents)/float64(st.identCount))
		set("short_identifier_ratio", float64(st.shortIdents)/float64(st.identCount))
	}
	set("string_entropy", st.stringEntropy())
	if st.stringCount > 0 {
		set("encoded_string_ratio", float64(st.encodedStrings)/float64(st.stringCount))
		set("base64_string_ratio", float64(st.base64Strings)/float64(st.stringCount))
	}
	set("numeric_literal_ratio", float64(st.numberCount)/nodes)
	if st.binaryCount > 0 {
		set("string_concat_chain_ratio", float64(st.strConcat)/float64(st.binaryCount))
	}
	if st.switchCount > 0 {
		set("avg_switch_cases", capAt(float64(st.caseCount)/float64(st.switchCount)/20, 1))
	}
	set("while_true_switch", b2f(st.whileTrueSwitch > 0))
	set("pipe_split_strings", b2f(st.pipeSplit > 0))
	set("debugger_string_count", capAt(float64(st.debuggerStrings)/4, 1))
	set("regex_literal_ratio", float64(st.regexCount)/nodes)
	set("control_edges_per_node", float64(len(g.Control))/nodes)
	set("data_edges_per_node", float64(len(g.Data))/nodes)
	set("function_density", float64(st.funcCount)/nodes)
	set("empty_catch_count", capAt(float64(st.emptyCatch)/4, 1))
	alnum, jsfuck := charClassRatios(src)
	set("alnum_char_ratio", alnum)
	set("jsfuck_char_ratio", jsfuck)
	set("max_expression_nesting", capAt(float64(st.maxExprNesting)/64, 1))
	set("largest_string_array", capAt(float64(st.largestStrArray)/64, 1))
	if st.callCount > 0 {
		set("indexed_accessor_call_ratio", float64(st.numericArgCalls)/float64(st.callCount))
	}
	set("token_per_byte", float64(res.NumTokens)/float64(bytes))
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func capAt(v, limit float64) float64 {
	if v > limit {
		return limit
	}
	if v < 0 {
		return 0
	}
	return v
}

// The source-text statistics below are shared with the static indicator
// rules; internal/analysis holds the canonical definitions.

func maxLineLen(src string) float64 { return float64(analysis.MaxLineLen(src)) }

func commentRatio(comments []lexer.Comment, bytes int) float64 {
	return analysis.CommentRatio(comments, bytes)
}

func whitespaceRatio(src string) float64 { return analysis.WhitespaceRatio(src) }

func charClassRatios(src string) (alnum, jsfuck float64) {
	return analysis.CharClassRatios(src)
}

// arrayFetchRatio uses the data flow to estimate the fraction of variables
// that are fetched from array/dictionary structures: bindings initialized
// with an array or object literal whose references occur as the object of a
// computed member access.
func arrayFetchRatio(g *flow.Graph) float64 {
	if g.Scopes == nil || len(g.Scopes.Bindings) == 0 {
		return 0
	}
	// Build the set of identifiers appearing as computed-access objects.
	objects := make(map[*ast.Identifier]bool)
	walker.Walk(g.Root, func(n ast.Node, _ int) bool {
		if m, ok := n.(*ast.MemberExpression); ok && m.Computed {
			if id, ok := m.Object.(*ast.Identifier); ok {
				objects[id] = true
			}
		}
		return true
	})
	fetched, total := 0, 0
	for _, b := range g.Scopes.Bindings {
		total++
		switch b.Init.(type) {
		case *ast.ArrayExpression, *ast.ObjectExpression:
		default:
			continue
		}
		for _, ref := range b.Refs {
			if objects[ref] {
				fetched++
				break
			}
		}
	}
	return float64(fetched) / float64(total)
}
