package features

import (
	"hash/fnv"
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/js/ast"
	"repro/internal/js/parser"
	"repro/internal/js/walker"
	"repro/internal/transform"
)

// refNgram is the original string-hashing n-gram implementation, kept here as
// the executable specification of the bucket layout: collect the pre-order
// Type() sequence, feed each window's names (0-separated) through hash/fnv's
// FNV-1a, bucket by Sum32 mod dims, normalize by window count. The optimized
// kind-table path in ngramFeatures must reproduce it bit for bit — trained
// models key on this layout.
func refNgram(prog *ast.Program, dims, n int) []float64 {
	var seq []string
	walker.Walk(prog, func(nd ast.Node, _ int) bool {
		seq = append(seq, nd.Type())
		return true
	})
	out := make([]float64, dims)
	total := 0
	for i := 0; i+n <= len(seq); i++ {
		h := fnv.New32a()
		for j := 0; j < n; j++ {
			h.Write([]byte(seq[i+j]))
			h.Write([]byte{0})
		}
		out[int(h.Sum32())%dims]++
		total++
	}
	if total > 0 {
		for i := range out {
			out[i] /= float64(total)
		}
	}
	return out
}

// goldenFixtures builds a corpus that exercises every transformation
// technique plus untransformed bases, so the comparison covers the node-type
// mixes each technique produces.
func goldenFixtures(t *testing.T) []corpus.File {
	t.Helper()
	rng := rand.New(rand.NewSource(29))
	bases := corpus.RegularSet(len(transform.Techniques), rng)
	files := append([]corpus.File(nil), bases...)
	for i, tech := range transform.Techniques {
		tf, err := corpus.Apply(bases[i], rng, tech)
		if err != nil {
			t.Fatalf("apply %s: %v", tech, err)
		}
		files = append(files, tf)
	}
	return files
}

// TestNGramGoldenVectors is the tentpole's bit-identity guarantee: across
// fixtures spanning all ten techniques and several bucket space sizes, the
// zero-alloc path assigns every window to the same bucket as the reference
// implementation.
func TestNGramGoldenVectors(t *testing.T) {
	files := goldenFixtures(t)
	for _, dims := range []int{64, 1024} {
		for _, ngramLen := range []int{3, 4} {
			e := NewExtractor(Options{NGramDims: dims, NGramLen: ngramLen})
			for _, f := range files {
				res, err := parser.ParseNoTokens(f.Source)
				if err != nil {
					t.Fatalf("%s: parse: %v", f.Name, err)
				}
				got := make([]float64, dims)
				e.ngramFeatures(res, got)
				want := refNgram(res.Program, dims, ngramLen)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s dims=%d n=%d: bucket %d = %v, reference %v",
							f.Name, dims, ngramLen, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestExtractFullDeterministic locks the whole vector, not just the n-gram
// block: two independent extractors (pooled scratch and all) must produce
// bit-identical ExtractFull output for every fixture and layout.
func TestExtractFullDeterministic(t *testing.T) {
	files := goldenFixtures(t)
	for _, ruleFeatures := range []bool{false, true} {
		a := NewExtractor(Options{NGramDims: 256, RuleFeatures: ruleFeatures})
		b := NewExtractor(Options{NGramDims: 256, RuleFeatures: ruleFeatures})
		for _, f := range files {
			res, err := parser.ParseNoTokens(f.Source)
			if err != nil {
				t.Fatalf("%s: parse: %v", f.Name, err)
			}
			va := a.ExtractFull(f.Source, res, nil, nil)
			vb := b.ExtractFull(f.Source, res, nil, nil)
			if len(va) != a.Dim() || len(vb) != len(va) {
				t.Fatalf("%s: vector length %d/%d, want %d", f.Name, len(va), len(vb), a.Dim())
			}
			for i := range va {
				if va[i] != vb[i] {
					t.Fatalf("%s (ruleFeatures=%v): dimension %d differs: %v vs %v",
						f.Name, ruleFeatures, i, va[i], vb[i])
				}
			}
		}
	}
}
