package features

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/transform"
)

func extract(t *testing.T, src string) Vector {
	t.Helper()
	e := NewExtractor(Options{NGramDims: 256})
	vec, err := e.Extract(src)
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	return vec
}

func feature(t *testing.T, e *Extractor, vec Vector, name string) float64 {
	t.Helper()
	for i, n := range e.Names() {
		if n == name {
			return vec[i]
		}
	}
	t.Fatalf("feature %q not found", name)
	return 0
}

const regularSrc = `
// A small regular module.
function sum(values) {
  var total = 0;
  for (var i = 0; i < values.length; i++) {
    total += values[i];
  }
  return total;
}
var nums = [1, 2, 3, 4];
console.log(sum(nums));
`

func TestExtractShapes(t *testing.T) {
	e := NewExtractor(Options{NGramDims: 256})
	vec, err := e.Extract(regularSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != e.Dim() {
		t.Fatalf("dim = %d, want %d", len(vec), e.Dim())
	}
	if len(e.Names()) != e.Dim() {
		t.Fatalf("names = %d, want %d", len(e.Names()), e.Dim())
	}
	for i, v := range vec {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("feature %s is %v", e.Names()[i], v)
		}
	}
}

func TestNGramsNormalized(t *testing.T) {
	e := NewExtractor(Options{NGramDims: 128})
	vec, err := e.Extract(regularSrc)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range vec[:128] {
		if v < 0 {
			t.Fatal("negative n-gram frequency")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("n-gram frequencies sum to %v, want 1", sum)
	}
}

func TestExtractError(t *testing.T) {
	e := NewExtractor(Options{})
	if _, err := e.Extract("var = ;;;"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestMinifiedSignals(t *testing.T) {
	e := NewExtractor(Options{NGramDims: 256})
	rng := rand.New(rand.NewSource(1))
	min, err := transform.Transform(regularSrc, rng, transform.MinifySimple)
	if err != nil {
		t.Fatal(err)
	}
	regVec := extract(t, regularSrc)
	minVec := extract(t, min)

	if rw := feature(t, e, regVec, "whitespace_ratio"); rw <= feature(t, e, minVec, "whitespace_ratio") {
		t.Fatal("regular code must have a higher whitespace ratio than minified")
	}
	if rc := feature(t, e, regVec, "avg_chars_per_line"); rc >= feature(t, e, minVec, "avg_chars_per_line") {
		t.Fatal("minified code must have longer lines")
	}
	if ri := feature(t, e, regVec, "avg_identifier_length"); ri <= feature(t, e, minVec, "avg_identifier_length") {
		t.Fatal("minified identifiers must be shorter")
	}
	if feature(t, e, regVec, "comment_char_ratio") <= 0 {
		t.Fatal("regular source has comments")
	}
	if feature(t, e, minVec, "comment_char_ratio") != 0 {
		t.Fatal("minified source must have no comments")
	}
}

func TestIdentifierObfuscationSignals(t *testing.T) {
	e := NewExtractor(Options{NGramDims: 256})
	rng := rand.New(rand.NewSource(2))
	obf, err := transform.Transform(regularSrc, rng, transform.IdentifierObfuscation)
	if err != nil {
		t.Fatal(err)
	}
	obfVec := extract(t, obf)
	regVec := extract(t, regularSrc)
	if feature(t, e, obfVec, "hex_identifier_ratio") <= feature(t, e, regVec, "hex_identifier_ratio") {
		t.Fatal("identifier obfuscation must raise the hex-identifier ratio")
	}
	if feature(t, e, obfVec, "hex_identifier_ratio") < 0.3 {
		t.Fatalf("hex ratio = %v, want most identifiers hex",
			feature(t, e, obfVec, "hex_identifier_ratio"))
	}
}

func TestJSFuckSignals(t *testing.T) {
	e := NewExtractor(Options{NGramDims: 256})
	rng := rand.New(rand.NewSource(3))
	fuck, err := transform.Transform(`console.log("hi");`, rng, transform.NoAlphanumeric)
	if err != nil {
		t.Fatal(err)
	}
	vec := extract(t, fuck)
	if feature(t, e, vec, "alnum_char_ratio") != 0 {
		t.Fatal("JSFuck output has no alphanumeric characters")
	}
	if feature(t, e, vec, "jsfuck_char_ratio") != 1 {
		t.Fatal("JSFuck output is 100% bracket characters")
	}
}

func TestGlobalArraySignals(t *testing.T) {
	e := NewExtractor(Options{NGramDims: 256})
	rng := rand.New(rand.NewSource(4))
	src := regularSrc + `
var labels = ["alpha", "beta", "gamma"];
console.log(labels[1], "direct string", "another one");
`
	out, err := transform.Transform(src, rng, transform.GlobalArray)
	if err != nil {
		t.Fatal(err)
	}
	vec := extract(t, out)
	if feature(t, e, vec, "largest_string_array") <= 0 {
		t.Fatal("global array technique must leave a big string array")
	}
	if feature(t, e, vec, "indexed_accessor_call_ratio") <= 0 {
		t.Fatal("global array technique calls the accessor with numeric args")
	}
}

func TestFlatteningSignals(t *testing.T) {
	e := NewExtractor(Options{NGramDims: 256})
	rng := rand.New(rand.NewSource(5))
	out, err := transform.Transform(regularSrc+"\nsum([1]);\nsum([2]);\nsum([3]);\n", rng, transform.ControlFlowFlattening)
	if err != nil {
		t.Fatal(err)
	}
	vec := extract(t, out)
	if feature(t, e, vec, "while_true_switch") != 1 {
		t.Fatal("flattening must leave a while(true){switch} dispatcher")
	}
	if feature(t, e, vec, "pipe_split_strings") != 1 {
		t.Fatal("flattening must leave a pipe-split order string")
	}
}

func TestDebugProtectionSignals(t *testing.T) {
	e := NewExtractor(Options{NGramDims: 256})
	rng := rand.New(rand.NewSource(6))
	out, err := transform.Transform(regularSrc, rng, transform.DebugProtection)
	if err != nil {
		t.Fatal(err)
	}
	vec := extract(t, out)
	if feature(t, e, vec, "debugger_string_count") <= 0 {
		t.Fatal("debug protection leaves \"debugger\" strings")
	}
	if feature(t, e, vec, "has_set_interval_timeout") != 1 {
		t.Fatal("debug protection registers an interval")
	}
}

func TestDataFlowFeature(t *testing.T) {
	e := NewExtractor(Options{NGramDims: 256})
	src := `
var table = ["a", "b", "c", "d"];
function pick(i) { return table[i]; }
console.log(pick(1), pick(2));
` + strings.Repeat("// pad\n", 10)
	vec := extract(t, src)
	if feature(t, e, vec, "prop_vars_fetched_from_arrays") <= 0 {
		t.Fatal("table is fetched via computed access; data-flow feature must fire")
	}
	if feature(t, e, vec, "data_edges_per_node") <= 0 {
		t.Fatal("data-flow edges must exist")
	}
}

func TestFeatureVectorBounded(t *testing.T) {
	// Property: every hand-picked feature stays within [0, 50] for arbitrary
	// generated regular files (ratios are mostly within [0,1]; a few
	// averages may exceed 1 but must stay bounded).
	e := NewExtractor(Options{NGramDims: 64})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := genSource(rng)
		vec, err := e.Extract(src)
		if err != nil {
			return true // generator may emit files our filter would drop
		}
		for _, v := range vec {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 50 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// genSource builds small pseudo-random but syntactically valid sources.
func genSource(rng *rand.Rand) string {
	var sb strings.Builder
	n := 1 + rng.Intn(20)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			sb.WriteString("var v")
			sb.WriteString(string(rune('a' + rng.Intn(26))))
			sb.WriteString(" = ")
			sb.WriteString(strings.Repeat("1 + ", rng.Intn(5)))
			sb.WriteString("2;\n")
		case 1:
			sb.WriteString("function f")
			sb.WriteString(string(rune('a' + rng.Intn(26))))
			sb.WriteString("(x) { return x ? x * 2 : 0; }\n")
		case 2:
			sb.WriteString("if (Math.random() > 0.5) { console.log(\"hi\"); }\n")
		default:
			sb.WriteString("for (var i = 0; i < 3; i++) { work(i); }\n")
		}
	}
	return sb.String()
}
