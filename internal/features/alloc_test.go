package features

import (
	"testing"

	"repro/internal/js/parser"
)

const allocProbeSrc = `
function decode(arr, key) {
	var out = [];
	for (var i = 0; i < arr.length; i++) {
		out.push(String.fromCharCode(arr[i] ^ key));
	}
	return out.join("");
}
var table = ["alpha", "beta", "gamma", "delta"];
var pick = function (i) { return table[i % table.length]; };
while (table.length < 32) {
	table.push(pick(table.length) + table.length.toString(16));
}
switch (table.length) {
case 32:
	decode([104, 105], 7);
	break;
default:
	eval("table.reverse()");
}
`

// TestNGramFeaturesZeroAlloc pins the hot n-gram path at zero allocations per
// file once the walker pool is warm. A regression here (a new closure, a
// string materialization, a defer) shows up as a nonzero average.
func TestNGramFeaturesZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector; the pooled path is race-checked via TestExtractFullDeterministic")
	}
	res, err := parser.ParseNoTokens(allocProbeSrc)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExtractor(Options{})
	out := make([]float64, e.opts.dims())
	e.ngramFeatures(res, out) // warm the pool

	avg := testing.AllocsPerRun(200, func() {
		for i := range out {
			out[i] = 0
		}
		e.ngramFeatures(res, out)
	})
	if avg != 0 {
		t.Errorf("ngramFeatures allocates %.2f times per run on a warmed pool, want 0", avg)
	}
}

// TestCollectStatsSingleAlloc locks the stats walk to the one unavoidable
// allocation pattern: the returned *stats and its builtins map. Everything
// else (child slices, closures, the identifier set, per-level counts) must
// come from the collector pool.
func TestCollectStatsSingleAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector; the pooled path is race-checked via TestExtractFullDeterministic")
	}
	res, err := parser.ParseNoTokens(allocProbeSrc)
	if err != nil {
		t.Fatal(err)
	}
	collectStats(res.Program) // warm the pool

	avg := testing.AllocsPerRun(200, func() {
		collectStats(res.Program)
	})
	// *stats + the builtins map header; allow its single bucket too.
	if avg > 3 {
		t.Errorf("collectStats allocates %.2f times per run on a warmed pool, want <= 3", avg)
	}
}
