package analysis

import "repro/internal/js/lexer"

// This file holds the source-text statistics shared between the minification
// rules here and the hand-picked feature block in internal/features (which
// delegates to these helpers so both layers agree on the definitions).

// TextStats bundles the whole-source byte statistics several source-level
// rules share. Context.Stats computes it once per file in a single pass so
// adding source-level rules never adds source scans.
type TextStats struct {
	// Lines is the number of lines (at least 1 for non-empty input).
	Lines int
	// MaxLine is the length in bytes of the longest line.
	MaxLine int
	// Whitespace is the fraction of bytes that are whitespace.
	Whitespace float64
	// Alnum is the fraction of alphanumeric bytes.
	Alnum float64
	// JSFuck is the fraction of JSFuck-alphabet bytes ([]()!+).
	JSFuck float64
}

// ComputeTextStats scans src once and returns its byte statistics.
func ComputeTextStats(src string) TextStats {
	st := TextStats{Lines: 1, MaxLine: 0}
	if len(src) == 0 {
		st.Lines = 0
		return st
	}
	ws, alnum, jsfuck, cur := 0, 0, 0, 0
	for i := 0; i < len(src); i++ {
		c := src[i]
		if c == '\n' {
			st.Lines++
			if cur > st.MaxLine {
				st.MaxLine = cur
			}
			cur = 0
		} else {
			cur++
		}
		switch c {
		case ' ', '\t', '\n', '\r':
			ws++
		case '[', ']', '(', ')', '!', '+':
			jsfuck++
		default:
			if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
				alnum++
			}
		}
	}
	if cur > st.MaxLine {
		st.MaxLine = cur
	}
	n := float64(len(src))
	st.Whitespace = float64(ws) / n
	st.Alnum = float64(alnum) / n
	st.JSFuck = float64(jsfuck) / n
	return st
}

// MaxLineLen returns the length in bytes of the longest line of src.
func MaxLineLen(src string) int {
	maxLen, cur := 0, 0
	for i := 0; i < len(src); i++ {
		if src[i] == '\n' {
			if cur > maxLen {
				maxLen = cur
			}
			cur = 0
		} else {
			cur++
		}
	}
	if cur > maxLen {
		maxLen = cur
	}
	return maxLen
}

// WhitespaceRatio returns the fraction of src bytes that are whitespace.
func WhitespaceRatio(src string) float64 {
	ws := 0
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case ' ', '\t', '\n', '\r':
			ws++
		}
	}
	if len(src) == 0 {
		return 0
	}
	return float64(ws) / float64(len(src))
}

// CommentRatio returns the fraction of the file occupied by comment text,
// capped at 1.
func CommentRatio(comments []lexer.Comment, totalBytes int) float64 {
	if totalBytes <= 0 {
		return 0
	}
	total := 0
	for _, c := range comments {
		total += len(c.Text)
	}
	r := float64(total) / float64(totalBytes)
	if r > 1 {
		return 1
	}
	return r
}

// CharClassRatios returns the fraction of alphanumeric bytes and the
// fraction of JSFuck-alphabet bytes ([]()!+) in src.
func CharClassRatios(src string) (alnum, jsfuck float64) {
	if len(src) == 0 {
		return 0, 0
	}
	a, j := 0, 0
	for i := 0; i < len(src); i++ {
		c := src[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			a++
		}
		switch c {
		case '[', ']', '(', ')', '!', '+':
			j++
		}
	}
	return float64(a) / float64(len(src)), float64(j) / float64(len(src))
}

// LooksEncoded reports percent-encoded, hex-escaped, or unicode-escaped
// payload strings.
func LooksEncoded(s string) bool {
	if len(s) < 6 {
		return false
	}
	enc := 0
	for i := 0; i+2 < len(s); i++ {
		if s[i] == '%' && isHexDigit(s[i+1]) && isHexDigit(s[i+2]) {
			enc++
		}
		if s[i] == '\\' && (s[i+1] == 'x' || s[i+1] == 'u') {
			enc++
		}
	}
	return enc*3 >= len(s)/2
}

// LooksBase64 reports strings that look like base64 payloads.
func LooksBase64(s string) bool {
	if len(s) < 12 || len(s)%4 != 0 {
		return false
	}
	letters, digits := 0, 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			letters++
		case c >= '0' && c <= '9':
			digits++
		case c == '+' || c == '/':
		case c == '=' && i >= len(s)-2:
		default:
			return false
		}
	}
	// Require case mixing typical of base64 rather than a plain word.
	return letters > 0 && (digits > 0 || mixedCase(s))
}

func isHexDigit(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'a' && b <= 'f' || b >= 'A' && b <= 'F'
}

func mixedCase(s string) bool {
	hasUpper, hasLower := false, false
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			hasUpper = true
		}
		if s[i] >= 'a' && s[i] <= 'z' {
			hasLower = true
		}
	}
	return hasUpper && hasLower
}
