// Package analysis implements a rule-based static indicator engine: a
// registry of lint-style rules runs over the parsed AST, the scope
// information, and the flow graph, and emits structured diagnostics that
// attribute concrete source spans to the paper's monitored transformation
// techniques. Where the hashed 4-gram vectors of internal/features are
// opaque, these diagnostics are the explainable counterpart: each one names
// a rule, a technique, a source range, and a machine-readable evidence map.
//
// The engine performs exactly ONE walker pass over the AST regardless of how
// many rules are registered: every rule contributes a visit callback that is
// dispatched by node type (or for every node), so adding rules never adds
// traversals. An Engine is immutable after construction and therefore safe
// for concurrent Run calls from corpus workers.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/flow"
	"repro/internal/js/ast"
	"repro/internal/js/parser"
	"repro/internal/js/walker"
	"repro/internal/obs"
)

// Severity grades how strongly a diagnostic implies its technique.
type Severity int

const (
	// SeverityInfo marks weak, contextual signals.
	SeverityInfo Severity = iota + 1
	// SeverityWarning marks statistical signals that could, rarely, occur
	// in benign code.
	SeverityWarning
	// SeverityStrong marks structural fingerprints of a specific
	// transformation tool.
	SeverityStrong
)

var severityNames = map[Severity]string{
	SeverityInfo:    "info",
	SeverityWarning: "warning",
	SeverityStrong:  "strong",
}

func (s Severity) String() string {
	if n, ok := severityNames[s]; ok {
		return n
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON encodes the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) {
	n, ok := severityNames[s]
	if !ok {
		return nil, fmt.Errorf("invalid severity %d", int(s))
	}
	return json.Marshal(n)
}

// UnmarshalJSON decodes a severity name.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var n string
	if err := json.Unmarshal(data, &n); err != nil {
		return err
	}
	for sev, name := range severityNames {
		if name == n {
			*s = sev
			return nil
		}
	}
	return fmt.Errorf("unknown severity %q", n)
}

// Diagnostic is one attributable finding. All fields round-trip through
// encoding/json.
type Diagnostic struct {
	// Rule is the ID of the rule that fired.
	Rule string `json:"rule"`
	// Severity grades the finding.
	Severity Severity `json:"severity"`
	// Technique is the level-2 label the finding supports (one of the
	// paper's ten technique names), or "" for technique-neutral findings.
	Technique string `json:"technique,omitempty"`
	// Span is the source range of the triggering construct.
	Span ast.Span `json:"span"`
	// Message is a human-readable, one-line explanation.
	Message string `json:"message"`
	// Snippet is the (truncated) source text under Span.
	Snippet string `json:"snippet,omitempty"`
	// Evidence carries the raw numbers behind the verdict.
	Evidence map[string]float64 `json:"evidence,omitempty"`
}

// Context is the per-file input shared by all rules during one Run.
type Context struct {
	// Src is the raw source text.
	Src string
	// Result is the parse result (AST, token count, comments).
	Result *parser.Result
	// Program is the AST root (always Result.Program when Result is set).
	Program *ast.Program
	// Graph is the flow graph; Graph.Scopes carries resolved bindings.
	// Rules must tolerate a nil Graph or nil Graph.Scopes.
	Graph *flow.Graph

	statsOnce sync.Once
	stats     TextStats
}

// Stats returns the whole-source text statistics, computed once per Context
// no matter how many source-level rules consult them.
func (c *Context) Stats() TextStats {
	c.statsOnce.Do(func() { c.stats = ComputeTextStats(c.Src) })
	return c.stats
}

// RuleInfo describes a rule to the registry and to feature consumers.
type RuleInfo struct {
	// ID is the stable kebab-case rule identifier.
	ID string
	// Technique is the level-2 label the rule attributes (may be "").
	Technique string
	// Severity is the severity of the diagnostics the rule emits.
	Severity Severity
	// Doc is a one-line description of what the rule detects.
	Doc string
	// Nodes lists the ESTree node types the rule wants to observe. An
	// empty list subscribes the rule to every node; a nil visit callback
	// (source-level rules) subscribes it to none.
	Nodes []string
}

// Visit observes one AST node during the shared traversal.
type Visit func(n ast.Node)

// FinishFunc runs after the traversal so a rule can emit aggregate findings.
type FinishFunc func()

// Rule is one pluggable static indicator.
type Rule interface {
	// Info returns the static description of the rule.
	Info() RuleInfo
	// Start begins one file's analysis and returns the rule's visit and
	// finish callbacks (either may be nil). All mutable state must live in
	// the closure so concurrent Runs never share it.
	Start(ctx *Context, rep *Reporter) (Visit, FinishFunc)
}

// rule is the concrete Rule used by the built-in registry.
type rule struct {
	info  RuleInfo
	start func(ctx *Context, rep *Reporter) (Visit, FinishFunc)
}

func (r *rule) Info() RuleInfo { return r.info }

func (r *rule) Start(ctx *Context, rep *Reporter) (Visit, FinishFunc) {
	return r.start(ctx, rep)
}

// Reporter collects a rule's diagnostics during one Run.
type Reporter struct {
	info  RuleInfo
	src   string
	diags *[]Diagnostic
}

// maxSnippet bounds the snippet text stored on each diagnostic.
const maxSnippet = 120

// Report emits a diagnostic for the given span.
func (r *Reporter) Report(span ast.Span, msg string, evidence map[string]float64) {
	*r.diags = append(*r.diags, Diagnostic{
		Rule:      r.info.ID,
		Severity:  r.info.Severity,
		Technique: r.info.Technique,
		Span:      span,
		Message:   msg,
		Snippet:   snippet(r.src, span),
		Evidence:  evidence,
	})
}

// Reportf is Report with a formatted message.
func (r *Reporter) Reportf(span ast.Span, evidence map[string]float64, format string, args ...interface{}) {
	r.Report(span, fmt.Sprintf(format, args...), evidence)
}

// snippet extracts the capped source text under span.
func snippet(src string, span ast.Span) string {
	lo, hi := span.Start.Offset, span.End.Offset
	if lo < 0 || hi > len(src) || lo >= hi {
		return ""
	}
	if hi-lo > maxSnippet {
		return src[lo:lo+maxSnippet] + "…"
	}
	return src[lo:hi]
}

// Engine runs a fixed rule registry over files. It is immutable after
// construction: concurrent Run calls are safe.
type Engine struct {
	rules []Rule
	// ruleKinds[i] holds the interned kinds of rules[i].Info().Nodes,
	// resolved once here so Run dispatches on small ints instead of
	// hashing type-name strings per node.
	ruleKinds [][]ast.Kind
}

// NewEngine builds an engine over the given rules; with no arguments it uses
// DefaultRules. Every name in a rule's Nodes list must be a known ESTree node
// type; a typo would otherwise silently unsubscribe the rule, so NewEngine
// panics on unknown names.
func NewEngine(rules ...Rule) *Engine {
	if len(rules) == 0 {
		rules = DefaultRules()
	}
	e := &Engine{rules: rules, ruleKinds: make([][]ast.Kind, len(rules))}
	for i, r := range rules {
		info := r.Info()
		for _, name := range info.Nodes {
			k, ok := ast.KindForName(name)
			if !ok {
				panic(fmt.Sprintf("analysis: rule %q subscribes to unknown node type %q", info.ID, name))
			}
			e.ruleKinds[i] = append(e.ruleKinds[i], k)
		}
	}
	return e
}

// Rules returns the registry in registration order.
func (e *Engine) Rules() []Rule { return e.rules }

// Run executes every rule over ctx in one shared AST traversal and returns
// the diagnostics sorted by source position.
func (e *Engine) Run(ctx *Context) []Diagnostic {
	defer obs.Time("analysis.run")()
	var diags []Diagnostic
	var byKind [ast.KindCount][]Visit
	var every []Visit
	finishes := make([]FinishFunc, 0, len(e.rules))
	for i, r := range e.rules {
		info := r.Info()
		rep := &Reporter{info: info, src: ctx.Src, diags: &diags}
		visit, finish := r.Start(ctx, rep)
		if visit != nil {
			if len(info.Nodes) == 0 {
				every = append(every, visit)
			}
			for _, k := range e.ruleKinds[i] {
				byKind[k] = append(byKind[k], visit)
			}
		}
		if finish != nil {
			finishes = append(finishes, finish)
		}
	}
	if ctx.Program != nil {
		walker.Walk(ctx.Program, func(n ast.Node, _ int) bool {
			for _, v := range every {
				v(n)
			}
			for _, v := range byKind[n.NodeKind()] {
				v(n)
			}
			return true
		})
	}
	for _, f := range finishes {
		f()
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Span.Start.Offset != diags[j].Span.Start.Offset {
			return diags[i].Span.Start.Offset < diags[j].Span.Start.Offset
		}
		return diags[i].Rule < diags[j].Rule
	})
	obs.Add("analysis.runs", 1)
	obs.Add("analysis.diagnostics", int64(len(diags)))
	return diags
}

// defaultEngine backs the package-level convenience entry points. Engines
// are immutable, so sharing one across goroutines is safe.
var defaultEngine = NewEngine()

// Default returns the shared engine over DefaultRules.
func Default() *Engine { return defaultEngine }

// Analyze parses src, builds its flow graph, and runs the default rules.
func Analyze(src string) ([]Diagnostic, error) {
	res, err := parser.ParseNoTokens(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	g := flow.Build(res.Program, flow.Options{})
	return AnalyzeParsed(src, res, g), nil
}

// AnalyzeParsed runs the default rules over an already-parsed file. g may be
// nil when no flow graph is available (scope-based rules then skip).
func AnalyzeParsed(src string, res *parser.Result, g *flow.Graph) []Diagnostic {
	return defaultEngine.Run(&Context{Src: src, Result: res, Program: res.Program, Graph: g})
}
