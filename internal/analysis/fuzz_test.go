package analysis

import (
	"testing"

	"repro/internal/flow"
	"repro/internal/js/parser"
)

// FuzzAnalyze checks the engine never panics on arbitrary parseable input
// and that every diagnostic carries a coherent span.
func FuzzAnalyze(f *testing.F) {
	seeds := []string{
		compositeSource,
		`var _0x1a2b = 1; function _0x3c4d(_0x5e6f) { return _0x1a2b + _0x5e6f; }`,
		`var a = atob("aGVsbG8gd29ybGQhIQ=="); eval(a);`,
		`var t = ["x", "y", "z", "w", "v", "u", "s", "r"]; function g(i) { return t[i - 4]; } g(4);`,
		`var o = "2|0|1".split("|"), i = 0; while (true) { switch (o[i++]) { case "0": b(); continue; case "1": a(); continue; case "2": c(); continue; } break; }`,
		`if (1 === 2) { dead(); } else { live(); }`,
		`p.constructor("return /" + this + "/")().constructor("^([^ ]+( +[^ ]+)+)+[^ ]}");`,
		`(function () {}).constructor("debugger").call("action"); setInterval(f, 4000);`,
		`[![],!![],+[],+!![],[![]],[!![]]];`,
		"`tpl ${1 + 2} tail`",
		`import { a as b } from "m"; export { b as c };`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		res, err := parser.ParseNoTokens(src)
		if err != nil {
			return
		}
		g := flow.Build(res.Program, flow.Options{})
		for _, d := range AnalyzeParsed(src, res, g) {
			if d.Rule == "" {
				t.Errorf("diagnostic without rule ID: %+v", d)
			}
			if d.Span.End.Offset < d.Span.Start.Offset {
				t.Errorf("inverted span in %s: %+v", d.Rule, d.Span)
			}
		}
	})
}
