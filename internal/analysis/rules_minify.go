package analysis

import (
	"repro/internal/js/ast"
	"repro/internal/transform"
)

// ruleMinifiedSource flags whitespace/comment-stripped sources packed into
// very long lines — the text-level trace of minification.
func ruleMinifiedSource() Rule {
	const (
		minBytes          = 512
		minAvgLine        = 200.0
		minMaxLine        = 800
		maxWhitespace     = 0.06
		maxCommentContent = 0.01
	)
	return &rule{
		info: RuleInfo{
			ID:        "minified-source",
			Technique: transform.MinifySimple.String(),
			Severity:  SeverityWarning,
			Doc:       "whitespace and comments stripped, source packed into long lines",
		},
		start: func(ctx *Context, rep *Reporter) (Visit, FinishFunc) {
			finish := func() {
				src := ctx.Src
				if len(src) < minBytes {
					return
				}
				st := ctx.Stats()
				avgLine := float64(len(src)) / float64(st.Lines)
				maxLine := st.MaxLine
				ws := st.Whitespace
				comments := 0.0
				if ctx.Result != nil {
					comments = CommentRatio(ctx.Result.Comments, len(src))
				}
				if ws > maxWhitespace || comments > maxCommentContent {
					return
				}
				if avgLine < minAvgLine && maxLine < minMaxLine {
					return
				}
				span := ast.Span{}
				if ctx.Program != nil {
					span = ctx.Program.Span()
				}
				rep.Reportf(span, map[string]float64{
					"avg_line_len":     avgLine,
					"max_line_len":     float64(maxLine),
					"whitespace_ratio": ws,
					"comment_ratio":    comments,
				}, "source is packed into long lines (avg %.0f bytes) with %.1f%% whitespace and no comments",
					avgLine, ws*100)
			}
			return nil, finish
		},
	}
}

// ruleRenamedIdentifiers flags wholesale renaming of declared bindings to
// 1-2 character names — the advanced-minification identifier shortening.
func ruleRenamedIdentifiers() Rule {
	const (
		minBindings = 12
		minRatio    = 0.75
	)
	return &rule{
		info: RuleInfo{
			ID:        "renamed-identifiers",
			Technique: transform.MinifyAdvanced.String(),
			Severity:  SeverityWarning,
			Doc:       "declared bindings renamed to 1-2 character identifiers",
		},
		start: func(ctx *Context, rep *Reporter) (Visit, FinishFunc) {
			finish := func() {
				if ctx.Graph == nil || ctx.Graph.Scopes == nil {
					return
				}
				declared, short := 0, 0
				var first ast.Span
				for _, b := range ctx.Graph.Scopes.Bindings {
					if b.Decl == nil {
						continue
					}
					declared++
					if len(b.Name) <= 2 {
						if short == 0 {
							first = b.Decl.Span()
						}
						short++
					}
				}
				if declared < minBindings {
					return
				}
				ratio := float64(short) / float64(declared)
				if ratio < minRatio {
					return
				}
				rep.Reportf(first, map[string]float64{
					"bindings":       float64(declared),
					"short_bindings": float64(short),
					"ratio":          ratio,
				}, "%d of %d declared bindings use 1-2 character names", short, declared)
			}
			return nil, finish
		},
	}
}
