package analysis

import (
	"strings"

	"repro/internal/js/ast"
	"repro/internal/transform"
)

// ruleSelfDefending flags the obfuscator.io self-defending guard: a function
// converts itself to source text via `.constructor("return /" + this + "/")`
// and tests it against a formatting-sensitive regular expression.
func ruleSelfDefending() Rule {
	return &rule{
		info: RuleInfo{
			ID:        "self-defending",
			Technique: transform.SelfDefending.String(),
			Severity:  SeverityStrong,
			Doc:       "function-source integrity probe (constructor built from its own text)",
			Nodes:     []string{"CallExpression"},
		},
		start: func(ctx *Context, rep *Reporter) (Visit, FinishFunc) {
			probes := 0
			var first ast.Span
			hit := func(span ast.Span) {
				if probes == 0 {
					first = span
				}
				probes++
			}
			visit := func(n ast.Node) {
				v := n.(*ast.CallExpression)
				if memberProp(v.Callee) != "constructor" || len(v.Arguments) != 1 {
					return
				}
				arg := v.Arguments[0]
				if s, ok := stringLit(arg); ok {
					// The formatting-sensitive regex source: its "[^ ]"
					// classes break when whitespace is reintroduced.
					if strings.Contains(s, "[^ ]") {
						hit(v.Span())
					}
					return
				}
				// `"return /" + this + "/"` builds a source-text probe.
				if bin, ok := arg.(*ast.BinaryExpression); ok && bin.Operator == "+" {
					if containsStringWith(bin, func(s string) bool {
						return strings.Contains(s, "return /")
					}) {
						hit(v.Span())
					}
				}
			}
			finish := func() {
				if probes == 0 {
					return
				}
				rep.Reportf(first, map[string]float64{"source_probes": float64(probes)},
					"function converts its own source to text and tests it against a formatting-sensitive pattern (%d probes)", probes)
			}
			return visit, finish
		},
	}
}

// ruleDebuggerProtection flags anti-debugging guards: `debugger` statements
// injected through the Function constructor (optionally rearmed on a timer)
// or raw debugger statements re-triggered by setInterval.
func ruleDebuggerProtection() Rule {
	return &rule{
		info: RuleInfo{
			ID:        "debugger-protection",
			Technique: transform.DebugProtection.String(),
			Severity:  SeverityStrong,
			Doc:       "debugger statements injected via the Function constructor or timers",
			Nodes:     []string{"DebuggerStatement", "CallExpression"},
		},
		start: func(ctx *Context, rep *Reporter) (Visit, FinishFunc) {
			ctorDebugger, ctorStall, debuggerStmts := 0, 0, 0
			intervals := 0
			var first ast.Span
			haveSpan := false
			mark := func(span ast.Span) {
				if !haveSpan {
					first = span
					haveSpan = true
				}
			}
			visit := func(n ast.Node) {
				switch v := n.(type) {
				case *ast.DebuggerStatement:
					debuggerStmts++
					mark(v.Span())
				case *ast.CallExpression:
					switch identName(v.Callee) {
					case "setInterval", "setTimeout":
						intervals++
					}
					if memberProp(v.Callee) == "constructor" && len(v.Arguments) == 1 {
						if s, ok := stringLit(v.Arguments[0]); ok {
							if strings.Contains(s, "debugger") {
								ctorDebugger++
								mark(v.Span())
							}
							if strings.Contains(s, "while") && strings.Contains(s, "{}") {
								ctorStall++
								mark(v.Span())
							}
						}
					}
				}
			}
			finish := func() {
				fired := ctorDebugger > 0 ||
					(debuggerStmts >= 2 && intervals > 0) ||
					debuggerStmts >= 3
				if !fired || !haveSpan {
					return
				}
				rep.Reportf(first, map[string]float64{
					"constructor_debugger": float64(ctorDebugger),
					"constructor_stall":    float64(ctorStall),
					"debugger_statements":  float64(debuggerStmts),
					"timer_calls":          float64(intervals),
				}, "anti-debugging guard: %d constructor(\"debugger\") calls, %d raw debugger statements, %d timer re-triggers",
					ctorDebugger, debuggerStmts, intervals)
			}
			return visit, finish
		},
	}
}
