package analysis

import (
	"fmt"

	"repro/internal/js/ast"
	"repro/internal/transform"
)

// ruleHexIdentifiers flags the `_0x<hex>` renaming scheme of the JavaScript
// obfuscator (Section II-B "identifier obfuscation").
func ruleHexIdentifiers() Rule {
	const (
		minSample = 8    // don't judge tiny files
		minRatio  = 0.25 // fraction of identifiers using the scheme
	)
	return &rule{
		info: RuleInfo{
			ID:        "hex-identifiers",
			Technique: transform.IdentifierObfuscation.String(),
			Severity:  SeverityWarning,
			Doc:       "identifiers follow the obfuscator's _0x<hex> renaming scheme",
			Nodes:     []string{"Identifier"},
		},
		start: func(ctx *Context, rep *Reporter) (Visit, FinishFunc) {
			total, hex := 0, 0
			var first ast.Span
			visit := func(n ast.Node) {
				id := n.(*ast.Identifier)
				total++
				if isHexIdentName(id.Name) {
					if hex == 0 {
						first = id.Span()
					}
					hex++
				}
			}
			finish := func() {
				if total < minSample {
					return
				}
				ratio := float64(hex) / float64(total)
				if ratio < minRatio {
					return
				}
				rep.Reportf(first, map[string]float64{
					"identifiers":     float64(total),
					"hex_identifiers": float64(hex),
					"ratio":           ratio,
				}, "%d of %d identifiers use the _0x hexadecimal naming scheme", hex, total)
			}
			return visit, finish
		},
	}
}

// ruleEncodedStrings flags literal payloads and decoder calls typical of
// string obfuscation: hex/unicode/percent escapes, base64 blobs, and the
// fromCharCode / atob / unescape / reverse-join decoding idioms.
func ruleEncodedStrings() Rule {
	const (
		minDecoderEvents = 3
		minEncodedRatio  = 0.3
	)
	decoderNames := map[string]bool{
		"atob": true, "unescape": true,
		"decodeURIComponent": true, "decodeURI": true,
	}
	return &rule{
		info: RuleInfo{
			ID:        "encoded-strings",
			Technique: transform.StringObfuscation.String(),
			Severity:  SeverityWarning,
			Doc:       "string literals are stored encoded and decoded at runtime",
			Nodes:     []string{"Literal", "CallExpression"},
		},
		start: func(ctx *Context, rep *Reporter) (Visit, FinishFunc) {
			stringCount, encoded, decoders := 0, 0, 0
			var first ast.Span
			hit := func(span ast.Span) {
				if encoded+decoders == 0 {
					first = span
				}
			}
			visit := func(n ast.Node) {
				switch v := n.(type) {
				case *ast.Literal:
					if v.Kind != ast.LiteralString {
						return
					}
					stringCount++
					if LooksEncoded(v.String) || LooksBase64(v.String) {
						hit(v.Span())
						encoded++
					}
				case *ast.CallExpression:
					switch {
					case memberProp(v.Callee) == "fromCharCode" && len(v.Arguments) >= 2:
						hit(v.Span())
						decoders++
					case decoderNames[identName(v.Callee)] && len(v.Arguments) == 1:
						if _, ok := stringLit(v.Arguments[0]); ok {
							hit(v.Span())
							decoders++
						}
					case memberProp(v.Callee) == "join":
						// "..." .split("").reverse().join("") chains.
						if m := v.Callee.(*ast.MemberExpression); memberPropOfCall(m.Object) == "reverse" {
							hit(v.Span())
							decoders++
						}
					}
				}
			}
			finish := func() {
				ratio := 0.0
				if stringCount > 0 {
					ratio = float64(encoded) / float64(stringCount)
				}
				if decoders < minDecoderEvents && !(encoded >= 2 && ratio >= minEncodedRatio) {
					return
				}
				rep.Reportf(first, map[string]float64{
					"encoded_strings": float64(encoded),
					"decoder_calls":   float64(decoders),
					"strings":         float64(stringCount),
				}, "%d encoded string literals and %d runtime decoding calls", encoded, decoders)
			}
			return visit, finish
		},
	}
}

// memberPropOfCall returns the property name when n is a call on a
// non-computed member (`x.prop(...)`), or "".
func memberPropOfCall(n ast.Node) string {
	if call, ok := n.(*ast.CallExpression); ok {
		return memberProp(call.Callee)
	}
	return ""
}

// ruleStringArray flags the global-array transformation: a large array of
// string literals paired with an index-offset accessor function through
// which the program fetches its strings.
func ruleStringArray() Rule {
	// A matching accessor makes even a tiny array suspicious when the index
	// is shifted (real transform output on string-poor programs produces
	// 2-element arrays with large offsets); without an offset, demand a
	// sizable array.
	const (
		minArraySize     = 2
		minPlainArraySiz = 8
	)
	type accessor struct {
		name      string
		arrayName string
		offset    float64
		span      ast.Span
	}
	return &rule{
		info: RuleInfo{
			ID:        "string-array",
			Technique: transform.GlobalArray.String(),
			Severity:  SeverityStrong,
			Doc:       "strings are moved to a global array behind an index-offset accessor",
			Nodes:     []string{"VariableDeclarator", "FunctionDeclaration", "CallExpression"},
		},
		start: func(ctx *Context, rep *Reporter) (Visit, FinishFunc) {
			type arrayInfo struct {
				size int
				span ast.Span
			}
			arrays := make(map[string]arrayInfo)
			var accessors []accessor
			calls := make(map[string]int)
			visit := func(n ast.Node) {
				switch v := n.(type) {
				case *ast.VariableDeclarator:
					name := identName(v.ID)
					arr, ok := v.Init.(*ast.ArrayExpression)
					if name == "" || !ok || len(arr.Elements) < minArraySize {
						return
					}
					strs := 0
					for _, el := range arr.Elements {
						if _, ok := stringLit(el); ok {
							strs++
						}
					}
					if strs*10 >= len(arr.Elements)*8 { // >= 80% strings
						arrays[name] = arrayInfo{size: len(arr.Elements), span: v.Span()}
					}
				case *ast.FunctionDeclaration:
					if acc, ok := matchArrayAccessor(v); ok {
						accessors = append(accessors, accessor{
							name: acc.name, arrayName: acc.arrayName,
							offset: acc.offset, span: v.Span(),
						})
					}
				case *ast.CallExpression:
					if name := identName(v.Callee); name != "" && len(v.Arguments) == 1 {
						if _, ok := numberLit(v.Arguments[0]); ok {
							calls[name]++
						}
					}
				}
			}
			finish := func() {
				for _, acc := range accessors {
					arr, ok := arrays[acc.arrayName]
					if !ok {
						continue
					}
					if acc.offset == 0 && arr.size < minPlainArraySiz {
						continue
					}
					rep.Reportf(arr.span, map[string]float64{
						"array_size":     float64(arr.size),
						"index_offset":   acc.offset,
						"accessor_calls": float64(calls[acc.name]),
					}, "global array of %d strings read through accessor %s(i) with index offset %g (%d indexed calls)",
						arr.size, acc.name, acc.offset, calls[acc.name])
				}
			}
			return visit, finish
		},
	}
}

type accessorMatch struct {
	name      string
	arrayName string
	offset    float64
}

// matchArrayAccessor recognizes `function f(i){ return arr[i - K] }` (and
// the +K / bare-index variants) that the global-array transformation emits.
func matchArrayAccessor(fn *ast.FunctionDeclaration) (accessorMatch, bool) {
	var m accessorMatch
	if fn.ID == nil || len(fn.Params) != 1 || fn.Body == nil || len(fn.Body.Body) != 1 {
		return m, false
	}
	param := identName(fn.Params[0])
	if param == "" {
		return m, false
	}
	ret, ok := fn.Body.Body[0].(*ast.ReturnStatement)
	if !ok {
		return m, false
	}
	mem, ok := ret.Argument.(*ast.MemberExpression)
	if !ok || !mem.Computed {
		return m, false
	}
	m.name = fn.ID.Name
	m.arrayName = identName(mem.Object)
	if m.arrayName == "" {
		return m, false
	}
	switch idx := mem.Property.(type) {
	case *ast.Identifier:
		if idx.Name != param {
			return m, false
		}
		return m, true
	case *ast.BinaryExpression:
		if idx.Operator != "-" && idx.Operator != "+" {
			return m, false
		}
		if identName(idx.Left) != param {
			return m, false
		}
		k, ok := numberLit(idx.Right)
		if !ok {
			return m, false
		}
		if idx.Operator == "-" {
			m.offset = k
		} else {
			m.offset = -k
		}
		return m, true
	}
	return m, false
}

// ruleDynamicCodeSink flags eval/Function sinks fed by strings that are
// decoded or concatenated at runtime — including through a local variable,
// resolved via the scope information on the flow graph.
func ruleDynamicCodeSink() Rule {
	const maxReports = 5
	return &rule{
		info: RuleInfo{
			ID:        "dynamic-code-sink",
			Technique: transform.StringObfuscation.String(),
			Severity:  SeverityStrong,
			Doc:       "eval/Function executes strings built by decoding operations",
			Nodes:     []string{"CallExpression", "NewExpression"},
		},
		start: func(ctx *Context, rep *Reporter) (Visit, FinishFunc) {
			reported := 0
			type deferred struct {
				id   *ast.Identifier
				span ast.Span
				sink string
			}
			var pending []deferred
			report := func(span ast.Span, sink, how string) {
				if reported >= maxReports {
					return
				}
				reported++
				rep.Reportf(span, map[string]float64{"sinks": 1},
					"%s executes a string %s", sink, how)
			}
			check := func(span ast.Span, sink string, arg ast.Node) {
				switch v := arg.(type) {
				case *ast.Literal:
					if s, ok := stringLit(v); ok && (LooksEncoded(s) || LooksBase64(s)) {
						report(span, sink, "stored in encoded form")
					}
				case *ast.BinaryExpression:
					if v.Operator == "+" && containsStringWith(v, func(string) bool { return true }) {
						report(span, sink, "assembled by concatenation")
					}
				case *ast.CallExpression:
					if isDecoderCall(v) {
						report(span, sink, "produced by a decoding call")
					}
				case *ast.Identifier:
					if len(pending) < 16 {
						pending = append(pending, deferred{id: v, span: span, sink: sink})
					}
				}
			}
			visit := func(n ast.Node) {
				switch v := n.(type) {
				case *ast.CallExpression:
					if identName(v.Callee) == "eval" && len(v.Arguments) >= 1 {
						check(v.Span(), "eval", v.Arguments[0])
					}
					if identName(v.Callee) == "Function" && len(v.Arguments) >= 1 {
						check(v.Span(), "Function", v.Arguments[len(v.Arguments)-1])
					}
				case *ast.NewExpression:
					if identName(v.Callee) == "Function" && len(v.Arguments) >= 1 {
						check(v.Span(), "new Function", v.Arguments[len(v.Arguments)-1])
					}
				}
			}
			finish := func() {
				if ctx.Graph == nil || ctx.Graph.Scopes == nil {
					return
				}
				for _, d := range pending {
					b := ctx.Graph.Scopes.BindingOf(d.id)
					if b == nil || b.Init == nil {
						continue
					}
					if subtreeDecodes(b.Init) {
						report(d.span, d.sink, fmt.Sprintf("decoded into variable %q", d.id.Name))
					}
				}
			}
			return visit, finish
		},
	}
}

// isDecoderCall reports calls that turn encoded data into strings.
func isDecoderCall(call *ast.CallExpression) bool {
	switch identName(call.Callee) {
	case "atob", "unescape", "decodeURIComponent", "decodeURI":
		return true
	}
	switch memberProp(call.Callee) {
	case "fromCharCode", "join", "replace":
		return true
	}
	return false
}

// subtreeDecodes scans a binding initializer for decoding constructs:
// decoder calls, string concatenation, or encoded literals.
func subtreeDecodes(n ast.Node) bool {
	found := false
	var visit func(ast.Node)
	visit = func(n ast.Node) {
		if found || n == nil {
			return
		}
		switch v := n.(type) {
		case *ast.CallExpression:
			if isDecoderCall(v) {
				found = true
				return
			}
		case *ast.BinaryExpression:
			if v.Operator == "+" {
				if _, ok := stringLit(v.Left); ok {
					found = true
					return
				}
				if _, ok := stringLit(v.Right); ok {
					found = true
					return
				}
			}
		case *ast.Literal:
			if s, ok := stringLit(v); ok && (LooksEncoded(s) || LooksBase64(s)) {
				found = true
				return
			}
		}
		for _, c := range ast.Children(n) {
			visit(c)
		}
	}
	visit(n)
	return found
}

// ruleNoAlphanumeric flags JSFuck-style sources written almost entirely in
// the []()!+ alphabet.
func ruleNoAlphanumeric() Rule {
	const (
		minBytes       = 64
		maxAlnumRatio  = 0.05
		minSymbolRatio = 0.4
	)
	return &rule{
		info: RuleInfo{
			ID:        "no-alphanumeric",
			Technique: transform.NoAlphanumeric.String(),
			Severity:  SeverityStrong,
			Doc:       "source is written in the JSFuck []()!+ alphabet",
		},
		start: func(ctx *Context, rep *Reporter) (Visit, FinishFunc) {
			finish := func() {
				if len(ctx.Src) < minBytes {
					return
				}
				st := ctx.Stats()
				alnum, jsfuck := st.Alnum, st.JSFuck
				if alnum > maxAlnumRatio || jsfuck < minSymbolRatio {
					return
				}
				span := ast.Span{}
				if ctx.Program != nil {
					span = ctx.Program.Span()
				}
				rep.Reportf(span, map[string]float64{
					"alnum_ratio":  alnum,
					"symbol_ratio": jsfuck,
					"bytes":        float64(len(ctx.Src)),
				}, "%.1f%% of the source is alphanumeric; %.0f%% is the JSFuck []()!+ alphabet",
					alnum*100, jsfuck*100)
			}
			return nil, finish
		},
	}
}
