package analysis

import "repro/internal/js/ast"

// DefaultRules returns the built-in registry in canonical order. Rules are
// stateless (all per-file state lives in Start closures), so the returned
// values may be shared freely.
func DefaultRules() []Rule {
	return []Rule{
		ruleHexIdentifiers(),
		ruleEncodedStrings(),
		ruleStringArray(),
		ruleDynamicCodeSink(),
		ruleNoAlphanumeric(),
		ruleDeadBranch(),
		ruleSwitchDispatch(),
		ruleSelfDefending(),
		ruleDebuggerProtection(),
		ruleMinifiedSource(),
		ruleRenamedIdentifiers(),
	}
}

// ---------------------------------------------------------------------------
// Small AST helpers shared by the rules
// ---------------------------------------------------------------------------

// stringLit returns the decoded value of a string literal, or "", false.
func stringLit(n ast.Node) (string, bool) {
	lit, ok := n.(*ast.Literal)
	if !ok || lit.Kind != ast.LiteralString {
		return "", false
	}
	return lit.String, true
}

// numberLit returns the value of a numeric literal, or 0, false.
func numberLit(n ast.Node) (float64, bool) {
	lit, ok := n.(*ast.Literal)
	if !ok || lit.Kind != ast.LiteralNumber {
		return 0, false
	}
	return lit.Number, true
}

// identName returns the name of an Identifier node, or "".
func identName(n ast.Node) string {
	if id, ok := n.(*ast.Identifier); ok {
		return id.Name
	}
	return ""
}

// memberProp returns the property name of a non-computed member access
// (`obj.prop`), or "".
func memberProp(n ast.Node) string {
	if m, ok := n.(*ast.MemberExpression); ok && !m.Computed {
		return identName(m.Property)
	}
	return ""
}

// isHexDigits reports whether s is non-empty and entirely hex digits.
func isHexDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isHexDigit(s[i]) {
			return false
		}
	}
	return true
}

// isHexIdentName matches the obfuscator's `_0x<hex>` naming scheme.
func isHexIdentName(name string) bool {
	return len(name) > 3 && name[0] == '_' && name[1] == '0' && name[2] == 'x' &&
		isHexDigits(name[3:])
}

// containsStringWith walks the small subtree under n (expressions only, no
// recursion into nested functions is needed for the patterns at hand) and
// reports whether any string literal satisfies pred. The scan is bounded to
// keep worst-case cost linear in the subtree size.
func containsStringWith(n ast.Node, pred func(string) bool) bool {
	found := false
	var visit func(ast.Node)
	visit = func(n ast.Node) {
		if found || n == nil {
			return
		}
		if s, ok := stringLit(n); ok && pred(s) {
			found = true
			return
		}
		for _, c := range ast.Children(n) {
			visit(c)
		}
	}
	visit(n)
	return found
}
