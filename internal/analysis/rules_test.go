package analysis

import (
	"strings"
	"testing"
)

// ruleFixtures gives every rule one positive and one negative fixture. The
// positive source must trigger the rule; the negative must not.
var ruleFixtures = []struct {
	rule     string
	positive string
	negative string
}{
	{
		rule: "hex-identifiers",
		positive: `var _0x1a2b3c = 1; var _0x4d5e6f = 2;
function _0xabcdef(_0x123456) { return _0x1a2b3c + _0x4d5e6f + _0x123456; }
_0xabcdef(_0x1a2b3c);`,
		negative: `var total = 1; var count = 2;
function add(amount) { return total + count + amount; }
add(total);`,
	},
	{
		rule: "encoded-strings",
		positive: `var a = atob("aGVsbG8gd29ybGQhIQ==");
var b = unescape("%68%65%6c%6c%6f%20%77%6f%72%6c%64");
var c = String.fromCharCode(104, 101, 108, 108, 111);`,
		negative: `var greeting = "hello";
var subject = "world";
console.log(greeting + " " + subject);`,
	},
	{
		rule: "string-array",
		positive: `var _list = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"];
function fetch(i) { return _list[i - 2]; }
fetch(2); fetch(3); fetch(4);`,
		negative: `var names = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"];
function describe(x) { return "name: " + x; }
describe(names.length);`,
	},
	{
		rule: "dynamic-code-sink",
		positive: `var payload = atob("ZG9Tb21ldGhpbmcoKQ==");
eval(payload);`,
		negative: `function evaluate(x) { return x + 1; }
evaluate(41);`,
	},
	{
		rule:     "no-alphanumeric",
		positive: `[![],!![],+[],+!![],[![]],[!![]],[[]],![],!![],+[],+!![],[![]],[!![]],[[]],![],!![],+[],+!![],[![]],[!![]]];`,
		negative: `var visible = true;
if (visible) { console.log("shown"); }`,
	},
	{
		rule: "dead-branch",
		positive: `if (74 === 74 + 13) { neverRuns(); } else { runs(); }
while ("ab" == "cd") { alsoNever(); }
if (3 * 3 < 3) { dead(); }`,
		negative: `var x = compute();
if (x > 2) { use(x); }
while (x < 10) { x++; }`,
	},
	{
		rule: "switch-dispatch",
		positive: `var order = "2|0|1".split("|"), i = 0;
while (true) {
  switch (order[i++]) {
    case "0": first(); continue;
    case "1": second(); continue;
    case "2": third(); continue;
  }
  break;
}`,
		negative: `var mode = pick();
while (running) {
  switch (mode) {
    case "a": first(); break;
    case "b": second(); break;
  }
}`,
	},
	{
		rule: "self-defending",
		positive: `var probe = function () {
  var mark = probe.constructor("return /" + this + "/")().constructor("^([^ ]+( +[^ ]+)+)+[^ ]}");
  return !mark.test(guard);
};
probe();`,
		negative: `var re = new RegExp("^[a-z]+$");
re.test(input);
obj.constructor(5);`,
	},
	{
		rule: "debugger-protection",
		positive: `(function () { return true; }).constructor("debugger").call("action");
(function () { return false; }).constructor("debugger").apply("stateObject");
setInterval(function () { check(); }, 4000);`,
		negative: `debugger;
console.log("single debugging aid left in code");`,
	},
	{
		rule:     "minified-source",
		positive: strings.Repeat("x=f(1,2,3);y=g(x);z=h(y,x);", 30),
		negative: `function formatted(input) {
  // A conventionally formatted function with comments.
  var result = [];
  for (var i = 0; i < input.length; i++) {
    result.push(input[i] * 2);
  }
  return result;
}`,
	},
	{
		rule: "renamed-identifiers",
		positive: `var a=1,b=2,c=3,d=4,e=5,f=6,g=7,h=8,i=9,j=10,k=11,l=12;
function m(n,o){return n+o+a+b+c;}
m(d,e);`,
		negative: `var total=1,count=2,ratio=3,scale=4,width=5,height=6,depth=7,angle=8,speed=9,limit=10,index=11,cursor=12;
function combine(left,right){return left+right;}
combine(total,count);`,
	},
}

func TestRuleFixtures(t *testing.T) {
	for _, tc := range ruleFixtures {
		t.Run(tc.rule+"/positive", func(t *testing.T) {
			diags := mustAnalyze(t, tc.positive)
			d, ok := findRule(diags, tc.rule)
			if !ok {
				t.Fatalf("rule %s did not fire; got %v", tc.rule, ruleIDs(diags))
			}
			if d.Span.Start.Line < 1 || d.Span.End.Line < 1 {
				t.Errorf("diagnostic has zero span: %+v", d.Span)
			}
			if d.Message == "" {
				t.Errorf("diagnostic has empty message")
			}
			if d.Technique == "" {
				t.Errorf("diagnostic has no technique attribution")
			}
			if len(d.Evidence) == 0 {
				t.Errorf("diagnostic has no evidence")
			}
		})
		t.Run(tc.rule+"/negative", func(t *testing.T) {
			diags := mustAnalyze(t, tc.negative)
			if d, ok := findRule(diags, tc.rule); ok {
				t.Fatalf("rule %s fired on negative fixture: %+v", tc.rule, d)
			}
		})
	}
}

// TestFixturesCoverAllRules keeps the fixture table in sync with the
// registry.
func TestFixturesCoverAllRules(t *testing.T) {
	covered := make(map[string]bool)
	for _, tc := range ruleFixtures {
		covered[tc.rule] = true
	}
	for _, r := range DefaultRules() {
		if !covered[r.Info().ID] {
			t.Errorf("rule %s has no fixture", r.Info().ID)
		}
	}
	if len(ruleFixtures) != len(DefaultRules()) {
		t.Errorf("fixture count %d != rule count %d", len(ruleFixtures), len(DefaultRules()))
	}
}

func mustAnalyze(t *testing.T, src string) []Diagnostic {
	t.Helper()
	diags, err := Analyze(src)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return diags
}

func findRule(diags []Diagnostic, rule string) (Diagnostic, bool) {
	for _, d := range diags {
		if d.Rule == rule {
			return d, true
		}
	}
	return Diagnostic{}, false
}

func ruleIDs(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Rule
	}
	return out
}
