package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/flow"
	"repro/internal/js/parser"
	"repro/internal/transform"

	"repro/internal/corpus"
)

// benchSource builds a deterministic ~8 KiB obfuscated sample so the parse /
// flow / analyze stages all have real work.
func benchSource(b *testing.B) string {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	src := corpus.GenerateRegular(rng)
	for len(src) < 8192 {
		src += corpus.GenerateRegular(rng)
	}
	out, err := transform.Transform(src, rng,
		transform.GlobalArray, transform.IdentifierObfuscation)
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// BenchmarkParseFlow is the baseline the engine's overhead is measured
// against: parsing plus flow-graph construction only.
func BenchmarkParseFlow(b *testing.B) {
	src := benchSource(b)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := parser.ParseNoTokens(src)
		if err != nil {
			b.Fatal(err)
		}
		flow.Build(res.Program, flow.Options{})
	}
}

// BenchmarkAnalyze runs the full pipeline: parse, flow, and the complete
// rule registry in its single shared traversal. EXPERIMENTS.md records the
// overhead over BenchmarkParseFlow (budget: < 20%).
func BenchmarkAnalyze(b *testing.B) {
	src := benchSource(b)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := parser.ParseNoTokens(src)
		if err != nil {
			b.Fatal(err)
		}
		g := flow.Build(res.Program, flow.Options{})
		if diags := AnalyzeParsed(src, res, g); len(diags) == 0 {
			b.Fatal("expected diagnostics on obfuscated sample")
		}
	}
}

// BenchmarkAnalyzeOnly isolates the engine itself on a pre-built parse and
// flow graph.
func BenchmarkAnalyzeOnly(b *testing.B) {
	src := benchSource(b)
	res, err := parser.ParseNoTokens(src)
	if err != nil {
		b.Fatal(err)
	}
	g := flow.Build(res.Program, flow.Options{})
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := AnalyzeParsed(src, res, g); len(diags) == 0 {
			b.Fatal("expected diagnostics")
		}
	}
}
