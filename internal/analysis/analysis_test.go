package analysis

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/flow"
	"repro/internal/js/ast"
	"repro/internal/js/parser"
	"repro/internal/transform"
)

// compositeSource triggers several rules at once.
const compositeSource = `var _0x12ab = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"];
function _0x34cd(_0x56ef) { return _0x12ab[_0x56ef - 2]; }
var _0x78aa = atob("aGVsbG8gd29ybGQhIQ==");
var _0x78bb = unescape("%68%65%6c%6c%6f%20%77%6f%72%6c%64");
eval(_0x78aa);
if (74 === 74 + 13) { _0x34cd(9); }
_0x34cd(2);`

func TestDiagnosticJSONRoundTrip(t *testing.T) {
	diags := mustAnalyze(t, compositeSource)
	if len(diags) == 0 {
		t.Fatal("expected diagnostics on composite source")
	}
	data, err := json.Marshal(diags)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back []Diagnostic
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(diags, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, diags)
	}
}

func TestDiagnosticsSortedByPosition(t *testing.T) {
	diags := mustAnalyze(t, compositeSource)
	for i := 1; i < len(diags); i++ {
		if diags[i].Span.Start.Offset < diags[i-1].Span.Start.Offset {
			t.Errorf("diagnostics out of order at %d: %d < %d",
				i, diags[i].Span.Start.Offset, diags[i-1].Span.Start.Offset)
		}
	}
}

// TestSingleTraversal registers rules that observe every node and verifies
// each sees every node exactly once per Run — the engine dispatches all
// rules from one walk instead of re-traversing per rule.
func TestSingleTraversal(t *testing.T) {
	res, err := parser.ParseNoTokens(compositeSource)
	if err != nil {
		t.Fatal(err)
	}
	nodes := 0
	countAll(res.Program, &nodes)

	counts := make([]int, 3)
	rules := make([]Rule, len(counts))
	for i := range rules {
		i := i
		rules[i] = &rule{
			info: RuleInfo{ID: "count", Severity: SeverityInfo},
			start: func(ctx *Context, rep *Reporter) (Visit, FinishFunc) {
				return func(ast.Node) { counts[i]++ }, nil
			},
		}
	}
	eng := NewEngine(rules...)
	eng.Run(&Context{Src: compositeSource, Result: res, Program: res.Program})
	for i, c := range counts {
		if c != nodes {
			t.Errorf("rule %d observed %d nodes, want %d", i, c, nodes)
		}
	}
}

func countAll(n ast.Node, count *int) {
	*count++
	for _, c := range ast.Children(n) {
		countAll(c, count)
	}
}

// TestKindDispatchTargeted verifies the kind-indexed dispatch delivers a rule
// exactly the node types it subscribed to — no more, no fewer — matching what
// the old type-name string dispatch did.
func TestKindDispatchTargeted(t *testing.T) {
	res, err := parser.ParseNoTokens(compositeSource)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{}
	var countByType func(n ast.Node)
	countByType = func(n ast.Node) {
		want[n.Type()]++
		for _, c := range ast.Children(n) {
			countByType(c)
		}
	}
	countByType(res.Program)

	got := map[string]int{}
	targeted := &rule{
		info: RuleInfo{ID: "targeted", Severity: SeverityInfo,
			Nodes: []string{"Identifier", "CallExpression", "IfStatement"}},
		start: func(ctx *Context, rep *Reporter) (Visit, FinishFunc) {
			return func(n ast.Node) { got[n.Type()]++ }, nil
		},
	}
	eng := NewEngine(targeted)
	eng.Run(&Context{Src: compositeSource, Result: res, Program: res.Program})

	for _, typ := range []string{"Identifier", "CallExpression", "IfStatement"} {
		if got[typ] != want[typ] {
			t.Errorf("rule saw %d %s nodes, want %d", got[typ], typ, want[typ])
		}
	}
	for typ := range got {
		switch typ {
		case "Identifier", "CallExpression", "IfStatement":
		default:
			t.Errorf("rule observed unsubscribed node type %s", typ)
		}
	}
}

// TestNewEngineRejectsUnknownNodeType locks the construction-time typo check:
// a misspelled Nodes entry would silently unsubscribe the rule under map
// dispatch, so the kind resolver must refuse it loudly.
func TestNewEngineRejectsUnknownNodeType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEngine accepted a rule subscribing to an unknown node type")
		}
	}()
	NewEngine(&rule{
		info: RuleInfo{ID: "typo", Severity: SeverityInfo, Nodes: []string{"CallExpresion"}},
		start: func(ctx *Context, rep *Reporter) (Visit, FinishFunc) {
			return func(ast.Node) {}, nil
		},
	})
}

// TestConcurrentRuns exercises the engine from several goroutines (the -race
// gate makes this meaningful).
func TestConcurrentRuns(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, err := Analyze(compositeSource); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestTransformedSamplesAttributed applies the real transformation
// implementations to generated code and checks the corresponding rule
// attributes the right technique with a non-zero span.
func TestTransformedSamplesAttributed(t *testing.T) {
	cases := []struct {
		tech transform.Technique
		rule string
	}{
		{transform.IdentifierObfuscation, "hex-identifiers"},
		{transform.GlobalArray, "string-array"},
		{transform.ControlFlowFlattening, "switch-dispatch"},
		{transform.SelfDefending, "self-defending"},
		{transform.DebugProtection, "debugger-protection"},
		{transform.DeadCodeInjection, "dead-branch"},
	}
	// base is rich enough for every transform to engage: string literals
	// for the global array, straight-line assignment runs for flattening,
	// and ordinary declarations for renaming and dead-code injection. The
	// generated corpus source is appended for realism.
	base := `function compute(list) {
  var total = 0;
  total = total + list.length;
  total = total * 2;
  total = total - 1;
  return total;
}
var data = ["one", "two", "three", "four", "five", "six", "seven", "eight"];
compute(data);
` + corpus.GenerateRegular(rand.New(rand.NewSource(7)))
	for _, tc := range cases {
		t.Run(tc.tech.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			out, err := transform.Transform(base, rng, tc.tech)
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			diags := mustAnalyze(t, out)
			d, ok := findRule(diags, tc.rule)
			if !ok {
				t.Fatalf("rule %s did not fire on %s output; got %v",
					tc.rule, tc.tech, ruleIDs(diags))
			}
			if d.Technique != tc.tech.String() {
				t.Errorf("technique = %q, want %q", d.Technique, tc.tech)
			}
			if d.Span.Start.Line < 1 || d.Span.End.Line < 1 {
				t.Errorf("zero span: %+v", d.Span)
			}
		})
	}
}

// TestAnalyzeParsedNilGraph ensures scope-based rules degrade gracefully
// without a flow graph.
func TestAnalyzeParsedNilGraph(t *testing.T) {
	res, err := parser.ParseNoTokens(compositeSource)
	if err != nil {
		t.Fatal(err)
	}
	diags := AnalyzeParsed(compositeSource, res, nil)
	if len(diags) == 0 {
		t.Fatal("expected diagnostics without a flow graph")
	}
}

// TestWithGraphScopes checks the data-flow-assisted sink rule resolves
// identifier arguments through bindings.
func TestWithGraphScopes(t *testing.T) {
	res, err := parser.ParseNoTokens(compositeSource)
	if err != nil {
		t.Fatal(err)
	}
	g := flow.Build(res.Program, flow.Options{})
	diags := AnalyzeParsed(compositeSource, res, g)
	if _, ok := findRule(diags, "dynamic-code-sink"); !ok {
		t.Errorf("dynamic-code-sink did not resolve eval(_0x78aa) through its binding; got %v", ruleIDs(diags))
	}
}
