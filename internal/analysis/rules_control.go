package analysis

import (
	"strings"

	"repro/internal/js/ast"
	"repro/internal/transform"
)

// ruleDeadBranch flags branches guarded by constant-false opaque predicates
// such as `74 === 74 + 13`, `"ab" == "cd"`, or `a * a < 0` on literal
// operands — the injection points of the dead-code transformation.
func ruleDeadBranch() Rule {
	const maxReports = 8
	return &rule{
		info: RuleInfo{
			ID:        "dead-branch",
			Technique: transform.DeadCodeInjection.String(),
			Severity:  SeverityWarning,
			Doc:       "branch guarded by a constant-false opaque predicate",
			Nodes:     []string{"IfStatement", "WhileStatement"},
		},
		start: func(ctx *Context, rep *Reporter) (Visit, FinishFunc) {
			reported := 0
			check := func(test ast.Node, span ast.Span) {
				if reported >= maxReports {
					return
				}
				val, ok := foldConstBool(test)
				if !ok || val {
					return
				}
				reported++
				rep.Reportf(span, map[string]float64{"constant_false": 1},
					"branch condition folds to a constant false (opaque predicate %q)",
					snippet(ctx.Src, test.Span()))
			}
			visit := func(n ast.Node) {
				switch v := n.(type) {
				case *ast.IfStatement:
					check(v.Test, v.Span())
				case *ast.WhileStatement:
					check(v.Test, v.Span())
				}
			}
			return visit, nil
		},
	}
}

// foldConstBool statically evaluates literal-only boolean expressions. It is
// deliberately conservative: only same-kind literal comparisons and literal
// arithmetic fold; anything touching an identifier does not.
func foldConstBool(n ast.Node) (value, ok bool) {
	switch v := n.(type) {
	case *ast.Literal:
		switch v.Kind {
		case ast.LiteralBoolean:
			return v.Bool, true
		case ast.LiteralNumber:
			return v.Number != 0, true
		case ast.LiteralString:
			return v.String != "", true
		case ast.LiteralNull:
			return false, true
		}
	case *ast.UnaryExpression:
		if v.Operator == "!" {
			if inner, ok := foldConstBool(v.Argument); ok {
				return !inner, true
			}
		}
	case *ast.BinaryExpression:
		if ls, lok := foldString(v.Left); lok {
			if rs, rok := foldString(v.Right); rok {
				return compareOrdered(v.Operator, strings.Compare(ls, rs))
			}
		}
		if ln, lok := foldNumber(v.Left); lok {
			if rn, rok := foldNumber(v.Right); rok {
				switch {
				case ln < rn:
					return compareOrdered(v.Operator, -1)
				case ln > rn:
					return compareOrdered(v.Operator, 1)
				default:
					return compareOrdered(v.Operator, 0)
				}
			}
		}
	}
	return false, false
}

// compareOrdered maps a three-way comparison result through a comparison
// operator.
func compareOrdered(op string, cmp int) (value, ok bool) {
	switch op {
	case "==", "===":
		return cmp == 0, true
	case "!=", "!==":
		return cmp != 0, true
	case "<":
		return cmp < 0, true
	case "<=":
		return cmp <= 0, true
	case ">":
		return cmp > 0, true
	case ">=":
		return cmp >= 0, true
	}
	return false, false
}

// foldString folds literal-only string expressions (literals and literal
// concatenation).
func foldString(n ast.Node) (string, bool) {
	switch v := n.(type) {
	case *ast.Literal:
		if v.Kind == ast.LiteralString {
			return v.String, true
		}
	case *ast.BinaryExpression:
		if v.Operator == "+" {
			if l, ok := foldString(v.Left); ok {
				if r, ok := foldString(v.Right); ok {
					return l + r, true
				}
			}
		}
	}
	return "", false
}

// foldNumber folds literal-only numeric expressions.
func foldNumber(n ast.Node) (float64, bool) {
	switch v := n.(type) {
	case *ast.Literal:
		if v.Kind == ast.LiteralNumber {
			return v.Number, true
		}
	case *ast.UnaryExpression:
		if v.Operator == "-" {
			if inner, ok := foldNumber(v.Argument); ok {
				return -inner, true
			}
		}
	case *ast.BinaryExpression:
		l, lok := foldNumber(v.Left)
		r, rok := foldNumber(v.Right)
		if lok && rok {
			switch v.Operator {
			case "+":
				return l + r, true
			case "-":
				return l - r, true
			case "*":
				return l * r, true
			case "/":
				if r != 0 {
					return l / r, true
				}
			}
		}
	}
	return 0, false
}

// ruleSwitchDispatch flags control-flow flattening: an endless loop whose
// body is a switch dispatched on `order[i++]`, usually next to a
// `"2|0|1".split("|")` execution-order string.
func ruleSwitchDispatch() Rule {
	const maxReports = 4
	return &rule{
		info: RuleInfo{
			ID:        "switch-dispatch",
			Technique: transform.ControlFlowFlattening.String(),
			Severity:  SeverityStrong,
			Doc:       "endless loop dispatching a switch over an execution-order array",
			Nodes:     []string{"WhileStatement", "ForStatement", "CallExpression"},
		},
		start: func(ctx *Context, rep *Reporter) (Visit, FinishFunc) {
			type dispatcher struct {
				span  ast.Span
				cases int
			}
			var dispatchers []dispatcher
			pipeSplits := 0
			record := func(body ast.Node, span ast.Span) {
				blk, ok := body.(*ast.BlockStatement)
				if !ok {
					return
				}
				for _, s := range blk.Body {
					sw, ok := s.(*ast.SwitchStatement)
					if !ok {
						continue
					}
					if isOrderDispatch(sw.Discriminant) {
						dispatchers = append(dispatchers, dispatcher{span: span, cases: len(sw.Cases)})
					}
				}
			}
			visit := func(n ast.Node) {
				switch v := n.(type) {
				case *ast.WhileStatement:
					if isEndlessTest(v.Test) {
						record(v.Body, v.Span())
					}
				case *ast.ForStatement:
					if v.Test == nil || isEndlessTest(v.Test) {
						record(v.Body, v.Span())
					}
				case *ast.CallExpression:
					if memberProp(v.Callee) == "split" && len(v.Arguments) == 1 {
						if sep, ok := stringLit(v.Arguments[0]); ok && sep == "|" {
							m := v.Callee.(*ast.MemberExpression)
							if s, ok := stringLit(m.Object); ok && strings.Contains(s, "|") {
								pipeSplits++
							}
						}
					}
				}
			}
			finish := func() {
				for i, d := range dispatchers {
					if i >= maxReports {
						break
					}
					rep.Reportf(d.span, map[string]float64{
						"switch_cases":       float64(d.cases),
						"pipe_split_strings": float64(pipeSplits),
					}, "endless loop dispatches a %d-case switch over an incrementing order index", d.cases)
				}
			}
			return visit, finish
		},
	}
}

// isEndlessTest matches `true` and non-zero numeric literals.
func isEndlessTest(n ast.Node) bool {
	lit, ok := n.(*ast.Literal)
	if !ok {
		return false
	}
	switch lit.Kind {
	case ast.LiteralBoolean:
		return lit.Bool
	case ast.LiteralNumber:
		return lit.Number != 0
	}
	return false
}

// isOrderDispatch matches the `order[i++]` discriminant of a flattened
// switch.
func isOrderDispatch(n ast.Node) bool {
	m, ok := n.(*ast.MemberExpression)
	if !ok || !m.Computed {
		return false
	}
	upd, ok := m.Property.(*ast.UpdateExpression)
	return ok && upd.Operator == "++"
}
