// Package store is a crash-safe on-disk key/value store for scan verdicts:
// an append-only record log with checksummed records, recovery to the longest
// valid prefix, and compaction. It extends the scanner's in-memory
// content-hash cache across process restarts — a re-crawl or a redeployed
// scan service answers repeat content from disk instead of re-running the
// full pipeline.
//
// Keys are fixed 32-byte content hashes; values are opaque bytes (the verdict
// codec lives with the scanner, keeping this package free of scan types).
//
// The recovery contract: Open replays the log, keeps every record up to the
// first invalid byte (torn write, bad length, bad checksum), truncates the
// rest, and reports what it kept and dropped in Stats. A record is either
// fully valid — length in range and checksum matching — or it and everything
// after it is discarded; a corrupt value is never served. The log file is
// exclusively flocked, so a second Open of the same directory fails fast
// instead of interleaving appends.
package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"
)

// logName is the record log's file name inside the store directory.
const logName = "verdicts.log"

// logMagic identifies a verdict log; the version digit guards the record
// format.
const logMagic = "jsvstor1"

// compactGarbageRatio is the fraction of dead bytes (overwritten records)
// above which Open compacts the log before serving.
const compactGarbageRatio = 0.5

// ErrLocked reports that another process holds the store open.
var ErrLocked = errors.New("store: directory locked by another process")

// Key is a content hash identifying one stored value.
type Key = [KeySize]byte

// Stats describes the store's state and what recovery did at Open.
type Stats struct {
	// Entries is the number of distinct keys currently stored.
	Entries int `json:"entries"`
	// LogBytes is the current size of the record log, including dead
	// (overwritten) records not yet compacted.
	LogBytes int64 `json:"log_bytes"`
	// Recovered is the number of valid records replayed at Open.
	Recovered int `json:"recovered"`
	// DroppedBytes is the size of the invalid tail truncated at Open: torn
	// writes and corrupt records.
	DroppedBytes int64 `json:"dropped_bytes"`
	// Compactions counts log rewrites over this store's lifetime.
	Compactions int `json:"compactions"`
}

// Store is a disk-backed key/value map. All methods are safe for concurrent
// use.
type Store struct {
	mu        sync.Mutex
	dir       string
	f         *os.File
	index     map[Key][]byte
	liveBytes int64 // encoded size of the latest record per key
	logBytes  int64 // total log size including dead records
	recovered int
	dropped   int64
	compacts  int
	closed    bool
}

// Open opens (creating if needed) the store in dir, recovers the record log
// to its longest valid prefix, and compacts it when more than half the log is
// dead. It fails with ErrLocked when another process has the store open.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, err
	}
	s := &Store{dir: dir, f: f, index: make(map[Key][]byte)}
	if err := s.recover(); err != nil {
		s.unlockAndClose()
		return nil, err
	}
	if s.garbageRatio() > compactGarbageRatio {
		s.mu.Lock()
		err := s.compactLocked()
		s.mu.Unlock()
		if err != nil {
			s.unlockAndClose()
			return nil, err
		}
	}
	return s, nil
}

func lockFile(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if err == syscall.EWOULDBLOCK {
		return ErrLocked
	}
	if err != nil {
		return fmt.Errorf("store: flock: %w", err)
	}
	return nil
}

func (s *Store) unlockAndClose() {
	syscall.Flock(int(s.f.Fd()), syscall.LOCK_UN)
	s.f.Close()
}

// recover replays the log, builds the index, and truncates any invalid tail.
func (s *Store) recover() error {
	data, err := io.ReadAll(s.f)
	if err != nil {
		return fmt.Errorf("store: read log: %w", err)
	}
	if len(data) < len(logMagic) {
		// New (or torn-at-birth) log: start fresh.
		if err := s.rewriteHeaderOnly(); err != nil {
			return err
		}
		s.dropped = int64(len(data))
		return nil
	}
	if string(data[:len(logMagic)]) != logMagic {
		return fmt.Errorf("store: %s is not a verdict log (bad magic)", logName)
	}

	off := int64(len(logMagic))
	rest := data[off:]
	for len(rest) > 0 {
		key, value, n, err := decodeRecord(rest)
		if err != nil {
			break // torn or corrupt: everything from off on is dropped
		}
		if old, ok := s.index[key]; ok {
			s.liveBytes -= encodedSize(old)
		}
		// Copy the value out of the read buffer so the index never aliases
		// scratch memory.
		s.index[key] = append([]byte(nil), value...)
		s.liveBytes += int64(n)
		s.recovered++
		off += int64(n)
		rest = rest[n:]
	}
	s.dropped = int64(len(data)) - off
	if s.dropped > 0 {
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncate invalid tail: %w", err)
		}
	}
	if _, err := s.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.logBytes = off
	return nil
}

// rewriteHeaderOnly resets the log to just its magic header.
func (s *Store) rewriteHeaderOnly() error {
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := s.f.WriteString(logMagic); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.logBytes = int64(len(logMagic))
	return nil
}

func encodedSize(value []byte) int64 {
	return int64(recordHeaderSize + KeySize + len(value))
}

// garbageRatio is the dead fraction of the log body.
func (s *Store) garbageRatio() float64 {
	body := s.logBytes - int64(len(logMagic))
	if body <= 0 {
		return 0
	}
	return float64(body-s.liveBytes) / float64(body)
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.index[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Len returns the number of distinct keys stored.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Put appends a record for key and updates the index. Re-putting a key
// appends a newer record; the old one becomes garbage until compaction.
func (s *Store) Put(key Key, value []byte) error {
	if len(value) > MaxValueSize {
		return fmt.Errorf("store: value too large (%d bytes)", len(value))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	rec := appendRecord(nil, key, value)
	if _, err := s.f.Write(rec); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if old, ok := s.index[key]; ok {
		s.liveBytes -= encodedSize(old)
	}
	s.index[key] = append([]byte(nil), value...)
	s.liveBytes += int64(len(rec))
	s.logBytes += int64(len(rec))
	return nil
}

// Sync flushes appended records to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	return s.f.Sync()
}

// Compact rewrites the log to contain exactly the live records, dropping
// garbage from overwrites and reclaiming disk space.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	return s.compactLocked()
}

// compactLocked writes the live index to a temp file, locks it, and renames
// it over the log so there is never a moment without a valid, locked log.
func (s *Store) compactLocked() error {
	tmp, err := os.CreateTemp(s.dir, logName+".compact-*")
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename

	buf := []byte(logMagic)
	var live int64
	for key, value := range s.index {
		buf = appendRecord(buf, key, value)
	}
	live = int64(len(buf)) - int64(len(logMagic))
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	// Lock the replacement before it becomes the log: a concurrent Open
	// must never find the path unlocked.
	if err := lockFile(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, logName)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	s.unlockAndClose() // old file: unlink already happened via rename
	s.f = tmp
	s.logBytes = int64(len(buf))
	s.liveBytes = live
	s.compacts++
	return nil
}

// Stats returns a point-in-time view of the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:      len(s.index),
		LogBytes:     s.logBytes,
		Recovered:    s.recovered,
		DroppedBytes: s.dropped,
		Compactions:  s.compacts,
	}
}

// Close syncs, releases the lock, and closes the log. The store is unusable
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.f.Sync()
	s.unlockAndClose()
	return err
}
