package store

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func key(s string) Key {
	return sha256.Sum256([]byte(s))
}

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func logPath(dir string) string { return filepath.Join(dir, logName) }

func TestPutGetAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	want := map[string]string{
		"a": "verdict-a",
		"b": "verdict-b",
		"c": "",
	}
	for k, v := range want {
		if err := s.Put(key(k), []byte(v)); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	if got, ok := s.Get(key("a")); !ok || string(got) != "verdict-a" {
		t.Fatalf("Get(a) = %q, %v", got, ok)
	}
	if _, ok := s.Get(key("missing")); ok {
		t.Fatal("Get(missing) = ok")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s = openT(t, dir)
	defer s.Close()
	for k, v := range want {
		got, ok := s.Get(key(k))
		if !ok || string(got) != v {
			t.Errorf("after reopen Get(%s) = %q, %v; want %q", k, got, ok, v)
		}
	}
	st := s.Stats()
	if st.Recovered != 3 || st.DroppedBytes != 0 || st.Entries != 3 {
		t.Errorf("Stats after clean reopen = %+v", st)
	}
}

func TestOverwriteLatestWins(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	k := key("k")
	for i := 0; i < 5; i++ {
		if err := s.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := s.Get(k); string(got) != "v4" {
		t.Fatalf("Get = %q, want v4", got)
	}
	s.Close()

	s = openT(t, dir)
	defer s.Close()
	if got, _ := s.Get(k); string(got) != "v4" {
		t.Fatalf("after reopen Get = %q, want v4", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	k := key("k")
	if err := s.Put(k, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(k)
	got[0] = 'X'
	again, _ := s.Get(k)
	if string(again) != "abc" {
		t.Fatalf("mutating a Get result corrupted the store: %q", again)
	}
}

func TestValueTooLarge(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	if err := s.Put(key("k"), make([]byte, MaxValueSize+1)); err == nil {
		t.Fatal("Put of oversized value succeeded")
	}
}

func TestClosedStoreRefusesWrites(t *testing.T) {
	s := openT(t, t.TempDir())
	s.Close()
	if err := s.Put(key("k"), []byte("v")); err == nil {
		t.Fatal("Put on closed store succeeded")
	}
	if err := s.Sync(); err == nil {
		t.Fatal("Sync on closed store succeeded")
	}
	if err := s.Compact(); err == nil {
		t.Fatal("Compact on closed store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCrashTruncatedMidRecord cuts the log inside the last record, as a crash
// mid-append would. The store must recover every earlier record and drop the
// torn tail.
func TestCrashTruncatedMidRecord(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 0; i < 10; i++ {
		if err := s.Put(key(fmt.Sprintf("k%d", i)), bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	fi, err := os.Stat(logPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Cut 30 bytes into the middle of the final record's value.
	if err := os.Truncate(logPath(dir), fi.Size()-30); err != nil {
		t.Fatal(err)
	}

	s = openT(t, dir)
	defer s.Close()
	st := s.Stats()
	if st.Recovered != 9 {
		t.Errorf("Recovered = %d, want 9", st.Recovered)
	}
	if st.DroppedBytes == 0 {
		t.Error("DroppedBytes = 0, want > 0")
	}
	for i := 0; i < 9; i++ {
		if _, ok := s.Get(key(fmt.Sprintf("k%d", i))); !ok {
			t.Errorf("k%d lost in recovery", i)
		}
	}
	if _, ok := s.Get(key("k9")); ok {
		t.Error("torn record k9 served after recovery")
	}

	// The truncated tail is gone from disk: a further clean reopen drops
	// nothing.
	s.Close()
	s = openT(t, dir)
	if st := s.Stats(); st.Recovered != 9 || st.DroppedBytes != 0 {
		t.Errorf("second reopen Stats = %+v, want 9 recovered, 0 dropped", st)
	}
}

// TestCrashCorruptChecksum flips one byte inside a record's payload. The
// store must never serve that record — it and everything after it is dropped.
func TestCrashCorruptChecksum(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	var offsets []int64
	for i := 0; i < 5; i++ {
		before := s.Stats().LogBytes
		if err := s.Put(key(fmt.Sprintf("k%d", i)), bytes.Repeat([]byte{0xAA}, 64)); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, before)
	}
	s.Close()

	// Flip a byte in record 2's value (header + key skipped).
	f, err := os.OpenFile(logPath(dir), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0x55}, offsets[2]+recordHeaderSize+KeySize+10); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s = openT(t, dir)
	defer s.Close()
	st := s.Stats()
	if st.Recovered != 2 {
		t.Errorf("Recovered = %d, want 2 (records before the corrupt one)", st.Recovered)
	}
	if st.DroppedBytes == 0 {
		t.Error("DroppedBytes = 0, want > 0")
	}
	for i := 0; i < 2; i++ {
		got, ok := s.Get(key(fmt.Sprintf("k%d", i)))
		if !ok || !bytes.Equal(got, bytes.Repeat([]byte{0xAA}, 64)) {
			t.Errorf("k%d corrupted or lost: %x, %v", i, got, ok)
		}
	}
	for i := 2; i < 5; i++ {
		if _, ok := s.Get(key(fmt.Sprintf("k%d", i))); ok {
			t.Errorf("k%d served from the corrupt region", i)
		}
	}
}

// TestCrashCorruptLength writes garbage over a record's length field; the
// decoder must classify it as corruption, not attempt a huge allocation.
func TestCrashCorruptLength(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if err := s.Put(key("k0"), []byte("first")); err != nil {
		t.Fatal(err)
	}
	second := s.Stats().LogBytes
	if err := s.Put(key("k1"), []byte("second")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	f, err := os.OpenFile(logPath(dir), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0xFF}, second); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s = openT(t, dir)
	defer s.Close()
	if st := s.Stats(); st.Recovered != 1 {
		t.Errorf("Recovered = %d, want 1", st.Recovered)
	}
	if got, ok := s.Get(key("k0")); !ok || string(got) != "first" {
		t.Errorf("k0 = %q, %v", got, ok)
	}
	if _, ok := s.Get(key("k1")); ok {
		t.Error("k1 served despite corrupt length")
	}
}

// TestCrashEmptyAndTornHeader covers a zero-byte log and one cut inside the
// magic itself: both recover to an empty store.
func TestCrashEmptyAndTornHeader(t *testing.T) {
	for _, size := range []int{0, 3} {
		dir := t.TempDir()
		if err := os.WriteFile(logPath(dir), []byte(logMagic)[:size], 0o644); err != nil {
			t.Fatal(err)
		}
		s := openT(t, dir)
		if s.Len() != 0 {
			t.Errorf("size %d: Len = %d, want 0", size, s.Len())
		}
		if err := s.Put(key("k"), []byte("v")); err != nil {
			t.Errorf("size %d: Put after torn-header recovery: %v", size, err)
		}
		s.Close()
	}
}

// TestBadMagicRefused: a file that is not a verdict log must not be silently
// clobbered.
func TestBadMagicRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(logPath(dir), []byte("definitely-not-a-log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open succeeded on a foreign file")
	}
}

// TestDoubleOpenLocked: the second Open of a live store directory must fail
// with ErrLocked, and succeed once the first holder closes.
func TestDoubleOpenLocked(t *testing.T) {
	dir := t.TempDir()
	s1 := openT(t, dir)
	if _, err := Open(dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open error = %v, want ErrLocked", err)
	}
	s1.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	s2.Close()
}

func TestCompactDropsGarbage(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	k := key("k")
	for i := 0; i < 100; i++ {
		if err := s.Put(k, bytes.Repeat([]byte{byte(i)}, 200)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(key("other"), []byte("keep")); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().LogBytes
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := s.Stats()
	if st.LogBytes >= before {
		t.Errorf("LogBytes %d did not shrink from %d", st.LogBytes, before)
	}
	if st.Compactions != 1 {
		t.Errorf("Compactions = %d, want 1", st.Compactions)
	}
	if got, _ := s.Get(k); !bytes.Equal(got, bytes.Repeat([]byte{99}, 200)) {
		t.Error("latest value lost in compaction")
	}

	// The lock survives compaction: a second Open still fails.
	if _, err := Open(dir); !errors.Is(err, ErrLocked) {
		t.Errorf("Open during post-compact store = %v, want ErrLocked", err)
	}

	// Appends after compaction land in the new file and survive reopen.
	if err := s.Put(key("after"), []byte("compact")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s = openT(t, dir)
	defer s.Close()
	for _, kk := range []string{"other", "after"} {
		if _, ok := s.Get(key(kk)); !ok {
			t.Errorf("%s lost across compact+reopen", kk)
		}
	}
	if got, _ := s.Get(k); !bytes.Equal(got, bytes.Repeat([]byte{99}, 200)) {
		t.Error("latest value lost across compact+reopen")
	}
}

// TestAutoCompactOnOpen: a log that is mostly overwrites gets compacted by
// Open itself.
func TestAutoCompactOnOpen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	k := key("k")
	for i := 0; i < 50; i++ {
		if err := s.Put(k, bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats().LogBytes
	s.Close()

	s = openT(t, dir)
	defer s.Close()
	st := s.Stats()
	if st.Compactions != 1 {
		t.Errorf("Compactions = %d, want 1 (auto-compact at open)", st.Compactions)
	}
	if st.LogBytes >= before {
		t.Errorf("LogBytes %d did not shrink from %d", st.LogBytes, before)
	}
	if got, _ := s.Get(k); !bytes.Equal(got, bytes.Repeat([]byte{49}, 100)) {
		t.Error("latest value lost in auto-compaction")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := key(fmt.Sprintf("g%d-i%d", g, i%10))
				if err := s.Put(k, []byte(fmt.Sprintf("%d:%d", g, i))); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				s.Get(k)
				s.Len()
				s.Stats()
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 80 {
		t.Errorf("Len = %d, want 80", s.Len())
	}
}

func TestRecordRoundTrip(t *testing.T) {
	var buf []byte
	keys := []Key{key("a"), key("b"), key("c")}
	vals := [][]byte{[]byte("x"), {}, bytes.Repeat([]byte{7}, 1000)}
	for i, k := range keys {
		buf = appendRecord(buf, k, vals[i])
	}
	for i, k := range keys {
		gotKey, gotVal, n, err := decodeRecord(buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if gotKey != k || !bytes.Equal(gotVal, vals[i]) {
			t.Fatalf("record %d: got %x/%q", i, gotKey, gotVal)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}
