package store

import (
	"bytes"
	"testing"
)

// FuzzStoreRecordRoundTrip drives the record codec both ways: arbitrary bytes
// through the decoder (which must classify, never panic, and never return an
// invalid record), and — when the input is long enough to cut a key from — a
// synthesized record through encode→decode identity.
func FuzzStoreRecordRoundTrip(f *testing.F) {
	var k Key
	f.Add([]byte{})
	f.Add(appendRecord(nil, k, nil))
	f.Add(appendRecord(nil, k, []byte("verdict")))
	f.Add(appendRecord(appendRecord(nil, k, []byte("a")), k, []byte("b")))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0x41}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Decoder on arbitrary bytes: must never panic, and a success must
		// be internally consistent.
		key, value, n, err := decodeRecord(data)
		if err == nil {
			if n < recordHeaderSize+KeySize || n > len(data) {
				t.Fatalf("decoded size %d out of bounds (input %d)", n, len(data))
			}
			// A valid decode must re-encode to exactly the bytes consumed.
			re := appendRecord(nil, key, value)
			if !bytes.Equal(re, data[:n]) {
				t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data[:n], re)
			}
		}

		// Encode→decode identity on a record synthesized from the input.
		if len(data) >= KeySize {
			var k Key
			copy(k[:], data)
			val := data[KeySize:]
			enc := appendRecord(nil, k, val)
			gotKey, gotVal, gotN, err := decodeRecord(enc)
			if err != nil {
				t.Fatalf("decode of fresh record failed: %v", err)
			}
			if gotN != len(enc) || gotKey != k || !bytes.Equal(gotVal, val) {
				t.Fatalf("round trip mismatch: n=%d key=%x val=%x", gotN, gotKey, gotVal)
			}
			// Any single flipped byte must be caught (length, checksum or
			// payload corruption — never a silent wrong answer).
			flip := append([]byte(nil), enc...)
			pos := int(len(data)) % len(flip)
			flip[pos] ^= 0x01
			if fk, fv, _, err := decodeRecord(flip); err == nil {
				if fk == k && bytes.Equal(fv, val) {
					t.Fatalf("flipped byte at %d went unnoticed", pos)
				}
			}
		}
	})
}
