package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Log record wire format. Every record is length-prefixed and checksummed so
// a reader can always tell a torn or corrupted tail from valid data:
//
//	| 4B payload length (LE) | 4B CRC32-IEEE of payload | payload |
//	payload = 32-byte key || value
//
// The length covers the payload only. A record is valid iff the length is in
// [KeySize, KeySize+MaxValueSize] and the checksum matches; anything else
// marks the end of the recoverable prefix.

const (
	// KeySize is the fixed key width: a SHA-256 content hash.
	KeySize = 32
	// MaxValueSize bounds a single value. It exists so a corrupted length
	// field can never drive a multi-gigabyte allocation.
	MaxValueSize = 16 << 20

	recordHeaderSize = 8
)

var (
	// errShortRecord means the buffer ends before the record does: a torn
	// write, not corruption — the bytes so far may still be a valid prefix.
	errShortRecord = errors.New("store: short record")
	// errBadLength means the length field is outside the valid range.
	errBadLength = errors.New("store: invalid record length")
	// errBadChecksum means the payload does not match its checksum.
	errBadChecksum = errors.New("store: checksum mismatch")
)

// appendRecord encodes one key/value record onto dst and returns the extended
// slice. The value may be empty; it must not exceed MaxValueSize.
func appendRecord(dst []byte, key [KeySize]byte, value []byte) []byte {
	payloadLen := KeySize + len(value)
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payloadLen))

	crc := crc32.NewIEEE()
	crc.Write(key[:])
	crc.Write(value)
	binary.LittleEndian.PutUint32(hdr[4:8], crc.Sum32())

	dst = append(dst, hdr[:]...)
	dst = append(dst, key[:]...)
	return append(dst, value...)
}

// decodeRecord reads one record from the front of b. It returns the key, the
// value (aliasing b), and the total encoded size. The error classifies what
// stopped it: errShortRecord for a truncated tail, errBadLength or
// errBadChecksum for corruption.
func decodeRecord(b []byte) (key [KeySize]byte, value []byte, n int, err error) {
	if len(b) < recordHeaderSize {
		return key, nil, 0, errShortRecord
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[0:4]))
	if payloadLen < KeySize || payloadLen > KeySize+MaxValueSize {
		return key, nil, 0, errBadLength
	}
	if len(b) < recordHeaderSize+payloadLen {
		return key, nil, 0, errShortRecord
	}
	payload := b[recordHeaderSize : recordHeaderSize+payloadLen]
	want := binary.LittleEndian.Uint32(b[4:8])
	if crc32.ChecksumIEEE(payload) != want {
		return key, nil, 0, errBadChecksum
	}
	copy(key[:], payload[:KeySize])
	return key, payload[KeySize:], recordHeaderSize + payloadLen, nil
}
