// Package htmlext statically extracts JavaScript from HTML documents, the
// way the paper's crawl extracted scripts from web pages (Section IV-A):
// inline <script> bodies, event-handler attributes, and javascript: URLs.
// It also surfaces the "environment interactions" obfuscation signal from
// Section II-A — payloads scattered across many small script blocks.
package htmlext

import (
	"strings"
)

// Script is one extracted JavaScript fragment.
type Script struct {
	// Source is the JavaScript text.
	Source string
	// Kind describes where the fragment came from.
	Kind ScriptKind
	// Src is the src attribute for external scripts (Source empty).
	Src string
	// Offset is the byte offset of the fragment in the HTML document.
	Offset int
}

// ScriptKind classifies extraction sites.
type ScriptKind int

// Extraction sites.
const (
	InlineScript ScriptKind = iota + 1
	ExternalScript
	EventHandler
	JavascriptURL
)

// String names the kind.
func (k ScriptKind) String() string {
	switch k {
	case InlineScript:
		return "inline"
	case ExternalScript:
		return "external"
	case EventHandler:
		return "event-handler"
	case JavascriptURL:
		return "javascript-url"
	default:
		return "unknown"
	}
}

// Extract pulls every JavaScript fragment out of an HTML document using a
// small forgiving scanner (real-world HTML is rarely well-formed).
func Extract(html string) []Script {
	var out []Script
	lower := asciiLower(html)
	i := 0
	for i < len(html) {
		open := strings.Index(lower[i:], "<script")
		if open < 0 {
			break
		}
		open += i
		tagEnd := strings.IndexByte(html[open:], '>')
		if tagEnd < 0 {
			break
		}
		tagEnd += open
		attrs := html[open+len("<script") : tagEnd]

		if src, ok := attrValue(attrs, "src"); ok {
			out = append(out, Script{Kind: ExternalScript, Src: src, Offset: open})
			i = tagEnd + 1
			continue
		}
		// Non-JS types (JSON payloads, templates) are skipped.
		if typ, ok := attrValue(attrs, "type"); ok && !isJavaScriptType(typ) {
			i = tagEnd + 1
			continue
		}
		closeIdx := strings.Index(lower[tagEnd:], "</script")
		if closeIdx < 0 {
			break
		}
		closeIdx += tagEnd
		body := html[tagEnd+1 : closeIdx]
		if strings.TrimSpace(body) != "" {
			out = append(out, Script{Kind: InlineScript, Source: body, Offset: tagEnd + 1})
		}
		i = closeIdx + 1
	}

	out = append(out, extractEventHandlers(html)...)
	return out
}

// isJavaScriptType accepts the type attribute values that denote JS.
func isJavaScriptType(t string) bool {
	switch strings.ToLower(strings.TrimSpace(t)) {
	case "", "text/javascript", "application/javascript", "module",
		"application/ecmascript", "text/ecmascript":
		return true
	}
	return false
}

// attrValue finds attr="value" (or single-quoted/bare) in a tag attribute
// string.
func attrValue(attrs, name string) (string, bool) {
	lower := asciiLower(attrs)
	idx := 0
	for {
		pos := strings.Index(lower[idx:], name)
		if pos < 0 {
			return "", false
		}
		pos += idx
		// Must be a word boundary.
		if pos > 0 && isWordByte(lower[pos-1]) {
			idx = pos + len(name)
			continue
		}
		rest := pos + len(name)
		for rest < len(attrs) && (attrs[rest] == ' ' || attrs[rest] == '\t') {
			rest++
		}
		if rest >= len(attrs) || attrs[rest] != '=' {
			idx = pos + len(name)
			continue
		}
		rest++
		for rest < len(attrs) && (attrs[rest] == ' ' || attrs[rest] == '\t') {
			rest++
		}
		if rest >= len(attrs) {
			return "", false
		}
		switch attrs[rest] {
		case '"', '\'':
			quote := attrs[rest]
			end := strings.IndexByte(attrs[rest+1:], quote)
			if end < 0 {
				return "", false
			}
			return attrs[rest+1 : rest+1+end], true
		default:
			end := rest
			for end < len(attrs) && !isSpaceByte(attrs[end]) {
				end++
			}
			return attrs[rest:end], true
		}
	}
}

// asciiLower lowercases A-Z byte-wise. Unlike strings.ToLower it never
// changes the string's length on invalid UTF-8 (U+FFFD replacement is 3
// bytes), so offsets found in the lowered copy stay valid in the original —
// the scanner's offset arithmetic depends on that.
func asciiLower(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			b := []byte(s)
			for ; i < len(b); i++ {
				if b[i] >= 'A' && b[i] <= 'Z' {
					b[i] += 'a' - 'A'
				}
			}
			return string(b)
		}
	}
	return s
}

func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '-' || b == '_'
}

func isSpaceByte(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r' || b == '>'
}

// eventAttrs lists the common inline handler attributes.
var eventAttrs = []string{
	"onclick", "onload", "onerror", "onsubmit", "onchange", "onmouseover",
	"onmouseout", "onkeydown", "onkeyup", "onfocus", "onblur", "oninput",
}

// extractEventHandlers pulls JS out of on* attributes and javascript: URLs.
func extractEventHandlers(html string) []Script {
	var out []Script
	lower := asciiLower(html)
	for _, attr := range eventAttrs {
		idx := 0
		for {
			pos := strings.Index(lower[idx:], attr+"=")
			if pos < 0 {
				break
			}
			pos += idx
			idx = pos + len(attr) + 1
			if pos > 0 && isWordByte(lower[pos-1]) {
				continue
			}
			val, ok := quotedValueAt(html, pos+len(attr)+1)
			if ok && strings.TrimSpace(val) != "" {
				out = append(out, Script{Kind: EventHandler, Source: val, Offset: pos})
			}
		}
	}
	// href="javascript:..."
	idx := 0
	for {
		pos := strings.Index(lower[idx:], "javascript:")
		if pos < 0 {
			break
		}
		pos += idx
		idx = pos + len("javascript:")
		end := pos + len("javascript:")
		stop := end
		for stop < len(html) && html[stop] != '"' && html[stop] != '\'' && html[stop] != '>' {
			stop++
		}
		code := html[end:stop]
		if strings.TrimSpace(code) != "" {
			out = append(out, Script{Kind: JavascriptURL, Source: code, Offset: end})
		}
	}
	return out
}

// quotedValueAt reads a quoted attribute value starting at i (the character
// right after '=').
func quotedValueAt(html string, i int) (string, bool) {
	if i >= len(html) {
		return "", false
	}
	quote := html[i]
	if quote != '"' && quote != '\'' {
		return "", false
	}
	end := strings.IndexByte(html[i+1:], quote)
	if end < 0 {
		return "", false
	}
	return html[i+1 : i+1+end], true
}

// JoinInline concatenates all inline fragments into one analyzable unit —
// the counter to the "scattering across script blocks" obfuscation: the
// detector sees the combined payload.
func JoinInline(scripts []Script) string {
	var sb strings.Builder
	for _, s := range scripts {
		if s.Kind == ExternalScript || s.Source == "" {
			continue
		}
		sb.WriteString(s.Source)
		if !strings.HasSuffix(strings.TrimSpace(s.Source), ";") {
			sb.WriteString(";")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
