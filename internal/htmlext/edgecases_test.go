package htmlext

import (
	"strings"
	"testing"
)

// Edge cases the wild-HTML corpus hits: exotic type attributes, unclosed
// and nested markup, handler attributes in awkward positions, and a crash-
// regression seed set run through every entry point.

func countKind(scripts []Script, kind ScriptKind) int {
	n := 0
	for _, s := range scripts {
		if s.Kind == kind {
			n++
		}
	}
	return n
}

func TestScriptTypeVariants(t *testing.T) {
	cases := []struct {
		name string
		html string
		want int // inline scripts extracted
	}{
		{"default type", `<script>a();</script>`, 1},
		{"text/javascript", `<script type="text/javascript">a();</script>`, 1},
		{"uppercase type", `<SCRIPT TYPE="TEXT/JAVASCRIPT">a();</SCRIPT>`, 1},
		{"module", `<script type="module">import x from "y";</script>`, 1},
		{"application/javascript", `<script type="application/javascript">a();</script>`, 1},
		{"ecmascript", `<script type="text/ecmascript">a();</script>`, 1},
		{"whitespace around type", `<script type=" text/javascript ">a();</script>`, 1},
		{"empty type", `<script type="">a();</script>`, 1},
		{"json payload skipped", `<script type="application/json">{"a":1}</script>`, 0},
		{"ld+json skipped", `<script type="application/ld+json">{"@context":1}</script>`, 0},
		{"template skipped", `<script type="text/x-template"><div></div></script>`, 0},
		{"importmap skipped", `<script type="importmap">{"imports":{}}</script>`, 0},
		{"single-quoted type", `<script type='text/javascript'>a();</script>`, 1},
		{"bare type value", `<script type=module>a();</script>`, 1},
		{"whitespace-only body dropped", "<script>   \n\t </script>", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := countKind(Extract(tc.html), InlineScript)
			if got != tc.want {
				t.Errorf("Extract(%q) inline = %d, want %d", tc.html, got, tc.want)
			}
		})
	}
}

func TestInlineEventHandlerPlacements(t *testing.T) {
	html := `
<body onload="init()">
<a href="#" onclick='track(this); go()'>x</a>
<img src=x onerror="pwn()">
<input oninput="validate(value)" onfocus="hint()">
<div data-onclick="notAHandler()">y</div>
<form onsubmit="return check()">
</form>
</body>`
	scripts := Extract(html)
	handlers := make(map[string]bool)
	for _, s := range scripts {
		if s.Kind == EventHandler {
			handlers[s.Source] = true
			if s.Offset < 0 || s.Offset >= len(html) {
				t.Errorf("handler %q offset %d out of range", s.Source, s.Offset)
			}
		}
	}
	for _, want := range []string{
		"init()", "track(this); go()", "pwn()", "validate(value)", "hint()", "return check()",
	} {
		if !handlers[want] {
			t.Errorf("handler %q not extracted (got %v)", want, handlers)
		}
	}
	// data-onclick must not match: onclick requires a word boundary.
	if handlers["notAHandler()"] {
		t.Error("data-onclick extracted as a real handler")
	}
}

func TestJavascriptURLs(t *testing.T) {
	html := `<a href="javascript:void(doIt())">go</a>
<a href='javascript: run(1,2)'>run</a>
<a href="javascript:">empty</a>`
	scripts := Extract(html)
	var got []string
	for _, s := range scripts {
		if s.Kind == JavascriptURL {
			got = append(got, s.Source)
		}
	}
	if len(got) != 2 {
		t.Fatalf("javascript: URLs = %v, want 2 non-empty", got)
	}
	if got[0] != "void(doIt())" || strings.TrimSpace(got[1]) != "run(1,2)" {
		t.Fatalf("extracted %v", got)
	}
}

func TestUnclosedAndNestedTags(t *testing.T) {
	cases := []struct {
		name string
		html string
		// wantSources is the exact set of inline sources expected.
		wantSources []string
	}{
		{
			name:        "unclosed script swallows rest silently",
			html:        `<p>x</p><script>var a = 1;`,
			wantSources: nil,
		},
		{
			name:        "unterminated open tag",
			html:        `<script type="text/javascript`,
			wantSources: nil,
		},
		{
			name:        "close tag with attributes still closes",
			html:        `<script>a();</script foo="bar">`,
			wantSources: []string{"a();"},
		},
		{
			name:        "case-insensitive close",
			html:        `<script>b();</SCRIPT>`,
			wantSources: []string{"b();"},
		},
		{
			name:        "second script after unclosed first is lost",
			html:        `<script>first();<script>second();</script>`,
			wantSources: []string{"first();<script>second();"},
		},
		{
			name:        "script inside comment still extracted (no comment parsing)",
			html:        `<!-- <script>c();</script> -->`,
			wantSources: []string{"c();"},
		},
		{
			name:        "empty document",
			html:        "",
			wantSources: nil,
		},
		{
			name:        "angle brackets in body text",
			html:        `<script>if (a < b) { go(); }</script>`,
			wantSources: []string{"if (a < b) { go(); }"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var got []string
			for _, s := range Extract(tc.html) {
				if s.Kind == InlineScript {
					got = append(got, s.Source)
				}
			}
			if len(got) != len(tc.wantSources) {
				t.Fatalf("inline sources = %q, want %q", got, tc.wantSources)
			}
			for i := range got {
				if got[i] != tc.wantSources[i] {
					t.Errorf("source %d = %q, want %q", i, got[i], tc.wantSources[i])
				}
			}
		})
	}
}

func TestExternalSrcVariants(t *testing.T) {
	html := `
<script src="https://cdn.example/a.js"></script>
<script src='/b.js'></script>
<script src=c.js></script>
<script data-src="not-external.js">inline();</script>`
	scripts := Extract(html)
	var srcs []string
	for _, s := range scripts {
		if s.Kind == ExternalScript {
			if s.Source != "" {
				t.Errorf("external script %q carries a body", s.Src)
			}
			srcs = append(srcs, s.Src)
		}
	}
	want := []string{"https://cdn.example/a.js", "/b.js", "c.js"}
	if len(srcs) != len(want) {
		t.Fatalf("srcs = %v, want %v", srcs, want)
	}
	for i := range want {
		if srcs[i] != want[i] {
			t.Errorf("src %d = %q, want %q", i, srcs[i], want[i])
		}
	}
	// data-src is not src: the body must be treated as inline.
	if got := countKind(scripts, InlineScript); got != 1 {
		t.Errorf("inline count = %d, want 1 (data-src tag's body)", got)
	}
}

// crashSeeds is the regression seed set: inputs that stress scanner offset
// arithmetic (truncations, quotes that never close, markers at EOF). Every
// entry point must survive all of them; panics fail the test immediately.
var crashSeeds = []string{
	"<script",
	"<script>",
	"<script ",
	"<script src=",
	`<script src="`,
	`<script src='x`,
	"<script></script",
	"<script>a()</script",
	"onclick=",
	`onclick="`,
	`<a onclick=">`,
	`<a onclick='x>`,
	"javascript:",
	`<a href="javascript:`,
	"<a href=javascript:alert(1)",
	"<script type=",
	`<script type="a`,
	"<sCrIpT>x()</sCrIpT>",
	"\x00<script>\x00</script>",
	// Invalid UTF-8 before a mixed-case tag: strings.ToLower used to grow
	// the lowered copy (U+FFFD is 3 bytes) and desync the scanner's
	// offsets, panicking with out-of-range slice bounds.
	"\xff<sCript>0",
	"\xff\xfe<SCRIPT SRC=\"\xff\">",
	strings.Repeat("<script>", 50),
	strings.Repeat("onload=\"x()\"", 40),
	"<script>" + strings.Repeat("a", 1<<16),
}

func TestCrashRegressionSeeds(t *testing.T) {
	for i, seed := range crashSeeds {
		scripts := Extract(seed)
		for _, s := range scripts {
			if s.Offset < 0 || s.Offset > len(seed) {
				t.Errorf("seed %d: offset %d outside document of %d bytes", i, s.Offset, len(seed))
			}
		}
		// JoinInline must also hold up on whatever Extract produced.
		_ = JoinInline(scripts)
	}
}

// FuzzExtract drives the scanner from the crash seeds; the properties are
// the same as the regression test (no panic, offsets inside the document).
func FuzzExtract(f *testing.F) {
	for _, seed := range crashSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, html string) {
		for _, s := range Extract(html) {
			if s.Offset < 0 || s.Offset > len(html) {
				t.Fatalf("offset %d outside document of %d bytes", s.Offset, len(html))
			}
			if s.Kind == ExternalScript && s.Source != "" {
				t.Fatalf("external script carries a body: %q", s.Source)
			}
		}
	})
}

func TestJoinInlineSemicolons(t *testing.T) {
	joined := JoinInline([]Script{
		{Kind: InlineScript, Source: "a()"},
		{Kind: InlineScript, Source: "b();"},
		{Kind: EventHandler, Source: "c()"},
		{Kind: ExternalScript, Src: "x.js"},
		{Kind: JavascriptURL, Source: ""},
	})
	want := "a();\nb();\nc();\n"
	if joined != want {
		t.Errorf("JoinInline = %q, want %q", joined, want)
	}
}
