package htmlext

import (
	"strings"
	"testing"
)

func TestExtractInlineScripts(t *testing.T) {
	html := `<!DOCTYPE html>
<html><head>
<script>var x = 1;</script>
<script type="text/javascript">var y = 2;</script>
<script type="application/json">{"not": "js"}</script>
</head><body>
<SCRIPT>upper();</SCRIPT>
</body></html>`
	scripts := Extract(html)
	var inline []Script
	for _, s := range scripts {
		if s.Kind == InlineScript {
			inline = append(inline, s)
		}
	}
	if len(inline) != 3 {
		t.Fatalf("inline scripts = %d, want 3", len(inline))
	}
	if !strings.Contains(inline[0].Source, "var x = 1;") {
		t.Fatalf("first = %q", inline[0].Source)
	}
	if !strings.Contains(inline[2].Source, "upper()") {
		t.Fatalf("case-insensitive tag missed: %q", inline[2].Source)
	}
}

func TestExtractExternalScripts(t *testing.T) {
	html := `<script src="/static/app.js"></script>
<script src='cdn.js' defer></script>
<script src=bare.js></script>`
	scripts := Extract(html)
	var srcs []string
	for _, s := range scripts {
		if s.Kind == ExternalScript {
			srcs = append(srcs, s.Src)
		}
	}
	if len(srcs) != 3 {
		t.Fatalf("external scripts = %v", srcs)
	}
	if srcs[0] != "/static/app.js" || srcs[1] != "cdn.js" || srcs[2] != "bare.js" {
		t.Fatalf("srcs = %v", srcs)
	}
}

func TestExtractEventHandlers(t *testing.T) {
	html := `<button onclick="doThing(1)">x</button>
<img src="x.png" onerror="evil()">
<a href="javascript:void(0)">link</a>`
	scripts := Extract(html)
	kinds := make(map[ScriptKind]int)
	for _, s := range scripts {
		kinds[s.Kind]++
	}
	if kinds[EventHandler] != 2 {
		t.Fatalf("event handlers = %d, want 2", kinds[EventHandler])
	}
	if kinds[JavascriptURL] != 1 {
		t.Fatalf("javascript URLs = %d, want 1", kinds[JavascriptURL])
	}
}

func TestScatteredPayloadJoin(t *testing.T) {
	// The "environment interactions" obfuscation: a payload scattered
	// across several script blocks only makes sense combined.
	html := `
<script>var part1 = "aGVs";</script>
<script>var part2 = "bG8=";</script>
<script>eval(atob(part1 + part2));</script>`
	scripts := Extract(html)
	joined := JoinInline(scripts)
	if !strings.Contains(joined, "part1") || !strings.Contains(joined, "eval(atob") {
		t.Fatalf("joined = %q", joined)
	}
	// The joined unit must be parseable as one program.
	if strings.Count(joined, "\n") < 3 {
		t.Fatalf("expected one fragment per line: %q", joined)
	}
}

func TestMalformedHTMLDoesNotPanic(t *testing.T) {
	for _, html := range []string{
		"<script>unterminated",
		"<script",
		"<script src=",
		`<img onerror=`,
		"",
		"<script></script>",
	} {
		_ = Extract(html) // must not panic
	}
}

func TestKindString(t *testing.T) {
	if InlineScript.String() != "inline" || ExternalScript.String() != "external" {
		t.Fatal("kind names broken")
	}
}
