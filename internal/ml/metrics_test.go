package ml

import (
	"math"
	"testing"
)

// Every metric must stay finite on degenerate inputs: empty matrices,
// single-class truth, all-negative predictions. NaNs here poison downstream
// macro-averages silently, so the tests check both value and finiteness.

func TestConfusionEdgeCases(t *testing.T) {
	cases := []struct {
		name                            string
		c                               Confusion
		precision, recall, f1, accuracy float64
	}{
		{
			name: "empty-matrix",
			c:    Confusion{},
		},
		{
			name:      "all-negative-predictions",
			c:         Confusion{TN: 7, FN: 3}, // predictor never fires
			precision: 0, recall: 0, f1: 0, accuracy: 0.7,
		},
		{
			name:      "single-class-all-positive-truth",
			c:         Confusion{TP: 4, FN: 1}, // truth has no negatives
			precision: 1, recall: 0.8, f1: 2 * 1 * 0.8 / 1.8, accuracy: 0.8,
		},
		{
			name:      "single-class-all-negative-truth",
			c:         Confusion{TN: 5, FP: 2}, // truth has no positives
			precision: 0, recall: 0, f1: 0, accuracy: 5.0 / 7.0,
		},
		{
			name:      "perfect",
			c:         Confusion{TP: 3, TN: 3},
			precision: 1, recall: 1, f1: 1, accuracy: 1,
		},
		{
			name:      "all-wrong",
			c:         Confusion{FP: 2, FN: 2},
			precision: 0, recall: 0, f1: 0, accuracy: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := []struct {
				metric  string
				v, want float64
			}{
				{"Precision", tc.c.Precision(), tc.precision},
				{"Recall", tc.c.Recall(), tc.recall},
				{"F1", tc.c.F1(), tc.f1},
				{"Accuracy", tc.c.Accuracy(), tc.accuracy},
			}
			for _, g := range got {
				if math.IsNaN(g.v) || math.IsInf(g.v, 0) {
					t.Fatalf("%s = %v, want finite", g.metric, g.v)
				}
				if math.Abs(g.v-g.want) > 1e-12 {
					t.Errorf("%s = %v, want %v", g.metric, g.v, g.want)
				}
			}
		})
	}
}

func TestConfusionObserveAndFrom(t *testing.T) {
	pred := []bool{true, true, false, false, true}
	truth := []bool{true, false, false, true, true}
	c := ConfusionFrom(pred, truth)
	want := Confusion{TP: 2, FP: 1, TN: 1, FN: 1}
	if c != want {
		t.Fatalf("ConfusionFrom = %+v, want %+v", c, want)
	}
	if c.Total() != 5 {
		t.Fatalf("Total = %d, want 5", c.Total())
	}

	// Mismatched lengths must not panic; extra entries are ignored.
	c2 := ConfusionFrom([]bool{true, true, true}, []bool{true})
	if c2.Total() != 1 || c2.TP != 1 {
		t.Fatalf("ConfusionFrom mismatched lengths = %+v", c2)
	}
	if got := ConfusionFrom(nil, nil); got.Total() != 0 {
		t.Fatalf("ConfusionFrom(nil, nil) = %+v", got)
	}
}

func TestThresholdLabelsEdgeCases(t *testing.T) {
	if got := ThresholdLabels(nil, 0.5); got != nil {
		t.Fatalf("ThresholdLabels(nil) = %v, want nil", got)
	}
	// All below threshold.
	if got := ThresholdLabels([]float64{0.1, 0.2}, 0.5); got != nil {
		t.Fatalf("all-below = %v, want nil", got)
	}
	// Ordering: most probable first.
	got := ThresholdLabels([]float64{0.6, 0.9, 0.7}, 0.5)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 0 {
		t.Fatalf("ordering = %v, want [1 2 0]", got)
	}
}

func TestTopKEdgeCases(t *testing.T) {
	if got := TopK(nil, 3); len(got) != 0 {
		t.Fatalf("TopK(nil, 3) = %v, want empty", got)
	}
	if got := TopK([]float64{0.2, 0.8}, 5); len(got) != 2 {
		t.Fatalf("k beyond len = %v, want 2 entries", got)
	}
	if got := TopK([]float64{0.2, 0.8, 0.5}, 0); len(got) != 0 {
		t.Fatalf("k=0 = %v, want empty", got)
	}
}

func TestTopKCorrectEdgeCases(t *testing.T) {
	// Empty everything: vacuously correct.
	if !TopKCorrect(nil, nil, 2) {
		t.Fatal("TopKCorrect(nil, nil) = false, want true")
	}
	if !TopKCorrect([]float64{0.9, 0.1}, []bool{true, false}, 1) {
		t.Fatal("top-1 hit reported as miss")
	}
	if TopKCorrect([]float64{0.9, 0.1}, []bool{false, true}, 1) {
		t.Fatal("top-1 miss reported as hit")
	}
}

func TestExactMatchEdgeCases(t *testing.T) {
	// Empty prediction vs all-negative truth: exact.
	if !ExactMatch(nil, []bool{false, false}) {
		t.Fatal("empty pred vs all-negative truth should match")
	}
	// Empty prediction vs positive truth: not exact.
	if ExactMatch(nil, []bool{true}) {
		t.Fatal("empty pred vs positive truth should not match")
	}
	// Single-class truth, full prediction.
	if !ExactMatch([]int{0, 1}, []bool{true, true}) {
		t.Fatal("full match on all-positive truth failed")
	}
}

func TestWrongMissingEdgeCases(t *testing.T) {
	// Out-of-range predicted index counts as wrong, never panics.
	wrong, missing := WrongMissing([]int{0, 5, -1}, []bool{true, false})
	if wrong != 2 || missing != 0 {
		t.Fatalf("out-of-range = (%d, %d), want (2, 0)", wrong, missing)
	}
	wrong, missing = WrongMissing(nil, []bool{true, true})
	if wrong != 0 || missing != 2 {
		t.Fatalf("empty pred = (%d, %d), want (0, 2)", wrong, missing)
	}
	wrong, missing = WrongMissing(nil, nil)
	if wrong != 0 || missing != 0 {
		t.Fatalf("all-empty = (%d, %d), want (0, 0)", wrong, missing)
	}
}

func TestBinaryAccuracyEmpty(t *testing.T) {
	if v := BinaryAccuracy(nil, nil); v != 0 || math.IsNaN(v) {
		t.Fatalf("BinaryAccuracy(nil, nil) = %v, want 0", v)
	}
}

func TestForestAccuracyEmpty(t *testing.T) {
	// An empty evaluation set must yield 0, not NaN (0/0).
	if v := forestAccuracy(&Forest{}, nil, nil); v != 0 || math.IsNaN(v) {
		t.Fatalf("forestAccuracy on empty set = %v, want 0", v)
	}
}
