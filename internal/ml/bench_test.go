package ml

import (
	"math/rand"
	"testing"
)

func BenchmarkTrainForest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := synthGaussian(rng, 500, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainForest(x, y, ForestOptions{NumTrees: 20, Parallel: true}, rand.New(rand.NewSource(2)))
	}
}

func BenchmarkForestPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x, y := synthGaussian(rng, 500, 64)
	f := TrainForest(x, y, ForestOptions{NumTrees: 40}, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(x[i%len(x)])
	}
}

func BenchmarkChainPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x, y := synthMultiLabel(rng, 500)
	chain, err := TrainChain(x, y, []string{"a", "b", "c"}, ForestOptions{NumTrees: 20}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chain.PredictProbs(x[i%len(x)])
	}
}
