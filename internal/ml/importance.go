package ml

import (
	"math/rand"
	"sort"
)

// FeatureImportance holds one dimension's permutation importance.
type FeatureImportance struct {
	Feature int
	// Drop is the accuracy lost when the feature is permuted; higher means
	// more important.
	Drop float64
}

// PermutationImportance estimates per-feature importance for one binary
// forest: each feature column is shuffled in turn and the resulting
// accuracy drop recorded. Only the topN most important features are
// returned, sorted by decreasing drop.
func PermutationImportance(f *Forest, x [][]float64, y []bool, topN int, rng *rand.Rand) []FeatureImportance {
	if len(x) == 0 {
		return nil
	}
	dims := len(x[0])
	baseline := forestAccuracy(f, x, y)

	// Work on a copy so the caller's data is untouched.
	col := make([]float64, len(x))
	perm := make([]int, len(x))
	scratch := make([][]float64, len(x))
	for i := range x {
		row := make([]float64, dims)
		copy(row, x[i])
		scratch[i] = row
	}

	out := make([]FeatureImportance, 0, dims)
	for d := 0; d < dims; d++ {
		for i := range scratch {
			col[i] = scratch[i][d]
		}
		copy(perm, rng.Perm(len(x)))
		for i := range scratch {
			scratch[i][d] = col[perm[i]]
		}
		shuffled := forestAccuracy(f, scratch, y)
		for i := range scratch {
			scratch[i][d] = col[i]
		}
		if drop := baseline - shuffled; drop > 0 {
			out = append(out, FeatureImportance{Feature: d, Drop: drop})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Drop != out[b].Drop {
			return out[a].Drop > out[b].Drop
		}
		return out[a].Feature < out[b].Feature
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}

func forestAccuracy(f *Forest, x [][]float64, y []bool) float64 {
	if len(x) == 0 {
		return 0 // avoid 0/0 → NaN on an empty evaluation set
	}
	correct := 0
	for i := range x {
		if (f.Predict(x[i]) >= 0.5) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}
