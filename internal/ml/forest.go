package ml

import (
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/obs"
)

// ForestOptions configures random-forest training.
type ForestOptions struct {
	// NumTrees is the ensemble size; zero means 40.
	NumTrees int
	// Tree holds the per-tree CART options.
	Tree TreeOptions
	// Parallel enables goroutine-per-core training.
	Parallel bool
}

func (o ForestOptions) numTrees() int {
	if o.NumTrees <= 0 {
		return 40
	}
	return o.NumTrees
}

// Forest is a bagged ensemble of CART trees; the predicted probability is
// the mean of the member probabilities.
type Forest struct {
	Trees []*Tree
}

// Predict returns the probability of the positive class for x.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.Trees) == 0 {
		return 0.5
	}
	obs.Add("ml.tree_evals", int64(len(f.Trees)))
	sum := 0.0
	for _, t := range f.Trees {
		sum += t.Predict(x)
	}
	return sum / float64(len(f.Trees))
}

// TrainForest fits a random forest with bootstrap sampling.
func TrainForest(x [][]float64, y []bool, opts ForestOptions, rng *rand.Rand) *Forest {
	n := len(x)
	numTrees := opts.numTrees()
	forest := &Forest{Trees: make([]*Tree, numTrees)}
	if n == 0 {
		for i := range forest.Trees {
			forest.Trees[i] = &Tree{Nodes: []TreeNode{{Left: -1, Right: -1, Prob: 0.5}}}
		}
		return forest
	}

	// Derive an independent seed per tree up front so parallel training is
	// deterministic for a given rng state.
	seeds := make([]int64, numTrees)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}

	train := func(i int) {
		treeRng := rand.New(rand.NewSource(seeds[i]))
		idx := make([]int, n)
		for j := range idx {
			idx[j] = treeRng.Intn(n)
		}
		forest.Trees[i] = TrainTree(x, y, idx, opts.Tree, treeRng)
	}

	if !opts.Parallel {
		for i := 0; i < numTrees; i++ {
			train(i)
		}
		return forest
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > numTrees {
		workers = numTrees
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				train(i)
			}
		}()
	}
	for i := 0; i < numTrees; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return forest
}
