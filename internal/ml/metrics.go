package ml

import "sort"

// ThresholdLabels returns the indices of labels whose probability is at
// least threshold, most probable first.
func ThresholdLabels(probs []float64, threshold float64) []int {
	var idx []int
	for i, p := range probs {
		if p >= threshold {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return probs[idx[a]] > probs[idx[b]] })
	return idx
}

// TopK returns the indices of the k most probable labels, most probable
// first.
func TopK(probs []float64, k int) []int {
	idx := make([]int, len(probs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return probs[idx[a]] > probs[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// TopKThreshold keeps at most k labels, all with probability ≥ threshold
// (the paper's Figure 1b setting: Top-k with a 10% confidence floor).
func TopKThreshold(probs []float64, k int, threshold float64) []int {
	top := TopK(probs, k)
	var out []int
	for _, i := range top {
		if probs[i] >= threshold {
			out = append(out, i)
		}
	}
	return out
}

// TopKCorrect implements the paper's Top-k criterion: the prediction is
// correct when all k most-probable labels are part of the ground truth.
func TopKCorrect(probs []float64, truth []bool, k int) bool {
	for _, i := range TopK(probs, k) {
		if !truth[i] {
			return false
		}
	}
	return true
}

// ExactMatch reports whether the thresholded label set equals the ground
// truth exactly (both the labels and their number, Section III-E1).
func ExactMatch(pred []int, truth []bool) bool {
	want := 0
	for _, t := range truth {
		if t {
			want++
		}
	}
	if len(pred) != want {
		return false
	}
	for _, i := range pred {
		if !truth[i] {
			return false
		}
	}
	return true
}

// WrongMissing counts predicted labels not in the truth (wrong) and truth
// labels not predicted (missing), as plotted in Figure 1. Predicted indices
// outside the truth vector count as wrong rather than panicking.
func WrongMissing(pred []int, truth []bool) (wrong, missing int) {
	predSet := make(map[int]bool, len(pred))
	for _, i := range pred {
		predSet[i] = true
		if i < 0 || i >= len(truth) || !truth[i] {
			wrong++
		}
	}
	for i, t := range truth {
		if t && !predSet[i] {
			missing++
		}
	}
	return wrong, missing
}

// BinaryAccuracy is the fraction of correct boolean predictions.
func BinaryAccuracy(pred, truth []bool) float64 {
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for i := range pred {
		if pred[i] == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// Confusion is a binary confusion matrix. The zero value is an empty matrix;
// every derived metric on it is defined (0, never NaN), so degenerate
// evaluation splits — single-class truth, all-negative predictions — report
// scores instead of poisoning downstream averages.
type Confusion struct {
	TP, FP, TN, FN int
}

// Observe tallies one prediction against its ground truth.
func (c *Confusion) Observe(pred, truth bool) {
	switch {
	case pred && truth:
		c.TP++
	case pred && !truth:
		c.FP++
	case !pred && truth:
		c.FN++
	default:
		c.TN++
	}
}

// ConfusionFrom builds a confusion matrix from parallel prediction and truth
// vectors; extra entries in the longer vector are ignored.
func ConfusionFrom(pred, truth []bool) Confusion {
	n := len(pred)
	if len(truth) < n {
		n = len(truth)
	}
	var c Confusion
	for i := 0; i < n; i++ {
		c.Observe(pred[i], truth[i])
	}
	return c
}

// Total is the number of observations in the matrix.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Precision is TP/(TP+FP), or 0 when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP/(TP+FN), or 0 when the truth has no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall, or 0 when both are 0.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy is (TP+TN)/total, or 0 for an empty matrix.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}
