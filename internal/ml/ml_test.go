package ml

import (
	"bufio"
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthGaussian builds a linearly separable two-class dataset.
func synthGaussian(rng *rand.Rand, n, dims int) ([][]float64, []bool) {
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := range x {
		x[i] = make([]float64, dims)
		pos := i%2 == 0
		y[i] = pos
		center := -1.0
		if pos {
			center = 1.0
		}
		for d := range x[i] {
			x[i][d] = center*0.8 + rng.NormFloat64()
		}
	}
	return x, y
}

func TestTreeLearnsSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := synthGaussian(rng, 400, 8)
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	tree := TrainTree(x, y, idx, TreeOptions{MTry: 8}, rng)
	correct := 0
	for i := range x {
		if (tree.Predict(x[i]) > 0.5) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.9 {
		t.Fatalf("in-sample tree accuracy = %.3f, want >= 0.9", acc)
	}
}

func TestForestGeneralizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xTrain, yTrain := synthGaussian(rng, 600, 10)
	xTest, yTest := synthGaussian(rng, 300, 10)
	f := TrainForest(xTrain, yTrain, ForestOptions{NumTrees: 25}, rng)
	correct := 0
	for i := range xTest {
		if (f.Predict(xTest[i]) > 0.5) == yTest[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xTest)); acc < 0.85 {
		t.Fatalf("held-out forest accuracy = %.3f, want >= 0.85", acc)
	}
}

func TestForestParallelDeterminism(t *testing.T) {
	x, y := synthGaussian(rand.New(rand.NewSource(3)), 200, 6)
	a := TrainForest(x, y, ForestOptions{NumTrees: 12, Parallel: false}, rand.New(rand.NewSource(7)))
	b := TrainForest(x, y, ForestOptions{NumTrees: 12, Parallel: true}, rand.New(rand.NewSource(7)))
	for i := range x {
		pa, pb := a.Predict(x[i]), b.Predict(x[i])
		if pa != pb {
			t.Fatalf("sequential and parallel training diverge at sample %d: %v vs %v", i, pa, pb)
		}
	}
}

// synthMultiLabel builds a dataset where label j fires when feature j > 0,
// and label 2 is correlated with label 0 (to exercise the chain).
func synthMultiLabel(rng *rand.Rand, n int) ([][]float64, [][]bool) {
	x := make([][]float64, n)
	y := make([][]bool, n)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y[i] = []bool{x[i][0] > 0, x[i][1] > 0, x[i][0] > 0 != (x[i][2] > 1.5)}
	}
	return x, y
}

func TestChainLearnsCorrelatedLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := synthMultiLabel(rng, 800)
	labels := []string{"a", "b", "c"}
	chain, err := TrainChain(x, y, labels, ForestOptions{NumTrees: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	xt, yt := synthMultiLabel(rng, 300)
	correct := 0
	total := 0
	for i := range xt {
		probs := chain.PredictProbs(xt[i])
		if len(probs) != 3 {
			t.Fatalf("probs = %d, want 3", len(probs))
		}
		for j := range probs {
			total++
			if (probs[j] > 0.5) == yt[i][j] {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.8 {
		t.Fatalf("chain per-label accuracy = %.3f, want >= 0.8", acc)
	}
}

func TestIndependentMatchesInterface(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := synthMultiLabel(rng, 300)
	m, err := TrainIndependent(x, y, []string{"a", "b", "c"}, ForestOptions{NumTrees: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	probs := m.PredictProbs(x[0])
	if len(probs) != 3 {
		t.Fatalf("probs = %d", len(probs))
	}
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := TrainChain(nil, nil, []string{"a"}, ForestOptions{}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error on empty training set")
	}
	x := [][]float64{{1, 2}}
	y := [][]bool{{true}}
	if _, err := TrainChain(x, y, []string{"a", "b"}, ForestOptions{}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error on label arity mismatch")
	}
}

func TestModelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := synthMultiLabel(rng, 200)
	labels := []string{"regular", "minified", "obfuscated"}
	chain, err := TrainChain(x, y, labels, ForestOptions{NumTrees: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	fp := Fingerprint{NGramDims: 1024, NGramLen: 4, RuleFeatures: true}
	var buf bytes.Buffer
	if err := WriteModel(&buf, chain, fp); err != nil {
		t.Fatal(err)
	}
	got, gotFP, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotFP == nil || *gotFP != fp {
		t.Fatalf("fingerprint = %+v, want %+v", gotFP, fp)
	}
	if got.Labels()[2] != "obfuscated" {
		t.Fatalf("labels = %v", got.Labels())
	}
	for i := 0; i < 50; i++ {
		want := chain.PredictProbs(x[i])
		have := got.PredictProbs(x[i])
		for j := range want {
			if want[j] != have[j] {
				t.Fatalf("prediction changed after round trip: %v vs %v", want, have)
			}
		}
	}
}

// TestModelReadsLegacyV1 covers the back-compat path: a v1 file (no
// fingerprint block) must load with a nil fingerprint and identical
// predictions.
func TestModelReadsLegacyV1(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, y := synthMultiLabel(rng, 150)
	labels := []string{"regular", "minified", "obfuscated"}
	chain, err := TrainChain(x, y, labels, ForestOptions{NumTrees: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if _, err := bw.WriteString(modelMagicV1); err != nil {
		t.Fatal(err)
	}
	if err := writeModelBody(bw, chain); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, fp, err := ReadModel(&buf)
	if err != nil {
		t.Fatalf("read v1: %v", err)
	}
	if fp != nil {
		t.Fatalf("v1 file must carry no fingerprint, got %+v", fp)
	}
	for i := 0; i < 20; i++ {
		want := chain.PredictProbs(x[i])
		have := got.PredictProbs(x[i])
		for j := range want {
			if want[j] != have[j] {
				t.Fatalf("v1 prediction changed: %v vs %v", want, have)
			}
		}
	}
}

// TestV2FingerprintPrecedesBody pins the wire layout: a v2 file is the v1
// body with the fingerprint block spliced in after the magic.
func TestV2FingerprintPrecedesBody(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x, y := synthMultiLabel(rng, 120)
	chain, err := TrainChain(x, y, []string{"a", "b", "c"}, ForestOptions{NumTrees: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := WriteModel(&v2, chain, Fingerprint{NGramDims: 512, NGramLen: 4}); err != nil {
		t.Fatal(err)
	}
	raw := v2.Bytes()
	if string(raw[:8]) != modelMagicV2 {
		t.Fatalf("magic = %q", raw[:8])
	}
	var v1 bytes.Buffer
	bw := bufio.NewWriter(&v1)
	if _, err := bw.WriteString(modelMagicV1); err != nil {
		t.Fatal(err)
	}
	if err := writeModelBody(bw, chain); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw[8+fingerprintSize:], v1.Bytes()[8:]) {
		t.Fatal("v2 body must equal v1 body after the fingerprint block")
	}
}

func TestModelRejectsGarbage(t *testing.T) {
	if _, _, err := ReadModel(bytes.NewReader([]byte("not a model at all"))); err == nil {
		t.Fatal("expected error on bad magic")
	}
	if _, _, err := ReadModel(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error on empty input")
	}
	truncated := []byte(modelMagicV2 + "1234")
	if _, _, err := ReadModel(bytes.NewReader(truncated)); err == nil {
		t.Fatal("expected error on truncated fingerprint")
	}
}

func TestTopK(t *testing.T) {
	probs := []float64{0.1, 0.9, 0.5, 0.7}
	got := TopK(probs, 2)
	if got[0] != 1 || got[1] != 3 {
		t.Fatalf("TopK = %v", got)
	}
	if len(TopK(probs, 10)) != 4 {
		t.Fatal("TopK must clamp k")
	}
}

func TestTopKCorrect(t *testing.T) {
	probs := []float64{0.2, 0.9, 0.6, 0.1}
	truth := []bool{false, true, true, false}
	if !TopKCorrect(probs, truth, 1) {
		t.Fatal("top-1 must be correct")
	}
	if !TopKCorrect(probs, truth, 2) {
		t.Fatal("top-2 must be correct")
	}
	if TopKCorrect(probs, truth, 3) {
		t.Fatal("top-3 must be wrong (label 0 not in truth)")
	}
}

func TestExactMatch(t *testing.T) {
	truth := []bool{true, false, true}
	if !ExactMatch([]int{0, 2}, truth) {
		t.Fatal("exact set must match")
	}
	if ExactMatch([]int{0}, truth) {
		t.Fatal("missing label must fail")
	}
	if ExactMatch([]int{0, 1, 2}, truth) {
		t.Fatal("extra label must fail")
	}
}

func TestWrongMissing(t *testing.T) {
	truth := []bool{true, false, true, false}
	wrong, missing := WrongMissing([]int{0, 1}, truth)
	if wrong != 1 || missing != 1 {
		t.Fatalf("wrong=%d missing=%d, want 1,1", wrong, missing)
	}
}

func TestThresholdLabelsProperty(t *testing.T) {
	f := func(raw []float64, thresholdRaw float64) bool {
		probs := make([]float64, len(raw))
		for i, v := range raw {
			probs[i] = clamp01(v)
		}
		threshold := clamp01(thresholdRaw)
		got := ThresholdLabels(probs, threshold)
		// Every selected label is above threshold and sorted descending.
		for k, i := range got {
			if probs[i] < threshold {
				return false
			}
			if k > 0 && probs[got[k-1]] < probs[i] {
				return false
			}
		}
		// Every unselected label is below threshold.
		sel := make(map[int]bool)
		for _, i := range got {
			sel[i] = true
		}
		for i, p := range probs {
			if !sel[i] && p >= threshold {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTreePredictionInRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, y := synthGaussian(rng, 150, 5)
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	tree := TrainTree(x, y, idx, TreeOptions{}, rng)
	f := func(a, b, c, d, e float64) bool {
		p := tree.Predict([]float64{a, b, c, d, e})
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func clamp01(v float64) float64 {
	if v != v || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func TestPermutationImportance(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// Feature 0 carries all the signal; features 1-4 are noise.
	n := 400
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := range x {
		pos := i%2 == 0
		y[i] = pos
		signal := -1.0
		if pos {
			signal = 1.0
		}
		x[i] = []float64{signal + 0.3*rng.NormFloat64(), rng.NormFloat64(),
			rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	f := TrainForest(x, y, ForestOptions{NumTrees: 25, Tree: TreeOptions{MTry: 5}}, rng)
	imp := PermutationImportance(f, x, y, 3, rng)
	if len(imp) == 0 {
		t.Fatal("no importances returned")
	}
	if imp[0].Feature != 0 {
		t.Fatalf("most important feature = %d, want 0 (importances: %v)", imp[0].Feature, imp)
	}
	if imp[0].Drop <= 0 {
		t.Fatalf("importance drop = %v", imp[0].Drop)
	}
}

func TestPermutationImportanceEmpty(t *testing.T) {
	if got := PermutationImportance(&Forest{}, nil, nil, 5, rand.New(rand.NewSource(1))); got != nil {
		t.Fatalf("expected nil for empty input, got %v", got)
	}
}
