// Package ml implements the learning machinery of the paper's pipeline from
// scratch: CART decision trees, bagged random forests, and the two
// multi-task arrangements the paper compares (classifier chain and
// independent binary relevance), plus the evaluation metrics (exact-match
// accuracy, Top-k accuracy, wrong/missing label counts).
package ml

import (
	"math"
	"math/rand"
	"sort"
)

// TreeOptions configures CART training.
type TreeOptions struct {
	// MaxDepth limits tree depth; zero means 24.
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf; zero means 2.
	MinLeaf int
	// MTry is the number of features sampled at each split; zero means
	// sqrt(d).
	MTry int
}

func (o TreeOptions) maxDepth() int {
	if o.MaxDepth <= 0 {
		return 24
	}
	return o.MaxDepth
}

func (o TreeOptions) minLeaf() int {
	if o.MinLeaf <= 0 {
		return 2
	}
	return o.MinLeaf
}

func (o TreeOptions) mtry(dims int) int {
	if o.MTry > 0 {
		return o.MTry
	}
	m := int(math.Sqrt(float64(dims)))
	if m < 1 {
		m = 1
	}
	return m
}

// TreeNode is one node of a serialized decision tree. Leaves have
// Left == -1.
type TreeNode struct {
	Feature   int32
	Threshold float64
	Left      int32
	Right     int32
	Prob      float64
}

// Tree is a trained CART binary classifier.
type Tree struct {
	Nodes []TreeNode
}

// Predict returns the probability of the positive class for x.
func (t *Tree) Predict(x []float64) float64 {
	if len(t.Nodes) == 0 {
		return 0.5
	}
	i := int32(0)
	for {
		n := t.Nodes[i]
		if n.Left < 0 {
			return n.Prob
		}
		if x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// TrainTree fits a CART tree on the rows of X indexed by idx with labels y.
// Feature subsampling at each split uses rng, making the tree suitable as a
// random-forest member.
func TrainTree(x [][]float64, y []bool, idx []int, opts TreeOptions, rng *rand.Rand) *Tree {
	if len(idx) == 0 {
		return &Tree{Nodes: []TreeNode{{Left: -1, Right: -1, Prob: 0.5}}}
	}
	dims := len(x[idx[0]])
	t := &Tree{}
	b := &treeBuilder{
		x: x, y: y, opts: opts, rng: rng,
		mtry: opts.mtry(dims), dims: dims, tree: t,
	}
	b.build(idx, 0)
	return t
}

type treeBuilder struct {
	x    [][]float64
	y    []bool
	opts TreeOptions
	rng  *rand.Rand
	mtry int
	dims int
	tree *Tree
}

// build grows a subtree over samples idx and returns its node index.
func (b *treeBuilder) build(idx []int, depth int) int32 {
	pos := 0
	for _, i := range idx {
		if b.y[i] {
			pos++
		}
	}
	// Laplace-smoothed leaf probability.
	prob := (float64(pos) + 1) / (float64(len(idx)) + 2)

	node := int32(len(b.tree.Nodes))
	b.tree.Nodes = append(b.tree.Nodes, TreeNode{Left: -1, Right: -1, Prob: prob})

	if pos == 0 || pos == len(idx) ||
		depth >= b.opts.maxDepth() || len(idx) < 2*b.opts.minLeaf() {
		return node
	}

	feat, thresh, ok := b.bestSplit(idx, pos)
	if !ok {
		return node
	}

	var left, right []int
	for _, i := range idx {
		if b.x[i][feat] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.opts.minLeaf() || len(right) < b.opts.minLeaf() {
		return node
	}

	l := b.build(left, depth+1)
	r := b.build(right, depth+1)
	b.tree.Nodes[node].Feature = int32(feat)
	b.tree.Nodes[node].Threshold = thresh
	b.tree.Nodes[node].Left = l
	b.tree.Nodes[node].Right = r
	return node
}

// bestSplit scans mtry random features for the split with the best Gini
// gain.
func (b *treeBuilder) bestSplit(idx []int, pos int) (int, float64, bool) {
	n := len(idx)
	total := float64(n)
	bestGini := math.Inf(1)
	bestFeat, bestThresh := -1, 0.0

	type pair struct {
		v   float64
		pos bool
	}
	pairs := make([]pair, n)

	seen := make(map[int]bool, b.mtry)
	for tries := 0; tries < b.mtry; {
		f := b.rng.Intn(b.dims)
		if seen[f] {
			// Resample; with dims >> mtry collisions are rare.
			if len(seen) >= b.dims {
				break
			}
			continue
		}
		seen[f] = true
		tries++

		for k, i := range idx {
			pairs[k] = pair{v: b.x[i][f], pos: b.y[i]}
		}
		sort.Slice(pairs, func(a, c int) bool { return pairs[a].v < pairs[c].v })
		if pairs[0].v == pairs[n-1].v {
			continue
		}

		leftN, leftPos := 0, 0
		for k := 0; k < n-1; k++ {
			leftN++
			if pairs[k].pos {
				leftPos++
			}
			if pairs[k].v == pairs[k+1].v {
				continue
			}
			rightN := n - leftN
			rightPos := pos - leftPos
			gini := giniSplit(leftN, leftPos, rightN, rightPos, total)
			if gini < bestGini {
				bestGini = gini
				bestFeat = f
				bestThresh = (pairs[k].v + pairs[k+1].v) / 2
			}
		}
	}
	return bestFeat, bestThresh, bestFeat >= 0
}

// giniSplit is the weighted Gini impurity of a candidate split.
func giniSplit(leftN, leftPos, rightN, rightPos int, total float64) float64 {
	gini := func(n, pos int) float64 {
		if n == 0 {
			return 0
		}
		p := float64(pos) / float64(n)
		return 2 * p * (1 - p)
	}
	return float64(leftN)/total*gini(leftN, leftPos) +
		float64(rightN)/total*gini(rightN, rightPos)
}
