package ml

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Model file layout (little endian):
//
//	magic "JSTFMDL2" |
//	fingerprint: u32 ngramDims, u32 ngramLen, u8 ruleFeatures |
//	kind byte (1 chain, 2 independent) |
//	u32 numLabels | per label: u32 len + bytes |
//	u32 numForests | per forest: u32 numTrees |
//	per tree: u32 numNodes | per node: i32 feature, f64 threshold,
//	i32 left, i32 right, f64 prob
//
// v1 files ("JSTFMDL1") lack the fingerprint block and are still readable;
// ReadModel reports a nil Fingerprint for them.
const (
	modelMagicV1 = "JSTFMDL1"
	modelMagicV2 = "JSTFMDL2"
)

const (
	kindChain       = 1
	kindIndependent = 2
)

// fingerprintSize is the serialized size of the v2 fingerprint block.
const fingerprintSize = 4 + 4 + 1

// Fingerprint pins the feature-extraction configuration a model was trained
// with. Feature vectors are positional, so loading a model against a
// different configuration silently misclassifies; embedding the fingerprint
// lets the loader fail loudly instead.
type Fingerprint struct {
	// NGramDims is the hashed n-gram bucket count.
	NGramDims uint32
	// NGramLen is the n-gram window length.
	NGramLen uint32
	// RuleFeatures records whether per-rule diagnostic dimensions were
	// appended to the vector.
	RuleFeatures bool
}

// WriteModel serializes a trained multi-task model in the v2 format,
// embedding the feature fingerprint.
func WriteModel(w io.Writer, m MultiTask, fp Fingerprint) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(modelMagicV2); err != nil {
		return err
	}
	if err := writeU32(bw, fp.NGramDims); err != nil {
		return err
	}
	if err := writeU32(bw, fp.NGramLen); err != nil {
		return err
	}
	rf := byte(0)
	if fp.RuleFeatures {
		rf = 1
	}
	if err := bw.WriteByte(rf); err != nil {
		return err
	}
	if err := writeModelBody(bw, m); err != nil {
		return err
	}
	return bw.Flush()
}

// writeModelBody serializes everything after the magic and fingerprint. The
// body layout is shared between v1 and v2 (v1 back-compat tests reuse it).
func writeModelBody(bw *bufio.Writer, m MultiTask) error {
	var kind byte
	var forests []*Forest
	switch v := m.(type) {
	case *Chain:
		kind = kindChain
		forests = v.Forests
	case *Independent:
		kind = kindIndependent
		forests = v.Forests
	default:
		return fmt.Errorf("ml: cannot serialize %T", m)
	}
	if err := bw.WriteByte(kind); err != nil {
		return err
	}
	labels := m.Labels()
	if err := writeU32(bw, uint32(len(labels))); err != nil {
		return err
	}
	for _, l := range labels {
		if err := writeU32(bw, uint32(len(l))); err != nil {
			return err
		}
		if _, err := bw.WriteString(l); err != nil {
			return err
		}
	}
	if err := writeU32(bw, uint32(len(forests))); err != nil {
		return err
	}
	for _, f := range forests {
		if err := writeU32(bw, uint32(len(f.Trees))); err != nil {
			return err
		}
		for _, t := range f.Trees {
			if err := writeU32(bw, uint32(len(t.Nodes))); err != nil {
				return err
			}
			for _, n := range t.Nodes {
				if err := writeNode(bw, n); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ReadModel deserializes a model written by WriteModel. For v2 files the
// embedded Fingerprint is returned; for legacy v1 files it is nil and the
// caller cannot verify the feature configuration.
func ReadModel(r io.Reader) (MultiTask, *Fingerprint, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(modelMagicV2))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, nil, fmt.Errorf("ml: read magic: %w", err)
	}
	var fp *Fingerprint
	switch string(magic) {
	case modelMagicV1:
	case modelMagicV2:
		var buf [fingerprintSize]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, nil, fmt.Errorf("ml: read fingerprint: %w", err)
		}
		fp = &Fingerprint{
			NGramDims:    binary.LittleEndian.Uint32(buf[0:]),
			NGramLen:     binary.LittleEndian.Uint32(buf[4:]),
			RuleFeatures: buf[8] != 0,
		}
	default:
		return nil, nil, fmt.Errorf("ml: bad model magic %q", magic)
	}
	m, err := readModelBody(br)
	if err != nil {
		return nil, nil, err
	}
	return m, fp, nil
}

// readModelBody deserializes everything after the magic and fingerprint.
func readModelBody(br *bufio.Reader) (MultiTask, error) {
	kind, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	numLabels, err := readU32(br)
	if err != nil {
		return nil, err
	}
	const maxLabels = 1 << 10
	if numLabels > maxLabels {
		return nil, fmt.Errorf("ml: implausible label count %d", numLabels)
	}
	labels := make([]string, numLabels)
	for i := range labels {
		n, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if n > 1<<12 {
			return nil, fmt.Errorf("ml: implausible label length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		labels[i] = string(buf)
	}
	numForests, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if numForests > maxLabels {
		return nil, fmt.Errorf("ml: implausible forest count %d", numForests)
	}
	forests := make([]*Forest, numForests)
	for i := range forests {
		numTrees, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if numTrees > 1<<16 {
			return nil, fmt.Errorf("ml: implausible tree count %d", numTrees)
		}
		f := &Forest{Trees: make([]*Tree, numTrees)}
		for j := range f.Trees {
			numNodes, err := readU32(br)
			if err != nil {
				return nil, err
			}
			if numNodes > 1<<26 {
				return nil, fmt.Errorf("ml: implausible node count %d", numNodes)
			}
			t := &Tree{Nodes: make([]TreeNode, numNodes)}
			for k := range t.Nodes {
				n, err := readNode(br)
				if err != nil {
					return nil, err
				}
				t.Nodes[k] = n
			}
			f.Trees[j] = t
		}
		forests[i] = f
	}
	switch kind {
	case kindChain:
		return &Chain{Names: labels, Forests: forests}, nil
	case kindIndependent:
		return &Independent{Names: labels, Forests: forests}, nil
	default:
		return nil, fmt.Errorf("ml: unknown model kind %d", kind)
	}
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func writeNode(w io.Writer, n TreeNode) error {
	var buf [28]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(n.Feature))
	binary.LittleEndian.PutUint64(buf[4:], math.Float64bits(n.Threshold))
	binary.LittleEndian.PutUint32(buf[12:], uint32(n.Left))
	binary.LittleEndian.PutUint32(buf[16:], uint32(n.Right))
	binary.LittleEndian.PutUint64(buf[20:], math.Float64bits(n.Prob))
	_, err := w.Write(buf[:])
	return err
}

func readNode(r io.Reader) (TreeNode, error) {
	var buf [28]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return TreeNode{}, err
	}
	return TreeNode{
		Feature:   int32(binary.LittleEndian.Uint32(buf[0:])),
		Threshold: math.Float64frombits(binary.LittleEndian.Uint64(buf[4:])),
		Left:      int32(binary.LittleEndian.Uint32(buf[12:])),
		Right:     int32(binary.LittleEndian.Uint32(buf[16:])),
		Prob:      math.Float64frombits(binary.LittleEndian.Uint64(buf[20:])),
	}, nil
}
