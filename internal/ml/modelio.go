package ml

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Model file layout (little endian):
//
//	magic "JSTFMDL1" | kind byte (1 chain, 2 independent) |
//	u32 numLabels | per label: u32 len + bytes |
//	u32 numForests | per forest: u32 numTrees |
//	per tree: u32 numNodes | per node: i32 feature, f64 threshold,
//	i32 left, i32 right, f64 prob
const modelMagic = "JSTFMDL1"

const (
	kindChain       = 1
	kindIndependent = 2
)

// WriteModel serializes a trained multi-task model.
func WriteModel(w io.Writer, m MultiTask) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(modelMagic); err != nil {
		return err
	}
	var kind byte
	var forests []*Forest
	switch v := m.(type) {
	case *Chain:
		kind = kindChain
		forests = v.Forests
	case *Independent:
		kind = kindIndependent
		forests = v.Forests
	default:
		return fmt.Errorf("ml: cannot serialize %T", m)
	}
	if err := bw.WriteByte(kind); err != nil {
		return err
	}
	labels := m.Labels()
	if err := writeU32(bw, uint32(len(labels))); err != nil {
		return err
	}
	for _, l := range labels {
		if err := writeU32(bw, uint32(len(l))); err != nil {
			return err
		}
		if _, err := bw.WriteString(l); err != nil {
			return err
		}
	}
	if err := writeU32(bw, uint32(len(forests))); err != nil {
		return err
	}
	for _, f := range forests {
		if err := writeU32(bw, uint32(len(f.Trees))); err != nil {
			return err
		}
		for _, t := range f.Trees {
			if err := writeU32(bw, uint32(len(t.Nodes))); err != nil {
				return err
			}
			for _, n := range t.Nodes {
				if err := writeNode(bw, n); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadModel deserializes a model written by WriteModel.
func ReadModel(r io.Reader) (MultiTask, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("ml: read magic: %w", err)
	}
	if string(magic) != modelMagic {
		return nil, fmt.Errorf("ml: bad model magic %q", magic)
	}
	kind, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	numLabels, err := readU32(br)
	if err != nil {
		return nil, err
	}
	const maxLabels = 1 << 10
	if numLabels > maxLabels {
		return nil, fmt.Errorf("ml: implausible label count %d", numLabels)
	}
	labels := make([]string, numLabels)
	for i := range labels {
		n, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if n > 1<<12 {
			return nil, fmt.Errorf("ml: implausible label length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		labels[i] = string(buf)
	}
	numForests, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if numForests > maxLabels {
		return nil, fmt.Errorf("ml: implausible forest count %d", numForests)
	}
	forests := make([]*Forest, numForests)
	for i := range forests {
		numTrees, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if numTrees > 1<<16 {
			return nil, fmt.Errorf("ml: implausible tree count %d", numTrees)
		}
		f := &Forest{Trees: make([]*Tree, numTrees)}
		for j := range f.Trees {
			numNodes, err := readU32(br)
			if err != nil {
				return nil, err
			}
			if numNodes > 1<<26 {
				return nil, fmt.Errorf("ml: implausible node count %d", numNodes)
			}
			t := &Tree{Nodes: make([]TreeNode, numNodes)}
			for k := range t.Nodes {
				n, err := readNode(br)
				if err != nil {
					return nil, err
				}
				t.Nodes[k] = n
			}
			f.Trees[j] = t
		}
		forests[i] = f
	}
	switch kind {
	case kindChain:
		return &Chain{Names: labels, Forests: forests}, nil
	case kindIndependent:
		return &Independent{Names: labels, Forests: forests}, nil
	default:
		return nil, fmt.Errorf("ml: unknown model kind %d", kind)
	}
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func writeNode(w io.Writer, n TreeNode) error {
	var buf [28]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(n.Feature))
	binary.LittleEndian.PutUint64(buf[4:], math.Float64bits(n.Threshold))
	binary.LittleEndian.PutUint32(buf[12:], uint32(n.Left))
	binary.LittleEndian.PutUint32(buf[16:], uint32(n.Right))
	binary.LittleEndian.PutUint64(buf[20:], math.Float64bits(n.Prob))
	_, err := w.Write(buf[:])
	return err
}

func readNode(r io.Reader) (TreeNode, error) {
	var buf [28]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return TreeNode{}, err
	}
	return TreeNode{
		Feature:   int32(binary.LittleEndian.Uint32(buf[0:])),
		Threshold: math.Float64frombits(binary.LittleEndian.Uint64(buf[4:])),
		Left:      int32(binary.LittleEndian.Uint32(buf[12:])),
		Right:     int32(binary.LittleEndian.Uint32(buf[16:])),
		Prob:      math.Float64frombits(binary.LittleEndian.Uint64(buf[20:])),
	}, nil
}
