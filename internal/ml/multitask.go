package ml

import (
	"fmt"
	"math/rand"

	"repro/internal/obs"
)

// MultiTask is a multi-label classifier over a fixed label set (the paper's
// "multi-task system", Section III-C): per input it produces one probability
// per label.
type MultiTask interface {
	// Labels returns the class names in prediction order.
	Labels() []string
	// PredictProbs returns one probability per label for x.
	PredictProbs(x []float64) []float64
}

// Chain is the classifier-chain arrangement [38], [41]: the binary
// classifier at position P receives the predictions of classifiers 0..P-1
// as additional features. The paper's validation selected this arrangement
// over the independence assumption for both detectors.
type Chain struct {
	Names   []string
	Forests []*Forest
}

// Labels implements MultiTask.
func (c *Chain) Labels() []string { return c.Names }

// PredictProbs implements MultiTask.
func (c *Chain) PredictProbs(x []float64) []float64 {
	defer obs.Time("ml.predict")()
	obs.Add("ml.predictions", 1)
	probs := make([]float64, len(c.Forests))
	ext := make([]float64, len(x), len(x)+len(c.Forests))
	copy(ext, x)
	for i, f := range c.Forests {
		probs[i] = f.Predict(ext)
		ext = append(ext, probs[i])
	}
	return probs
}

// TrainChain fits a classifier chain. y[i][j] says whether sample i carries
// label j.
func TrainChain(x [][]float64, y [][]bool, labels []string, opts ForestOptions, rng *rand.Rand) (*Chain, error) {
	if err := validate(x, y, labels); err != nil {
		return nil, err
	}
	c := &Chain{Names: append([]string(nil), labels...)}
	// ext accumulates the chained prediction features per sample.
	ext := make([][]float64, len(x))
	for i := range x {
		ext[i] = make([]float64, len(x[i]), len(x[i])+len(labels))
		copy(ext[i], x[i])
	}
	for j := range labels {
		yj := make([]bool, len(y))
		for i := range y {
			yj[i] = y[i][j]
		}
		f := TrainForest(ext, yj, opts, rng)
		c.Forests = append(c.Forests, f)
		// Append this classifier's (in-sample) predictions as a feature for
		// the next link, as in scikit-learn's ClassifierChain.
		for i := range ext {
			ext[i] = append(ext[i], f.Predict(ext[i]))
		}
	}
	return c, nil
}

// Independent is the binary-relevance arrangement [43]: one forest per
// label, no coupling.
type Independent struct {
	Names   []string
	Forests []*Forest
}

// Labels implements MultiTask.
func (m *Independent) Labels() []string { return m.Names }

// PredictProbs implements MultiTask.
func (m *Independent) PredictProbs(x []float64) []float64 {
	defer obs.Time("ml.predict")()
	obs.Add("ml.predictions", 1)
	probs := make([]float64, len(m.Forests))
	for i, f := range m.Forests {
		probs[i] = f.Predict(x)
	}
	return probs
}

// TrainIndependent fits one forest per label.
func TrainIndependent(x [][]float64, y [][]bool, labels []string, opts ForestOptions, rng *rand.Rand) (*Independent, error) {
	if err := validate(x, y, labels); err != nil {
		return nil, err
	}
	m := &Independent{Names: append([]string(nil), labels...)}
	for j := range labels {
		yj := make([]bool, len(y))
		for i := range y {
			yj[i] = y[i][j]
		}
		m.Forests = append(m.Forests, TrainForest(x, yj, opts, rng))
	}
	return m, nil
}

func validate(x [][]float64, y [][]bool, labels []string) error {
	if len(x) != len(y) {
		return fmt.Errorf("ml: %d samples but %d label rows", len(x), len(y))
	}
	if len(x) == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	if len(labels) == 0 {
		return fmt.Errorf("ml: no labels")
	}
	for i := range y {
		if len(y[i]) != len(labels) {
			return fmt.Errorf("ml: label row %d has %d entries, want %d", i, len(y[i]), len(labels))
		}
	}
	dim := len(x[0])
	for i := range x {
		if len(x[i]) != dim {
			return fmt.Errorf("ml: sample %d has dim %d, want %d", i, len(x[i]), dim)
		}
	}
	return nil
}
