package core

import (
	"fmt"
	"math/rand"

	"repro/internal/corpus"
	"repro/internal/transform"
)

// TrainConfig sizes the end-to-end training pipeline of Section III-D,
// scaled down from the paper's 21,000 base scripts to laptop sizes. All
// counts refer to base scripts; transformed pools derive from them.
type TrainConfig struct {
	// NumRegular is the number of base regular scripts (the paper's
	// 21,000). Zero means 240.
	NumRegular int
	// TrainFraction of base scripts feeds training; the rest is held out
	// for testing (kept disjoint at base-script level). Zero means 0.6.
	TrainFraction float64
	// Level1PerClass is the number of samples per level 1 class (the
	// paper's 8,000). Zero derives it from the training pool size.
	Level1PerClass int
	// Level2PerTechnique is the number of samples per technique for
	// level 2 (the paper's 2,000). Zero derives it from the pool.
	Level2PerTechnique int
	// Options configures features and forests for both detectors.
	Options Options
}

func (c TrainConfig) numRegular() int {
	if c.NumRegular <= 0 {
		return 240
	}
	return c.NumRegular
}

func (c TrainConfig) trainFraction() float64 {
	if c.TrainFraction <= 0 || c.TrainFraction >= 1 {
		return 0.6
	}
	return c.TrainFraction
}

// Trained bundles both detectors with the held-out material every
// experiment reuses.
type Trained struct {
	Level1 *Detector
	Level2 *Detector

	// TestRegular holds held-out regular files.
	TestRegular []corpus.File
	// TestPool holds held-out single-technique transformed files.
	TestPool map[transform.Technique][]corpus.File
	// TestBases holds the held-out base files (for building mixed and
	// packer test sets on unseen scripts).
	TestBases []corpus.File

	// Config echoes the effective configuration.
	Config TrainConfig
}

// Train generates the corpus, builds the paper's training sets, and fits
// both detectors (Sections III-D1 through III-D2).
func Train(cfg TrainConfig) (*Trained, error) {
	rng := rand.New(rand.NewSource(cfg.Options.Seed + 1))

	// Section III-D1: regular file collection with corpus filters applied.
	regular := corpus.RegularSet(cfg.numRegular(), rng)

	// Split base scripts into train/test before transforming, so held-out
	// evaluations never see a variant of a training script.
	cut := int(float64(len(regular)) * cfg.trainFraction())
	if cut < 1 || cut >= len(regular) {
		return nil, fmt.Errorf("core: training split %d/%d is degenerate", cut, len(regular))
	}
	trainBases, testBases := regular[:cut], regular[cut:]

	// Section III-D2: transform every base once per technique.
	trainPool, err := corpus.TransformPool(trainBases, rng)
	if err != nil {
		return nil, fmt.Errorf("core: build training pool: %w", err)
	}
	testPool, err := corpus.TransformPool(testBases, rng)
	if err != nil {
		return nil, fmt.Errorf("core: build test pool: %w", err)
	}

	// Level 1 training set: equal thirds regular / minified / obfuscated;
	// minified drawn equally from the 2 minification techniques, obfuscated
	// equally from the 8 obfuscation techniques.
	perClass := cfg.Level1PerClass
	if perClass <= 0 || perClass > len(trainBases) {
		perClass = len(trainBases)
	}
	var l1Files []corpus.File
	l1Files = append(l1Files, trainBases[:perClass]...)
	l1Files = append(l1Files, drawPool(trainPool, transform.MinifySimple, perClass/2, rng)...)
	l1Files = append(l1Files, drawPool(trainPool, transform.MinifyAdvanced, perClass-perClass/2, rng)...)
	obfTechs := obfuscationTechniques()
	for i, t := range obfTechs {
		share := perClass / len(obfTechs)
		if i < perClass%len(obfTechs) {
			share++
		}
		l1Files = append(l1Files, drawPool(trainPool, t, share, rng)...)
	}

	l1, err := TrainLevel1(l1Files, cfg.Options)
	if err != nil {
		return nil, fmt.Errorf("core: train level 1: %w", err)
	}

	// Level 2 training set: a fixed number of samples per technique.
	perTech := cfg.Level2PerTechnique
	if perTech <= 0 || perTech > len(trainBases) {
		perTech = len(trainBases)
	}
	var l2Files []corpus.File
	for _, t := range transform.Techniques {
		l2Files = append(l2Files, drawPool(trainPool, t, perTech, rng)...)
	}
	l2, err := TrainLevel2(l2Files, cfg.Options)
	if err != nil {
		return nil, fmt.Errorf("core: train level 2: %w", err)
	}

	return &Trained{
		Level1:      l1,
		Level2:      l2,
		TestRegular: testBases,
		TestPool:    testPool,
		TestBases:   testBases,
		Config:      cfg,
	}, nil
}

// drawPool samples n files (without replacement) from one technique pool.
// It always returns a fresh slice: returning the pool's backing array would
// alias corpus state into the training sets, so a later append or shuffle on
// one would corrupt the other.
func drawPool(pool map[transform.Technique][]corpus.File, t transform.Technique, n int, rng *rand.Rand) []corpus.File {
	files := pool[t]
	if n >= len(files) {
		return append([]corpus.File(nil), files...)
	}
	perm := rng.Perm(len(files))
	out := make([]corpus.File, 0, n)
	for _, i := range perm[:n] {
		out = append(out, files[i])
	}
	return out
}

func obfuscationTechniques() []transform.Technique {
	var out []transform.Technique
	for _, t := range transform.Techniques {
		if !t.IsMinification() {
			out = append(out, t)
		}
	}
	return out
}

// MixedTestSet builds the multi-technique test files of Section III-E2 on
// held-out bases: each file combines 1-7 techniques.
func (tr *Trained) MixedTestSet(n int, rng *rand.Rand) ([]corpus.File, error) {
	if len(tr.TestBases) == 0 {
		return nil, fmt.Errorf("core: no held-out bases")
	}
	files := make([]corpus.File, 0, n)
	for i := 0; i < n; i++ {
		base := tr.TestBases[rng.Intn(len(tr.TestBases))]
		size := 1 + rng.Intn(7)
		combo := corpus.RandomCombo(rng, size)
		tf, err := corpus.Apply(base, rng, combo...)
		if err != nil {
			return nil, err
		}
		tf.Name = fmt.Sprintf("mixed_%05d.js", i)
		files = append(files, tf)
	}
	return files, nil
}

// PackerTestSet builds the held-out-tool test files of Section III-E3: base
// scripts packed with the Dean Edwards-style packer, which never appears in
// training.
func (tr *Trained) PackerTestSet(n int, rng *rand.Rand) ([]corpus.File, error) {
	if len(tr.TestBases) == 0 {
		return nil, fmt.Errorf("core: no held-out bases")
	}
	files := make([]corpus.File, 0, n)
	for i := 0; i < n; i++ {
		base := tr.TestBases[rng.Intn(len(tr.TestBases))]
		tf, err := corpus.Apply(base, rng, transform.Packer)
		if err != nil {
			return nil, err
		}
		tf.Name = fmt.Sprintf("packed_%05d.js", i)
		files = append(files, tf)
	}
	return files, nil
}
