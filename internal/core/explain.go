package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/js/parser"
)

// Explanation pairs a detector's class probabilities with the static
// indicator diagnostics that support (or contradict) them, so a verdict can
// be traced back to concrete source spans.
type Explanation struct {
	// Labels and Probs are the detector's classes and probabilities, in
	// chain order.
	Labels []string  `json:"labels"`
	Probs  []float64 `json:"probs"`
	// Diagnostics are the static indicator findings, sorted by position.
	Diagnostics []analysis.Diagnostic `json:"diagnostics"`
}

// Support returns the diagnostics attributing the given technique label.
func (e *Explanation) Support(label string) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range e.Diagnostics {
		if d.Technique == label {
			out = append(out, d)
		}
	}
	return out
}

// SupportedLabels returns the set of technique labels that at least one
// diagnostic attributes.
func (e *Explanation) SupportedLabels() map[string]bool {
	out := make(map[string]bool)
	for _, d := range e.Diagnostics {
		if d.Technique != "" {
			out[d.Technique] = true
		}
	}
	return out
}

// Explain classifies src and runs the static indicator rules, sharing one
// parse and one flow graph between the classifier features and the rules.
func (d *Detector) Explain(src string) (*Explanation, error) {
	res, err := parser.ParseNoTokens(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	g := d.extractor.Flow(res)
	diags := analysis.AnalyzeParsed(src, res, g)
	vec := d.extractor.ExtractFull(src, res, g, diags)
	return &Explanation{
		Labels:      d.Labels(),
		Probs:       d.model.PredictProbs(vec),
		Diagnostics: diags,
	}, nil
}
