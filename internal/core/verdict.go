package core

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/transform"
)

// The verdict codec serializes one FileResult (minus its Path, which belongs
// to the input, not the content) for the on-disk verdict store. The store
// itself is value-agnostic (internal/store holds opaque bytes); this file owns
// the meaning of those bytes.
//
// The format is versioned JSON. JSON keeps the stored value debuggable with
// standard tools, and encoding/json renders float64 with the shortest
// round-tripping representation, so probabilities survive a store round trip
// bit-for-bit — a warm scan replays exactly the verdict the cold scan
// computed, which the service's restart test pins end to end.

// verdictVersion guards the stored-verdict layout. A decoder finding any
// other version treats the value as a miss and rescans; it never guesses.
const verdictVersion = 1

// storedPrediction is one level 2 ranking entry, with the technique persisted
// by name so the stored form survives enum reordering.
type storedPrediction struct {
	Technique   string  `json:"technique"`
	Probability float64 `json:"probability"`
}

// storedVerdict is the wire form of a FileResult.
type storedVerdict struct {
	V           int                   `json:"v"`
	Bytes       int                   `json:"bytes"`
	Level1      [3]float64            `json:"level1"` // regular, minified, obfuscated
	Level2      []storedPrediction    `json:"level2,omitempty"`
	Diagnostics []analysis.Diagnostic `json:"diagnostics,omitempty"`
	Err         string                `json:"err,omitempty"`
	Bypassed    bool                  `json:"bypassed,omitempty"`
}

// encodeVerdict serializes r for the verdict store. Path, Deduped and
// FromStore are deliberately not stored: the first is per-input, the other
// two describe how this process obtained the verdict, not the verdict.
func encodeVerdict(r FileResult) ([]byte, error) {
	sv := storedVerdict{
		V:           verdictVersion,
		Bytes:       r.Bytes,
		Level1:      [3]float64{r.Level1.Regular, r.Level1.Minified, r.Level1.Obfuscated},
		Diagnostics: r.Diagnostics,
		Bypassed:    r.Bypassed,
	}
	if r.Err != nil {
		sv.Err = r.Err.Error()
	}
	if r.Level2 != nil {
		sv.Level2 = make([]storedPrediction, len(r.Level2.Ranked))
		for i, p := range r.Level2.Ranked {
			sv.Level2[i] = storedPrediction{Technique: p.Technique.String(), Probability: p.Probability}
		}
	}
	return json.Marshal(sv)
}

// decodeVerdict deserializes a stored verdict. Any malformed input — bad
// JSON, wrong version, unknown technique name — is an error; the caller
// treats it as a store miss and rescans.
func decodeVerdict(data []byte) (FileResult, error) {
	var sv storedVerdict
	if err := json.Unmarshal(data, &sv); err != nil {
		return FileResult{}, fmt.Errorf("core: stored verdict: %w", err)
	}
	if sv.V != verdictVersion {
		return FileResult{}, fmt.Errorf("core: stored verdict version %d, want %d", sv.V, verdictVersion)
	}
	out := FileResult{
		Bytes:       sv.Bytes,
		Level1:      Level1Result{Regular: sv.Level1[0], Minified: sv.Level1[1], Obfuscated: sv.Level1[2]},
		Diagnostics: sv.Diagnostics,
		Bypassed:    sv.Bypassed,
	}
	if sv.Err != "" {
		out.Err = errors.New(sv.Err)
	}
	if sv.Level2 != nil {
		res := Level2Result{Ranked: make([]TechniquePrediction, len(sv.Level2))}
		for i, p := range sv.Level2 {
			tech, err := transform.ParseTechnique(p.Technique)
			if err != nil {
				return FileResult{}, fmt.Errorf("core: stored verdict: %w", err)
			}
			res.Ranked[i] = TechniquePrediction{Technique: tech, Probability: p.Probability}
		}
		out.Level2 = &res
	}
	return out, nil
}
