package core

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/features"
	"repro/internal/js/parser"
	"repro/internal/obs"
)

// dupInputs builds a batch of n inputs over k distinct contents: every
// distinct content appears under several different paths, like a vendored
// library checked into many directories.
func dupInputs(n, k int) []Input {
	inputs := make([]Input, n)
	for i := range inputs {
		c := i % k
		inputs[i] = Input{
			Path:   fmt.Sprintf("copy_%02d/lib_%02d.js", i, c),
			Source: fmt.Sprintf("var shared%d = %d; function dup%d(x) { return x * shared%d; } dup%d(2);", c, c, c, c, c),
		}
	}
	return inputs
}

// TestDedupHitSkipsPipeline is the cache's core contract: a batch with
// repeated contents parses each distinct content once and replays the verdict
// for every repeat, stamped with the repeat's own path.
func TestDedupHitSkipsPipeline(t *testing.T) {
	swapOutObs(t)
	s := tinyScanner(t, ScanOptions{Workers: 1, Dedup: true, Explain: true}, features.Options{NGramDims: 256})
	inputs := dupInputs(12, 3)
	before := parser.Parses()
	results, stats := s.ScanBatch(inputs)
	if delta := parser.Parses() - before; delta != 3 {
		t.Fatalf("scan of 12 files over 3 contents used %d parses, want 3", delta)
	}
	if stats.Deduped != 9 {
		t.Fatalf("stats.Deduped = %d, want 9", stats.Deduped)
	}
	if stats.Files != 12 || stats.Transformed != 12 {
		t.Fatalf("dedup hits must still count in stats: %+v", stats)
	}
	for i, r := range results {
		if r.Path != inputs[i].Path {
			t.Errorf("result %d has path %q, want %q", i, r.Path, inputs[i].Path)
		}
		if want := i >= 3; r.Deduped != want {
			t.Errorf("result %d Deduped = %v, want %v", i, r.Deduped, want)
		}
		first := results[i%3]
		if r.Level1 != first.Level1 {
			t.Errorf("result %d level 1 verdict diverges from its original", i)
		}
		if len(r.Diagnostics) != len(first.Diagnostics) {
			t.Errorf("result %d diagnostics diverge from its original", i)
		}
	}
}

// TestDedupCarriesAcrossBatches checks the cache lives on the Scanner, not
// the call: a second batch over known contents does zero parsing.
func TestDedupCarriesAcrossBatches(t *testing.T) {
	swapOutObs(t)
	s := tinyScanner(t, ScanOptions{Workers: 4, Dedup: true}, features.Options{NGramDims: 256})
	inputs := dupInputs(8, 8)
	s.ScanBatch(inputs)
	before := parser.Parses()
	results, stats := s.ScanBatch(inputs)
	if delta := parser.Parses() - before; delta != 0 {
		t.Fatalf("second batch re-parsed %d files", delta)
	}
	if stats.Deduped != len(inputs) {
		t.Fatalf("stats.Deduped = %d, want %d", stats.Deduped, len(inputs))
	}
	for i, r := range results {
		if !r.Deduped {
			t.Errorf("result %d not served from cache", i)
		}
	}
}

// TestDedupParseFailuresCached: identical broken bytes fail identically, so
// the error verdict replays without re-parsing and still counts as a failure.
func TestDedupParseFailuresCached(t *testing.T) {
	swapOutObs(t)
	s := tinyScanner(t, ScanOptions{Workers: 1, Dedup: true}, features.Options{NGramDims: 256})
	inputs := []Input{
		{Path: "a/broken.js", Source: "function ( {{{"},
		{Path: "b/broken.js", Source: "function ( {{{"},
	}
	before := parser.Parses()
	results, stats := s.ScanBatch(inputs)
	if delta := parser.Parses() - before; delta != 1 {
		t.Fatalf("broken duplicate re-parsed: %d parses", delta)
	}
	if stats.ParseFailures != 2 || stats.Deduped != 1 {
		t.Fatalf("stats = %+v, want 2 failures with 1 dedup", stats)
	}
	if results[1].Err == nil || !results[1].Deduped {
		t.Fatalf("cached failure lost its error: %+v", results[1])
	}
}

// TestDedupEvictionBound fills the cache past capacity and checks both the
// bound and the LRU order: the least recently used content is the one that
// must be re-scanned.
func TestDedupEvictionBound(t *testing.T) {
	swapOutObs(t)
	s := tinyScanner(t, ScanOptions{Workers: 1, Dedup: true, DedupCapacity: 2}, features.Options{NGramDims: 256})
	a := Input{Path: "a.js", Source: "var a = 1;"}
	b := Input{Path: "b.js", Source: "var b = 2;"}
	c := Input{Path: "c.js", Source: "var c = 3;"}

	s.ScanBatch([]Input{a, b})
	// Touch a so b becomes least recently used, then add c to evict b.
	s.ScanBatch([]Input{a, c})
	if got := s.cache.len(); got != 2 {
		t.Fatalf("cache holds %d entries, capacity 2", got)
	}

	// a is still cached; b was evicted, and re-inserting it evicts c (the
	// LRU after a's hit) before the batch reaches c, so both re-parse.
	before := parser.Parses()
	_, stats := s.ScanBatch([]Input{a, b, c})
	if delta := parser.Parses() - before; delta != 2 {
		t.Fatalf("%d parses after eviction, want 2 (evicted b, then displaced c)", delta)
	}
	if stats.Deduped != 1 {
		t.Fatalf("stats.Deduped = %d, want 1 (only a stayed cached)", stats.Deduped)
	}
	if got := s.cache.len(); got != 2 {
		t.Fatalf("cache grew past capacity: %d entries", got)
	}
}

// TestDedupObsCounters checks the cache surfaces through the observability
// registry under its documented metric names.
func TestDedupObsCounters(t *testing.T) {
	swapOutObs(t)
	reg := obs.Enable()
	defer obs.Disable()
	s := tinyScanner(t, ScanOptions{Workers: 1, Dedup: true, DedupCapacity: 2}, features.Options{NGramDims: 256})
	// A miss, B miss, A hit (B becomes LRU), C miss evicting B.
	_, _ = s.ScanBatch([]Input{
		{Path: "1.js", Source: "var a = 1;"},
		{Path: "2.js", Source: "var b = 2;"},
		{Path: "3.js", Source: "var a = 1;"},
		{Path: "4.js", Source: "var c = 3;"},
	})
	if got := reg.Counter("scan.cache.miss").Value(); got != 3 {
		t.Errorf("scan.cache.miss = %d, want 3", got)
	}
	if got := reg.Counter("scan.cache.hit").Value(); got != 1 {
		t.Errorf("scan.cache.hit = %d, want 1", got)
	}
	if got := reg.Counter("scan.cache.evict").Value(); got != 1 {
		t.Errorf("scan.cache.evict = %d, want 1", got)
	}
}

// TestDedupCancellationWarmCache cancels a streaming scan that is being fed
// from a warm cache and verifies the contract still holds: the emitted
// results are a contiguous input-ordered prefix and the worker pool drains
// (no goroutine leak).
func TestDedupCancellationWarmCache(t *testing.T) {
	swapOutObs(t)
	s := tinyScanner(t, ScanOptions{Workers: 4, Dedup: true}, features.Options{NGramDims: 256})
	inputs := dupInputs(40, 5)
	s.ScanBatch(inputs) // warm every content

	// Splice in one large, uncached file: the warm results before it flow
	// from the cache in microseconds while this one is still being scanned,
	// so the emission loop reliably finds an unready slot after cancel.
	var big strings.Builder
	for i := 0; i < 20000; i++ {
		fmt.Fprintf(&big, "var v%d = %d; v%d += v%d * 2;\n", i, i, i, i)
	}
	inputs[20] = Input{Path: "big.js", Source: big.String()}

	goroutinesBefore := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var emitted []int
	_, err := s.ScanStreamContext(ctx, inputs, func(i int, r FileResult) {
		emitted = append(emitted, i)
		if !r.Deduped {
			t.Errorf("result %d not served from the warm cache", i)
		}
		if len(emitted) == 7 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(emitted) < 7 || len(emitted) >= len(inputs) {
		t.Fatalf("%d results emitted, want a partial prefix of at least 7", len(emitted))
	}
	for i, got := range emitted {
		if got != i {
			t.Fatalf("emitted prefix %v is not contiguous input order", emitted)
		}
	}
	// The pool must have drained by return time; give the runtime a moment
	// to retire finished goroutines before comparing.
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= goroutinesBefore {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines grew from %d to %d after cancelled scan", goroutinesBefore, runtime.NumGoroutine())
}

// TestDedupStats covers the admin-endpoint accessor: occupancy and capacity
// for a dedup scanner, ok=false without the cache.
func TestDedupStats(t *testing.T) {
	swapOutObs(t)
	s := tinyScanner(t, ScanOptions{Workers: 1, Dedup: true, DedupCapacity: 8}, features.Options{NGramDims: 256})
	if st, ok := s.DedupStats(); !ok || st.Entries != 0 || st.Capacity != 8 {
		t.Fatalf("fresh cache stats = %+v, %v", st, ok)
	}
	s.ScanBatch(dupInputs(6, 3))
	if st, ok := s.DedupStats(); !ok || st.Entries != 3 || st.Capacity != 8 {
		t.Fatalf("warm cache stats = %+v, %v, want 3 entries", st, ok)
	}
	plain := tinyScanner(t, ScanOptions{Workers: 1}, features.Options{NGramDims: 256})
	if _, ok := plain.DedupStats(); ok {
		t.Fatal("scanner without dedup must report ok=false")
	}
}

// TestDedupOffByDefault guards the opt-in: without ScanOptions.Dedup every
// repeat is scanned in full.
func TestDedupOffByDefault(t *testing.T) {
	swapOutObs(t)
	s := tinyScanner(t, ScanOptions{Workers: 1}, features.Options{NGramDims: 256})
	inputs := dupInputs(6, 2)
	before := parser.Parses()
	_, stats := s.ScanBatch(inputs)
	if delta := parser.Parses() - before; delta != int64(len(inputs)) {
		t.Fatalf("dedup-less scan used %d parses for %d files", delta, len(inputs))
	}
	if stats.Deduped != 0 {
		t.Fatalf("stats.Deduped = %d without Dedup enabled", stats.Deduped)
	}
}
