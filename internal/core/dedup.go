package core

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"repro/internal/obs"
)

// Batch scans of real-world corpora are duplicate-heavy: the same vendored
// library, CDN bundle, or template fragment appears under many paths (the
// paper's wild set of 424k scripts deduplicates to a fraction of that). The
// classification verdict is a pure function of the source bytes, so a
// content-hash cache lets a Scanner pay the parse/flow/rules/features/infer
// cost once per distinct content and replay the verdict for every repeat.

// DefaultDedupCapacity is the number of distinct file contents a dedup-enabled
// Scanner retains when ScanOptions.DedupCapacity is unset. At roughly one
// cached FileResult per entry the bound keeps worst-case cache memory in the
// low tens of megabytes even with Explain diagnostics attached.
const DefaultDedupCapacity = 4096

// dedupKey is the SHA-256 of a file's source text.
type dedupKey [sha256.Size]byte

// hashSource hashes src in fixed-size chunks so the string never needs to be
// materialized as one []byte copy.
func hashSource(src string) dedupKey {
	h := sha256.New()
	var buf [4096]byte
	for len(src) > 0 {
		n := copy(buf[:], src)
		h.Write(buf[:n])
		src = src[n:]
	}
	var k dedupKey
	h.Sum(k[:0])
	return k
}

// dedupCache is a bounded LRU of completed scan results keyed by content
// hash. It caches only finished results (concurrent scans of the same new
// content both miss and both compute; the last Put wins), which keeps the
// fast path a single short critical section with no per-key waiting.
type dedupCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *dedupEntry
	items map[dedupKey]*list.Element
}

type dedupEntry struct {
	key dedupKey
	res FileResult
}

func newDedupCache(capacity int) *dedupCache {
	if capacity <= 0 {
		capacity = DefaultDedupCapacity
	}
	return &dedupCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[dedupKey]*list.Element, capacity),
	}
}

// get returns the cached result for k, marking it most recently used.
func (c *dedupCache) get(k dedupKey) (FileResult, bool) {
	c.mu.Lock()
	el, ok := c.items[k]
	if !ok {
		c.mu.Unlock()
		obs.Add("scan.cache.miss", 1)
		return FileResult{}, false
	}
	c.order.MoveToFront(el)
	res := el.Value.(*dedupEntry).res
	c.mu.Unlock()
	obs.Add("scan.cache.hit", 1)
	return res, true
}

// put stores r under k, evicting the least recently used entry when the
// cache is full.
func (c *dedupCache) put(k dedupKey, r FileResult) {
	var evicted bool
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		el.Value.(*dedupEntry).res = r
		c.order.MoveToFront(el)
	} else {
		c.items[k] = c.order.PushFront(&dedupEntry{key: k, res: r})
		if c.order.Len() > c.cap {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.items, oldest.Value.(*dedupEntry).key)
			evicted = true
		}
	}
	c.mu.Unlock()
	if evicted {
		obs.Add("scan.cache.evict", 1)
	}
}

// len returns the current number of cached contents.
func (c *dedupCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// DedupStats is a point-in-time view of a Scanner's content-hash cache,
// surfaced on the scan service's admin endpoint.
type DedupStats struct {
	// Entries is the number of distinct contents currently cached.
	Entries int `json:"entries"`
	// Capacity is the LRU bound the cache evicts at.
	Capacity int `json:"capacity"`
}

// DedupStats reports the dedup cache's occupancy; ok is false when the
// Scanner runs without ScanOptions.Dedup.
func (s *Scanner) DedupStats() (stats DedupStats, ok bool) {
	if s.cache == nil {
		return DedupStats{}, false
	}
	return DedupStats{Entries: s.cache.len(), Capacity: s.cache.cap}, true
}
