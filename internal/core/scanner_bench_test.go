package core

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/transform"
)

// benchScanInputs builds a realistic batch: regular scripts plus one
// transformed variant each, so the scan sees both light and heavy parses.
func benchScanInputs(b *testing.B) []Input {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	bases := corpus.RegularSet(16, rng)
	inputs := make([]Input, 0, 2*len(bases))
	for i := range bases {
		inputs = append(inputs, Input{Path: bases[i].Name, Source: bases[i].Source})
		tf, err := corpus.Apply(bases[i], rng, transform.Techniques[i%len(transform.Techniques)])
		if err != nil {
			b.Fatal(err)
		}
		inputs = append(inputs, Input{Path: tf.Name, Source: tf.Source})
	}
	return inputs
}

func benchDetectors(b *testing.B, featOpts features.Options) (*Detector, *Detector) {
	b.Helper()
	l1 := tinyDetectorB(Level1Labels, []float64{0.1, 0.9, 0.2}, featOpts)
	probs := make([]float64, len(transform.Techniques))
	for i := range probs {
		probs[i] = 0.9 - 0.05*float64(i)
	}
	return l1, tinyDetectorB(Level2Labels(), probs, featOpts)
}

func tinyDetectorB(labels []string, probs []float64, featOpts features.Options) *Detector {
	return &Detector{extractor: features.NewExtractor(featOpts), model: leafChain(labels, probs)}
}

func totalBytes(inputs []Input) int64 {
	var n int64
	for _, in := range inputs {
		n += int64(len(in.Source))
	}
	return n
}

// BenchmarkScanBatch measures the parse-once batch engine with Explain on:
// one parse and one flow graph per file feed the features, both detectors,
// and the indicator rules.
func BenchmarkScanBatch(b *testing.B) {
	inputs := benchScanInputs(b)
	l1, l2 := benchDetectors(b, features.Options{NGramDims: 1024})
	s, err := NewScanner(l1, l2, ScanOptions{Explain: true})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(totalBytes(inputs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats := s.ScanBatch(inputs)
		if stats.ParseFailures != 0 {
			b.Fatalf("parse failures: %d", stats.ParseFailures)
		}
	}
}

// benchDupInputs replicates the standard bench batch four times under
// distinct paths: 75% of the inputs repeat earlier content, like a crawl that
// finds the same bundles on many pages.
func benchDupInputs(b *testing.B) []Input {
	base := benchScanInputs(b)
	inputs := make([]Input, 0, 4*len(base))
	for copyNum := 0; copyNum < 4; copyNum++ {
		for _, in := range base {
			inputs = append(inputs, Input{
				Path:   string(rune('a'+copyNum)) + "/" + in.Path,
				Source: in.Source,
			})
		}
	}
	return inputs
}

// BenchmarkScanBatchDupes scans the duplicate-heavy batch without the dedup
// cache: every repeat pays the full pipeline.
func BenchmarkScanBatchDupes(b *testing.B) {
	inputs := benchDupInputs(b)
	l1, l2 := benchDetectors(b, features.Options{NGramDims: 1024})
	s, err := NewScanner(l1, l2, ScanOptions{Explain: true})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(totalBytes(inputs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats := s.ScanBatch(inputs)
		if stats.ParseFailures != 0 {
			b.Fatalf("parse failures: %d", stats.ParseFailures)
		}
	}
}

// BenchmarkScanBatchDupesDedup is the same batch with the content-hash cache
// on. A fresh scanner per iteration keeps the cold misses inside the measured
// region, so the number reflects one real batch (miss once, hit thrice), not
// an eternally warm cache.
func BenchmarkScanBatchDupesDedup(b *testing.B) {
	inputs := benchDupInputs(b)
	l1, l2 := benchDetectors(b, features.Options{NGramDims: 1024})
	b.SetBytes(totalBytes(inputs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewScanner(l1, l2, ScanOptions{Explain: true, Dedup: true})
		if err != nil {
			b.Fatal(err)
		}
		_, stats := s.ScanBatch(inputs)
		if stats.ParseFailures != 0 {
			b.Fatalf("parse failures: %d", stats.ParseFailures)
		}
		if want := len(inputs) * 3 / 4; stats.Deduped < want {
			b.Fatalf("Deduped = %d, want >= %d", stats.Deduped, want)
		}
	}
}

// BenchmarkScanSerial3Parse is the pre-engine baseline the tentpole
// replaces: the old CLI classified each file with ClassifyLevel1 (parse 1),
// ClassifyLevel2 (parse 2), and analysis.Analyze under -explain (parse 3),
// strictly serially.
func BenchmarkScanSerial3Parse(b *testing.B) {
	inputs := benchScanInputs(b)
	l1, l2 := benchDetectors(b, features.Options{NGramDims: 1024})
	b.SetBytes(totalBytes(inputs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range inputs {
			res, err := l1.ClassifyLevel1(in.Source)
			if err != nil {
				b.Fatal(err)
			}
			if res.IsTransformed() {
				if _, err := l2.ClassifyLevel2(in.Source); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := analysis.Analyze(in.Source); err != nil {
				b.Fatal(err)
			}
		}
	}
}
