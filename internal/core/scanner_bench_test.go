package core

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/transform"
)

// benchScanInputs builds a realistic batch: regular scripts plus one
// transformed variant each, so the scan sees both light and heavy parses.
func benchScanInputs(b *testing.B) []Input {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	bases := corpus.RegularSet(16, rng)
	inputs := make([]Input, 0, 2*len(bases))
	for i := range bases {
		inputs = append(inputs, Input{Path: bases[i].Name, Source: bases[i].Source})
		tf, err := corpus.Apply(bases[i], rng, transform.Techniques[i%len(transform.Techniques)])
		if err != nil {
			b.Fatal(err)
		}
		inputs = append(inputs, Input{Path: tf.Name, Source: tf.Source})
	}
	return inputs
}

func benchDetectors(b *testing.B, featOpts features.Options) (*Detector, *Detector) {
	b.Helper()
	l1 := tinyDetectorB(Level1Labels, []float64{0.1, 0.9, 0.2}, featOpts)
	probs := make([]float64, len(transform.Techniques))
	for i := range probs {
		probs[i] = 0.9 - 0.05*float64(i)
	}
	return l1, tinyDetectorB(Level2Labels(), probs, featOpts)
}

func tinyDetectorB(labels []string, probs []float64, featOpts features.Options) *Detector {
	return &Detector{extractor: features.NewExtractor(featOpts), model: leafChain(labels, probs)}
}

func totalBytes(inputs []Input) int64 {
	var n int64
	for _, in := range inputs {
		n += int64(len(in.Source))
	}
	return n
}

// BenchmarkScanBatch measures the parse-once batch engine with Explain on:
// one parse and one flow graph per file feed the features, both detectors,
// and the indicator rules.
func BenchmarkScanBatch(b *testing.B) {
	inputs := benchScanInputs(b)
	l1, l2 := benchDetectors(b, features.Options{NGramDims: 1024})
	s, err := NewScanner(l1, l2, ScanOptions{Explain: true})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(totalBytes(inputs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats := s.ScanBatch(inputs)
		if stats.ParseFailures != 0 {
			b.Fatalf("parse failures: %d", stats.ParseFailures)
		}
	}
}

// benchDupInputs replicates the standard bench batch four times under
// distinct paths: 75% of the inputs repeat earlier content, like a crawl that
// finds the same bundles on many pages.
func benchDupInputs(b *testing.B) []Input {
	base := benchScanInputs(b)
	inputs := make([]Input, 0, 4*len(base))
	for copyNum := 0; copyNum < 4; copyNum++ {
		for _, in := range base {
			inputs = append(inputs, Input{
				Path:   string(rune('a'+copyNum)) + "/" + in.Path,
				Source: in.Source,
			})
		}
	}
	return inputs
}

// BenchmarkScanBatchDupes scans the duplicate-heavy batch without the dedup
// cache: every repeat pays the full pipeline.
func BenchmarkScanBatchDupes(b *testing.B) {
	inputs := benchDupInputs(b)
	l1, l2 := benchDetectors(b, features.Options{NGramDims: 1024})
	s, err := NewScanner(l1, l2, ScanOptions{Explain: true})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(totalBytes(inputs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats := s.ScanBatch(inputs)
		if stats.ParseFailures != 0 {
			b.Fatalf("parse failures: %d", stats.ParseFailures)
		}
	}
}

// BenchmarkScanBatchDupesDedup is the same batch with the content-hash cache
// on. A fresh scanner per iteration keeps the cold misses inside the measured
// region, so the number reflects one real batch (miss once, hit thrice), not
// an eternally warm cache.
func BenchmarkScanBatchDupesDedup(b *testing.B) {
	inputs := benchDupInputs(b)
	l1, l2 := benchDetectors(b, features.Options{NGramDims: 1024})
	b.SetBytes(totalBytes(inputs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewScanner(l1, l2, ScanOptions{Explain: true, Dedup: true})
		if err != nil {
			b.Fatal(err)
		}
		_, stats := s.ScanBatch(inputs)
		if stats.ParseFailures != 0 {
			b.Fatalf("parse failures: %d", stats.ParseFailures)
		}
		if want := len(inputs) * 3 / 4; stats.Deduped < want {
			b.Fatalf("Deduped = %d, want >= %d", stats.Deduped, want)
		}
	}
}

// BenchmarkScanSerial3Parse is the pre-engine baseline the tentpole
// replaces: the old CLI classified each file with ClassifyLevel1 (parse 1),
// ClassifyLevel2 (parse 2), and analysis.Analyze under -explain (parse 3),
// strictly serially.
func BenchmarkScanSerial3Parse(b *testing.B) {
	inputs := benchScanInputs(b)
	l1, l2 := benchDetectors(b, features.Options{NGramDims: 1024})
	b.SetBytes(totalBytes(inputs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range inputs {
			res, err := l1.ClassifyLevel1(in.Source)
			if err != nil {
				b.Fatal(err)
			}
			if res.IsTransformed() {
				if _, err := l2.ClassifyLevel2(in.Source); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := analysis.Analyze(in.Source); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchMixedInputs builds the 80/20 easy/hard mix the triage cascade is
// designed for: 80% of the files are easy (hand-formatted regular scripts
// plus simply minified ones — the mass a crawl actually sees), 20% are hard
// (obfuscating transforms that must escalate to the full pipeline).
func benchMixedInputs(b *testing.B) []Input {
	b.Helper()
	rng := rand.New(rand.NewSource(23))
	bases := corpus.RegularSet(40, rng)
	hardTechs := []transform.Technique{
		transform.StringObfuscation, transform.ControlFlowFlattening,
		transform.DeadCodeInjection, transform.GlobalArray,
	}
	inputs := make([]Input, 0, len(bases))
	for i, base := range bases {
		switch {
		case i%5 == 0: // 20% hard: obfuscated
			tf, err := corpus.Apply(base, rng, hardTechs[i%len(hardTechs)])
			if err != nil {
				b.Fatal(err)
			}
			inputs = append(inputs, Input{Path: tf.Name, Source: tf.Source})
		case i%5 == 1: // 16% easy: minified
			tf, err := corpus.Apply(base, rng, transform.MinifySimple)
			if err != nil {
				b.Fatal(err)
			}
			inputs = append(inputs, Input{Path: tf.Name, Source: tf.Source})
		default: // 64% easy: regular
			inputs = append(inputs, Input{Path: base.Name, Source: base.Source})
		}
	}
	return inputs
}

// BenchmarkScanBatchMixed is the no-triage control for the 80/20 mix: every
// file, easy or hard, pays the full parse→flow→features→infer pipeline.
func BenchmarkScanBatchMixed(b *testing.B) {
	inputs := benchMixedInputs(b)
	l1, l2 := benchDetectors(b, features.Options{NGramDims: 1024})
	s, err := NewScanner(l1, l2, ScanOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(totalBytes(inputs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats := s.ScanBatch(inputs)
		if stats.ParseFailures != 0 {
			b.Fatalf("parse failures: %d", stats.ParseFailures)
		}
	}
}

// BenchmarkScanBatchTriage is the same 80/20 mix with the stage-0 cascade
// on: high-confidence easy files route around the pipeline, hard files
// escalate. The headline number the tentpole claims — ≥2× over
// BenchmarkScanBatchMixed — comes from this pair; the false-bypass gate
// (TestTriageFalseBypassGate) is what makes the shortcut honest.
func BenchmarkScanBatchTriage(b *testing.B) {
	inputs := benchMixedInputs(b)
	l1, l2 := benchDetectors(b, features.Options{NGramDims: 1024})
	s, err := NewScanner(l1, l2, ScanOptions{Triage: true})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(totalBytes(inputs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats := s.ScanBatch(inputs)
		if stats.ParseFailures != 0 {
			b.Fatalf("parse failures: %d", stats.ParseFailures)
		}
		if stats.Bypassed < len(inputs)/2 {
			b.Fatalf("only %d/%d bypassed; the mix is not exercising the cascade", stats.Bypassed, len(inputs))
		}
	}
}
