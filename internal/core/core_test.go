package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/transform"
)

// testTrained caches one small end-to-end training run for all tests in the
// package (training is the expensive part).
var (
	trainedOnce sync.Once
	trained     *Trained
	trainedErr  error
)

func testOptions() Options {
	return Options{
		Features: features.Options{NGramDims: 512},
		Forest: ml.ForestOptions{
			NumTrees: 20,
			Parallel: true,
			Tree:     ml.TreeOptions{MTry: 96},
		},
		Seed: 7,
	}
}

func getTrained(t *testing.T) *Trained {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping end-to-end training in -short mode")
	}
	trainedOnce.Do(func() {
		trained, trainedErr = Train(TrainConfig{NumRegular: 90, Options: testOptions()})
	})
	if trainedErr != nil {
		t.Fatalf("train: %v", trainedErr)
	}
	return trained
}

func TestTrainProducesDetectors(t *testing.T) {
	tr := getTrained(t)
	if tr.Level1 == nil || tr.Level2 == nil {
		t.Fatal("both detectors must be trained")
	}
	if len(tr.TestRegular) == 0 {
		t.Fatal("held-out regular files missing")
	}
	for _, tech := range transform.Techniques {
		if len(tr.TestPool[tech]) == 0 {
			t.Fatalf("held-out pool for %s missing", tech)
		}
	}
}

func TestLevel1SeparatesClasses(t *testing.T) {
	tr := getTrained(t)

	regOK := 0
	for _, f := range tr.TestRegular {
		res, err := tr.Level1.ClassifyLevel1(f.Source)
		if err != nil {
			t.Fatalf("classify %s: %v", f.Name, err)
		}
		if !res.IsTransformed() {
			regOK++
		}
	}
	if acc := float64(regOK) / float64(len(tr.TestRegular)); acc < 0.85 {
		t.Fatalf("regular accuracy = %.3f, want >= 0.85", acc)
	}

	minOK, minN := 0, 0
	for _, tech := range []transform.Technique{transform.MinifySimple, transform.MinifyAdvanced} {
		for _, f := range tr.TestPool[tech] {
			minN++
			res, err := tr.Level1.ClassifyLevel1(f.Source)
			if err != nil {
				t.Fatal(err)
			}
			if res.IsMinified() {
				minOK++
			}
		}
	}
	if acc := float64(minOK) / float64(minN); acc < 0.9 {
		t.Fatalf("minified accuracy = %.3f, want >= 0.9", acc)
	}
}

func TestLevel2RanksCorrectTechniqueFirst(t *testing.T) {
	tr := getTrained(t)
	ok, n := 0, 0
	for _, tech := range transform.Techniques {
		for _, f := range tr.TestPool[tech] {
			n++
			res, err := tr.Level2.ClassifyLevel2(f.Source)
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range EffectiveTechniques(f.Techniques) {
				if res.Ranked[0].Technique == want {
					ok++
					break
				}
			}
		}
	}
	if acc := float64(ok) / float64(n); acc < 0.8 {
		t.Fatalf("level 2 top-1 = %.3f, want >= 0.8", acc)
	}
}

func TestDetectorRoundTripThroughModelFile(t *testing.T) {
	tr := getTrained(t)
	var buf bytes.Buffer
	if err := tr.Level1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, features.Options{NGramDims: 512})
	if err != nil {
		t.Fatal(err)
	}
	src := tr.TestRegular[0].Source
	want, err := tr.Level1.Probs(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Probs(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("prediction changed after save/load: %v vs %v", want, got)
		}
	}
}

func TestMixedTestSet(t *testing.T) {
	tr := getTrained(t)
	files, err := tr.MixedTestSet(10, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 10 {
		t.Fatalf("got %d files", len(files))
	}
	for _, f := range files {
		if len(f.Techniques) < 1 || len(f.Techniques) > 7 {
			t.Fatalf("%s: %d techniques", f.Name, len(f.Techniques))
		}
	}
}

func TestPackerTestSet(t *testing.T) {
	tr := getTrained(t)
	files, err := tr.PackerTestSet(5, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if len(f.Techniques) != 1 || f.Techniques[0] != transform.Packer {
			t.Fatalf("%s: labels %v", f.Name, f.Techniques)
		}
	}
}

func TestEffectiveTechniques(t *testing.T) {
	got := EffectiveTechniques([]transform.Technique{transform.SelfDefending})
	if len(got) != 2 {
		t.Fatalf("self-defending must imply basic minification, got %v", got)
	}
	plain := EffectiveTechniques([]transform.Technique{transform.GlobalArray})
	if len(plain) != 1 {
		t.Fatalf("global array implies nothing, got %v", plain)
	}
}

func TestLevel2FromProbsSorted(t *testing.T) {
	probs := make([]float64, len(transform.Techniques))
	probs[3] = 0.9
	probs[7] = 0.5
	res := Level2FromProbs(probs)
	if res.Ranked[0].Technique != transform.Techniques[3] {
		t.Fatalf("ranked[0] = %v", res.Ranked[0])
	}
	if res.Ranked[1].Technique != transform.Techniques[7] {
		t.Fatalf("ranked[1] = %v", res.Ranked[1])
	}
	top := res.TopK(4, 0.10)
	if len(top) != 2 {
		t.Fatalf("TopK = %v", top)
	}
}

func TestLevel1ResultThresholds(t *testing.T) {
	r := Level1Result{Regular: 0.9, Minified: 0.2, Obfuscated: 0.1}
	if r.IsTransformed() {
		t.Fatal("below-threshold classes must not flag")
	}
	r = Level1Result{Regular: 0.1, Minified: 0.8, Obfuscated: 0.1}
	if !r.IsTransformed() || !r.IsMinified() || r.IsObfuscated() {
		t.Fatal("minified flagging broken")
	}
}

func TestTrainRejectsEmpty(t *testing.T) {
	if _, err := TrainLevel1(nil, testOptions()); err == nil {
		t.Fatal("expected error on empty training set")
	}
}

func TestLevel2LabelRow(t *testing.T) {
	f := corpus.File{Techniques: []transform.Technique{transform.GlobalArray, transform.MinifySimple}}
	row := Level2LabelRow(&f)
	trueCount := 0
	for i, b := range row {
		if b {
			trueCount++
			tech := transform.Techniques[i]
			if tech != transform.GlobalArray && tech != transform.MinifySimple {
				t.Fatalf("unexpected label %v", tech)
			}
		}
	}
	if trueCount != 2 {
		t.Fatalf("trueCount = %d", trueCount)
	}
}
