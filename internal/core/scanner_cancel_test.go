package core

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/features"
)

// bulkyInputs builds inputs whose parse takes long enough that a mid-batch
// cancellation lands while most of the batch is still queued.
func bulkyInputs(n int) []Input {
	var b strings.Builder
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&b, "function fn%d(a, b) { var t = a * %d + b; return t ? fn(t - 1) : [a, b, t]; }\n", i, i)
	}
	src := b.String()
	inputs := make([]Input, n)
	for i := range inputs {
		inputs[i] = Input{Path: fmt.Sprintf("bulk_%03d.js", i), Source: src}
	}
	return inputs
}

// TestScanStreamContextCancel cancels mid-batch and asserts the three
// properties the batch engine promises: the worker pool drains (no goroutine
// leak), emission stops early, and the partial results are a contiguous
// input-ordered prefix.
func TestScanStreamContextCancel(t *testing.T) {
	s := tinyScanner(t, ScanOptions{Workers: 2}, features.Options{NGramDims: 256})
	inputs := bulkyInputs(200)

	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const cancelAfter = 3
	var emitted []int
	var paths []string
	stats, err := s.ScanStreamContext(ctx, inputs, func(i int, r FileResult) {
		emitted = append(emitted, i)
		paths = append(paths, r.Path)
		if len(emitted) == cancelAfter {
			cancel()
		}
	})

	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(emitted) < cancelAfter {
		t.Fatalf("emitted %d results, want at least %d", len(emitted), cancelAfter)
	}
	if len(emitted) == len(inputs) {
		t.Fatalf("all %d inputs were emitted; cancellation did not cut the batch short", len(inputs))
	}
	// Partial results must be the contiguous prefix 0..k-1, in input order.
	for k, i := range emitted {
		if i != k {
			t.Fatalf("emitted[%d] = input %d, want contiguous input-ordered prefix", k, i)
		}
		if paths[k] != inputs[i].Path {
			t.Fatalf("emitted[%d] path = %q, want %q", k, paths[k], inputs[i].Path)
		}
	}
	if stats.Files != len(emitted) {
		t.Fatalf("stats.Files = %d, want %d (emitted prefix only)", stats.Files, len(emitted))
	}

	// Workers must have drained by the time the call returns. Allow the
	// runtime a moment to retire exiting goroutines before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before scan, %d after cancellation", before, after)
	}
}

// TestScanBatchContextPreCancelled asserts that an already-dead context scans
// nothing at all.
func TestScanBatchContextPreCancelled(t *testing.T) {
	s := tinyScanner(t, ScanOptions{Workers: 2}, features.Options{NGramDims: 256})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, stats, err := s.ScanBatchContext(ctx, scanInputs(5))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != 0 || stats.Files != 0 {
		t.Fatalf("pre-cancelled scan produced %d results, stats %+v", len(results), stats)
	}
}

// TestScanBatchContextComplete asserts the context path is byte-for-byte the
// plain ScanBatch on an uncancelled run.
func TestScanBatchContextComplete(t *testing.T) {
	s := tinyScanner(t, ScanOptions{Workers: 3}, features.Options{NGramDims: 256})
	inputs := scanInputs(12)
	got, stats, err := s.ScanBatchContext(context.Background(), inputs)
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if len(got) != len(inputs) || stats.Files != len(inputs) {
		t.Fatalf("got %d results, stats %+v", len(got), stats)
	}
	for i, r := range got {
		if r.Path != inputs[i].Path {
			t.Fatalf("result %d path = %q, want %q (input order)", i, r.Path, inputs[i].Path)
		}
		if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
	}
}
