package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/transform"
)

// TestModelRoundTripPredictions trains a real level 1 detector, sends it
// through the JSTFMDL2 save/load cycle, and verifies the loaded copy predicts
// identically on held-out files — including transformed ones. This guards the
// hot-path feature rewrite end to end: if bucket assignment or the hand-picked
// block shifted by even one bit, a model trained before the change would
// disagree with one loaded after it.
func TestModelRoundTripPredictions(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	train := corpus.RegularSet(12, rng)
	opts := Options{
		Features: features.Options{NGramDims: 256},
		Forest:   ml.ForestOptions{NumTrees: 4, Tree: ml.TreeOptions{MTry: 24}},
		Seed:     9,
	}
	d, err := TrainLevel1(train, opts)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), opts.Features)
	if err != nil {
		t.Fatal(err)
	}

	held := corpus.RegularSet(6, rng)
	for i := range held {
		tf, err := corpus.Apply(held[i], rng, transform.Techniques[i%len(transform.Techniques)])
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, tf)
		if len(held) == 12 {
			break
		}
	}
	for _, f := range held {
		want, err := d.ClassifyLevel1(f.Source)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		got, err := loaded.ClassifyLevel1(f.Source)
		if err != nil {
			t.Fatalf("%s: loaded model: %v", f.Name, err)
		}
		if got != want {
			t.Fatalf("%s: loaded model predicts %+v, original %+v", f.Name, got, want)
		}
	}
}
