package core

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// The scanner's per-file pipeline is a fixed sequence of stages; the stage
// accumulator breaks a scan's cost down across them so ScanStats (and
// jsdetect -metrics) can report where the time goes. Collection is off by
// default: it costs a handful of clock reads per file, which the hot path
// only pays when ScanOptions.StageStats is set or the obs registry is
// enabled.

// Stage indices, in pipeline order.
const (
	stageParse = iota
	stageFlow
	stageRules
	stageFeatures
	stageInfer
	numStages
)

// stageNames are the external names of the pipeline stages, in order.
var stageNames = [numStages]string{"parse", "flow", "rules", "features", "infer"}

// stageMetricNames are the obs histogram names of the pipeline stages, in
// order. They are spelled out as literals — not built as "scan.stage."+name
// at record time — so the full metric vocabulary is greppable and the jslint
// obs-literal analyzer can check every element against the manifest;
// TestStageMetricNamesLockstep keeps the table in lockstep with stageNames.
var stageMetricNames = [numStages]string{
	"scan.stage.parse",
	"scan.stage.flow",
	"scan.stage.rules",
	"scan.stage.features",
	"scan.stage.infer",
}

// StageStats is one pipeline stage's aggregate cost across a scan.
type StageStats struct {
	// Stage is the pipeline stage name: parse, flow, rules, features, or
	// infer.
	Stage string `json:"stage"`
	// Duration is the total time spent in the stage, summed across workers
	// (with W workers it can exceed the scan's wall-clock duration by up to
	// a factor of W).
	Duration time.Duration `json:"duration"`
	// Files is how many files passed through the stage. Stages differ: a
	// parse failure skips the rest of the pipeline, and rules only run under
	// Explain or rule features.
	Files int64 `json:"files"`
	// Bytes is the total source size that passed through the stage.
	Bytes int64 `json:"bytes"`
}

// StageTotal sums the per-stage durations of a breakdown. With one worker it
// approximates the scan's wall-clock duration (the remainder is scheduling
// and emission overhead); with W workers it approaches W times the wall
// clock on parse-bound batches.
func (s ScanStats) StageTotal() time.Duration {
	var total time.Duration
	for _, st := range s.Stages {
		total += st.Duration
	}
	return total
}

// stageAcc accumulates per-stage costs for one scan. Workers add into it
// concurrently; the scan folds it into ScanStats once the pool drains.
type stageAcc struct {
	ns    [numStages]atomic.Int64
	files [numStages]atomic.Int64
	bytes [numStages]atomic.Int64
}

// add records one file's pass through a stage, mirroring it into the obs
// registry (per-file duration histograms) when metrics are enabled.
func (a *stageAcc) add(stage int, d time.Duration, fileBytes int) {
	a.ns[stage].Add(int64(d))
	a.files[stage].Add(1)
	a.bytes[stage].Add(int64(fileBytes))
	obs.ObserveDuration(stageMetricNames[stage], d)
}

// stats folds the accumulator into the exported per-stage breakdown, in
// pipeline order, skipping stages no file reached.
func (a *stageAcc) stats() []StageStats {
	out := make([]StageStats, 0, numStages)
	for i := 0; i < numStages; i++ {
		files := a.files[i].Load()
		if files == 0 {
			continue
		}
		out = append(out, StageStats{
			Stage:    stageNames[i],
			Duration: time.Duration(a.ns[i].Load()),
			Files:    files,
			Bytes:    a.bytes[i].Load(),
		})
	}
	return out
}

// stageTimer measures the lap times between pipeline stages of one file.
// The zero value (nil accumulator) is disabled and records nothing.
type stageTimer struct {
	acc   *stageAcc
	bytes int
	last  time.Time
}

func newStageTimer(acc *stageAcc, fileBytes int) stageTimer {
	t := stageTimer{acc: acc, bytes: fileBytes}
	if acc != nil {
		t.last = time.Now()
	}
	return t
}

// tick closes the current stage: the time since the previous tick (or the
// timer's start) is attributed to it.
func (t *stageTimer) tick(stage int) {
	if t.acc == nil {
		return
	}
	now := time.Now()
	t.acc.add(stage, now.Sub(t.last), t.bytes)
	t.last = now
}
