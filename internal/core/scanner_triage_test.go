package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/store"
	"repro/internal/transform"
	"repro/internal/triage"
)

// --- verdict codec -----------------------------------------------------------

func TestVerdictCodecRoundTrip(t *testing.T) {
	l2 := Level2FromProbs([]float64{0.1, 0.9, 0.2, 0.3, 0.05, 0.6, 0.7, 0.01, 0.4, 0.55})
	cases := []FileResult{
		{Bytes: 123, Level1: Level1Result{Regular: 0.97, Minified: 0.01, Obfuscated: 0.02}},
		{Bytes: 456, Level1: Level1Result{Minified: 0.8, Obfuscated: 0.6}, Level2: &l2},
		{Bytes: 7, Err: errors.New("parse: unexpected token")},
		{Bytes: 9000, Level1: Level1Result{Regular: 1}, Bypassed: true},
	}
	for i, in := range cases {
		raw, err := encodeVerdict(in)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		out, err := decodeVerdict(raw)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		// Errors survive as text, not as the identical value.
		if (in.Err == nil) != (out.Err == nil) {
			t.Fatalf("case %d: error presence changed", i)
		}
		if in.Err != nil && in.Err.Error() != out.Err.Error() {
			t.Fatalf("case %d: error text %q -> %q", i, in.Err, out.Err)
		}
		in.Err, out.Err = nil, nil
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("case %d: round trip changed the verdict:\n in  %+v\n out %+v", i, in, out)
		}
	}
}

func TestVerdictCodecRejectsMalformed(t *testing.T) {
	for _, raw := range []string{
		"",
		"not json",
		`{"v":99,"bytes":1,"level1":[1,0,0]}`,
		`{"v":1,"bytes":1,"level1":[1,0,0],"level2":[{"technique":"no-such-technique","probability":0.5}]}`,
	} {
		if _, err := decodeVerdict([]byte(raw)); err == nil {
			t.Errorf("decode(%q) succeeded, want error", raw)
		}
	}
}

// --- triage wiring -----------------------------------------------------------

// TestScanTriageBypass pins the mechanics of ScanOptions.Triage: easy regular
// files come back Bypassed with a full-confidence level 1 verdict and no
// level 2, the batch stats count them, and a scanner with triage disabled
// reports none.
func TestScanTriageBypass(t *testing.T) {
	tr := getTrained(t)
	scanner, err := NewScanner(tr.Level1, tr.Level2, ScanOptions{Triage: true})
	if err != nil {
		t.Fatal(err)
	}

	files := corpus.RegularSet(40, rand.New(rand.NewSource(99)))
	inputs := make([]Input, len(files))
	for i, f := range files {
		inputs[i] = Input{Path: f.Name, Source: f.Source}
	}
	results, stats := scanner.ScanBatch(inputs)
	if stats.Bypassed == 0 {
		t.Fatal("no bypasses on a pure regular batch; triage is wired but inert")
	}
	bypassed := 0
	for _, r := range results {
		if !r.Bypassed {
			continue
		}
		bypassed++
		if r.Level1 != (Level1Result{Regular: 1}) && r.Level1 != (Level1Result{Minified: 1}) {
			t.Errorf("%s: bypassed with non-synthesized level 1 %+v", r.Path, r.Level1)
		}
		if r.Level2 != nil {
			t.Errorf("%s: bypassed result carries a level 2 ranking", r.Path)
		}
		if r.Err != nil {
			t.Errorf("%s: bypassed result carries an error: %v", r.Path, r.Err)
		}
	}
	if bypassed != stats.Bypassed {
		t.Fatalf("stats.Bypassed = %d, results say %d", stats.Bypassed, bypassed)
	}

	// Every bypass decision must match what the router says standalone.
	for i, f := range files {
		d, _ := triage.Route(f.Source, triage.Config{})
		if d.Bypassed() != results[i].Bypassed {
			t.Errorf("%s: router says %s, scanner says Bypassed=%v", f.Name, d, results[i].Bypassed)
		}
	}

	plain, err := NewScanner(tr.Level1, tr.Level2, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, plainStats := plain.ScanBatch(inputs)
	if plainStats.Bypassed != 0 {
		t.Fatalf("triage-off scanner reported %d bypasses", plainStats.Bypassed)
	}
}

// --- verdict store wiring ----------------------------------------------------

func verdictInputs(files []corpus.File) []Input {
	inputs := make([]Input, len(files))
	for i, f := range files {
		inputs[i] = Input{Path: f.Name, Source: f.Source}
	}
	return inputs
}

// sameVerdict compares the verdict content of two results, ignoring
// provenance flags (Deduped, FromStore).
func sameVerdict(t *testing.T, path string, a, b FileResult) {
	t.Helper()
	if (a.Err == nil) != (b.Err == nil) ||
		(a.Err != nil && a.Err.Error() != b.Err.Error()) {
		t.Errorf("%s: error changed: %v -> %v", path, a.Err, b.Err)
	}
	if a.Level1 != b.Level1 {
		t.Errorf("%s: level 1 changed: %+v -> %+v", path, a.Level1, b.Level1)
	}
	if !reflect.DeepEqual(a.Level2, b.Level2) {
		t.Errorf("%s: level 2 changed", path)
	}
	if a.Bypassed != b.Bypassed {
		t.Errorf("%s: bypassed flag changed: %v -> %v", path, a.Bypassed, b.Bypassed)
	}
}

// TestScanVerdictStoreWarm pins the store cascade end to end: a cold batch
// persists every verdict, a second scanner over the same store answers the
// repeat batch entirely from disk with verdicts identical to the cold run,
// and the hits survive a store close/reopen (the "restart").
func TestScanVerdictStoreWarm(t *testing.T) {
	tr := getTrained(t)
	dir := t.TempDir()

	rng := rand.New(rand.NewSource(181))
	files := corpus.RegularSet(12, rng)
	pool, err := corpus.TransformPool(files[:3], rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range transform.Techniques {
		files = append(files, pool[tech]...)
	}
	// Distinct contents only: a repeated content inside the cold batch would
	// (correctly) hit the verdict its first occurrence just persisted, and
	// this test wants a clean cold/warm split.
	seen := make(map[string]bool)
	uniq := files[:0]
	for _, f := range files {
		if !seen[f.Source] {
			seen[f.Source] = true
			uniq = append(uniq, f)
		}
	}
	files = uniq
	inputs := verdictInputs(files)

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewScanner(tr.Level1, tr.Level2, ScanOptions{Triage: true, VerdictStore: st})
	if err != nil {
		t.Fatal(err)
	}
	coldResults, coldStats := cold.ScanBatch(inputs)
	if coldStats.StoreHits != 0 {
		t.Fatalf("cold scan reported %d store hits", coldStats.StoreHits)
	}
	if got, _ := cold.StoreStats(); got.Entries != len(inputs) {
		t.Fatalf("store holds %d entries after cold scan of %d files", got.Entries, len(inputs))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: reopen the store, build a fresh scanner (empty dedup cache).
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	warm, err := NewScanner(tr.Level1, tr.Level2, ScanOptions{Triage: true, VerdictStore: st2})
	if err != nil {
		t.Fatal(err)
	}
	warmResults, warmStats := warm.ScanBatch(inputs)
	if warmStats.StoreHits != len(inputs) {
		t.Fatalf("warm scan: %d/%d store hits, want all", warmStats.StoreHits, len(inputs))
	}
	for i := range inputs {
		if !warmResults[i].FromStore {
			t.Errorf("%s: warm result not marked FromStore", inputs[i].Path)
		}
		sameVerdict(t, inputs[i].Path, coldResults[i], warmResults[i])
	}
	if warmStats.Bypassed != coldStats.Bypassed {
		t.Errorf("bypassed count changed across restart: %d -> %d", coldStats.Bypassed, warmStats.Bypassed)
	}
}

// TestScanStoreSaltIsolation pins the key salt: a scanner with a different
// cascade configuration sharing the same store directory must never see the
// other configuration's verdicts.
func TestScanStoreSaltIsolation(t *testing.T) {
	tr := getTrained(t)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	files := corpus.RegularSet(6, rand.New(rand.NewSource(5)))
	inputs := verdictInputs(files)

	a, err := NewScanner(tr.Level1, tr.Level2, ScanOptions{VerdictStore: st})
	if err != nil {
		t.Fatal(err)
	}
	a.ScanBatch(inputs)

	b, err := NewScanner(tr.Level1, tr.Level2, ScanOptions{VerdictStore: st, Triage: true})
	if err != nil {
		t.Fatal(err)
	}
	_, stats := b.ScanBatch(inputs)
	if stats.StoreHits != 0 {
		t.Fatalf("scanner with different cascade config got %d hits from a foreign store", stats.StoreHits)
	}

	// Same configuration hits everything the first scanner persisted.
	c, err := NewScanner(tr.Level1, tr.Level2, ScanOptions{VerdictStore: st})
	if err != nil {
		t.Fatal(err)
	}
	_, stats = c.ScanBatch(inputs)
	if stats.StoreHits != len(inputs) {
		t.Fatalf("identical config got %d/%d hits", stats.StoreHits, len(inputs))
	}
}

// TestScanStoreCorruptValueRescans pins the decode-failure path: a stored
// value the codec cannot parse is a miss, and the scan overwrites it with a
// fresh verdict instead of serving garbage.
func TestScanStoreCorruptValueRescans(t *testing.T) {
	tr := getTrained(t)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	files := corpus.RegularSet(1, rand.New(rand.NewSource(17)))
	inputs := verdictInputs(files)

	s, err := NewScanner(tr.Level1, tr.Level2, ScanOptions{VerdictStore: st})
	if err != nil {
		t.Fatal(err)
	}
	key := s.storeKey(hashSource(inputs[0].Source))
	if err := st.Put(key, []byte(`{"v":99}`)); err != nil {
		t.Fatal(err)
	}

	results, stats := s.ScanBatch(inputs)
	if stats.StoreHits != 0 {
		t.Fatal("undecodable stored value was served as a hit")
	}
	if results[0].Err != nil {
		t.Fatalf("scan failed: %v", results[0].Err)
	}
	raw, ok := st.Get(key)
	if !ok {
		t.Fatal("fresh verdict was not persisted over the corrupt one")
	}
	if _, err := decodeVerdict(raw); err != nil {
		t.Fatalf("overwritten value still undecodable: %v", err)
	}
}
