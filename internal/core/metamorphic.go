package core

import (
	"fmt"
	"math/rand"

	"repro/internal/corpus"
	"repro/internal/transform"
)

// The metamorphic property behind the level 2 detector: applying technique T
// to a regular file must not *decrease* the predicted probability of T's own
// label, because the transformed variant carries strictly more of T's signal
// than the original. The sweep below is the single implementation of that
// check; the detector-level test drives it with Detector.Probs directly and
// the scan-service test drives it through POST /v1/scan, so both layers
// enforce the same property at the same tolerance.

// MetamorphicTolerance is the allowed per-file drop in a technique's own
// probability after applying that technique — small-forest vote noise, see
// EXPERIMENTS.md ("Metamorphic detector check").
const MetamorphicTolerance = 0.15

// MetamorphicViolation is one file/technique pair that broke the property.
type MetamorphicViolation struct {
	// File names the held-out regular file.
	File string
	// Technique is the transformation applied to it.
	Technique transform.Technique
	// Before and After are P(Technique) on the original and the
	// transformed variant.
	Before, After float64
}

func (v MetamorphicViolation) String() string {
	return fmt.Sprintf("%s: P(%s) dropped %.3f -> %.3f (tolerance %.2f)",
		v.File, v.Technique, v.Before, v.After, MetamorphicTolerance)
}

// MetamorphicSweep applies every monitored technique to each file and checks
// the property through probs, which must return the per-technique
// probabilities in transform.Techniques order (Detector.Probs on a level 2
// model, or any transport wrapped around it). Randomness is deterministic:
// one fixed-seed stream per technique, so adding a technique or a file never
// reshuffles another pair's transform. The error is the first transform or
// probs failure; violations only collects property breaks.
func MetamorphicSweep(files []corpus.File, probs func(src string) ([]float64, error)) ([]MetamorphicViolation, error) {
	var violations []MetamorphicViolation
	for ti, tech := range transform.Techniques {
		// One deterministic stream per technique (seed shared with the
		// historical detector-level test).
		rng := rand.New(rand.NewSource(1000 + int64(ti)))
		for i := range files {
			f := files[i]
			before, err := probs(f.Source)
			if err != nil {
				return violations, fmt.Errorf("probs(%s): %w", f.Name, err)
			}
			tf, err := corpus.Apply(f, rng, tech)
			if err != nil {
				return violations, fmt.Errorf("apply %s to %s: %w", tech, f.Name, err)
			}
			after, err := probs(tf.Source)
			if err != nil {
				return violations, fmt.Errorf("probs(transformed %s): %w", f.Name, err)
			}
			if len(before) != len(transform.Techniques) || len(after) != len(transform.Techniques) {
				return violations, fmt.Errorf("probs returned %d/%d values, want %d per call",
					len(before), len(after), len(transform.Techniques))
			}
			if after[ti] < before[ti]-MetamorphicTolerance {
				violations = append(violations, MetamorphicViolation{
					File: f.Name, Technique: tech, Before: before[ti], After: after[ti],
				})
			}
		}
	}
	return violations, nil
}
