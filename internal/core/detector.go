// Package core wires the pipeline of the paper together: feature extraction
// over the flow-enhanced AST, the level 1 detector (regular / minified /
// obfuscated) and the level 2 detector (the ten monitored transformation
// techniques), trained as random-forest classifier chains (Section III).
package core

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/transform"
)

// Level1Labels are the first detector's classes, in chain order.
var Level1Labels = []string{"regular", "minified", "obfuscated"}

// Level2Labels lists the ten technique names in chain order.
func Level2Labels() []string {
	out := make([]string, len(transform.Techniques))
	for i, t := range transform.Techniques {
		out[i] = t.String()
	}
	return out
}

// Options configures detector training.
type Options struct {
	// Features configures the vector layout; must match between training
	// and classification.
	Features features.Options
	// Forest configures the per-label random forests.
	Forest ml.ForestOptions
	// Independent selects the binary-relevance arrangement instead of the
	// classifier chain (the paper's validation preferred the chain; the
	// ablation benchmark compares both).
	Independent bool
	// Seed drives all randomness.
	Seed int64
}

// Detector is one trained multi-task detector plus its feature extractor.
type Detector struct {
	extractor *features.Extractor
	model     ml.MultiTask
}

// Labels returns the detector's class names.
func (d *Detector) Labels() []string { return d.model.Labels() }

// Probs classifies one source file and returns per-class probabilities.
func (d *Detector) Probs(src string) ([]float64, error) {
	vec, err := d.extractor.Extract(src)
	if err != nil {
		return nil, err
	}
	return d.model.PredictProbs(vec), nil
}

// ProbsVec classifies a pre-extracted feature vector.
func (d *Detector) ProbsVec(vec features.Vector) []float64 {
	return d.model.PredictProbs(vec)
}

// Extractor exposes the feature extractor (shared with callers that batch
// extraction).
func (d *Detector) Extractor() *features.Extractor { return d.extractor }

// ---------------------------------------------------------------------------
// Level 1
// ---------------------------------------------------------------------------

// Level1Result is the first detector's verdict on a file.
type Level1Result struct {
	// Regular, Minified, Obfuscated are the per-class probabilities.
	Regular    float64
	Minified   float64
	Obfuscated float64
}

// IsMinified applies the 0.5 decision threshold.
func (r Level1Result) IsMinified() bool { return r.Minified >= 0.5 }

// IsObfuscated applies the 0.5 decision threshold.
func (r Level1Result) IsObfuscated() bool { return r.Obfuscated >= 0.5 }

// IsTransformed reports the paper's "transformed" verdict: flagged as
// obfuscated and/or minified.
func (r Level1Result) IsTransformed() bool { return r.IsMinified() || r.IsObfuscated() }

// level1Labels computes the label row for a file.
func level1Labels(f *corpus.File) []bool {
	return []bool{!f.Transformed(), f.Minified(), f.Obfuscated()}
}

// TrainLevel1 fits the level 1 detector on the given files.
func TrainLevel1(files []corpus.File, opts Options) (*Detector, error) {
	return trainDetector(files, Level1Labels, level1Labels, opts)
}

// ClassifyLevel1 runs the level 1 detector.
func (d *Detector) ClassifyLevel1(src string) (Level1Result, error) {
	probs, err := d.Probs(src)
	if err != nil {
		return Level1Result{}, err
	}
	return level1FromProbs(probs), nil
}

func level1FromProbs(probs []float64) Level1Result {
	return Level1Result{Regular: probs[0], Minified: probs[1], Obfuscated: probs[2]}
}

// Level1FromProbs converts raw chain probabilities into a Level1Result.
func Level1FromProbs(probs []float64) Level1Result { return level1FromProbs(probs) }

// ---------------------------------------------------------------------------
// Level 2
// ---------------------------------------------------------------------------

// TechniquePrediction is one ranked level 2 prediction.
type TechniquePrediction struct {
	Technique   transform.Technique
	Probability float64
}

// Level2Result ranks the ten techniques for a transformed file.
type Level2Result struct {
	// Ranked lists all ten techniques, most probable first.
	Ranked []TechniquePrediction
}

// DefaultThreshold is the paper's empirically selected 10% confidence floor
// (Section III-E2).
const DefaultThreshold = 0.10

// TopK returns the k most probable techniques with probability ≥ threshold.
func (r Level2Result) TopK(k int, threshold float64) []TechniquePrediction {
	var out []TechniquePrediction
	for _, p := range r.Ranked {
		if len(out) == k {
			break
		}
		if p.Probability >= threshold {
			out = append(out, p)
		}
	}
	return out
}

// EffectiveTechniques expands a ground-truth technique set with implied
// labels: self-defending ships minified output, so its samples also carry
// the basic-minification label (the paper notes tools that "always perform
// a specific technique in combination with others", giving up to three
// labels per single-configuration file).
func EffectiveTechniques(techs []transform.Technique) []transform.Technique {
	out := append([]transform.Technique(nil), techs...)
	have := make(map[transform.Technique]bool, len(out))
	for _, t := range out {
		have[t] = true
	}
	if have[transform.SelfDefending] && !have[transform.MinifySimple] {
		out = append(out, transform.MinifySimple)
	}
	return out
}

// level2Labels computes the ten-column label row for a file.
func level2Labels(f *corpus.File) []bool {
	row := make([]bool, len(transform.Techniques))
	for _, t := range EffectiveTechniques(f.Techniques) {
		for i, known := range transform.Techniques {
			if t == known {
				row[i] = true
			}
		}
	}
	return row
}

// Level2LabelRow exposes the ground-truth row builder for evaluation code.
func Level2LabelRow(f *corpus.File) []bool { return level2Labels(f) }

// TrainLevel2 fits the level 2 detector on transformed files.
func TrainLevel2(files []corpus.File, opts Options) (*Detector, error) {
	return trainDetector(files, Level2Labels(), level2Labels, opts)
}

// ClassifyLevel2 runs the level 2 detector.
func (d *Detector) ClassifyLevel2(src string) (Level2Result, error) {
	probs, err := d.Probs(src)
	if err != nil {
		return Level2Result{}, err
	}
	return Level2FromProbs(probs), nil
}

// Level2FromProbs converts raw chain probabilities into a ranked result.
func Level2FromProbs(probs []float64) Level2Result {
	res := Level2Result{Ranked: make([]TechniquePrediction, len(probs))}
	for i, p := range probs {
		res.Ranked[i] = TechniquePrediction{Technique: transform.Techniques[i], Probability: p}
	}
	for i := 1; i < len(res.Ranked); i++ {
		for j := i; j > 0 && res.Ranked[j].Probability > res.Ranked[j-1].Probability; j-- {
			res.Ranked[j], res.Ranked[j-1] = res.Ranked[j-1], res.Ranked[j]
		}
	}
	return res
}

// ---------------------------------------------------------------------------
// Shared training
// ---------------------------------------------------------------------------

func trainDetector(files []corpus.File, labels []string, labelRow func(*corpus.File) []bool, opts Options) (*Detector, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	ext := features.NewExtractor(opts.Features)
	// Feature extraction dominates training time and is independent per
	// file, so it runs on the same worker pool the batch scanner uses.
	// Results land at fixed indices, keeping training deterministic.
	x := make([][]float64, len(files))
	y := make([][]bool, len(files))
	extractErrs := make([]error, len(files))
	parallelFor(len(files), 0, func(i int) {
		vec, err := ext.Extract(files[i].Source)
		if err != nil {
			extractErrs[i] = err
			return
		}
		x[i] = vec
		y[i] = labelRow(&files[i])
	})
	for i, err := range extractErrs {
		if err != nil {
			return nil, fmt.Errorf("core: extract %s: %w", files[i].Name, err)
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var model ml.MultiTask
	var err error
	if opts.Independent {
		model, err = ml.TrainIndependent(x, y, labels, opts.Forest, rng)
	} else {
		model, err = ml.TrainChain(x, y, labels, opts.Forest, rng)
	}
	if err != nil {
		return nil, err
	}
	return &Detector{extractor: ext, model: model}, nil
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

// fingerprint derives the model-file layout fingerprint from the detector's
// feature options.
func fingerprint(o features.Options) ml.Fingerprint {
	return ml.Fingerprint{
		NGramDims:    uint32(o.Dims()),
		NGramLen:     uint32(o.NGramLength()),
		RuleFeatures: o.RuleFeatures,
	}
}

// Save writes the detector's model to w in the v2 format, which embeds the
// feature-options fingerprint so Load can reject a mismatched -dims or
// rule-features setting instead of silently misclassifying.
func (d *Detector) Save(w io.Writer) error {
	return ml.WriteModel(w, d.model, fingerprint(d.extractor.Options()))
}

// SaveFile writes the model to a file.
func (d *Detector) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a detector model from r, using the given feature options. v2
// model files carry a feature-options fingerprint; Load fails loudly when it
// does not match featOpts. v1 files carry none and load unchecked for
// back-compat.
func Load(r io.Reader, featOpts features.Options) (*Detector, error) {
	model, fp, err := ml.ReadModel(r)
	if err != nil {
		return nil, err
	}
	if fp != nil {
		want := fingerprint(featOpts)
		switch {
		case fp.NGramDims != want.NGramDims:
			return nil, fmt.Errorf("core: model was trained with %d n-gram dims, loading with %d (pass the training -dims)", fp.NGramDims, want.NGramDims)
		case fp.NGramLen != want.NGramLen:
			return nil, fmt.Errorf("core: model was trained with n-gram length %d, loading with %d", fp.NGramLen, want.NGramLen)
		case fp.RuleFeatures != want.RuleFeatures:
			return nil, fmt.Errorf("core: model was trained with rule features %v, loading with %v", fp.RuleFeatures, want.RuleFeatures)
		}
	}
	return &Detector{extractor: features.NewExtractor(featOpts), model: model}, nil
}

// LoadFile reads a detector model from a file.
func LoadFile(path string, featOpts features.Options) (*Detector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	det, err := Load(f, featOpts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return det, nil
}

// ValidateLabels checks the loaded model's classes against want, catching a
// level1.model/level2.model swap before it panics in level1FromProbs or
// silently misreads technique ranks.
func (d *Detector) ValidateLabels(want []string) error {
	got := d.model.Labels()
	if len(got) != len(want) {
		return fmt.Errorf("model has %d classes %v, want %d %v (level1/level2 files swapped?)", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("model class %d is %q, want %q (level1/level2 files swapped?)", i, got[i], want[i])
		}
	}
	return nil
}

// LoadLevelFile reads a detector model from a file and validates that it
// carries the expected label set (Level1Labels or Level2Labels()).
func LoadLevelFile(path string, featOpts features.Options, wantLabels []string) (*Detector, error) {
	det, err := LoadFile(path, featOpts)
	if err != nil {
		return nil, err
	}
	if err := det.ValidateLabels(wantLabels); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return det, nil
}

// ChainModel returns the underlying classifier chain when the detector was
// trained with the chain arrangement (used by interpretability tooling).
func (d *Detector) ChainModel() (*ml.Chain, bool) {
	c, ok := d.model.(*ml.Chain)
	return c, ok
}
