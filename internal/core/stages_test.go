package core

import (
	"testing"
	"time"

	"repro/internal/features"
	"repro/internal/obs"
)

// swapOutObs detaches any process-wide obs registry for the duration of a
// test so StageStats gating is deterministic.
func swapOutObs(t *testing.T) {
	t.Helper()
	prev := obs.Swap(nil)
	t.Cleanup(func() { obs.Swap(prev) })
}

func TestScanStagesOffByDefault(t *testing.T) {
	swapOutObs(t)
	s := tinyScanner(t, ScanOptions{Workers: 2}, features.Options{NGramDims: 128})
	_, stats := s.ScanBatch(scanInputs(4))
	if stats.Stages != nil {
		t.Fatalf("Stages collected without StageStats or obs: %+v", stats.Stages)
	}
}

// TestScanStageBreakdown is the acceptance check behind jsdetect -metrics:
// with one worker, the per-stage durations must account for roughly the
// whole scan wall time (everything outside the stages is pool scheduling
// and emission, which is small next to parsing).
func TestScanStageBreakdown(t *testing.T) {
	swapOutObs(t)
	s := tinyScanner(t, ScanOptions{Workers: 1, Explain: true, StageStats: true}, features.Options{NGramDims: 256})
	inputs := scanInputs(24)
	_, stats := s.ScanBatch(inputs)

	if len(stats.Stages) != numStages {
		t.Fatalf("got %d stages %v, want all %d", len(stats.Stages), stats.Stages, numStages)
	}
	wantOrder := []string{"parse", "flow", "rules", "features", "infer"}
	for i, st := range stats.Stages {
		if st.Stage != wantOrder[i] {
			t.Fatalf("stage %d = %q, want %q (breakdown %v)", i, st.Stage, wantOrder[i], stats.Stages)
		}
		if st.Files != int64(len(inputs)) {
			t.Errorf("stage %s saw %d files, want %d", st.Stage, st.Files, len(inputs))
		}
		if st.Bytes != stats.Bytes {
			t.Errorf("stage %s saw %d bytes, want %d", st.Stage, st.Bytes, stats.Bytes)
		}
		if st.Duration < 0 {
			t.Errorf("stage %s has negative duration %v", st.Stage, st.Duration)
		}
	}

	total := stats.StageTotal()
	if total > stats.Duration {
		t.Fatalf("stage total %v exceeds wall time %v with one worker", total, stats.Duration)
	}
	// The stages are the scan: with one worker at least half the wall time
	// must be attributed (generous slack for scheduling noise on loaded
	// machines).
	if total < stats.Duration/2 {
		t.Fatalf("stage total %v accounts for under half the wall time %v", total, stats.Duration)
	}
}

func TestScanStagesSkipAfterParseFailure(t *testing.T) {
	swapOutObs(t)
	s := tinyScanner(t, ScanOptions{Workers: 1, StageStats: true}, features.Options{NGramDims: 128})
	inputs := []Input{
		{Path: "ok.js", Source: "var x = 1;"},
		{Path: "broken.js", Source: "function ("},
	}
	_, stats := s.ScanBatch(inputs)
	if stats.ParseFailures != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	byName := map[string]StageStats{}
	for _, st := range stats.Stages {
		byName[st.Stage] = st
	}
	if byName["parse"].Files != 2 {
		t.Fatalf("parse stage saw %d files, want 2", byName["parse"].Files)
	}
	// The broken file must not reach the later stages; without Explain the
	// rules stage runs for no file at all and is absent from the breakdown.
	if got := byName["flow"].Files; got != 1 {
		t.Fatalf("flow stage saw %d files, want 1", got)
	}
	if _, ok := byName["rules"]; ok {
		t.Fatalf("rules stage present without Explain: %+v", stats.Stages)
	}
	if got := byName["infer"].Files; got != 1 {
		t.Fatalf("infer stage saw %d files, want 1", got)
	}
}

// TestScanStagesCollectedUnderObs checks the second trigger: an enabled
// process-wide registry turns stage collection on and receives the per-file
// histograms.
func TestScanStagesCollectedUnderObs(t *testing.T) {
	swapOutObs(t)
	reg := obs.Enable()
	defer obs.Disable()
	s := tinyScanner(t, ScanOptions{Workers: 2}, features.Options{NGramDims: 128})
	inputs := scanInputs(5)
	_, stats := s.ScanBatch(inputs)
	if stats.Stages == nil {
		t.Fatal("Stages not collected while obs registry enabled")
	}
	snap := reg.Histogram("scan.stage.parse", obs.UnitNanoseconds).Snapshot()
	if snap.Count != int64(len(inputs)) {
		t.Fatalf("scan.stage.parse histogram count = %d, want %d", snap.Count, len(inputs))
	}
	if got := reg.Counter("scan.files").Value(); got != int64(len(inputs)) {
		t.Fatalf("scan.files counter = %d, want %d", got, len(inputs))
	}
}

func TestStageTotalSums(t *testing.T) {
	stats := ScanStats{Stages: []StageStats{
		{Stage: "parse", Duration: 3 * time.Millisecond},
		{Stage: "flow", Duration: 2 * time.Millisecond},
	}}
	if got := stats.StageTotal(); got != 5*time.Millisecond {
		t.Fatalf("StageTotal = %v, want 5ms", got)
	}
	if got := (ScanStats{}).StageTotal(); got != 0 {
		t.Fatalf("empty StageTotal = %v", got)
	}
}

// TestStageMetricNamesLockstep keeps the spelled-out obs histogram names in
// lockstep with the stage-name table: the names are literals (so the jslint
// obs-literal analyzer can check them against the manifest) and this test is
// what makes adding a stage without updating both tables fail.
func TestStageMetricNamesLockstep(t *testing.T) {
	for i, name := range stageNames {
		want := "scan.stage." + name
		if stageMetricNames[i] != want {
			t.Errorf("stageMetricNames[%d] = %q, want %q", i, stageMetricNames[i], want)
		}
		if !obs.KnownMetric(stageMetricNames[i]) {
			t.Errorf("stage metric %q is not in the internal/obs/metrics.go manifest", stageMetricNames[i])
		}
	}
}
