package core

import (
	"context"
	"crypto/sha256"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/features"
	"repro/internal/flow"
	"repro/internal/js/parser"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/triage"
)

// The batch scan engine classifies whole directories the way the paper's
// evaluation classifies the wild set (Section IV, 424k scripts): every file
// is parsed exactly once, and the resulting AST, flow graph, and indicator
// diagnostics are shared across the level 1 detector, the level 2 detector,
// and the -explain output. A worker pool provides the parallelism; results
// stream back in input order regardless of completion order.

// ScanOptions configures a Scanner.
type ScanOptions struct {
	// Workers is the worker pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Explain runs the static indicator rules on every file and attaches
	// the diagnostics to its FileResult. The rules run over the scan's
	// shared parse, so this does not add a parse pass.
	Explain bool
	// StageStats collects the per-stage timing/bytes breakdown into
	// ScanStats.Stages. Stage stats are also collected, regardless of this
	// setting, while the process-wide obs registry is enabled (jsdetect
	// -metrics); otherwise the scan skips the per-file clock reads.
	StageStats bool
	// ForceLevel2 ranks the transformation techniques for every parsed
	// file, not only the ones level 1 flags as transformed. The scan
	// service uses it so every response carries the full per-technique
	// probability vector; inference is ~0.1% of pipeline cost, so the
	// always-on ranking is effectively free.
	ForceLevel2 bool
	// Dedup enables the content-hash result cache: files whose SHA-256
	// matches an already-scanned file short-circuit the whole
	// parse/flow/rules/features/infer pipeline and replay the cached verdict
	// (with the repeat's own Path, and Deduped set). The cache lives on the
	// Scanner, so hits carry across ScanBatch/ScanStream calls.
	Dedup bool
	// DedupCapacity bounds the number of distinct contents the cache
	// retains (LRU eviction); <= 0 means DefaultDedupCapacity.
	DedupCapacity int
	// Triage enables the stage-0 pre-classifier: a single cheap pass over
	// the text routes high-confidence regular or plainly minified files
	// around the full parse→flow→features→infer pipeline, synthesizing the
	// verdict directly (FileResult.Bypassed). The router is conservative —
	// any obfuscation signal escalates to the full pipeline — and its
	// honesty is measured by TestTriageFalseBypassGate.
	Triage bool
	// TriageConfig tunes the triage router; the zero value uses the
	// documented defaults the false-bypass gate validates.
	TriageConfig triage.Config
	// DetachedGraphs opts out of the pooled flow plane: each file's flow
	// graph is deep-copied into self-contained storage instead of aliasing
	// the worker's flow.Session. The default (false) is safe for the
	// pipeline itself — the graph is consumed before the worker moves to
	// the next file and nothing in FileResult retains it — so this knob
	// exists for embedders who hook custom rules that stash graph or scope
	// pointers past the per-file scan.
	DetachedGraphs bool
	// VerdictStore, when non-nil, extends the in-memory dedup cache across
	// process restarts: completed verdicts are persisted to the store keyed
	// by content hash (salted with the model identity, so a store directory
	// can never serve verdicts computed by a different model or triage
	// configuration), and repeat content is answered from disk without
	// re-running the pipeline (FileResult.FromStore). The caller owns the
	// store's lifecycle; writes are best-effort (a failed append costs a
	// future rescan, never a wrong answer).
	VerdictStore *store.Store
}

func (o ScanOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// Input is one file to classify. Path is carried through to the result
// verbatim; Source is the JavaScript text (already extracted from HTML when
// the caller scans pages).
type Input struct {
	Path   string
	Source string
}

// FileResult is the verdict on one input. When Err is non-nil (the file did
// not parse), the classification fields are zero: one broken file never
// aborts the batch.
type FileResult struct {
	Path  string
	Bytes int
	// Level1 is the regular/minified/obfuscated verdict.
	Level1 Level1Result
	// Level2 ranks the transformation techniques; nil when level 1 did not
	// flag the file as transformed (unless the scan runs with ForceLevel2).
	Level2 *Level2Result
	// Diagnostics carries the static indicator findings when the scanner
	// runs with Explain.
	Diagnostics []analysis.Diagnostic
	// Err is the per-file failure, typically a parse error.
	Err error
	// Deduped marks a verdict replayed from the content-hash cache
	// (ScanOptions.Dedup): this input's bytes matched an earlier file, so
	// Level1/Level2/Diagnostics are shared with that file's result and must
	// be treated as read-only.
	Deduped bool
	// Bypassed marks a verdict synthesized by the stage-0 triage router
	// (ScanOptions.Triage) without running the full pipeline: Level1 carries
	// the routed class at full confidence and Level2/Diagnostics are empty.
	// The flag is part of the verdict — it survives the verdict store and
	// the dedup cache — so a replayed bypass still reports as one.
	Bypassed bool
	// FromStore marks a verdict answered from the on-disk verdict store
	// (ScanOptions.VerdictStore) rather than computed in this process. It
	// describes provenance, not the verdict: it is not persisted, and cache
	// replays of a store hit do not carry it.
	FromStore bool
}

// ScanStats aggregates one batch scan.
type ScanStats struct {
	// Files is the number of inputs processed (including failures).
	Files int
	// Bytes is the total source size scanned.
	Bytes int64
	// ParseFailures counts inputs whose Err is non-nil.
	ParseFailures int
	// Regular, Minified, Obfuscated, Transformed count level 1 verdicts at
	// the 0.5 decision threshold (Minified and Obfuscated can overlap;
	// Regular means not transformed).
	Regular, Minified, Obfuscated, Transformed int
	// Deduped counts inputs answered from the content-hash cache. Those
	// inputs still contribute to Files, Bytes, and the verdict counts.
	Deduped int
	// Bypassed counts inputs whose verdict the triage router synthesized
	// without the full pipeline (including bypassed verdicts replayed from
	// the cache or the store).
	Bypassed int
	// StoreHits counts inputs answered from the on-disk verdict store.
	StoreHits int
	// Duration is the wall-clock time of the scan.
	Duration time.Duration
	// Stages is the per-stage timing/bytes breakdown, in pipeline order.
	// It is nil unless the scan ran with ScanOptions.StageStats or with the
	// obs registry enabled. Stage durations are summed across workers and
	// cover every scanned file, including ones a cancelled scan never
	// emitted.
	Stages []StageStats
}

// FilesPerSec returns the scan throughput in files per second.
func (s ScanStats) FilesPerSec() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Files) / s.Duration.Seconds()
}

// BytesPerSec returns the scan throughput in source bytes per second.
func (s ScanStats) BytesPerSec() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Bytes) / s.Duration.Seconds()
}

// Scanner runs both detectors (and optionally the indicator rules) over
// batches of files with one parse per file. A Scanner is safe for concurrent
// use; each ScanBatch/ScanStream call runs its own worker pool.
type Scanner struct {
	l1, l2 *Detector
	// ext is the shared extractor: both detectors were validated to use the
	// same feature layout, so one vector per file feeds both.
	ext  *features.Extractor
	opts ScanOptions
	// cache is the content-hash dedup cache; nil unless opts.Dedup is set.
	cache *dedupCache
	// vstore is the persistent verdict store; nil unless the options carry
	// one. storeSalt folds the model identity (both serialized models) and
	// the triage configuration into every store key, so a shared store
	// directory can never serve a verdict this scanner would not produce.
	vstore    *store.Store
	storeSalt [sha256.Size]byte
}

// NewScanner validates that l1 and l2 are the expected levels with matching
// feature layouts and builds the batch engine around them.
func NewScanner(l1, l2 *Detector, opts ScanOptions) (*Scanner, error) {
	if err := l1.ValidateLabels(Level1Labels); err != nil {
		return nil, fmt.Errorf("core: level 1 model: %w", err)
	}
	if err := l2.ValidateLabels(Level2Labels()); err != nil {
		return nil, fmt.Errorf("core: level 2 model: %w", err)
	}
	if o1, o2 := l1.extractor.Options(), l2.extractor.Options(); o1 != o2 {
		return nil, fmt.Errorf("core: detectors use different feature options (%+v vs %+v); they cannot share a parse", o1, o2)
	}
	s := &Scanner{l1: l1, l2: l2, ext: l1.extractor, opts: opts}
	if opts.Dedup {
		s.cache = newDedupCache(opts.DedupCapacity)
	}
	if opts.VerdictStore != nil {
		s.vstore = opts.VerdictStore
		// The salt is a digest of everything a stored verdict depends on
		// besides the content: the serialized models (weights, not just
		// layout) and the cascade configuration. Serializing the models once
		// at construction costs milliseconds and buys the guarantee that a
		// retrained model silently misses instead of silently lying.
		h := sha256.New()
		if err := l1.Save(h); err != nil {
			return nil, fmt.Errorf("core: fingerprint level 1 model: %w", err)
		}
		if err := l2.Save(h); err != nil {
			return nil, fmt.Errorf("core: fingerprint level 2 model: %w", err)
		}
		fmt.Fprintf(h, "triage:%v:%+v;explain:%v;force2:%v",
			opts.Triage, opts.TriageConfig, opts.Explain, opts.ForceLevel2)
		h.Sum(s.storeSalt[:0])
	}
	return s, nil
}

// scanOne classifies one input through the cascade: in-memory dedup cache,
// then the on-disk verdict store, then the stage-0 triage router, then the
// full pipeline. Parse failures are cached and persisted too: the same bytes
// fail the same way. ps is the calling worker's reusable parser session.
func (s *Scanner) scanOne(in Input, acc *stageAcc, ps *parser.Session, fs *flow.Session) FileResult {
	if s.cache == nil && s.vstore == nil && !s.opts.Triage {
		return s.scanFile(in, acc, ps, fs)
	}
	var key dedupKey
	if s.cache != nil || s.vstore != nil {
		key = hashSource(in.Source)
	}
	if s.cache != nil {
		if r, ok := s.cache.get(key); ok {
			r.Path = in.Path
			r.Deduped = true
			return r
		}
	}
	if s.vstore != nil {
		if raw, ok := s.vstore.Get(s.storeKey(key)); ok {
			if r, err := decodeVerdict(raw); err == nil {
				obs.Add("scan.store.hit", 1)
				r.Path = in.Path
				r.Bytes = len(in.Source)
				r.FromStore = true
				s.cachePut(key, r)
				return r
			}
			// Undecodable (written by another codec version): treat as a
			// miss and overwrite with a fresh verdict below.
		}
		obs.Add("scan.store.miss", 1)
	}
	if s.opts.Triage {
		if d, _ := triage.Route(in.Source, s.opts.TriageConfig); d.Bypassed() {
			obs.Add("scan.triage.bypass", 1)
			out := FileResult{Path: in.Path, Bytes: len(in.Source), Bypassed: true}
			if d == triage.BypassMinified {
				out.Level1 = Level1Result{Minified: 1}
			} else {
				out.Level1 = Level1Result{Regular: 1}
			}
			s.persist(key, out)
			s.cachePut(key, out)
			return out
		}
		obs.Add("scan.triage.escalate", 1)
	}
	out := s.scanFile(in, acc, ps, fs)
	s.persist(key, out)
	s.cachePut(key, out)
	return out
}

// cachePut stores a completed result in the dedup cache. The Path is
// stripped (hits stamp their own) and so is FromStore: a memory replay of a
// store hit is a cache hit, not another store hit.
func (s *Scanner) cachePut(key dedupKey, r FileResult) {
	if s.cache == nil {
		return
	}
	r.Path = ""
	r.FromStore = false
	s.cache.put(key, r)
}

// persist writes a completed verdict to the store, best-effort: an encode or
// append failure costs a future rescan of the same content, never a wrong
// answer, so the scan does not abort on it.
func (s *Scanner) persist(key dedupKey, r FileResult) {
	if s.vstore == nil {
		return
	}
	raw, err := encodeVerdict(r)
	if err != nil {
		return
	}
	_ = s.vstore.Put(s.storeKey(key), raw)
}

// storeKey derives the verdict-store key for a content hash by folding in
// the scanner's model/config salt.
func (s *Scanner) storeKey(k dedupKey) store.Key {
	h := sha256.New()
	h.Write(k[:])
	h.Write(s.storeSalt[:])
	var out store.Key
	h.Sum(out[:0])
	return out
}

// StoreStats reports the verdict store's state; ok is false when the Scanner
// runs without one.
func (s *Scanner) StoreStats() (stats store.Stats, ok bool) {
	if s.vstore == nil {
		return store.Stats{}, false
	}
	return s.vstore.Stats(), true
}

// scanFile classifies one input: a single parse and flow graph feed the
// feature vector, both detectors, and (under Explain) the indicator rules.
// acc, when non-nil, receives the per-stage cost breakdown. ps and fs
// amortize parser, lexer, scope, and flow-graph state across the files this
// worker scans; the session-backed graph never outlives this call (see
// ScanOptions.DetachedGraphs for the opt-out).
func (s *Scanner) scanFile(in Input, acc *stageAcc, ps *parser.Session, fs *flow.Session) FileResult {
	out := FileResult{Path: in.Path, Bytes: len(in.Source)}
	t := newStageTimer(acc, len(in.Source))
	res, err := ps.ParseNoTokens(in.Source)
	t.tick(stageParse)
	if err != nil {
		out.Err = fmt.Errorf("parse: %w", err)
		return out
	}
	g := s.ext.FlowSession(fs, res)
	if s.opts.DetachedGraphs {
		g = g.Detach()
	}
	t.tick(stageFlow)
	var diags []analysis.Diagnostic
	if s.opts.Explain || s.ext.Options().RuleFeatures {
		diags = analysis.AnalyzeParsed(in.Source, res, g)
		t.tick(stageRules)
	}
	vec := s.ext.ExtractFull(in.Source, res, g, diags)
	t.tick(stageFeatures)
	out.Level1 = level1FromProbs(s.l1.ProbsVec(vec))
	if out.Level1.IsTransformed() || s.opts.ForceLevel2 {
		r := Level2FromProbs(s.l2.ProbsVec(vec))
		out.Level2 = &r
	}
	t.tick(stageInfer)
	if s.opts.Explain {
		out.Diagnostics = diags
	}
	return out
}

// ScanStream classifies inputs with the worker pool and calls emit once per
// input, in input order, as soon as every earlier input has been emitted.
// emit runs on the calling goroutine. The returned stats cover the whole
// batch.
func (s *Scanner) ScanStream(inputs []Input, emit func(i int, r FileResult)) ScanStats {
	stats, _ := s.ScanStreamContext(context.Background(), inputs, emit)
	return stats
}

// ScanStreamContext is ScanStream with cooperative cancellation. When ctx is
// cancelled mid-batch, no new work is dispatched, in-flight workers finish
// their current file and exit (the call does not return until the pool has
// drained), and emission stops at the first input whose result is not ready —
// so the emitted partial results are always a contiguous, input-ordered
// prefix. Stats cover only the emitted prefix. The error is ctx.Err() when
// the scan was cut short, nil otherwise.
func (s *Scanner) ScanStreamContext(ctx context.Context, inputs []Input, emit func(i int, r FileResult)) (ScanStats, error) {
	start := time.Now()
	n := len(inputs)
	var stats ScanStats
	if n == 0 || ctx.Err() != nil {
		stats.Duration = time.Since(start)
		return stats, ctx.Err()
	}
	workers := s.opts.workers()
	if workers > n {
		workers = n
	}

	var acc *stageAcc
	if s.opts.StageStats || obs.Enabled() {
		acc = &stageAcc{}
	}
	results := make([]FileResult, n)
	ready := make([]chan struct{}, n)
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One parser session and one flow session per worker: token
			// buffers, memo tables, lexer state, and the whole scope/flow
			// storage plane are reused across every file this worker scans.
			ps := parser.NewSession()
			fs := flow.NewSession()
			for i := range work {
				results[i] = s.scanOne(inputs[i], acc, ps, fs)
				close(ready[i])
			}
		}()
	}
	done := ctx.Done()
	go func() {
		defer close(work)
		for i := range inputs {
			select {
			case work <- i:
			case <-done:
				return
			}
		}
	}()

	var err error
	for i := range inputs {
		select {
		case <-ready[i]:
		default:
			// Not ready yet: wait, but let cancellation cut the batch short.
			// The non-blocking check above keeps already-finished results
			// flowing out even after cancellation, preserving the contiguous
			// prefix.
			select {
			case <-ready[i]:
			case <-done:
				err = ctx.Err()
			}
		}
		if err != nil {
			break
		}
		r := results[i]
		stats.Files++
		stats.Bytes += int64(r.Bytes)
		if r.Deduped {
			stats.Deduped++
		}
		if r.Bypassed {
			stats.Bypassed++
		}
		if r.FromStore {
			stats.StoreHits++
		}
		switch {
		case r.Err != nil:
			stats.ParseFailures++
		case r.Level1.IsTransformed():
			stats.Transformed++
			if r.Level1.IsMinified() {
				stats.Minified++
			}
			if r.Level1.IsObfuscated() {
				stats.Obfuscated++
			}
		default:
			stats.Regular++
		}
		if emit != nil {
			emit(i, r)
		}
	}
	wg.Wait()
	if acc != nil {
		stats.Stages = acc.stats()
	}
	stats.Duration = time.Since(start)
	obs.Add("scan.files", int64(stats.Files))
	obs.Add("scan.bytes", stats.Bytes)
	return stats, err
}

// ScanBatch classifies inputs and returns one FileResult per input, in input
// order, plus the batch stats.
func (s *Scanner) ScanBatch(inputs []Input) ([]FileResult, ScanStats) {
	out := make([]FileResult, 0, len(inputs))
	stats, _ := s.ScanStreamContext(context.Background(), inputs, func(i int, r FileResult) { out = append(out, r) })
	return out, stats
}

// ScanBatchContext is ScanBatch with cooperative cancellation: on early
// cancellation the returned slice holds only the contiguous input-ordered
// prefix that finished before the cut, and the error is ctx.Err().
func (s *Scanner) ScanBatchContext(ctx context.Context, inputs []Input) ([]FileResult, ScanStats, error) {
	out := make([]FileResult, 0, len(inputs))
	stats, err := s.ScanStreamContext(ctx, inputs, func(i int, r FileResult) { out = append(out, r) })
	return out, stats, err
}

// parallelFor runs fn(i) for every i in [0, n) across min(workers, n)
// goroutines and waits for completion; workers <= 0 means GOMAXPROCS. fn
// must be safe to call concurrently for distinct i.
func parallelFor(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}
