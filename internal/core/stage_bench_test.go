package core

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/features"
	"repro/internal/flow"
	"repro/internal/js/lexer"
	"repro/internal/js/parser"
	"repro/internal/ml"
)

// Per-stage benchmarks: each isolates one pipeline stage over the same batch
// BenchmarkScanBatch scans, so BENCH_4.json records where the scan's time
// goes (cmd/benchreg picks up the files/sec metric per stage). Later stages
// precompute everything upstream outside the timed loop.

// reportFilesPerSec attributes the batch size to the elapsed time so each
// stage's throughput lands in the baseline alongside ns/op.
func reportFilesPerSec(b *testing.B, files int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(files)*float64(b.N)/s, "files/sec")
	}
}

func BenchmarkStageLex(b *testing.B) {
	inputs := benchScanInputs(b)
	b.SetBytes(totalBytes(inputs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range inputs {
			l := lexer.New(in.Source)
			for {
				tok, err := l.Next()
				if err != nil {
					b.Fatalf("%s: %v", in.Path, err)
				}
				if tok.Kind == lexer.EOF {
					break
				}
			}
		}
	}
	reportFilesPerSec(b, len(inputs))
}

func BenchmarkStageParse(b *testing.B) {
	inputs := benchScanInputs(b)
	b.SetBytes(totalBytes(inputs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range inputs {
			// ParseNoTokens is what the scanner runs; token-collecting
			// Parse is benchmarked separately in the parser package.
			if _, err := parser.ParseNoTokens(in.Source); err != nil {
				b.Fatalf("%s: %v", in.Path, err)
			}
		}
	}
	reportFilesPerSec(b, len(inputs))
}

// parsedBatch parses the benchmark inputs once, outside the timed loop.
func parsedBatch(b *testing.B) ([]Input, []*parser.Result) {
	b.Helper()
	inputs := benchScanInputs(b)
	results := make([]*parser.Result, len(inputs))
	for i, in := range inputs {
		res, err := parser.ParseNoTokens(in.Source)
		if err != nil {
			b.Fatalf("%s: %v", in.Path, err)
		}
		results[i] = res
	}
	return inputs, results
}

func BenchmarkStageFlow(b *testing.B) {
	inputs, results := parsedBatch(b)
	// One session for the whole loop: the production shape, where each scan
	// worker holds a flow.Session and recycles the scope/flow plane across
	// every file it processes.
	fs := flow.NewSession()
	b.SetBytes(totalBytes(inputs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, res := range results {
			if g := fs.Build(res.Program, flow.Options{}); g == nil {
				b.Fatal("nil graph")
			}
		}
	}
	reportFilesPerSec(b, len(inputs))
}

func BenchmarkStageRules(b *testing.B) {
	inputs, results := parsedBatch(b)
	graphs := make([]*flow.Graph, len(results))
	for i, res := range results {
		graphs[i] = flow.Build(res.Program, flow.Options{})
	}
	b.SetBytes(totalBytes(inputs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, res := range results {
			analysis.AnalyzeParsed(inputs[j].Source, res, graphs[j])
		}
	}
	reportFilesPerSec(b, len(inputs))
}

func BenchmarkStageFeatures(b *testing.B) {
	inputs, results := parsedBatch(b)
	graphs := make([]*flow.Graph, len(results))
	diags := make([][]analysis.Diagnostic, len(results))
	for i, res := range results {
		graphs[i] = flow.Build(res.Program, flow.Options{})
		diags[i] = analysis.AnalyzeParsed(inputs[i].Source, res, graphs[i])
	}
	ex := features.NewExtractor(features.Options{NGramDims: 1024})
	b.SetBytes(totalBytes(inputs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, res := range results {
			if v := ex.ExtractFull(inputs[j].Source, res, graphs[j], diags[j]); len(v) == 0 {
				b.Fatal("empty vector")
			}
		}
	}
	reportFilesPerSec(b, len(inputs))
}

// deepChain builds a classifier chain of full binary trees so the inference
// benchmark walks realistic tree depths instead of the single-leaf stubs
// scanner tests use.
func deepChain(labels []string, trees, depth, dims int) ml.MultiTask {
	forests := make([]*ml.Forest, len(labels))
	for fi := range forests {
		ts := make([]*ml.Tree, trees)
		for ti := range ts {
			var nodes []ml.TreeNode
			// Complete binary tree in level order: node i has children
			// 2i+1 and 2i+2; the last level is all leaves.
			internal := (1 << depth) - 1
			total := (1 << (depth + 1)) - 1
			for i := 0; i < total; i++ {
				n := ml.TreeNode{Left: -1, Right: -1, Prob: float64(i%7) / 7}
				if i < internal {
					n.Feature = int32((fi + ti + i) % dims)
					n.Threshold = float64(i%5) / 5
					n.Left = int32(2*i + 1)
					n.Right = int32(2*i + 2)
				}
				nodes = append(nodes, n)
			}
			ts[ti] = &ml.Tree{Nodes: nodes}
		}
		forests[fi] = &ml.Forest{Trees: ts}
	}
	return &ml.Chain{Names: append([]string(nil), labels...), Forests: forests}
}

func BenchmarkStageInference(b *testing.B) {
	inputs, results := parsedBatch(b)
	ex := features.NewExtractor(features.Options{NGramDims: 1024})
	vectors := make([][]float64, len(results))
	for i, res := range results {
		g := flow.Build(res.Program, flow.Options{})
		vectors[i] = ex.ExtractFull(inputs[i].Source, res, g, nil)
	}
	dims := len(vectors[0])
	// Paper-scale shape: the level-2 chain with 25-tree forests of depth 8.
	model := deepChain(Level2Labels(), 25, 8, dims)
	b.SetBytes(totalBytes(inputs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range vectors {
			if probs := model.PredictProbs(v); len(probs) == 0 {
				b.Fatal("empty prediction")
			}
		}
	}
	reportFilesPerSec(b, len(inputs))
}
