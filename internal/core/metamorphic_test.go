package core

import (
	"testing"
)

// TestMetamorphicTechniqueProbability checks the metamorphic property behind
// the level 2 detector: applying technique T to a regular held-out file must
// not *decrease* the predicted probability of T's own label. The transformed
// variant carries strictly more of T's signal than the original, so a drop
// beyond noise means the label head is keying on something other than the
// technique. The sweep (and its tolerance) lives in MetamorphicSweep so the
// scan-service test enforces the identical property over HTTP; tolerance and
// the seed policy are documented in EXPERIMENTS.md ("Metamorphic detector
// check").
func TestMetamorphicTechniqueProbability(t *testing.T) {
	tr := getTrained(t)
	const maxFiles = 8 // held-out regular files sampled per technique

	files := tr.TestRegular
	if len(files) > maxFiles {
		files = files[:maxFiles]
	}
	if len(files) == 0 {
		t.Fatal("no held-out regular files")
	}

	violations, err := MetamorphicSweep(files, tr.Level2.Probs)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for _, v := range violations {
		t.Error(v)
	}
}
