package core

import (
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/transform"
)

// TestMetamorphicTechniqueProbability checks the metamorphic property behind
// the level 2 detector: applying technique T to a regular held-out file must
// not *decrease* the predicted probability of T's own label. The transformed
// variant carries strictly more of T's signal than the original, so a drop
// beyond noise means the label head is keying on something other than the
// technique. Tolerance (0.15 per file) and the seed policy are documented in
// EXPERIMENTS.md ("Metamorphic detector check").
func TestMetamorphicTechniqueProbability(t *testing.T) {
	tr := getTrained(t)
	const (
		tolerance = 0.15 // per-file allowed drop, small-forest vote noise
		maxFiles  = 8    // held-out regular files sampled per technique
	)

	files := tr.TestRegular
	if len(files) > maxFiles {
		files = files[:maxFiles]
	}
	if len(files) == 0 {
		t.Fatal("no held-out regular files")
	}

	for ti, tech := range transform.Techniques {
		tech := tech
		ti := ti
		t.Run(tech.String(), func(t *testing.T) {
			// One deterministic stream per technique so adding a technique or
			// a file never reshuffles another subtest's randomness.
			rng := rand.New(rand.NewSource(1000 + int64(ti)))
			for _, f := range files {
				before, err := tr.Level2.Probs(f.Source)
				if err != nil {
					t.Fatalf("probs(%s): %v", f.Name, err)
				}
				tf, err := corpus.Apply(f, rng, tech)
				if err != nil {
					t.Fatalf("apply %s to %s: %v", tech, f.Name, err)
				}
				after, err := tr.Level2.Probs(tf.Source)
				if err != nil {
					t.Fatalf("probs(transformed %s): %v", f.Name, err)
				}
				if after[ti] < before[ti]-tolerance {
					t.Errorf("%s: P(%s) dropped %.3f -> %.3f (tolerance %.2f)",
						f.Name, tech, before[ti], after[ti], tolerance)
				}
			}
		})
	}
}
