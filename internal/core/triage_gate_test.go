package core

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/corpus"
	"repro/internal/transform"
	"repro/internal/triage"
)

// TriageFalseBypassBudget is the disagreement rate the stage-0 cascade must
// stay under to earn its bypasses: across the gate corpus (regular files plus
// every technique's transform outputs), fewer than 1% of all files may be
// routed around the full pipeline with a verdict the pipeline itself would
// not have produced. The gate is a checked-in test, not a one-off calibration
// script: any threshold or feature change in internal/triage has to re-prove
// the budget here.
const TriageFalseBypassBudget = 0.01

// triageAgrees reports whether a stage-0 bypass verdict matches the full
// pipeline's level 1 verdict on the same bytes.
func triageAgrees(d triage.Decision, l1 Level1Result) bool {
	switch d {
	case triage.BypassRegular:
		return !l1.IsTransformed()
	case triage.BypassMinified:
		return l1.IsMinified() && !l1.IsObfuscated()
	default:
		return true // escalation always agrees: the pipeline decides
	}
}

// TestTriageFalseBypassGate measures the cascade's false-bypass rate against
// the full pipeline over regular corpus files plus all ten transform outputs
// and fails when it reaches TriageFalseBypassBudget. It also requires the
// cascade to actually bypass a useful fraction of the easy mass — a router
// that escalates everything passes any honesty gate and saves nothing.
func TestTriageFalseBypassGate(t *testing.T) {
	tr := getTrained(t)
	scanner, err := NewScanner(tr.Level1, tr.Level2, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := triage.Config{}

	rng := rand.New(rand.NewSource(8080))
	regular := corpus.RegularSet(60, rng)
	pool, err := corpus.TransformPool(regular, rng)
	if err != nil {
		t.Fatal(err)
	}

	type classStats struct {
		files, bypassed, disagree int
	}
	var total classStats
	perClass := make(map[string]*classStats)

	check := func(class string, files []corpus.File) {
		cs := &classStats{}
		perClass[class] = cs
		inputs := make([]Input, len(files))
		for i, f := range files {
			inputs[i] = Input{Path: f.Name, Source: f.Source}
		}
		results, _ := scanner.ScanBatch(inputs)
		for i, f := range files {
			if results[i].Err != nil {
				t.Fatalf("%s: pipeline failed: %v", f.Name, results[i].Err)
			}
			d, _ := triage.Route(f.Source, cfg)
			cs.files++
			total.files++
			if !d.Bypassed() {
				continue
			}
			cs.bypassed++
			total.bypassed++
			if !triageAgrees(d, results[i].Level1) {
				cs.disagree++
				total.disagree++
			}
		}
	}

	check("regular", regular)
	for _, tech := range transform.Techniques {
		check(tech.String(), pool[tech])
	}

	rate := float64(total.disagree) / float64(total.files)
	bypassRate := float64(total.bypassed) / float64(total.files)
	t.Logf("triage gate: %d files, %d bypassed (%.1f%%), %d disagreements (%.3f%%)",
		total.files, total.bypassed, 100*bypassRate, total.disagree, 100*rate)
	classes := make([]string, 0, len(perClass))
	for class := range perClass {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		cs := perClass[class]
		t.Logf("  %-24s files=%d bypassed=%d disagree=%d", class, cs.files, cs.bypassed, cs.disagree)
	}
	if rate >= TriageFalseBypassBudget {
		t.Errorf("false-bypass rate %.3f%% breaches the %.0f%% budget", 100*rate, 100*TriageFalseBypassBudget)
	}
	if bypassRate < 0.25 {
		t.Errorf("bypass rate %.1f%% is uselessly low: the cascade must route a real fraction of easy files", 100*bypassRate)
	}
}
