package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/js/parser"
	"repro/internal/ml"
	"repro/internal/transform"
)

// leafChain builds a constant-output classifier chain: every forest is a
// single leaf tree that always predicts its fixed probability. Scanner tests
// only exercise the batch plumbing, so the model's answer can be canned.
func leafChain(labels []string, probs []float64) ml.MultiTask {
	forests := make([]*ml.Forest, len(labels))
	for i := range forests {
		forests[i] = &ml.Forest{Trees: []*ml.Tree{
			{Nodes: []ml.TreeNode{{Feature: 0, Left: -1, Right: -1, Prob: probs[i]}}},
		}}
	}
	return &ml.Chain{Names: append([]string(nil), labels...), Forests: forests}
}

// tinyDetector builds a detector around a constant chain.
func tinyDetector(labels []string, probs []float64, featOpts features.Options) *Detector {
	return &Detector{extractor: features.NewExtractor(featOpts), model: leafChain(labels, probs)}
}

// tinyScanner pairs constant level 1 and level 2 detectors. The level 1
// probabilities flag every file as minified, so level 2 always runs.
func tinyScanner(t *testing.T, opts ScanOptions, featOpts features.Options) *Scanner {
	t.Helper()
	l1 := tinyDetector(Level1Labels, []float64{0.1, 0.9, 0.2}, featOpts)
	l2probs := make([]float64, len(transform.Techniques))
	for i := range l2probs {
		l2probs[i] = 0.9 - 0.05*float64(i)
	}
	l2 := tinyDetector(Level2Labels(), l2probs, featOpts)
	s, err := NewScanner(l1, l2, opts)
	if err != nil {
		t.Fatalf("NewScanner: %v", err)
	}
	return s
}

func scanInputs(n int) []Input {
	inputs := make([]Input, n)
	for i := range inputs {
		inputs[i] = Input{
			Path:   fmt.Sprintf("file_%03d.js", i),
			Source: fmt.Sprintf("var a%d = %d; function f%d(x) { return x + a%d; } f%d(1);", i, i, i, i, i),
		}
	}
	return inputs
}

// TestScanBatchParseOnce is the acceptance criterion: one parse per input,
// even with Explain attached, instead of the three parses of the serial
// classify-classify-analyze path.
func TestScanBatchParseOnce(t *testing.T) {
	s := tinyScanner(t, ScanOptions{Workers: 4, Explain: true}, features.Options{NGramDims: 256})
	inputs := scanInputs(6)
	before := parser.Parses()
	results, stats := s.ScanBatch(inputs)
	delta := parser.Parses() - before
	if delta != int64(len(inputs)) {
		t.Fatalf("scan of %d files used %d parses, want exactly one each", len(inputs), delta)
	}
	if stats.Files != len(inputs) || stats.ParseFailures != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
		if r.Level2 == nil {
			t.Fatalf("result %d: level 2 missing for transformed verdict", i)
		}
	}
}

// TestScanBatchParseOnceWithRuleFeatures covers the layout where the
// diagnostics feed both the feature vector and the Explain output.
func TestScanBatchParseOnceWithRuleFeatures(t *testing.T) {
	s := tinyScanner(t, ScanOptions{Workers: 2, Explain: true},
		features.Options{NGramDims: 256, RuleFeatures: true})
	inputs := scanInputs(4)
	before := parser.Parses()
	s.ScanBatch(inputs)
	if delta := parser.Parses() - before; delta != int64(len(inputs)) {
		t.Fatalf("rule-features scan used %d parses for %d files", delta, len(inputs))
	}
}

// TestScanForceLevel2 pins the ForceLevel2 contract: every parsed file gets
// a technique ranking, even ones level 1 calls regular, while the default
// keeps level 2 gated on the transformed verdict.
func TestScanForceLevel2(t *testing.T) {
	featOpts := features.Options{NGramDims: 256}
	// A level 1 that calls everything regular: level 2 only runs when forced.
	l1 := tinyDetector(Level1Labels, []float64{0.9, 0.1, 0.1}, featOpts)
	l2probs := make([]float64, len(transform.Techniques))
	for i := range l2probs {
		l2probs[i] = 0.3
	}
	l2 := tinyDetector(Level2Labels(), l2probs, featOpts)

	plain, err := NewScanner(l1, l2, ScanOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	forced, err := NewScanner(l1, l2, ScanOptions{Workers: 1, ForceLevel2: true})
	if err != nil {
		t.Fatal(err)
	}

	inputs := scanInputs(3)
	inputs[1] = Input{Path: "broken.js", Source: "function ( {{{"}
	got, _ := plain.ScanBatch(inputs)
	for i, r := range got {
		if r.Level2 != nil {
			t.Errorf("default scan attached level 2 to regular file %d", i)
		}
	}
	got, _ = forced.ScanBatch(inputs)
	for i, r := range got {
		if i == 1 {
			if r.Level2 != nil {
				t.Error("forced level 2 must still skip parse failures")
			}
			continue
		}
		if r.Level2 == nil {
			t.Fatalf("forced scan missing level 2 on file %d", i)
		}
		if n := len(r.Level2.Ranked); n != len(transform.Techniques) {
			t.Fatalf("forced level 2 ranked %d techniques, want %d", n, len(transform.Techniques))
		}
	}
}

// TestScanBatchErrorIsolation checks that one unparseable file is reported
// in place without aborting or shifting the rest of the batch.
func TestScanBatchErrorIsolation(t *testing.T) {
	s := tinyScanner(t, ScanOptions{Workers: 4}, features.Options{NGramDims: 256})
	inputs := scanInputs(5)
	inputs[2] = Input{Path: "broken.js", Source: "function ( {{{"}
	results, stats := s.ScanBatch(inputs)
	for i, r := range results {
		if i == 2 {
			if r.Err == nil {
				t.Fatal("broken file must carry its parse error")
			}
			if !strings.Contains(r.Err.Error(), "parse") {
				t.Fatalf("error should name the parse failure: %v", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("healthy file %d failed: %v", i, r.Err)
		}
	}
	if stats.ParseFailures != 1 {
		t.Fatalf("ParseFailures = %d, want 1", stats.ParseFailures)
	}
	if stats.Transformed != 4 {
		t.Fatalf("Transformed = %d, want 4", stats.Transformed)
	}
}

// TestScanStreamOrder checks in-order delivery under a pool wider than the
// batch is deep, and that two runs produce identical results.
func TestScanStreamOrder(t *testing.T) {
	s := tinyScanner(t, ScanOptions{Workers: 8}, features.Options{NGramDims: 256})
	inputs := scanInputs(40)
	var order []int
	var paths []string
	s.ScanStream(inputs, func(i int, r FileResult) {
		order = append(order, i)
		paths = append(paths, r.Path)
	})
	for i, got := range order {
		if got != i {
			t.Fatalf("emit order %v is not input order", order)
		}
	}
	for i := range paths {
		if paths[i] != inputs[i].Path {
			t.Fatalf("result %d has path %q, want %q", i, paths[i], inputs[i].Path)
		}
	}
	run1, stats1 := s.ScanBatch(inputs)
	run2, stats2 := s.ScanBatch(inputs)
	if !reflect.DeepEqual(run1, run2) {
		t.Fatal("two scans of the same batch differ")
	}
	if stats1.Files != stats2.Files || stats1.Transformed != stats2.Transformed {
		t.Fatalf("stats differ: %+v vs %+v", stats1, stats2)
	}
}

func TestScanBatchEmpty(t *testing.T) {
	s := tinyScanner(t, ScanOptions{}, features.Options{NGramDims: 256})
	results, stats := s.ScanBatch(nil)
	if len(results) != 0 || stats.Files != 0 {
		t.Fatalf("empty batch: %v, %+v", results, stats)
	}
}

// TestNewScannerRejectsSwappedLevels is the satellite bugfix: handing the
// level 2 model to the level 1 slot must error instead of panicking later.
func TestNewScannerRejectsSwappedLevels(t *testing.T) {
	featOpts := features.Options{NGramDims: 256}
	l1 := tinyDetector(Level1Labels, []float64{0.1, 0.9, 0.2}, featOpts)
	l2probs := make([]float64, len(transform.Techniques))
	l2 := tinyDetector(Level2Labels(), l2probs, featOpts)
	if _, err := NewScanner(l2, l1, ScanOptions{}); err == nil {
		t.Fatal("swapped detectors must be rejected")
	} else if !strings.Contains(err.Error(), "swapped") {
		t.Fatalf("error should hint at the swap: %v", err)
	}
}

func TestNewScannerRejectsMismatchedFeatureOptions(t *testing.T) {
	l1 := tinyDetector(Level1Labels, []float64{0.1, 0.9, 0.2}, features.Options{NGramDims: 256})
	l2probs := make([]float64, len(transform.Techniques))
	l2 := tinyDetector(Level2Labels(), l2probs, features.Options{NGramDims: 512})
	if _, err := NewScanner(l1, l2, ScanOptions{}); err == nil {
		t.Fatal("mismatched feature layouts must be rejected")
	} else if !strings.Contains(err.Error(), "feature options") {
		t.Fatalf("error should name the option mismatch: %v", err)
	}
}

// TestLoadRejectsFingerprintMismatch exercises the v2 model header end to
// end at the core level: each divergence is named in the error.
func TestLoadRejectsFingerprintMismatch(t *testing.T) {
	d := tinyDetector(Level1Labels, []float64{0.1, 0.9, 0.2}, features.Options{NGramDims: 512})
	save := func() *bytes.Buffer {
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	if _, err := Load(save(), features.Options{NGramDims: 256}); err == nil {
		t.Fatal("dims mismatch must fail")
	} else if !strings.Contains(err.Error(), "n-gram dims") {
		t.Fatalf("error should name the dims mismatch: %v", err)
	}
	if _, err := Load(save(), features.Options{NGramDims: 512, NGramLen: 3}); err == nil {
		t.Fatal("n-gram length mismatch must fail")
	} else if !strings.Contains(err.Error(), "length") {
		t.Fatalf("error should name the length mismatch: %v", err)
	}
	if _, err := Load(save(), features.Options{NGramDims: 512, RuleFeatures: true}); err == nil {
		t.Fatal("rule-features mismatch must fail")
	} else if !strings.Contains(err.Error(), "rule features") {
		t.Fatalf("error should name the rule-features mismatch: %v", err)
	}
	if _, err := Load(save(), features.Options{NGramDims: 512}); err != nil {
		t.Fatalf("matching options must load: %v", err)
	}
}

func TestValidateLabels(t *testing.T) {
	d := tinyDetector(Level1Labels, []float64{0.1, 0.9, 0.2}, features.Options{NGramDims: 256})
	if err := d.ValidateLabels(Level1Labels); err != nil {
		t.Fatalf("matching labels rejected: %v", err)
	}
	if err := d.ValidateLabels(Level2Labels()); err == nil {
		t.Fatal("level 2 labels must be rejected on a level 1 model")
	}
	if err := d.ValidateLabels([]string{"regular", "minified", "packed"}); err == nil {
		t.Fatal("renamed class must be rejected")
	}
}

// TestParallelTrainDeterministic checks that the worker-pool feature
// extraction inside trainDetector keeps training byte-for-byte reproducible:
// vectors land at fixed indices, so goroutine scheduling cannot reorder the
// training set.
func TestParallelTrainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	files := corpus.RegularSet(12, rng)
	opts := Options{
		Features: features.Options{NGramDims: 128},
		Forest:   ml.ForestOptions{NumTrees: 3, Tree: ml.TreeOptions{MTry: 16}},
		Seed:     5,
	}
	save := func() []byte {
		d, err := TrainLevel1(files, opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(save(), save()) {
		t.Fatal("parallel feature extraction made training nondeterministic")
	}
}

// TestParallelFor covers the pool helper's edge cases.
func TestParallelFor(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 100} {
		hits := make([]int, 37)
		parallelFor(len(hits), workers, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
	parallelFor(0, 4, func(int) { t.Fatal("fn must not run for n=0") })
}

// TestDetachedGraphsEquivalent pins the DetachedGraphs opt-out: detaching
// each file's flow graph from the worker's pooled session must not change
// any verdict, diagnostic, or stat — it only changes who owns the graph
// storage.
func TestDetachedGraphsEquivalent(t *testing.T) {
	featOpts := features.Options{NGramDims: 256, RuleFeatures: true}
	pooled := tinyScanner(t, ScanOptions{Workers: 2, Explain: true}, featOpts)
	detached := tinyScanner(t, ScanOptions{Workers: 2, Explain: true, DetachedGraphs: true}, featOpts)
	inputs := scanInputs(8)
	a, aStats := pooled.ScanBatch(inputs)
	b, bStats := detached.ScanBatch(inputs)
	if aStats.Transformed != bStats.Transformed || aStats.ParseFailures != bStats.ParseFailures {
		t.Fatalf("stats diverge: pooled %+v, detached %+v", aStats, bStats)
	}
	for i := range a {
		if a[i].Level1 != b[i].Level1 {
			t.Fatalf("result %d: level 1 %+v vs %+v", i, a[i].Level1, b[i].Level1)
		}
		if (a[i].Level2 == nil) != (b[i].Level2 == nil) {
			t.Fatalf("result %d: level 2 presence diverges", i)
		}
		if a[i].Level2 != nil && !reflect.DeepEqual(*a[i].Level2, *b[i].Level2) {
			t.Fatalf("result %d: level 2 %+v vs %+v", i, *a[i].Level2, *b[i].Level2)
		}
		if !reflect.DeepEqual(a[i].Diagnostics, b[i].Diagnostics) {
			t.Fatalf("result %d: diagnostics diverge", i)
		}
	}
}
