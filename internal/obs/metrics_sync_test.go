// External test package: the sync check imports internal/lint (whose
// analyzers import obs for the manifest), so an in-package test file would
// form an import cycle.
package obs_test

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"

	"repro/internal/lint"
	"repro/internal/obs"
)

// TestMetricsManifestInSync regenerates the metrics manifest from every obs
// call in the tree and fails on any drift from the checked-in
// internal/obs/metrics.go: a metric recorded anywhere but missing from the
// manifest, a stale manifest entry nothing records anymore, or a hand edit to
// the generated naming. `go run ./cmd/jslint -gen-metrics` refreshes the
// file (Help strings are preserved).
func TestMetricsManifestInSync(t *testing.T) {
	moduleDir, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(moduleDir, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", moduleDir, err)
	}
	uses, errs := lint.ScanMetricUses(moduleDir)
	for _, e := range errs {
		t.Errorf("unresolvable metric name: %v", e)
	}
	if len(uses) == 0 {
		t.Fatal("metric scan found no obs calls in the tree")
	}
	want, err := lint.GenMetricsSource(uses)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(moduleDir, "internal", "obs", "metrics.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("internal/obs/metrics.go is out of sync with the tree's obs calls; run `go run ./cmd/jslint -gen-metrics`")
	}
}

// TestManifestEntriesWellFormed pins the manifest's own invariants: sorted
// unique dotted-lowercase names, valid kinds, units only on histograms, and
// a Help string on every entry (regeneration preserves Help, so an empty one
// means a new metric was registered without documentation).
func TestManifestEntriesWellFormed(t *testing.T) {
	nameRE := regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$`)
	if len(obs.Metrics) == 0 {
		t.Fatal("empty manifest")
	}
	names := make([]string, 0, len(obs.Metrics))
	for _, m := range obs.Metrics {
		names = append(names, m.Name)
		if !nameRE.MatchString(m.Name) {
			t.Errorf("metric %q is not dotted-lowercase", m.Name)
		}
		switch m.Kind {
		case "counter":
			if m.Unit != "" {
				t.Errorf("counter %q carries unit %q", m.Name, m.Unit)
			}
		case "histogram":
			if m.Unit == "" {
				t.Errorf("histogram %q has no unit", m.Name)
			}
		default:
			t.Errorf("metric %q has unknown kind %q", m.Name, m.Kind)
		}
		if m.Help == "" {
			t.Errorf("metric %q has no Help — document it in internal/obs/metrics.go", m.Name)
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Error("manifest is not sorted by name")
	}
	for i := 1; i < len(names); i++ {
		if names[i] == names[i-1] {
			t.Errorf("duplicate manifest entry %q", names[i])
		}
	}
}

// TestKnownMetric pins the lookup the obs-literal analyzer depends on.
func TestKnownMetric(t *testing.T) {
	for _, m := range obs.Metrics {
		if !obs.KnownMetric(m.Name) {
			t.Errorf("KnownMetric(%q) = false for a manifest entry", m.Name)
		}
	}
	for _, name := range []string{"", "scan", "scan.stage.bogus", "SCAN.FILES"} {
		if obs.KnownMetric(name) {
			t.Errorf("KnownMetric(%q) = true, want false", name)
		}
	}
}
