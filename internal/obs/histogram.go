package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// numBuckets covers every non-negative int64: bucket i holds values whose
// bit length is i, i.e. bucket 0 is exactly 0 and bucket i>0 spans
// [2^(i-1), 2^i). Powers-of-two resolution is coarse, but it needs no
// configuration, never rebuckets, and spans nanoseconds to minutes (and
// bytes to gigabytes) in 64 fixed cells — the right trade for an
// always-compiled-in layer.
const numBuckets = 64

// Histogram is a lock-free log2-bucketed histogram of non-negative values.
type Histogram struct {
	name    string
	unit    Unit
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

func newHistogram(name string, unit Unit) *Histogram {
	h := &Histogram{name: name, unit: unit}
	h.min.Store(math.MaxInt64)
	return h
}

// Name returns the histogram's registry name.
func (h *Histogram) Name() string { return h.name }

// Unit returns what the histogram's values measure.
func (h *Histogram) Unit() Unit { return h.unit }

// Observe records one value. Negative values are clamped to zero (durations
// measured across a clock step can come out negative).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Bucket is one non-empty histogram cell: Count values in (Lo, Hi].
type Bucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Name    string   `json:"name"`
	Unit    Unit     `json:"unit"`
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state. Concurrent observations may
// straddle the copy; the snapshot is internally consistent enough for
// reporting (count matches the bucket total at the moment each cell is
// read).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Name:  h.name,
		Unit:  h.unit,
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Min:   h.min.Load(),
		Max:   h.max.Load(),
	}
	if s.Count == 0 {
		s.Min = 0
		return s
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		s.Buckets = append(s.Buckets, Bucket{Lo: bucketLo(i), Hi: bucketHi(i), Count: n})
	}
	return s
}

func bucketLo(i int) int64 {
	if i == 0 {
		return 0
	}
	return 1 << (i - 1)
}

func bucketHi(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return 1<<i - 1
}

// Mean returns the average observed value, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1)
// from the log2 buckets: the upper edge of the bucket holding the q-th
// observation, clamped to the observed max.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			if b.Hi > s.Max {
				return s.Max
			}
			return b.Hi
		}
	}
	return s.Max
}
