package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// CounterSnapshot is a point-in-time copy of one counter.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot is a point-in-time copy of a whole registry, sorted by name.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state with deterministic ordering.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	r.mu.RLock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.RUnlock()
	for _, c := range counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: c.name, Value: c.Value()})
	}
	for _, h := range hists {
		s.Histograms = append(s.Histograms, h.Snapshot())
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteJSON writes the snapshot as one JSON object.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot as aligned human-readable tables.
func (s Snapshot) WriteText(w io.Writer) {
	if len(s.Counters) > 0 {
		fmt.Fprintf(w, "counters:\n")
		width := 0
		for _, c := range s.Counters {
			if len(c.Name) > width {
				width = len(c.Name)
			}
		}
		for _, c := range s.Counters {
			fmt.Fprintf(w, "  %-*s %12d\n", width, c.Name, c.Value)
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintf(w, "histograms:\n")
		width := 0
		for _, h := range s.Histograms {
			if len(h.Name) > width {
				width = len(h.Name)
			}
		}
		fmt.Fprintf(w, "  %-*s %10s %12s %12s %12s %12s %12s\n",
			width, "name", "count", "sum", "mean", "p50", "p99", "max")
		for _, h := range s.Histograms {
			fmt.Fprintf(w, "  %-*s %10d %12s %12s %12s %12s %12s\n",
				width, h.Name, h.Count,
				formatValue(h.Sum, h.Unit),
				formatValue(int64(h.Mean()), h.Unit),
				formatValue(h.Quantile(0.50), h.Unit),
				formatValue(h.Quantile(0.99), h.Unit),
				formatValue(h.Max, h.Unit))
		}
	}
}

// formatValue renders a histogram value in its unit: durations as
// time.Duration strings, bytes with binary suffixes, counts as plain
// integers.
func formatValue(v int64, unit Unit) string {
	switch unit {
	case UnitNanoseconds:
		return time.Duration(v).Round(time.Microsecond).String()
	case UnitBytes:
		return formatBytes(v)
	default:
		return fmt.Sprintf("%d", v)
	}
}

func formatBytes(v int64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%dB", v)
	}
}
