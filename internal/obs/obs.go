// Package obs is the pipeline's observability layer: named counters and
// log2-bucketed histograms behind an atomically swapped registry. The hot
// path (lexer, parser, flow, features, forest inference, batch scanner) is
// instrumented unconditionally; whether the instrumentation records anything
// is decided by a single atomic pointer load. With no registry installed
// every recording call is a load-and-branch, so production scans that do not
// ask for metrics pay near-zero overhead (measured <2% on BenchmarkScanBatch,
// see EXPERIMENTS.md).
//
// Enable installs a process-wide registry; Swap atomically replaces it (or
// removes it with nil), which is how tests and the CLI scope a measurement
// window: swap a fresh registry in, run the workload, swap it back out, and
// snapshot the detached registry without racing later recordings.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// active is the process-wide registry; nil means disabled.
var active atomic.Pointer[Registry]

// Enable installs a fresh registry if none is active and returns the active
// one.
func Enable() *Registry {
	for {
		if r := active.Load(); r != nil {
			return r
		}
		r := NewRegistry()
		if active.CompareAndSwap(nil, r) {
			return r
		}
	}
}

// Disable removes the active registry and returns it (nil when none was
// installed). The returned registry is detached: it can be snapshotted
// without concurrent recordings mutating it.
func Disable() *Registry { return active.Swap(nil) }

// Swap atomically installs r (which may be nil) and returns the previous
// registry.
func Swap(r *Registry) *Registry { return active.Swap(r) }

// Enabled reports whether a registry is installed.
func Enabled() bool { return active.Load() != nil }

// Get returns the active registry, or nil.
func Get() *Registry { return active.Load() }

// Add increments the named counter when metrics are enabled.
func Add(name string, n int64) {
	if r := active.Load(); r != nil {
		r.Counter(name).Add(n)
	}
}

// Observe records one value in the named histogram when metrics are enabled.
func Observe(name string, unit Unit, v int64) {
	if r := active.Load(); r != nil {
		r.Histogram(name, unit).Observe(v)
	}
}

// ObserveDuration records a duration in the named nanosecond histogram when
// metrics are enabled.
func ObserveDuration(name string, d time.Duration) {
	Observe(name, UnitNanoseconds, int64(d))
}

var nop = func() {}

// Time starts a duration measurement for the named histogram and returns the
// function that ends it. When metrics are disabled it returns a shared no-op
// without reading the clock, so the idiom
//
//	defer obs.Time("flow.build")()
//
// costs one atomic load on the disabled path.
func Time(name string) func() {
	if active.Load() == nil {
		return nop
	}
	start := time.Now()
	return func() { ObserveDuration(name, time.Since(start)) }
}

// Unit tags what a histogram's values measure.
type Unit string

// Histogram units.
const (
	UnitNanoseconds Unit = "ns"
	UnitBytes       Unit = "bytes"
	UnitCount       Unit = "count"
)

// Registry holds named counters and histograms. Creation is guarded by a
// mutex; recording on an existing instrument is lock-free.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use. The unit
// is fixed by the first caller.
func (r *Registry) Histogram(name string, unit Unit) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(name, unit)
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically growing named value.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the counter's registry name.
func (c *Counter) Name() string { return c.name }
