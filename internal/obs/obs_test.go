package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// swapOut detaches any registry a concurrent test (or a previous failure)
// left installed and restores it on cleanup, so tests of the global switch
// do not leak state.
func swapOut(t *testing.T) {
	t.Helper()
	prev := Swap(nil)
	t.Cleanup(func() { Swap(prev) })
}

func TestDisabledByDefault(t *testing.T) {
	swapOut(t)
	if Enabled() {
		t.Fatal("metrics enabled with no registry installed")
	}
	// Recording with no registry must be a no-op, not a panic.
	Add("x", 1)
	Observe("y", UnitCount, 5)
	ObserveDuration("z", time.Millisecond)
	Time("w")()
	if Get() != nil {
		t.Fatal("Get returned a registry while disabled")
	}
}

func TestEnableDisableSwap(t *testing.T) {
	swapOut(t)
	r := Enable()
	if r == nil || !Enabled() {
		t.Fatal("Enable did not install a registry")
	}
	if Enable() != r {
		t.Fatal("second Enable replaced the registry")
	}
	Add("scanned", 3)
	Add("scanned", 4)
	if got := r.Counter("scanned").Value(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	detached := Disable()
	if detached != r {
		t.Fatal("Disable returned a different registry")
	}
	if Enabled() {
		t.Fatal("still enabled after Disable")
	}
	// Recordings after Disable must not land in the detached registry.
	Add("scanned", 100)
	if got := detached.Counter("scanned").Value(); got != 7 {
		t.Fatalf("detached counter mutated to %d", got)
	}
	// Swap installs a specific registry.
	r2 := NewRegistry()
	if prev := Swap(r2); prev != nil {
		t.Fatalf("Swap returned %v, want nil", prev)
	}
	Add("other", 1)
	if got := r2.Counter("other").Value(); got != 1 {
		t.Fatalf("swapped-in registry counter = %d, want 1", got)
	}
	Swap(nil)
}

func TestCounterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("a")
	if r.Counter("a") != a {
		t.Fatal("Counter did not return the existing instance")
	}
	if a.Name() != "a" {
		t.Fatalf("Name = %q", a.Name())
	}
}

func TestHistogramBasics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", UnitNanoseconds)
	if r.Histogram("lat", UnitNanoseconds) != h {
		t.Fatal("Histogram did not return the existing instance")
	}
	for _, v := range []int64{0, 1, 2, 3, 100, 1000, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Sum != 0+1+2+3+100+1000+0 {
		t.Fatalf("sum = %d", s.Sum)
	}
	if s.Min != 0 {
		t.Fatalf("min = %d, want 0 (negative clamped)", s.Min)
	}
	if s.Max != 1000 {
		t.Fatalf("max = %d, want 1000", s.Max)
	}
	if s.Unit != UnitNanoseconds || h.Unit() != UnitNanoseconds || h.Name() != "lat" {
		t.Fatal("unit/name not preserved")
	}
	var total int64
	for _, b := range s.Buckets {
		if b.Count == 0 {
			t.Fatal("snapshot contains empty bucket")
		}
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	h := newHistogram("empty", UnitCount)
	s := h.Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	if s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty snapshot mean/quantile not zero")
	}
}

func TestBucketBounds(t *testing.T) {
	// Bucket 0 is exactly {0}; bucket i>0 spans [2^(i-1), 2^i).
	cases := []struct {
		i      int
		lo, hi int64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 4, 7},
		{10, 512, 1023},
		{63, 1 << 62, math.MaxInt64},
	}
	for _, c := range cases {
		if lo := bucketLo(c.i); lo != c.lo {
			t.Errorf("bucketLo(%d) = %d, want %d", c.i, lo, c.lo)
		}
		if hi := bucketHi(c.i); hi != c.hi {
			t.Errorf("bucketHi(%d) = %d, want %d", c.i, hi, c.hi)
		}
	}
}

func TestQuantile(t *testing.T) {
	h := newHistogram("q", UnitCount)
	// 90 small values, 10 large ones: p50 must land in the small bucket
	// range, p99 in the large one.
	for i := 0; i < 90; i++ {
		h.Observe(10) // bucket [8,15]
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000) // bucket [512,1023]
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q < 10 || q > 15 {
		t.Fatalf("p50 = %d, want within [10,15]", q)
	}
	// The p99 estimate is the bucket's upper edge clamped to the max.
	if q := s.Quantile(0.99); q != 1000 {
		t.Fatalf("p99 = %d, want 1000 (clamped to max)", q)
	}
	if q := s.Quantile(0); q < 10 || q > 15 {
		t.Fatalf("q=0 clamps to first observation bucket, got %d", q)
	}
}

func TestMean(t *testing.T) {
	h := newHistogram("m", UnitCount)
	h.Observe(10)
	h.Observe(30)
	if m := h.Snapshot().Mean(); m != 20 {
		t.Fatalf("mean = %v, want 20", m)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	prev := Swap(r)
	defer Swap(prev)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				Add("n", 1)
				Observe("v", UnitCount, int64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	s := r.Histogram("v", UnitCount).Snapshot()
	if s.Count != workers*per {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*per)
	}
	if s.Max != per-1 {
		t.Fatalf("max = %d, want %d", s.Max, per-1)
	}
}

func TestSnapshotOrderingAndRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Histogram("z.lat", UnitNanoseconds).Observe(int64(3 * time.Millisecond))
	r.Histogram("a.size", UnitBytes).Observe(2048)
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a.count" || s.Counters[1].Name != "b.count" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if len(s.Histograms) != 2 || s.Histograms[0].Name != "a.size" {
		t.Fatalf("histograms not sorted: %+v", s.Histograms)
	}

	var text strings.Builder
	s.WriteText(&text)
	out := text.String()
	for _, want := range []string{"a.count", "b.count", "z.lat", "a.size", "2.00KiB", "ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}

	var jsonOut strings.Builder
	if err := s.WriteJSON(&jsonOut); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(jsonOut.String()), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if len(back.Counters) != 2 || back.Counters[1].Value != 2 {
		t.Fatalf("round-tripped snapshot = %+v", back)
	}
}

func TestTimeRecordsDuration(t *testing.T) {
	swapOut(t)
	r := Enable()
	stop := Time("op")
	time.Sleep(2 * time.Millisecond)
	stop()
	s := r.Histogram("op", UnitNanoseconds).Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d, want 1", s.Count)
	}
	if s.Sum < int64(time.Millisecond) {
		t.Fatalf("recorded duration %v implausibly small", time.Duration(s.Sum))
	}
	Disable()
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    int64
		unit Unit
		want string
	}{
		{1500000, UnitNanoseconds, "1.5ms"},
		{512, UnitBytes, "512B"},
		{3 << 20, UnitBytes, "3.00MiB"},
		{5 << 30, UnitBytes, "5.00GiB"},
		{42, UnitCount, "42"},
	}
	for _, c := range cases {
		if got := formatValue(c.v, c.unit); got != c.want {
			t.Errorf("formatValue(%d, %s) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}
