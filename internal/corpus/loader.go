package corpus

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// LoadStats summarizes what a directory load kept and dropped, mirroring
// the paper's corpus-filter accounting.
type LoadStats struct {
	Accepted   int
	TooSmall   int
	TooLarge   int
	NoCode     int
	Unparsable int
	Skipped    int // non-.js entries
}

// String renders the stats.
func (s LoadStats) String() string {
	return fmt.Sprintf("accepted %d (too small %d, too large %d, no code %d, unparsable %d, skipped %d)",
		s.Accepted, s.TooSmall, s.TooLarge, s.NoCode, s.Unparsable, s.Skipped)
}

// LoadDir reads every .js file under dir (recursively) and applies the
// paper's corpus filters. It is the entry point for running the detector on
// real collections instead of the synthesized ones.
func LoadDir(dir string) ([]File, LoadStats, error) {
	var files []File
	var stats LoadStats
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if !strings.HasSuffix(strings.ToLower(d.Name()), ".js") {
			stats.Skipped++
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("read %s: %w", path, err)
		}
		src := string(data)
		switch Filter(src) {
		case FilterAccepted:
			stats.Accepted++
			rel, relErr := filepath.Rel(dir, path)
			if relErr != nil {
				rel = path
			}
			files = append(files, File{Name: rel, Source: src})
		case FilterTooSmall:
			stats.TooSmall++
		case FilterTooLarge:
			stats.TooLarge++
		case FilterNoCode:
			stats.NoCode++
		case FilterUnparsable:
			stats.Unparsable++
		}
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	return files, stats, nil
}
