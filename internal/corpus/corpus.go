package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/js/ast"
	"repro/internal/js/parser"
	"repro/internal/js/walker"
	"repro/internal/transform"
)

// File is one corpus member with its ground-truth labels.
type File struct {
	// Name identifies the file in reports.
	Name string
	// Source is the JavaScript text.
	Source string
	// Techniques is the ground-truth set of transformation techniques that
	// produced the file; empty means regular.
	Techniques []transform.Technique
	// Rank is the 1-based popularity rank of the owning site/package, when
	// the file belongs to a ranked collection.
	Rank int
	// Origin tags the collection ("alexa", "npm", "dnc", "hynek", "bsi").
	Origin string
	// Month indexes the crawl month for longitudinal collections (0-64 for
	// 2015-05 through 2020-09).
	Month int
}

// Transformed reports whether the file carries any technique label.
func (f *File) Transformed() bool { return len(f.Techniques) > 0 }

// Minified reports whether a minification technique was applied.
func (f *File) Minified() bool {
	for _, t := range f.Techniques {
		if t.IsMinification() {
			return true
		}
	}
	return false
}

// Obfuscated reports whether an obfuscation technique was applied.
func (f *File) Obfuscated() bool {
	for _, t := range f.Techniques {
		if !t.IsMinification() {
			return true
		}
	}
	return false
}

// Has reports whether the file carries the given technique label.
func (f *File) Has(t transform.Technique) bool {
	for _, have := range f.Techniques {
		if have == t {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Paper filters (Section III-D1)
// ---------------------------------------------------------------------------

// FilterReason explains why Filter rejected a file.
type FilterReason int

// Filter outcomes.
const (
	FilterAccepted FilterReason = iota + 1
	FilterTooSmall
	FilterTooLarge
	FilterNoCode
	FilterUnparsable
)

// MinSize and MaxSize are the paper's corpus bounds: 512 bytes to 2 MB.
const (
	MinSize = 512
	MaxSize = 2 << 20
)

// Filter applies the paper's file filters: size within [512 B, 2 MB] and an
// AST containing at least one conditional control-flow node, function node,
// or call-like node (footnotes 2-4).
func Filter(src string) FilterReason {
	if len(src) < MinSize {
		return FilterTooSmall
	}
	if len(src) > MaxSize {
		return FilterTooLarge
	}
	prog, err := parser.ParseProgram(src)
	if err != nil {
		return FilterUnparsable
	}
	if !hasCodeNode(prog) {
		return FilterNoCode
	}
	return FilterAccepted
}

func hasCodeNode(prog *ast.Program) bool {
	found := false
	walker.Walk(prog, func(n ast.Node, _ int) bool {
		if found {
			return false
		}
		if ast.IsConditionalControlFlow(n) || ast.IsFunction(n) || ast.IsCallLike(n) {
			found = true
			return false
		}
		return true
	})
	return found
}

// ---------------------------------------------------------------------------
// Regular collection
// ---------------------------------------------------------------------------

// RegularSet generates n regular files that pass the paper's filters.
func RegularSet(n int, rng *rand.Rand) []File {
	files := make([]File, 0, n)
	for len(files) < n {
		src := GenerateRegular(rng)
		// Grow undersized files the way real files grow: more code.
		for attempts := 0; len(src) < MinSize && attempts < 8; attempts++ {
			src += "\n" + GenerateRegular(rng)
		}
		if Filter(src) != FilterAccepted {
			continue
		}
		files = append(files, File{
			Name:   fmt.Sprintf("regular_%05d.js", len(files)),
			Source: src,
		})
	}
	return files
}

// ---------------------------------------------------------------------------
// Transformation helpers
// ---------------------------------------------------------------------------

// canonicalOrder sorts a technique set into an application order that keeps
// every technique's trace intact: structure-level obfuscations first,
// code-protection next, minification after, and the all-consuming
// no-alphanumeric encoding last.
var applyPriority = map[transform.Technique]int{
	transform.StringObfuscation:     1,
	transform.GlobalArray:           2,
	transform.DeadCodeInjection:     3,
	transform.ControlFlowFlattening: 4,
	transform.IdentifierObfuscation: 5,
	transform.DebugProtection:       6,
	transform.SelfDefending:         7,
	transform.MinifySimple:          8,
	transform.MinifyAdvanced:        9,
	transform.NoAlphanumeric:        10,
}

func canonicalOrder(techs []transform.Technique) []transform.Technique {
	out := append([]transform.Technique(nil), techs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && applyPriority[out[j]] < applyPriority[out[j-1]]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Apply transforms a regular file with the given technique set (applied in
// canonical order) and labels the result.
func Apply(f File, rng *rand.Rand, techs ...transform.Technique) (File, error) {
	ordered := canonicalOrder(techs)
	src, err := transform.Transform(f.Source, rng, ordered...)
	if err != nil {
		return File{}, fmt.Errorf("transform %s: %w", f.Name, err)
	}
	out := f
	out.Source = src
	out.Techniques = ordered
	return out, nil
}

// TransformPool transforms every base file once per monitored technique,
// mirroring Section III-D2 ("we transformed these 21,000 scripts 10 times",
// variants stored separately so techniques are not mixed).
func TransformPool(base []File, rng *rand.Rand) (map[transform.Technique][]File, error) {
	pool := make(map[transform.Technique][]File, len(transform.Techniques))
	for _, tech := range transform.Techniques {
		for _, f := range base {
			tf, err := Apply(f, rng, tech)
			if err != nil {
				return nil, err
			}
			tf.Name = fmt.Sprintf("%s_%s", sanitize(tech.String()), f.Name)
			pool[tech] = append(pool[tech], tf)
		}
	}
	return pool, nil
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '-' {
			c = '_'
		}
		out = append(out, c)
	}
	return string(out)
}

// RandomCombo draws a technique set of the given size for the mixed-sample
// experiment (Section III-E2, 1-7 techniques per file).
func RandomCombo(rng *rand.Rand, size int) []transform.Technique {
	if size < 1 {
		size = 1
	}
	if size > 7 {
		size = 7
	}
	perm := rng.Perm(len(transform.Techniques))
	seen := make(map[transform.Technique]bool)
	var combo []transform.Technique
	for _, idx := range perm {
		t := transform.Techniques[idx]
		// NoAlphanumeric consumes every other trace; keep it out of combos
		// of size > 1 (the tools in the paper likewise do not stack JSFuck
		// under further transformations).
		if t == transform.NoAlphanumeric && size > 1 {
			continue
		}
		if seen[t] {
			continue
		}
		seen[t] = true
		combo = append(combo, t)
		if len(combo) == size {
			break
		}
	}
	return combo
}
