// Package corpus synthesizes the datasets of the paper's study: regular
// JavaScript in the styles of GitHub projects and popular libraries
// (Section III-D1), Alexa-like client-side collections, npm-like package
// collections, malicious JavaScript in the styles of the DNC, Hynek, and
// BSI feeds (Section IV-A), and the 65-month longitudinal series
// (Section IV-D). Everything is generated from a seed, so every experiment
// is reproducible offline.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// jsgen generates one regular JavaScript file.
type jsgen struct {
	rng *rand.Rand
	sb  strings.Builder
	// declared tracks top-level names to avoid redeclaration clashes;
	// declOrder keeps them in declaration order for deterministic output.
	declared  map[string]bool
	declOrder []string
}

var identWords = []string{
	"data", "value", "result", "index", "item", "user", "config", "options",
	"count", "total", "list", "name", "key", "node", "element", "callback",
	"handler", "response", "request", "cache", "buffer", "state", "event",
	"target", "query", "entry", "record", "field", "label", "token", "group",
	"page", "view", "model", "store", "price", "amount", "order", "status",
	"message", "error", "info", "detail", "content", "body", "header", "row",
	"column", "cell", "width", "height", "offset", "limit", "start", "end",
	"source", "dest", "input", "output", "temp", "flag", "mode", "level",
}

var verbWords = []string{
	"get", "set", "update", "render", "fetch", "load", "save", "parse",
	"format", "build", "create", "remove", "delete", "add", "insert", "find",
	"filter", "map", "reduce", "sort", "merge", "clone", "validate", "check",
	"handle", "process", "compute", "calc", "init", "setup", "reset", "clear",
	"apply", "bind", "wrap", "unwrap", "encode", "decode", "normalize", "toggle",
}

var stringPool = []string{
	"click", "change", "submit", "load", "error", "success", "warning",
	"active", "hidden", "disabled", "selected", "container", "wrapper",
	"content", "header", "footer", "main", "sidebar", "button", "input",
	"utf-8", "application/json", "text/html", "GET", "POST", "PUT",
	"missing value", "invalid input", "not found", "timeout", "ready",
	"complete", "pending", "failed", "ok", "January", "February", "Monday",
	"user-id", "session", "api/v1/items", "api/v1/users", "/static/img",
	"en-US", "de-DE", "true", "false", "null", "undefined behavior",
}

func (g *jsgen) word(list []string) string { return list[g.rng.Intn(len(list))] }

// ident makes a plausible identifier like updateUserCount or itemList.
func (g *jsgen) ident() string {
	switch g.rng.Intn(4) {
	case 0:
		return g.word(identWords)
	case 1:
		return g.word(identWords) + title(g.word(identWords))
	case 2:
		return g.word(verbWords) + title(g.word(identWords))
	default:
		return g.word(verbWords) + title(g.word(identWords)) + title(g.word(identWords))
	}
}

// freshIdent returns an identifier unused at top level.
func (g *jsgen) freshIdent() string {
	for i := 0; i < 40; i++ {
		name := g.ident()
		if !g.declared[name] {
			g.declared[name] = true
			g.declOrder = append(g.declOrder, name)
			return name
		}
	}
	name := fmt.Sprintf("%s%d", g.ident(), g.rng.Intn(1000))
	g.declared[name] = true
	g.declOrder = append(g.declOrder, name)
	return name
}

func title(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func (g *jsgen) str() string         { return g.word(stringPool) }
func (g *jsgen) num() int            { return g.rng.Intn(200) }
func (g *jsgen) small() int          { return 1 + g.rng.Intn(10) }
func (g *jsgen) prob(p float64) bool { return g.rng.Float64() < p }

func (g *jsgen) line(format string, args ...any) {
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteByte('\n')
}

// comment writes a plausible source comment.
func (g *jsgen) comment() {
	switch g.rng.Intn(4) {
	case 0:
		g.line("// %s the %s %s", title(g.word(verbWords)), g.word(identWords), g.word(identWords))
	case 1:
		g.line("/* %s helper for %s handling */", title(g.word(identWords)), g.word(identWords))
	case 2:
		g.line("// TODO: %s %s edge cases", g.word(verbWords), g.word(identWords))
	default:
		g.line("/**\n * %s a %s from the given %s.\n * @param {Object} %s\n */",
			title(g.word(verbWords)), g.word(identWords), g.word(identWords), g.word(identWords))
	}
}

// GenerateRegular produces one regular JavaScript file of a random flavor.
func GenerateRegular(rng *rand.Rand) string {
	g := &jsgen{rng: rng, declared: make(map[string]bool)}
	flavors := []func(){
		g.utilityModule, g.browserScript, g.nodeModule,
		g.dataProcessing, g.classComponent, g.asyncClient, g.pluginModule,
		g.modernModule,
	}
	flavors[rng.Intn(len(flavors))]()
	return g.sb.String()
}

// fragments emits n random statement-level fragments from the given set.
func (g *jsgen) fragments(n int, set []func()) {
	for i := 0; i < n; i++ {
		if g.prob(0.4) {
			g.comment()
		}
		set[g.rng.Intn(len(set))]()
		g.sb.WriteByte('\n')
	}
}

// ---------------------------------------------------------------------------
// Flavors
// ---------------------------------------------------------------------------

func (g *jsgen) utilityModule() {
	if g.prob(0.5) {
		g.line("\"use strict\";")
		g.sb.WriteByte('\n')
	}
	g.fragments(4+g.rng.Intn(7), []func(){
		g.helperFunction, g.loopFunction, g.constTable, g.switchFunction,
		g.recursiveFunction, g.stringHelper, g.guardedCall, g.mathHelper,
	})
}

func (g *jsgen) browserScript() {
	g.fragments(4+g.rng.Intn(6), []func(){
		g.domHandler, g.domQueryLoop, g.helperFunction, g.guardedCall,
		g.timerBlock, g.formValidator, g.constTable,
	})
}

func (g *jsgen) nodeModule() {
	reqs := 1 + g.rng.Intn(3)
	mods := []string{"fs", "path", "util", "events", "crypto", "http", "url", "os"}
	for i := 0; i < reqs; i++ {
		m := mods[g.rng.Intn(len(mods))]
		g.line("var %s = require(%q);", m, m)
	}
	g.sb.WriteByte('\n')
	g.fragments(3+g.rng.Intn(6), []func(){
		g.helperFunction, g.loopFunction, g.constTable, g.errorFirstCallback,
		g.stringHelper, g.switchFunction,
	})
	g.line("module.exports = {")
	names := g.declOrder
	if len(names) > 3 {
		names = names[:3]
	}
	for i, n := range names {
		comma := ","
		if i == len(names)-1 {
			comma = ""
		}
		g.line("  %s: %s%s", n, n, comma)
	}
	g.line("};")
}

func (g *jsgen) dataProcessing() {
	table := g.freshIdent()
	g.line("var %s = [", table)
	rows := 3 + g.rng.Intn(6)
	for i := 0; i < rows; i++ {
		g.line("  {id: %d, %s: %q, %s: %d},", i+1, g.word(identWords), g.str(), g.word(identWords), g.num())
	}
	g.line("];")
	g.sb.WriteByte('\n')
	g.fragments(3+g.rng.Intn(5), []func(){
		func() { g.arrayPipeline(table) }, g.helperFunction, g.loopFunction,
		g.constTable, g.stringHelper,
	})
}

func (g *jsgen) classComponent() {
	cls := title(g.freshIdent())
	g.line("class %s {", cls)
	g.line("  constructor(%s) {", g.word(identWords))
	g.line("    this.%s = %s || {};", g.word(identWords), g.word(identWords))
	g.line("    this.%s = %d;", g.word(identWords), g.num())
	g.line("  }")
	methods := 2 + g.rng.Intn(4)
	for i := 0; i < methods; i++ {
		m := g.word(verbWords) + title(g.word(identWords))
		arg := g.word(identWords)
		g.line("  %s(%s) {", m, arg)
		g.line("    if (!%s) { return null; }", arg)
		g.line("    return this.%s ? %s.%s : %d;", g.word(identWords), arg, g.word(identWords), g.num())
		g.line("  }")
	}
	g.line("}")
	g.sb.WriteByte('\n')
	g.fragments(2+g.rng.Intn(3), []func(){
		func() {
			inst := g.freshIdent()
			g.line("var %s = new %s({%s: %d});", inst, cls, g.word(identWords), g.num())
			g.line("console.log(%s.%s(%q));", inst, g.word(verbWords)+title(g.word(identWords)), g.str())
		},
		g.helperFunction, g.constTable,
	})
}

func (g *jsgen) asyncClient() {
	g.fragments(3+g.rng.Intn(4), []func(){
		g.fetchBlock, g.promiseChain, g.helperFunction, g.timerBlock,
		g.errorFirstCallback, g.guardedCall,
	})
}

func (g *jsgen) pluginModule() {
	g.line("(function (root, factory) {")
	g.line("  if (typeof module === \"object\" && module.exports) {")
	g.line("    module.exports = factory();")
	g.line("  } else {")
	g.line("    root.%s = factory();", title(g.freshIdent()))
	g.line("  }")
	g.line("}(this, function () {")
	g.line("  var api = {};")
	inner := &jsgen{rng: g.rng, declared: make(map[string]bool)}
	inner.fragments(3+g.rng.Intn(4), []func(){
		inner.helperFunction, inner.loopFunction, inner.stringHelper, inner.constTable,
	})
	for _, ln := range strings.Split(inner.sb.String(), "\n") {
		if ln != "" {
			g.line("  %s", ln)
		} else {
			g.sb.WriteByte('\n')
		}
	}
	g.line("  return api;")
	g.line("}));")
}

func (g *jsgen) modernModule() {
	g.fragments(4+g.rng.Intn(5), []func(){
		g.arrowHelpers, g.destructuringBlock, g.templateHelper,
		g.classComponentFragment, g.helperFunction, g.constTable,
	})
}

func (g *jsgen) arrowHelpers() {
	name := g.freshIdent()
	a, b := g.word(identWords), g.word(identWords)
	if a == b {
		b += "Extra"
	}
	switch g.rng.Intn(3) {
	case 0:
		g.line("const %s = (%s, %s) => %s + %s * %d;", name, a, b, a, b, g.small())
	case 1:
		g.line("const %s = %s => {", name, a)
		g.line("  if (!%s) { return []; }", a)
		g.line("  return %s.map(x => x.%s).filter(Boolean);", a, g.word(identWords))
		g.line("};")
	default:
		g.line("const %s = () => ({%s: %d, %s: %q});", name, a, g.num(), b, g.str())
	}
}

func (g *jsgen) destructuringBlock() {
	a, b, c := g.word(identWords), g.word(identWords), g.word(identWords)
	if b == a {
		b += "Alt"
	}
	if c == a || c == b {
		c += "More"
	}
	src := g.freshIdent()
	g.line("const %s = {%s: %d, %s: %q, %s: [%d, %d]};", src, a, g.num(), b, g.str(), c, g.num(), g.num())
	g.line("const {%s, %s = %d} = %s;", a, b, g.num(), src)
	g.line("const [%sFirst, %sSecond] = %s.%s || [];", c, c, src, c)
	g.line("console.log(%s, %s, %sFirst, %sSecond);", a, b, c, c)
}

func (g *jsgen) templateHelper() {
	name := g.freshIdent()
	arg := g.word(identWords)
	g.line("function %s(%s) {", name, arg)
	g.line("  return `%s: ${%s} (%s=${%s.length})`;", g.word(identWords), arg, g.word(identWords), arg)
	g.line("}")
}

func (g *jsgen) classComponentFragment() {
	cls := title(g.freshIdent())
	g.line("class %s {", cls)
	if g.prob(0.5) {
		g.line("  %s = %d;", g.word(identWords), g.num())
		g.line("  static %s = %q;", g.word(identWords), g.str())
	}
	g.line("  constructor() { this.%s = new Map(); }", g.word(identWords))
	g.line("  get size() { return this.%s.size; }", g.word(identWords))
	g.line("  add(key, value) {")
	g.line("    this.%s.set(key, value);", g.word(identWords))
	g.line("    return this;")
	g.line("  }")
	g.line("}")
}

// ---------------------------------------------------------------------------
// Fragments
// ---------------------------------------------------------------------------

func (g *jsgen) helperFunction() {
	name := g.freshIdent()
	a, b := g.word(identWords), g.word(identWords)
	if a == b {
		b = b + "Value"
	}
	g.line("function %s(%s, %s) {", name, a, b)
	if g.prob(0.5) {
		g.line("  if (%s === undefined) { %s = %d; }", b, b, g.num())
	}
	switch g.rng.Intn(3) {
	case 0:
		g.line("  return %s + %s * %d;", a, b, g.small())
	case 1:
		g.line("  var %s = %s ? %s : %q;", g.word(identWords), a, b, g.str())
		g.line("  return %s;", a)
	default:
		g.line("  return {%s: %s, %s: %s};", a, a, b, b)
	}
	g.line("}")
}

func (g *jsgen) loopFunction() {
	name := g.freshIdent()
	arr := g.word(identWords) + "List"
	g.line("function %s(%s) {", name, arr)
	g.line("  var total = 0;")
	g.line("  for (var i = 0; i < %s.length; i++) {", arr)
	g.line("    var %s = %s[i];", g.word(identWords), arr)
	g.line("    if (%s && %s.%s > %d) {", g.word(identWords), g.word(identWords), g.word(identWords), g.num())
	g.line("      total += %d;", g.small())
	g.line("    }")
	g.line("  }")
	g.line("  return total;")
	g.line("}")
}

func (g *jsgen) constTable() {
	name := strings.ToUpper(g.freshIdent())
	g.line("var %s = {", name)
	entries := 2 + g.rng.Intn(5)
	for i := 0; i < entries; i++ {
		if g.prob(0.5) {
			g.line("  %s: %q,", g.word(identWords), g.str())
		} else {
			g.line("  %s: %d,", g.word(identWords), g.num())
		}
	}
	g.line("};")
}

func (g *jsgen) switchFunction() {
	name := g.freshIdent()
	arg := g.word(identWords)
	g.line("function %s(%s) {", name, arg)
	g.line("  switch (%s) {", arg)
	cases := 2 + g.rng.Intn(4)
	for i := 0; i < cases; i++ {
		g.line("    case %q:", g.str())
		g.line("      return %d;", g.num())
	}
	g.line("    default:")
	g.line("      return null;")
	g.line("  }")
	g.line("}")
}

func (g *jsgen) recursiveFunction() {
	name := g.freshIdent()
	g.line("function %s(n) {", name)
	g.line("  if (n <= 1) { return 1; }")
	g.line("  return n * %s(n - 1);", name)
	g.line("}")
}

func (g *jsgen) stringHelper() {
	name := g.freshIdent()
	arg := "text"
	switch g.rng.Intn(3) {
	case 0:
		g.line("function %s(%s) {", name, arg)
		g.line("  return %s.split(%q).map(function (part) {", arg, " ")
		g.line("    return part.charAt(0).toUpperCase() + part.slice(1);")
		g.line("  }).join(%q);", " ")
		g.line("}")
	case 1:
		g.line("function %s(%s) {", name, arg)
		g.line("  return String(%s).replace(/\\s+/g, %q).trim();", arg, " ")
		g.line("}")
	default:
		g.line("function %s(%s, maxLen) {", name, arg)
		g.line("  if (%s.length <= maxLen) { return %s; }", arg, arg)
		g.line("  return %s.substring(0, maxLen - 3) + %q;", arg, "...")
		g.line("}")
	}
}

func (g *jsgen) mathHelper() {
	name := g.freshIdent()
	g.line("function %s(values) {", name)
	g.line("  var sum = values.reduce(function (acc, v) { return acc + v; }, 0);")
	g.line("  return Math.round(sum / Math.max(values.length, 1) * 100) / 100;")
	g.line("}")
}

func (g *jsgen) guardedCall() {
	g.line("try {")
	g.line("  %s(%q, %d);", g.ident(), g.str(), g.num())
	g.line("} catch (err) {")
	g.line("  console.error(%q, err);", g.str())
	g.line("}")
}

func (g *jsgen) domHandler() {
	sel := "." + g.word(stringPool)
	g.line("document.addEventListener(%q, function (event) {", g.word([]string{"click", "change", "submit", "input"}))
	g.line("  var target = event.target.closest(%q);", sel)
	g.line("  if (!target) { return; }")
	g.line("  target.classList.toggle(%q);", g.word([]string{"active", "hidden", "selected"}))
	if g.prob(0.5) {
		g.line("  event.preventDefault();")
	}
	g.line("});")
}

func (g *jsgen) domQueryLoop() {
	list := g.freshIdent()
	g.line("var %s = document.querySelectorAll(%q);", list, "."+g.word(stringPool))
	g.line("for (var i = 0; i < %s.length; i++) {", list)
	g.line("  %s[i].setAttribute(%q, %q);", list, "data-"+g.word(identWords), g.str())
	g.line("}")
}

func (g *jsgen) timerBlock() {
	g.line("setTimeout(function () {")
	g.line("  var %s = Date.now() %% %d;", g.word(identWords), 1000+g.num())
	g.line("  console.log(%q, %s);", g.str(), g.word(identWords))
	g.line("}, %d);", 100*g.small())
}

func (g *jsgen) formValidator() {
	name := g.freshIdent()
	g.line("function %s(form) {", name)
	g.line("  var value = form.querySelector(%q).value;", "input[name="+g.word(identWords)+"]")
	g.line("  if (!value || value.length < %d) {", g.small())
	g.line("    return {valid: false, message: %q};", g.str())
	g.line("  }")
	g.line("  return {valid: true, value: value.trim()};")
	g.line("}")
}

func (g *jsgen) errorFirstCallback() {
	name := g.freshIdent()
	g.line("function %s(path, done) {", name)
	g.line("  fs.readFile(path, %q, function (err, content) {", "utf-8")
	g.line("    if (err) { return done(err); }")
	g.line("    done(null, content.split(%q).length);", "\\n")
	g.line("  });")
	g.line("}")
}

func (g *jsgen) fetchBlock() {
	g.line("fetch(%q, {method: %q})", "/"+g.word(stringPool), g.word([]string{"GET", "POST"}))
	g.line("  .then(function (res) { return res.json(); })")
	g.line("  .then(function (payload) {")
	g.line("    console.log(payload.%s);", g.word(identWords))
	g.line("  })")
	g.line("  .catch(function (err) { console.error(err); });")
}

func (g *jsgen) promiseChain() {
	name := g.freshIdent()
	g.line("function %s(input) {", name)
	g.line("  return new Promise(function (resolve, reject) {")
	g.line("    if (!input) { reject(new Error(%q)); return; }", g.str())
	g.line("    resolve({%s: input, at: Date.now()});", g.word(identWords))
	g.line("  });")
	g.line("}")
}

func (g *jsgen) arrayPipeline(table string) {
	out := g.freshIdent()
	field := g.word(identWords)
	g.line("var %s = %s", out, table)
	g.line("  .filter(function (row) { return row.id %% %d !== 0; })", 2+g.rng.Intn(3))
	g.line("  .map(function (row) { return row.%s; })", field)
	g.line("  .reduce(function (acc, v) { return acc + (typeof v === %q ? v : 0); }, 0);", "number")
	g.line("console.log(%q, %s);", g.str(), out)
}
