package corpus

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/js/parser"
	"repro/internal/transform"
)

func TestGenerateRegularParses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 60; i++ {
		src := GenerateRegular(rng)
		if _, err := parser.ParseProgram(src); err != nil {
			t.Fatalf("generated file %d does not parse: %v\n%s", i, err, src)
		}
	}
}

func TestGenerateRegularVariety(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seen := make(map[string]bool)
	for i := 0; i < 30; i++ {
		src := GenerateRegular(rng)
		if seen[src] {
			t.Fatal("generator repeated an identical file")
		}
		seen[src] = true
	}
}

func TestGenerateRegularDeterministic(t *testing.T) {
	a := GenerateRegular(rand.New(rand.NewSource(7)))
	b := GenerateRegular(rand.New(rand.NewSource(7)))
	if a != b {
		t.Fatal("generator is not deterministic under a fixed seed")
	}
}

func TestGenerateMaliciousParses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, fam := range []MaliciousFamily{FamilyExploitKit, FamilyDropper, FamilyLoader} {
		for i := 0; i < 20; i++ {
			src := GenerateMalicious(rng, fam)
			if _, err := parser.ParseProgram(src); err != nil {
				t.Fatalf("malicious family %d sample %d does not parse: %v\n%s", fam, i, err, src)
			}
		}
	}
}

func TestFilter(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want FilterReason
	}{
		{"too small", "var x = 1;", FilterTooSmall},
		{"no code", `var x = 1; ` + strings.Repeat("// padding comment line\n", 40), FilterNoCode},
		{"unparsable", strings.Repeat("]", 600), FilterUnparsable},
		{"accepted", "function main() { return 42; }\n" + strings.Repeat("// pad\n", 80), FilterAccepted},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Filter(tt.src); got != tt.want {
				t.Fatalf("Filter = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestFilterJSONRejected(t *testing.T) {
	// A JSON-like file: parses as an expression statement but has no
	// conditional/function/call node.
	json := `({"key": "value", "list": [1, 2, 3], "pad": "` + strings.Repeat("x", 600) + `"});`
	if got := Filter(json); got != FilterNoCode {
		t.Fatalf("JSON-like file: Filter = %v, want FilterNoCode", got)
	}
}

func TestRegularSetRespectsFilters(t *testing.T) {
	files := RegularSet(25, rand.New(rand.NewSource(4)))
	if len(files) != 25 {
		t.Fatalf("got %d files", len(files))
	}
	for _, f := range files {
		if len(f.Source) < MinSize {
			t.Fatalf("%s is %d bytes, below the corpus minimum", f.Name, len(f.Source))
		}
		if f.Transformed() {
			t.Fatalf("%s must be regular", f.Name)
		}
	}
}

func TestTransformPool(t *testing.T) {
	base := RegularSet(3, rand.New(rand.NewSource(5)))
	pool, err := TransformPool(base, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != len(transform.Techniques) {
		t.Fatalf("pool has %d techniques, want %d", len(pool), len(transform.Techniques))
	}
	for tech, files := range pool {
		if len(files) != len(base) {
			t.Fatalf("%s pool has %d files, want %d", tech, len(files), len(base))
		}
		for _, f := range files {
			if len(f.Techniques) != 1 || f.Techniques[0] != tech {
				t.Fatalf("%s: wrong labels %v", f.Name, f.Techniques)
			}
			if _, err := parser.ParseProgram(f.Source); err != nil {
				t.Fatalf("%s does not parse: %v", f.Name, err)
			}
		}
	}
}

func TestFileLabelHelpers(t *testing.T) {
	f := File{Techniques: []transform.Technique{transform.MinifySimple, transform.GlobalArray}}
	if !f.Transformed() || !f.Minified() || !f.Obfuscated() {
		t.Fatal("label helpers disagree with technique set")
	}
	if !f.Has(transform.GlobalArray) || f.Has(transform.DebugProtection) {
		t.Fatal("Has() broken")
	}
	var reg File
	if reg.Transformed() || reg.Minified() || reg.Obfuscated() {
		t.Fatal("empty file must be regular")
	}
}

func TestCanonicalOrderPutsNoAlphaLast(t *testing.T) {
	got := canonicalOrder([]transform.Technique{
		transform.NoAlphanumeric, transform.MinifySimple, transform.StringObfuscation,
	})
	if got[len(got)-1] != transform.NoAlphanumeric {
		t.Fatalf("order = %v", got)
	}
	if got[0] != transform.StringObfuscation {
		t.Fatalf("order = %v", got)
	}
}

func TestRandomComboProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for size := 1; size <= 7; size++ {
		for i := 0; i < 50; i++ {
			combo := RandomCombo(rng, size)
			if len(combo) != size {
				t.Fatalf("combo size = %d, want %d", len(combo), size)
			}
			seen := make(map[transform.Technique]bool)
			for _, c := range combo {
				if seen[c] {
					t.Fatalf("duplicate technique in combo %v", combo)
				}
				seen[c] = true
				if size > 1 && c == transform.NoAlphanumeric {
					t.Fatal("no-alphanumeric must not appear in multi-technique combos")
				}
			}
		}
	}
}

func TestTechniqueMixDrawWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	counts := make(map[transform.Technique]int)
	const n = 4000
	for i := 0; i < n; i++ {
		set := AlexaMix.Draw(rng)
		counts[set[0]]++
	}
	simple := float64(counts[transform.MinifySimple]) / n
	adv := float64(counts[transform.MinifyAdvanced]) / n
	if simple < 0.45 || simple > 0.55 {
		t.Fatalf("minification simple rate = %.3f, want ~0.50", simple)
	}
	if adv < 0.39 || adv > 0.49 {
		t.Fatalf("minification advanced rate = %.3f, want ~0.44", adv)
	}
}

func TestBuildRankedCounts(t *testing.T) {
	files, err := BuildRanked(AlexaConfig(30), rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 30 {
		t.Fatalf("too few files: %d", len(files))
	}
	transformed := 0
	for _, f := range files {
		if f.Origin != "alexa" {
			t.Fatalf("origin = %q", f.Origin)
		}
		if f.Rank < 1 || f.Rank > 30 {
			t.Fatalf("rank = %d", f.Rank)
		}
		if f.Transformed() {
			transformed++
		}
	}
	rate := float64(transformed) / float64(len(files))
	if rate < 0.5 || rate > 0.9 {
		t.Fatalf("transformed rate = %.3f, want ~0.69", rate)
	}
}

func TestBuildNpmInverseGradient(t *testing.T) {
	files, err := BuildNpm(NpmConfig(200), rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	topTransformed, topTotal := 0, 0
	bottomTransformed, bottomTotal := 0, 0
	for _, f := range files {
		if f.Rank <= 100 {
			topTotal++
			if f.Transformed() {
				topTransformed++
			}
		} else {
			bottomTotal++
			if f.Transformed() {
				bottomTransformed++
			}
		}
	}
	topRate := float64(topTransformed) / float64(topTotal)
	bottomRate := float64(bottomTransformed) / float64(bottomTotal)
	if topRate >= bottomRate {
		t.Fatalf("top packages must be less transformed: top=%.3f bottom=%.3f", topRate, bottomRate)
	}
}

func TestBuildMalicious(t *testing.T) {
	cfgs := DefaultMaliciousConfigs(1)
	for _, cfg := range cfgs {
		files, err := BuildMalicious(cfg, rand.New(rand.NewSource(12)))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) != cfg.Count {
			t.Fatalf("%s: %d files, want %d", cfg.Source, len(files), cfg.Count)
		}
		transformed := 0
		for _, f := range files {
			if f.Origin != cfg.Source {
				t.Fatalf("origin = %q", f.Origin)
			}
			if f.Transformed() {
				transformed++
			}
			if _, err := parser.ParseProgram(f.Source); err != nil {
				t.Fatalf("%s does not parse: %v", f.Name, err)
			}
		}
		rate := float64(transformed) / float64(len(files))
		if rate < cfg.TransformedRate-0.22 || rate > cfg.TransformedRate+0.22 {
			t.Fatalf("%s transformed rate = %.3f, want ~%.3f", cfg.Source, rate, cfg.TransformedRate)
		}
	}
}

func TestMonthLabel(t *testing.T) {
	tests := map[int]string{0: "2015-05", 7: "2015-12", 8: "2016-01", 64: "2020-09"}
	for i, want := range tests {
		if got := MonthLabel(i); got != want {
			t.Fatalf("MonthLabel(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestBuildLongitudinalTrend(t *testing.T) {
	files, err := BuildLongitudinal(LongitudinalConfig{ScriptsPerMonth: 12, Origin: "alexa"},
		rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 12*LongitudinalMonths {
		t.Fatalf("got %d files", len(files))
	}
	early, late := 0, 0
	earlyN, lateN := 0, 0
	for _, f := range files {
		if f.Month < 20 {
			earlyN++
			if f.Transformed() {
				early++
			}
		}
		if f.Month >= 45 {
			lateN++
			if f.Transformed() {
				late++
			}
		}
	}
	if float64(early)/float64(earlyN) >= float64(late)/float64(lateN) {
		t.Fatalf("Alexa transformed rate must rise over time: early=%.3f late=%.3f",
			float64(early)/float64(earlyN), float64(late)/float64(lateN))
	}
}

func TestAllTechniquesOnAllFlavors(t *testing.T) {
	// Stress: every technique must produce reparseable output on files from
	// every generator flavor (the seeds below cover all flavors).
	rng := rand.New(rand.NewSource(20))
	files := RegularSet(16, rng)
	for _, f := range files {
		for _, tech := range transform.Techniques {
			out, err := Apply(f, rng, tech)
			if err != nil {
				t.Fatalf("%s on %s: %v", tech, f.Name, err)
			}
			if _, err := parser.ParseProgram(out.Source); err != nil {
				snippet := out.Source
				if len(snippet) > 300 {
					snippet = snippet[:300]
				}
				t.Fatalf("%s on %s does not reparse: %v\n%s", tech, f.Name, err, snippet)
			}
		}
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	good := GenerateRegular(rand.New(rand.NewSource(30)))
	for len(good) < MinSize {
		good += GenerateRegular(rand.New(rand.NewSource(int64(len(good)))))
	}
	write("good.js", good)
	write("tiny.js", "var x = 1;")
	write("broken.js", strings.Repeat("}{", 400))
	write("readme.txt", "not javascript")
	if err := os.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "sub", "nested.js"), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}

	files, stats, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accepted != 2 || len(files) != 2 {
		t.Fatalf("stats = %+v, files = %d", stats, len(files))
	}
	if stats.TooSmall != 1 || stats.Unparsable != 1 || stats.Skipped != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	names := map[string]bool{}
	for _, f := range files {
		names[filepath.ToSlash(f.Name)] = true
	}
	if !names["good.js"] || !names["sub/nested.js"] {
		t.Fatalf("names = %v", names)
	}
	if !strings.Contains(stats.String(), "accepted 2") {
		t.Fatalf("stats string = %q", stats)
	}
}
