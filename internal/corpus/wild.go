package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/transform"
)

// TechniqueMix describes how transformed files of a collection draw their
// technique sets: one primary technique by weight, plus independent
// secondary probabilities. It encodes the ground-truth mixtures the paper
// measured in the wild (Figures 2, 3, and 5), so the study harness can
// verify that the detector recovers them.
type TechniqueMix struct {
	// Primary maps techniques to their weight for the main draw.
	Primary map[transform.Technique]float64
	// Secondary maps techniques to an independent chance of being added on
	// top of the primary.
	Secondary map[transform.Technique]float64
}

// Draw samples one technique set.
func (m TechniqueMix) Draw(rng *rand.Rand) []transform.Technique {
	total := 0.0
	for _, w := range m.Primary {
		total += w
	}
	var primary transform.Technique
	r := rng.Float64() * total
	for _, t := range transform.Techniques {
		w, ok := m.Primary[t]
		if !ok {
			continue
		}
		if r < w {
			primary = t
			break
		}
		r -= w
	}
	if primary == 0 {
		primary = transform.MinifySimple
	}
	set := []transform.Technique{primary}
	for _, t := range transform.Techniques {
		p, ok := m.Secondary[t]
		if !ok || t == primary {
			continue
		}
		if rng.Float64() < p {
			set = append(set, t)
		}
	}
	return set
}

// AlexaMix is the benign client-side mixture (Figure 2): basic minification
// 45.96%, advanced minification 40.24%, identifier obfuscation 5.72%, every
// other technique below 1.94%.
var AlexaMix = TechniqueMix{
	Primary: map[transform.Technique]float64{
		transform.MinifySimple:          0.50,
		transform.MinifyAdvanced:        0.44,
		transform.IdentifierObfuscation: 0.045,
		transform.StringObfuscation:     0.010,
		transform.GlobalArray:           0.005,
	},
	Secondary: map[transform.Technique]float64{
		transform.IdentifierObfuscation: 0.02,
		transform.StringObfuscation:     0.01,
	},
}

// NpmMix is the benign library mixture (Figure 3): basic minification
// 58.34%, advanced 36.57%, a bit more identifier obfuscation than Alexa.
var NpmMix = TechniqueMix{
	Primary: map[transform.Technique]float64{
		transform.MinifySimple:          0.59,
		transform.MinifyAdvanced:        0.35,
		transform.IdentifierObfuscation: 0.045,
		transform.StringObfuscation:     0.010,
		transform.GlobalArray:           0.005,
	},
	Secondary: map[transform.Technique]float64{
		transform.IdentifierObfuscation: 0.05,
	},
}

// MaliciousMixes maps each malware source to its technique mixture
// (Figure 5): identifier obfuscation leads (25-37%), string obfuscation and
// aggressive minification follow (17-21%), dead-code injection,
// control-flow flattening, and global array appear 5-10% of the time.
var MaliciousMixes = map[string]TechniqueMix{
	"dnc": {
		Primary: map[transform.Technique]float64{
			transform.IdentifierObfuscation: 0.30,
			transform.StringObfuscation:     0.18,
			transform.MinifyAdvanced:        0.17,
			transform.MinifySimple:          0.22,
			transform.GlobalArray:           0.05,
			transform.DeadCodeInjection:     0.04,
			transform.ControlFlowFlattening: 0.04,
		},
		Secondary: map[transform.Technique]float64{
			transform.IdentifierObfuscation: 0.25,
			transform.StringObfuscation:     0.10,
			transform.DeadCodeInjection:     0.05,
		},
	},
	"hynek": {
		Primary: map[transform.Technique]float64{
			transform.IdentifierObfuscation: 0.34,
			transform.StringObfuscation:     0.20,
			transform.MinifyAdvanced:        0.20,
			transform.MinifySimple:          0.08,
			transform.GlobalArray:           0.07,
			transform.DeadCodeInjection:     0.06,
			transform.ControlFlowFlattening: 0.05,
		},
		Secondary: map[transform.Technique]float64{
			transform.IdentifierObfuscation: 0.30,
			transform.StringObfuscation:     0.12,
			transform.GlobalArray:           0.05,
		},
	},
	"bsi": {
		Primary: map[transform.Technique]float64{
			transform.IdentifierObfuscation: 0.37,
			transform.StringObfuscation:     0.21,
			transform.MinifyAdvanced:        0.18,
			transform.MinifySimple:          0.05,
			transform.GlobalArray:           0.08,
			transform.DeadCodeInjection:     0.06,
			transform.ControlFlowFlattening: 0.05,
		},
		Secondary: map[transform.Technique]float64{
			transform.IdentifierObfuscation: 0.28,
			transform.StringObfuscation:     0.15,
			transform.DeadCodeInjection:     0.06,
		},
	},
}

// ---------------------------------------------------------------------------
// Alexa-like collection (Section IV-B1)
// ---------------------------------------------------------------------------

// WildConfig sizes a ranked collection.
type WildConfig struct {
	// Units is the number of sites or packages.
	Units int
	// MaxScriptsPerUnit bounds the scripts per site / files per package.
	MaxScriptsPerUnit int
	// TransformedRate is the base probability that a script is transformed
	// (rank-adjusted for Alexa-like collections).
	TransformedRate float64
	// Mix draws technique sets for transformed scripts.
	Mix TechniqueMix
	// Origin tag for the files.
	Origin string
	// RankEffect scales the transformed rate from top rank (1 +
	// RankEffect/2) down to bottom rank (1 - RankEffect/2); zero disables
	// the gradient.
	RankEffect float64
}

// BuildRanked generates a ranked collection of scripts: each unit (site or
// package) owns several scripts, each independently transformed per the
// configured rate and mixture.
func BuildRanked(cfg WildConfig, rng *rand.Rand) ([]File, error) {
	var files []File
	for rank := 1; rank <= cfg.Units; rank++ {
		scripts := 1 + rng.Intn(cfg.MaxScriptsPerUnit)
		rate := cfg.TransformedRate
		if cfg.RankEffect > 0 && cfg.Units > 1 {
			// Linear gradient: most popular units are the most transformed,
			// matching the rank link observed in Section IV-B.
			frac := float64(rank-1) / float64(cfg.Units-1)
			rate *= 1 + cfg.RankEffect*(0.5-frac)
			if rate > 0.98 {
				rate = 0.98
			}
		}
		for s := 0; s < scripts; s++ {
			base := File{
				Name:   fmt.Sprintf("%s_r%05d_s%02d.js", cfg.Origin, rank, s),
				Source: GenerateRegular(rng),
				Rank:   rank,
				Origin: cfg.Origin,
			}
			for len(base.Source) < MinSize {
				base.Source += "\n" + GenerateRegular(rng)
			}
			if rng.Float64() < rate {
				tf, err := Apply(base, rng, cfg.Mix.Draw(rng)...)
				if err != nil {
					return nil, err
				}
				files = append(files, tf)
			} else {
				files = append(files, base)
			}
		}
	}
	return files, nil
}

// AlexaConfig returns the Alexa-like collection configuration: 68.60% of
// scripts transformed overall with a popularity gradient (80% in the top
// 1k, ~64% by rank 100k), minification-dominated.
func AlexaConfig(units int) WildConfig {
	return WildConfig{
		Units:             units,
		MaxScriptsPerUnit: 8,
		TransformedRate:   0.686,
		Mix:               AlexaMix,
		Origin:            "alexa",
		RankEffect:        0.25,
	}
}

// NpmConfig returns the npm-like collection configuration: 8.7% of scripts
// transformed, inverse popularity gradient (top packages are 2.4-4.4 times
// LESS likely to ship transformed code, Figure 4).
func NpmConfig(units int) WildConfig {
	return WildConfig{
		Units:             units,
		MaxScriptsPerUnit: 8,
		TransformedRate:   0.087,
		Mix:               NpmMix,
		Origin:            "npm",
		RankEffect:        -1, // see BuildRanked: negative handled below
	}
}

// BuildNpm generates the npm-like collection, applying the inverse rank
// gradient (top-1k packages less transformed).
func BuildNpm(cfg WildConfig, rng *rand.Rand) ([]File, error) {
	var files []File
	for rank := 1; rank <= cfg.Units; rank++ {
		scripts := 1 + rng.Intn(cfg.MaxScriptsPerUnit)
		frac := 0.0
		if cfg.Units > 1 {
			frac = float64(rank-1) / float64(cfg.Units-1)
		}
		// Top packages ~3x less likely to contain transformed code.
		rate := cfg.TransformedRate * (0.4 + 1.2*frac)
		for s := 0; s < scripts; s++ {
			base := File{
				Name:   fmt.Sprintf("%s_r%05d_s%02d.js", cfg.Origin, rank, s),
				Source: GenerateRegular(rng),
				Rank:   rank,
				Origin: cfg.Origin,
			}
			for len(base.Source) < MinSize {
				base.Source += "\n" + GenerateRegular(rng)
			}
			if rng.Float64() < rate {
				tf, err := Apply(base, rng, cfg.Mix.Draw(rng)...)
				if err != nil {
					return nil, err
				}
				files = append(files, tf)
			} else {
				files = append(files, base)
			}
		}
	}
	return files, nil
}

// ---------------------------------------------------------------------------
// Malicious collections (Section IV-C)
// ---------------------------------------------------------------------------

// MaliciousConfig sizes one malware feed.
type MaliciousConfig struct {
	// Source is "dnc", "hynek", or "bsi".
	Source string
	// Count is the number of samples.
	Count int
	// TransformedRate is the fraction of samples that are transformed
	// (28.93% BSI, 65.94% DNC, 73.07% Hynek).
	TransformedRate float64
	// WaveSize > 1 emits waves of syntactically identical but
	// identifier-randomized clones, mirroring the per-victim wave broadcast
	// the paper describes.
	WaveSize int
	// Months spreads samples over a collection window for the per-month
	// breakdown of Figure 5.
	Months int
}

// DefaultMaliciousConfigs mirrors Table I rates at a configurable scale.
func DefaultMaliciousConfigs(scale int) []MaliciousConfig {
	if scale < 1 {
		scale = 1
	}
	return []MaliciousConfig{
		{Source: "dnc", Count: 45 * scale, TransformedRate: 0.6594, WaveSize: 3, Months: 10},
		{Source: "hynek", Count: 100 * scale, TransformedRate: 0.7307, WaveSize: 4, Months: 10},
		{Source: "bsi", Count: 120 * scale, TransformedRate: 0.2893, WaveSize: 5, Months: 6},
	}
}

func familyOf(source string, rng *rand.Rand) MaliciousFamily {
	switch source {
	case "dnc":
		return FamilyExploitKit
	case "bsi":
		return FamilyLoader
	default:
		fams := []MaliciousFamily{FamilyDropper, FamilyLoader, FamilyExploitKit}
		return fams[rng.Intn(len(fams))]
	}
}

// BuildMalicious generates one malware feed.
func BuildMalicious(cfg MaliciousConfig, rng *rand.Rand) ([]File, error) {
	mix, ok := MaliciousMixes[cfg.Source]
	if !ok {
		return nil, fmt.Errorf("unknown malware source %q", cfg.Source)
	}
	months := cfg.Months
	if months < 1 {
		months = 1
	}
	var files []File
	for len(files) < cfg.Count {
		month := rng.Intn(months)
		base := File{
			Source: GenerateMalicious(rng, familyOf(cfg.Source, rng)),
			Origin: cfg.Source,
			Month:  month,
		}
		for len(base.Source) < MinSize {
			base.Source += "\n" + GenerateMalicious(rng, familyOf(cfg.Source, rng))
		}
		wave := 1
		if cfg.WaveSize > 1 && rng.Float64() < 0.4 {
			wave = 1 + rng.Intn(cfg.WaveSize)
		}
		transformed := rng.Float64() < cfg.TransformedRate
		var techs []transform.Technique
		if transformed {
			techs = mix.Draw(rng)
		}
		for w := 0; w < wave && len(files) < cfg.Count; w++ {
			f := base
			f.Name = fmt.Sprintf("%s_m%02d_%05d.js", cfg.Source, month, len(files))
			if transformed {
				// Waves rename identifiers per victim: re-apply with a fresh
				// rng state so each clone is SHA-unique but syntactically
				// identical in structure.
				tf, err := Apply(f, rng, techs...)
				if err != nil {
					return nil, err
				}
				f = tf
			}
			files = append(files, f)
		}
	}
	return files, nil
}

// ---------------------------------------------------------------------------
// Longitudinal collections (Section IV-D)
// ---------------------------------------------------------------------------

// LongitudinalMonths is the paper's window: 2015-05 through 2020-09.
const LongitudinalMonths = 65

// MonthLabel renders a month index as the calendar month it models.
func MonthLabel(i int) string {
	year := 2015 + (i+4)/12
	month := (i+4)%12 + 1
	return fmt.Sprintf("%04d-%02d", year, month)
}

// AlexaMonthRate models Figure 6's steady rise of transformed client-side
// code across the 65 months.
func AlexaMonthRate(month int) float64 {
	return 0.55 + 0.15*float64(month)/float64(LongitudinalMonths-1)
}

// NpmMonthRate models the three npm phases the paper observed: ~7.4% with
// high variance (2015-05..2016-04), ~17.95% (2016-05..2019-05), ~15.17%
// (2019-06..2020-09).
func NpmMonthRate(month int, rng *rand.Rand) float64 {
	switch {
	case month < 12:
		return 0.074 * (1 + 0.2422*rng.NormFloat64())
	case month < 49:
		return 0.1795 * (1 + 0.059*rng.NormFloat64())
	default:
		return 0.1517 * (1 + 0.06*rng.NormFloat64())
	}
}

// AlexaMonthMix drifts the Alexa technique mixture over time: basic
// minification rises from 38.74% to 47.02% while advanced minification
// drifts from 43.77% down to 40% and identifier obfuscation from 8.23% to
// 6.21% (Figure 7).
func AlexaMonthMix(month int) TechniqueMix {
	frac := float64(month) / float64(LongitudinalMonths-1)
	lerp := func(a, b float64) float64 { return a + (b-a)*frac }
	return TechniqueMix{
		Primary: map[transform.Technique]float64{
			transform.MinifySimple:          lerp(0.3874, 0.4702),
			transform.MinifyAdvanced:        lerp(0.4377, 0.40),
			transform.IdentifierObfuscation: lerp(0.0823, 0.0621),
			transform.StringObfuscation:     0.02,
			transform.GlobalArray:           0.01,
		},
	}
}

// NpmMonthMix keeps the npm mixture constant (Figure 8: minification simple
// ~58.62%, advanced ~34.28%, identifier obfuscation ~9.71%).
func NpmMonthMix(int) TechniqueMix {
	return TechniqueMix{
		Primary: map[transform.Technique]float64{
			transform.MinifySimple:          0.55,
			transform.MinifyAdvanced:        0.33,
			transform.IdentifierObfuscation: 0.09,
			transform.StringObfuscation:     0.02,
			transform.GlobalArray:           0.01,
		},
	}
}

// LongitudinalConfig sizes the monthly crawls.
type LongitudinalConfig struct {
	// ScriptsPerMonth is the number of scripts sampled per month.
	ScriptsPerMonth int
	// Origin is "alexa" or "npm".
	Origin string
}

// BuildLongitudinal generates the 65-month series for one origin.
func BuildLongitudinal(cfg LongitudinalConfig, rng *rand.Rand) ([]File, error) {
	var files []File
	for month := 0; month < LongitudinalMonths; month++ {
		var rate float64
		var mix TechniqueMix
		switch cfg.Origin {
		case "alexa":
			rate = AlexaMonthRate(month)
			mix = AlexaMonthMix(month)
		case "npm":
			rate = NpmMonthRate(month, rng)
			mix = NpmMonthMix(month)
		default:
			return nil, fmt.Errorf("unknown longitudinal origin %q", cfg.Origin)
		}
		if rate < 0.01 {
			rate = 0.01
		}
		for s := 0; s < cfg.ScriptsPerMonth; s++ {
			base := File{
				Name:   fmt.Sprintf("%s_long_m%02d_%04d.js", cfg.Origin, month, s),
				Source: GenerateRegular(rng),
				Origin: cfg.Origin,
				Month:  month,
			}
			for len(base.Source) < MinSize {
				base.Source += "\n" + GenerateRegular(rng)
			}
			if rng.Float64() < rate {
				tf, err := Apply(base, rng, mix.Draw(rng)...)
				if err != nil {
					return nil, err
				}
				files = append(files, tf)
			} else {
				files = append(files, base)
			}
		}
	}
	return files, nil
}
