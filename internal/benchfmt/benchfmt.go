// Package benchfmt parses `go test -bench` output into a schema'd baseline
// file and diffs two baselines with tolerance gates. It is the library under
// cmd/benchreg and scripts/bench.sh: benchmarks run once, land in a
// BENCH_<n>.json trajectory file, and later runs are compared against the
// last checked-in baseline so hot-path regressions fail the pre-merge gate
// instead of shipping silently.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the baseline file format.
const Schema = "benchreg/v1"

// Result is one benchmark's aggregated measurement.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped,
	// qualified by its package when the parser saw a pkg: line
	// (e.g. "repro/internal/core.BenchmarkScanBatch").
	Name string `json:"name"`
	// Runs is how many lines were aggregated into this result.
	Runs int `json:"runs"`
	// N is the largest iteration count seen.
	N int64 `json:"n"`
	// NsPerOp is the minimum ns/op across runs — the least-noise estimate
	// on a loaded machine.
	NsPerOp float64 `json:"nsPerOp"`
	// BytesPerOp and AllocsPerOp are from -benchmem (minimum across runs;
	// allocation counts are stable, timing is not).
	BytesPerOp  float64 `json:"bytesPerOp,omitempty"`
	AllocsPerOp float64 `json:"allocsPerOp,omitempty"`
	// MBPerSec is the maximum throughput across runs when SetBytes was used.
	MBPerSec float64 `json:"mbPerSec,omitempty"`
	// Metrics holds custom b.ReportMetric units (files/sec, acc%, ...),
	// averaged across runs.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is a schema'd benchmark baseline.
type File struct {
	Schema string `json:"schema"`
	// CreatedUnix is the baseline's creation time (stamped by cmd/benchreg).
	CreatedUnix int64 `json:"createdUnix,omitempty"`
	// GoVersion/GOOS/GOARCH/CPU describe the machine the numbers came from;
	// cross-machine diffs are reported but should be read with suspicion.
	GoVersion string `json:"goVersion,omitempty"`
	GOOS      string `json:"goos,omitempty"`
	GOARCH    string `json:"goarch,omitempty"`
	CPU       string `json:"cpu,omitempty"`
	// Note is free-form provenance (flags, BENCH_SCALE, ...).
	Note    string   `json:"note,omitempty"`
	Results []Result `json:"results"`
}

// Lookup returns the named result.
func (f *File) Lookup(name string) (Result, bool) {
	for _, r := range f.Results {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}

// measurement is one parsed benchmark line before aggregation.
type measurement struct {
	name string
	n    int64
	vals map[string]float64 // unit -> value
}

// ParseOutput reads `go test -bench` output and aggregates repeated runs of
// the same benchmark (use -count=N for stability). It also picks up the
// "pkg:" and "cpu:" header lines go test emits; the CPU string of the last
// header wins.
func ParseOutput(r io.Reader) ([]Result, string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var (
		cpu string
		pkg string
		ms  []measurement
	)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "cpu:"):
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		m, ok := parseLine(line)
		if !ok {
			continue
		}
		if pkg != "" {
			m.name = pkg + "." + m.name
		}
		ms = append(ms, m)
	}
	if err := sc.Err(); err != nil {
		return nil, cpu, err
	}
	return aggregate(ms), cpu, nil
}

// parseLine parses one benchmark result line:
//
//	BenchmarkName-8   	     100	  123456 ns/op	  77 B/op	   3 allocs/op	  12.5 files/sec
func parseLine(line string) (measurement, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return measurement{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return measurement{}, false
	}
	m := measurement{name: name, n: n, vals: make(map[string]float64)}
	// The rest come in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return measurement{}, false
		}
		m.vals[fields[i+1]] = v
	}
	if len(m.vals) == 0 {
		return measurement{}, false
	}
	return m, true
}

// aggregate folds repeated runs: min for timing and allocation costs, max
// for throughput, mean for custom metrics. Output is sorted by name.
func aggregate(ms []measurement) []Result {
	byName := make(map[string]*Result)
	order := []string{}
	counts := make(map[string]map[string]int)
	for _, m := range ms {
		r := byName[m.name]
		if r == nil {
			r = &Result{Name: m.name, Metrics: map[string]float64{}}
			byName[m.name] = r
			counts[m.name] = map[string]int{}
			order = append(order, m.name)
		}
		r.Runs++
		if m.n > r.N {
			r.N = m.n
		}
		for unit, v := range m.vals {
			switch unit {
			case "ns/op":
				if r.Runs == 1 || v < r.NsPerOp {
					r.NsPerOp = v
				}
			case "B/op":
				if counts[m.name][unit] == 0 || v < r.BytesPerOp {
					r.BytesPerOp = v
				}
			case "allocs/op":
				if counts[m.name][unit] == 0 || v < r.AllocsPerOp {
					r.AllocsPerOp = v
				}
			case "MB/s":
				if v > r.MBPerSec {
					r.MBPerSec = v
				}
			default:
				// Running mean over the runs that reported this unit.
				c := counts[m.name][unit]
				r.Metrics[unit] = (r.Metrics[unit]*float64(c) + v) / float64(c+1)
			}
			counts[m.name][unit]++
		}
	}
	out := make([]Result, 0, len(byName))
	sort.Strings(order)
	for _, name := range order {
		r := byName[name]
		if len(r.Metrics) == 0 {
			r.Metrics = nil
		}
		out = append(out, *r)
	}
	return out
}

// Verdict classifies one compared benchmark.
type Verdict int

// Comparison verdicts.
const (
	// VerdictOK means the new time is within tolerance of the baseline.
	VerdictOK Verdict = iota
	// VerdictImproved means the new time beat the baseline by more than
	// the tolerance.
	VerdictImproved
	// VerdictRegressed means the new time exceeds the baseline by more
	// than the tolerance.
	VerdictRegressed
	// VerdictMissing means the baseline benchmark did not run this time.
	VerdictMissing
	// VerdictNew means the benchmark has no baseline entry yet.
	VerdictNew
)

// String renders the verdict for the diff table.
func (v Verdict) String() string {
	switch v {
	case VerdictOK:
		return "ok"
	case VerdictImproved:
		return "improved"
	case VerdictRegressed:
		return "REGRESSED"
	case VerdictMissing:
		return "missing"
	case VerdictNew:
		return "new"
	default:
		return "?"
	}
}

// Delta is one benchmark's baseline-vs-current comparison across the three
// gated columns: ns/op, allocs/op, and B/op.
type Delta struct {
	Name    string
	Old     float64 // baseline ns/op (0 when VerdictNew)
	New     float64 // current ns/op (0 when VerdictMissing)
	Ratio   float64 // New/Old - 1 (signed relative change)
	Verdict Verdict
	// OldAllocs/NewAllocs/AllocRatio mirror the ns/op fields for allocs/op;
	// a zero ratio with zero olds means the column had no -benchmem data.
	OldAllocs, NewAllocs, AllocRatio float64
	// OldBytes/NewBytes/BytesRatio do the same for B/op.
	OldBytes, NewBytes, BytesRatio float64
	// Regressions names the columns that exceeded their tolerance
	// ("ns/op", "allocs/op", "B/op"); non-empty iff Verdict is regressed.
	Regressions []string
}

// ratio returns new/old - 1, or 0 when the baseline column is empty.
func ratio(old, new float64) float64 {
	if old <= 0 {
		return 0
	}
	return new/old - 1
}

// Compare diffs current against baseline: a relative tolerance on ns/op
// (0.15 = fail beyond +15%) and a separate allocTolerance shared by the
// allocs/op and B/op columns (allocation counts are near-deterministic, so
// their tolerance is typically tighter; a negative allocTolerance disables
// memory gating). A benchmark regresses when any gated column exceeds its
// tolerance. Benchmarks only present on one side are reported as missing/new,
// never as failures, and columns without -benchmem data on both sides are not
// gated.
func Compare(baseline, current []Result, tolerance, allocTolerance float64) []Delta {
	cur := make(map[string]Result, len(current))
	for _, r := range current {
		cur[r.Name] = r
	}
	var out []Delta
	seen := make(map[string]bool)
	for _, b := range baseline {
		seen[b.Name] = true
		c, ok := cur[b.Name]
		if !ok {
			out = append(out, Delta{Name: b.Name, Old: b.NsPerOp, Verdict: VerdictMissing})
			continue
		}
		d := Delta{
			Name: b.Name,
			Old:  b.NsPerOp, New: c.NsPerOp, Ratio: ratio(b.NsPerOp, c.NsPerOp),
			OldAllocs: b.AllocsPerOp, NewAllocs: c.AllocsPerOp,
			AllocRatio: ratio(b.AllocsPerOp, c.AllocsPerOp),
			OldBytes:   b.BytesPerOp, NewBytes: c.BytesPerOp,
			BytesRatio: ratio(b.BytesPerOp, c.BytesPerOp),
		}
		if d.Ratio > tolerance {
			d.Regressions = append(d.Regressions, "ns/op")
		}
		if allocTolerance >= 0 && b.AllocsPerOp > 0 && c.AllocsPerOp > 0 && d.AllocRatio > allocTolerance {
			d.Regressions = append(d.Regressions, "allocs/op")
		}
		if allocTolerance >= 0 && b.BytesPerOp > 0 && c.BytesPerOp > 0 && d.BytesRatio > allocTolerance {
			d.Regressions = append(d.Regressions, "B/op")
		}
		switch {
		case len(d.Regressions) > 0:
			d.Verdict = VerdictRegressed
		case d.Ratio < -tolerance:
			d.Verdict = VerdictImproved
		default:
			d.Verdict = VerdictOK
		}
		out = append(out, d)
	}
	for _, c := range current {
		if !seen[c.Name] {
			out = append(out, Delta{Name: c.Name, New: c.NsPerOp, Verdict: VerdictNew})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AnyRegressed reports whether the diff contains a regression.
func AnyRegressed(deltas []Delta) bool {
	for _, d := range deltas {
		if d.Verdict == VerdictRegressed {
			return true
		}
	}
	return false
}

// memCell renders one memory column as a compact "old→new (+x%)" cell, or
// "-" when either side lacks -benchmem data.
func memCell(old, new, ratio float64) string {
	if old <= 0 && new <= 0 {
		return "-"
	}
	if old <= 0 || new <= 0 {
		return fmt.Sprintf("%.0f→%.0f", old, new)
	}
	return fmt.Sprintf("%.0f→%.0f (%+.1f%%)", old, new, 100*ratio)
}

// WriteDiff renders the comparison as an aligned table. The ns/op columns are
// always present; allocs/op and B/op cells show "old→new (+x%)" when
// -benchmem data exists on both sides. Regressed rows name the offending
// columns next to the verdict.
func WriteDiff(w io.Writer, deltas []Delta, tolerance, allocTolerance float64) {
	width := len("benchmark")
	for _, d := range deltas {
		if len(d.Name) > width {
			width = len(d.Name)
		}
	}
	fmt.Fprintf(w, "%-*s %14s %14s %8s %26s %30s  %s\n",
		width, "benchmark", "old ns/op", "new ns/op", "delta", "allocs/op", "B/op", "verdict")
	for _, d := range deltas {
		old, new := "-", "-"
		if d.Verdict != VerdictNew {
			old = fmt.Sprintf("%.0f", d.Old)
		}
		if d.Verdict != VerdictMissing {
			new = fmt.Sprintf("%.0f", d.New)
		}
		delta, allocs, bytes := "-", "-", "-"
		if d.Verdict != VerdictNew && d.Verdict != VerdictMissing {
			delta = fmt.Sprintf("%+.1f%%", 100*d.Ratio)
			allocs = memCell(d.OldAllocs, d.NewAllocs, d.AllocRatio)
			bytes = memCell(d.OldBytes, d.NewBytes, d.BytesRatio)
		}
		verdict := d.Verdict.String()
		if len(d.Regressions) > 0 {
			verdict += " (" + strings.Join(d.Regressions, ", ") + ")"
		}
		fmt.Fprintf(w, "%-*s %14s %14s %8s %26s %30s  %s\n",
			width, d.Name, old, new, delta, allocs, bytes, verdict)
	}
	if allocTolerance >= 0 {
		fmt.Fprintf(w, "tolerance: ±%.0f%% on ns/op, ±%.0f%% on allocs/op and B/op\n",
			100*tolerance, 100*allocTolerance)
	} else {
		fmt.Fprintf(w, "tolerance: ±%.0f%% on ns/op (memory gating off)\n", 100*tolerance)
	}
}
