package benchfmt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/core
cpu: Example CPU @ 2.00GHz
BenchmarkScanBatch-8         	       2	 500000000 ns/op	1000000 B/op	    5000 allocs/op	      32.0 files/sec
BenchmarkScanBatch-8         	       2	 520000000 ns/op	1010000 B/op	    5000 allocs/op	      30.0 files/sec
BenchmarkParseFlow-8         	     100	  12000000 ns/op	  400000 B/op	    2000 allocs/op
PASS
ok  	repro/internal/core	3.456s
pkg: repro/internal/js/parser
BenchmarkParse-8             	     300	   4000000 ns/op	  100000 B/op	     900 allocs/op
PASS
`

func TestParseOutput(t *testing.T) {
	results, cpu, err := ParseOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if cpu != "Example CPU @ 2.00GHz" {
		t.Errorf("cpu = %q", cpu)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results %+v, want 3", len(results), results)
	}
	// Sorted by name; package qualification applied.
	wantNames := []string{
		"repro/internal/core.BenchmarkParseFlow",
		"repro/internal/core.BenchmarkScanBatch",
		"repro/internal/js/parser.BenchmarkParse",
	}
	for i, r := range results {
		if r.Name != wantNames[i] {
			t.Errorf("result %d = %q, want %q", i, r.Name, wantNames[i])
		}
	}
	scan := results[1]
	if scan.Runs != 2 {
		t.Errorf("Runs = %d, want 2", scan.Runs)
	}
	if scan.NsPerOp != 500000000 { // min of the two runs
		t.Errorf("NsPerOp = %v, want min run 500000000", scan.NsPerOp)
	}
	if scan.BytesPerOp != 1000000 || scan.AllocsPerOp != 5000 {
		t.Errorf("mem = %v B/op %v allocs/op", scan.BytesPerOp, scan.AllocsPerOp)
	}
	if got := scan.Metrics["files/sec"]; got != 31.0 { // mean of 32 and 30
		t.Errorf("files/sec = %v, want 31", got)
	}
	if results[0].Metrics != nil {
		t.Errorf("ParseFlow has spurious metrics: %v", results[0].Metrics)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	repro/internal/core	3.456s",
		"goos: linux",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"BenchmarkNoPairs-8 100",
		"--- FAIL: TestSomething",
		"",
	} {
		if m, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted noise: %+v", line, m)
		}
	}
}

func TestParseLineKeepsUnsuffixedName(t *testing.T) {
	m, ok := parseLine("BenchmarkSerial 	 10 	 100 ns/op")
	if !ok || m.name != "BenchmarkSerial" {
		t.Fatalf("m = %+v ok = %v", m, ok)
	}
	// A trailing -word that is not a GOMAXPROCS count stays in the name.
	m, ok = parseLine("BenchmarkScan/sub-case-8 	 10 	 100 ns/op")
	if !ok || m.name != "BenchmarkScan/sub-case" {
		t.Fatalf("m = %+v ok = %v", m, ok)
	}
}

func TestCompareVerdicts(t *testing.T) {
	baseline := []Result{
		{Name: "A", NsPerOp: 1000},
		{Name: "B", NsPerOp: 1000},
		{Name: "C", NsPerOp: 1000},
		{Name: "Gone", NsPerOp: 500},
	}
	current := []Result{
		{Name: "A", NsPerOp: 1100}, // +10% within 15%
		{Name: "B", NsPerOp: 1200}, // +20% regression
		{Name: "C", NsPerOp: 800},  // -20% improvement
		{Name: "Fresh", NsPerOp: 50},
	}
	deltas := Compare(baseline, current, 0.15, 0.10)
	want := map[string]Verdict{
		"A": VerdictOK, "B": VerdictRegressed, "C": VerdictImproved,
		"Gone": VerdictMissing, "Fresh": VerdictNew,
	}
	if len(deltas) != len(want) {
		t.Fatalf("got %d deltas %+v", len(deltas), deltas)
	}
	for _, d := range deltas {
		if d.Verdict != want[d.Name] {
			t.Errorf("%s: verdict %v, want %v (ratio %+.2f)", d.Name, d.Verdict, want[d.Name], d.Ratio)
		}
	}
	if !AnyRegressed(deltas) {
		t.Error("AnyRegressed = false with a +20% entry")
	}
	deltas = Compare(baseline[:1], current[:1], 0.15, 0.10)
	if AnyRegressed(deltas) {
		t.Error("AnyRegressed = true for a within-tolerance diff")
	}
}

func TestCompareGatesAllocations(t *testing.T) {
	baseline := []Result{
		{Name: "AllocUp", NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 10000},
		{Name: "BytesUp", NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 10000},
		{Name: "MemDown", NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 10000},
		{Name: "NoMemData", NsPerOp: 1000},
		{Name: "NewMemData", NsPerOp: 1000},
	}
	current := []Result{
		// Timing flat, allocations +50%: must regress on the allocs column.
		{Name: "AllocUp", NsPerOp: 1000, AllocsPerOp: 150, BytesPerOp: 10000},
		// Timing flat, bytes +50%: must regress on the B/op column.
		{Name: "BytesUp", NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 15000},
		// Memory improved sharply, timing flat: ok, never a failure.
		{Name: "MemDown", NsPerOp: 1000, AllocsPerOp: 10, BytesPerOp: 1000},
		// Neither side has -benchmem data: no memory gating possible.
		{Name: "NoMemData", NsPerOp: 1000},
		// Baseline predates -benchmem: new columns must not count as a
		// regression from zero.
		{Name: "NewMemData", NsPerOp: 1000, AllocsPerOp: 500, BytesPerOp: 50000},
	}
	deltas := Compare(baseline, current, 0.15, 0.10)
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	for name, wantCol := range map[string]string{"AllocUp": "allocs/op", "BytesUp": "B/op"} {
		d := byName[name]
		if d.Verdict != VerdictRegressed {
			t.Errorf("%s: verdict %v, want REGRESSED", name, d.Verdict)
		}
		if len(d.Regressions) != 1 || d.Regressions[0] != wantCol {
			t.Errorf("%s: regressed columns %v, want [%s]", name, d.Regressions, wantCol)
		}
	}
	for _, name := range []string{"MemDown", "NoMemData", "NewMemData"} {
		if d := byName[name]; d.Verdict != VerdictOK {
			t.Errorf("%s: verdict %v (%v), want ok", name, d.Verdict, d.Regressions)
		}
	}
	if d := byName["AllocUp"]; d.AllocRatio < 0.49 || d.AllocRatio > 0.51 {
		t.Errorf("AllocUp: AllocRatio = %v, want ~+0.50", d.AllocRatio)
	}

	// A negative allocTolerance turns memory gating off entirely.
	deltas = Compare(baseline, current, 0.15, -1)
	if AnyRegressed(deltas) {
		t.Error("memory gating disabled but a regression survived")
	}
}

func TestWriteDiff(t *testing.T) {
	deltas := Compare(
		[]Result{
			{Name: "A", NsPerOp: 1000, AllocsPerOp: 200, BytesPerOp: 4000},
			{Name: "B", NsPerOp: 1000},
		},
		[]Result{{Name: "A", NsPerOp: 1300, AllocsPerOp: 260, BytesPerOp: 4100}},
		0.15, 0.10)
	var buf bytes.Buffer
	WriteDiff(&buf, deltas, 0.15, 0.10)
	out := buf.String()
	for _, want := range []string{
		"REGRESSED (ns/op, allocs/op)", "missing", "+30.0%",
		"200→260 (+30.0%)", "4000→4100 (+2.5%)",
		"tolerance: ±15% on ns/op, ±10% on allocs/op and B/op",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestFileRoundTripAndLookup(t *testing.T) {
	results, _, err := ParseOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	f := File{Schema: Schema, GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64", Results: results}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back File
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || len(back.Results) != len(results) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	r, ok := back.Lookup("repro/internal/core.BenchmarkScanBatch")
	if !ok || r.NsPerOp != 500000000 {
		t.Fatalf("Lookup = %+v, %v", r, ok)
	}
	if _, ok := back.Lookup("nope"); ok {
		t.Fatal("Lookup found a benchmark that does not exist")
	}
}

// TestVerdictStrings pins every verdict label (the diff table greps for
// REGRESSED) including the out-of-range fallback.
func TestVerdictStrings(t *testing.T) {
	cases := map[Verdict]string{
		VerdictOK:        "ok",
		VerdictImproved:  "improved",
		VerdictRegressed: "REGRESSED",
		VerdictMissing:   "missing",
		VerdictNew:       "new",
		Verdict(99):      "?",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("Verdict(%d).String() = %q, want %q", v, got, want)
		}
	}
}

// TestMemCell covers the one-sided and empty memory-column renderings that a
// baseline without -benchmem produces.
func TestMemCell(t *testing.T) {
	cases := []struct {
		old, new, ratio float64
		want            string
	}{
		{0, 0, 0, "-"},
		{0, 128, 0, "0→128"},
		{128, 0, 0, "128→0"},
		{100, 110, 0.1, "100→110 (+10.0%)"},
	}
	for _, c := range cases {
		if got := memCell(c.old, c.new, c.ratio); got != c.want {
			t.Errorf("memCell(%v, %v, %v) = %q, want %q", c.old, c.new, c.ratio, got, c.want)
		}
	}
}

// TestParseLineEdges covers the malformed shapes parseLine must reject and
// the odd ones it must keep.
func TestParseLineEdges(t *testing.T) {
	rejected := []string{
		"",
		"BenchmarkX-8",                     // too few fields
		"BenchmarkX-8 notanumber 5 ns/op",  // bad iteration count
		"BenchmarkX-8 10 notanumber ns/op", // bad value
		"NotABenchmark 10 5 ns/op",         // wrong prefix
		"BenchmarkX-8 10 tail",             // no value/unit pairs
	}
	for _, line := range rejected {
		if m, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted: %+v", line, m)
		}
	}
	// A trailing field without a unit partner is ignored, not fatal.
	m, ok := parseLine("BenchmarkX-8 10 5 ns/op dangling")
	if !ok || m.vals["ns/op"] != 5 {
		t.Errorf("parseLine with dangling field = %+v, %v", m, ok)
	}
	// Unsuffixed names survive; the -N suffix must be numeric to be dropped.
	m, ok = parseLine("BenchmarkX-abc 10 5 ns/op")
	if !ok || m.name != "BenchmarkX-abc" {
		t.Errorf("non-numeric suffix: got %+v, %v", m, ok)
	}
}

// TestWriteDiffMixedColumns locks the table rendering across the verdict and
// memory-column edge cases in one pass: a regressed row names its columns, a
// new row renders without a baseline, and missing -benchmem data renders "-".
func TestWriteDiffMixedColumns(t *testing.T) {
	baseline := []Result{
		{Name: "pkg.BenchmarkOld", NsPerOp: 100},
		{Name: "pkg.BenchmarkSlow", NsPerOp: 100, AllocsPerOp: 10, BytesPerOp: 100},
	}
	current := []Result{
		{Name: "pkg.BenchmarkSlow", NsPerOp: 200, AllocsPerOp: 20, BytesPerOp: 100},
		{Name: "pkg.BenchmarkNew", NsPerOp: 50},
	}
	deltas := Compare(baseline, current, 0.15, 0.10)
	var buf bytes.Buffer
	WriteDiff(&buf, deltas, 0.15, 0.10)
	out := buf.String()
	for _, want := range []string{"REGRESSED", "missing", "new", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff table missing %q:\n%s", want, out)
		}
	}
}
