package transform

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/js/ast"
	"repro/internal/js/parser"
	"repro/internal/js/walker"
)

const sample = `
// Shopping cart module.
var TAX_RATE = 0.19;
var cart = [];

function addItem(name, price, quantity) {
  if (quantity === undefined) {
    quantity = 1;
  }
  cart.push({name: name, price: price, quantity: quantity});
  return cart.length;
}

function totalPrice() {
  var total = 0;
  for (var i = 0; i < cart.length; i++) {
    var item = cart[i];
    total += item.price * item.quantity;
  }
  if (total > 100) {
    total = total * 0.95;
  } else {
    total = total * 1.0;
  }
  return total * (1 + TAX_RATE);
}

function describe() {
  var parts = [];
  cart.forEach(function (item) {
    parts.push(item.name + " x" + item.quantity);
  });
  return "Cart: " + parts.join(", ");
}

addItem("apple", 1.2, 3);
addItem("bread", 2.5, 1);
console.log(describe(), totalPrice());
`

func applyTechnique(t *testing.T, tech Technique, src string) string {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	out, err := Transform(src, rng, tech)
	if err != nil {
		t.Fatalf("transform %s: %v", tech, err)
	}
	if out == "" {
		t.Fatalf("%s produced empty output", tech)
	}
	if _, err := parser.ParseProgram(out); err != nil {
		snippet := out
		if len(snippet) > 400 {
			snippet = snippet[:400] + "..."
		}
		t.Fatalf("%s output does not reparse: %v\n%s", tech, err, snippet)
	}
	return out
}

func TestEveryTechniqueReparses(t *testing.T) {
	for _, tech := range append(append([]Technique{}, Techniques...), Packer) {
		t.Run(tech.String(), func(t *testing.T) {
			applyTechnique(t, tech, sample)
		})
	}
}

func TestIdentifierObfuscationRenamesBindings(t *testing.T) {
	out := applyTechnique(t, IdentifierObfuscation, sample)
	for _, name := range []string{"addItem", "totalPrice", "TAX_RATE", "cart"} {
		if strings.Contains(out, name) {
			t.Fatalf("binding %q must be renamed; output still contains it", name)
		}
	}
	// Property keys are not bindings and must survive the renaming.
	if !strings.Contains(out, "quantity:") {
		t.Fatal("object literal key must be preserved")
	}
	if !strings.Contains(out, "_0x") {
		t.Fatal("expected hex-style identifiers")
	}
	// Globals and properties must survive.
	for _, keep := range []string{"console", "push", "forEach", "join"} {
		if !strings.Contains(out, keep) {
			t.Fatalf("%q must be preserved", keep)
		}
	}
}

func TestStringObfuscationHidesStrings(t *testing.T) {
	out := applyTechnique(t, StringObfuscation, sample)
	if strings.Contains(out, `"apple"`) || strings.Contains(out, `"bread"`) {
		t.Fatal("plain string literals must be hidden")
	}
}

func TestGlobalArrayHoistsStrings(t *testing.T) {
	out := applyTechnique(t, GlobalArray, sample)
	if strings.Contains(out, `"apple", 1.2`) {
		t.Fatal("string literal still used inline")
	}
	prog, err := parser.ParseProgram(out)
	if err != nil {
		t.Fatal(err)
	}
	// First non-directive statement must be the array declaration.
	decl, ok := prog.Body[0].(*ast.VariableDeclaration)
	if !ok {
		t.Fatalf("first statement = %s, want VariableDeclaration", prog.Body[0].Type())
	}
	arr, ok := decl.Declarations[0].Init.(*ast.ArrayExpression)
	if !ok {
		t.Fatal("expected array initializer")
	}
	if len(arr.Elements) < 3 {
		t.Fatalf("array has %d elements, want the hoisted strings", len(arr.Elements))
	}
}

func TestNoAlphanumericUsesOnlySixCharacters(t *testing.T) {
	out := applyTechnique(t, NoAlphanumeric, `console.log("hi");`)
	for i := 0; i < len(out); i++ {
		switch out[i] {
		case '[', ']', '(', ')', '!', '+':
		default:
			t.Fatalf("output contains forbidden character %q at %d", out[i], i)
		}
	}
	if len(out) < 1000 {
		t.Fatalf("suspiciously small JSFuck output: %d bytes", len(out))
	}
}

func TestDeadCodeInjectionGrowsProgram(t *testing.T) {
	progBefore, _ := parser.ParseProgram(sample)
	before := walker.Count(progBefore)
	out := applyTechnique(t, DeadCodeInjection, sample)
	progAfter, _ := parser.ParseProgram(out)
	if after := walker.Count(progAfter); after <= before {
		t.Fatalf("dead code must grow the AST: %d -> %d", before, after)
	}
}

func TestControlFlowFlatteningAddsDispatcher(t *testing.T) {
	out := applyTechnique(t, ControlFlowFlattening, sample)
	prog, err := parser.ParseProgram(out)
	if err != nil {
		t.Fatal(err)
	}
	var hasDispatcher bool
	walker.Walk(prog, func(n ast.Node, _ int) bool {
		if w, ok := n.(*ast.WhileStatement); ok {
			if lit, ok := w.Test.(*ast.Literal); ok && lit.Kind == ast.LiteralBoolean && lit.Bool {
				if blk, ok := w.Body.(*ast.BlockStatement); ok && len(blk.Body) >= 1 {
					if _, ok := blk.Body[0].(*ast.SwitchStatement); ok {
						hasDispatcher = true
					}
				}
			}
		}
		return true
	})
	if !hasDispatcher {
		t.Fatal("expected while(true){switch...} dispatcher")
	}
	if !strings.Contains(out, `.split("|")`) {
		t.Fatal("expected order string split")
	}
}

func TestSelfDefendingInjectsGuard(t *testing.T) {
	out := applyTechnique(t, SelfDefending, sample)
	if !strings.Contains(out, "constructor") {
		t.Fatal("expected Function-constructor guard")
	}
	if strings.Contains(out, "\n") {
		t.Fatal("self-defending output must be minified (single line)")
	}
}

func TestDebugProtectionInjectsDebuggerLoop(t *testing.T) {
	out := applyTechnique(t, DebugProtection, sample)
	if !strings.Contains(out, `"debugger"`) {
		t.Fatal("expected constructor(\"debugger\") calls")
	}
	if !strings.Contains(out, "setInterval") {
		t.Fatal("expected the periodic re-trigger")
	}
}

func TestMinifySimpleShrinksAndRenames(t *testing.T) {
	out := applyTechnique(t, MinifySimple, sample)
	if len(out) >= len(sample) {
		t.Fatalf("minified output must shrink: %d -> %d", len(sample), len(out))
	}
	if strings.Contains(out, "\n") {
		t.Fatal("minified output must not contain newlines")
	}
	if strings.Contains(out, "totalPrice") {
		t.Fatal("identifiers must be shortened")
	}
	if strings.Contains(out, "// Shopping") {
		t.Fatal("comments must be removed")
	}
}

func TestMinifyAdvancedFoldsConstants(t *testing.T) {
	src := `var x = 2 * 3 + 4; var s = "a" + "b"; if (cond) { y = 1; } else { y = 2; } var b = true;`
	out := applyTechnique(t, MinifyAdvanced, src)
	if !strings.Contains(out, "10") {
		t.Fatalf("2*3+4 must fold to 10: %s", out)
	}
	if !strings.Contains(out, `"ab"`) {
		t.Fatalf(`"a"+"b" must fold to "ab": %s`, out)
	}
	if !strings.Contains(out, "?") {
		t.Fatalf("if/else must become ternary: %s", out)
	}
	if !strings.Contains(out, "!0") {
		t.Fatalf("true must become !0: %s", out)
	}
}

func TestMinifyAdvancedRemovesUnreachable(t *testing.T) {
	src := `function f() { return 1; console.log("dead"); }`
	out := applyTechnique(t, MinifyAdvanced, src)
	if strings.Contains(out, "dead") {
		t.Fatalf("unreachable code must be removed: %s", out)
	}
}

func TestPackerShape(t *testing.T) {
	out := applyTechnique(t, Packer, sample)
	if !strings.HasPrefix(out, "eval(function(p,a,c,k,e,d)") {
		t.Fatalf("packer output must start with the eval wrapper: %.60s", out)
	}
	if !strings.Contains(out, ".split('|')") {
		t.Fatal("expected the word table")
	}
}

func TestCombinedTechniques(t *testing.T) {
	combos := [][]Technique{
		{IdentifierObfuscation, MinifySimple},
		{StringObfuscation, GlobalArray, MinifyAdvanced},
		{DeadCodeInjection, ControlFlowFlattening, IdentifierObfuscation},
		{GlobalArray, DebugProtection, MinifySimple},
		{StringObfuscation, SelfDefending},
	}
	for _, combo := range combos {
		names := make([]string, len(combo))
		for i, c := range combo {
			names[i] = c.String()
		}
		t.Run(strings.Join(names, "+"), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			out, err := Transform(sample, rng, combo...)
			if err != nil {
				t.Fatalf("combo: %v", err)
			}
			if _, err := parser.ParseProgram(out); err != nil {
				t.Fatalf("combo output does not reparse: %v", err)
			}
		})
	}
}

func TestTransformDeterministic(t *testing.T) {
	for _, tech := range Techniques {
		a, err := Transform(sample, rand.New(rand.NewSource(99)), tech)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Transform(sample, rand.New(rand.NewSource(99)), tech)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("%s is not deterministic under a fixed seed", tech)
		}
	}
}

func TestParseTechnique(t *testing.T) {
	for _, tech := range append(append([]Technique{}, Techniques...), Packer) {
		got, err := ParseTechnique(tech.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != tech {
			t.Fatalf("round-trip failed for %s", tech)
		}
	}
	if _, err := ParseTechnique("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestShortName(t *testing.T) {
	tests := map[int]string{0: "a", 1: "b", 25: "z", 26: "A", 51: "Z", 52: "aa", 53: "ab"}
	for i, want := range tests {
		if got := shortName(i); got != want {
			t.Fatalf("shortName(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestBase62(t *testing.T) {
	tests := map[int]string{0: "0", 9: "9", 10: "a", 35: "z", 36: "A", 61: "Z", 62: "10"}
	for i, want := range tests {
		if got := base62(i); got != want {
			t.Fatalf("base62(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestFieldReferenceRewrites(t *testing.T) {
	out := applyTechnique(t, FieldReference, sample)
	if strings.Contains(out, "cart.push") {
		t.Fatal("dot accesses must become bracket accesses")
	}
	if !strings.Contains(out, `cart["`) {
		t.Fatalf("expected bracketed property access, got:\n%.300s", out)
	}
}
