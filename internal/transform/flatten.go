package transform

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/js/ast"
	"repro/internal/js/walker"
)

// flattenControlFlow applies the obfuscator.io control-flow flattening
// transformation [23]: a straight-line statement sequence is moved into a
// single infinite loop whose flow is driven by a switch over a shuffled
// order string:
//
//	var _0xorder = "2|0|1".split("|"), _0xi = 0;
//	while (true) {
//	  switch (_0xorder[_0xi++]) {
//	  case "0": a(); continue;
//	  case "1": b(); continue;
//	  case "2": c(); continue;
//	  }
//	  break;
//	}
func flattenControlFlow(prog *ast.Program, rng *rand.Rand) {
	prog.Body = flattenList(prog.Body, rng)
	walker.Walk(prog, func(n ast.Node, _ int) bool {
		switch v := n.(type) {
		case *ast.FunctionDeclaration:
			if v.Body != nil {
				v.Body.Body = flattenList(v.Body.Body, rng)
			}
		case *ast.FunctionExpression:
			if v.Body != nil {
				v.Body.Body = flattenList(v.Body.Body, rng)
			}
		case *ast.ArrowFunctionExpression:
			if blk, ok := v.Body.(*ast.BlockStatement); ok {
				blk.Body = flattenList(blk.Body, rng)
			}
		}
		return true
	})
}

// flattenList rewrites every maximal safe run of at least two flattenable
// statements into a dispatcher loop, the way obfuscator.io flattens each
// eligible sequence. Statements that hoist (declarations) or break out of
// the local flow (break/continue/labels) are left in place.
func flattenList(body []ast.Node, rng *rand.Rand) []ast.Node {
	out := make([]ast.Node, 0, len(body))
	i := 0
	for i < len(body) {
		if !flattenable(body[i]) {
			out = append(out, body[i])
			i++
			continue
		}
		j := i
		for j < len(body) && flattenable(body[j]) {
			j++
		}
		if j-i < 2 {
			out = append(out, body[i:j]...)
		} else {
			out = append(out, flattenRun(body[i:j], rng)...)
		}
		i = j
	}
	return out
}

// flattenRun turns one statement run into the order-string dispatcher.
func flattenRun(segment []ast.Node, rng *rand.Rand) []ast.Node {
	run := len(segment)

	orderVar := fmt.Sprintf("_0x%04x", rng.Intn(0x10000))
	idxVar := fmt.Sprintf("_0x%04x", rng.Intn(0x10000))
	for idxVar == orderVar {
		idxVar = fmt.Sprintf("_0x%04x", rng.Intn(0x10000))
	}

	// Statement i gets the randomly drawn label perm[i]; the dispatch string
	// lists the labels in original execution order, so the shuffled-looking
	// switch still executes the statements in their original sequence.
	labels := make([]string, run)
	perm := rng.Perm(run)
	for i := 0; i < run; i++ {
		labels[i] = strconv.Itoa(perm[i])
	}
	decl := &ast.VariableDeclaration{
		Kind: "var",
		Declarations: []*ast.VariableDeclarator{
			{
				ID: ast.NewIdentifier(orderVar),
				Init: &ast.CallExpression{
					Callee: &ast.MemberExpression{
						Object:   ast.NewString(strings.Join(labels, "|")),
						Property: ast.NewIdentifier("split"),
					},
					Arguments: []ast.Node{ast.NewString("|")},
				},
			},
			{ID: ast.NewIdentifier(idxVar), Init: ast.NewNumber(0)},
		},
	}

	sw := &ast.SwitchStatement{
		Discriminant: &ast.MemberExpression{
			Object: ast.NewIdentifier(orderVar),
			Property: &ast.UpdateExpression{
				Operator: "++",
				Argument: ast.NewIdentifier(idxVar),
			},
			Computed: true,
		},
	}
	// Cases appear sorted by label for extra confusion; each case holds one
	// original statement followed by `continue`.
	type caseEntry struct {
		label string
		stmt  ast.Node
	}
	entries := make([]caseEntry, run)
	for i, stmt := range segment {
		entries[i] = caseEntry{label: labels[i], stmt: stmt}
	}
	rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
	for _, e := range entries {
		sw.Cases = append(sw.Cases, &ast.SwitchCase{
			Test:       ast.NewString(e.label),
			Consequent: []ast.Node{e.stmt, &ast.ContinueStatement{}},
		})
	}

	loop := &ast.WhileStatement{
		Test: ast.NewBool(true),
		Body: &ast.BlockStatement{Body: []ast.Node{sw, &ast.BreakStatement{}}},
	}
	return []ast.Node{decl, loop}
}

// flattenable reports whether a statement can move into a dispatcher case
// without changing semantics: no hoisted declarations, no lexical bindings
// needed later, and no break/continue that would capture the dispatcher.
func flattenable(n ast.Node) bool {
	switch v := n.(type) {
	case *ast.ExpressionStatement:
		return v.Directive == ""
	case *ast.ReturnStatement, *ast.ThrowStatement:
		return true
	case *ast.IfStatement:
		return !containsLocalBreakContinueOrDecl(v)
	default:
		return false
	}
}

// containsLocalBreakContinueOrDecl reports whether the subtree has a
// break/continue that would bind to the injected dispatcher loop, or a
// declaration whose scope would change.
func containsLocalBreakContinueOrDecl(n ast.Node) bool {
	found := false
	walker.Walk(n, func(c ast.Node, _ int) bool {
		switch c.(type) {
		case *ast.FunctionDeclaration, *ast.FunctionExpression, *ast.ArrowFunctionExpression:
			return false // their internals are isolated
		case *ast.WhileStatement, *ast.DoWhileStatement, *ast.ForStatement,
			*ast.ForInStatement, *ast.ForOfStatement, *ast.SwitchStatement:
			return false // break/continue inside bind locally
		case *ast.BreakStatement, *ast.ContinueStatement:
			found = true
			return false
		case *ast.VariableDeclaration:
			found = true
			return false
		}
		return true
	})
	return found
}
