package transform

import (
	"math/rand"

	"repro/internal/js/ast"
	"repro/internal/js/walker"
)

// FieldReference is the "obfuscated field reference" technique the paper
// describes but does NOT monitor (Section II-A): property accesses switch
// from dot to bracket notation (`a.b` → `a["b"]`), often with the property
// name additionally split or encoded. The paper's claim — reproduced by the
// unmonitored-technique experiment — is that level 1 still flags such files
// as transformed even though level 2 has no class for them.
const FieldReference Technique = 100

// applyFieldReference rewrites dot accesses into bracket notation, and with
// probability 1/3 hides the property string behind a concatenation.
func applyFieldReference(prog *ast.Program, rng *rand.Rand) {
	walker.Rewrite(prog, func(n ast.Node) ast.Node {
		m, ok := n.(*ast.MemberExpression)
		if !ok || m.Computed || m.Optional {
			return n
		}
		id, ok := m.Property.(*ast.Identifier)
		if !ok {
			return n
		}
		var prop ast.Node
		if len(id.Name) >= 3 && rng.Intn(3) != 0 {
			cut := 1 + rng.Intn(len(id.Name)-1)
			prop = &ast.BinaryExpression{
				Operator: "+",
				Left:     ast.NewString(id.Name[:cut]),
				Right:    ast.NewString(id.Name[cut:]),
			}
		} else {
			prop = ast.NewString(id.Name)
		}
		return &ast.MemberExpression{Object: m.Object, Property: prop, Computed: true}
	})
}
