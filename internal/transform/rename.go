package transform

import (
	"fmt"
	"math/rand"

	"repro/internal/js/ast"
	"repro/internal/js/scope"
)

// renameBindings renames every binding in the program using the name
// generator. It renames declaration sites and all resolved references; the
// generator must avoid keywords and collisions with unresolved globals.
func renameBindings(prog *ast.Program, newName func(i int, b *scope.Binding) string) {
	info := scope.Analyze(prog)
	reserved := make(map[string]bool)
	for _, id := range info.Unresolved {
		reserved[id.Name] = true
	}
	for kw := range jsKeywords {
		reserved[kw] = true
	}
	i := 0
	for _, b := range info.Bindings {
		if b.Decl == nil {
			continue
		}
		var name string
		for {
			name = newName(i, b)
			i++
			if !reserved[name] {
				break
			}
		}
		b.Decl.Name = name
		for _, ref := range b.Refs {
			ref.Name = name
		}
	}
	fixShorthandProperties(prog)
}

// fixShorthandProperties clears the Shorthand flag on properties whose bound
// value identifier no longer matches the key. Shorthand `{name}` in a
// destructuring pattern (or object literal) parses into distinct Key and
// Value identifier nodes, and only the Value side is a binding/reference: a
// rename turns `{name}` into `{renamed}` — which reads a different property —
// unless the printer is told to emit the longhand `{name: renamed}`.
func fixShorthandProperties(n ast.Node) {
	if p, ok := n.(*ast.Property); ok && p.Shorthand {
		key, kok := p.Key.(*ast.Identifier)
		val := p.Value
		if ap, isAP := val.(*ast.AssignmentPattern); isAP {
			val = ap.Left
		}
		if v, vok := val.(*ast.Identifier); kok && vok && key.Name != v.Name {
			p.Shorthand = false
		}
	}
	ast.EachChild(n, fixShorthandProperties)
}

var jsKeywords = map[string]bool{
	"await": true, "break": true, "case": true, "catch": true, "class": true,
	"const": true, "continue": true, "debugger": true, "default": true,
	"delete": true, "do": true, "else": true, "export": true, "extends": true,
	"finally": true, "for": true, "function": true, "if": true, "import": true,
	"in": true, "instanceof": true, "let": true, "new": true, "return": true,
	"super": true, "switch": true, "this": true, "throw": true, "try": true,
	"typeof": true, "var": true, "void": true, "while": true, "with": true,
	"yield": true, "true": true, "false": true, "null": true, "enum": true,
	"static": true, "get": true, "set": true, "of": true, "as": true,
	"from": true, "async": true,
}

// obfuscateIdentifiers renames every binding to a random hex name in the
// obfuscator.io style (_0x3fa2c1), destroying all naming information while
// leaving the code structure untouched.
func obfuscateIdentifiers(prog *ast.Program, rng *rand.Rand) {
	used := make(map[string]bool)
	renameBindings(prog, func(_ int, _ *scope.Binding) string {
		for {
			name := fmt.Sprintf("_0x%06x", rng.Intn(0x1000000))
			if !used[name] {
				used[name] = true
				return name
			}
		}
	})
}

// shortName produces the minifier naming sequence a, b, ..., z, A, ..., Z,
// aa, ab, ... for index i.
func shortName(i int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	name := make([]byte, 0, 4)
	for {
		name = append(name, alphabet[i%len(alphabet)])
		i = i/len(alphabet) - 1
		if i < 0 {
			break
		}
	}
	// Reverse for stable lexicographic growth.
	for l, r := 0, len(name)-1; l < r; l, r = l+1, r-1 {
		name[l], name[r] = name[r], name[l]
	}
	return string(name)
}

// shortenIdentifiers renames every binding to the shortest available name,
// as minifiers do.
func shortenIdentifiers(prog *ast.Program) {
	renameBindings(prog, func(i int, _ *scope.Binding) string { return shortName(i) })
}
