package transform

import (
	"encoding/base64"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/js/ast"
	"repro/internal/js/walker"
)

// obfuscateStrings rewrites string literals so they no longer appear in
// plain text, mixing the techniques of gnirts (split/concat/reverse, no
// encoding escape) and our custom-encoding tool (percent and base64
// encodings), per Section II-B.
func obfuscateStrings(prog *ast.Program, rng *rand.Rand) {
	skip := literalsToKeep(prog)
	walker.Rewrite(prog, func(n ast.Node) ast.Node {
		lit, ok := n.(*ast.Literal)
		if !ok || lit.Kind != ast.LiteralString || skip[lit] {
			return n
		}
		s := lit.String
		if len(s) < 2 {
			return n
		}
		switch rng.Intn(5) {
		case 0:
			return splitConcat(s, rng)
		case 1:
			return fromCharCode(s)
		case 2:
			return reverseJoin(s)
		case 3:
			return percentDecode(s)
		default:
			return base64Decode(s)
		}
	})
	// Directive prologues must stay literal; Rewrite never touches them
	// because ExpressionStatement directives wrap Literal nodes that were
	// replaced — restore plain "use strict" style directives.
	for _, stmt := range prog.Body {
		es, ok := stmt.(*ast.ExpressionStatement)
		if !ok || es.Directive == "" {
			continue
		}
		es.Expression = ast.NewString(es.Directive)
	}
}

// literalsToKeep marks string literals that must remain literal: property
// keys in non-computed position, module sources, and directive prologues.
func literalsToKeep(prog *ast.Program) map[*ast.Literal]bool {
	skip := make(map[*ast.Literal]bool)
	keep := func(n ast.Node) {
		if lit, ok := n.(*ast.Literal); ok {
			skip[lit] = true
		}
	}
	walker.Walk(prog, func(n ast.Node, _ int) bool {
		switch v := n.(type) {
		case *ast.Property:
			if !v.Computed {
				keep(v.Key)
			}
		case *ast.MethodDefinition:
			if !v.Computed {
				keep(v.Key)
			}
		case *ast.ImportDeclaration:
			if v.Source != nil {
				skip[v.Source] = true
			}
		case *ast.ExportNamedDeclaration:
			if v.Source != nil {
				skip[v.Source] = true
			}
		case *ast.ExportAllDeclaration:
			if v.Source != nil {
				skip[v.Source] = true
			}
		case *ast.ExpressionStatement:
			if v.Directive != "" {
				keep(v.Expression)
			}
		case *ast.CallExpression:
			// `require("mod")` arguments must stay literal for bundlers.
			if id, ok := v.Callee.(*ast.Identifier); ok && id.Name == "require" && len(v.Arguments) == 1 {
				keep(v.Arguments[0])
			}
		}
		return true
	})
	return skip
}

// splitConcat turns "hello world" into "hel" + "lo w" + "orld".
func splitConcat(s string, rng *rand.Rand) ast.Node {
	runes := []rune(s)
	var parts []string
	for len(runes) > 0 {
		n := 1 + rng.Intn(4)
		if n > len(runes) {
			n = len(runes)
		}
		parts = append(parts, string(runes[:n]))
		runes = runes[n:]
	}
	if len(parts) == 1 {
		parts = append(parts, "")
	}
	var expr ast.Node = ast.NewString(parts[0])
	for _, part := range parts[1:] {
		expr = &ast.BinaryExpression{Operator: "+", Left: expr, Right: ast.NewString(part)}
	}
	return expr
}

// fromCharCode turns "hi" into String.fromCharCode(104, 105).
func fromCharCode(s string) ast.Node {
	call := &ast.CallExpression{
		Callee: &ast.MemberExpression{
			Object:   ast.NewIdentifier("String"),
			Property: ast.NewIdentifier("fromCharCode"),
		},
	}
	for _, r := range s {
		call.Arguments = append(call.Arguments, ast.NewNumber(float64(r)))
	}
	return call
}

// reverseJoin turns "abc" into "cba".split("").reverse().join("").
func reverseJoin(s string) ast.Node {
	runes := []rune(s)
	for l, r := 0, len(runes)-1; l < r; l, r = l+1, r-1 {
		runes[l], runes[r] = runes[r], runes[l]
	}
	split := &ast.CallExpression{
		Callee: &ast.MemberExpression{
			Object:   ast.NewString(string(runes)),
			Property: ast.NewIdentifier("split"),
		},
		Arguments: []ast.Node{ast.NewString("")},
	}
	reverse := &ast.CallExpression{
		Callee: &ast.MemberExpression{Object: split, Property: ast.NewIdentifier("reverse")},
	}
	return &ast.CallExpression{
		Callee:    &ast.MemberExpression{Object: reverse, Property: ast.NewIdentifier("join")},
		Arguments: []ast.Node{ast.NewString("")},
	}
}

// percentDecode turns "hi" into decodeURIComponent("%68%69").
func percentDecode(s string) ast.Node {
	var sb strings.Builder
	for _, b := range []byte(s) {
		fmt.Fprintf(&sb, "%%%02x", b)
	}
	return &ast.CallExpression{
		Callee:    ast.NewIdentifier("decodeURIComponent"),
		Arguments: []ast.Node{ast.NewString(sb.String())},
	}
}

// base64Decode turns "hi" into atob("aGk=").
func base64Decode(s string) ast.Node {
	return &ast.CallExpression{
		Callee:    ast.NewIdentifier("atob"),
		Arguments: []ast.Node{ast.NewString(base64.StdEncoding.EncodeToString([]byte(s)))},
	}
}
