package transform

import (
	"fmt"
	"math/rand"

	"repro/internal/js/ast"
	"repro/internal/js/parser"
)

// selfDefendingTemplate is the code-protection guard in the obfuscator.io
// style: the IIFE converts a function of its own to source text and tests it
// against a formatting-sensitive regular expression, so the script stops
// working when beautified or when variables are renamed [24].
const selfDefendingTemplate = `var %s = (function () {
  var firstCall = true;
  return function (context, fn) {
    var wrapped = firstCall ? function () {
      if (fn) {
        var res = fn.apply(context, arguments);
        fn = null;
        return res;
      }
    } : function () {};
    firstCall = false;
    return wrapped;
  };
})();
var %s = %s(this, function () {
  var probe = function () {
    var mark = probe.constructor("return /" + this + "/")().constructor("^([^ ]+( +[^ ]+)+)+[^ ]}");
    return !mark.test(%s);
  };
  return probe();
});
%s();`

// applySelfDefending wraps the program with the self-defending guard. The
// caller minifies the result (self-defending code must ship minified so that
// any reformatting flips the regular-expression test).
func applySelfDefending(prog *ast.Program, rng *rand.Rand) {
	guardFactory := fmt.Sprintf("_0x%04x", rng.Intn(0x10000))
	guard := fmt.Sprintf("_0x%04x", rng.Intn(0x10000))
	for guard == guardFactory {
		guard = fmt.Sprintf("_0x%04x", rng.Intn(0x10000))
	}
	src := fmt.Sprintf(selfDefendingTemplate,
		guardFactory, guard, guardFactory, guard, guard)
	header, err := parser.ParseProgram(src)
	if err != nil {
		// The template is a constant; a parse failure is a programming error
		// caught by the test suite, and we degrade to a no-op here.
		return
	}
	insertAfterDirectives(prog, header.Body...)
}

// debugProtectionTemplate mirrors the obfuscator.io debug-protection output:
// a recursive probe that calls the Function constructor with "debugger" to
// stall developer tools, plus a periodic re-trigger [24].
const debugProtectionTemplate = `function %s(counter) {
  function probe(c) {
    if (typeof c === "string") {
      return (function (x) {}).constructor("while (true) {}").apply("counter");
    } else if (("" + c / c).length !== 1 || c %% 20 === 0) {
      (function () { return true; }).constructor("debugger").call("action");
    } else {
      (function () { return false; }).constructor("debugger").apply("stateObject");
    }
    probe(++c);
  }
  try {
    if (counter) {
      return probe;
    }
    probe(0);
  } catch (err) {}
}
setInterval(function () { %s(); }, 4000);`

// applyDebugProtection injects the anti-debugging prologue.
func applyDebugProtection(prog *ast.Program, rng *rand.Rand) {
	name := fmt.Sprintf("_0x%04x", rng.Intn(0x10000))
	src := fmt.Sprintf(debugProtectionTemplate, name, name)
	header, err := parser.ParseProgram(src)
	if err != nil {
		return
	}
	insertAfterDirectives(prog, header.Body...)
}
