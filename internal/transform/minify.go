package transform

import (
	"math"
	"math/rand"

	"repro/internal/js/ast"
	"repro/internal/js/walker"
)

// minifySimple performs the basic techniques of the JavaScript Minifier tool
// (Section II-B): whitespace and comment removal (done by compact printing),
// variable-name shortening, and removal of obviously dead code.
func minifySimple(prog *ast.Program, _ *rand.Rand) {
	shortenIdentifiers(prog)
	removeUnreachable(prog)
}

// minifyAdvanced performs the additional Google-closure-compiler-style
// optimizations: constant folding, boolean and undefined shortening,
// if-to-ternary and if-to-logical conversion, consecutive var merging, and
// dead-branch elimination.
func minifyAdvanced(prog *ast.Program, rng *rand.Rand) {
	foldConstants(prog)
	shortenLiterals(prog)
	convertIfs(prog)
	removeDeadBranches(prog)
	removeUnreachable(prog)
	mergeVarRuns(prog)
	shortenIdentifiers(prog)
	_ = rng
}

// removeUnreachable drops statements that follow a return/throw/break/
// continue in the same block.
func removeUnreachable(prog *ast.Program) {
	walker.Walk(prog, func(n ast.Node, _ int) bool {
		switch v := n.(type) {
		case *ast.BlockStatement:
			v.Body = truncateAfterJump(v.Body)
		case *ast.Program:
			v.Body = truncateAfterJump(v.Body)
		}
		return true
	})
}

func truncateAfterJump(body []ast.Node) []ast.Node {
	for i, s := range body {
		switch s.(type) {
		case *ast.ReturnStatement, *ast.ThrowStatement, *ast.BreakStatement, *ast.ContinueStatement:
			// Keep declarations after the jump (they hoist); drop the rest.
			var kept []ast.Node
			for _, rest := range body[i+1:] {
				switch rest.(type) {
				case *ast.FunctionDeclaration, *ast.VariableDeclaration, *ast.ClassDeclaration:
					kept = append(kept, rest)
				}
			}
			return append(body[:i+1], kept...)
		}
	}
	return body
}

// foldConstants evaluates constant numeric and string expressions.
func foldConstants(prog *ast.Program) {
	walker.Rewrite(prog, func(n ast.Node) ast.Node {
		switch v := n.(type) {
		case *ast.BinaryExpression:
			if folded := foldBinary(v); folded != nil {
				return folded
			}
		case *ast.UnaryExpression:
			if folded := foldUnary(v); folded != nil {
				return folded
			}
		}
		return n
	})
}

func numLit(n ast.Node) (float64, bool) {
	lit, ok := n.(*ast.Literal)
	if !ok || lit.Kind != ast.LiteralNumber {
		return 0, false
	}
	return lit.Number, true
}

func strLit(n ast.Node) (string, bool) {
	lit, ok := n.(*ast.Literal)
	if !ok || lit.Kind != ast.LiteralString {
		return "", false
	}
	return lit.String, true
}

func foldBinary(v *ast.BinaryExpression) ast.Node {
	if ls, ok := strLit(v.Left); ok {
		if rs, ok := strLit(v.Right); ok && v.Operator == "+" {
			return ast.NewString(ls + rs)
		}
	}
	l, lok := numLit(v.Left)
	r, rok := numLit(v.Right)
	if !lok || !rok {
		return nil
	}
	var out float64
	switch v.Operator {
	case "+":
		out = l + r
	case "-":
		out = l - r
	case "*":
		out = l * r
	case "/":
		if r == 0 {
			return nil
		}
		out = l / r
	case "%":
		if r == 0 {
			return nil
		}
		out = math.Mod(l, r)
	case "**":
		out = math.Pow(l, r)
	case "&":
		out = float64(toInt32(l) & toInt32(r))
	case "|":
		out = float64(toInt32(l) | toInt32(r))
	case "^":
		out = float64(toInt32(l) ^ toInt32(r))
	case "<<":
		out = float64(toInt32(l) << (uint32(toInt32(r)) & 31))
	case ">>":
		out = float64(toInt32(l) >> (uint32(toInt32(r)) & 31))
	default:
		return nil
	}
	if math.IsNaN(out) || math.IsInf(out, 0) || out != out {
		return nil
	}
	// Only fold when the result does not lose precision.
	if math.Abs(out) > 1e15 {
		return nil
	}
	if out < 0 {
		return &ast.UnaryExpression{Operator: "-", Argument: ast.NewNumber(-out)}
	}
	return ast.NewNumber(out)
}

func toInt32(f float64) int32 {
	return int32(uint32(int64(f)))
}

func foldUnary(v *ast.UnaryExpression) ast.Node {
	switch v.Operator {
	case "!":
		if lit, ok := v.Argument.(*ast.Literal); ok && lit.Kind == ast.LiteralBoolean {
			return ast.NewBool(!lit.Bool)
		}
	case "-":
		// Leave negative literals to the printer.
	case "typeof":
		if lit, ok := v.Argument.(*ast.Literal); ok {
			switch lit.Kind {
			case ast.LiteralString:
				return ast.NewString("string")
			case ast.LiteralNumber:
				return ast.NewString("number")
			case ast.LiteralBoolean:
				return ast.NewString("boolean")
			}
		}
	}
	return nil
}

// shortenLiterals rewrites true/false as !0/!1 and undefined as void 0, the
// classic closure-compiler shortcuts.
func shortenLiterals(prog *ast.Program) {
	skip := literalsToKeep(prog)
	walker.Rewrite(prog, func(n ast.Node) ast.Node {
		switch v := n.(type) {
		case *ast.Literal:
			if v.Kind == ast.LiteralBoolean && !skip[v] {
				num := 0.0
				if !v.Bool {
					num = 1.0
				}
				return &ast.UnaryExpression{Operator: "!", Argument: ast.NewNumber(num)}
			}
		case *ast.Identifier:
			if v.Name == "undefined" {
				return &ast.UnaryExpression{Operator: "void", Argument: ast.NewNumber(0)}
			}
		}
		return n
	})
}

// convertIfs replaces if statements with the conditional-operator or
// logical-operator shortcuts where possible [32]:
//
//	if (c) a(); else b();   →  c ? a() : b();
//	if (c) a();             →  c && a();
//	if (c) x = 1; else x = 2; → x = c ? 1 : 2;
func convertIfs(prog *ast.Program) {
	walker.Rewrite(prog, func(n ast.Node) ast.Node {
		v, ok := n.(*ast.IfStatement)
		if !ok {
			return n
		}
		cons := soleExpression(v.Consequent)
		if cons == nil {
			return n
		}
		if v.Alternate == nil {
			return &ast.ExpressionStatement{Expression: &ast.LogicalExpression{
				Operator: "&&", Left: v.Test, Right: cons,
			}}
		}
		alt := soleExpression(v.Alternate)
		if alt == nil {
			return n
		}
		// Same-target assignments merge into one.
		if ca, ok := cons.(*ast.AssignmentExpression); ok && ca.Operator == "=" {
			if aa, ok := alt.(*ast.AssignmentExpression); ok && aa.Operator == "=" {
				if sameSimpleTarget(ca.Left, aa.Left) {
					return &ast.ExpressionStatement{Expression: &ast.AssignmentExpression{
						Operator: "=",
						Left:     ca.Left,
						Right: &ast.ConditionalExpression{
							Test: v.Test, Consequent: ca.Right, Alternate: aa.Right,
						},
					}}
				}
			}
		}
		return &ast.ExpressionStatement{Expression: &ast.ConditionalExpression{
			Test: v.Test, Consequent: cons, Alternate: alt,
		}}
	})
}

// soleExpression unwraps a statement that consists of exactly one
// expression; it returns nil otherwise.
func soleExpression(n ast.Node) ast.Node {
	switch v := n.(type) {
	case *ast.ExpressionStatement:
		if v.Directive != "" {
			return nil
		}
		return v.Expression
	case *ast.BlockStatement:
		if len(v.Body) == 1 {
			return soleExpression(v.Body[0])
		}
	}
	return nil
}

func sameSimpleTarget(a, b ast.Node) bool {
	ai, ok1 := a.(*ast.Identifier)
	bi, ok2 := b.(*ast.Identifier)
	return ok1 && ok2 && ai.Name == bi.Name
}

// removeDeadBranches eliminates branches with constant tests.
func removeDeadBranches(prog *ast.Program) {
	walker.Rewrite(prog, func(n ast.Node) ast.Node {
		v, ok := n.(*ast.IfStatement)
		if !ok {
			return n
		}
		lit, ok := v.Test.(*ast.Literal)
		if !ok || lit.Kind != ast.LiteralBoolean {
			return n
		}
		if lit.Bool {
			return v.Consequent
		}
		if v.Alternate != nil {
			return v.Alternate
		}
		return &ast.EmptyStatement{}
	})
}

// mergeVarRuns merges runs of consecutive same-kind variable declarations
// into one declaration with multiple declarators.
func mergeVarRuns(prog *ast.Program) {
	mergeIn := func(body []ast.Node) []ast.Node {
		var out []ast.Node
		for _, s := range body {
			decl, ok := s.(*ast.VariableDeclaration)
			if ok && len(out) > 0 {
				if prev, ok := out[len(out)-1].(*ast.VariableDeclaration); ok && prev.Kind == decl.Kind {
					prev.Declarations = append(prev.Declarations, decl.Declarations...)
					continue
				}
			}
			out = append(out, s)
		}
		return out
	}
	walker.Walk(prog, func(n ast.Node, _ int) bool {
		switch v := n.(type) {
		case *ast.Program:
			v.Body = mergeIn(v.Body)
		case *ast.BlockStatement:
			v.Body = mergeIn(v.Body)
		}
		return true
	})
}
