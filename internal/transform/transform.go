// Package transform implements the ten JavaScript code transformation
// techniques the paper monitors (Section II-C), plus a Dean-Edwards-style
// packer used as the held-out generalization tool (Section III-E3). Each
// transformer is an AST-to-AST rewrite followed by code generation, so the
// output carries the same syntactic traces as the tools the paper studied
// (obfuscator.io, JSXFuck, gnirts, custom-encoding, JavaScript Minifier,
// Google closure compiler).
package transform

import (
	"fmt"
	"math/rand"

	"repro/internal/js/parser"
	"repro/internal/js/printer"
)

// Technique identifies one monitored transformation technique.
type Technique int

// The ten monitored techniques (Section II-C), plus Packer as the held-out
// tool never used in training.
const (
	IdentifierObfuscation Technique = iota + 1
	StringObfuscation
	GlobalArray
	NoAlphanumeric
	DeadCodeInjection
	ControlFlowFlattening
	SelfDefending
	DebugProtection
	MinifySimple
	MinifyAdvanced
	// Packer is the Dean Edwards-style packer (Daft Logic obfuscator). It is
	// NOT part of the monitored set; it exists to reproduce the paper's
	// generalization experiment.
	Packer
)

// Techniques lists the ten monitored techniques in canonical order.
var Techniques = []Technique{
	IdentifierObfuscation, StringObfuscation, GlobalArray, NoAlphanumeric,
	DeadCodeInjection, ControlFlowFlattening, SelfDefending, DebugProtection,
	MinifySimple, MinifyAdvanced,
}

// String returns the technique name used throughout reports and benchmarks.
func (t Technique) String() string {
	switch t {
	case IdentifierObfuscation:
		return "identifier obfuscation"
	case StringObfuscation:
		return "string obfuscation"
	case GlobalArray:
		return "global array"
	case NoAlphanumeric:
		return "no alphanumeric"
	case DeadCodeInjection:
		return "dead-code injection"
	case ControlFlowFlattening:
		return "control-flow flattening"
	case SelfDefending:
		return "self-defending"
	case DebugProtection:
		return "debug protection"
	case MinifySimple:
		return "minification simple"
	case MinifyAdvanced:
		return "minification advanced"
	case Packer:
		return "packer"
	case FieldReference:
		return "obfuscated field reference"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// IsMinification reports whether the technique belongs to the minification
// class at level 1 (the remaining eight are obfuscation).
func (t Technique) IsMinification() bool {
	return t == MinifySimple || t == MinifyAdvanced
}

// ParseTechnique resolves a technique from its canonical name.
func ParseTechnique(name string) (Technique, error) {
	for _, t := range append(append([]Technique{}, Techniques...), Packer, FieldReference) {
		if t.String() == name {
			return t, nil
		}
	}
	return 0, fmt.Errorf("unknown technique %q", name)
}

// Transform applies the techniques to src in order and returns the
// transformed source. The rng drives all randomized choices so corpora are
// reproducible from a seed.
func Transform(src string, rng *rand.Rand, techs ...Technique) (string, error) {
	if len(techs) == 0 {
		return src, nil
	}
	out := src
	for _, t := range techs {
		next, err := applyOne(out, rng, t)
		if err != nil {
			return "", fmt.Errorf("apply %s: %w", t, err)
		}
		out = next
	}
	return out, nil
}

func applyOne(src string, rng *rand.Rand, t Technique) (string, error) {
	// NoAlphanumeric and Packer consume source text directly.
	switch t {
	case NoAlphanumeric:
		return encodeNoAlphanumeric(src)
	case Packer:
		return pack(src, rng)
	}

	prog, err := parser.ParseProgram(src)
	if err != nil {
		return "", fmt.Errorf("parse input: %w", err)
	}
	minify := false
	switch t {
	case FieldReference:
		applyFieldReference(prog, rng)
	case IdentifierObfuscation:
		obfuscateIdentifiers(prog, rng)
	case StringObfuscation:
		obfuscateStrings(prog, rng)
	case GlobalArray:
		applyGlobalArray(prog, rng)
	case DeadCodeInjection:
		injectDeadCode(prog, rng)
	case ControlFlowFlattening:
		flattenControlFlow(prog, rng)
	case SelfDefending:
		applySelfDefending(prog, rng)
		minify = true // self-defending code ships minified so that
		// reformatting breaks it
	case DebugProtection:
		applyDebugProtection(prog, rng)
	case MinifySimple:
		minifySimple(prog, rng)
		minify = true
	case MinifyAdvanced:
		minifyAdvanced(prog, rng)
		minify = true
	default:
		return "", fmt.Errorf("unknown technique %v", t)
	}
	if minify {
		return printer.Compact(prog), nil
	}
	return printer.Pretty(prog), nil
}
