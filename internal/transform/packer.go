package transform

import (
	"fmt"
	"math/rand"
	"regexp"
	"sort"
	"strings"

	"repro/internal/js/parser"
	"repro/internal/js/printer"
)

// pack reproduces the Dean Edwards p.a.c.k.e.r format used by the Daft
// Logic obfuscator (the paper's Section III-E3 generalization tool, kept out
// of the training set): the source is minified, every word is replaced by a
// base-62 key, and the whole payload is shipped inside
// eval(function(p,a,c,k,e,d){...}('...',62,N,'w0|w1|...'.split('|'),0,{})).
func pack(src string, rng *rand.Rand) (string, error) {
	prog, err := parser.ParseProgram(src)
	if err != nil {
		return "", fmt.Errorf("parse input: %w", err)
	}
	// The packer's own pre-pass: shorten identifiers and minify.
	shortenIdentifiers(prog)
	payload := printer.Compact(prog)

	// Collect words by frequency (the packer replaces frequent words first).
	wordRe := regexp.MustCompile(`\w+`)
	counts := make(map[string]int)
	for _, w := range wordRe.FindAllString(payload, -1) {
		counts[w]++
	}
	words := make([]string, 0, len(counts))
	for w := range counts {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool {
		if counts[words[i]] != counts[words[j]] {
			return counts[words[i]] > counts[words[j]]
		}
		return words[i] < words[j]
	})
	if len(words) > 600 {
		words = words[:600]
	}

	keyOf := make(map[string]string, len(words))
	for i, w := range words {
		keyOf[w] = base62(i)
	}
	packed := wordRe.ReplaceAllStringFunc(payload, func(w string) string {
		if k, ok := keyOf[w]; ok {
			return k
		}
		return w
	})

	_ = rng
	return fmt.Sprintf(
		`eval(function(p,a,c,k,e,d){e=function(c){return(c<a?'':e(parseInt(c/a)))+((c=c%%a)>35?String.fromCharCode(c+29):c.toString(36))};if(!''.replace(/^/,String)){while(c--){d[e(c)]=k[c]||e(c)}k=[function(e){return d[e]}];e=function(){return'\\w+'};c=1};while(c--){if(k[c]){p=p.replace(new RegExp('\\b'+e(c)+'\\b','g'),k[c])}}return p}('%s',62,%d,'%s'.split('|'),0,{}))`,
		escapePackedPayload(packed), len(words), strings.Join(words, "|")), nil
}

// base62 produces the packer key sequence 0-9, a-z, A-Z, 10, 11, ...
// matching the packer's unbase function.
func base62(i int) string {
	digit := func(d int) string {
		if d > 35 {
			return string(rune(d + 29)) // A-Z
		}
		// 0-9a-z
		if d < 10 {
			return string(rune('0' + d))
		}
		return string(rune('a' + d - 10))
	}
	if i < 62 {
		return digit(i)
	}
	return base62(i/62) + digit(i%62)
}

// escapePackedPayload escapes the payload for embedding in a single-quoted
// string.
func escapePackedPayload(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `'`, `\'`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}
