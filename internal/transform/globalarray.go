package transform

import (
	"fmt"
	"math/rand"

	"repro/internal/js/ast"
	"repro/internal/js/walker"
)

// applyGlobalArray hoists every string literal into one global array and
// replaces each occurrence with an indexed fetch, the classic obfuscator.io
// "string array" transformation. An accessor function adds one indirection:
//
//	var _0xod31 = ["log", "hello", ...];
//	function _0xf1(i) { return _0xod31[i - 391]; }
//	console[_0xf1(391)](_0xf1(392));
func applyGlobalArray(prog *ast.Program, rng *rand.Rand) {
	arrayName := fmt.Sprintf("_0x%04x", rng.Intn(0x10000))
	accessorName := fmt.Sprintf("_0x%04x", rng.Intn(0x10000))
	for accessorName == arrayName {
		accessorName = fmt.Sprintf("_0x%04x", rng.Intn(0x10000))
	}
	offset := 100 + rng.Intn(900)

	skip := literalsToKeep(prog)
	var table []string
	index := make(map[string]int)

	walker.Rewrite(prog, func(n ast.Node) ast.Node {
		lit, ok := n.(*ast.Literal)
		if !ok || lit.Kind != ast.LiteralString || skip[lit] {
			return n
		}
		idx, seen := index[lit.String]
		if !seen {
			idx = len(table)
			index[lit.String] = idx
			table = append(table, lit.String)
		}
		return &ast.CallExpression{
			Callee:    ast.NewIdentifier(accessorName),
			Arguments: []ast.Node{ast.NewNumber(float64(idx + offset))},
		}
	})
	if len(table) == 0 {
		// No strings to hoist; still plant an (empty) array so the trace of
		// the technique is present.
		table = append(table, "")
	}

	arr := &ast.ArrayExpression{}
	for _, s := range table {
		arr.Elements = append(arr.Elements, ast.NewString(s))
	}
	decl := &ast.VariableDeclaration{
		Kind: "var",
		Declarations: []*ast.VariableDeclarator{
			{ID: ast.NewIdentifier(arrayName), Init: arr},
		},
	}
	accessor := &ast.FunctionDeclaration{
		ID:     ast.NewIdentifier(accessorName),
		Params: []ast.Node{ast.NewIdentifier("i")},
		Body: &ast.BlockStatement{Body: []ast.Node{
			&ast.ReturnStatement{Argument: &ast.MemberExpression{
				Object: ast.NewIdentifier(arrayName),
				Property: &ast.BinaryExpression{
					Operator: "-",
					Left:     ast.NewIdentifier("i"),
					Right:    ast.NewNumber(float64(offset)),
				},
				Computed: true,
			}},
		}},
	}
	insertAfterDirectives(prog, decl, accessor)
}

// insertAfterDirectives prepends statements to the program body, keeping any
// directive prologue ("use strict") first.
func insertAfterDirectives(prog *ast.Program, stmts ...ast.Node) {
	cut := 0
	for cut < len(prog.Body) {
		es, ok := prog.Body[cut].(*ast.ExpressionStatement)
		if !ok || es.Directive == "" {
			break
		}
		cut++
	}
	body := make([]ast.Node, 0, len(prog.Body)+len(stmts))
	body = append(body, prog.Body[:cut]...)
	body = append(body, stmts...)
	body = append(body, prog.Body[cut:]...)
	prog.Body = body
}
