package transform

import (
	"math/rand"
	"testing"
)

// BenchmarkTechniques measures each transformation technique end to end
// (parse, rewrite, print) on the shared sample program.
func BenchmarkTechniques(b *testing.B) {
	for _, tech := range append(append([]Technique{}, Techniques...), Packer) {
		b.Run(tech.String(), func(b *testing.B) {
			b.SetBytes(int64(len(sample)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Transform(sample, rand.New(rand.NewSource(1)), tech); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
