package transform

import (
	"fmt"
	"math/rand"

	"repro/internal/js/ast"
	"repro/internal/js/walker"
)

// injectDeadCode inserts irrelevant instructions: never-taken branches
// guarded by opaque predicates, junk functions that are never called, and
// cloned-but-dead copies of real statements (Section II-A, logic structure
// obfuscation).
func injectDeadCode(prog *ast.Program, rng *rand.Rand) {
	// Clone pool: shallow-printable statements already in the program.
	pool := collectCloneableStatements(prog)

	insert := func(body []ast.Node) []ast.Node {
		if len(body) == 0 {
			return body
		}
		count := 1 + rng.Intn(3)
		for i := 0; i < count; i++ {
			pos := rng.Intn(len(body) + 1)
			stmt := makeDeadStatement(rng, pool)
			body = append(body[:pos], append([]ast.Node{stmt}, body[pos:]...)...)
		}
		return body
	}

	// Collect insertion targets up front so junk inserted along the way is
	// never itself a target (which would cascade).
	var targets []*ast.BlockStatement
	walker.Walk(prog, func(n ast.Node, _ int) bool {
		switch v := n.(type) {
		case *ast.FunctionDeclaration:
			if v.Body != nil {
				targets = append(targets, v.Body)
			}
		case *ast.FunctionExpression:
			if v.Body != nil {
				targets = append(targets, v.Body)
			}
		}
		return true
	})
	prog.Body = insert(prog.Body)
	for _, body := range targets {
		if rng.Intn(2) == 0 {
			body.Body = insert(body.Body)
		}
	}
}

// collectCloneableStatements gathers simple statements whose dead clones look
// like real code. Statements containing function nodes are excluded: a
// by-reference clone of a statement inserted inside one of its own nested
// function bodies would make the tree cyclic.
func collectCloneableStatements(prog *ast.Program) []ast.Node {
	var pool []ast.Node
	walker.Walk(prog, func(n ast.Node, _ int) bool {
		switch n.(type) {
		case *ast.ExpressionStatement, *ast.ReturnStatement:
			if !containsFunction(n) {
				pool = append(pool, n)
			}
		}
		return true
	})
	if len(pool) > 64 {
		pool = pool[:64]
	}
	return pool
}

func containsFunction(n ast.Node) bool {
	found := false
	walker.Walk(n, func(c ast.Node, _ int) bool {
		if ast.IsFunction(c) {
			found = true
			return false
		}
		return true
	})
	return found
}

// makeDeadStatement builds one dead-code fragment.
func makeDeadStatement(rng *rand.Rand, pool []ast.Node) ast.Node {
	switch rng.Intn(3) {
	case 0:
		return deadBranch(rng, pool)
	case 1:
		return junkFunction(rng)
	default:
		return deadLoop(rng)
	}
}

// opaquePredicate returns an always-false test that is not a literal
// `false`, e.g. `0x1f4 === 0x1f5` or `"xk" == "xq"`.
func opaquePredicate(rng *rand.Rand) ast.Node {
	switch rng.Intn(3) {
	case 0:
		a := rng.Intn(4096)
		return &ast.BinaryExpression{
			Operator: "===",
			Left:     ast.NewNumber(float64(a)),
			Right:    ast.NewNumber(float64(a + 1 + rng.Intn(64))),
		}
	case 1:
		return &ast.BinaryExpression{
			Operator: "==",
			Left:     ast.NewString(randWord(rng, 3)),
			Right:    ast.NewString(randWord(rng, 4)),
		}
	default:
		a := float64(2 + rng.Intn(8))
		return &ast.BinaryExpression{
			Operator: "<",
			Left: &ast.BinaryExpression{
				Operator: "*",
				Left:     ast.NewNumber(a),
				Right:    ast.NewNumber(a),
			},
			Right: ast.NewNumber(a),
		}
	}
}

// deadBranch builds `if (<opaque false>) { <junk or clone> }`.
func deadBranch(rng *rand.Rand, pool []ast.Node) ast.Node {
	var body []ast.Node
	if len(pool) > 0 && rng.Intn(2) == 0 {
		n := 1 + rng.Intn(2)
		for i := 0; i < n; i++ {
			body = append(body, pool[rng.Intn(len(pool))])
		}
	} else {
		body = append(body, junkAssignment(rng))
	}
	return &ast.IfStatement{
		Test:       opaquePredicate(rng),
		Consequent: &ast.BlockStatement{Body: body},
	}
}

// junkFunction builds an uncalled function with plausible-looking junk.
func junkFunction(rng *rand.Rand) ast.Node {
	name := fmt.Sprintf("_f%04x", rng.Intn(0x10000))
	v := randWord(rng, 3)
	return &ast.FunctionDeclaration{
		ID:     ast.NewIdentifier(name),
		Params: []ast.Node{ast.NewIdentifier(v)},
		Body: &ast.BlockStatement{Body: []ast.Node{
			&ast.ReturnStatement{Argument: &ast.BinaryExpression{
				Operator: "*",
				Left:     ast.NewIdentifier(v),
				Right:    ast.NewNumber(float64(1 + rng.Intn(100))),
			}},
		}},
	}
}

// deadLoop builds `while (<opaque false>) { junk }`.
func deadLoop(rng *rand.Rand) ast.Node {
	return &ast.WhileStatement{
		Test: opaquePredicate(rng),
		Body: &ast.BlockStatement{Body: []ast.Node{junkAssignment(rng)}},
	}
}

func junkAssignment(rng *rand.Rand) ast.Node {
	return &ast.ExpressionStatement{Expression: &ast.AssignmentExpression{
		Operator: "=",
		Left:     ast.NewIdentifier(randWord(rng, 4)),
		Right:    ast.NewNumber(float64(rng.Intn(1000))),
	}}
}

func randWord(rng *rand.Rand, n int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}
