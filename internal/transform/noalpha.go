package transform

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/js/parser"
	"repro/internal/js/printer"
)

// encodeNoAlphanumeric rewrites a program using only the six characters
// []()!+ in the JSFuck/JSXFuck style (Section II-B): every character of the
// source is reconstructed from primitive coercions ("false", "true",
// "undefined", number-to-string, escape/unescape bootstrap), concatenated
// into a code string, and handed to the Function constructor.
//
// The output is syntactically faithful to the technique (enormous chains of
// unary/binary expressions over array literals, computed member accesses,
// zero alphanumeric characters); inputs are capped so a transformed file
// stays within the paper's 2 MB analysis bound.
func encodeNoAlphanumeric(src string) (string, error) {
	// Compact the program first so the character budget packs as much real
	// code as possible, then cap the payload: JSFuck expands input by two
	// orders of magnitude, and the paper's pipeline only analyzes files up
	// to 2 MB anyway.
	if prog, err := parser.ParseProgram(src); err == nil {
		src = printer.Compact(prog)
	}
	if len(src) > NoAlphaMaxInput {
		src = src[:NoAlphaMaxInput]
	}
	enc := newJSFuckEncoder()
	code, _, err := enc.encodeString(src)
	if err != nil {
		return "", err
	}
	// [][S("entries")][S("constructor")](code)() — build and invoke.
	fn, err := enc.functionConstructor()
	if err != nil {
		return "", err
	}
	return fn + "(" + code + ")()", nil
}

type jsfuckEncoder struct {
	chars map[rune]string
}

func newJSFuckEncoder() *jsfuckEncoder {
	e := &jsfuckEncoder{chars: make(map[rune]string)}
	e.seed()
	return e
}

// numExpr builds a numeric expression for n ≥ 0 from !+[] atoms; multi-digit
// numbers go through string concatenation and unary plus.
func (e *jsfuckEncoder) numExpr(n int) string {
	switch {
	case n == 0:
		return "+[]"
	case n < 10:
		parts := make([]string, n)
		for i := range parts {
			parts[i] = "!+[]"
		}
		return "+" + strings.Join(parts, "+")
	default:
		// +( digit-string concatenation )
		digits := strconv.Itoa(n)
		var sb strings.Builder
		sb.WriteString("+(")
		for i, d := range digits {
			if i > 0 {
				sb.WriteString("+")
			}
			sb.WriteString("(" + e.numExpr(int(d-'0')) + "+[])")
		}
		sb.WriteString(")")
		return sb.String()
	}
}

// index returns an index expression usable inside [...] brackets.
func (e *jsfuckEncoder) index(n int) string { return e.numExpr(n) }

// seed registers the characters reachable from the primitive coercion
// strings.
func (e *jsfuckEncoder) seed() {
	reg := func(base string, text string) {
		for i, r := range text {
			if _, ok := e.chars[r]; !ok {
				e.chars[r] = "(" + base + ")[" + e.index(i) + "]"
			}
		}
	}
	reg("![]+[]", "false")
	reg("!![]+[]", "true")
	reg("[][[]]+[]", "undefined")
	reg("+[![]]+[]", "NaN")
	// Digits as single-character strings.
	for d := 0; d <= 9; d++ {
		e.chars[rune('0'+d)] = "(" + e.numExpr(d) + "+[])"
	}
}

// str builds an expression producing the given string by concatenating
// per-character expressions.
func (e *jsfuckEncoder) str(s string) (string, error) {
	if s == "" {
		return "([]+[])", nil
	}
	var parts []string
	for _, r := range s {
		c, err := e.char(r)
		if err != nil {
			return "", err
		}
		parts = append(parts, c)
	}
	return strings.Join(parts, "+"), nil
}

// char returns (memoized) an expression evaluating to the single-character
// string for r.
func (e *jsfuckEncoder) char(r rune) (string, error) {
	if c, ok := e.chars[r]; ok {
		return c, nil
	}
	c, err := e.buildChar(r)
	if err != nil {
		return "", err
	}
	e.chars[r] = c
	return c, nil
}

// entriesString is "[object Array Iterator]" obtained via
// []["entries"]() + [].
func (e *jsfuckEncoder) entriesString() (string, error) {
	entries, err := e.str("entries")
	if err != nil {
		return "", err
	}
	return "([][" + entries + "]()+[])", nil
}

// stringCtorSource is "function String() { [native code] }" via
// ([]+[])["constructor"]+[].
func (e *jsfuckEncoder) stringCtorSource() (string, error) {
	ctor, err := e.str("constructor")
	if err != nil {
		return "", err
	}
	return "(([]+[])[" + ctor + "]+[])", nil
}

// functionConstructor is [][ "entries" ][ "constructor" ] — the Function
// constructor.
func (e *jsfuckEncoder) functionConstructor() (string, error) {
	entries, err := e.str("entries")
	if err != nil {
		return "", err
	}
	ctor, err := e.str("constructor")
	if err != nil {
		return "", err
	}
	return "[][" + entries + "][" + ctor + "]", nil
}

// buildChar derives one character using progressively heavier machinery.
func (e *jsfuckEncoder) buildChar(r rune) (string, error) {
	// Characters from "[object Array Iterator]".
	if idx := strings.IndexRune("[object Array Iterator]", r); idx >= 0 {
		base, err := e.entriesString()
		if err != nil {
			return "", err
		}
		return base + "[" + e.index(idx) + "]", nil
	}
	// Characters from "function String() { [native code] }".
	if idx := strings.IndexRune("function String() { [native code] }", r); idx >= 0 {
		base, err := e.stringCtorSource()
		if err != nil {
			return "", err
		}
		return base + "[" + e.index(idx) + "]", nil
	}
	// Lowercase letters via (n).toString(36).
	if r >= 'a' && r <= 'z' {
		toString, err := e.str("toString")
		if err != nil {
			return "", err
		}
		n := 10 + int(r-'a')
		return "(" + e.numExpr(n) + ")[" + toString + "](" + e.numExpr(36) + ")", nil
	}
	// Everything else through unescape("%XX") / unescape("%uXXXX").
	return e.unescapeChar(r)
}

// percent returns an expression for the "%" string: escape("[")[0].
func (e *jsfuckEncoder) percent() (string, error) {
	fn, err := e.functionConstructor()
	if err != nil {
		return "", err
	}
	ret, err := e.str("return escape")
	if err != nil {
		return "", err
	}
	bracket, err := e.char('[')
	if err != nil {
		return "", err
	}
	return "(" + fn + "(" + ret + ")()(" + bracket + "))[" + e.index(0) + "]", nil
}

func (e *jsfuckEncoder) unescapeChar(r rune) (string, error) {
	fn, err := e.functionConstructor()
	if err != nil {
		return "", err
	}
	ret, err := e.str("return unescape")
	if err != nil {
		return "", err
	}
	pct, err := e.percent()
	if err != nil {
		return "", err
	}
	var hexStr string
	if r < 256 {
		hexStr = fmt.Sprintf("%02x", r)
	} else {
		hexStr = fmt.Sprintf("u%04x", r)
	}
	arg := pct
	for _, h := range hexStr {
		hc, err := e.char(h)
		if err != nil {
			return "", fmt.Errorf("cannot encode hex digit %q for %q: %w", h, r, err)
		}
		arg += "+" + hc
	}
	return "(" + fn + "(" + ret + ")()(" + arg + "))", nil
}

// NoAlphaMaxInput caps the (compacted) source the no-alphanumeric encoder
// will embed; longer programs are truncated by design so a transformed file
// stays within the paper's 2 MB analysis bound.
const NoAlphaMaxInput = 1536

// maxOutput bounds the encoded payload: rare characters cost kilobytes of
// atoms each, and the analysis pipeline caps files at 2 MB anyway.
const maxOutput = 384 << 10

// NoAlphaLossless reports whether encodeNoAlphanumeric preserves src exactly:
// the compacted program fits the input cap and its encoding stays within the
// output budget. Past either cap the embedded payload is a truncated prefix
// of the source, which is intentionally not semantics-preserving.
func NoAlphaLossless(src string) bool {
	if prog, err := parser.ParseProgram(src); err == nil {
		src = printer.Compact(prog)
	}
	if len(src) > NoAlphaMaxInput {
		return false
	}
	enc := newJSFuckEncoder()
	_, truncated, err := enc.encodeString(src)
	return err == nil && !truncated
}

// encodeString encodes the program text as one string expression, stopping
// once the output budget is reached; truncated reports whether it stopped
// before consuming all of src.
func (e *jsfuckEncoder) encodeString(src string) (string, bool, error) {
	var sb strings.Builder
	first := true
	rs := []rune(src)
	for i, r := range rs {
		c, err := e.char(r)
		if err != nil {
			return "", false, err
		}
		if !first {
			sb.WriteString("+")
		}
		sb.WriteString(c)
		first = false
		if sb.Len() > maxOutput {
			return sb.String(), i < len(rs)-1, nil
		}
	}
	if first {
		return "([]+[])", false, nil
	}
	return sb.String(), false, nil
}
