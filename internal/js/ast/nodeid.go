package ast

// NodeID is a dense pre-order index into one stamped tree: the Program root
// is 0, and every node's ID is one greater than the node visited just before
// it in an EachChild pre-order walk. IDs are dense — a stamped tree with N
// nodes uses exactly the IDs [0, N) — so downstream passes replace
// pointer-keyed maps with flat slices indexed by ID (see scope.Info).
//
// IDs are scoped to the tree they were stamped on. Nodes created after
// stamping (e.g. by transforms) carry ID 0; since slot 0 always belongs to
// the Program root, a dense table's slot 0 is never a meaningful entry for
// an Identifier, which lets lookups treat unstamped nodes as "absent"
// without a sentinel check. Mutating a stamped tree invalidates density and
// pre-order; re-stamp before trusting IDs again (ownership rules: DESIGN.md
// "Dense node plane").
type NodeID uint32

// IDStamper walks a tree assigning dense pre-order NodeIDs, optionally
// recording the pre-order kind stream as it goes (the same stream the n-gram
// extractor consumes, so a stamped parse never needs a second kind walk).
// The visit field holds visitNode as a method value bound once per instance
// so the recursive walk allocates nothing; the parser keeps one IDStamper
// per session and reuses it across files.
type IDStamper struct {
	next    NodeID
	kinds   []uint16
	collect bool
	visit   func(Node)
}

// NewIDStamper returns a stamper with the zero-alloc visit hook pre-bound.
func NewIDStamper() *IDStamper {
	s := &IDStamper{}
	s.visit = s.visitNode
	return s
}

// Stamp assigns dense pre-order IDs to every node under prog, sets
// prog.NodeCount, and appends the pre-order kind stream to kinds (which may
// be nil). It returns the extended kinds slice. The caller owns kinds; the
// stamper retains no reference to it after returning.
func (s *IDStamper) Stamp(prog *Program, kinds []uint16) []uint16 {
	s.next = 0
	s.kinds = kinds
	s.collect = true
	s.visitNode(prog)
	prog.NodeCount = uint32(s.next)
	kinds = s.kinds
	s.kinds = nil // do not pin the caller's buffer across files
	return kinds
}

// StampIDs assigns dense pre-order IDs without collecting kinds and returns
// the node count. It allocates only on first use of a fresh stamper, so
// passes that receive already-mutated trees (transforms, deobfuscation) can
// afford to re-stamp unconditionally.
func (s *IDStamper) StampIDs(prog *Program) uint32 {
	s.next = 0
	s.collect = false
	s.visitNode(prog)
	prog.NodeCount = uint32(s.next)
	return prog.NodeCount
}

// StampIDs stamps prog with a throwaway stamper. Steady-state callers (the
// parser, flow sessions) hold an IDStamper instead.
func StampIDs(prog *Program) uint32 {
	return NewIDStamper().StampIDs(prog)
}

// visitNode stamps n and recurses. The recursive step passes the pre-bound
// s.visit field, not the visitNode method itself: a method value in argument
// position would allocate its bound closure on every node.
//
//jslint:hotpath
func (s *IDStamper) visitNode(n Node) {
	n.SetNodeID(s.next)
	s.next++
	if s.collect {
		s.kinds = append(s.kinds, uint16(n.NodeKind()))
	}
	EachChild(n, s.visit)
}
