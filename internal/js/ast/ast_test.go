package ast

import "testing"

func TestNodeTypeNames(t *testing.T) {
	// The feature space is keyed on Esprima node type names; these strings
	// are load-bearing and must never drift.
	tests := map[Node]string{
		&Program{}:                  "Program",
		&ExpressionStatement{}:      "ExpressionStatement",
		&BlockStatement{}:           "BlockStatement",
		&IfStatement{}:              "IfStatement",
		&SwitchStatement{}:          "SwitchStatement",
		&SwitchCase{}:               "SwitchCase",
		&TryStatement{}:             "TryStatement",
		&CatchClause{}:              "CatchClause",
		&WhileStatement{}:           "WhileStatement",
		&DoWhileStatement{}:         "DoWhileStatement",
		&ForStatement{}:             "ForStatement",
		&ForInStatement{}:           "ForInStatement",
		&ForOfStatement{}:           "ForOfStatement",
		&FunctionDeclaration{}:      "FunctionDeclaration",
		&FunctionExpression{}:       "FunctionExpression",
		&ArrowFunctionExpression{}:  "ArrowFunctionExpression",
		&VariableDeclaration{}:      "VariableDeclaration",
		&VariableDeclarator{}:       "VariableDeclarator",
		&Identifier{}:               "Identifier",
		&Literal{}:                  "Literal",
		&MemberExpression{}:         "MemberExpression",
		&CallExpression{}:           "CallExpression",
		&NewExpression{}:            "NewExpression",
		&BinaryExpression{}:         "BinaryExpression",
		&LogicalExpression{}:        "LogicalExpression",
		&AssignmentExpression{}:     "AssignmentExpression",
		&ConditionalExpression{}:    "ConditionalExpression",
		&SequenceExpression{}:       "SequenceExpression",
		&TemplateLiteral{}:          "TemplateLiteral",
		&TaggedTemplateExpression{}: "TaggedTemplateExpression",
		&UnaryExpression{}:          "UnaryExpression",
		&UpdateExpression{}:         "UpdateExpression",
		&ThisExpression{}:           "ThisExpression",
		&ArrayExpression{}:          "ArrayExpression",
		&ObjectExpression{}:         "ObjectExpression",
		&Property{}:                 "Property",
	}
	for node, want := range tests {
		if got := node.Type(); got != want {
			t.Fatalf("Type() = %q, want %q", got, want)
		}
	}
}

func TestChildrenSkipNil(t *testing.T) {
	ifStmt := &IfStatement{
		Test:       NewIdentifier("a"),
		Consequent: &BlockStatement{},
		// Alternate nil
	}
	kids := Children(ifStmt)
	if len(kids) != 2 {
		t.Fatalf("children = %d, want 2", len(kids))
	}
	for _, k := range kids {
		if k == nil {
			t.Fatal("nil child leaked")
		}
	}
}

func TestChildrenTemplateInterleaving(t *testing.T) {
	tpl := &TemplateLiteral{
		Quasis: []*TemplateElement{
			{Raw: "a"}, {Raw: "b"}, {Raw: "c", Tail: true},
		},
		Expressions: []Node{NewIdentifier("x"), NewIdentifier("y")},
	}
	kids := Children(tpl)
	want := []string{"TemplateElement", "Identifier", "TemplateElement", "Identifier", "TemplateElement"}
	if len(kids) != len(want) {
		t.Fatalf("children = %d, want %d", len(kids), len(want))
	}
	for i, k := range kids {
		if k.Type() != want[i] {
			t.Fatalf("child %d = %s, want %s", i, k.Type(), want[i])
		}
	}
}

func TestClassifiers(t *testing.T) {
	if !IsConditionalControlFlow(&IfStatement{}) || !IsConditionalControlFlow(&ConditionalExpression{}) {
		t.Fatal("conditional classifier broken")
	}
	if IsConditionalControlFlow(&ExpressionStatement{}) {
		t.Fatal("expression statement is not conditional control flow")
	}
	if !IsFunction(&ArrowFunctionExpression{}) || IsFunction(&CallExpression{}) {
		t.Fatal("function classifier broken")
	}
	if !IsCallLike(&CallExpression{}) || !IsCallLike(&TaggedTemplateExpression{}) {
		t.Fatal("call classifier broken")
	}
	if !IsStatement(&VariableDeclaration{}) || IsStatement(&BinaryExpression{}) {
		t.Fatal("statement classifier broken")
	}
}

func TestLiteralConstructors(t *testing.T) {
	if NewString("x").Kind != LiteralString {
		t.Fatal("NewString kind")
	}
	if NewNumber(1).Kind != LiteralNumber {
		t.Fatal("NewNumber kind")
	}
	if NewBool(true).Kind != LiteralBoolean || !NewBool(true).Bool {
		t.Fatal("NewBool kind")
	}
	if NewNull().Kind != LiteralNull {
		t.Fatal("NewNull kind")
	}
}

func TestSpanAccessors(t *testing.T) {
	id := NewIdentifier("x")
	span := Span{Start: Pos{Offset: 3, Line: 1, Column: 3}, End: Pos{Offset: 4, Line: 1, Column: 4}}
	id.SetSpan(span)
	if id.Span() != span {
		t.Fatal("span round trip failed")
	}
}
