package ast_test

import (
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/js/ast"
	"repro/internal/js/parser"
	"repro/internal/js/printer"
	"repro/internal/transform"
)

// idFixtures builds the corpus the NodeID invariants are checked over:
// generated regular files plus one output per monitored transformation
// technique.
func idFixtures(t *testing.T) []corpus.File {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	files := corpus.RegularSet(3, rng)
	base := files[0]
	for _, tech := range transform.Techniques {
		out, err := corpus.Apply(base, rng, tech)
		if err != nil {
			t.Fatalf("apply %s: %v", tech, err)
		}
		files = append(files, out)
	}
	return files
}

// preorder collects the EachChild pre-order node sequence — the canonical
// order the stamper assigns IDs in.
func preorder(prog *ast.Program) []ast.Node {
	var out []ast.Node
	var visit func(ast.Node)
	visit = func(n ast.Node) {
		out = append(out, n)
		ast.EachChild(n, visit)
	}
	visit(prog)
	return out
}

// TestNodeIDsDensePreorder pins the tentpole invariant: after a parse, the
// tree's NodeIDs are exactly 0..NodeCount-1 assigned in EachChild pre-order,
// with the Program root at 0.
func TestNodeIDsDensePreorder(t *testing.T) {
	for _, f := range idFixtures(t) {
		res, err := parser.ParseNoTokens(f.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", f.Name, err)
		}
		nodes := preorder(res.Program)
		if got, want := res.Program.NodeCount, uint32(len(nodes)); got != want {
			t.Fatalf("%s: NodeCount = %d, pre-order walk sees %d nodes", f.Name, got, want)
		}
		for i, n := range nodes {
			if got := n.NodeID(); got != ast.NodeID(i) {
				t.Fatalf("%s: pre-order node %d (%v) has NodeID %d", f.Name, i, n.NodeKind(), got)
			}
		}
		if res.Program.NodeID() != 0 {
			t.Fatalf("%s: Program NodeID = %d, want 0", f.Name, res.Program.NodeID())
		}
	}
}

// TestNodeIDsStableAcrossPrintReparse checks the stamping is a pure function
// of tree shape: printing a tree and reparsing the output yields the same
// (NodeID, kind) stream, so dense IDs can key cross-parse comparisons.
func TestNodeIDsStableAcrossPrintReparse(t *testing.T) {
	for _, f := range idFixtures(t) {
		res, err := parser.ParseNoTokens(f.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", f.Name, err)
		}
		res2, err := parser.ParseNoTokens(printer.Compact(res.Program))
		if err != nil {
			t.Fatalf("%s: reparse: %v", f.Name, err)
		}
		a, b := preorder(res.Program), preorder(res2.Program)
		if len(a) != len(b) {
			t.Fatalf("%s: %d nodes, reparse has %d", f.Name, len(a), len(b))
		}
		for i := range a {
			if a[i].NodeID() != b[i].NodeID() || a[i].NodeKind() != b[i].NodeKind() {
				t.Fatalf("%s: node %d = (%d, %v), reparse (%d, %v)", f.Name, i,
					a[i].NodeID(), a[i].NodeKind(), b[i].NodeID(), b[i].NodeKind())
			}
		}
	}
}

// TestStamperKindStream checks the Kinds stream the stamper records during
// parsing is the per-node kind of the same pre-order walk — the contract the
// features n-gram path consumes the stream under.
func TestStamperKindStream(t *testing.T) {
	for _, f := range idFixtures(t) {
		res, err := parser.ParseNoTokens(f.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", f.Name, err)
		}
		nodes := preorder(res.Program)
		if len(res.Kinds) != len(nodes) {
			t.Fatalf("%s: Kinds has %d entries, walk sees %d nodes", f.Name, len(res.Kinds), len(nodes))
		}
		for i, n := range nodes {
			if res.Kinds[i] != uint16(n.NodeKind()) {
				t.Fatalf("%s: Kinds[%d] = %d, node kind %v", f.Name, i, res.Kinds[i], n.NodeKind())
			}
		}
	}
}

// TestStampIDsRestamps checks re-stamping after a mutation restores density:
// the stamper is what scope.Session.Analyze leans on for mutated trees.
func TestStampIDsRestamps(t *testing.T) {
	res, err := parser.ParseNoTokens("var a = 1; function f(x) { return a + x; }")
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a transform wiping IDs on part of the tree.
	for i, n := range preorder(res.Program) {
		if i%2 == 1 {
			n.SetNodeID(0)
		}
	}
	n := ast.StampIDs(res.Program)
	if n != res.Program.NodeCount {
		t.Fatalf("StampIDs returned %d, NodeCount %d", n, res.Program.NodeCount)
	}
	for i, node := range preorder(res.Program) {
		if node.NodeID() != ast.NodeID(i) {
			t.Fatalf("after restamp, node %d has NodeID %d", i, node.NodeID())
		}
	}
}
