package ast

// EachChild calls f for each direct non-nil child of n in source order,
// skipping nil slots (e.g. array elisions or absent else-branches). It is the
// single source of truth for tree traversal — Children and the walker are
// built on it — and it never allocates, which matters to hot per-node passes
// like the flow builder and the static-analysis engine.
func EachChild(n Node, f func(Node)) {
	switch v := n.(type) {
	case *Program:
		each(v.Body, f)
	case *ExpressionStatement:
		walkOne(v.Expression, f)
	case *BlockStatement:
		each(v.Body, f)
	case *EmptyStatement, *DebuggerStatement, *Identifier, *Literal,
		*ThisExpression, *Super, *TemplateElement, *MetaProperty:
	case *WithStatement:
		walkOne(v.Object, f)
		walkOne(v.Body, f)
	case *ReturnStatement:
		walkOne(v.Argument, f)
	case *LabeledStatement:
		walkOne(ident(v.Label), f)
		walkOne(v.Body, f)
	case *BreakStatement:
		walkOne(ident(v.Label), f)
	case *ContinueStatement:
		walkOne(ident(v.Label), f)
	case *IfStatement:
		walkOne(v.Test, f)
		walkOne(v.Consequent, f)
		walkOne(v.Alternate, f)
	case *SwitchStatement:
		walkOne(v.Discriminant, f)
		for _, c := range v.Cases {
			if c != nil {
				f(c)
			}
		}
	case *SwitchCase:
		walkOne(v.Test, f)
		each(v.Consequent, f)
	case *ThrowStatement:
		walkOne(v.Argument, f)
	case *TryStatement:
		walkOne(block(v.Block), f)
		walkOne(clause(v.Handler), f)
		walkOne(block(v.Finalizer), f)
	case *CatchClause:
		walkOne(v.Param, f)
		walkOne(block(v.Body), f)
	case *WhileStatement:
		walkOne(v.Test, f)
		walkOne(v.Body, f)
	case *DoWhileStatement:
		walkOne(v.Body, f)
		walkOne(v.Test, f)
	case *ForStatement:
		walkOne(v.Init, f)
		walkOne(v.Test, f)
		walkOne(v.Update, f)
		walkOne(v.Body, f)
	case *ForInStatement:
		walkOne(v.Left, f)
		walkOne(v.Right, f)
		walkOne(v.Body, f)
	case *ForOfStatement:
		walkOne(v.Left, f)
		walkOne(v.Right, f)
		walkOne(v.Body, f)
	case *FunctionDeclaration:
		walkOne(ident(v.ID), f)
		each(v.Params, f)
		walkOne(block(v.Body), f)
	case *FunctionExpression:
		walkOne(ident(v.ID), f)
		each(v.Params, f)
		walkOne(block(v.Body), f)
	case *ArrowFunctionExpression:
		each(v.Params, f)
		walkOne(v.Body, f)
	case *VariableDeclaration:
		for _, d := range v.Declarations {
			if d != nil {
				f(d)
			}
		}
	case *VariableDeclarator:
		walkOne(v.ID, f)
		walkOne(v.Init, f)
	case *ClassDeclaration:
		walkOne(ident(v.ID), f)
		walkOne(v.SuperClass, f)
		walkOne(classBody(v.Body), f)
	case *ClassExpression:
		walkOne(ident(v.ID), f)
		walkOne(v.SuperClass, f)
		walkOne(classBody(v.Body), f)
	case *ClassBody:
		each(v.Body, f)
	case *MethodDefinition:
		walkOne(v.Key, f)
		walkOne(funcExpr(v.Value), f)
	case *PropertyDefinition:
		walkOne(v.Key, f)
		walkOne(v.Value, f)
	case *ImportDeclaration:
		each(v.Specifiers, f)
		walkOne(lit(v.Source), f)
	case *ImportSpecifier:
		walkOne(ident(v.Imported), f)
		walkOne(ident(v.Local), f)
	case *ImportDefaultSpecifier:
		walkOne(ident(v.Local), f)
	case *ImportNamespaceSpecifier:
		walkOne(ident(v.Local), f)
	case *ExportNamedDeclaration:
		walkOne(v.Declaration, f)
		for _, s := range v.Specifiers {
			if s != nil {
				f(s)
			}
		}
		walkOne(lit(v.Source), f)
	case *ExportSpecifier:
		walkOne(ident(v.Local), f)
		walkOne(ident(v.Exported), f)
	case *ExportDefaultDeclaration:
		walkOne(v.Declaration, f)
	case *ExportAllDeclaration:
		walkOne(lit(v.Source), f)
	case *ArrayExpression:
		each(v.Elements, f)
	case *ObjectExpression:
		each(v.Properties, f)
	case *Property:
		walkOne(v.Key, f)
		walkOne(v.Value, f)
	case *TemplateLiteral:
		// Interleave quasis and expressions in source order.
		for i, q := range v.Quasis {
			if q != nil {
				f(q)
			}
			if i < len(v.Expressions) && v.Expressions[i] != nil {
				f(v.Expressions[i])
			}
		}
	case *TaggedTemplateExpression:
		walkOne(v.Tag, f)
		walkOne(templ(v.Quasi), f)
	case *MemberExpression:
		walkOne(v.Object, f)
		walkOne(v.Property, f)
	case *CallExpression:
		walkOne(v.Callee, f)
		each(v.Arguments, f)
	case *NewExpression:
		walkOne(v.Callee, f)
		each(v.Arguments, f)
	case *SpreadElement:
		walkOne(v.Argument, f)
	case *UnaryExpression:
		walkOne(v.Argument, f)
	case *UpdateExpression:
		walkOne(v.Argument, f)
	case *BinaryExpression:
		walkOne(v.Left, f)
		walkOne(v.Right, f)
	case *LogicalExpression:
		walkOne(v.Left, f)
		walkOne(v.Right, f)
	case *AssignmentExpression:
		walkOne(v.Left, f)
		walkOne(v.Right, f)
	case *ConditionalExpression:
		walkOne(v.Test, f)
		walkOne(v.Consequent, f)
		walkOne(v.Alternate, f)
	case *SequenceExpression:
		each(v.Expressions, f)
	case *RestElement:
		walkOne(v.Argument, f)
	case *AssignmentPattern:
		walkOne(v.Left, f)
		walkOne(v.Right, f)
	case *ArrayPattern:
		each(v.Elements, f)
	case *ObjectPattern:
		each(v.Properties, f)
	case *AwaitExpression:
		walkOne(v.Argument, f)
	case *YieldExpression:
		walkOne(v.Argument, f)
	}
}

// Children returns the direct child nodes of n in source order. It allocates
// a fresh slice; per-node hot paths should prefer EachChild.
func Children(n Node) []Node {
	var out []Node
	EachChild(n, func(c Node) { out = append(out, c) })
	return out
}

// each applies f to the non-nil entries of nodes.
func each(nodes []Node, f func(Node)) {
	for _, n := range nodes {
		if n != nil {
			f(n)
		}
	}
}

// walkOne applies f to n when it is non-nil.
func walkOne(n Node, f func(Node)) {
	if n != nil {
		f(n)
	}
}

// IsStatement reports whether n is a statement-level node, i.e. a node that
// participates in control flow per the paper's restriction of control edges
// to statement nodes (plus CatchClause and ConditionalExpression, which the
// flow package adds explicitly).
func IsStatement(n Node) bool {
	return n != nil && statementKinds[n.NodeKind()]
}

// IsConditionalControlFlow reports whether n is one of the conditional
// control-flow node types the paper uses as a corpus filter (footnote 2):
// loops, if, ternary, try, and switch.
func IsConditionalControlFlow(n Node) bool {
	return n != nil && conditionalControlFlowKinds[n.NodeKind()]
}

// IsFunction reports whether n is one of the function node types from the
// paper's corpus filter (footnote 3).
func IsFunction(n Node) bool {
	return n != nil && functionKinds[n.NodeKind()]
}

// IsCallLike reports whether n is a CallExpression or a
// TaggedTemplateExpression (footnote 4: the call filter includes tagged
// templates).
func IsCallLike(n Node) bool {
	return n != nil && callLikeKinds[n.NodeKind()]
}

// The helpers below exist to turn possibly-nil typed pointers into Node
// values without producing non-nil interfaces that wrap nil pointers.

func ident(id *Identifier) Node {
	if id == nil {
		return nil
	}
	return id
}

func block(b *BlockStatement) Node {
	if b == nil {
		return nil
	}
	return b
}

func clause(c *CatchClause) Node {
	if c == nil {
		return nil
	}
	return c
}

func classBody(b *ClassBody) Node {
	if b == nil {
		return nil
	}
	return b
}

func funcExpr(f *FunctionExpression) Node {
	if f == nil {
		return nil
	}
	return f
}

func lit(l *Literal) Node {
	if l == nil {
		return nil
	}
	return l
}

func templ(t *TemplateLiteral) Node {
	if t == nil {
		return nil
	}
	return t
}
