package ast

// Children returns the direct child nodes of n in source order, skipping nil
// slots (e.g. array elisions or absent else-branches). It is the single
// source of truth for tree traversal: the walker, the flow analyses, and the
// feature extractor all iterate the AST through this function.
func Children(n Node) []Node {
	switch v := n.(type) {
	case *Program:
		return compact(v.Body)
	case *ExpressionStatement:
		return one(v.Expression)
	case *BlockStatement:
		return compact(v.Body)
	case *EmptyStatement, *DebuggerStatement, *Identifier, *Literal,
		*ThisExpression, *Super, *TemplateElement, *MetaProperty:
		return nil
	case *WithStatement:
		return list(v.Object, v.Body)
	case *ReturnStatement:
		return one(v.Argument)
	case *LabeledStatement:
		return list(ident(v.Label), v.Body)
	case *BreakStatement:
		return one(ident(v.Label))
	case *ContinueStatement:
		return one(ident(v.Label))
	case *IfStatement:
		return list(v.Test, v.Consequent, v.Alternate)
	case *SwitchStatement:
		out := make([]Node, 0, len(v.Cases)+1)
		out = append(out, v.Discriminant)
		for _, c := range v.Cases {
			if c != nil {
				out = append(out, c)
			}
		}
		return out
	case *SwitchCase:
		out := make([]Node, 0, len(v.Consequent)+1)
		if v.Test != nil {
			out = append(out, v.Test)
		}
		return append(out, compact(v.Consequent)...)
	case *ThrowStatement:
		return one(v.Argument)
	case *TryStatement:
		return list(block(v.Block), clause(v.Handler), block(v.Finalizer))
	case *CatchClause:
		return list(v.Param, block(v.Body))
	case *WhileStatement:
		return list(v.Test, v.Body)
	case *DoWhileStatement:
		return list(v.Body, v.Test)
	case *ForStatement:
		return list(v.Init, v.Test, v.Update, v.Body)
	case *ForInStatement:
		return list(v.Left, v.Right, v.Body)
	case *ForOfStatement:
		return list(v.Left, v.Right, v.Body)
	case *FunctionDeclaration:
		return funcParts(ident(v.ID), v.Params, block(v.Body))
	case *FunctionExpression:
		return funcParts(ident(v.ID), v.Params, block(v.Body))
	case *ArrowFunctionExpression:
		return funcParts(nil, v.Params, v.Body)
	case *VariableDeclaration:
		out := make([]Node, 0, len(v.Declarations))
		for _, d := range v.Declarations {
			if d != nil {
				out = append(out, d)
			}
		}
		return out
	case *VariableDeclarator:
		return list(v.ID, v.Init)
	case *ClassDeclaration:
		return list(ident(v.ID), v.SuperClass, classBody(v.Body))
	case *ClassExpression:
		return list(ident(v.ID), v.SuperClass, classBody(v.Body))
	case *ClassBody:
		return compact(v.Body)
	case *MethodDefinition:
		return list(v.Key, funcExpr(v.Value))
	case *PropertyDefinition:
		return list(v.Key, v.Value)
	case *ImportDeclaration:
		return append(compact(v.Specifiers), one(lit(v.Source))...)
	case *ImportSpecifier:
		return list(ident(v.Imported), ident(v.Local))
	case *ImportDefaultSpecifier:
		return one(ident(v.Local))
	case *ImportNamespaceSpecifier:
		return one(ident(v.Local))
	case *ExportNamedDeclaration:
		out := one(v.Declaration)
		for _, s := range v.Specifiers {
			if s != nil {
				out = append(out, s)
			}
		}
		return append(out, one(lit(v.Source))...)
	case *ExportSpecifier:
		return list(ident(v.Local), ident(v.Exported))
	case *ExportDefaultDeclaration:
		return one(v.Declaration)
	case *ExportAllDeclaration:
		return one(lit(v.Source))
	case *ArrayExpression:
		return compact(v.Elements)
	case *ObjectExpression:
		return compact(v.Properties)
	case *Property:
		return list(v.Key, v.Value)
	case *TemplateLiteral:
		// Interleave quasis and expressions in source order.
		out := make([]Node, 0, len(v.Quasis)+len(v.Expressions))
		for i, q := range v.Quasis {
			if q != nil {
				out = append(out, q)
			}
			if i < len(v.Expressions) && v.Expressions[i] != nil {
				out = append(out, v.Expressions[i])
			}
		}
		return out
	case *TaggedTemplateExpression:
		return list(v.Tag, templ(v.Quasi))
	case *MemberExpression:
		return list(v.Object, v.Property)
	case *CallExpression:
		return append(one(v.Callee), compact(v.Arguments)...)
	case *NewExpression:
		return append(one(v.Callee), compact(v.Arguments)...)
	case *SpreadElement:
		return one(v.Argument)
	case *UnaryExpression:
		return one(v.Argument)
	case *UpdateExpression:
		return one(v.Argument)
	case *BinaryExpression:
		return list(v.Left, v.Right)
	case *LogicalExpression:
		return list(v.Left, v.Right)
	case *AssignmentExpression:
		return list(v.Left, v.Right)
	case *ConditionalExpression:
		return list(v.Test, v.Consequent, v.Alternate)
	case *SequenceExpression:
		return compact(v.Expressions)
	case *RestElement:
		return one(v.Argument)
	case *AssignmentPattern:
		return list(v.Left, v.Right)
	case *ArrayPattern:
		return compact(v.Elements)
	case *ObjectPattern:
		return compact(v.Properties)
	case *AwaitExpression:
		return one(v.Argument)
	case *YieldExpression:
		return one(v.Argument)
	default:
		return nil
	}
}

// IsStatement reports whether n is a statement-level node, i.e. a node that
// participates in control flow per the paper's restriction of control edges
// to statement nodes (plus CatchClause and ConditionalExpression, which the
// flow package adds explicitly).
func IsStatement(n Node) bool {
	switch n.(type) {
	case *Program, *ExpressionStatement, *BlockStatement, *EmptyStatement,
		*DebuggerStatement, *WithStatement, *ReturnStatement,
		*LabeledStatement, *BreakStatement, *ContinueStatement, *IfStatement,
		*SwitchStatement, *SwitchCase, *ThrowStatement, *TryStatement,
		*WhileStatement, *DoWhileStatement, *ForStatement, *ForInStatement,
		*ForOfStatement, *FunctionDeclaration, *VariableDeclaration,
		*ClassDeclaration, *ImportDeclaration, *ExportNamedDeclaration,
		*ExportDefaultDeclaration, *ExportAllDeclaration:
		return true
	default:
		return false
	}
}

// IsConditionalControlFlow reports whether n is one of the conditional
// control-flow node types the paper uses as a corpus filter (footnote 2):
// loops, if, ternary, try, and switch.
func IsConditionalControlFlow(n Node) bool {
	switch n.(type) {
	case *DoWhileStatement, *WhileStatement, *ForStatement, *ForOfStatement,
		*ForInStatement, *IfStatement, *ConditionalExpression, *TryStatement,
		*SwitchStatement:
		return true
	default:
		return false
	}
}

// IsFunction reports whether n is one of the function node types from the
// paper's corpus filter (footnote 3).
func IsFunction(n Node) bool {
	switch n.(type) {
	case *ArrowFunctionExpression, *FunctionExpression, *FunctionDeclaration:
		return true
	default:
		return false
	}
}

// IsCallLike reports whether n is a CallExpression or a
// TaggedTemplateExpression (footnote 4: the call filter includes tagged
// templates).
func IsCallLike(n Node) bool {
	switch n.(type) {
	case *CallExpression, *TaggedTemplateExpression:
		return true
	default:
		return false
	}
}

// The helpers below exist to turn possibly-nil typed pointers into Node
// values without producing non-nil interfaces that wrap nil pointers.

func ident(id *Identifier) Node {
	if id == nil {
		return nil
	}
	return id
}

func block(b *BlockStatement) Node {
	if b == nil {
		return nil
	}
	return b
}

func clause(c *CatchClause) Node {
	if c == nil {
		return nil
	}
	return c
}

func classBody(b *ClassBody) Node {
	if b == nil {
		return nil
	}
	return b
}

func funcExpr(f *FunctionExpression) Node {
	if f == nil {
		return nil
	}
	return f
}

func lit(l *Literal) Node {
	if l == nil {
		return nil
	}
	return l
}

func templ(t *TemplateLiteral) Node {
	if t == nil {
		return nil
	}
	return t
}

func one(n Node) []Node {
	if n == nil {
		return nil
	}
	return []Node{n}
}

func list(nodes ...Node) []Node { return compact(nodes) }

func compact(nodes []Node) []Node {
	out := make([]Node, 0, len(nodes))
	for _, n := range nodes {
		if n != nil {
			out = append(out, n)
		}
	}
	return out
}

func funcParts(id Node, params []Node, body Node) []Node {
	out := make([]Node, 0, len(params)+2)
	if id != nil {
		out = append(out, id)
	}
	out = append(out, compact(params)...)
	if body != nil {
		out = append(out, body)
	}
	return out
}
