package ast

// Arena is a per-kind slab allocator for AST nodes. The parser allocates
// every node of one file out of one Arena instead of minting ~100 distinct
// heap objects per statement: each node type draws from its own backing
// slice, so a file's nodes live in a few dozen contiguous chunks rather
// than hundreds of thousands of individual allocations.
//
// Ownership: an Arena belongs to exactly one parse and dies with the
// parser.Result built from it — the nodes keep their backing chunks alive
// through ordinary GC reachability, so the arena needs no explicit free and
// nothing downstream may retain node pointers past the Result they came
// from. An Arena must never be reset or reused for a second file: handing
// out a previous file's node storage again would corrupt any still-live
// AST. The zero value is ready to use.
//
// Pointer stability: alloc never moves previously returned nodes. When a
// chunk fills up, grow abandons it in place (the nodes already handed out
// pin it) and starts a fresh, larger one.
type Arena struct {
	program                  []Program
	expressionStatement      []ExpressionStatement
	blockStatement           []BlockStatement
	emptyStatement           []EmptyStatement
	debuggerStatement        []DebuggerStatement
	withStatement            []WithStatement
	returnStatement          []ReturnStatement
	labeledStatement         []LabeledStatement
	breakStatement           []BreakStatement
	continueStatement        []ContinueStatement
	ifStatement              []IfStatement
	switchStatement          []SwitchStatement
	switchCase               []SwitchCase
	throwStatement           []ThrowStatement
	tryStatement             []TryStatement
	catchClause              []CatchClause
	whileStatement           []WhileStatement
	doWhileStatement         []DoWhileStatement
	forStatement             []ForStatement
	forInStatement           []ForInStatement
	forOfStatement           []ForOfStatement
	functionDeclaration      []FunctionDeclaration
	variableDeclaration      []VariableDeclaration
	variableDeclarator       []VariableDeclarator
	classDeclaration         []ClassDeclaration
	classBody                []ClassBody
	propertyDefinition       []PropertyDefinition
	methodDefinition         []MethodDefinition
	importDeclaration        []ImportDeclaration
	importSpecifier          []ImportSpecifier
	importDefaultSpecifier   []ImportDefaultSpecifier
	importNamespaceSpecifier []ImportNamespaceSpecifier
	exportNamedDeclaration   []ExportNamedDeclaration
	exportSpecifier          []ExportSpecifier
	exportDefaultDeclaration []ExportDefaultDeclaration
	exportAllDeclaration     []ExportAllDeclaration
	identifier               []Identifier
	literal                  []Literal
	thisExpression           []ThisExpression
	super                    []Super
	arrayExpression          []ArrayExpression
	objectExpression         []ObjectExpression
	property                 []Property
	functionExpression       []FunctionExpression
	arrowFunctionExpression  []ArrowFunctionExpression
	classExpression          []ClassExpression
	templateLiteral          []TemplateLiteral
	templateElement          []TemplateElement
	taggedTemplateExpression []TaggedTemplateExpression
	memberExpression         []MemberExpression
	callExpression           []CallExpression
	newExpression            []NewExpression
	spreadElement            []SpreadElement
	unaryExpression          []UnaryExpression
	updateExpression         []UpdateExpression
	binaryExpression         []BinaryExpression
	logicalExpression        []LogicalExpression
	assignmentExpression     []AssignmentExpression
	conditionalExpression    []ConditionalExpression
	sequenceExpression       []SequenceExpression
	restElement              []RestElement
	assignmentPattern        []AssignmentPattern
	arrayPattern             []ArrayPattern
	objectPattern            []ObjectPattern
	awaitExpression          []AwaitExpression
	yieldExpression          []YieldExpression
	metaProperty             []MetaProperty

	// count is the total number of nodes handed out, across every slab.
	// StampIDs uses it (via NodeCount) to pre-size the dense ID table and
	// the parse-order kind stream exactly.
	count int
}

// NodeCount reports how many nodes this arena has allocated.
func (a *Arena) NodeCount() int { return a.count }

// Slab chunk sizing: chunks double from arenaChunkMin nodes up to
// arenaChunkMax, so tiny files pay for a handful of nodes while big
// minified bundles settle into large chunks with O(log n) growths.
const (
	arenaChunkMin = 16
	arenaChunkMax = 1024
)

// arenaAlloc returns a node slot from the slab, growing it when full. The
// amortized cost is one bump and one bounds check per node.
//
//jslint:hotpath
func arenaAlloc[T any](count *int, slab *[]T) *T {
	buf := *slab
	if len(buf) == cap(buf) {
		buf = arenaGrow(buf)
	}
	buf = buf[:len(buf)+1]
	*slab = buf
	*count++
	return &buf[len(buf)-1]
}

// arenaGrow starts a fresh, larger chunk. The filled chunk is abandoned
// rather than copied: the nodes already handed out keep it reachable, and
// copying would move them out from under their pointers.
func arenaGrow[T any](old []T) []T {
	n := 2 * cap(old)
	if n < arenaChunkMin {
		n = arenaChunkMin
	}
	if n > arenaChunkMax {
		n = arenaChunkMax
	}
	return make([]T, 0, n)
}

// One constructor per node type. Each copies the given value into
// arena-owned storage and returns the stable pointer, so call sites read
// exactly like the &T{...} literals they replace.

//jslint:hotpath
func (a *Arena) NewProgram(v Program) *Program {
	n := arenaAlloc(&a.count, &a.program)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewExpressionStatement(v ExpressionStatement) *ExpressionStatement {
	n := arenaAlloc(&a.count, &a.expressionStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewBlockStatement(v BlockStatement) *BlockStatement {
	n := arenaAlloc(&a.count, &a.blockStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewEmptyStatement(v EmptyStatement) *EmptyStatement {
	n := arenaAlloc(&a.count, &a.emptyStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewDebuggerStatement(v DebuggerStatement) *DebuggerStatement {
	n := arenaAlloc(&a.count, &a.debuggerStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewWithStatement(v WithStatement) *WithStatement {
	n := arenaAlloc(&a.count, &a.withStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewReturnStatement(v ReturnStatement) *ReturnStatement {
	n := arenaAlloc(&a.count, &a.returnStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewLabeledStatement(v LabeledStatement) *LabeledStatement {
	n := arenaAlloc(&a.count, &a.labeledStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewBreakStatement(v BreakStatement) *BreakStatement {
	n := arenaAlloc(&a.count, &a.breakStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewContinueStatement(v ContinueStatement) *ContinueStatement {
	n := arenaAlloc(&a.count, &a.continueStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewIfStatement(v IfStatement) *IfStatement {
	n := arenaAlloc(&a.count, &a.ifStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewSwitchStatement(v SwitchStatement) *SwitchStatement {
	n := arenaAlloc(&a.count, &a.switchStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewSwitchCase(v SwitchCase) *SwitchCase {
	n := arenaAlloc(&a.count, &a.switchCase)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewThrowStatement(v ThrowStatement) *ThrowStatement {
	n := arenaAlloc(&a.count, &a.throwStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewTryStatement(v TryStatement) *TryStatement {
	n := arenaAlloc(&a.count, &a.tryStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewCatchClause(v CatchClause) *CatchClause {
	n := arenaAlloc(&a.count, &a.catchClause)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewWhileStatement(v WhileStatement) *WhileStatement {
	n := arenaAlloc(&a.count, &a.whileStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewDoWhileStatement(v DoWhileStatement) *DoWhileStatement {
	n := arenaAlloc(&a.count, &a.doWhileStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewForStatement(v ForStatement) *ForStatement {
	n := arenaAlloc(&a.count, &a.forStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewForInStatement(v ForInStatement) *ForInStatement {
	n := arenaAlloc(&a.count, &a.forInStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewForOfStatement(v ForOfStatement) *ForOfStatement {
	n := arenaAlloc(&a.count, &a.forOfStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewFunctionDeclaration(v FunctionDeclaration) *FunctionDeclaration {
	n := arenaAlloc(&a.count, &a.functionDeclaration)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewVariableDeclaration(v VariableDeclaration) *VariableDeclaration {
	n := arenaAlloc(&a.count, &a.variableDeclaration)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewVariableDeclarator(v VariableDeclarator) *VariableDeclarator {
	n := arenaAlloc(&a.count, &a.variableDeclarator)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewClassDeclaration(v ClassDeclaration) *ClassDeclaration {
	n := arenaAlloc(&a.count, &a.classDeclaration)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewClassBody(v ClassBody) *ClassBody {
	n := arenaAlloc(&a.count, &a.classBody)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewPropertyDefinition(v PropertyDefinition) *PropertyDefinition {
	n := arenaAlloc(&a.count, &a.propertyDefinition)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewMethodDefinition(v MethodDefinition) *MethodDefinition {
	n := arenaAlloc(&a.count, &a.methodDefinition)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewImportDeclaration(v ImportDeclaration) *ImportDeclaration {
	n := arenaAlloc(&a.count, &a.importDeclaration)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewImportSpecifier(v ImportSpecifier) *ImportSpecifier {
	n := arenaAlloc(&a.count, &a.importSpecifier)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewImportDefaultSpecifier(v ImportDefaultSpecifier) *ImportDefaultSpecifier {
	n := arenaAlloc(&a.count, &a.importDefaultSpecifier)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewImportNamespaceSpecifier(v ImportNamespaceSpecifier) *ImportNamespaceSpecifier {
	n := arenaAlloc(&a.count, &a.importNamespaceSpecifier)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewExportNamedDeclaration(v ExportNamedDeclaration) *ExportNamedDeclaration {
	n := arenaAlloc(&a.count, &a.exportNamedDeclaration)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewExportSpecifier(v ExportSpecifier) *ExportSpecifier {
	n := arenaAlloc(&a.count, &a.exportSpecifier)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewExportDefaultDeclaration(v ExportDefaultDeclaration) *ExportDefaultDeclaration {
	n := arenaAlloc(&a.count, &a.exportDefaultDeclaration)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewExportAllDeclaration(v ExportAllDeclaration) *ExportAllDeclaration {
	n := arenaAlloc(&a.count, &a.exportAllDeclaration)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewIdentifier(v Identifier) *Identifier {
	n := arenaAlloc(&a.count, &a.identifier)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewLiteral(v Literal) *Literal {
	n := arenaAlloc(&a.count, &a.literal)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewThisExpression(v ThisExpression) *ThisExpression {
	n := arenaAlloc(&a.count, &a.thisExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewSuper(v Super) *Super {
	n := arenaAlloc(&a.count, &a.super)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewArrayExpression(v ArrayExpression) *ArrayExpression {
	n := arenaAlloc(&a.count, &a.arrayExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewObjectExpression(v ObjectExpression) *ObjectExpression {
	n := arenaAlloc(&a.count, &a.objectExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewProperty(v Property) *Property {
	n := arenaAlloc(&a.count, &a.property)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewFunctionExpression(v FunctionExpression) *FunctionExpression {
	n := arenaAlloc(&a.count, &a.functionExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewArrowFunctionExpression(v ArrowFunctionExpression) *ArrowFunctionExpression {
	n := arenaAlloc(&a.count, &a.arrowFunctionExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewClassExpression(v ClassExpression) *ClassExpression {
	n := arenaAlloc(&a.count, &a.classExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewTemplateLiteral(v TemplateLiteral) *TemplateLiteral {
	n := arenaAlloc(&a.count, &a.templateLiteral)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewTemplateElement(v TemplateElement) *TemplateElement {
	n := arenaAlloc(&a.count, &a.templateElement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewTaggedTemplateExpression(v TaggedTemplateExpression) *TaggedTemplateExpression {
	n := arenaAlloc(&a.count, &a.taggedTemplateExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewMemberExpression(v MemberExpression) *MemberExpression {
	n := arenaAlloc(&a.count, &a.memberExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewCallExpression(v CallExpression) *CallExpression {
	n := arenaAlloc(&a.count, &a.callExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewNewExpression(v NewExpression) *NewExpression {
	n := arenaAlloc(&a.count, &a.newExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewSpreadElement(v SpreadElement) *SpreadElement {
	n := arenaAlloc(&a.count, &a.spreadElement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewUnaryExpression(v UnaryExpression) *UnaryExpression {
	n := arenaAlloc(&a.count, &a.unaryExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewUpdateExpression(v UpdateExpression) *UpdateExpression {
	n := arenaAlloc(&a.count, &a.updateExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewBinaryExpression(v BinaryExpression) *BinaryExpression {
	n := arenaAlloc(&a.count, &a.binaryExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewLogicalExpression(v LogicalExpression) *LogicalExpression {
	n := arenaAlloc(&a.count, &a.logicalExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewAssignmentExpression(v AssignmentExpression) *AssignmentExpression {
	n := arenaAlloc(&a.count, &a.assignmentExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewConditionalExpression(v ConditionalExpression) *ConditionalExpression {
	n := arenaAlloc(&a.count, &a.conditionalExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewSequenceExpression(v SequenceExpression) *SequenceExpression {
	n := arenaAlloc(&a.count, &a.sequenceExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewRestElement(v RestElement) *RestElement {
	n := arenaAlloc(&a.count, &a.restElement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewAssignmentPattern(v AssignmentPattern) *AssignmentPattern {
	n := arenaAlloc(&a.count, &a.assignmentPattern)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewArrayPattern(v ArrayPattern) *ArrayPattern {
	n := arenaAlloc(&a.count, &a.arrayPattern)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewObjectPattern(v ObjectPattern) *ObjectPattern {
	n := arenaAlloc(&a.count, &a.objectPattern)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewAwaitExpression(v AwaitExpression) *AwaitExpression {
	n := arenaAlloc(&a.count, &a.awaitExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewYieldExpression(v YieldExpression) *YieldExpression {
	n := arenaAlloc(&a.count, &a.yieldExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewMetaProperty(v MetaProperty) *MetaProperty {
	n := arenaAlloc(&a.count, &a.metaProperty)
	*n = v
	return n
}
