package ast

// Arena is a per-kind slab allocator for AST nodes. The parser allocates
// every node of one file out of one Arena instead of minting ~100 distinct
// heap objects per statement: each node type draws from its own backing
// slice, so a file's nodes live in a few dozen contiguous chunks rather
// than hundreds of thousands of individual allocations.
//
// Ownership: an Arena belongs to exactly one parse and dies with the
// parser.Result built from it — the nodes keep their backing chunks alive
// through ordinary GC reachability, so the arena needs no explicit free and
// nothing downstream may retain node pointers past the Result they came
// from. An Arena must never be reset or reused for a second file: handing
// out a previous file's node storage again would corrupt any still-live
// AST. The zero value is ready to use.
//
// Pointer stability: alloc never moves previously returned nodes. When a
// chunk fills up, grow abandons it in place (the nodes already handed out
// pin it) and starts a fresh, larger one.
type Arena struct {
	program                  []Program
	expressionStatement      []ExpressionStatement
	blockStatement           []BlockStatement
	emptyStatement           []EmptyStatement
	debuggerStatement        []DebuggerStatement
	withStatement            []WithStatement
	returnStatement          []ReturnStatement
	labeledStatement         []LabeledStatement
	breakStatement           []BreakStatement
	continueStatement        []ContinueStatement
	ifStatement              []IfStatement
	switchStatement          []SwitchStatement
	switchCase               []SwitchCase
	throwStatement           []ThrowStatement
	tryStatement             []TryStatement
	catchClause              []CatchClause
	whileStatement           []WhileStatement
	doWhileStatement         []DoWhileStatement
	forStatement             []ForStatement
	forInStatement           []ForInStatement
	forOfStatement           []ForOfStatement
	functionDeclaration      []FunctionDeclaration
	variableDeclaration      []VariableDeclaration
	variableDeclarator       []VariableDeclarator
	classDeclaration         []ClassDeclaration
	classBody                []ClassBody
	propertyDefinition       []PropertyDefinition
	methodDefinition         []MethodDefinition
	importDeclaration        []ImportDeclaration
	importSpecifier          []ImportSpecifier
	importDefaultSpecifier   []ImportDefaultSpecifier
	importNamespaceSpecifier []ImportNamespaceSpecifier
	exportNamedDeclaration   []ExportNamedDeclaration
	exportSpecifier          []ExportSpecifier
	exportDefaultDeclaration []ExportDefaultDeclaration
	exportAllDeclaration     []ExportAllDeclaration
	identifier               []Identifier
	literal                  []Literal
	thisExpression           []ThisExpression
	super                    []Super
	arrayExpression          []ArrayExpression
	objectExpression         []ObjectExpression
	property                 []Property
	functionExpression       []FunctionExpression
	arrowFunctionExpression  []ArrowFunctionExpression
	classExpression          []ClassExpression
	templateLiteral          []TemplateLiteral
	templateElement          []TemplateElement
	taggedTemplateExpression []TaggedTemplateExpression
	memberExpression         []MemberExpression
	callExpression           []CallExpression
	newExpression            []NewExpression
	spreadElement            []SpreadElement
	unaryExpression          []UnaryExpression
	updateExpression         []UpdateExpression
	binaryExpression         []BinaryExpression
	logicalExpression        []LogicalExpression
	assignmentExpression     []AssignmentExpression
	conditionalExpression    []ConditionalExpression
	sequenceExpression       []SequenceExpression
	restElement              []RestElement
	assignmentPattern        []AssignmentPattern
	arrayPattern             []ArrayPattern
	objectPattern            []ObjectPattern
	awaitExpression          []AwaitExpression
	yieldExpression          []YieldExpression
	metaProperty             []MetaProperty
}

// Slab chunk sizing: chunks double from arenaChunkMin nodes up to
// arenaChunkMax, so tiny files pay for a handful of nodes while big
// minified bundles settle into large chunks with O(log n) growths.
const (
	arenaChunkMin = 16
	arenaChunkMax = 1024
)

// arenaAlloc returns a node slot from the slab, growing it when full. The
// amortized cost is one bump and one bounds check per node.
//
//jslint:hotpath
func arenaAlloc[T any](slab *[]T) *T {
	buf := *slab
	if len(buf) == cap(buf) {
		buf = arenaGrow(buf)
	}
	buf = buf[:len(buf)+1]
	*slab = buf
	return &buf[len(buf)-1]
}

// arenaGrow starts a fresh, larger chunk. The filled chunk is abandoned
// rather than copied: the nodes already handed out keep it reachable, and
// copying would move them out from under their pointers.
func arenaGrow[T any](old []T) []T {
	n := 2 * cap(old)
	if n < arenaChunkMin {
		n = arenaChunkMin
	}
	if n > arenaChunkMax {
		n = arenaChunkMax
	}
	return make([]T, 0, n)
}

// One constructor per node type. Each copies the given value into
// arena-owned storage and returns the stable pointer, so call sites read
// exactly like the &T{...} literals they replace.

//jslint:hotpath
func (a *Arena) NewProgram(v Program) *Program {
	n := arenaAlloc(&a.program)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewExpressionStatement(v ExpressionStatement) *ExpressionStatement {
	n := arenaAlloc(&a.expressionStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewBlockStatement(v BlockStatement) *BlockStatement {
	n := arenaAlloc(&a.blockStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewEmptyStatement(v EmptyStatement) *EmptyStatement {
	n := arenaAlloc(&a.emptyStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewDebuggerStatement(v DebuggerStatement) *DebuggerStatement {
	n := arenaAlloc(&a.debuggerStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewWithStatement(v WithStatement) *WithStatement {
	n := arenaAlloc(&a.withStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewReturnStatement(v ReturnStatement) *ReturnStatement {
	n := arenaAlloc(&a.returnStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewLabeledStatement(v LabeledStatement) *LabeledStatement {
	n := arenaAlloc(&a.labeledStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewBreakStatement(v BreakStatement) *BreakStatement {
	n := arenaAlloc(&a.breakStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewContinueStatement(v ContinueStatement) *ContinueStatement {
	n := arenaAlloc(&a.continueStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewIfStatement(v IfStatement) *IfStatement {
	n := arenaAlloc(&a.ifStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewSwitchStatement(v SwitchStatement) *SwitchStatement {
	n := arenaAlloc(&a.switchStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewSwitchCase(v SwitchCase) *SwitchCase {
	n := arenaAlloc(&a.switchCase)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewThrowStatement(v ThrowStatement) *ThrowStatement {
	n := arenaAlloc(&a.throwStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewTryStatement(v TryStatement) *TryStatement {
	n := arenaAlloc(&a.tryStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewCatchClause(v CatchClause) *CatchClause {
	n := arenaAlloc(&a.catchClause)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewWhileStatement(v WhileStatement) *WhileStatement {
	n := arenaAlloc(&a.whileStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewDoWhileStatement(v DoWhileStatement) *DoWhileStatement {
	n := arenaAlloc(&a.doWhileStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewForStatement(v ForStatement) *ForStatement {
	n := arenaAlloc(&a.forStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewForInStatement(v ForInStatement) *ForInStatement {
	n := arenaAlloc(&a.forInStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewForOfStatement(v ForOfStatement) *ForOfStatement {
	n := arenaAlloc(&a.forOfStatement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewFunctionDeclaration(v FunctionDeclaration) *FunctionDeclaration {
	n := arenaAlloc(&a.functionDeclaration)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewVariableDeclaration(v VariableDeclaration) *VariableDeclaration {
	n := arenaAlloc(&a.variableDeclaration)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewVariableDeclarator(v VariableDeclarator) *VariableDeclarator {
	n := arenaAlloc(&a.variableDeclarator)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewClassDeclaration(v ClassDeclaration) *ClassDeclaration {
	n := arenaAlloc(&a.classDeclaration)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewClassBody(v ClassBody) *ClassBody {
	n := arenaAlloc(&a.classBody)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewPropertyDefinition(v PropertyDefinition) *PropertyDefinition {
	n := arenaAlloc(&a.propertyDefinition)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewMethodDefinition(v MethodDefinition) *MethodDefinition {
	n := arenaAlloc(&a.methodDefinition)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewImportDeclaration(v ImportDeclaration) *ImportDeclaration {
	n := arenaAlloc(&a.importDeclaration)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewImportSpecifier(v ImportSpecifier) *ImportSpecifier {
	n := arenaAlloc(&a.importSpecifier)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewImportDefaultSpecifier(v ImportDefaultSpecifier) *ImportDefaultSpecifier {
	n := arenaAlloc(&a.importDefaultSpecifier)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewImportNamespaceSpecifier(v ImportNamespaceSpecifier) *ImportNamespaceSpecifier {
	n := arenaAlloc(&a.importNamespaceSpecifier)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewExportNamedDeclaration(v ExportNamedDeclaration) *ExportNamedDeclaration {
	n := arenaAlloc(&a.exportNamedDeclaration)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewExportSpecifier(v ExportSpecifier) *ExportSpecifier {
	n := arenaAlloc(&a.exportSpecifier)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewExportDefaultDeclaration(v ExportDefaultDeclaration) *ExportDefaultDeclaration {
	n := arenaAlloc(&a.exportDefaultDeclaration)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewExportAllDeclaration(v ExportAllDeclaration) *ExportAllDeclaration {
	n := arenaAlloc(&a.exportAllDeclaration)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewIdentifier(v Identifier) *Identifier {
	n := arenaAlloc(&a.identifier)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewLiteral(v Literal) *Literal {
	n := arenaAlloc(&a.literal)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewThisExpression(v ThisExpression) *ThisExpression {
	n := arenaAlloc(&a.thisExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewSuper(v Super) *Super {
	n := arenaAlloc(&a.super)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewArrayExpression(v ArrayExpression) *ArrayExpression {
	n := arenaAlloc(&a.arrayExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewObjectExpression(v ObjectExpression) *ObjectExpression {
	n := arenaAlloc(&a.objectExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewProperty(v Property) *Property {
	n := arenaAlloc(&a.property)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewFunctionExpression(v FunctionExpression) *FunctionExpression {
	n := arenaAlloc(&a.functionExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewArrowFunctionExpression(v ArrowFunctionExpression) *ArrowFunctionExpression {
	n := arenaAlloc(&a.arrowFunctionExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewClassExpression(v ClassExpression) *ClassExpression {
	n := arenaAlloc(&a.classExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewTemplateLiteral(v TemplateLiteral) *TemplateLiteral {
	n := arenaAlloc(&a.templateLiteral)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewTemplateElement(v TemplateElement) *TemplateElement {
	n := arenaAlloc(&a.templateElement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewTaggedTemplateExpression(v TaggedTemplateExpression) *TaggedTemplateExpression {
	n := arenaAlloc(&a.taggedTemplateExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewMemberExpression(v MemberExpression) *MemberExpression {
	n := arenaAlloc(&a.memberExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewCallExpression(v CallExpression) *CallExpression {
	n := arenaAlloc(&a.callExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewNewExpression(v NewExpression) *NewExpression {
	n := arenaAlloc(&a.newExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewSpreadElement(v SpreadElement) *SpreadElement {
	n := arenaAlloc(&a.spreadElement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewUnaryExpression(v UnaryExpression) *UnaryExpression {
	n := arenaAlloc(&a.unaryExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewUpdateExpression(v UpdateExpression) *UpdateExpression {
	n := arenaAlloc(&a.updateExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewBinaryExpression(v BinaryExpression) *BinaryExpression {
	n := arenaAlloc(&a.binaryExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewLogicalExpression(v LogicalExpression) *LogicalExpression {
	n := arenaAlloc(&a.logicalExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewAssignmentExpression(v AssignmentExpression) *AssignmentExpression {
	n := arenaAlloc(&a.assignmentExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewConditionalExpression(v ConditionalExpression) *ConditionalExpression {
	n := arenaAlloc(&a.conditionalExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewSequenceExpression(v SequenceExpression) *SequenceExpression {
	n := arenaAlloc(&a.sequenceExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewRestElement(v RestElement) *RestElement {
	n := arenaAlloc(&a.restElement)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewAssignmentPattern(v AssignmentPattern) *AssignmentPattern {
	n := arenaAlloc(&a.assignmentPattern)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewArrayPattern(v ArrayPattern) *ArrayPattern {
	n := arenaAlloc(&a.arrayPattern)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewObjectPattern(v ObjectPattern) *ObjectPattern {
	n := arenaAlloc(&a.objectPattern)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewAwaitExpression(v AwaitExpression) *AwaitExpression {
	n := arenaAlloc(&a.awaitExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewYieldExpression(v YieldExpression) *YieldExpression {
	n := arenaAlloc(&a.yieldExpression)
	*n = v
	return n
}

//jslint:hotpath
func (a *Arena) NewMetaProperty(v MetaProperty) *MetaProperty {
	n := arenaAlloc(&a.metaProperty)
	*n = v
	return n
}
