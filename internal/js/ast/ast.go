// Package ast defines an Esprima-compatible abstract syntax tree for
// JavaScript. Node type names follow the ESTree specification so that
// downstream feature extraction operates on the same syntactic vocabulary as
// the paper's Esprima-based pipeline (node types such as "MemberExpression",
// "CallExpression", "ConditionalExpression", ...).
package ast

// Pos is a byte offset plus line/column location in the original source.
// The JSON tags keep serialized diagnostics (internal/analysis) in one
// consistent lowercase style.
type Pos struct {
	Offset int `json:"offset"` // byte offset, 0-based
	Line   int `json:"line"`   // 1-based
	Column int `json:"column"` // 0-based, in bytes
}

// Span is the half-open source range [Start, End) covered by a node.
type Span struct {
	Start Pos `json:"start"`
	End   Pos `json:"end"`
}

// Node is implemented by every AST node.
type Node interface {
	// Type returns the ESTree node type name, e.g. "CallExpression".
	Type() string
	// NodeKind returns the interned node kind; KindName(NodeKind()) ==
	// Type(). Hot traversal paths switch and index on it instead of the
	// string. (Named NodeKind, not Kind, because ESTree mandates a Kind
	// field on several node types.)
	NodeKind() Kind
	// Span returns the source range of the node.
	Span() Span
	// NodeID returns the dense pre-order ID assigned by StampIDs (see
	// nodeid.go). It is 0 for the Program root and for nodes created after
	// the tree was stamped; dense consumers rely on the root owning slot 0.
	// (Named NodeID, not ID, because ESTree mandates an ID field on several
	// node types — the same collision that named NodeKind.)
	NodeID() NodeID
	// SetNodeID records the node's dense ID. StampIDs is the intended
	// caller; stamping by hand breaks the density and pre-order invariants
	// every NodeID-indexed table depends on.
	SetNodeID(NodeID)
}

// base carries the span and dense ID shared by all concrete nodes.
type base struct {
	Loc Span
	id  NodeID
}

func (b *base) Span() Span { return b.Loc }

// SetSpan records the source range. It is exported through concrete types so
// the parser and transformers can stamp locations.
func (b *base) SetSpan(s Span) { b.Loc = s }

// NodeID returns the node's dense pre-order ID (0 until StampIDs ran).
func (b *base) NodeID() NodeID { return b.id }

// SetNodeID records the node's dense pre-order ID.
func (b *base) SetNodeID(id NodeID) { b.id = id }

// ---------------------------------------------------------------------------
// Program and statements
// ---------------------------------------------------------------------------

// Program is the AST root.
type Program struct {
	base
	Body []Node // statements and declarations
	// NodeCount is the number of nodes in the tree, set by StampIDs (zero
	// until the tree is stamped). NodeID-indexed consumers pre-size their
	// dense tables from it; a non-zero count is their license to trust the
	// stamped IDs (see the ownership rules in DESIGN.md).
	NodeCount uint32
}

func (*Program) Type() string { return "Program" }

// ExpressionStatement wraps an expression used as a statement.
type ExpressionStatement struct {
	base
	Expression Node
	Directive  string // non-empty for directive prologues such as "use strict"
}

func (*ExpressionStatement) Type() string { return "ExpressionStatement" }

// BlockStatement is a `{ ... }` statement list.
type BlockStatement struct {
	base
	Body []Node
}

func (*BlockStatement) Type() string { return "BlockStatement" }

// EmptyStatement is a lone semicolon.
type EmptyStatement struct {
	base
}

func (*EmptyStatement) Type() string { return "EmptyStatement" }

// DebuggerStatement is the `debugger` statement.
type DebuggerStatement struct {
	base
}

func (*DebuggerStatement) Type() string { return "DebuggerStatement" }

// WithStatement is the (deprecated) `with (obj) stmt` construct.
type WithStatement struct {
	base
	Object Node
	Body   Node
}

func (*WithStatement) Type() string { return "WithStatement" }

// ReturnStatement returns from a function, optionally with a value.
type ReturnStatement struct {
	base
	Argument Node // may be nil
}

func (*ReturnStatement) Type() string { return "ReturnStatement" }

// LabeledStatement is `label: stmt`.
type LabeledStatement struct {
	base
	Label *Identifier
	Body  Node
}

func (*LabeledStatement) Type() string { return "LabeledStatement" }

// BreakStatement exits a loop or labeled statement.
type BreakStatement struct {
	base
	Label *Identifier // may be nil
}

func (*BreakStatement) Type() string { return "BreakStatement" }

// ContinueStatement continues a loop iteration.
type ContinueStatement struct {
	base
	Label *Identifier // may be nil
}

func (*ContinueStatement) Type() string { return "ContinueStatement" }

// IfStatement is `if (test) consequent else alternate`.
type IfStatement struct {
	base
	Test       Node
	Consequent Node
	Alternate  Node // may be nil
}

func (*IfStatement) Type() string { return "IfStatement" }

// SwitchStatement is `switch (disc) { cases }`.
type SwitchStatement struct {
	base
	Discriminant Node
	Cases        []*SwitchCase
}

func (*SwitchStatement) Type() string { return "SwitchStatement" }

// SwitchCase is one `case test:` or `default:` clause.
type SwitchCase struct {
	base
	Test       Node // nil for default
	Consequent []Node
}

func (*SwitchCase) Type() string { return "SwitchCase" }

// ThrowStatement raises an exception.
type ThrowStatement struct {
	base
	Argument Node
}

func (*ThrowStatement) Type() string { return "ThrowStatement" }

// TryStatement is `try {} catch () {} finally {}`.
type TryStatement struct {
	base
	Block     *BlockStatement
	Handler   *CatchClause    // may be nil
	Finalizer *BlockStatement // may be nil
}

func (*TryStatement) Type() string { return "TryStatement" }

// CatchClause is the handler of a TryStatement.
type CatchClause struct {
	base
	Param Node // Identifier or pattern; may be nil (ES2019 optional binding)
	Body  *BlockStatement
}

func (*CatchClause) Type() string { return "CatchClause" }

// WhileStatement is a `while` loop.
type WhileStatement struct {
	base
	Test Node
	Body Node
}

func (*WhileStatement) Type() string { return "WhileStatement" }

// DoWhileStatement is a `do ... while` loop.
type DoWhileStatement struct {
	base
	Body Node
	Test Node
}

func (*DoWhileStatement) Type() string { return "DoWhileStatement" }

// ForStatement is a C-style `for` loop.
type ForStatement struct {
	base
	Init   Node // VariableDeclaration, expression, or nil
	Test   Node // may be nil
	Update Node // may be nil
	Body   Node
}

func (*ForStatement) Type() string { return "ForStatement" }

// ForInStatement is `for (left in right) body`.
type ForInStatement struct {
	base
	Left  Node // VariableDeclaration or pattern
	Right Node
	Body  Node
}

func (*ForInStatement) Type() string { return "ForInStatement" }

// ForOfStatement is `for (left of right) body`.
type ForOfStatement struct {
	base
	Left  Node
	Right Node
	Body  Node
	Await bool
}

func (*ForOfStatement) Type() string { return "ForOfStatement" }

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

// FunctionDeclaration declares a named function.
type FunctionDeclaration struct {
	base
	ID        *Identifier // nil only in `export default function() {}`
	Params    []Node
	Body      *BlockStatement
	Generator bool
	Async     bool
}

func (*FunctionDeclaration) Type() string { return "FunctionDeclaration" }

// VariableDeclaration is `var/let/const` with one or more declarators.
type VariableDeclaration struct {
	base
	Kind         string // "var", "let", or "const"
	Declarations []*VariableDeclarator
}

func (*VariableDeclaration) Type() string { return "VariableDeclaration" }

// VariableDeclarator is a single `name = init` binding.
type VariableDeclarator struct {
	base
	ID   Node // Identifier or pattern
	Init Node // may be nil
}

func (*VariableDeclarator) Type() string { return "VariableDeclarator" }

// ClassDeclaration declares a named class.
type ClassDeclaration struct {
	base
	ID         *Identifier // nil only in `export default class {}`
	SuperClass Node        // may be nil
	Body       *ClassBody
}

func (*ClassDeclaration) Type() string { return "ClassDeclaration" }

// ClassBody holds the member definitions of a class (MethodDefinition and
// PropertyDefinition nodes).
type ClassBody struct {
	base
	Body []Node
}

func (*ClassBody) Type() string { return "ClassBody" }

// PropertyDefinition is a class field, `x = 1;` or `static x;` (ES2022).
type PropertyDefinition struct {
	base
	Key      Node
	Value    Node // may be nil
	Computed bool
	Static   bool
}

func (*PropertyDefinition) Type() string { return "PropertyDefinition" }

// MethodDefinition is one method, getter, setter, or constructor.
type MethodDefinition struct {
	base
	Key      Node // Identifier, Literal, or computed expression
	Value    *FunctionExpression
	Kind     string // "constructor", "method", "get", or "set"
	Computed bool
	Static   bool
}

func (*MethodDefinition) Type() string { return "MethodDefinition" }

// ---------------------------------------------------------------------------
// Modules
// ---------------------------------------------------------------------------

// ImportDeclaration is `import ... from "mod"`.
type ImportDeclaration struct {
	base
	Specifiers []Node // ImportSpecifier, ImportDefaultSpecifier, ImportNamespaceSpecifier
	Source     *Literal
}

func (*ImportDeclaration) Type() string { return "ImportDeclaration" }

// ImportSpecifier is `{name}` or `{name as local}` in an import.
type ImportSpecifier struct {
	base
	Imported *Identifier
	Local    *Identifier
}

func (*ImportSpecifier) Type() string { return "ImportSpecifier" }

// ImportDefaultSpecifier is the `name` in `import name from "mod"`.
type ImportDefaultSpecifier struct {
	base
	Local *Identifier
}

func (*ImportDefaultSpecifier) Type() string { return "ImportDefaultSpecifier" }

// ImportNamespaceSpecifier is `* as name`.
type ImportNamespaceSpecifier struct {
	base
	Local *Identifier
}

func (*ImportNamespaceSpecifier) Type() string { return "ImportNamespaceSpecifier" }

// ExportNamedDeclaration is `export {a, b}` or `export const x = ...`.
type ExportNamedDeclaration struct {
	base
	Declaration Node // may be nil
	Specifiers  []*ExportSpecifier
	Source      *Literal // may be nil
}

func (*ExportNamedDeclaration) Type() string { return "ExportNamedDeclaration" }

// ExportSpecifier is `{local as exported}` in an export.
type ExportSpecifier struct {
	base
	Local    *Identifier
	Exported *Identifier
}

func (*ExportSpecifier) Type() string { return "ExportSpecifier" }

// ExportDefaultDeclaration is `export default expr`.
type ExportDefaultDeclaration struct {
	base
	Declaration Node
}

func (*ExportDefaultDeclaration) Type() string { return "ExportDefaultDeclaration" }

// ExportAllDeclaration is `export * from "mod"`.
type ExportAllDeclaration struct {
	base
	Source *Literal
}

func (*ExportAllDeclaration) Type() string { return "ExportAllDeclaration" }

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Identifier is a name reference or binding.
type Identifier struct {
	base
	Name string
}

func (*Identifier) Type() string { return "Identifier" }

// LiteralKind discriminates the runtime type of a Literal.
type LiteralKind int

// Literal kinds. They start at one per the style guide so the zero value is
// invalid and accidental zero-initialization is caught by validation.
const (
	LiteralString LiteralKind = iota + 1
	LiteralNumber
	LiteralBoolean
	LiteralNull
	LiteralRegExp
)

// Literal is a string, number, boolean, null, or regular-expression literal.
type Literal struct {
	base
	Kind   LiteralKind
	Raw    string  // exact source text
	String string  // decoded value for string literals
	Number float64 // numeric value for number literals
	Bool   bool    // value for boolean literals
	Regex  struct {
		Pattern string
		Flags   string
	}
}

func (*Literal) Type() string { return "Literal" }

// ThisExpression is the `this` keyword.
type ThisExpression struct {
	base
}

func (*ThisExpression) Type() string { return "ThisExpression" }

// Super is the `super` keyword inside class methods.
type Super struct {
	base
}

func (*Super) Type() string { return "Super" }

// ArrayExpression is `[a, b, ...]`. Elements may contain nil for elisions.
type ArrayExpression struct {
	base
	Elements []Node
}

func (*ArrayExpression) Type() string { return "ArrayExpression" }

// ObjectExpression is `{k: v, ...}`.
type ObjectExpression struct {
	base
	Properties []Node // *Property or *SpreadElement
}

func (*ObjectExpression) Type() string { return "ObjectExpression" }

// Property is one key-value entry of an object literal.
type Property struct {
	base
	Key       Node
	Value     Node
	Kind      string // "init", "get", or "set"
	Computed  bool
	Shorthand bool
	Method    bool
}

func (*Property) Type() string { return "Property" }

// FunctionExpression is an anonymous or named function expression.
type FunctionExpression struct {
	base
	ID        *Identifier // may be nil
	Params    []Node
	Body      *BlockStatement
	Generator bool
	Async     bool
}

func (*FunctionExpression) Type() string { return "FunctionExpression" }

// ArrowFunctionExpression is `(params) => body`.
type ArrowFunctionExpression struct {
	base
	Params     []Node
	Body       Node // BlockStatement or expression
	Expression bool // true when Body is an expression
	Async      bool
}

func (*ArrowFunctionExpression) Type() string { return "ArrowFunctionExpression" }

// ClassExpression is an anonymous or named class expression.
type ClassExpression struct {
	base
	ID         *Identifier // may be nil
	SuperClass Node        // may be nil
	Body       *ClassBody
}

func (*ClassExpression) Type() string { return "ClassExpression" }

// TemplateLiteral is a backtick template string.
type TemplateLiteral struct {
	base
	Quasis      []*TemplateElement
	Expressions []Node
}

func (*TemplateLiteral) Type() string { return "TemplateLiteral" }

// TemplateElement is one literal chunk of a template string.
type TemplateElement struct {
	base
	Raw    string
	Cooked string
	Tail   bool
}

func (*TemplateElement) Type() string { return "TemplateElement" }

// TaggedTemplateExpression is `tag`...“ `.
type TaggedTemplateExpression struct {
	base
	Tag   Node
	Quasi *TemplateLiteral
}

func (*TaggedTemplateExpression) Type() string { return "TaggedTemplateExpression" }

// MemberExpression is `obj.prop` (dot) or `obj[prop]` (bracket/computed).
type MemberExpression struct {
	base
	Object   Node
	Property Node
	Computed bool // true for bracket notation
	Optional bool // true for `?.`
}

func (*MemberExpression) Type() string { return "MemberExpression" }

// CallExpression is `callee(args...)`.
type CallExpression struct {
	base
	Callee    Node
	Arguments []Node
	Optional  bool // true for `?.()`
}

func (*CallExpression) Type() string { return "CallExpression" }

// NewExpression is `new callee(args...)`.
type NewExpression struct {
	base
	Callee    Node
	Arguments []Node
}

func (*NewExpression) Type() string { return "NewExpression" }

// SpreadElement is `...arg` in calls, arrays, and objects.
type SpreadElement struct {
	base
	Argument Node
}

func (*SpreadElement) Type() string { return "SpreadElement" }

// UnaryExpression is a prefix operator such as `!x`, `typeof x`, `-x`.
type UnaryExpression struct {
	base
	Operator string
	Argument Node
}

func (*UnaryExpression) Type() string { return "UnaryExpression" }

// UpdateExpression is `++x`, `x++`, `--x`, or `x--`.
type UpdateExpression struct {
	base
	Operator string // "++" or "--"
	Argument Node
	Prefix   bool
}

func (*UpdateExpression) Type() string { return "UpdateExpression" }

// BinaryExpression is an arithmetic, relational, bitwise, `in`, or
// `instanceof` expression.
type BinaryExpression struct {
	base
	Operator string
	Left     Node
	Right    Node
}

func (*BinaryExpression) Type() string { return "BinaryExpression" }

// LogicalExpression is `&&`, `||`, or `??`.
type LogicalExpression struct {
	base
	Operator string
	Left     Node
	Right    Node
}

func (*LogicalExpression) Type() string { return "LogicalExpression" }

// AssignmentExpression is `target op= value`.
type AssignmentExpression struct {
	base
	Operator string // "=", "+=", ...
	Left     Node
	Right    Node
}

func (*AssignmentExpression) Type() string { return "AssignmentExpression" }

// ConditionalExpression is the ternary `test ? consequent : alternate`.
type ConditionalExpression struct {
	base
	Test       Node
	Consequent Node
	Alternate  Node
}

func (*ConditionalExpression) Type() string { return "ConditionalExpression" }

// SequenceExpression is the comma operator `a, b, c`.
type SequenceExpression struct {
	base
	Expressions []Node
}

func (*SequenceExpression) Type() string { return "SequenceExpression" }

// RestElement is `...name` in parameter lists and patterns.
type RestElement struct {
	base
	Argument Node
}

func (*RestElement) Type() string { return "RestElement" }

// AssignmentPattern is a default value in a binding position, `x = 1`.
type AssignmentPattern struct {
	base
	Left  Node
	Right Node
}

func (*AssignmentPattern) Type() string { return "AssignmentPattern" }

// ArrayPattern is array destructuring, `[a, b] = ...`.
type ArrayPattern struct {
	base
	Elements []Node // may contain nil for holes
}

func (*ArrayPattern) Type() string { return "ArrayPattern" }

// ObjectPattern is object destructuring, `{a, b} = ...`.
type ObjectPattern struct {
	base
	Properties []Node // *Property or *RestElement
}

func (*ObjectPattern) Type() string { return "ObjectPattern" }

// AwaitExpression is `await arg`.
type AwaitExpression struct {
	base
	Argument Node
}

func (*AwaitExpression) Type() string { return "AwaitExpression" }

// YieldExpression is `yield` or `yield* arg`.
type YieldExpression struct {
	base
	Argument Node // may be nil
	Delegate bool
}

func (*YieldExpression) Type() string { return "YieldExpression" }

// MetaProperty is `new.target` or `import.meta`.
type MetaProperty struct {
	base
	Meta     *Identifier
	Property *Identifier
}

func (*MetaProperty) Type() string { return "MetaProperty" }

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// NewIdentifier builds an Identifier with no span, for synthesized code.
func NewIdentifier(name string) *Identifier { return &Identifier{Name: name} }

// NewString builds a string Literal with no span, for synthesized code.
func NewString(v string) *Literal {
	return &Literal{Kind: LiteralString, String: v}
}

// NewNumber builds a numeric Literal with no span, for synthesized code.
func NewNumber(v float64) *Literal {
	return &Literal{Kind: LiteralNumber, Number: v}
}

// NewBool builds a boolean Literal with no span, for synthesized code.
func NewBool(v bool) *Literal {
	return &Literal{Kind: LiteralBoolean, Bool: v}
}

// NewNull builds a null Literal with no span, for synthesized code.
func NewNull() *Literal { return &Literal{Kind: LiteralNull} }
