package ast

import "testing"

// TestArenaDistinctNodes: every call hands out a fresh slot holding exactly
// the value passed in.
func TestArenaDistinctNodes(t *testing.T) {
	var a Arena
	seen := make(map[*Identifier]bool)
	for i := 0; i < 4*arenaChunkMin; i++ {
		id := a.NewIdentifier(Identifier{Name: "x"})
		if id == nil {
			t.Fatalf("alloc %d: nil node", i)
		}
		if seen[id] {
			t.Fatalf("alloc %d: pointer %p handed out twice", i, id)
		}
		seen[id] = true
		if id.Name != "x" || (id.Span() != Span{}) {
			t.Fatalf("alloc %d: wrong value: %+v", i, *id)
		}
		id.Name = "dirty" // must not leak into the next slot
	}
}

// TestArenaPointerStability: growing the slab must not move nodes already
// handed out — later writes through old pointers must remain visible.
func TestArenaPointerStability(t *testing.T) {
	var a Arena
	const n = 10 * arenaChunkMax // force many chunk growths
	ptrs := make([]*Literal, n)
	for i := range ptrs {
		ptrs[i] = a.NewLiteral(Literal{Raw: "r"})
	}
	for i, p := range ptrs {
		p.Raw = "w" // write through the original pointer after all growths
		if ptrs[i].Raw != "w" {
			t.Fatalf("node %d moved during growth", i)
		}
	}
	for i := 1; i < n; i++ {
		if ptrs[i] == ptrs[i-1] {
			t.Fatalf("allocs %d and %d share a pointer", i-1, i)
		}
	}
}

// TestArenaChunkSizing: chunks double from min to max and then stay capped.
func TestArenaChunkSizing(t *testing.T) {
	if got := cap(arenaGrow([]Program(nil))); got != arenaChunkMin {
		t.Fatalf("first chunk cap = %d, want %d", got, arenaChunkMin)
	}
	if got := cap(arenaGrow(make([]Program, 0, 64))); got != 128 {
		t.Fatalf("doubling chunk cap = %d, want 128", got)
	}
	if got := cap(arenaGrow(make([]Program, 0, arenaChunkMax))); got != arenaChunkMax {
		t.Fatalf("capped chunk cap = %d, want %d", got, arenaChunkMax)
	}
}

// TestArenaPerKindIsolation: slabs are per node type; interleaved allocs of
// different kinds never overlap.
func TestArenaPerKindIsolation(t *testing.T) {
	var a Arena
	id := a.NewIdentifier(Identifier{Name: "a"})
	lit := a.NewLiteral(Literal{Raw: "1"})
	bin := a.NewBinaryExpression(BinaryExpression{Operator: "+", Left: id, Right: lit})
	if id.Name != "a" || lit.Raw != "1" || bin.Operator != "+" {
		t.Fatalf("interleaved allocations clobbered each other: %+v %+v %+v", id, lit, bin)
	}
	if bin.Left != Node(id) || bin.Right != Node(lit) {
		t.Fatalf("arena node lost its children")
	}
}
