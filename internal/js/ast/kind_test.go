package ast

import "testing"

// allNodes instantiates one zero value of every concrete node type. New node
// types must be added here so the kind/type lockstep tests cover them;
// TestKindTableComplete fails if the table and this list drift apart.
func allNodes() []Node {
	return []Node{
		&Program{}, &ExpressionStatement{}, &BlockStatement{},
		&EmptyStatement{}, &DebuggerStatement{}, &WithStatement{},
		&ReturnStatement{}, &LabeledStatement{}, &BreakStatement{},
		&ContinueStatement{}, &IfStatement{}, &SwitchStatement{},
		&SwitchCase{}, &ThrowStatement{}, &TryStatement{}, &CatchClause{},
		&WhileStatement{}, &DoWhileStatement{}, &ForStatement{},
		&ForInStatement{}, &ForOfStatement{}, &FunctionDeclaration{},
		&VariableDeclaration{}, &VariableDeclarator{}, &ClassDeclaration{},
		&ClassBody{}, &PropertyDefinition{}, &MethodDefinition{},
		&ImportDeclaration{}, &ImportSpecifier{}, &ImportDefaultSpecifier{},
		&ImportNamespaceSpecifier{}, &ExportNamedDeclaration{},
		&ExportSpecifier{}, &ExportDefaultDeclaration{},
		&ExportAllDeclaration{}, &Identifier{}, &Literal{},
		&ThisExpression{}, &Super{}, &ArrayExpression{}, &ObjectExpression{},
		&Property{}, &FunctionExpression{}, &ArrowFunctionExpression{},
		&ClassExpression{}, &TemplateLiteral{}, &TemplateElement{},
		&TaggedTemplateExpression{}, &MemberExpression{}, &CallExpression{},
		&NewExpression{}, &SpreadElement{}, &UnaryExpression{},
		&UpdateExpression{}, &BinaryExpression{}, &LogicalExpression{},
		&AssignmentExpression{}, &ConditionalExpression{},
		&SequenceExpression{}, &RestElement{}, &AssignmentPattern{},
		&ArrayPattern{}, &ObjectPattern{}, &AwaitExpression{},
		&YieldExpression{}, &MetaProperty{},
	}
}

// TestKindMatchesType locks the interned kinds to the ESTree type-name
// strings: the n-gram bucket space (and therefore every trained model) is
// keyed on the strings, and the zero-alloc hashing path reproduces them from
// the kind table, so KindName(n.NodeKind()) must equal n.Type() exactly.
func TestKindMatchesType(t *testing.T) {
	for _, n := range allNodes() {
		if got, want := KindName(n.NodeKind()), n.Type(); got != want {
			t.Errorf("KindName(%T.NodeKind()) = %q, want %q", n, got, want)
		}
		if n.NodeKind() == KindInvalid {
			t.Errorf("%T has KindInvalid", n)
		}
	}
}

// TestKindTableComplete checks the name table, the inverse lookup, and that
// every kind constant is claimed by exactly one node type.
func TestKindTableComplete(t *testing.T) {
	nodes := allNodes()
	if got, want := len(nodes), int(KindCount)-1; got != want {
		t.Fatalf("allNodes covers %d types, kind table has %d", got, want)
	}
	seen := make(map[Kind]string, len(nodes))
	for _, n := range nodes {
		k := n.NodeKind()
		if prev, dup := seen[k]; dup {
			t.Errorf("kind %d claimed by both %s and %T", k, prev, n)
		}
		seen[k] = n.Type()
		back, ok := KindForName(n.Type())
		if !ok || back != k {
			t.Errorf("KindForName(%q) = %d, %v; want %d, true", n.Type(), back, ok, k)
		}
	}
	if _, ok := KindForName("NotANode"); ok {
		t.Error("KindForName accepted an unknown name")
	}
	if KindInvalid.String() != "" || Kind(KindCount+7).String() != "" {
		t.Error("invalid kinds must stringify to empty")
	}
}

// TestKindPredicateParity pins the table-driven predicates to the original
// type-switch semantics for every node type.
func TestKindPredicateParity(t *testing.T) {
	stmt := map[Kind]bool{}
	for _, k := range []Kind{
		KindProgram, KindExpressionStatement, KindBlockStatement,
		KindEmptyStatement, KindDebuggerStatement, KindWithStatement,
		KindReturnStatement, KindLabeledStatement, KindBreakStatement,
		KindContinueStatement, KindIfStatement, KindSwitchStatement,
		KindSwitchCase, KindThrowStatement, KindTryStatement,
		KindWhileStatement, KindDoWhileStatement, KindForStatement,
		KindForInStatement, KindForOfStatement, KindFunctionDeclaration,
		KindVariableDeclaration, KindClassDeclaration, KindImportDeclaration,
		KindExportNamedDeclaration, KindExportDefaultDeclaration,
		KindExportAllDeclaration,
	} {
		stmt[k] = true
	}
	for _, n := range allNodes() {
		if got, want := IsStatement(n), stmt[n.NodeKind()]; got != want {
			t.Errorf("IsStatement(%T) = %v, want %v", n, got, want)
		}
	}
	if IsStatement(nil) || IsFunction(nil) || IsCallLike(nil) || IsConditionalControlFlow(nil) {
		t.Error("predicates must reject nil")
	}
}
