package ast

// Kind is a small-integer identifier for a node's ESTree type. Traversal-heavy
// consumers (feature extraction, the static-analysis dispatcher, the flow
// builder) switch and index on kinds instead of comparing or hashing the
// Type() strings: a Kind fits in two bytes, compares in one instruction, and
// indexes dense tables. Every Kind maps back to the exact Type() string via
// KindName, and kinds_test.go locks the two representations together, so the
// string vocabulary the paper's Esprima pipeline defines remains the source
// of truth.
//
// The //jslint:enum directive marks the constant set as closed: the jslint
// kind-exhaustive analyzer requires every switch and every dense
// [KindCount]-sized table over Kind to cover all kinds or carry an explicit
// default, keeping dispatch sites in lockstep with KindName/KindForName when
// a kind is added.
//
//jslint:enum
type Kind uint16

// Node kinds. KindInvalid is the zero value so an unset kind is never
// mistaken for Program. The order is stable within a process run but is NOT a
// serialization format: persistent artifacts (models, diagnostics) keep using
// the type-name strings.
const (
	KindInvalid Kind = iota
	KindProgram
	KindExpressionStatement
	KindBlockStatement
	KindEmptyStatement
	KindDebuggerStatement
	KindWithStatement
	KindReturnStatement
	KindLabeledStatement
	KindBreakStatement
	KindContinueStatement
	KindIfStatement
	KindSwitchStatement
	KindSwitchCase
	KindThrowStatement
	KindTryStatement
	KindCatchClause
	KindWhileStatement
	KindDoWhileStatement
	KindForStatement
	KindForInStatement
	KindForOfStatement
	KindFunctionDeclaration
	KindVariableDeclaration
	KindVariableDeclarator
	KindClassDeclaration
	KindClassBody
	KindPropertyDefinition
	KindMethodDefinition
	KindImportDeclaration
	KindImportSpecifier
	KindImportDefaultSpecifier
	KindImportNamespaceSpecifier
	KindExportNamedDeclaration
	KindExportSpecifier
	KindExportDefaultDeclaration
	KindExportAllDeclaration
	KindIdentifier
	KindLiteral
	KindThisExpression
	KindSuper
	KindArrayExpression
	KindObjectExpression
	KindProperty
	KindFunctionExpression
	KindArrowFunctionExpression
	KindClassExpression
	KindTemplateLiteral
	KindTemplateElement
	KindTaggedTemplateExpression
	KindMemberExpression
	KindCallExpression
	KindNewExpression
	KindSpreadElement
	KindUnaryExpression
	KindUpdateExpression
	KindBinaryExpression
	KindLogicalExpression
	KindAssignmentExpression
	KindConditionalExpression
	KindSequenceExpression
	KindRestElement
	KindAssignmentPattern
	KindArrayPattern
	KindObjectPattern
	KindAwaitExpression
	KindYieldExpression
	KindMetaProperty

	// KindCount is the size needed for a dense kind-indexed table.
	KindCount
)

// kindNames maps each kind to its ESTree type name — byte-for-byte the string
// the node's Type() method returns.
var kindNames = [KindCount]string{
	KindInvalid:                  "",
	KindProgram:                  "Program",
	KindExpressionStatement:      "ExpressionStatement",
	KindBlockStatement:           "BlockStatement",
	KindEmptyStatement:           "EmptyStatement",
	KindDebuggerStatement:        "DebuggerStatement",
	KindWithStatement:            "WithStatement",
	KindReturnStatement:          "ReturnStatement",
	KindLabeledStatement:         "LabeledStatement",
	KindBreakStatement:           "BreakStatement",
	KindContinueStatement:        "ContinueStatement",
	KindIfStatement:              "IfStatement",
	KindSwitchStatement:          "SwitchStatement",
	KindSwitchCase:               "SwitchCase",
	KindThrowStatement:           "ThrowStatement",
	KindTryStatement:             "TryStatement",
	KindCatchClause:              "CatchClause",
	KindWhileStatement:           "WhileStatement",
	KindDoWhileStatement:         "DoWhileStatement",
	KindForStatement:             "ForStatement",
	KindForInStatement:           "ForInStatement",
	KindForOfStatement:           "ForOfStatement",
	KindFunctionDeclaration:      "FunctionDeclaration",
	KindVariableDeclaration:      "VariableDeclaration",
	KindVariableDeclarator:       "VariableDeclarator",
	KindClassDeclaration:         "ClassDeclaration",
	KindClassBody:                "ClassBody",
	KindPropertyDefinition:       "PropertyDefinition",
	KindMethodDefinition:         "MethodDefinition",
	KindImportDeclaration:        "ImportDeclaration",
	KindImportSpecifier:          "ImportSpecifier",
	KindImportDefaultSpecifier:   "ImportDefaultSpecifier",
	KindImportNamespaceSpecifier: "ImportNamespaceSpecifier",
	KindExportNamedDeclaration:   "ExportNamedDeclaration",
	KindExportSpecifier:          "ExportSpecifier",
	KindExportDefaultDeclaration: "ExportDefaultDeclaration",
	KindExportAllDeclaration:     "ExportAllDeclaration",
	KindIdentifier:               "Identifier",
	KindLiteral:                  "Literal",
	KindThisExpression:           "ThisExpression",
	KindSuper:                    "Super",
	KindArrayExpression:          "ArrayExpression",
	KindObjectExpression:         "ObjectExpression",
	KindProperty:                 "Property",
	KindFunctionExpression:       "FunctionExpression",
	KindArrowFunctionExpression:  "ArrowFunctionExpression",
	KindClassExpression:          "ClassExpression",
	KindTemplateLiteral:          "TemplateLiteral",
	KindTemplateElement:          "TemplateElement",
	KindTaggedTemplateExpression: "TaggedTemplateExpression",
	KindMemberExpression:         "MemberExpression",
	KindCallExpression:           "CallExpression",
	KindNewExpression:            "NewExpression",
	KindSpreadElement:            "SpreadElement",
	KindUnaryExpression:          "UnaryExpression",
	KindUpdateExpression:         "UpdateExpression",
	KindBinaryExpression:         "BinaryExpression",
	KindLogicalExpression:        "LogicalExpression",
	KindAssignmentExpression:     "AssignmentExpression",
	KindConditionalExpression:    "ConditionalExpression",
	KindSequenceExpression:       "SequenceExpression",
	KindRestElement:              "RestElement",
	KindAssignmentPattern:        "AssignmentPattern",
	KindArrayPattern:             "ArrayPattern",
	KindObjectPattern:            "ObjectPattern",
	KindAwaitExpression:          "AwaitExpression",
	KindYieldExpression:          "YieldExpression",
	KindMetaProperty:             "MetaProperty",
}

// String returns the kind's ESTree type name ("" for KindInvalid).
func (k Kind) String() string {
	if k >= KindCount {
		return ""
	}
	return kindNames[k]
}

// KindName returns the ESTree type name for k, identical to the Type() string
// of every node with that kind.
func KindName(k Kind) string { return k.String() }

// kindByName inverts kindNames for KindForName.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, KindCount)
	for k := Kind(1); k < KindCount; k++ {
		m[kindNames[k]] = k
	}
	return m
}()

// KindForName maps an ESTree type name to its kind. The boolean is false for
// names outside the AST vocabulary.
func KindForName(name string) (Kind, bool) {
	k, ok := kindByName[name]
	return k, ok
}

// NodeKind methods. One per node type, returning the interned constant; all
// are valid on nil receivers (they touch no fields), matching the Type()
// methods. The method is named NodeKind rather than Kind because several
// nodes carry an ESTree-mandated Kind field (VariableDeclaration, Property,
// MethodDefinition) or a discriminator of their own (Literal).

func (*Program) NodeKind() Kind                  { return KindProgram }
func (*ExpressionStatement) NodeKind() Kind      { return KindExpressionStatement }
func (*BlockStatement) NodeKind() Kind           { return KindBlockStatement }
func (*EmptyStatement) NodeKind() Kind           { return KindEmptyStatement }
func (*DebuggerStatement) NodeKind() Kind        { return KindDebuggerStatement }
func (*WithStatement) NodeKind() Kind            { return KindWithStatement }
func (*ReturnStatement) NodeKind() Kind          { return KindReturnStatement }
func (*LabeledStatement) NodeKind() Kind         { return KindLabeledStatement }
func (*BreakStatement) NodeKind() Kind           { return KindBreakStatement }
func (*ContinueStatement) NodeKind() Kind        { return KindContinueStatement }
func (*IfStatement) NodeKind() Kind              { return KindIfStatement }
func (*SwitchStatement) NodeKind() Kind          { return KindSwitchStatement }
func (*SwitchCase) NodeKind() Kind               { return KindSwitchCase }
func (*ThrowStatement) NodeKind() Kind           { return KindThrowStatement }
func (*TryStatement) NodeKind() Kind             { return KindTryStatement }
func (*CatchClause) NodeKind() Kind              { return KindCatchClause }
func (*WhileStatement) NodeKind() Kind           { return KindWhileStatement }
func (*DoWhileStatement) NodeKind() Kind         { return KindDoWhileStatement }
func (*ForStatement) NodeKind() Kind             { return KindForStatement }
func (*ForInStatement) NodeKind() Kind           { return KindForInStatement }
func (*ForOfStatement) NodeKind() Kind           { return KindForOfStatement }
func (*FunctionDeclaration) NodeKind() Kind      { return KindFunctionDeclaration }
func (*VariableDeclaration) NodeKind() Kind      { return KindVariableDeclaration }
func (*VariableDeclarator) NodeKind() Kind       { return KindVariableDeclarator }
func (*ClassDeclaration) NodeKind() Kind         { return KindClassDeclaration }
func (*ClassBody) NodeKind() Kind                { return KindClassBody }
func (*PropertyDefinition) NodeKind() Kind       { return KindPropertyDefinition }
func (*MethodDefinition) NodeKind() Kind         { return KindMethodDefinition }
func (*ImportDeclaration) NodeKind() Kind        { return KindImportDeclaration }
func (*ImportSpecifier) NodeKind() Kind          { return KindImportSpecifier }
func (*ImportDefaultSpecifier) NodeKind() Kind   { return KindImportDefaultSpecifier }
func (*ImportNamespaceSpecifier) NodeKind() Kind { return KindImportNamespaceSpecifier }
func (*ExportNamedDeclaration) NodeKind() Kind   { return KindExportNamedDeclaration }
func (*ExportSpecifier) NodeKind() Kind          { return KindExportSpecifier }
func (*ExportDefaultDeclaration) NodeKind() Kind { return KindExportDefaultDeclaration }
func (*ExportAllDeclaration) NodeKind() Kind     { return KindExportAllDeclaration }
func (*Identifier) NodeKind() Kind               { return KindIdentifier }
func (*Literal) NodeKind() Kind                  { return KindLiteral }
func (*ThisExpression) NodeKind() Kind           { return KindThisExpression }
func (*Super) NodeKind() Kind                    { return KindSuper }
func (*ArrayExpression) NodeKind() Kind          { return KindArrayExpression }
func (*ObjectExpression) NodeKind() Kind         { return KindObjectExpression }
func (*Property) NodeKind() Kind                 { return KindProperty }
func (*FunctionExpression) NodeKind() Kind       { return KindFunctionExpression }
func (*ArrowFunctionExpression) NodeKind() Kind  { return KindArrowFunctionExpression }
func (*ClassExpression) NodeKind() Kind          { return KindClassExpression }
func (*TemplateLiteral) NodeKind() Kind          { return KindTemplateLiteral }
func (*TemplateElement) NodeKind() Kind          { return KindTemplateElement }
func (*TaggedTemplateExpression) NodeKind() Kind { return KindTaggedTemplateExpression }
func (*MemberExpression) NodeKind() Kind         { return KindMemberExpression }
func (*CallExpression) NodeKind() Kind           { return KindCallExpression }
func (*NewExpression) NodeKind() Kind            { return KindNewExpression }
func (*SpreadElement) NodeKind() Kind            { return KindSpreadElement }
func (*UnaryExpression) NodeKind() Kind          { return KindUnaryExpression }
func (*UpdateExpression) NodeKind() Kind         { return KindUpdateExpression }
func (*BinaryExpression) NodeKind() Kind         { return KindBinaryExpression }
func (*LogicalExpression) NodeKind() Kind        { return KindLogicalExpression }
func (*AssignmentExpression) NodeKind() Kind     { return KindAssignmentExpression }
func (*ConditionalExpression) NodeKind() Kind    { return KindConditionalExpression }
func (*SequenceExpression) NodeKind() Kind       { return KindSequenceExpression }
func (*RestElement) NodeKind() Kind              { return KindRestElement }
func (*AssignmentPattern) NodeKind() Kind        { return KindAssignmentPattern }
func (*ArrayPattern) NodeKind() Kind             { return KindArrayPattern }
func (*ObjectPattern) NodeKind() Kind            { return KindObjectPattern }
func (*AwaitExpression) NodeKind() Kind          { return KindAwaitExpression }
func (*YieldExpression) NodeKind() Kind          { return KindYieldExpression }
func (*MetaProperty) NodeKind() Kind             { return KindMetaProperty }

// Kind-indexed predicate tables. The bool-array lookups below replace the
// type switches the hot paths used to pay per node; the type-switch versions
// in children.go now delegate here, so the two stay in lockstep by
// construction.

// statementKinds marks the statement-level kinds (see IsStatement).
var statementKinds = makeKindSet(
	KindProgram, KindExpressionStatement, KindBlockStatement,
	KindEmptyStatement, KindDebuggerStatement, KindWithStatement,
	KindReturnStatement, KindLabeledStatement, KindBreakStatement,
	KindContinueStatement, KindIfStatement, KindSwitchStatement,
	KindSwitchCase, KindThrowStatement, KindTryStatement,
	KindWhileStatement, KindDoWhileStatement, KindForStatement,
	KindForInStatement, KindForOfStatement, KindFunctionDeclaration,
	KindVariableDeclaration, KindClassDeclaration, KindImportDeclaration,
	KindExportNamedDeclaration, KindExportDefaultDeclaration,
	KindExportAllDeclaration,
)

// conditionalControlFlowKinds marks the paper's conditional control-flow
// kinds (see IsConditionalControlFlow).
var conditionalControlFlowKinds = makeKindSet(
	KindDoWhileStatement, KindWhileStatement, KindForStatement,
	KindForOfStatement, KindForInStatement, KindIfStatement,
	KindConditionalExpression, KindTryStatement, KindSwitchStatement,
)

// functionKinds marks the function kinds (see IsFunction).
var functionKinds = makeKindSet(
	KindArrowFunctionExpression, KindFunctionExpression,
	KindFunctionDeclaration,
)

// callLikeKinds marks calls and tagged templates (see IsCallLike).
var callLikeKinds = makeKindSet(KindCallExpression, KindTaggedTemplateExpression)

func makeKindSet(kinds ...Kind) [KindCount]bool {
	var set [KindCount]bool
	for _, k := range kinds {
		set[k] = true
	}
	return set
}
