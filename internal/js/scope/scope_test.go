package scope

import (
	"testing"

	"repro/internal/js/ast"
	"repro/internal/js/parser"
)

func analyze(t *testing.T, src string) (*ast.Program, *Info) {
	t.Helper()
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog, Analyze(prog)
}

func findBinding(info *Info, name string) *Binding {
	for _, b := range info.Bindings {
		if b.Name == name {
			return b
		}
	}
	return nil
}

func TestSimpleResolution(t *testing.T) {
	_, info := analyze(t, `var x = 1; var y = x + x;`)
	bx := findBinding(info, "x")
	if bx == nil {
		t.Fatal("binding x not found")
	}
	if len(bx.Refs) != 2 {
		t.Fatalf("x refs = %d, want 2", len(bx.Refs))
	}
	if bx.Kind != BindVar {
		t.Fatalf("x kind = %v", bx.Kind)
	}
}

func TestFunctionScopes(t *testing.T) {
	_, info := analyze(t, `
var x = 1;
function f(a) {
  var x = 2;
  return x + a;
}
var z = f(x);`)
	var outer, inner *Binding
	for _, b := range info.Bindings {
		if b.Name == "x" {
			if b.Scope.Parent == nil {
				outer = b
			} else {
				inner = b
			}
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("expected two x bindings (outer and inner)")
	}
	if len(inner.Refs) != 1 {
		t.Fatalf("inner x refs = %d, want 1 (the return)", len(inner.Refs))
	}
	if len(outer.Refs) != 1 {
		t.Fatalf("outer x refs = %d, want 1 (the f(x) call)", len(outer.Refs))
	}
	bf := findBinding(info, "f")
	if bf == nil || bf.Kind != BindFunction {
		t.Fatal("f must be a function binding")
	}
	if len(bf.Refs) != 1 {
		t.Fatalf("f refs = %d, want 1", len(bf.Refs))
	}
}

func TestVarHoisting(t *testing.T) {
	_, info := analyze(t, `
function f() {
  if (cond) {
    var hoisted = 1;
  }
  return hoisted;
}`)
	b := findBinding(info, "hoisted")
	if b == nil {
		t.Fatal("hoisted not found")
	}
	if !b.Scope.IsFunction {
		t.Fatal("var must hoist to the function scope")
	}
	if len(b.Refs) != 1 {
		t.Fatalf("hoisted refs = %d, want 1", len(b.Refs))
	}
}

func TestLetBlockScoping(t *testing.T) {
	_, info := analyze(t, `
let v = "outer";
{
  let v = "inner";
  use(v);
}
use(v);`)
	var count int
	for _, b := range info.Bindings {
		if b.Name == "v" {
			count++
			if len(b.Refs) != 1 {
				t.Fatalf("each v must have exactly 1 ref, got %d", len(b.Refs))
			}
		}
	}
	if count != 2 {
		t.Fatalf("expected 2 distinct v bindings, got %d", count)
	}
}

func TestForLoopLet(t *testing.T) {
	_, info := analyze(t, `
for (let i = 0; i < 3; i++) { log(i); }
for (let i = 0; i < 5; i++) { log(i); }`)
	var bindings []*Binding
	for _, b := range info.Bindings {
		if b.Name == "i" {
			bindings = append(bindings, b)
		}
	}
	if len(bindings) != 2 {
		t.Fatalf("expected 2 i bindings, got %d", len(bindings))
	}
	for _, b := range bindings {
		if len(b.Refs) != 3 {
			t.Fatalf("each i must have 3 refs (test, update, log), got %d", len(b.Refs))
		}
	}
}

func TestCatchParam(t *testing.T) {
	_, info := analyze(t, `try { go(); } catch (err) { report(err); }`)
	b := findBinding(info, "err")
	if b == nil || b.Kind != BindCatch {
		t.Fatal("err must be a catch binding")
	}
	if len(b.Refs) != 1 {
		t.Fatalf("err refs = %d, want 1", len(b.Refs))
	}
}

func TestUnresolvedGlobals(t *testing.T) {
	_, info := analyze(t, `document.getElementById("x"); window.alert(navigator.userAgent);`)
	names := map[string]bool{}
	for _, id := range info.Unresolved {
		names[id.Name] = true
	}
	for _, want := range []string{"document", "window", "navigator"} {
		if !names[want] {
			t.Fatalf("expected %s to be unresolved", want)
		}
	}
}

func TestDotPropertyNotReference(t *testing.T) {
	_, info := analyze(t, `var obj = {}; obj.value = 1; log(obj.value);`)
	for _, id := range info.Unresolved {
		if id.Name == "value" {
			t.Fatal("dot property must not be a variable reference")
		}
	}
	b := findBinding(info, "obj")
	if len(b.Refs) != 2 {
		t.Fatalf("obj refs = %d, want 2", len(b.Refs))
	}
}

func TestObjectKeysNotReferences(t *testing.T) {
	_, info := analyze(t, `var o = {width: 1, height: 2};`)
	for _, id := range info.Unresolved {
		if id.Name == "width" || id.Name == "height" {
			t.Fatal("object literal keys must not be references")
		}
	}
}

func TestComputedKeyIsReference(t *testing.T) {
	_, info := analyze(t, `var k = "a"; var o = {[k]: 1}; log(o[k]);`)
	b := findBinding(info, "k")
	if len(b.Refs) != 2 {
		t.Fatalf("k refs = %d, want 2 (computed key and bracket access)", len(b.Refs))
	}
}

func TestParamsAndDefaults(t *testing.T) {
	_, info := analyze(t, `var base = 10; function f(a, b = base, ...rest) { return a + b + rest.length; }`)
	for _, name := range []string{"a", "b", "rest"} {
		b := findBinding(info, name)
		if b == nil || b.Kind != BindParam {
			t.Fatalf("%s must be a param binding", name)
		}
	}
	bb := findBinding(info, "base")
	if len(bb.Refs) != 1 {
		t.Fatalf("base refs = %d, want 1 (the default)", len(bb.Refs))
	}
}

func TestDestructuringBindings(t *testing.T) {
	_, info := analyze(t, `const {a, b: renamed, c = 1, ...rest} = obj; use(a, renamed, c, rest);`)
	for _, name := range []string{"a", "renamed", "c", "rest"} {
		b := findBinding(info, name)
		if b == nil {
			t.Fatalf("%s not bound", name)
		}
		if b.Kind != BindConst {
			t.Fatalf("%s kind = %v, want const", name, b.Kind)
		}
		if len(b.Refs) != 1 {
			t.Fatalf("%s refs = %d, want 1", name, len(b.Refs))
		}
	}
	// `b` is a pattern key, not a binding.
	if bb := findBinding(info, "b"); bb != nil {
		t.Fatal("pattern key b must not be bound")
	}
}

func TestNamedFunctionExpressionSelfReference(t *testing.T) {
	_, info := analyze(t, `var fact = function rec(n) { return n <= 1 ? 1 : n * rec(n - 1); };`)
	b := findBinding(info, "rec")
	if b == nil {
		t.Fatal("rec must be bound inside the function expression")
	}
	if len(b.Refs) != 1 {
		t.Fatalf("rec refs = %d, want 1", len(b.Refs))
	}
}

func TestClassBinding(t *testing.T) {
	_, info := analyze(t, `class Widget {} var w = new Widget();`)
	b := findBinding(info, "Widget")
	if b == nil || b.Kind != BindClass {
		t.Fatal("Widget must be a class binding")
	}
	if len(b.Refs) != 1 {
		t.Fatalf("Widget refs = %d", len(b.Refs))
	}
}

func TestImportBindings(t *testing.T) {
	_, info := analyze(t, `import def, {named as local} from "mod"; use(def, local);`)
	for _, name := range []string{"def", "local"} {
		b := findBinding(info, name)
		if b == nil || b.Kind != BindImport {
			t.Fatalf("%s must be an import binding", name)
		}
		if len(b.Refs) != 1 {
			t.Fatalf("%s refs = %d", name, len(b.Refs))
		}
	}
}

func TestArrowParamScoping(t *testing.T) {
	_, info := analyze(t, `var x = 5; var f = x => x + 1; f(x);`)
	var param, outer *Binding
	for _, b := range info.Bindings {
		if b.Name == "x" {
			if b.Kind == BindParam {
				param = b
			} else {
				outer = b
			}
		}
	}
	if param == nil || outer == nil {
		t.Fatal("expected param and outer x bindings")
	}
	if len(param.Refs) != 1 {
		t.Fatalf("param x refs = %d, want 1", len(param.Refs))
	}
	if len(outer.Refs) != 1 {
		t.Fatalf("outer x refs = %d, want 1", len(outer.Refs))
	}
}

func TestLabelsNotReferences(t *testing.T) {
	_, info := analyze(t, `outer: for (;;) { break outer; }`)
	if len(info.Unresolved) != 0 {
		t.Fatalf("labels must not be references; unresolved = %v", info.Unresolved[0].Name)
	}
}

func TestInitTracked(t *testing.T) {
	_, info := analyze(t, `var table = ["a", "b", "c"]; use(table[0]);`)
	b := findBinding(info, "table")
	if b.Init == nil {
		t.Fatal("init must be tracked")
	}
	if _, ok := b.Init.(*ast.ArrayExpression); !ok {
		t.Fatalf("init type = %s", b.Init.Type())
	}
}

func TestClassFieldValuesResolve(t *testing.T) {
	_, info := analyze(t, `
var initial = 5;
class Counter {
  count = initial;
  static origin = initial * 2;
}
new Counter();`)
	b := findBinding(info, "initial")
	if b == nil {
		t.Fatal("initial not bound")
	}
	if len(b.Refs) != 2 {
		t.Fatalf("initial refs = %d, want 2 (both field initializers)", len(b.Refs))
	}
	// Field keys are not variable references.
	for _, id := range info.Unresolved {
		if id.Name == "count" || id.Name == "origin" {
			t.Fatalf("field key %q must not be a reference", id.Name)
		}
	}
}
