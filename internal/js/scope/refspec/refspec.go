// Package refspec preserves the original map-based scope analyzer as an
// executable reference spec. The production analyzer (internal/js/scope)
// was rewritten as a fused single-walk pass over dense NodeIDs with pooled
// slice-backed binding tables; this package is the slow, obviously-correct
// implementation it is differential-tested against (binding, reference,
// resolution, and unresolved sets must match exactly over the corpus plus
// every transform — see internal/js/scope/differential_test.go).
//
// Maintenance rule: behavioral changes to the scope semantics land here
// first, then in the production analyzer, never the other way around.
package refspec

import (
	"repro/internal/js/ast"
)

// BindingKind classifies how a name was introduced.
type BindingKind int

// Binding kinds.
const (
	BindVar BindingKind = iota + 1
	BindLet
	BindConst
	BindParam
	BindFunction
	BindClass
	BindCatch
	BindImport
)

// Binding is one declared name.
type Binding struct {
	Name string
	// Decl is the declaring Identifier node (nil for synthetic bindings).
	Decl *ast.Identifier
	Kind BindingKind
	// Scope is the scope owning the binding.
	Scope *Scope
	// Refs are all identifier nodes that reference this binding (reads and
	// writes), excluding the declaration itself.
	Refs []*ast.Identifier
	// Init is the initializer expression when the binding came from a
	// declarator with one (used by features: e.g. "fetched from a global
	// array").
	Init ast.Node
}

// Scope is one lexical scope.
type Scope struct {
	// Node is the AST node that owns the scope (Program, function, block,
	// for statement, or catch clause).
	Node ast.Node
	// Parent is nil for the program scope.
	Parent *Scope
	// Children in source order.
	Children []*Scope
	// Bindings declared directly in this scope.
	Bindings map[string]*Binding
	// IsFunction marks scopes that host `var` declarations.
	IsFunction bool
}

func (s *Scope) lookup(name string) *Binding {
	for sc := s; sc != nil; sc = sc.Parent {
		if b, ok := sc.Bindings[name]; ok {
			return b
		}
	}
	return nil
}

// hoistTarget walks up to the nearest function (or program) scope.
func (s *Scope) hoistTarget() *Scope {
	for sc := s; sc != nil; sc = sc.Parent {
		if sc.IsFunction {
			return sc
		}
	}
	return s
}

// Info is the result of the analysis.
type Info struct {
	// Global is the program scope.
	Global *Scope
	// Resolved maps every reference identifier to its binding.
	Resolved map[*ast.Identifier]*Binding
	// Unresolved lists references to names with no binding in the file
	// (browser/Node globals such as window, document, require).
	Unresolved []*ast.Identifier
	// Bindings lists every binding in declaration order.
	Bindings []*Binding
}

// BindingOf returns the binding a reference resolves to, or nil.
func (i *Info) BindingOf(id *ast.Identifier) *Binding { return i.Resolved[id] }

// Analyze builds scope information for a program.
func Analyze(prog *ast.Program) *Info {
	a := &analyzer{
		info: &Info{Resolved: make(map[*ast.Identifier]*Binding)},
	}
	global := a.pushScope(prog, true)
	a.info.Global = global
	// Pass 1: collect declarations so forward references resolve.
	a.collectDecls(prog.Body, global)
	// Pass 2: walk the tree resolving references and descending scopes.
	for _, stmt := range prog.Body {
		a.visit(stmt, global)
	}
	return a.info
}

type analyzer struct {
	info *Info
}

func (a *analyzer) pushScope(node ast.Node, isFunc bool) *Scope {
	return &Scope{Node: node, Bindings: make(map[string]*Binding), IsFunction: isFunc}
}

func (a *analyzer) newChild(parent *Scope, node ast.Node, isFunc bool) *Scope {
	sc := a.pushScope(node, isFunc)
	sc.Parent = parent
	parent.Children = append(parent.Children, sc)
	return sc
}

func (a *analyzer) declare(sc *Scope, id *ast.Identifier, kind BindingKind, init ast.Node) *Binding {
	target := sc
	if kind == BindVar || kind == BindFunction {
		target = sc.hoistTarget()
	}
	if existing, ok := target.Bindings[id.Name]; ok {
		// Redeclaration (legal for var/function, and tolerated for lexical
		// kinds since the parser does not reject them): keep the first
		// binding and treat this occurrence as a reference, so renames cover
		// the redeclaration site too.
		a.info.Resolved[id] = existing
		existing.Refs = append(existing.Refs, id)
		if existing.Init == nil {
			existing.Init = init
		}
		return existing
	}
	b := &Binding{Name: id.Name, Decl: id, Kind: kind, Scope: target, Init: init}
	target.Bindings[id.Name] = b
	a.info.Bindings = append(a.info.Bindings, b)
	return b
}

func (a *analyzer) reference(sc *Scope, id *ast.Identifier) {
	if b := sc.lookup(id.Name); b != nil {
		b.Refs = append(b.Refs, id)
		a.info.Resolved[id] = b
		return
	}
	a.info.Unresolved = append(a.info.Unresolved, id)
}

// collectDecls hoists declarations in a statement list into sc: `var` (into
// function scope via declare), function declarations, and lexical let/const
// and class declarations in the current block.
func (a *analyzer) collectDecls(stmts []ast.Node, sc *Scope) {
	for _, stmt := range stmts {
		a.collectDecl(stmt, sc)
	}
}

func (a *analyzer) collectDecl(stmt ast.Node, sc *Scope) {
	switch v := stmt.(type) {
	case *ast.VariableDeclaration:
		kind := kindOf(v.Kind)
		for _, d := range v.Declarations {
			a.declarePattern(sc, d.ID, kind, d.Init)
		}
	case *ast.FunctionDeclaration:
		if v.ID != nil {
			a.declare(sc, v.ID, BindFunction, nil)
		}
	case *ast.ClassDeclaration:
		if v.ID != nil {
			a.declare(sc, v.ID, BindClass, nil)
		}
	case *ast.ImportDeclaration:
		for _, s := range v.Specifiers {
			switch sp := s.(type) {
			case *ast.ImportSpecifier:
				a.declare(sc, sp.Local, BindImport, nil)
			case *ast.ImportDefaultSpecifier:
				a.declare(sc, sp.Local, BindImport, nil)
			case *ast.ImportNamespaceSpecifier:
				a.declare(sc, sp.Local, BindImport, nil)
			}
		}
	case *ast.ExportNamedDeclaration:
		if v.Declaration != nil {
			a.collectDecl(v.Declaration, sc)
		}
	case *ast.ExportDefaultDeclaration:
		if fn, ok := v.Declaration.(*ast.FunctionDeclaration); ok && fn.ID != nil {
			a.declare(sc, fn.ID, BindFunction, nil)
		}
	// `var` declarations nested inside blocks/loops hoist to the function
	// scope; recurse into statement containers (but not into nested
	// functions, whose vars belong to them).
	case *ast.BlockStatement:
		a.collectVarsOnly(v.Body, sc)
	case *ast.IfStatement:
		a.collectVarsOnlyOne(v.Consequent, sc)
		a.collectVarsOnlyOne(v.Alternate, sc)
	case *ast.ForStatement:
		a.collectVarsOnlyOne(v.Init, sc)
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.ForInStatement:
		a.collectVarsOnlyOne(v.Left, sc)
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.ForOfStatement:
		a.collectVarsOnlyOne(v.Left, sc)
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.WhileStatement:
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.DoWhileStatement:
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.TryStatement:
		if v.Block != nil {
			a.collectVarsOnly(v.Block.Body, sc)
		}
		if v.Handler != nil && v.Handler.Body != nil {
			a.collectVarsOnly(v.Handler.Body.Body, sc)
		}
		if v.Finalizer != nil {
			a.collectVarsOnly(v.Finalizer.Body, sc)
		}
	case *ast.SwitchStatement:
		for _, c := range v.Cases {
			a.collectVarsOnly(c.Consequent, sc)
		}
	case *ast.LabeledStatement:
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.WithStatement:
		a.collectVarsOnlyOne(v.Body, sc)
	}
}

// collectVarsOnly hoists only `var` and function declarations from nested
// statements (lexical declarations stay in their own block scope).
func (a *analyzer) collectVarsOnly(stmts []ast.Node, sc *Scope) {
	for _, s := range stmts {
		a.collectVarsOnlyOne(s, sc)
	}
}

func (a *analyzer) collectVarsOnlyOne(stmt ast.Node, sc *Scope) {
	if stmt == nil {
		return
	}
	switch v := stmt.(type) {
	case *ast.VariableDeclaration:
		if v.Kind == "var" {
			for _, d := range v.Declarations {
				a.declarePattern(sc, d.ID, BindVar, d.Init)
			}
		}
	case *ast.FunctionDeclaration, *ast.ClassDeclaration, *ast.ImportDeclaration:
		// Nested function/class declarations are block-scoped; they are
		// declared by collectLexical when their block scope is built.
	case *ast.BlockStatement:
		a.collectVarsOnly(v.Body, sc)
	case *ast.IfStatement:
		a.collectVarsOnlyOne(v.Consequent, sc)
		a.collectVarsOnlyOne(v.Alternate, sc)
	case *ast.ForStatement:
		a.collectVarsOnlyOne(v.Init, sc)
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.ForInStatement:
		a.collectVarsOnlyOne(v.Left, sc)
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.ForOfStatement:
		a.collectVarsOnlyOne(v.Left, sc)
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.WhileStatement:
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.DoWhileStatement:
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.TryStatement:
		if v.Block != nil {
			a.collectVarsOnly(v.Block.Body, sc)
		}
		if v.Handler != nil && v.Handler.Body != nil {
			a.collectVarsOnly(v.Handler.Body.Body, sc)
		}
		if v.Finalizer != nil {
			a.collectVarsOnly(v.Finalizer.Body, sc)
		}
	case *ast.SwitchStatement:
		for _, c := range v.Cases {
			a.collectVarsOnly(c.Consequent, sc)
		}
	case *ast.LabeledStatement:
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.WithStatement:
		a.collectVarsOnlyOne(v.Body, sc)
	}
}

func kindOf(s string) BindingKind {
	switch s {
	case "let":
		return BindLet
	case "const":
		return BindConst
	default:
		return BindVar
	}
}

// declarePattern declares every identifier bound by a binding pattern.
func (a *analyzer) declarePattern(sc *Scope, pat ast.Node, kind BindingKind, init ast.Node) {
	switch v := pat.(type) {
	case *ast.Identifier:
		a.declare(sc, v, kind, init)
	case *ast.ArrayPattern:
		for _, el := range v.Elements {
			if el != nil {
				a.declarePattern(sc, el, kind, nil)
			}
		}
	case *ast.ObjectPattern:
		for _, prop := range v.Properties {
			switch pv := prop.(type) {
			case *ast.Property:
				a.declarePattern(sc, pv.Value, kind, nil)
			case *ast.RestElement:
				a.declarePattern(sc, pv.Argument, kind, nil)
			}
		}
	case *ast.AssignmentPattern:
		a.declarePattern(sc, v.Left, kind, nil)
	case *ast.RestElement:
		a.declarePattern(sc, v.Argument, kind, nil)
	}
}

// ---------------------------------------------------------------------------
// Reference resolution walk
// ---------------------------------------------------------------------------

// visit resolves references in stmt within scope sc, creating child scopes
// as it descends.
func (a *analyzer) visit(n ast.Node, sc *Scope) {
	if n == nil {
		return
	}
	switch v := n.(type) {
	case *ast.Identifier:
		a.reference(sc, v)
	case *ast.VariableDeclaration:
		for _, d := range v.Declarations {
			a.visitPatternDefaults(d.ID, sc)
			a.visit(d.Init, sc)
		}
	case *ast.FunctionDeclaration:
		a.visitFunction(v, v.Params, bodyNode(v.Body), sc)
	case *ast.FunctionExpression:
		a.visitFunction(v, v.Params, bodyNode(v.Body), sc)
	case *ast.ArrowFunctionExpression:
		a.visitFunction(v, v.Params, v.Body, sc)
	case *ast.ClassDeclaration:
		a.visit(v.SuperClass, sc)
		a.visitClassBody(v.Body, sc)
	case *ast.ClassExpression:
		a.visit(v.SuperClass, sc)
		a.visitClassBody(v.Body, sc)
	case *ast.BlockStatement:
		child := a.newChild(sc, v, false)
		a.collectLexical(v.Body, child)
		for _, s := range v.Body {
			a.visit(s, child)
		}
	case *ast.ForStatement:
		child := a.newChild(sc, v, false)
		if decl, ok := v.Init.(*ast.VariableDeclaration); ok && decl.Kind != "var" {
			for _, d := range decl.Declarations {
				a.declarePattern(child, d.ID, kindOf(decl.Kind), d.Init)
			}
		}
		a.visit(v.Init, child)
		a.visit(v.Test, child)
		a.visit(v.Update, child)
		a.visitBodyNoBlockScope(v.Body, child)
	case *ast.ForInStatement:
		a.visitForInOf(v.Left, v.Right, v.Body, v, sc)
	case *ast.ForOfStatement:
		a.visitForInOf(v.Left, v.Right, v.Body, v, sc)
	case *ast.CatchClause:
		child := a.newChild(sc, v, false)
		if v.Param != nil {
			a.declarePattern(child, v.Param, BindCatch, nil)
			a.visitPatternDefaults(v.Param, child)
		}
		if v.Body != nil {
			a.collectLexical(v.Body.Body, child)
			for _, s := range v.Body.Body {
				a.visit(s, child)
			}
		}
	case *ast.MemberExpression:
		a.visit(v.Object, sc)
		if v.Computed {
			a.visit(v.Property, sc)
		}
		// Non-computed property names are not variable references.
	case *ast.Property:
		if v.Computed {
			a.visit(v.Key, sc)
		}
		a.visit(v.Value, sc)
	case *ast.MethodDefinition:
		if v.Computed {
			a.visit(v.Key, sc)
		}
		if v.Value != nil {
			a.visitFunction(v.Value, v.Value.Params, bodyNode(v.Value.Body), sc)
		}
	case *ast.LabeledStatement:
		// The label is not a variable reference.
		a.visit(v.Body, sc)
	case *ast.BreakStatement, *ast.ContinueStatement:
		// Labels are not variable references.
	case *ast.ImportDeclaration:
		// Specifier locals were declared in pass 1; nothing to resolve.
	case *ast.ExportNamedDeclaration:
		if v.Declaration != nil {
			a.visit(v.Declaration, sc)
		}
		for _, s := range v.Specifiers {
			if v.Source == nil {
				a.reference(sc, s.Local)
			}
		}
	case *ast.ExportDefaultDeclaration:
		a.visit(v.Declaration, sc)
	case *ast.VariableDeclarator:
		a.visitPatternDefaults(v.ID, sc)
		a.visit(v.Init, sc)
	case *ast.AssignmentExpression:
		a.visitAssignTarget(v.Left, sc)
		a.visit(v.Right, sc)
	default:
		for _, c := range ast.Children(n) {
			a.visit(c, sc)
		}
	}
}

func bodyNode(b *ast.BlockStatement) ast.Node {
	if b == nil {
		return nil
	}
	return b
}

func (a *analyzer) visitForInOf(left, right, body ast.Node, owner ast.Node, sc *Scope) {
	child := a.newChild(sc, owner, false)
	if decl, ok := left.(*ast.VariableDeclaration); ok {
		if decl.Kind != "var" {
			for _, d := range decl.Declarations {
				a.declarePattern(child, d.ID, kindOf(decl.Kind), nil)
			}
		}
		// var-declared loop variables were hoisted in pass 1; resolve the
		// pattern as references for the data flow.
	} else {
		a.visitAssignTarget(left, child)
	}
	a.visit(right, child)
	a.visitBodyNoBlockScope(body, child)
}

// visitBodyNoBlockScope visits a loop body. A block body still gets its own
// scope; other statements are visited in the loop scope.
func (a *analyzer) visitBodyNoBlockScope(body ast.Node, sc *Scope) {
	a.visit(body, sc)
}

// visitAssignTarget resolves references in an assignment target (which may
// be a pattern containing expressions).
func (a *analyzer) visitAssignTarget(n ast.Node, sc *Scope) {
	switch v := n.(type) {
	case *ast.Identifier:
		a.reference(sc, v)
	case *ast.MemberExpression:
		a.visit(v, sc)
	case *ast.ArrayPattern:
		for _, el := range v.Elements {
			if el != nil {
				a.visitAssignTarget(el, sc)
			}
		}
	case *ast.ObjectPattern:
		for _, prop := range v.Properties {
			switch pv := prop.(type) {
			case *ast.Property:
				if pv.Computed {
					a.visit(pv.Key, sc)
				}
				a.visitAssignTarget(pv.Value, sc)
			case *ast.RestElement:
				a.visitAssignTarget(pv.Argument, sc)
			}
		}
	case *ast.AssignmentPattern:
		a.visitAssignTarget(v.Left, sc)
		a.visit(v.Right, sc)
	case *ast.RestElement:
		a.visitAssignTarget(v.Argument, sc)
	default:
		a.visit(n, sc)
	}
}

// visitPatternDefaults resolves references inside pattern default values and
// computed keys (the bound identifiers themselves are declarations).
func (a *analyzer) visitPatternDefaults(pat ast.Node, sc *Scope) {
	switch v := pat.(type) {
	case *ast.ArrayPattern:
		for _, el := range v.Elements {
			if el != nil {
				a.visitPatternDefaults(el, sc)
			}
		}
	case *ast.ObjectPattern:
		for _, prop := range v.Properties {
			switch pv := prop.(type) {
			case *ast.Property:
				if pv.Computed {
					a.visit(pv.Key, sc)
				}
				a.visitPatternDefaults(pv.Value, sc)
			case *ast.RestElement:
				a.visitPatternDefaults(pv.Argument, sc)
			}
		}
	case *ast.AssignmentPattern:
		a.visitPatternDefaults(v.Left, sc)
		a.visit(v.Right, sc)
	case *ast.RestElement:
		a.visitPatternDefaults(v.Argument, sc)
	}
}

// visitFunction builds the function scope, declares params and the function
// expression's own name, hoists inner declarations, and visits the body.
func (a *analyzer) visitFunction(fn ast.Node, params []ast.Node, body ast.Node, sc *Scope) {
	child := a.newChild(sc, fn, true)
	// A named function expression binds its own name inside itself.
	if fe, ok := fn.(*ast.FunctionExpression); ok && fe.ID != nil {
		a.declare(child, fe.ID, BindFunction, nil)
	}
	for _, param := range params {
		a.declarePattern(child, param, BindParam, nil)
	}
	for _, param := range params {
		a.visitPatternDefaults(param, child)
	}
	switch b := body.(type) {
	case *ast.BlockStatement:
		a.collectDecls(b.Body, child)
		for _, s := range b.Body {
			a.visit(s, child)
		}
	case nil:
	default:
		// Arrow expression body.
		a.visit(b, child)
	}
}

func (a *analyzer) visitClassBody(body *ast.ClassBody, sc *Scope) {
	if body == nil {
		return
	}
	for _, member := range body.Body {
		switch m := member.(type) {
		case *ast.MethodDefinition:
			a.visit(m, sc)
		case *ast.PropertyDefinition:
			if m.Computed {
				a.visit(m.Key, sc)
			}
			a.visit(m.Value, sc)
		}
	}
}

// collectLexical declares let/const/class/function bindings of a block into
// its scope (vars were hoisted already).
func (a *analyzer) collectLexical(stmts []ast.Node, sc *Scope) {
	for _, stmt := range stmts {
		switch v := stmt.(type) {
		case *ast.VariableDeclaration:
			if v.Kind != "var" {
				for _, d := range v.Declarations {
					a.declarePattern(sc, d.ID, kindOf(v.Kind), d.Init)
				}
			}
		case *ast.FunctionDeclaration:
			if v.ID != nil {
				a.declare(sc, v.ID, BindFunction, nil)
			}
		case *ast.ClassDeclaration:
			if v.ID != nil {
				a.declare(sc, v.ID, BindClass, nil)
			}
		}
	}
}
