package scope

import (
	"repro/internal/js/ast"
)

// Session is a reusable scope analyzer. A Session analyzes one program at a
// time and recycles every piece of working storage across runs — the dense
// resolution table, the scope and binding slabs, the reference store, and
// the control-edge buffer — so a scan worker that analyzes many files pays
// steady-state zero allocations for the whole scope/flow plane.
//
// Hard reset contract (mirroring parser.Session): reset re-arms every slab
// and buffer before a run, and the Info returned by Analyze/AnalyzeFlow
// aliases that storage — it is valid only until the next call on the same
// Session. Copy with Info.Detach to keep results longer. The zero value is
// NOT ready to use; call NewSession. Sessions are not safe for concurrent
// use.
type Session struct {
	a analyzer
}

// NewSession returns an empty scope analysis session.
func NewSession() *Session {
	s := &Session{}
	s.a.descend = s.a.visit
	return s
}

// Analyze builds scope information for a program, reusing the session's
// pooled storage. The tree's NodeIDs are re-stamped unconditionally (safe
// on freshly mutated trees). The result is invalidated by the next call.
func (s *Session) Analyze(prog *ast.Program) *Info {
	if s.a.stamper == nil {
		s.a.stamper = ast.NewIDStamper()
	}
	s.a.stamper.StampIDs(prog)
	return s.a.run(prog, false)
}

// AnalyzeFlow is the fused entry point for the flow layer: one walk that
// both analyzes scopes and emits control-flow edges. It trusts an existing
// stamping (Program.NodeCount > 0) and stamps only unstamped trees — the
// parser stamps every tree it produces, so the steady-state path never
// re-walks. Both returned values alias session storage and are invalidated
// by the next call.
func (s *Session) AnalyzeFlow(prog *ast.Program) (*Info, []Edge) {
	if prog.NodeCount == 0 {
		if s.a.stamper == nil {
			s.a.stamper = ast.NewIDStamper()
		}
		s.a.stamper.StampIDs(prog)
	}
	info := s.a.run(prog, true)
	return info, s.a.control
}

// refPair records one (binding, reference) hit in walk order; finalizeRefs
// counting-sorts the pairs into per-binding sub-slices of one shared store.
type refPair struct {
	b  *Binding
	id *ast.Identifier
}

// analyzer holds the session storage plus the walk state of the run in
// progress. The walk state (sc, wire, collectControl) lives in fields
// rather than parameters so the default-descent hook can be a pre-bound
// func field instead of a per-node closure.
type analyzer struct {
	// Pooled storage, reset per run.
	resolved    []*Binding
	refPairs    []refPair
	refStore    []*ast.Identifier
	unresolved  []*ast.Identifier
	bindings    []*Binding
	scopeList   []*Scope
	control     []Edge
	scopes      scopeSlab
	bindingSlab bindingSlab
	stamper     *ast.IDStamper

	// Walk state.
	sc             *Scope
	wire           bool
	collectControl bool
	descend        func(ast.Node)
	info           *Info
}

// run performs the fused walk and assembles the Info.
func (a *analyzer) run(prog *ast.Program, collectControl bool) *Info {
	a.reset(int(prog.NodeCount))
	a.collectControl = collectControl
	info := &Info{}
	a.info = info
	global := a.newScope(prog, true)
	info.Global = global
	a.sc = global
	a.wire = collectControl
	// Pass 1 over the top level: hoist declarations so forward references
	// resolve. Nested function bodies run their own pass 1 when the walk
	// reaches them, exactly like the refspec analyzer.
	a.collectDecls(prog.Body, global)
	a.visitStmts(prog, prog.Body)
	a.finalizeRefs()
	info.Bindings = a.bindings
	info.Unresolved = a.unresolved
	info.resolved = a.resolved
	info.scopes = a.scopeList
	a.sc = nil
	a.info = nil
	return info
}

// reset re-arms every buffer and slab for a tree of n nodes. This is the
// session's hard reset: nothing recorded for the previous file survives it,
// and everything the previous Info pointed at is about to be overwritten.
func (a *analyzer) reset(n int) {
	if n < 1 {
		n = 1
	}
	if cap(a.resolved) < n {
		a.resolved = make([]*Binding, n)
	} else {
		a.resolved = a.resolved[:n]
		clear(a.resolved)
	}
	a.refPairs = a.refPairs[:0]
	a.unresolved = a.unresolved[:0]
	a.bindings = a.bindings[:0]
	a.scopeList = a.scopeList[:0]
	a.control = a.control[:0]
	a.scopes.reset()
	a.bindingSlab.reset()
}

// newScope allocates a scope from the slab and registers it in creation
// order.
func (a *analyzer) newScope(node ast.Node, isFunc bool) *Scope {
	sc := a.scopes.alloc()
	sc.Node = node
	sc.IsFunction = isFunc
	sc.idx = int32(len(a.scopeList))
	a.scopeList = append(a.scopeList, sc)
	return sc
}

// newChild allocates a child of the current scope.
func (a *analyzer) newChild(node ast.Node, isFunc bool) *Scope {
	sc := a.newScope(node, isFunc)
	sc.Parent = a.sc
	a.sc.Children = append(a.sc.Children, sc)
	return sc
}

// declare records a binding for id in sc (hoisting var/function kinds to
// the nearest function scope). Redeclaration keeps the first binding and
// treats this occurrence as a reference, so renames cover the redeclaration
// site too.
func (a *analyzer) declare(sc *Scope, id *ast.Identifier, kind BindingKind, init ast.Node) *Binding {
	target := sc
	if kind == BindVar || kind == BindFunction {
		target = sc.hoistTarget()
	}
	if existing := target.Binding(id.Name); existing != nil {
		a.resolve(id, existing)
		a.recordRef(existing, id)
		if existing.Init == nil {
			existing.Init = init
		}
		return existing
	}
	b := a.bindingSlab.alloc()
	b.Name = id.Name
	b.Decl = id
	b.Kind = kind
	b.Scope = target
	b.Init = init
	b.idx = int32(len(a.bindings))
	target.insert(b)
	a.bindings = append(a.bindings, b)
	return b
}

// reference resolves id in the current scope chain, or records it as
// unresolved.
//
//jslint:hotpath
func (a *analyzer) reference(id *ast.Identifier) {
	if b := a.sc.lookup(id.Name); b != nil {
		a.resolve(id, b)
		a.recordRef(b, id)
		return
	}
	a.unresolved = append(a.unresolved, id)
}

// resolve stores the id→binding resolution in the dense table. Slot 0 is
// the Program root's and is left nil on purpose: an unstamped identifier
// (NodeID 0, from a tree mutated after stamping) must read as unresolved,
// not as whatever was written last.
//
//jslint:hotpath
func (a *analyzer) resolve(id *ast.Identifier, b *Binding) {
	nid := id.NodeID()
	if nid == 0 || int(nid) >= len(a.resolved) {
		return
	}
	a.resolved[nid] = b
}

// recordRef logs one reference hit; finalizeRefs materializes Binding.Refs.
//
//jslint:hotpath
func (a *analyzer) recordRef(b *Binding, id *ast.Identifier) {
	a.refPairs = append(a.refPairs, refPair{b: b, id: id})
	b.refLen++
}

// edge appends one control edge (nil endpoints are skipped, matching the
// original cfg builder).
//
//jslint:hotpath
func (a *analyzer) edge(from, to ast.Node) {
	if from == nil || to == nil {
		return
	}
	a.control = append(a.control, Edge{From: from, To: to})
}

// edgeIfWired appends a control edge only when the walk is in a wired
// control region.
//
//jslint:hotpath
func (a *analyzer) edgeIfWired(from, to ast.Node) {
	if a.collectControl && a.wire {
		a.edge(from, to)
	}
}

// finalizeRefs counting-sorts the walk's (binding, ref) pairs into
// per-binding contiguous sub-slices of one shared store: first carve each
// binding's empty window from the store using its refLen, then replay the
// pairs in walk order — append fills each window without allocating, and
// per-binding reference order matches the refspec analyzer exactly.
func (a *analyzer) finalizeRefs() {
	total := len(a.refPairs)
	if cap(a.refStore) < total {
		a.refStore = make([]*ast.Identifier, 0, total)
	}
	store := a.refStore[:0]
	off := 0
	for _, b := range a.bindings {
		n := int(b.refLen)
		b.Refs = store[off : off : off+n]
		off += n
	}
	for _, p := range a.refPairs {
		p.b.Refs = append(p.b.Refs, p.id)
	}
	a.refStore = store
}

// Slab chunk sizing for the scope/binding slabs: like the AST arena, chunks
// double from slabChunkMin up to slabChunkMax and are never moved — alloc
// hands out interior pointers, so a filled chunk is kept and a fresh one
// appended.
const (
	slabChunkMin = 64
	slabChunkMax = 1024
)

// scopeSlab is a chunked allocator of Scope values. reset recycles every
// chunk in place, preserving each scope's Children/bindings capacity and
// its (cleared) byName map, so steady-state analysis allocates no scope
// storage at all.
type scopeSlab struct {
	chunks [][]Scope
}

//jslint:hotpath
func (s *scopeSlab) alloc() *Scope {
	n := len(s.chunks)
	if n == 0 || len(s.chunks[n-1]) == cap(s.chunks[n-1]) {
		s.grow()
		n = len(s.chunks)
	}
	c := s.chunks[n-1]
	c = c[:len(c)+1]
	s.chunks[n-1] = c
	return &c[len(c)-1]
}

func (s *scopeSlab) grow() {
	capNext := slabChunkMin
	if n := len(s.chunks); n > 0 {
		capNext = 2 * cap(s.chunks[n-1])
		if capNext > slabChunkMax {
			capNext = slabChunkMax
		}
	}
	s.chunks = append(s.chunks, make([]Scope, 0, capNext))
}

// reset recycles every used scope. Fields that pin per-file memory (AST
// nodes via Node, the parent/child web, binding pointers, map keys) are
// cleared; slice capacities and map buckets are retained for reuse.
func (s *scopeSlab) reset() {
	for ci := range s.chunks {
		c := s.chunks[ci]
		for i := range c {
			sc := &c[i]
			sc.Node = nil
			sc.Parent = nil
			sc.Children = sc.Children[:0]
			sc.IsFunction = false
			sc.bindings = sc.bindings[:0]
			sc.idx = 0
			if sc.byName != nil {
				clear(sc.byName)
			}
		}
		s.chunks[ci] = c[:0]
	}
}

// bindingSlab is a chunked allocator of Binding values; alloc returns
// zeroed bindings (reset zeroes in bulk, and Binding retains no reusable
// capacity worth preserving — Refs alias the shared ref store).
type bindingSlab struct {
	chunks [][]Binding
}

//jslint:hotpath
func (s *bindingSlab) alloc() *Binding {
	n := len(s.chunks)
	if n == 0 || len(s.chunks[n-1]) == cap(s.chunks[n-1]) {
		s.grow()
		n = len(s.chunks)
	}
	c := s.chunks[n-1]
	c = c[:len(c)+1]
	s.chunks[n-1] = c
	return &c[len(c)-1]
}

func (s *bindingSlab) grow() {
	capNext := slabChunkMin
	if n := len(s.chunks); n > 0 {
		capNext = 2 * cap(s.chunks[n-1])
		if capNext > slabChunkMax {
			capNext = slabChunkMax
		}
	}
	s.chunks = append(s.chunks, make([]Binding, 0, capNext))
}

func (s *bindingSlab) reset() {
	for ci := range s.chunks {
		c := s.chunks[ci]
		clear(c)
		s.chunks[ci] = c[:0]
	}
}
