// Package scope performs lexical scope analysis over the JavaScript AST:
// it builds the scope tree, records variable bindings (var hoisting, let and
// const block scoping, parameters, function and class names, catch
// parameters, imports), and resolves every identifier reference to its
// binding. The identifier renaming transformers and the data-flow
// construction both build on this analysis.
//
// The analyzer is a single fused walk over a NodeID-stamped tree: one
// traversal resolves references, builds the scope tree, and (when asked by
// the flow layer) emits the control-flow edges that used to require a
// second walk. Resolution is stored in a dense NodeID-indexed slice instead
// of a pointer-keyed map, and scopes use slice-backed binding tables (most
// scopes hold a handful of names) that promote to a map only when a scope
// grows large. The original map-based two-walk analyzer survives as the
// executable spec in internal/js/scope/refspec, and differential tests
// assert both produce identical binding/reference/edge sets.
//
// Ownership: Analyze returns a self-contained Info. Session.Analyze returns
// an Info backed by pooled session storage that is invalidated by the next
// call on the same Session; use Detach to copy such an Info out.
package scope

import (
	"repro/internal/js/ast"
)

// BindingKind classifies how a name was introduced.
type BindingKind int

// Binding kinds.
const (
	BindVar BindingKind = iota + 1
	BindLet
	BindConst
	BindParam
	BindFunction
	BindClass
	BindCatch
	BindImport
)

// Binding is one declared name.
type Binding struct {
	Name string
	// Decl is the declaring Identifier node (nil for synthetic bindings).
	Decl *ast.Identifier
	Kind BindingKind
	// Scope is the scope owning the binding.
	Scope *Scope
	// Refs are all identifier nodes that reference this binding (reads and
	// writes), excluding the declaration itself. For session-backed Info
	// the slice aliases pooled storage; Detach copies it out.
	Refs []*ast.Identifier
	// Init is the initializer expression when the binding came from a
	// declarator with one (used by features: e.g. "fetched from a global
	// array").
	Init ast.Node

	// refLen counts refs during the walk; finalizeRefs carves Refs from the
	// shared store with it. After analysis it equals len(Refs).
	refLen int32
	// idx is the binding's position in Info.Bindings, used by Detach to
	// remap pointers into the copied storage.
	idx int32
}

// Scope is one lexical scope.
type Scope struct {
	// Node is the AST node that owns the scope (Program, function, block,
	// for statement, or catch clause).
	Node ast.Node
	// Parent is nil for the program scope.
	Parent *Scope
	// Children in source order.
	Children []*Scope
	// IsFunction marks scopes that host `var` declarations.
	IsFunction bool

	// bindings lists the scope's own bindings in declaration order. Small
	// scopes are looked up by linear scan; byName is built lazily once the
	// scope outgrows scopePromoteAt (huge flat obfuscated scopes).
	bindings []*Binding
	// byName, when non-nil, indexes every binding in bindings.
	byName map[string]*Binding
	// idx is the scope's position in the creation-order scope list, used by
	// Detach to remap pointers.
	idx int32
}

// scopePromoteAt is the own-binding count above which a scope switches from
// linear scan to a name map. Linear scan over a few entries beats a map
// probe; a thousand-entry obfuscated top scope does not.
const scopePromoteAt = 16

// Binding returns the binding declared directly in this scope under name,
// or nil. (Use Info.BindingOf to resolve a reference through the chain.)
//
//jslint:hotpath
func (s *Scope) Binding(name string) *Binding {
	if s.byName != nil {
		return s.byName[name]
	}
	for _, b := range s.bindings {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Bindings returns the scope's own bindings in declaration order.
func (s *Scope) Bindings() []*Binding { return s.bindings }

// lookup resolves name through the scope chain.
//
//jslint:hotpath
func (s *Scope) lookup(name string) *Binding {
	for sc := s; sc != nil; sc = sc.Parent {
		if b := sc.Binding(name); b != nil {
			return b
		}
	}
	return nil
}

// hoistTarget walks up to the nearest function (or program) scope.
//
//jslint:hotpath
func (s *Scope) hoistTarget() *Scope {
	for sc := s; sc != nil; sc = sc.Parent {
		if sc.IsFunction {
			return sc
		}
	}
	return s
}

// insert adds b to the scope's own table, promoting to a map when the scope
// grows past scopePromoteAt.
func (s *Scope) insert(b *Binding) {
	s.bindings = append(s.bindings, b)
	if s.byName != nil {
		s.byName[b.Name] = b
		return
	}
	if len(s.bindings) > scopePromoteAt {
		s.promote()
	}
}

// promote builds the name map from the slice table. Kept out of insert so
// the common path stays allocation-free.
func (s *Scope) promote() {
	m := make(map[string]*Binding, 2*scopePromoteAt)
	for _, b := range s.bindings {
		m[b.Name] = b
	}
	s.byName = m
}

// Edge is a directed edge between two AST nodes. It lives here (rather than
// in internal/flow) because the fused walk emits control edges during scope
// analysis; flow aliases the type, so flow.Edge literals still compile.
type Edge struct {
	From ast.Node
	To   ast.Node
}

// Info is the result of the analysis.
type Info struct {
	// Global is the program scope.
	Global *Scope
	// Unresolved lists references to names with no binding in the file
	// (browser/Node globals such as window, document, require).
	Unresolved []*ast.Identifier
	// Bindings lists every binding in declaration order.
	Bindings []*Binding

	// resolved maps a reference identifier's dense NodeID to its binding.
	// Slot 0 belongs to the Program root and stays nil, so identifiers from
	// an unstamped (foreign) tree resolve to nil rather than misresolving.
	resolved []*Binding
	// scopes lists every scope in creation order (Global first); Detach
	// uses it to copy the scope tree in one pass.
	scopes []*Scope
}

// BindingOf returns the binding a reference resolves to, or nil. The lookup
// is a dense slice index on the identifier's NodeID, valid for identifiers
// of the analyzed (stamped) tree.
//
//jslint:hotpath
func (i *Info) BindingOf(id *ast.Identifier) *Binding {
	nid := id.NodeID()
	if int(nid) >= len(i.resolved) {
		return nil
	}
	return i.resolved[nid]
}

// Analyze builds scope information for a program. The returned Info is
// self-contained. Analyze re-stamps the tree's NodeIDs unconditionally:
// its callers (transformers, the deobfuscator) hand it freshly mutated
// trees whose stale IDs would corrupt the dense resolution table.
func Analyze(prog *ast.Program) *Info {
	// A fresh session per call: the session's storage becomes the result's
	// storage, so nothing is pooled and the Info owns what it points to.
	return NewSession().Analyze(prog)
}

// Detach deep-copies a session-backed Info into self-contained storage. The
// copy shares nothing with the session pools (AST node pointers are shared,
// as ever — the nodes belong to the parser.Result). Scope/Binding identity
// is remapped, so pointer comparisons against the original's objects do not
// carry over.
func (i *Info) Detach() *Info {
	scopes := make([]Scope, len(i.scopes))
	bindings := make([]Binding, len(i.Bindings))

	// Shared backing stores sized exactly: every binding sits in exactly one
	// scope table, every child edge in one Children list.
	totalChildren := 0
	for _, s := range i.scopes {
		totalChildren += len(s.Children)
	}
	childStore := make([]*Scope, 0, totalChildren)
	tableStore := make([]*Binding, 0, len(i.Bindings))

	for k, s := range i.scopes {
		ns := &scopes[k]
		ns.Node = s.Node
		ns.IsFunction = s.IsFunction
		ns.idx = int32(k)
		if s.Parent != nil {
			ns.Parent = &scopes[s.Parent.idx]
		}
		start := len(childStore)
		for _, c := range s.Children {
			childStore = append(childStore, &scopes[c.idx])
		}
		ns.Children = childStore[start:len(childStore):len(childStore)]
		start = len(tableStore)
		for _, b := range s.bindings {
			tableStore = append(tableStore, &bindings[b.idx])
		}
		ns.bindings = tableStore[start:len(tableStore):len(tableStore)]
		// byName stays nil: detached scopes fall back to linear scan.
	}

	totalRefs := 0
	for _, b := range i.Bindings {
		totalRefs += len(b.Refs)
	}
	refStore := make([]*ast.Identifier, 0, totalRefs)
	outBindings := make([]*Binding, len(i.Bindings))
	for k, b := range i.Bindings {
		nb := &bindings[k]
		nb.Name, nb.Decl, nb.Kind, nb.Init = b.Name, b.Decl, b.Kind, b.Init
		nb.refLen = b.refLen
		nb.idx = int32(k)
		if b.Scope != nil {
			nb.Scope = &scopes[b.Scope.idx]
		}
		start := len(refStore)
		refStore = append(refStore, b.Refs...)
		nb.Refs = refStore[start:len(refStore):len(refStore)]
		outBindings[k] = nb
	}

	resolved := make([]*Binding, len(i.resolved))
	for k, b := range i.resolved {
		if b != nil {
			resolved[k] = &bindings[b.idx]
		}
	}

	scopeList := make([]*Scope, len(scopes))
	for k := range scopes {
		scopeList[k] = &scopes[k]
	}

	out := &Info{
		Unresolved: append([]*ast.Identifier(nil), i.Unresolved...),
		Bindings:   outBindings,
		resolved:   resolved,
		scopes:     scopeList,
	}
	if i.Global != nil {
		out.Global = &scopes[i.Global.idx]
	}
	return out
}
