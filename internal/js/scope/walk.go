package scope

import (
	"repro/internal/js/ast"
)

// This file is the fused walk: one traversal that does what the refspec
// analyzer's reference-resolution walk and the flow package's control-edge
// walk used to do separately. Scope behavior must stay identical to
// internal/js/scope/refspec; control behavior must stay identical to the
// original cfg builder preserved in internal/flow's differential test.
//
// Control wiring is tracked by the analyzer's wire flag, which replicates
// the reachability of the old builder's funcBodies walk: statements are
// chained and function bodies wired only inside regions the old builder
// visited. The flag is inherited through generic expressions (call
// arguments, object properties, class *expressions*) and switched off for
// the exact slots the old builder skipped: throw arguments, do-while tests,
// for-in/of left/right, with objects, switch-case tests, class
// *declarations*, function parameters, arrow expression bodies, and pattern
// defaults of statement-level variable declarations (for-init declarations
// wire their defaults — the old builder walked the whole init). Each case
// that flips the flag restores it before returning. ConditionalExpression
// edges are NOT wire-gated: the old builder added them in a full-tree pass.

// visitStmts visits a statement list owned by parent, chaining control
// edges (parent→first, prev→next, with terminating statements breaking the
// chain) when the region is wired.
func (a *analyzer) visitStmts(parent ast.Node, stmts []ast.Node) {
	if a.collectControl && a.wire {
		var prev ast.Node
		for _, s := range stmts {
			if prev == nil {
				a.edge(parent, s)
			} else {
				a.edge(prev, s)
			}
			a.visit(s)
			if terminates(s) {
				prev = nil
			} else {
				prev = s
			}
		}
		return
	}
	for _, s := range stmts {
		a.visit(s)
	}
}

// terminates reports whether control cannot fall through s.
func terminates(s ast.Node) bool {
	switch v := s.(type) {
	case *ast.ReturnStatement, *ast.ThrowStatement, *ast.BreakStatement, *ast.ContinueStatement:
		return true
	case *ast.BlockStatement:
		if len(v.Body) == 0 {
			return false
		}
		return terminates(v.Body[len(v.Body)-1])
	default:
		return false
	}
}

// visit resolves references and emits control edges for n within the
// current scope (a.sc) and wiring region (a.wire), creating child scopes as
// it descends. Cases that have neither scope nor control behavior fall
// through to a plain EachChild descent via the pre-bound a.descend hook.
func (a *analyzer) visit(n ast.Node) {
	if n == nil {
		return
	}
	switch v := n.(type) {
	case *ast.Identifier:
		a.reference(v)
	case *ast.VariableDeclaration:
		a.visitVarDecl(v, false)
	case *ast.FunctionDeclaration:
		a.visitFunction(v, v.Params, bodyNode(v.Body))
	case *ast.FunctionExpression:
		a.visitFunction(v, v.Params, bodyNode(v.Body))
	case *ast.ArrowFunctionExpression:
		a.visitFunction(v, v.Params, v.Body)
	case *ast.ClassDeclaration:
		// Class declarations are opaque to statement control flow (the old
		// builder had no stmt case for them); their methods stay unwired.
		w := a.wire
		a.wire = false
		a.visitClass(v.SuperClass, v.Body)
		a.wire = w
	case *ast.ClassExpression:
		// Class expressions inherit the region: the old funcBodies walk
		// descended into them, wiring their method bodies.
		a.visitClass(v.SuperClass, v.Body)
	case *ast.BlockStatement:
		sc := a.sc
		a.sc = a.newChild(v, false)
		a.collectLexical(v.Body)
		a.visitStmts(v, v.Body)
		a.sc = sc
	case *ast.IfStatement:
		a.visit(v.Test)
		a.edgeIfWired(v, v.Consequent)
		a.visit(v.Consequent)
		if v.Alternate != nil {
			a.edgeIfWired(v, v.Alternate)
			a.visit(v.Alternate)
		}
	case *ast.WhileStatement:
		a.visit(v.Test)
		a.edgeIfWired(v, v.Body)
		a.visit(v.Body)
		a.edgeIfWired(v.Body, v) // back edge
	case *ast.DoWhileStatement:
		a.edgeIfWired(v, v.Body)
		a.visit(v.Body)
		a.edgeIfWired(v.Body, v)
		w := a.wire
		a.wire = false // do-while tests were never funcBodies-walked
		a.visit(v.Test)
		a.wire = w
	case *ast.ForStatement:
		sc := a.sc
		a.sc = a.newChild(v, false)
		if decl, ok := v.Init.(*ast.VariableDeclaration); ok {
			if decl.Kind != "var" {
				for _, d := range decl.Declarations {
					a.declarePattern(a.sc, d.ID, kindOf(decl.Kind), d.Init)
				}
			}
			// For-init declarations wire their pattern defaults too: the
			// old builder ran funcBodies over the entire init.
			a.visitVarDecl(decl, true)
		} else {
			a.visit(v.Init)
		}
		a.visit(v.Test)
		a.visit(v.Update)
		a.edgeIfWired(v, v.Body)
		a.visit(v.Body)
		a.edgeIfWired(v.Body, v)
		a.sc = sc
	case *ast.ForInStatement:
		a.visitForInOf(v.Left, v.Right, v.Body, v)
	case *ast.ForOfStatement:
		a.visitForInOf(v.Left, v.Right, v.Body, v)
	case *ast.SwitchStatement:
		a.visit(v.Discriminant)
		for _, c := range v.Cases {
			a.edgeIfWired(v, c)
			w := a.wire
			a.wire = false // case tests were never funcBodies-walked
			a.visit(c.Test)
			a.wire = w
			a.visitStmts(c, c.Consequent)
		}
	case *ast.TryStatement:
		if v.Block != nil {
			a.edgeIfWired(v, v.Block)
			a.visit(v.Block)
		}
		if v.Handler != nil {
			a.edgeIfWired(v, v.Handler)
			a.visit(v.Handler)
		}
		if v.Finalizer != nil {
			a.edgeIfWired(v, v.Finalizer)
			a.visit(v.Finalizer)
		}
	case *ast.CatchClause:
		sc := a.sc
		a.sc = a.newChild(v, false)
		if v.Param != nil {
			a.declarePattern(a.sc, v.Param, BindCatch, nil)
			w := a.wire
			a.wire = false // catch param defaults sit outside the region
			a.visitPatternDefaults(v.Param)
			a.wire = w
		}
		if v.Body != nil {
			// The handler body's statements chain off the block node; the
			// handler→block edge mirrors the old Try case.
			a.edgeIfWired(v, v.Body)
			a.collectLexical(v.Body.Body)
			a.visitStmts(v.Body, v.Body.Body)
		}
		a.sc = sc
	case *ast.ThrowStatement:
		w := a.wire
		a.wire = false // throw arguments had no stmt case in the old builder
		a.visit(v.Argument)
		a.wire = w
	case *ast.MemberExpression:
		a.visit(v.Object)
		if v.Computed {
			a.visit(v.Property)
		}
		// Non-computed property names are not variable references.
	case *ast.Property:
		if v.Computed {
			a.visit(v.Key)
		}
		a.visit(v.Value)
	case *ast.MethodDefinition:
		if v.Computed {
			a.visit(v.Key)
		}
		if v.Value != nil {
			a.visitFunction(v.Value, v.Value.Params, bodyNode(v.Value.Body))
		}
	case *ast.LabeledStatement:
		// The label is not a variable reference.
		a.edgeIfWired(v, v.Body)
		a.visit(v.Body)
	case *ast.WithStatement:
		w := a.wire
		a.wire = false // with objects were never funcBodies-walked
		a.visit(v.Object)
		a.wire = w
		a.edgeIfWired(v, v.Body)
		a.visit(v.Body)
	case *ast.BreakStatement, *ast.ContinueStatement:
		// Labels are not variable references.
	case *ast.ImportDeclaration:
		// Specifier locals were declared in pass 1; nothing to resolve.
	case *ast.ExportNamedDeclaration:
		if v.Declaration != nil {
			a.visit(v.Declaration)
		}
		for _, s := range v.Specifiers {
			if v.Source == nil {
				a.reference(s.Local)
			}
		}
	case *ast.ExportDefaultDeclaration:
		if cd, ok := v.Declaration.(*ast.ClassDeclaration); ok {
			// Export-default classes follow *expression* wiring: the old
			// builder ran funcBodies over the declaration, which descends
			// into a class declaration and wires its methods.
			a.visitClass(cd.SuperClass, cd.Body)
		} else {
			a.visit(v.Declaration)
		}
	case *ast.VariableDeclarator:
		// Unreachable from statement positions (VariableDeclaration handles
		// its declarators) but kept for direct calls, mirroring refspec.
		w := a.wire
		a.wire = false
		a.visitPatternDefaults(v.ID)
		a.wire = w
		a.visit(v.Init)
	case *ast.AssignmentExpression:
		a.visitAssignTarget(v.Left)
		a.visit(v.Right)
	case *ast.ConditionalExpression:
		// Ternaries participate in control flow wherever they appear — the
		// old builder collected them in a full-tree walk, so this is not
		// gated on the wire flag.
		if a.collectControl {
			a.edge(v, v.Consequent)
			a.edge(v, v.Alternate)
		}
		a.visit(v.Test)
		a.visit(v.Consequent)
		a.visit(v.Alternate)
	default:
		ast.EachChild(n, a.descend)
	}
}

func bodyNode(b *ast.BlockStatement) ast.Node {
	if b == nil {
		return nil
	}
	return b
}

func kindOf(s string) BindingKind {
	switch s {
	case "let":
		return BindLet
	case "const":
		return BindConst
	default:
		return BindVar
	}
}

// visitVarDecl visits a variable declaration's defaults and initializers
// (declaration identifiers themselves were declared in pass 1 or by the
// for-statement case). wiredDefaults keeps the wire flag on for pattern
// defaults — true only for for-init declarations.
func (a *analyzer) visitVarDecl(v *ast.VariableDeclaration, wiredDefaults bool) {
	for _, d := range v.Declarations {
		if wiredDefaults {
			a.visitPatternDefaults(d.ID)
		} else {
			w := a.wire
			a.wire = false
			a.visitPatternDefaults(d.ID)
			a.wire = w
		}
		a.visit(d.Init)
	}
}

// visitFunction builds the function scope, declares params and the function
// expression's own name, hoists inner declarations, and visits the body.
// Wired functions get the fn→body edge and a chained body; parameters and
// arrow expression bodies are never wired (the old funcBodies walk stopped
// at the function node and only entered block bodies).
func (a *analyzer) visitFunction(fn ast.Node, params []ast.Node, body ast.Node) {
	sc := a.sc
	a.sc = a.newChild(fn, true)
	// A named function expression binds its own name inside itself.
	if fe, ok := fn.(*ast.FunctionExpression); ok && fe.ID != nil {
		a.declare(a.sc, fe.ID, BindFunction, nil)
	}
	for _, param := range params {
		a.declarePattern(a.sc, param, BindParam, nil)
	}
	w := a.wire
	a.wire = false
	for _, param := range params {
		a.visitPatternDefaults(param)
	}
	a.wire = w
	switch b := body.(type) {
	case *ast.BlockStatement:
		a.collectDecls(b.Body, a.sc)
		a.edgeIfWired(fn, b)
		a.visitStmts(b, b.Body)
	case nil:
	default:
		// Arrow expression body: never part of the control region.
		a.wire = false
		a.visit(b)
		a.wire = w
	}
	a.sc = sc
}

// visitClass visits a class's superclass and member bodies in the current
// wiring region (callers decide whether that region is live).
func (a *analyzer) visitClass(superClass ast.Node, body *ast.ClassBody) {
	a.visit(superClass)
	if body == nil {
		return
	}
	for _, member := range body.Body {
		switch m := member.(type) {
		case *ast.MethodDefinition:
			a.visit(m)
		case *ast.PropertyDefinition:
			if m.Computed {
				a.visit(m.Key)
			}
			a.visit(m.Value)
		}
	}
}

// visitForInOf builds the loop scope and visits a for-in/for-of statement.
// Left and right sit outside the control region (the old builder only wired
// the body); the body inherits the current region.
func (a *analyzer) visitForInOf(left, right, body ast.Node, owner ast.Node) {
	sc := a.sc
	a.sc = a.newChild(owner, false)
	w := a.wire
	a.wire = false
	if decl, ok := left.(*ast.VariableDeclaration); ok {
		if decl.Kind != "var" {
			for _, d := range decl.Declarations {
				a.declarePattern(a.sc, d.ID, kindOf(decl.Kind), nil)
			}
		}
		// var-declared loop variables were hoisted in pass 1; the pattern
		// itself is not visited as references (mirroring refspec).
	} else {
		a.visitAssignTarget(left)
	}
	a.visit(right)
	a.wire = w
	a.edgeIfWired(owner, body)
	a.visit(body)
	a.edgeIfWired(body, owner)
	a.sc = sc
}

// visitAssignTarget resolves references in an assignment target (which may
// be a pattern containing expressions).
func (a *analyzer) visitAssignTarget(n ast.Node) {
	switch v := n.(type) {
	case *ast.Identifier:
		a.reference(v)
	case *ast.MemberExpression:
		a.visit(v)
	case *ast.ArrayPattern:
		for _, el := range v.Elements {
			if el != nil {
				a.visitAssignTarget(el)
			}
		}
	case *ast.ObjectPattern:
		for _, prop := range v.Properties {
			switch pv := prop.(type) {
			case *ast.Property:
				if pv.Computed {
					a.visit(pv.Key)
				}
				a.visitAssignTarget(pv.Value)
			case *ast.RestElement:
				a.visitAssignTarget(pv.Argument)
			}
		}
	case *ast.AssignmentPattern:
		a.visitAssignTarget(v.Left)
		a.visit(v.Right)
	case *ast.RestElement:
		a.visitAssignTarget(v.Argument)
	default:
		a.visit(n)
	}
}

// visitPatternDefaults resolves references inside pattern default values
// and computed keys (the bound identifiers themselves are declarations).
func (a *analyzer) visitPatternDefaults(pat ast.Node) {
	switch v := pat.(type) {
	case *ast.ArrayPattern:
		for _, el := range v.Elements {
			if el != nil {
				a.visitPatternDefaults(el)
			}
		}
	case *ast.ObjectPattern:
		for _, prop := range v.Properties {
			switch pv := prop.(type) {
			case *ast.Property:
				if pv.Computed {
					a.visit(pv.Key)
				}
				a.visitPatternDefaults(pv.Value)
			case *ast.RestElement:
				a.visitPatternDefaults(pv.Argument)
			}
		}
	case *ast.AssignmentPattern:
		a.visitPatternDefaults(v.Left)
		a.visit(v.Right)
	case *ast.RestElement:
		a.visitPatternDefaults(v.Argument)
	}
}

// ---------------------------------------------------------------------------
// Declaration hoisting (pass 1, per scope)
// ---------------------------------------------------------------------------

// collectDecls hoists declarations in a statement list into sc: `var` (into
// function scope via declare), function declarations, and lexical let/const
// and class declarations in the current block.
func (a *analyzer) collectDecls(stmts []ast.Node, sc *Scope) {
	for _, stmt := range stmts {
		a.collectDecl(stmt, sc)
	}
}

func (a *analyzer) collectDecl(stmt ast.Node, sc *Scope) {
	switch v := stmt.(type) {
	case *ast.VariableDeclaration:
		kind := kindOf(v.Kind)
		for _, d := range v.Declarations {
			a.declarePattern(sc, d.ID, kind, d.Init)
		}
	case *ast.FunctionDeclaration:
		if v.ID != nil {
			a.declare(sc, v.ID, BindFunction, nil)
		}
	case *ast.ClassDeclaration:
		if v.ID != nil {
			a.declare(sc, v.ID, BindClass, nil)
		}
	case *ast.ImportDeclaration:
		for _, s := range v.Specifiers {
			switch sp := s.(type) {
			case *ast.ImportSpecifier:
				a.declare(sc, sp.Local, BindImport, nil)
			case *ast.ImportDefaultSpecifier:
				a.declare(sc, sp.Local, BindImport, nil)
			case *ast.ImportNamespaceSpecifier:
				a.declare(sc, sp.Local, BindImport, nil)
			}
		}
	case *ast.ExportNamedDeclaration:
		if v.Declaration != nil {
			a.collectDecl(v.Declaration, sc)
		}
	case *ast.ExportDefaultDeclaration:
		if fn, ok := v.Declaration.(*ast.FunctionDeclaration); ok && fn.ID != nil {
			a.declare(sc, fn.ID, BindFunction, nil)
		}
	// `var` declarations nested inside blocks/loops hoist to the function
	// scope; recurse into statement containers (but not into nested
	// functions, whose vars belong to them).
	case *ast.BlockStatement:
		a.collectVarsOnly(v.Body, sc)
	case *ast.IfStatement:
		a.collectVarsOnlyOne(v.Consequent, sc)
		a.collectVarsOnlyOne(v.Alternate, sc)
	case *ast.ForStatement:
		a.collectVarsOnlyOne(v.Init, sc)
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.ForInStatement:
		a.collectVarsOnlyOne(v.Left, sc)
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.ForOfStatement:
		a.collectVarsOnlyOne(v.Left, sc)
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.WhileStatement:
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.DoWhileStatement:
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.TryStatement:
		if v.Block != nil {
			a.collectVarsOnly(v.Block.Body, sc)
		}
		if v.Handler != nil && v.Handler.Body != nil {
			a.collectVarsOnly(v.Handler.Body.Body, sc)
		}
		if v.Finalizer != nil {
			a.collectVarsOnly(v.Finalizer.Body, sc)
		}
	case *ast.SwitchStatement:
		for _, c := range v.Cases {
			a.collectVarsOnly(c.Consequent, sc)
		}
	case *ast.LabeledStatement:
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.WithStatement:
		a.collectVarsOnlyOne(v.Body, sc)
	}
}

// collectVarsOnly hoists only `var` and function declarations from nested
// statements (lexical declarations stay in their own block scope).
func (a *analyzer) collectVarsOnly(stmts []ast.Node, sc *Scope) {
	for _, s := range stmts {
		a.collectVarsOnlyOne(s, sc)
	}
}

func (a *analyzer) collectVarsOnlyOne(stmt ast.Node, sc *Scope) {
	if stmt == nil {
		return
	}
	switch v := stmt.(type) {
	case *ast.VariableDeclaration:
		if v.Kind == "var" {
			for _, d := range v.Declarations {
				a.declarePattern(sc, d.ID, BindVar, d.Init)
			}
		}
	case *ast.FunctionDeclaration, *ast.ClassDeclaration, *ast.ImportDeclaration:
		// Nested function/class declarations are block-scoped; they are
		// declared by collectLexical when their block scope is built.
	case *ast.BlockStatement:
		a.collectVarsOnly(v.Body, sc)
	case *ast.IfStatement:
		a.collectVarsOnlyOne(v.Consequent, sc)
		a.collectVarsOnlyOne(v.Alternate, sc)
	case *ast.ForStatement:
		a.collectVarsOnlyOne(v.Init, sc)
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.ForInStatement:
		a.collectVarsOnlyOne(v.Left, sc)
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.ForOfStatement:
		a.collectVarsOnlyOne(v.Left, sc)
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.WhileStatement:
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.DoWhileStatement:
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.TryStatement:
		if v.Block != nil {
			a.collectVarsOnly(v.Block.Body, sc)
		}
		if v.Handler != nil && v.Handler.Body != nil {
			a.collectVarsOnly(v.Handler.Body.Body, sc)
		}
		if v.Finalizer != nil {
			a.collectVarsOnly(v.Finalizer.Body, sc)
		}
	case *ast.SwitchStatement:
		for _, c := range v.Cases {
			a.collectVarsOnly(c.Consequent, sc)
		}
	case *ast.LabeledStatement:
		a.collectVarsOnlyOne(v.Body, sc)
	case *ast.WithStatement:
		a.collectVarsOnlyOne(v.Body, sc)
	}
}

// declarePattern declares every identifier bound by a binding pattern.
func (a *analyzer) declarePattern(sc *Scope, pat ast.Node, kind BindingKind, init ast.Node) {
	switch v := pat.(type) {
	case *ast.Identifier:
		a.declare(sc, v, kind, init)
	case *ast.ArrayPattern:
		for _, el := range v.Elements {
			if el != nil {
				a.declarePattern(sc, el, kind, nil)
			}
		}
	case *ast.ObjectPattern:
		for _, prop := range v.Properties {
			switch pv := prop.(type) {
			case *ast.Property:
				a.declarePattern(sc, pv.Value, kind, nil)
			case *ast.RestElement:
				a.declarePattern(sc, pv.Argument, kind, nil)
			}
		}
	case *ast.AssignmentPattern:
		a.declarePattern(sc, v.Left, kind, nil)
	case *ast.RestElement:
		a.declarePattern(sc, v.Argument, kind, nil)
	}
}

// collectLexical declares let/const/class/function bindings of a block into
// its scope (vars were hoisted already). The current scope (a.sc) is the
// block's scope.
func (a *analyzer) collectLexical(stmts []ast.Node) {
	for _, stmt := range stmts {
		switch v := stmt.(type) {
		case *ast.VariableDeclaration:
			if v.Kind != "var" {
				for _, d := range v.Declarations {
					a.declarePattern(a.sc, d.ID, kindOf(v.Kind), d.Init)
				}
			}
		case *ast.FunctionDeclaration:
			if v.ID != nil {
				a.declare(a.sc, v.ID, BindFunction, nil)
			}
		case *ast.ClassDeclaration:
			if v.ID != nil {
				a.declare(a.sc, v.ID, BindClass, nil)
			}
		}
	}
}
