package scope

import (
	"testing"

	"repro/internal/js/ast"
)

// Table-driven tests over the gnarly corners of JavaScript scoping: var
// hoisting out of every statement container, function-in-block, catch and
// loop-head shadowing, named function expressions, and assignment-target
// patterns. Each case asserts binding kinds, reference counts, and which
// names stay unresolved.
func TestScopingTable(t *testing.T) {
	type want struct {
		kind BindingKind
		refs int
	}
	cases := []struct {
		name string
		src  string
		// bindings asserts kind and ref count per declared name.
		bindings map[string]want
		// unresolved names that must escape the file.
		unresolved []string
		// distinct asserts two names that look identical resolve to
		// different bindings (shadowing), checked via Resolved pointers.
		extra func(t *testing.T, prog *ast.Program, info *Info)
	}{
		{
			name: "var hoists out of nested blocks",
			src: `
function f() {
  { { var deep = 1; } }
  if (c) { var a = 1; } else { var b = 2; }
  for (var i = 0; i < 3; i++) { var inLoop = i; }
  while (c) { var w = 1; }
  do { var d = 1; } while (c);
  try { var tr = 1; } catch (e) { var ca = 1; } finally { var fi = 1; }
  switch (c) { case 1: var sw = 1; }
  lbl: { var lb = 1; }
  return deep + a + b + i + inLoop + w + d + tr + ca + fi + sw + lb;
}`,
			bindings: map[string]want{
				"deep": {BindVar, 1}, "a": {BindVar, 1}, "b": {BindVar, 1},
				"i": {BindVar, 4}, "inLoop": {BindVar, 1}, "w": {BindVar, 1},
				"d": {BindVar, 1}, "tr": {BindVar, 1}, "ca": {BindVar, 1},
				"fi": {BindVar, 1}, "sw": {BindVar, 1}, "lb": {BindVar, 1},
			},
			unresolved: []string{"c"},
			extra: func(t *testing.T, prog *ast.Program, info *Info) {
				// Every var must live in f's function scope, not a block.
				for _, name := range []string{"deep", "a", "inLoop", "ca", "lb"} {
					b := findBinding(info, name)
					if b == nil || !b.Scope.IsFunction {
						t.Errorf("%s not hoisted to a function scope", name)
					}
				}
			},
		},
		{
			name: "var inside with and labeled-loop bodies",
			src: `
with (obj) { var wv = 1; }
outer: for (var k in obj) { var kv = k; }
for (var el of list) { el; }
use(wv, kv, el);`,
			bindings: map[string]want{
				"wv": {BindVar, 1}, "k": {BindVar, 1}, "kv": {BindVar, 1},
				"el": {BindVar, 2},
			},
			unresolved: []string{"obj", "list", "use"},
		},
		{
			name: "function-in-block hoists like Annex B",
			src: `
function outer() {
  if (c) { function g() { return 1; } g(); }
  return typeof g;
}`,
			bindings: map[string]want{"g": {BindFunction, 2}},
			extra: func(t *testing.T, prog *ast.Program, info *Info) {
				// The analyzer models the web-compat (Annex B) semantics:
				// a function declaration in a block hoists its binding to
				// the enclosing function scope, so both the call in the
				// block and the typeof probe outside resolve to it.
				b := findBinding(info, "g")
				if !b.Scope.IsFunction {
					t.Error("block-level function not hoisted to the function scope")
				}
				for _, ref := range b.Refs {
					if info.BindingOf(ref) != b {
						t.Error("g reference resolved to a different binding")
					}
				}
			},
		},
		{
			name: "catch parameter shadows outer binding",
			src: `
var e = "outer";
try { risky(); } catch (e) { log(e); }
log(e);`,
			bindings:   map[string]want{"e": {BindVar, 1}},
			unresolved: []string{"risky", "log"},
			extra: func(t *testing.T, prog *ast.Program, info *Info) {
				outer := findBinding(info, "e")
				var catchB *Binding
				for _, b := range info.Bindings {
					if b.Name == "e" && b.Kind == BindCatch {
						catchB = b
					}
				}
				if catchB == nil {
					t.Fatal("catch binding for e not found")
				}
				if len(catchB.Refs) != 1 {
					t.Errorf("catch e refs = %d, want 1 (the log inside)", len(catchB.Refs))
				}
				if outer == catchB {
					t.Error("catch parameter merged with outer var")
				}
			},
		},
		{
			name: "let in loop head shadows outer let",
			src: `
let i = "outer";
for (let i = 0; i < 2; i++) { touch(i); }
touch(i);`,
			unresolved: []string{"touch"},
			extra: func(t *testing.T, prog *ast.Program, info *Info) {
				var outer, loop *Binding
				for _, b := range info.Bindings {
					if b.Name != "i" {
						continue
					}
					if b.Scope.IsFunction || b.Scope.Parent == nil {
						outer = b
					} else {
						loop = b
					}
				}
				if outer == nil || loop == nil || outer == loop {
					t.Fatalf("expected two distinct i bindings, got outer=%v loop=%v", outer, loop)
				}
				if outer.Kind != BindLet || loop.Kind != BindLet {
					t.Errorf("kinds = %v, %v, want let", outer.Kind, loop.Kind)
				}
				// Loop head + condition + update + body = 4 refs on the
				// inner binding; the trailing touch(i) sees the outer one.
				if len(loop.Refs) != 3 {
					t.Errorf("loop i refs = %d, want 3", len(loop.Refs))
				}
				if len(outer.Refs) != 1 {
					t.Errorf("outer i refs = %d, want 1", len(outer.Refs))
				}
			},
		},
		{
			name: "const in for-of head is per-loop scoped",
			src: `
const x = "outer";
for (const x of items) { consume(x); }
consume(x);`,
			unresolved: []string{"items", "consume"},
			extra: func(t *testing.T, prog *ast.Program, info *Info) {
				var bindings []*Binding
				for _, b := range info.Bindings {
					if b.Name == "x" {
						bindings = append(bindings, b)
					}
				}
				if len(bindings) != 2 {
					t.Fatalf("got %d x bindings, want 2", len(bindings))
				}
				for _, b := range bindings {
					if b.Kind != BindConst || len(b.Refs) != 1 {
						t.Errorf("x binding kind=%v refs=%d, want const with 1 ref", b.Kind, len(b.Refs))
					}
				}
			},
		},
		{
			name: "named function expression binds its own name inside only",
			src: `
var fact = function self(n) { return n < 2 ? 1 : n * self(n - 1); };
fact(5); self;`,
			bindings: map[string]want{
				"fact": {BindVar, 1},
				"self": {BindFunction, 1},
				"n":    {BindParam, 3},
			},
			unresolved: []string{"self"},
			extra: func(t *testing.T, prog *ast.Program, info *Info) {
				b := findBinding(info, "self")
				if b.Scope.Node == prog {
					t.Error("function expression name leaked into the program scope")
				}
			},
		},
		{
			name: "for-in over assignment target resolves the target",
			src: `
var key;
for (key in table) { emit(key); }`,
			bindings:   map[string]want{"key": {BindVar, 2}},
			unresolved: []string{"table", "emit"},
		},
		{
			name: "destructuring assignment targets are references",
			src: `
var a, b, rest;
[a, b = 1, ...rest] = pull();
({x: a, [pick()]: b, ...rest} = bag);`,
			bindings: map[string]want{
				"a": {BindVar, 2}, "b": {BindVar, 2}, "rest": {BindVar, 2},
			},
			unresolved: []string{"pull", "pick", "bag"},
		},
		{
			name: "member expression assignment only references the object",
			src:  `var o = {}; o.field = ready;`,
			bindings: map[string]want{
				"o": {BindVar, 1},
			},
			unresolved: []string{"ready"},
		},
		{
			name: "class bodies: computed keys and field values resolve",
			src: `
const keyName = "k";
class Widget {
  [keyName]() { return 1; }
  static size = defaultSize;
  grow(by) { return this.size + by; }
}
new Widget();`,
			bindings: map[string]want{
				"keyName": {BindConst, 1},
				"Widget":  {BindClass, 1},
				"by":      {BindParam, 1},
			},
			unresolved: []string{"defaultSize"},
		},
		{
			name: "export declarations bind locally",
			src: `
export const version = 1;
export function start() { return version; }
export default function main() { return start(); }`,
			bindings: map[string]want{
				"version": {BindConst, 1},
				"start":   {BindFunction, 1},
				"main":    {BindFunction, 0},
			},
		},
		{
			name: "var redeclaration folds into one binding",
			src:  `var x = 1; var x = 2; function x() {} use(x);`,
			extra: func(t *testing.T, prog *ast.Program, info *Info) {
				var count int
				for _, b := range info.Bindings {
					if b.Name == "x" {
						count++
						// Redeclaration sites count as references.
						if len(b.Refs) != 3 {
							t.Errorf("x refs = %d, want 3 (two redecls + one use)", len(b.Refs))
						}
					}
				}
				if count != 1 {
					t.Errorf("got %d x bindings, want 1 merged binding", count)
				}
			},
			unresolved: []string{"use"},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			prog, info := analyze(t, tc.src)
			for name, w := range tc.bindings {
				b := findBinding(info, name)
				if b == nil {
					t.Errorf("binding %q not found", name)
					continue
				}
				if b.Kind != w.kind {
					t.Errorf("%s kind = %v, want %v", name, b.Kind, w.kind)
				}
				if len(b.Refs) != w.refs {
					t.Errorf("%s refs = %d, want %d", name, len(b.Refs), w.refs)
				}
				// Every recorded ref must resolve back to this binding.
				for _, ref := range b.Refs {
					if info.BindingOf(ref) != b {
						t.Errorf("%s ref does not resolve back to its binding", name)
					}
				}
			}
			unresolved := make(map[string]int)
			for _, id := range info.Unresolved {
				unresolved[id.Name]++
			}
			for _, name := range tc.unresolved {
				if unresolved[name] == 0 {
					t.Errorf("%q should be unresolved (got %v)", name, unresolved)
				}
				delete(unresolved, name)
			}
			for name := range unresolved {
				if tc.bindings != nil {
					if _, declared := tc.bindings[name]; declared {
						t.Errorf("%q is both declared and unresolved", name)
					}
				}
			}
			if tc.extra != nil {
				tc.extra(t, prog, info)
			}
		})
	}
}

// TestScopeTreeShape checks parent/child wiring of the scope tree itself.
func TestScopeTreeShape(t *testing.T) {
	_, info := analyze(t, `
function f() {
  { let inner = 1; inner; }
}`)
	if info.Global == nil || info.Global.Parent != nil {
		t.Fatal("global scope missing or has a parent")
	}
	if !info.Global.IsFunction {
		t.Error("program scope must host var hoisting")
	}
	var walk func(sc *Scope)
	var scopes int
	walk = func(sc *Scope) {
		scopes++
		for _, c := range sc.Children {
			if c.Parent != sc {
				t.Errorf("child scope (%T) does not point back at its parent", c.Node)
			}
			walk(c)
		}
	}
	walk(info.Global)
	// Program, function f, and the inner block.
	if scopes < 3 {
		t.Errorf("scope tree has %d scopes, want at least 3", scopes)
	}
}
