package scope_test

import (
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/js/parser"
	"repro/internal/js/scope"
)

// Session-poisoning tests for the scope session itself (the flow package
// has its own suite for the layer above): recycled slabs and buffers must
// never leak one file's analysis into the next, and Detach must produce an
// Info that survives the session moving on.

// TestScopeSessionReuseMatchesFresh re-analyzes each file with a session
// that just processed a different file and requires identical results to a
// fresh analysis.
func TestScopeSessionReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	files := corpus.RegularSet(4, rng)
	s := scope.NewSession()
	for _, f := range files {
		res, err := parser.ParseNoTokens(f.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", f.Name, err)
		}
		got := s.Analyze(res.Program)
		want := scope.Analyze(res.Program)
		if len(got.Bindings) != len(want.Bindings) {
			t.Fatalf("%s: %d bindings, fresh analysis %d", f.Name, len(got.Bindings), len(want.Bindings))
		}
		for i, wb := range want.Bindings {
			gb := got.Bindings[i]
			if gb.Name != wb.Name || gb.Decl != wb.Decl || gb.Kind != wb.Kind {
				t.Fatalf("%s: binding %d = %q/%p, fresh %q/%p", f.Name, i, gb.Name, gb.Decl, wb.Name, wb.Decl)
			}
			if len(gb.Refs) != len(wb.Refs) {
				t.Fatalf("%s: binding %q has %d refs, fresh %d", f.Name, wb.Name, len(gb.Refs), len(wb.Refs))
			}
			for j := range wb.Refs {
				if gb.Refs[j] != wb.Refs[j] {
					t.Fatalf("%s: binding %q ref %d differs", f.Name, wb.Name, j)
				}
			}
		}
		if len(got.Unresolved) != len(want.Unresolved) {
			t.Fatalf("%s: %d unresolved, fresh %d", f.Name, len(got.Unresolved), len(want.Unresolved))
		}
	}
}

// TestScopeInfoDetachOutlivesSession analyzes one file, detaches the Info,
// churns the session through other files, and then checks the detached copy
// against a fresh analysis — bindings, refs, scope tree, and the dense
// resolution table must all have survived the storage reuse.
func TestScopeInfoDetachOutlivesSession(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	files := corpus.RegularSet(3, rng)
	res, err := parser.ParseNoTokens(files[0].Source)
	if err != nil {
		t.Fatal(err)
	}
	s := scope.NewSession()
	detached := s.Analyze(res.Program).Detach()
	want := scope.Analyze(res.Program)

	for _, f := range files[1:] {
		other, err := parser.ParseNoTokens(f.Source)
		if err != nil {
			t.Fatal(err)
		}
		s.Analyze(other.Program)
	}

	if len(detached.Bindings) != len(want.Bindings) {
		t.Fatalf("detached Info has %d bindings, fresh %d", len(detached.Bindings), len(want.Bindings))
	}
	for i, wb := range want.Bindings {
		db := detached.Bindings[i]
		if db.Name != wb.Name || db.Decl != wb.Decl || db.Kind != wb.Kind || db.Init != wb.Init {
			t.Fatalf("detached binding %d (%q) diverged after session reuse", i, wb.Name)
		}
		if len(db.Refs) != len(wb.Refs) {
			t.Fatalf("detached binding %q has %d refs, fresh %d", wb.Name, len(db.Refs), len(wb.Refs))
		}
		for j := range wb.Refs {
			if db.Refs[j] != wb.Refs[j] {
				t.Fatalf("detached binding %q ref %d diverged", wb.Name, j)
			}
			if got := detached.BindingOf(wb.Refs[j]); got == nil || got.Name != wb.Name {
				t.Fatalf("detached BindingOf(%q ref %d) = %v", wb.Name, j, got)
			}
		}
		// The detached scope tree must point back at the detached bindings,
		// not the session's recycled ones.
		if db.Scope == nil || db.Scope.Node != wb.Scope.Node {
			t.Fatalf("detached binding %q lost its scope", wb.Name)
		}
		if found := db.Scope.Binding(db.Name); found != db {
			t.Fatalf("detached scope lookup for %q returned %p, want the detached binding %p", db.Name, found, db)
		}
	}
	if len(detached.Unresolved) != len(want.Unresolved) {
		t.Fatalf("detached Info has %d unresolved, fresh %d", len(detached.Unresolved), len(want.Unresolved))
	}
	var countScopes func(sc *scope.Scope) int
	countScopes = func(sc *scope.Scope) int {
		n := 1
		for _, c := range sc.Children {
			n += countScopes(c)
		}
		return n
	}
	if got, wantN := countScopes(detached.Global), countScopes(want.Global); got != wantN {
		t.Fatalf("detached scope tree has %d scopes, fresh %d", got, wantN)
	}
}
