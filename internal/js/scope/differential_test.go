// Differential test: the fused slice-backed analyzer must reproduce the
// refspec (map-based) analyzer exactly — binding list, reference lists,
// resolution table, unresolved set, and scope tree — over generated corpus
// files plus one output per monitored transformation technique. Both
// analyzers run over the same parsed tree, so every comparison is by node
// pointer.
package scope_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/js/ast"
	"repro/internal/js/parser"
	"repro/internal/js/scope"
	"repro/internal/js/scope/refspec"
	"repro/internal/transform"
)

func diffFixtures(t *testing.T) []corpus.File {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	files := corpus.RegularSet(3, rng)
	base := files[0]
	for _, tech := range transform.Techniques {
		out, err := corpus.Apply(base, rng, tech)
		if err != nil {
			t.Fatalf("apply %s: %v", tech, err)
		}
		files = append(files, out)
	}
	return files
}

// identifiers collects every Identifier node in pre-order.
func identifiers(prog *ast.Program) []*ast.Identifier {
	var out []*ast.Identifier
	var visit func(ast.Node)
	visit = func(n ast.Node) {
		if id, ok := n.(*ast.Identifier); ok {
			out = append(out, id)
		}
		ast.EachChild(n, visit)
	}
	visit(prog)
	return out
}

func compareScopes(t *testing.T, name string, ref *refspec.Scope, got *scope.Scope) {
	t.Helper()
	if ref.Node != got.Node {
		t.Fatalf("%s: scope node %v, refspec %v", name, got.Node, ref.Node)
	}
	if ref.IsFunction != got.IsFunction {
		t.Fatalf("%s: scope %v IsFunction = %v, refspec %v", name, got.Node, got.IsFunction, ref.IsFunction)
	}
	bindings := got.Bindings()
	if len(bindings) != len(ref.Bindings) {
		t.Fatalf("%s: scope %v has %d bindings, refspec %d", name, got.Node, len(bindings), len(ref.Bindings))
	}
	for _, b := range bindings {
		rb, ok := ref.Bindings[b.Name]
		if !ok {
			t.Fatalf("%s: scope %v binding %q missing from refspec", name, got.Node, b.Name)
		}
		compareBinding(t, name, rb, b)
	}
	// Per-name lookup must agree too (exercises the promoted-map path on
	// binding-heavy scopes).
	for bName, rb := range ref.Bindings {
		b := got.Binding(bName)
		if b == nil {
			t.Fatalf("%s: scope %v Binding(%q) = nil, refspec has %v", name, got.Node, bName, rb.Decl)
		}
	}
	if len(got.Children) != len(ref.Children) {
		t.Fatalf("%s: scope %v has %d children, refspec %d", name, got.Node, len(got.Children), len(ref.Children))
	}
	for i := range got.Children {
		compareScopes(t, name, ref.Children[i], got.Children[i])
	}
}

func compareBinding(t *testing.T, name string, ref *refspec.Binding, got *scope.Binding) {
	t.Helper()
	if got.Name != ref.Name || int(got.Kind) != int(ref.Kind) ||
		got.Decl != ref.Decl || got.Init != ref.Init {
		t.Fatalf("%s: binding %q = {kind %d decl %p init %p}, refspec {kind %d decl %p init %p}",
			name, got.Name, got.Kind, got.Decl, got.Init, ref.Kind, ref.Decl, ref.Init)
	}
	if got.Scope.Node != ref.Scope.Node {
		t.Fatalf("%s: binding %q owned by scope %v, refspec %v", name, got.Name, got.Scope.Node, ref.Scope.Node)
	}
	if len(got.Refs) != len(ref.Refs) {
		t.Fatalf("%s: binding %q has %d refs, refspec %d", name, got.Name, len(got.Refs), len(ref.Refs))
	}
	for i := range got.Refs {
		if got.Refs[i] != ref.Refs[i] {
			t.Fatalf("%s: binding %q ref %d = %p (%v), refspec %p (%v)", name, got.Name, i,
				got.Refs[i], got.Refs[i].Span(), ref.Refs[i], ref.Refs[i].Span())
		}
	}
}

func compareAnalyses(t *testing.T, name string, prog *ast.Program) {
	t.Helper()
	ref := refspec.Analyze(prog)
	got := scope.Analyze(prog)
	if len(got.Bindings) != len(ref.Bindings) {
		t.Fatalf("%s: %d bindings, refspec %d", name, len(got.Bindings), len(ref.Bindings))
	}
	for i := range got.Bindings {
		compareBinding(t, name, ref.Bindings[i], got.Bindings[i])
	}
	if len(got.Unresolved) != len(ref.Unresolved) {
		t.Fatalf("%s: %d unresolved, refspec %d", name, len(got.Unresolved), len(ref.Unresolved))
	}
	for i := range got.Unresolved {
		if got.Unresolved[i] != ref.Unresolved[i] {
			t.Fatalf("%s: unresolved %d = %p, refspec %p", name, i, got.Unresolved[i], ref.Unresolved[i])
		}
	}
	// The resolution table must agree for every identifier in the tree, not
	// just the ones one side happened to record.
	for _, id := range identifiers(prog) {
		rb, gb := ref.BindingOf(id), got.BindingOf(id)
		if (rb == nil) != (gb == nil) {
			t.Fatalf("%s: BindingOf(%q@%v) = %v, refspec %v", name, id.Name, id.Span(), gb, rb)
		}
		if rb != nil && (gb.Decl != rb.Decl || gb.Name != rb.Name) {
			t.Fatalf("%s: BindingOf(%q@%v) resolves to %q@%p, refspec %q@%p",
				name, id.Name, id.Span(), gb.Name, gb.Decl, rb.Name, rb.Decl)
		}
	}
	compareScopes(t, name, ref.Global, got.Global)
}

// TestFusedAnalyzerMatchesRefspec is the rewrite's correctness anchor: the
// corpus plus all ten transformation techniques through both analyzers.
func TestFusedAnalyzerMatchesRefspec(t *testing.T) {
	for i, f := range diffFixtures(t) {
		res, err := parser.ParseNoTokens(f.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", f.Name, err)
		}
		compareAnalyses(t, fmt.Sprintf("%s#%d", f.Name, i), res.Program)
	}
}

// TestFusedAnalyzerMatchesRefspecSessioned runs the same differential through
// one reused Session (the scan-worker shape) — storage recycling across files
// must never leak one file's state into the next.
func TestFusedAnalyzerMatchesRefspecSessioned(t *testing.T) {
	s := scope.NewSession()
	for i, f := range diffFixtures(t) {
		res, err := parser.ParseNoTokens(f.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", f.Name, err)
		}
		name := fmt.Sprintf("%s#%d", f.Name, i)
		ref := refspec.Analyze(res.Program)
		got := s.Analyze(res.Program)
		if len(got.Bindings) != len(ref.Bindings) {
			t.Fatalf("%s: %d bindings, refspec %d", name, len(got.Bindings), len(ref.Bindings))
		}
		for j := range got.Bindings {
			compareBinding(t, name, ref.Bindings[j], got.Bindings[j])
		}
		compareScopes(t, name, ref.Global, got.Global)
	}
}
