package lexer

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/js/ast"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos ast.Pos
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("lex error at line %d col %d: %s", e.Pos.Line, e.Pos.Column, e.Msg)
}

// Lexer scans JavaScript source into tokens. Construct with New, or reuse a
// zero/used Lexer by calling Reset.
//
// Token values are zero-copy: for tokens without escapes (the overwhelming
// majority), Lexeme and StringValue are slices of the source buffer. Only
// tokens that actually contain escape sequences (or the handful of cases
// where the decoded value cannot equal the raw bytes: invalid UTF-8, '\r'
// normalization in templates, U+2028/U+2029 line tracking) fall back to a
// strings.Builder on a separate slow path.
type Lexer struct {
	src  string
	off  int // current byte offset
	line int // current line, 1-based
	col  int // current column, 0-based

	// prevKind and prevWord track the previous significant token for the
	// regex-vs-division decision. Only the kind plus one string matter
	// (the keyword name or the punctuator), so storing them beats copying
	// a full Token on every Next.
	prevKind Kind
	prevWord string
	// hasPrev is false before the first token.
	hasPrev bool

	// comments collects all comments seen, for token-level features. Reset
	// truncates rather than frees it, so a pooled lexer reuses the backing
	// array across files; anyone retaining comments past the parse must
	// copy them out.
	comments []Comment
	// newlineBefore is set while skipping trivia ahead of the next token.
	newlineBefore bool

	// scanned counts tokens produced by Next, including tokens re-scanned
	// after a parser Restore (Restore deliberately does not rewind it).
	// The parser flushes scanned - consumed into the obs registry as
	// lex.tokens_rescanned: the lexing work cover-grammar backtracking
	// repeats.
	scanned int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	l := &Lexer{}
	l.Reset(src)
	return l
}

// Reset re-arms the lexer over new source, clearing every piece of
// per-file state: position, previous-token memory, the re-scan counter,
// and the comment buffer (truncated, keeping its capacity for reuse).
// This is the hard reset contract pooled parsers rely on — after Reset,
// scanning must be indistinguishable from a New lexer.
func (l *Lexer) Reset(src string) {
	l.src = src
	l.off = 0
	l.line = 1
	l.col = 0
	l.prevKind = 0
	l.prevWord = ""
	l.hasPrev = false
	l.comments = l.comments[:0]
	l.newlineBefore = false
	l.scanned = 0
}

// Comments returns the comments collected so far, in source order. The
// slice aliases the lexer's internal buffer; it is invalidated by Reset.
func (l *Lexer) Comments() []Comment { return l.comments }

// TokensScanned returns the number of tokens Next has produced, counting
// every re-scan after a Restore. Comparing it against the parser's consumed
// token count measures backtracking overhead.
func (l *Lexer) TokensScanned() int { return l.scanned }

func (l *Lexer) pos() ast.Pos {
	return ast.Pos{Offset: l.off, Line: l.line, Column: l.col}
}

func (l *Lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekByteAt(i int) byte {
	if l.off+i >= len(l.src) {
		return 0
	}
	return l.src[l.off+i]
}

func (l *Lexer) peekRune() (rune, int) {
	if l.off >= len(l.src) {
		return 0, 0
	}
	return utf8.DecodeRuneInString(l.src[l.off:])
}

// advance consumes n bytes that are known to contain no line terminators.
func (l *Lexer) advance(n int) {
	l.off += n
	l.col += n
}

// advanceRune consumes one rune, tracking line/column across terminators.
//
//jslint:hotpath
func (l *Lexer) advanceRune() rune {
	r, size := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += size
	if isLineTerminator(r) {
		// Treat \r\n as a single terminator.
		if r == '\r' && l.peekByte() == '\n' {
			l.off++
		}
		l.line++
		l.col = 0
	} else {
		l.col += size
	}
	return r
}

func isLineTerminator(r rune) bool {
	return r == '\n' || r == '\r' || r == '\u2028' || r == '\u2029'
}

func isWhitespace(r rune) bool {
	switch r {
	case ' ', '\t', '\v', '\f', '\u00a0', '\ufeff':
		return true
	}
	return r != '\n' && r != '\r' && !isLineTerminator(r) && unicode.IsSpace(r)
}

func isIdentStart(r rune) bool {
	return r == '$' || r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '$' || r == '_' || r == '\u200c' || r == '\u200d' ||
		unicode.IsLetter(r) || unicode.IsDigit(r) ||
		unicode.Is(unicode.Mn, r) || unicode.Is(unicode.Mc, r) || unicode.Is(unicode.Pc, r)
}

// identStartByte and identPartByte answer isIdentStart/isIdentPart for
// ASCII in one table load, keeping the identifier fast loop branch-free.
var identStartByte, identPartByte = func() (start, part [128]bool) {
	for b := 0; b < 128; b++ {
		c := byte(b)
		s := c == '$' || c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
		start[b] = s
		part[b] = s || c >= '0' && c <= '9'
	}
	return
}()

// skipTrivia consumes whitespace and comments, recording whether a line
// terminator was crossed. It runs once per token over every byte of trivia,
// which makes it the lexer's inner loop: the common ASCII whitespace bytes
// are dispatched without a rune decode, and nothing here may allocate beyond
// the amortized growth of the comments slice (and the error construction on
// the unterminated-comment path, which aborts the scan anyway).
//
//jslint:hotpath
func (l *Lexer) skipTrivia() error {
	l.newlineBefore = false
	for l.off < len(l.src) {
		b := l.src[l.off]
		switch b {
		case ' ', '\t', '\v', '\f':
			l.off++
			l.col++
			continue
		case '\n':
			l.off++
			l.line++
			l.col = 0
			l.newlineBefore = true
			continue
		case '\r':
			l.off++
			if l.off < len(l.src) && l.src[l.off] == '\n' {
				l.off++
			}
			l.line++
			l.col = 0
			l.newlineBefore = true
			continue
		}
		if b < utf8.RuneSelf {
			switch {
			case b == '/' && l.peekByteAt(1) == '/':
				start := l.pos()
				l.advance(2)
				textStart := l.off
				for l.off < len(l.src) {
					r2, _ := l.peekRune()
					if isLineTerminator(r2) {
						break
					}
					l.advanceRune()
				}
				l.comments = append(l.comments, Comment{
					Span: ast.Span{Start: start, End: l.pos()},
					Text: l.src[textStart:l.off],
				})
			case b == '<' && strings.HasPrefix(l.src[l.off:], "<!--"):
				// HTML open comment: browsers treat the rest of the line as a
				// comment (sloppy-mode web reality).
				start := l.pos()
				l.advance(4)
				textStart := l.off
				for l.off < len(l.src) {
					r2, _ := l.peekRune()
					if isLineTerminator(r2) {
						break
					}
					l.advanceRune()
				}
				l.comments = append(l.comments, Comment{
					Span: ast.Span{Start: start, End: l.pos()},
					Text: l.src[textStart:l.off],
				})
			case b == '-' && l.newlineBefore && strings.HasPrefix(l.src[l.off:], "-->"):
				// HTML close comment at line start: rest of line is a comment.
				start := l.pos()
				l.advance(3)
				textStart := l.off
				for l.off < len(l.src) {
					r2, _ := l.peekRune()
					if isLineTerminator(r2) {
						break
					}
					l.advanceRune()
				}
				l.comments = append(l.comments, Comment{
					Span: ast.Span{Start: start, End: l.pos()},
					Text: l.src[textStart:l.off],
				})
			case b == '/' && l.peekByteAt(1) == '*':
				start := l.pos()
				l.advance(2)
				textStart := l.off
				closed := false
				for l.off < len(l.src) {
					if l.peekByte() == '*' && l.peekByteAt(1) == '/' {
						closed = true
						break
					}
					r2 := l.advanceRune()
					if isLineTerminator(r2) {
						l.newlineBefore = true
					}
				}
				if !closed {
					return &Error{Pos: start, Msg: "unterminated block comment"} //jslint:ignore hotpath-noalloc error path terminates the scan
				}
				text := l.src[textStart:l.off]
				l.advance(2)
				l.comments = append(l.comments, Comment{
					Span:  ast.Span{Start: start, End: l.pos()},
					Text:  text,
					Block: true,
				})
			default:
				return nil
			}
			continue
		}
		// Non-ASCII trivia (NBSP, BOM, U+2028/U+2029, exotic spaces) is rare
		// enough to pay for a rune decode.
		r, _ := l.peekRune()
		switch {
		case isLineTerminator(r):
			l.newlineBefore = true
			l.advanceRune()
		case isWhitespace(r):
			l.advanceRune()
		default:
			return nil
		}
	}
	return nil
}

// State is an opaque snapshot of lexer progress, used by the parser for
// bounded backtracking (e.g. arrow-function cover grammar).
type State struct {
	off, line, col int
	prevKind       Kind
	prevWord       string
	hasPrev        bool
	numComments    int
}

// Save captures the current lexer state.
func (l *Lexer) Save() State {
	return State{
		off: l.off, line: l.line, col: l.col,
		prevKind: l.prevKind, prevWord: l.prevWord, hasPrev: l.hasPrev,
		numComments: len(l.comments),
	}
}

// Restore rewinds the lexer to a previously saved state.
func (l *Lexer) Restore(s State) {
	l.off, l.line, l.col = s.off, s.line, s.col
	l.prevKind, l.prevWord, l.hasPrev = s.prevKind, s.prevWord, s.hasPrev
	l.comments = l.comments[:s.numComments]
}

// Next returns the next token. At end of input it returns an EOF token.
func (l *Lexer) Next() (Token, error) {
	var tok Token
	err := l.NextInto(&tok)
	return tok, err
}

// NextInto scans the next token into *tok, the copy-free form of Next: the
// parser hands in its own current-token slot and every scanner writes the
// fields in place, so a ~130-byte Token is never passed through three
// return frames per token. On error *tok is the zero Token. Dispatch is on
// the lead byte; only non-ASCII lead bytes decode a rune.
//
//jslint:hotpath
func (l *Lexer) NextInto(tok *Token) error {
	if err := l.skipTrivia(); err != nil {
		*tok = Token{}
		return err
	}
	start := l.pos()
	if l.off >= len(l.src) {
		*tok = Token{Kind: EOF, Start: start, End: start, NewlineBefore: l.newlineBefore}
		return nil
	}

	b := l.src[l.off]
	var err error
	switch {
	case b < utf8.RuneSelf && identStartByte[b] || b == '\\':
		err = l.scanIdentOrKeyword(start, tok)
	case b >= '0' && b <= '9':
		err = l.scanNumber(start, tok)
	case b == '.' && l.peekByteAt(1) >= '0' && l.peekByteAt(1) <= '9':
		err = l.scanNumber(start, tok)
	case b == '"' || b == '\'':
		err = l.scanString(start, b, tok)
	case b == '`':
		err = l.scanTemplate(start, true, tok)
	case b == '/' && l.regexAllowed():
		err = l.scanRegex(start, tok)
	case b == '#':
		err = l.scanPrivateIdent(start, tok)
	case b >= utf8.RuneSelf:
		r, _ := l.peekRune()
		if isIdentStart(r) {
			err = l.scanIdentOrKeyword(start, tok)
		} else {
			err = l.scanPunct(start, tok)
		}
	default:
		err = l.scanPunct(start, tok)
	}
	if err != nil {
		*tok = Token{}
		return err
	}
	tok.NewlineBefore = l.newlineBefore
	l.rememberPrev(tok)
	l.scanned++
	return nil
}

// rememberPrev records the pieces of tok that regexAllowed consults: the
// kind, plus the keyword name or punctuator text.
//
//jslint:hotpath
func (l *Lexer) rememberPrev(tok *Token) {
	l.prevKind = tok.Kind
	switch tok.Kind {
	case Keyword:
		l.prevWord = tok.StringValue
	case Punct:
		l.prevWord = tok.Lexeme
	default:
		l.prevWord = ""
	}
	l.hasPrev = true
}

// regexAllowed applies the standard previous-token heuristic for deciding
// whether a leading '/' starts a regular expression or a division operator.
// It runs on every '/' the lexer meets, so it must stay branch-only.
//
//jslint:hotpath
func (l *Lexer) regexAllowed() bool {
	if !l.hasPrev {
		return true
	}
	switch l.prevKind {
	case Ident, Number, String, Regex, NoSubstTemplate, TemplateTail, PrivateIdent:
		return false
	case Keyword:
		switch l.prevWord {
		case "this", "super", "true", "false", "null":
			return false
		}
		return true
	case Punct:
		switch l.prevWord {
		case ")", "]", "}", "++", "--":
			return false
		}
		return true
	default:
		return true
	}
}

// scanIdentOrKeyword scans an identifier or keyword. The fast path is a
// byte loop over ASCII identifier characters that slices both Lexeme and
// StringValue out of the source buffer; a '\' diverts to scanIdentSlow,
// which is the only way an identifier token ever owns memory.
//
//jslint:hotpath
func (l *Lexer) scanIdentOrKeyword(start ast.Pos, tok *Token) error {
	startOff := l.off
	for l.off < len(l.src) {
		b := l.src[l.off]
		if b < utf8.RuneSelf {
			if b == '\\' {
				return l.scanIdentSlow(start, startOff, tok)
			}
			if l.off == startOff {
				if !identStartByte[b] {
					break
				}
			} else if !identPartByte[b] {
				break
			}
			l.off++
			l.col++
			continue
		}
		r, size := utf8.DecodeRuneInString(l.src[l.off:])
		if l.off == startOff && !isIdentStart(r) || l.off > startOff && !isIdentPart(r) {
			break
		}
		l.off += size
		l.col += size
	}
	name := l.src[startOff:l.off]
	if name == "" {
		return &Error{Pos: start, Msg: "expected identifier"} //jslint:ignore hotpath-noalloc error path terminates the scan
	}
	kind := Ident
	if isKeywordName(name) {
		kind = Keyword
	}
	tok.Kind = kind
	tok.Lexeme = name
	tok.StringValue = name
	tok.Start = start
	tok.End = l.pos()
	tok.NumberValue = 0
	tok.RegexPattern = ""
	tok.RegexFlags = ""
	return nil
}

// scanIdentSlow finishes an identifier that contains at least one unicode
// escape. The clean prefix already consumed by the fast path seeds the
// builder; Lexeme stays the raw source slice while StringValue owns the
// decoded name.
func (l *Lexer) scanIdentSlow(start ast.Pos, startOff int, tok *Token) error {
	var sb strings.Builder
	sb.WriteString(l.src[startOff:l.off])
	for l.off < len(l.src) {
		r, _ := l.peekRune()
		if r == '\\' {
			// Unicode escape in identifier: \uXXXX or \u{...}.
			if l.peekByteAt(1) != 'u' {
				return &Error{Pos: l.pos(), Msg: "bad escape in identifier"}
			}
			l.advance(2)
			cp, err := l.scanUnicodeEscape()
			if err != nil {
				return err
			}
			// The escaped codepoint must itself be a legal identifier
			// character.
			if sb.Len() == 0 && !isIdentStart(cp) || sb.Len() > 0 && !isIdentPart(cp) {
				return &Error{Pos: start, Msg: fmt.Sprintf("escape %q is not a valid identifier character", cp)}
			}
			sb.WriteRune(cp)
			continue
		}
		if sb.Len() == 0 && !isIdentStart(r) {
			break
		}
		if sb.Len() > 0 && !isIdentPart(r) {
			break
		}
		sb.WriteRune(r)
		l.advanceRune()
	}
	name := sb.String()
	if name == "" {
		return &Error{Pos: start, Msg: "expected identifier"}
	}
	kind := Ident
	if isKeywordName(name) {
		kind = Keyword
	}
	*tok = Token{Kind: kind, Lexeme: l.src[startOff:l.off], StringValue: name, Start: start, End: l.pos()}
	return nil
}

// scanPrivateIdent scans #name. Lexeme is the raw source slice including
// the '#'; StringValue is "#" + the decoded name. For the escape-free case
// both are the same slice of the source buffer — the old per-token
// "#"+lexeme concatenation only survives on the rare escaped path.
//
//jslint:hotpath
func (l *Lexer) scanPrivateIdent(start ast.Pos, tok *Token) error {
	l.advance(1) // '#'
	if err := l.scanIdentOrKeyword(l.pos(), tok); err != nil {
		return err
	}
	tok.Kind = PrivateIdent
	tok.Lexeme = l.src[start.Offset:l.off]
	if len(tok.StringValue) == len(tok.Lexeme)-1 {
		// Escape-free: the decoded name is the raw name, so the decoded
		// private name is the raw lexeme.
		tok.StringValue = tok.Lexeme
	} else {
		tok.StringValue = "#" + tok.StringValue //jslint:ignore hotpath-noalloc escaped private names are rare and need owned decoded memory
	}
	tok.Start = start
	return nil
}

// scanUnicodeEscape parses the part after \u: either XXXX or {X...}.
func (l *Lexer) scanUnicodeEscape() (rune, error) {
	if l.peekByte() == '{' {
		l.advance(1)
		startOff := l.off
		for l.off < len(l.src) && l.peekByte() != '}' {
			l.advance(1)
		}
		if l.off >= len(l.src) {
			return 0, &Error{Pos: l.pos(), Msg: "unterminated unicode escape"}
		}
		v, err := strconv.ParseUint(l.src[startOff:l.off], 16, 32)
		if err != nil {
			return 0, &Error{Pos: l.pos(), Msg: "bad unicode escape"}
		}
		l.advance(1) // '}'
		return rune(v), nil
	}
	if l.off+4 > len(l.src) {
		return 0, &Error{Pos: l.pos(), Msg: "truncated unicode escape"}
	}
	v, err := strconv.ParseUint(l.src[l.off:l.off+4], 16, 32)
	if err != nil {
		return 0, &Error{Pos: l.pos(), Msg: "bad unicode escape"}
	}
	l.advance(4)
	return rune(v), nil
}

func isHexDigit(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'a' && b <= 'f' || b >= 'A' && b <= 'F'
}

func isDecimalDigit(b byte) bool { return b >= '0' && b <= '9' }

func isOctalDigit(b byte) bool { return b >= '0' && b <= '7' }

func isBinaryDigit(b byte) bool { return b == '0' || b == '1' }

// digits consumes a run of digits accepted by pred, allowing numeric
// separators between digits. A method rather than a closure so scanNumber
// does not allocate a capture per number token.
//
//jslint:hotpath
func (l *Lexer) digits(pred func(byte) bool) {
	for l.off < len(l.src) {
		b := l.src[l.off]
		if b == '_' && l.off+1 < len(l.src) && pred(l.src[l.off+1]) {
			l.off++
			l.col++
			continue
		}
		if !pred(b) {
			break
		}
		l.off++
		l.col++
	}
}

//jslint:hotpath
func (l *Lexer) scanNumber(start ast.Pos, tok *Token) error {
	startOff := l.off

	if l.peekByte() == '0' && l.off+1 < len(l.src) {
		switch l.src[l.off+1] {
		case 'x', 'X':
			l.advance(2)
			l.digits(isHexDigit)
			return l.finishNumber(start, startOff, 16, tok)
		case 'o', 'O':
			l.advance(2)
			l.digits(isOctalDigit)
			return l.finishNumber(start, startOff, 8, tok)
		case 'b', 'B':
			l.advance(2)
			l.digits(isBinaryDigit)
			return l.finishNumber(start, startOff, 2, tok)
		}
		// Legacy octal: 0 followed by octal digits only.
		if b := l.src[l.off+1]; b >= '0' && b <= '7' {
			probe := l.off + 1
			legacy := true
			for probe < len(l.src) && isDecimalDigit(l.src[probe]) {
				if l.src[probe] > '7' {
					legacy = false
				}
				probe++
			}
			if probe < len(l.src) && (l.src[probe] == '.' || l.src[probe] == 'e' || l.src[probe] == 'E') {
				legacy = false
			}
			if legacy {
				l.advance(1)
				l.digits(isOctalDigit)
				return l.finishNumber(start, startOff, 8, tok)
			}
		}
	}

	l.digits(isDecimalDigit)
	if l.peekByte() == '.' {
		l.advance(1)
		l.digits(isDecimalDigit)
	}
	if b := l.peekByte(); b == 'e' || b == 'E' {
		probe := l.off + 1
		if probe < len(l.src) && (l.src[probe] == '+' || l.src[probe] == '-') {
			probe++
		}
		if probe < len(l.src) && isDecimalDigit(l.src[probe]) {
			l.advance(probe - l.off)
			l.digits(isDecimalDigit)
		}
	}
	// BigInt suffix: accept and ignore the 'n'.
	if l.peekByte() == 'n' {
		l.advance(1)
	}
	return l.finishNumber(start, startOff, 10, tok)
}

// finishNumber parses the numeric value. Lexeme is always the raw source
// slice; the ReplaceAll/TrimSuffix cleanup returns the input unchanged (no
// copy) for the common separator-free literal.
//
//jslint:hotpath
func (l *Lexer) finishNumber(start ast.Pos, startOff, base int, tok *Token) error {
	raw := l.src[startOff:l.off]
	clean := strings.ReplaceAll(strings.TrimSuffix(raw, "n"), "_", "")
	var v float64
	var err error
	switch base {
	case 10:
		v, err = strconv.ParseFloat(clean, 64)
	default:
		var u uint64
		prefix := clean
		if len(prefix) >= 2 && prefix[0] == '0' && !isDecimalDigit(prefix[1]) {
			prefix = prefix[2:]
		} else if base == 8 {
			prefix = strings.TrimPrefix(prefix, "0")
		}
		if prefix == "" {
			prefix = "0"
		}
		u, err = strconv.ParseUint(prefix, base, 64)
		v = float64(u)
	}
	if err != nil {
		return &Error{Pos: start, Msg: fmt.Sprintf("bad number literal %q", raw)} //jslint:ignore hotpath-noalloc error path terminates the scan
	}
	*tok = Token{Kind: Number, Lexeme: raw, NumberValue: v, Start: start, End: l.pos()}
	return nil
}

// scanString scans a quoted string literal. The fast path is a byte loop
// that, on an escape-free literal, slices StringValue out of the source
// between the quotes. It diverts to scanStringSlow on a backslash and on
// the rare inputs whose decoded value cannot alias the raw bytes: invalid
// UTF-8 (decodes to U+FFFD) and U+2028/U+2029 (legal here, but they
// advance the line counter).
//
//jslint:hotpath
func (l *Lexer) scanString(start ast.Pos, quote byte, tok *Token) error {
	startOff := l.off
	l.off++ // opening quote
	l.col++
	for l.off < len(l.src) {
		b := l.src[l.off]
		switch {
		case b == quote:
			l.off++
			l.col++
			raw := l.src[startOff:l.off]
			*tok = Token{
				Kind:        String,
				Lexeme:      raw,
				StringValue: raw[1 : len(raw)-1],
				Start:       start,
				End:         l.pos(),
			}
			return nil
		case b == '\\':
			return l.scanStringSlow(start, startOff, quote, tok)
		case b == '\n' || b == '\r':
			return &Error{Pos: l.pos(), Msg: "newline in string literal"} //jslint:ignore hotpath-noalloc error path terminates the scan
		case b < utf8.RuneSelf:
			l.off++
			l.col++
		default:
			r, size := utf8.DecodeRuneInString(l.src[l.off:])
			if r == utf8.RuneError && size == 1 || r == '\u2028' || r == '\u2029' {
				return l.scanStringSlow(start, startOff, quote, tok)
			}
			l.off += size
			l.col += size
		}
	}
	return &Error{Pos: start, Msg: "unterminated string literal"} //jslint:ignore hotpath-noalloc error path terminates the scan
}

// scanStringSlow finishes a string literal whose decoded value differs
// from its raw bytes. The clean prefix already consumed by the fast path
// seeds the builder.
func (l *Lexer) scanStringSlow(start ast.Pos, startOff int, quote byte, tok *Token) error {
	var sb strings.Builder
	sb.WriteString(l.src[startOff+1 : l.off])
	for {
		if l.off >= len(l.src) {
			return &Error{Pos: start, Msg: "unterminated string literal"}
		}
		b := l.peekByte()
		if b == quote {
			l.advance(1)
			break
		}
		if b == '\\' {
			l.advance(1)
			if err := l.scanEscape(&sb); err != nil {
				return err
			}
			continue
		}
		r, _ := l.peekRune()
		if r == '\n' || r == '\r' {
			return &Error{Pos: l.pos(), Msg: "newline in string literal"}
		}
		sb.WriteRune(r)
		l.advanceRune()
	}
	*tok = Token{
		Kind:        String,
		Lexeme:      l.src[startOff:l.off],
		StringValue: sb.String(),
		Start:       start,
		End:         l.pos(),
	}
	return nil
}

// scanEscape decodes one escape sequence after the backslash.
func (l *Lexer) scanEscape(sb *strings.Builder) error {
	if l.off >= len(l.src) {
		return &Error{Pos: l.pos(), Msg: "truncated escape sequence"}
	}
	r, _ := l.peekRune()
	if isLineTerminator(r) {
		// Line continuation: consumed, contributes nothing.
		l.advanceRune()
		return nil
	}
	switch r {
	case 'n':
		sb.WriteByte('\n')
	case 't':
		sb.WriteByte('\t')
	case 'r':
		sb.WriteByte('\r')
	case 'b':
		sb.WriteByte('\b')
	case 'f':
		sb.WriteByte('\f')
	case 'v':
		sb.WriteByte('\v')
	case '0':
		// \0 not followed by a digit is NUL; otherwise legacy octal.
		if !isDecimalDigit(l.peekByteAt(1)) {
			sb.WriteByte(0)
			l.advance(1)
			return nil
		}
		return l.scanOctalEscape(sb)
	case '1', '2', '3', '4', '5', '6', '7':
		return l.scanOctalEscape(sb)
	case 'x':
		l.advance(1)
		if l.off+2 > len(l.src) || !isHexDigit(l.src[l.off]) || !isHexDigit(l.src[l.off+1]) {
			return &Error{Pos: l.pos(), Msg: "bad hex escape"}
		}
		v, _ := strconv.ParseUint(l.src[l.off:l.off+2], 16, 16)
		sb.WriteRune(rune(v))
		l.advance(2)
		return nil
	case 'u':
		l.advance(1)
		cp, err := l.scanUnicodeEscape()
		if err != nil {
			return err
		}
		sb.WriteRune(cp)
		return nil
	default:
		sb.WriteRune(r)
	}
	l.advanceRune()
	return nil
}

func (l *Lexer) scanOctalEscape(sb *strings.Builder) error {
	v := 0
	for i := 0; i < 3 && l.off < len(l.src); i++ {
		b := l.peekByte()
		if b < '0' || b > '7' {
			break
		}
		next := v*8 + int(b-'0')
		if next > 255 {
			break
		}
		v = next
		l.advance(1)
	}
	sb.WriteRune(rune(v))
	return nil
}

// scanTemplate scans a template chunk. When head is true the scanner starts
// at a backtick; otherwise it starts at the '}' that closes a substitution.
// The fast path slices the cooked value out of the source between the
// delimiters; it diverts to scanTemplateSlow on a backslash and on the
// inputs where cooked != raw or line tracking differs from a byte count:
// '\r' (normalized), invalid UTF-8, and U+2028/U+2029.
//
//jslint:hotpath
func (l *Lexer) scanTemplate(start ast.Pos, head bool, tok *Token) error {
	startOff := l.off
	l.off++ // '`' or '}'
	l.col++
	for l.off < len(l.src) {
		b := l.src[l.off]
		switch {
		case b == '`':
			l.off++
			l.col++
			kind := TemplateTail
			if head {
				kind = NoSubstTemplate
			}
			raw := l.src[startOff:l.off]
			*tok = Token{
				Kind:        kind,
				Lexeme:      raw,
				StringValue: raw[1 : len(raw)-1],
				Start:       start,
				End:         l.pos(),
			}
			return nil
		case b == '$' && l.off+1 < len(l.src) && l.src[l.off+1] == '{':
			l.off += 2
			l.col += 2
			kind := TemplateMiddle
			if head {
				kind = TemplateHead
			}
			raw := l.src[startOff:l.off]
			*tok = Token{
				Kind:        kind,
				Lexeme:      raw,
				StringValue: raw[1 : len(raw)-2],
				Start:       start,
				End:         l.pos(),
			}
			return nil
		case b == '\\' || b == '\r':
			return l.scanTemplateSlow(start, startOff, head, tok)
		case b == '\n':
			l.off++
			l.line++
			l.col = 0
		case b < utf8.RuneSelf:
			l.off++
			l.col++
		default:
			r, size := utf8.DecodeRuneInString(l.src[l.off:])
			if r == utf8.RuneError && size == 1 || r == '\u2028' || r == '\u2029' {
				return l.scanTemplateSlow(start, startOff, head, tok)
			}
			l.off += size
			l.col += size
		}
	}
	return &Error{Pos: start, Msg: "unterminated template literal"} //jslint:ignore hotpath-noalloc error path terminates the scan
}

// scanTemplateSlow finishes a template chunk whose cooked value differs
// from its raw bytes (escapes, '\r' normalization, invalid UTF-8). The
// clean prefix already consumed by the fast path seeds the builder.
func (l *Lexer) scanTemplateSlow(start ast.Pos, startOff int, head bool, tok *Token) error {
	var sb strings.Builder
	sb.WriteString(l.src[startOff+1 : l.off])
	for {
		if l.off >= len(l.src) {
			return &Error{Pos: start, Msg: "unterminated template literal"}
		}
		b := l.peekByte()
		if b == '`' {
			l.advance(1)
			kind := TemplateTail
			if head {
				kind = NoSubstTemplate
			}
			*tok = Token{
				Kind:        kind,
				Lexeme:      l.src[startOff:l.off],
				StringValue: sb.String(),
				Start:       start,
				End:         l.pos(),
			}
			return nil
		}
		if b == '$' && l.peekByteAt(1) == '{' {
			l.advance(2)
			kind := TemplateMiddle
			if head {
				kind = TemplateHead
			}
			*tok = Token{
				Kind:        kind,
				Lexeme:      l.src[startOff:l.off],
				StringValue: sb.String(),
				Start:       start,
				End:         l.pos(),
			}
			return nil
		}
		if b == '\\' {
			l.advance(1)
			if err := l.scanEscape(&sb); err != nil {
				return err
			}
			continue
		}
		r := l.advanceRune()
		sb.WriteRune(r)
	}
}

// RescanTemplateContinue is called by the parser when, inside a template
// substitution, it has consumed a '}' token that actually continues the
// template. The lexer rewinds to the '}' and scans a TemplateMiddle or
// TemplateTail token from there.
func (l *Lexer) RescanTemplateContinue(closeBrace Token) (Token, error) {
	l.off = closeBrace.Start.Offset
	l.line = closeBrace.Start.Line
	l.col = closeBrace.Start.Column
	var tok Token
	if err := l.scanTemplate(closeBrace.Start, false, &tok); err != nil {
		return Token{}, err
	}
	tok.NewlineBefore = closeBrace.NewlineBefore
	l.rememberPrev(&tok)
	return tok, nil
}

func (l *Lexer) scanRegex(start ast.Pos, tok *Token) error {
	startOff := l.off
	l.advance(1) // '/'
	inClass := false
	for {
		if l.off >= len(l.src) {
			return &Error{Pos: start, Msg: "unterminated regular expression"}
		}
		r, _ := l.peekRune()
		if isLineTerminator(r) {
			return &Error{Pos: l.pos(), Msg: "newline in regular expression"}
		}
		if r == '\\' {
			l.advance(1)
			if l.off < len(l.src) {
				l.advanceRune()
			}
			continue
		}
		switch r {
		case '[':
			inClass = true
		case ']':
			inClass = false
		case '/':
			if !inClass {
				patEnd := l.off
				l.advance(1)
				flagsStart := l.off
				for l.off < len(l.src) {
					fr, _ := l.peekRune()
					if !isIdentPart(fr) {
						break
					}
					l.advanceRune()
				}
				*tok = Token{
					Kind:         Regex,
					Lexeme:       l.src[startOff:l.off],
					RegexPattern: l.src[startOff+1 : patEnd],
					RegexFlags:   l.src[flagsStart:l.off],
					Start:        start,
					End:          l.pos(),
				}
				return nil
			}
		}
		l.advanceRune()
	}
}

// punctsByFirst groups multi-character punctuators by first byte, longest
// first, so scanPunct only tests candidates sharing the lead byte. An array
// indexed by the byte keeps the per-token dispatch hash-free.
var punctsByFirst = [utf8.RuneSelf][]string{
	'>': {">>>=", ">>>", ">>=", ">=", ">>", ">"},
	'.': {"...", "."},
	'=': {"===", "=>", "==", "="},
	'!': {"!==", "!=", "!"},
	'*': {"**=", "*=", "**", "*"},
	'<': {"<<=", "<=", "<<", "<"},
	'&': {"&&=", "&&", "&=", "&"},
	'|': {"||=", "||", "|=", "|"},
	'?': {"??=", "?.", "??", "?"},
	'+': {"++", "+=", "+"},
	'-': {"--", "-=", "-"},
	'/': {"/=", "/"},
	'%': {"%=", "%"},
	'^': {"^=", "^"},
	'{': {"{"}, '}': {"}"}, '(': {"("}, ')': {")"}, '[': {"["}, ']': {"]"},
	';': {";"}, ',': {","}, '~': {"~"}, ':': {":"}, '@': {"@"},
}

//jslint:hotpath
func (l *Lexer) scanPunct(start ast.Pos, tok *Token) error {
	rest := l.src[l.off:]
	if len(rest) > 0 && rest[0] < utf8.RuneSelf {
		for _, p := range punctsByFirst[rest[0]] {
			if strings.HasPrefix(rest, p) {
				// `?.` followed by a digit is a ternary, e.g. `a?.5:b`.
				if p == "?." && len(rest) > 2 && isDecimalDigit(rest[2]) {
					continue
				}
				l.advance(len(p))
				// Explicit field stores: a Token{...} literal assignment
				// builds a temporary and duffcopies it into *tok, which
				// shows up on profiles for punct-heavy minified input.
				tok.Kind = Punct
				tok.Lexeme = p
				tok.Start = start
				tok.End = l.pos()
				tok.StringValue = ""
				tok.NumberValue = 0
				tok.RegexPattern = ""
				tok.RegexFlags = ""
				return nil
			}
		}
	}
	r, _ := l.peekRune()
	return &Error{Pos: start, Msg: fmt.Sprintf("unexpected character %q", r)} //jslint:ignore hotpath-noalloc error path terminates the scan
}
