package lexer

import (
	"strings"
	"testing"
	"testing/quick"
)

// scanAll tokenizes src fully, failing the test on error.
func scanAll(t *testing.T, src string) []Token {
	t.Helper()
	l := New(src)
	var toks []Token
	for {
		tok, err := l.Next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.Kind == EOF {
			return toks
		}
		toks = append(toks, tok)
	}
}

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	toks := scanAll(t, `var x = 42;`)
	want := []Kind{Keyword, Ident, Punct, Number, Punct}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[3].NumberValue != 42 {
		t.Fatalf("number value = %v", toks[3].NumberValue)
	}
}

func TestNumberForms(t *testing.T) {
	tests := map[string]float64{
		"0":       0,
		"123":     123,
		"1.5":     1.5,
		".5":      0.5,
		"1e3":     1000,
		"1.5e-2":  0.015,
		"0x1f":    31,
		"0X1F":    31,
		"0b101":   5,
		"0o17":    15,
		"017":     15, // legacy octal
		"089":     89, // decimal despite leading zero
		"1_000":   1000,
		"123n":    123, // BigInt suffix accepted
		"0xFF_FF": 65535,
	}
	for src, want := range tests {
		toks := scanAll(t, src)
		if len(toks) != 1 || toks[0].Kind != Number {
			t.Fatalf("%q: tokens %v", src, kinds(toks))
		}
		if toks[0].NumberValue != want {
			t.Fatalf("%q = %v, want %v", src, toks[0].NumberValue, want)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	tests := map[string]string{
		`"plain"`:          "plain",
		`'single'`:         "single",
		`"a\nb\tc"`:        "a\nb\tc",
		`"\x41\x42"`:       "AB",
		`"A"`:              "A",
		`"\u{1F600}"`:      "😀",
		`"\0"`:             "\x00",
		`"\101"`:           "A", // octal
		`"quote\"inside"`:  `quote"inside`,
		`"back\\slash"`:    `back\slash`,
		"\"line\\\ncont\"": "linecont", // line continuation
	}
	for src, want := range tests {
		toks := scanAll(t, src)
		if len(toks) != 1 || toks[0].Kind != String {
			t.Fatalf("%q: tokens %v", src, kinds(toks))
		}
		if toks[0].StringValue != want {
			t.Fatalf("%q = %q, want %q", src, toks[0].StringValue, want)
		}
	}
}

func TestUnterminatedInputs(t *testing.T) {
	for _, src := range []string{`"abc`, "'abc", "`abc", "/* abc", `/abc`} {
		l := New(src)
		var err error
		for {
			var tok Token
			tok, err = l.Next()
			if err != nil || tok.Kind == EOF {
				break
			}
		}
		if err == nil {
			t.Fatalf("%q: expected error", src)
		}
	}
}

func TestRegexVsDivision(t *testing.T) {
	// After an identifier, '/' is division.
	toks := scanAll(t, "a / b")
	if toks[1].Kind != Punct || toks[1].Lexeme != "/" {
		t.Fatalf("a / b: %v", kinds(toks))
	}
	// After '=', '/' starts a regex.
	toks = scanAll(t, "x = /ab+c/gi")
	last := toks[len(toks)-1]
	if last.Kind != Regex {
		t.Fatalf("x = /re/: %v", kinds(toks))
	}
	if last.RegexPattern != "ab+c" || last.RegexFlags != "gi" {
		t.Fatalf("pattern %q flags %q", last.RegexPattern, last.RegexFlags)
	}
	// Regex with a slash inside a character class.
	toks = scanAll(t, `x = /[/]/`)
	if toks[len(toks)-1].Kind != Regex {
		t.Fatalf("char class: %v", kinds(toks))
	}
	// After ')', division.
	toks = scanAll(t, "(a) / 2")
	sawDiv := false
	for _, tok := range toks {
		if tok.IsPunct("/") {
			sawDiv = true
		}
	}
	if !sawDiv {
		t.Fatal("(a) / 2 must lex '/' as division")
	}
}

func TestTemplates(t *testing.T) {
	toks := scanAll(t, "`plain`")
	if len(toks) != 1 || toks[0].Kind != NoSubstTemplate {
		t.Fatalf("plain template: %v", kinds(toks))
	}
	if toks[0].StringValue != "plain" {
		t.Fatalf("cooked = %q", toks[0].StringValue)
	}
	// Head is produced; the parser drives the continuation.
	l := New("`a${x}b`")
	tok, err := l.Next()
	if err != nil || tok.Kind != TemplateHead {
		t.Fatalf("head: %v %v", tok.Kind, err)
	}
	tok, err = l.Next() // x
	if err != nil || tok.Kind != Ident {
		t.Fatalf("ident: %v %v", tok.Kind, err)
	}
	tok, err = l.Next() // }
	if err != nil || !tok.IsPunct("}") {
		t.Fatalf("close: %v %v", tok.Kind, err)
	}
	tok, err = l.RescanTemplateContinue(tok)
	if err != nil || tok.Kind != TemplateTail {
		t.Fatalf("tail: %v %v", tok.Kind, err)
	}
	if tok.StringValue != "b" {
		t.Fatalf("tail cooked = %q", tok.StringValue)
	}
}

func TestCommentsCollected(t *testing.T) {
	l := New("// line\nvar x; /* block */ var y;")
	for {
		tok, err := l.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == EOF {
			break
		}
	}
	comments := l.Comments()
	if len(comments) != 2 {
		t.Fatalf("comments = %d", len(comments))
	}
	if comments[0].Text != " line" || comments[0].Block {
		t.Fatalf("comment 0 = %+v", comments[0])
	}
	if comments[1].Text != " block " || !comments[1].Block {
		t.Fatalf("comment 1 = %+v", comments[1])
	}
}

func TestNewlineBefore(t *testing.T) {
	toks := scanAll(t, "a\nb c")
	if toks[0].NewlineBefore {
		t.Fatal("first token has no preceding newline")
	}
	if !toks[1].NewlineBefore {
		t.Fatal("b follows a newline")
	}
	if toks[2].NewlineBefore {
		t.Fatal("c follows a space only")
	}
}

func TestPunctuatorMaximalMunch(t *testing.T) {
	tests := map[string][]string{
		"a >>>= b":  {">>>="},
		"a >>> b":   {">>>"},
		"a === b":   {"==="},
		"a !== b":   {"!=="},
		"a ** b":    {"**"},
		"a ??= b":   {"??="},
		"a?.b":      {"?."},
		"...rest":   {"..."},
		"a => b":    {"=>"},
		"a && b":    {"&&"},
		"x++ + ++y": {"++", "+", "++"},
	}
	for src, wantPuncts := range tests {
		toks := scanAll(t, src)
		var got []string
		for _, tok := range toks {
			if tok.Kind == Punct {
				got = append(got, tok.Lexeme)
			}
		}
		if len(got) < len(wantPuncts) {
			t.Fatalf("%q: puncts %v", src, got)
		}
		for i, want := range wantPuncts {
			if got[i] != want {
				t.Fatalf("%q: punct %d = %q, want %q", src, i, got[i], want)
			}
		}
	}
}

func TestUnicodeIdentifiers(t *testing.T) {
	toks := scanAll(t, "var café = 1; var \\u0041bc = 2;")
	if toks[1].Lexeme != "café" || toks[1].StringValue != "café" {
		t.Fatalf("unicode ident = %q / %q", toks[1].Lexeme, toks[1].StringValue)
	}
	// Lexeme is the raw source slice; StringValue carries the decoded name.
	if toks[6].Lexeme != `\u0041bc` {
		t.Fatalf("escaped ident lexeme = %q", toks[6].Lexeme)
	}
	if toks[6].StringValue != "Abc" {
		t.Fatalf("escaped ident value = %q", toks[6].StringValue)
	}
}

func TestKeywordRecognition(t *testing.T) {
	toks := scanAll(t, "function typeof instanceof async of get")
	wantKinds := []Kind{Keyword, Keyword, Keyword, Ident, Ident, Ident}
	for i, want := range wantKinds {
		if toks[i].Kind != want {
			t.Fatalf("token %d (%q) = %v, want %v", i, toks[i].Lexeme, toks[i].Kind, want)
		}
	}
}

func TestPositions(t *testing.T) {
	toks := scanAll(t, "ab\n cd")
	if toks[0].Start.Line != 1 || toks[0].Start.Column != 0 {
		t.Fatalf("ab at %+v", toks[0].Start)
	}
	if toks[1].Start.Line != 2 || toks[1].Start.Column != 1 {
		t.Fatalf("cd at %+v", toks[1].Start)
	}
	if toks[1].Start.Offset != 4 {
		t.Fatalf("cd offset = %d", toks[1].Start.Offset)
	}
}

// TestLexerNeverPanicsProperty: arbitrary byte strings either tokenize or
// return an error — never panic, never loop forever (guarded by the token
// budget below).
func TestLexerNeverPanicsProperty(t *testing.T) {
	f := func(src string) bool {
		l := New(src)
		for i := 0; i < len(src)+16; i++ {
			tok, err := l.Next()
			if err != nil {
				return true
			}
			if tok.Kind == EOF {
				return true
			}
		}
		// More tokens than bytes plus slack means no progress.
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSaveRestore(t *testing.T) {
	l := New("a + b")
	if _, err := l.Next(); err != nil {
		t.Fatal(err)
	}
	st := l.Save()
	tok1, err := l.Next()
	if err != nil {
		t.Fatal(err)
	}
	l.Restore(st)
	tok2, err := l.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tok1.Lexeme != tok2.Lexeme || tok1.Start != tok2.Start {
		t.Fatalf("restore mismatch: %+v vs %+v", tok1, tok2)
	}
}

func TestHTMLComments(t *testing.T) {
	src := "<!-- hidden from old browsers\nvar x = 1;\n--> trailing\nvar y = 2;"
	toks := scanAll(t, src)
	var names []string
	for _, tok := range toks {
		names = append(names, tok.Lexeme)
	}
	// Both HTML comment lines vanish; the two declarations survive.
	want := []string{"var", "x", "=", "1", ";", "var", "y", "=", "2", ";"}
	if len(names) != len(want) {
		t.Fatalf("tokens = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, names[i], want[i])
		}
	}
	l := New(src)
	for {
		tok, err := l.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == EOF {
			break
		}
	}
	if len(l.Comments()) != 2 {
		t.Fatalf("comments = %d, want 2", len(l.Comments()))
	}
}

// TestZeroAllocScanning pins the zero-copy contract: once the comment
// buffer is warm, scanning escape-free source must not allocate at all —
// every Lexeme and StringValue is a slice of the source buffer.
func TestZeroAllocScanning(t *testing.T) {
	src := strings.Repeat("var abc = 'hello' + 12.5; // note\nfoo.bar(baz, `tpl`, #x); ", 40)
	l := New(src)
	drain := func() {
		l.Reset(src)
		for {
			tok, err := l.Next()
			if err != nil {
				t.Fatalf("lex: %v", err)
			}
			if tok.Kind == EOF {
				return
			}
		}
	}
	drain() // grow the comment buffer once
	if avg := testing.AllocsPerRun(100, drain); avg != 0 {
		t.Fatalf("escape-free scan allocates %v times per run, want 0", avg)
	}
}

// TestResetMatchesFreshLexer: a reused lexer must behave exactly like a new
// one — same tokens, same positions, same comments, no state leaking from
// the previous source.
func TestResetMatchesFreshLexer(t *testing.T) {
	first := "let leftovers = `a${1}b`; // poison\n"
	for _, src := range []string{
		"var x = 1; /* b */",
		"`plain` + 1",
		"a\nb",
		"x = /re/g;",
	} {
		reused := New(first)
		for {
			tok, err := reused.Next()
			if err != nil || tok.Kind == EOF {
				break
			}
		}
		reused.Reset(src)
		var got []Token
		for {
			tok, err := reused.Next()
			if err != nil {
				t.Fatalf("reused lex %q: %v", src, err)
			}
			if tok.Kind == EOF {
				break
			}
			got = append(got, tok)
		}
		want := scanAll(t, src)
		if len(got) != len(want) {
			t.Fatalf("%q: reused lexer produced %d tokens, fresh %d", src, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%q: token %d = %+v, fresh %+v", src, i, got[i], want[i])
			}
		}
		freshComments := func() []Comment {
			l := New(src)
			for {
				tok, err := l.Next()
				if err != nil || tok.Kind == EOF {
					break
				}
			}
			return l.Comments()
		}()
		if len(freshComments) != len(reused.Comments()) {
			t.Fatalf("%q: reused lexer has %d comments, fresh %d", src, len(reused.Comments()), len(freshComments))
		}
	}
}

// TestEscapeFreePrivateIdentSlices: an escape-free #name token keeps both
// its raw and decoded spellings as the same source slice.
func TestEscapeFreePrivateIdentSlices(t *testing.T) {
	toks := scanAll(t, "x.#abc")
	last := toks[len(toks)-1]
	if last.Kind != PrivateIdent {
		t.Fatalf("kinds = %v", kinds(toks))
	}
	if last.Lexeme != "#abc" || last.StringValue != "#abc" {
		t.Fatalf("private ident = %q / %q, want #abc for both", last.Lexeme, last.StringValue)
	}
}

func TestArrowNotHTMLComment(t *testing.T) {
	// `-->` mid-line is decrement + greater-than, not a comment.
	toks := scanAll(t, "x = a-- > b")
	var puncts []string
	for _, tok := range toks {
		if tok.Kind == Punct {
			puncts = append(puncts, tok.Lexeme)
		}
	}
	if len(puncts) != 3 || puncts[1] != "--" || puncts[2] != ">" {
		t.Fatalf("puncts = %v", puncts)
	}
}
