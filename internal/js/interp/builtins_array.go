package interp

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// relIndex resolves a possibly-negative relative index against length n,
// clamped to [0, n].
func relIndex(i, n int) int {
	if i < 0 {
		i += n
	}
	return clampIndex(i, n)
}

// setupArrayBuiltins installs Array.prototype and the Array constructor.
func (it *Interp) setupArrayBuiltins() {
	p := it.protos.arrayProto

	// def installs a method that requires an array/arguments receiver.
	def := func(name string, arity int, fn func(it *Interp, a *Object, args []Value) Value) {
		p.setProp(name, Value(it.makeNative(name, arity, func(it *Interp, this Value, args []Value) Value {
			a, ok := this.(*Object)
			if !ok || (a.class != "Array" && a.class != "Arguments") {
				it.throwError("TypeError", "receiver is not an array")
			}
			return fn(it, a, args)
		})))
	}
	callbackFn := func(it *Interp, args []Value) *Object {
		fn, ok := arg(args, 0).(*Object)
		if !ok || !fn.IsFunction() {
			it.throwError("TypeError", "value is not a function")
		}
		return fn
	}

	def("push", 1, func(it *Interp, a *Object, args []Value) Value {
		a.elems = append(a.elems, args...)
		it.charge(len(args))
		return float64(len(a.elems))
	})
	def("pop", 0, func(it *Interp, a *Object, args []Value) Value {
		if len(a.elems) == 0 {
			return undef
		}
		v := a.elems[len(a.elems)-1]
		a.elems = a.elems[:len(a.elems)-1]
		return v
	})
	def("shift", 0, func(it *Interp, a *Object, args []Value) Value {
		if len(a.elems) == 0 {
			return undef
		}
		v := a.elems[0]
		a.elems = append([]Value(nil), a.elems[1:]...)
		return v
	})
	def("unshift", 1, func(it *Interp, a *Object, args []Value) Value {
		a.elems = append(append([]Value(nil), args...), a.elems...)
		it.charge(len(args))
		return float64(len(a.elems))
	})
	def("slice", 2, func(it *Interp, a *Object, args []Value) Value {
		start, end := sliceRange(len(a.elems), args, it)
		out := newObject("Array", it.protos.arrayProto)
		out.elems = append([]Value(nil), a.elems[start:end]...)
		it.charge(len(out.elems) + 1)
		return Value(out)
	})
	def("splice", 2, func(it *Interp, a *Object, args []Value) Value {
		n := len(a.elems)
		start := int(it.toNumber(arg(args, 0)))
		if start < 0 {
			start += n
		}
		start = clampIndex(start, n)
		count := n - start
		if _, isU := arg(args, 1).(Undefined); !isU {
			count = int(it.toNumber(args[1]))
		}
		if count < 0 {
			count = 0
		}
		if start+count > n {
			count = n - start
		}
		removed := newObject("Array", it.protos.arrayProto)
		removed.elems = append([]Value(nil), a.elems[start:start+count]...)
		var ins []Value
		if len(args) > 2 {
			ins = args[2:]
		}
		rest := append([]Value(nil), a.elems[start+count:]...)
		a.elems = append(append(a.elems[:start:start], ins...), rest...)
		it.charge(len(ins) + 1)
		return Value(removed)
	})
	def("indexOf", 1, func(it *Interp, a *Object, args []Value) Value {
		for i, el := range a.elems {
			if strictEquals(el, arg(args, 0)) {
				return float64(i)
			}
		}
		return float64(-1)
	})
	def("lastIndexOf", 1, func(it *Interp, a *Object, args []Value) Value {
		for i := len(a.elems) - 1; i >= 0; i-- {
			if strictEquals(a.elems[i], arg(args, 0)) {
				return float64(i)
			}
		}
		return float64(-1)
	})
	def("includes", 1, func(it *Interp, a *Object, args []Value) Value {
		for _, el := range a.elems {
			if strictEquals(el, arg(args, 0)) {
				return true
			}
		}
		return false
	})
	def("join", 1, func(it *Interp, a *Object, args []Value) Value {
		sep := ","
		if _, isU := arg(args, 0).(Undefined); !isU {
			sep = it.toString(args[0])
		}
		parts := make([]string, len(a.elems))
		for i, el := range a.elems {
			switch el.(type) {
			case Undefined, Null, nil:
			default:
				parts[i] = it.toString(el)
			}
		}
		s := strings.Join(parts, sep)
		it.charge(len(s))
		return s
	})
	def("map", 1, func(it *Interp, a *Object, args []Value) Value {
		fn := callbackFn(it, args)
		out := newObject("Array", it.protos.arrayProto)
		for i, el := range a.elems {
			out.elems = append(out.elems, it.callFunction(fn, arg(args, 1), []Value{el, float64(i), Value(a)}))
		}
		it.charge(len(out.elems) + 1)
		return Value(out)
	})
	def("filter", 1, func(it *Interp, a *Object, args []Value) Value {
		fn := callbackFn(it, args)
		out := newObject("Array", it.protos.arrayProto)
		for i, el := range a.elems {
			if toBoolean(it.callFunction(fn, arg(args, 1), []Value{el, float64(i), Value(a)})) {
				out.elems = append(out.elems, el)
			}
		}
		it.charge(len(out.elems) + 1)
		return Value(out)
	})
	def("forEach", 1, func(it *Interp, a *Object, args []Value) Value {
		fn := callbackFn(it, args)
		for i, el := range a.elems {
			it.callFunction(fn, arg(args, 1), []Value{el, float64(i), Value(a)})
		}
		return undef
	})
	def("reduce", 1, func(it *Interp, a *Object, args []Value) Value {
		fn := callbackFn(it, args)
		i := 0
		var acc Value
		if len(args) > 1 {
			acc = args[1]
		} else {
			if len(a.elems) == 0 {
				it.throwError("TypeError", "reduce of empty array with no initial value")
			}
			acc = a.elems[0]
			i = 1
		}
		for ; i < len(a.elems); i++ {
			acc = it.callFunction(fn, undef, []Value{acc, a.elems[i], float64(i), Value(a)})
		}
		return acc
	})
	def("some", 1, func(it *Interp, a *Object, args []Value) Value {
		fn := callbackFn(it, args)
		for i, el := range a.elems {
			if toBoolean(it.callFunction(fn, undef, []Value{el, float64(i), Value(a)})) {
				return true
			}
		}
		return false
	})
	def("every", 1, func(it *Interp, a *Object, args []Value) Value {
		fn := callbackFn(it, args)
		for i, el := range a.elems {
			if !toBoolean(it.callFunction(fn, undef, []Value{el, float64(i), Value(a)})) {
				return false
			}
		}
		return true
	})
	def("find", 1, func(it *Interp, a *Object, args []Value) Value {
		fn := callbackFn(it, args)
		for i, el := range a.elems {
			if toBoolean(it.callFunction(fn, undef, []Value{el, float64(i), Value(a)})) {
				return el
			}
		}
		return undef
	})
	def("findIndex", 1, func(it *Interp, a *Object, args []Value) Value {
		fn := callbackFn(it, args)
		for i, el := range a.elems {
			if toBoolean(it.callFunction(fn, undef, []Value{el, float64(i), Value(a)})) {
				return float64(i)
			}
		}
		return float64(-1)
	})
	def("findLast", 1, func(it *Interp, a *Object, args []Value) Value {
		fn := callbackFn(it, args)
		for i := len(a.elems) - 1; i >= 0; i-- {
			if toBoolean(it.callFunction(fn, undef, []Value{a.elems[i], float64(i), Value(a)})) {
				return a.elems[i]
			}
		}
		return undef
	})
	def("findLastIndex", 1, func(it *Interp, a *Object, args []Value) Value {
		fn := callbackFn(it, args)
		for i := len(a.elems) - 1; i >= 0; i-- {
			if toBoolean(it.callFunction(fn, undef, []Value{a.elems[i], float64(i), Value(a)})) {
				return float64(i)
			}
		}
		return float64(-1)
	})
	def("reduceRight", 1, func(it *Interp, a *Object, args []Value) Value {
		fn := callbackFn(it, args)
		i := len(a.elems) - 1
		var acc Value
		if len(args) > 1 {
			acc = args[1]
		} else {
			if len(a.elems) == 0 {
				it.throwError("TypeError", "reduce of empty array with no initial value")
			}
			acc = a.elems[i]
			i--
		}
		for ; i >= 0; i-- {
			acc = it.callFunction(fn, undef, []Value{acc, a.elems[i], float64(i), Value(a)})
		}
		return acc
	})
	def("at", 1, func(it *Interp, a *Object, args []Value) Value {
		i := int(it.toNumber(arg(args, 0)))
		if i < 0 {
			i += len(a.elems)
		}
		if i < 0 || i >= len(a.elems) {
			return undef
		}
		return a.elems[i]
	})
	def("fill", 1, func(it *Interp, a *Object, args []Value) Value {
		v := arg(args, 0)
		start, end := 0, len(a.elems)
		if len(args) > 1 {
			start = relIndex(int(it.toNumber(args[1])), len(a.elems))
		}
		if len(args) > 2 {
			end = relIndex(int(it.toNumber(args[2])), len(a.elems))
		}
		for i := start; i < end; i++ {
			a.elems[i] = v
		}
		return Value(a)
	})
	def("flatMap", 1, func(it *Interp, a *Object, args []Value) Value {
		fn := callbackFn(it, args)
		out := newObject("Array", it.protos.arrayProto)
		for i, el := range a.elems {
			v := it.callFunction(fn, undef, []Value{el, float64(i), Value(a)})
			if vo, ok := v.(*Object); ok && vo.class == "Array" {
				out.elems = append(out.elems, vo.elems...)
			} else {
				out.elems = append(out.elems, v)
			}
		}
		it.charge(len(out.elems) + 1)
		return Value(out)
	})
	def("concat", 1, func(it *Interp, a *Object, args []Value) Value {
		out := newObject("Array", it.protos.arrayProto)
		out.elems = append([]Value(nil), a.elems...)
		for _, x := range args {
			if xo, ok := x.(*Object); ok && xo.class == "Array" {
				out.elems = append(out.elems, xo.elems...)
			} else {
				out.elems = append(out.elems, x)
			}
		}
		it.charge(len(out.elems) + 1)
		return Value(out)
	})
	def("reverse", 0, func(it *Interp, a *Object, args []Value) Value {
		for i, j := 0, len(a.elems)-1; i < j; i, j = i+1, j-1 {
			a.elems[i], a.elems[j] = a.elems[j], a.elems[i]
		}
		return Value(a)
	})
	def("sort", 1, func(it *Interp, a *Object, args []Value) Value {
		if fn, ok := arg(args, 0).(*Object); ok && fn.IsFunction() {
			sort.SliceStable(a.elems, func(i, j int) bool {
				return it.toNumber(it.callFunction(fn, undef, []Value{a.elems[i], a.elems[j]})) < 0
			})
		} else {
			sort.SliceStable(a.elems, func(i, j int) bool {
				return it.toString(a.elems[i]) < it.toString(a.elems[j])
			})
		}
		return Value(a)
	})
	def("flat", 1, func(it *Interp, a *Object, args []Value) Value {
		depth := 1
		if len(args) > 0 {
			if f := it.toNumber(args[0]); f > 0 {
				depth = int(math.Min(f, 64)) // Infinity clamps to a sane bound
			}
		}
		out := newObject("Array", it.protos.arrayProto)
		var walk func(els []Value, d int)
		walk = func(els []Value, d int) {
			for _, el := range els {
				if eo, ok := el.(*Object); ok && eo.class == "Array" && d > 0 {
					walk(eo.elems, d-1)
				} else {
					out.elems = append(out.elems, el)
				}
			}
		}
		walk(a.elems, depth)
		it.charge(len(out.elems) + 1)
		return Value(out)
	})
	// Iterators carry their materialized items in elems so for-of, spread,
	// and Array.from can consume them via iterableToSlice.
	def("keys", 0, func(it *Interp, a *Object, args []Value) Value {
		out := newObject("ArrayIterator", it.protos.iterProto)
		for i := range a.elems {
			out.elems = append(out.elems, float64(i))
		}
		return Value(out)
	})
	def("values", 0, func(it *Interp, a *Object, args []Value) Value {
		out := newObject("ArrayIterator", it.protos.iterProto)
		out.elems = append(out.elems, a.elems...)
		return Value(out)
	})
	// entries is also JSFuck's bootstrap: []["entries"]() + [] must stringify
	// to "[object Array Iterator]", and the method's .constructor is Function.
	def("entries", 0, func(it *Interp, a *Object, args []Value) Value {
		out := newObject("ArrayIterator", it.protos.iterProto)
		for i, el := range a.elems {
			pair := newObject("Array", it.protos.arrayProto)
			pair.elems = []Value{float64(i), el}
			out.elems = append(out.elems, pair)
		}
		return Value(out)
	})
	def("toString", 0, func(it *Interp, a *Object, args []Value) Value {
		return it.objectDefaultString(a)
	})

	ctor := it.makeNative("Array", 1, func(it *Interp, this Value, args []Value) Value {
		return Value(it.newArrayFromCtorArgs(args))
	})
	ctor.ctor = func(it *Interp, args []Value) *Object {
		return it.newArrayFromCtorArgs(args)
	}
	ctor.setProp("prototype", Value(p))
	ctor.setProp("isArray", Value(it.makeNative("isArray", 1, func(it *Interp, this Value, args []Value) Value {
		o, ok := arg(args, 0).(*Object)
		return ok && o.class == "Array"
	})))
	ctor.setProp("from", Value(it.makeNative("from", 1, func(it *Interp, this Value, args []Value) Value {
		out := newObject("Array", it.protos.arrayProto)
		if o, ok := arg(args, 0).(*Object); ok && o.class == "Object" {
			// Array-like: {length: n} with optional indexed properties.
			n := 0
			if e, okk := o.getOwn("length"); okk {
				n = int(it.toNumber(e.value))
			}
			it.charge(n)
			for i := 0; i < n; i++ {
				out.elems = append(out.elems, it.getMember(Value(o), strconv.Itoa(i)))
			}
		} else {
			out.elems = it.iterableToSlice(arg(args, 0))
		}
		if fn, ok := arg(args, 1).(*Object); ok && fn.IsFunction() {
			for i, el := range out.elems {
				out.elems[i] = it.callFunction(fn, undef, []Value{el, float64(i)})
			}
		}
		it.charge(len(out.elems) + 1)
		return Value(out)
	})))
	ctor.setProp("of", Value(it.makeNative("of", 0, func(it *Interp, this Value, args []Value) Value {
		out := newObject("Array", it.protos.arrayProto)
		out.elems = append([]Value(nil), args...)
		return Value(out)
	})))
	p.setProp("constructor", Value(ctor))
	it.protos.arrayCtor = ctor
	it.defineGlobal("Array", Value(ctor))
}

func (it *Interp) newArrayFromCtorArgs(args []Value) *Object {
	out := newObject("Array", it.protos.arrayProto)
	if len(args) == 1 {
		if n, ok := args[0].(float64); ok {
			size := int(n)
			if n != math.Trunc(n) || size < 0 {
				it.throwError("RangeError", "invalid array length")
			}
			if size > 1<<24 {
				panic(&Abort{Feature: "budget.alloc", Detail: "array length too large"})
			}
			it.charge(size + 1)
			out.elems = make([]Value, size)
			for i := range out.elems {
				out.elems[i] = undef
			}
			return out
		}
	}
	out.elems = append([]Value(nil), args...)
	return out
}
