package interp

import (
	"encoding/base64"
	"math"
	"strings"

	"repro/internal/js/ast"
	"repro/internal/js/parser"
)

// ---------------------------------------------------------------------------
// RegExp
// ---------------------------------------------------------------------------

func (it *Interp) setupRegexpBuiltins() {
	p := it.protos.regexpProto
	recv := func(it *Interp, this Value) *Object {
		o, ok := this.(*Object)
		if !ok || o.class != "RegExp" {
			it.throwError("TypeError", "receiver is not a regular expression")
		}
		return o
	}
	p.setProp("test", Value(it.makeNative("test", 1, func(it *Interp, this Value, args []Value) Value {
		re := recv(it, this)
		return it.compileRegexp(re.regex).MatchString(it.toString(arg(args, 0)))
	})))
	p.setProp("exec", Value(it.makeNative("exec", 1, func(it *Interp, this Value, args []Value) Value {
		re := recv(it, this)
		s := it.toString(arg(args, 0))
		loc := it.compileRegexp(re.regex).FindStringSubmatchIndex(s)
		if loc == nil {
			return null
		}
		out := newObject("Array", it.protos.arrayProto)
		for i := 0; i*2 < len(loc); i++ {
			if loc[i*2] < 0 {
				out.elems = append(out.elems, undef)
			} else {
				out.elems = append(out.elems, s[loc[i*2]:loc[i*2+1]])
			}
		}
		out.setProp("index", float64(len([]rune(s[:loc[0]]))))
		out.setProp("input", s)
		return Value(out)
	})))
	p.setProp("toString", Value(it.makeNative("toString", 0, func(it *Interp, this Value, args []Value) Value {
		return it.objectDefaultString(recv(it, this))
	})))

	// RegExp(pattern, flags) — callable and constructable.
	ctor := it.makeNative("RegExp", 2, func(it *Interp, this Value, args []Value) Value {
		return Value(it.regexpFromArgs(args))
	})
	ctor.ctor = func(it *Interp, args []Value) *Object {
		return it.regexpFromArgs(args)
	}
	ctor.setProp("prototype", Value(p))
	p.setProp("constructor", Value(ctor))
	it.protos.regexpCtor = ctor
	it.defineGlobal("RegExp", Value(ctor))
}

func (it *Interp) regexpFromArgs(args []Value) *Object {
	if re, ok := arg(args, 0).(*Object); ok && re.class == "RegExp" {
		return re
	}
	flags := ""
	if _, isU := arg(args, 1).(Undefined); !isU {
		flags = it.toString(args[1])
	}
	return it.newRegexp(it.toString(arg(args, 0)), flags)
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

func (it *Interp) setupErrorBuiltins() {
	p := it.protos.errorProto
	p.setProp("name", "Error")
	p.setProp("message", "")
	p.setProp("toString", Value(it.makeNative("toString", 0, func(it *Interp, this Value, args []Value) Value {
		if o, ok := this.(*Object); ok {
			return it.objectDefaultString(o)
		}
		return it.toString(this)
	})))

	it.protos.errorCtors = make(map[string]*Object)
	it.protos.errorProtos = make(map[string]*Object)
	for _, name := range []string{"Error", "TypeError", "RangeError", "SyntaxError", "ReferenceError", "EvalError", "URIError"} {
		kind := name
		// Each error kind gets its own prototype chained to the base Error
		// prototype, so `x instanceof TypeError` is true only for TypeErrors
		// while `x instanceof Error` holds for all of them.
		proto := p
		if kind != "Error" {
			proto = newObject("Object", p)
			proto.setProp("name", kind)
		}
		ctor := it.makeNative(kind, 1, func(it *Interp, this Value, args []Value) Value {
			return Value(it.errorFromArgs(kind, args))
		})
		ctor.ctor = func(it *Interp, args []Value) *Object {
			return it.errorFromArgs(kind, args)
		}
		ctor.setProp("prototype", Value(proto))
		proto.setProp("constructor", Value(ctor))
		it.protos.errorCtors[kind] = ctor
		it.protos.errorProtos[kind] = proto
		it.defineGlobal(kind, Value(ctor))
	}
}

func (it *Interp) errorFromArgs(kind string, args []Value) *Object {
	msg := ""
	if _, isU := arg(args, 0).(Undefined); !isU {
		msg = it.toString(args[0])
	}
	return it.newError(kind, msg)
}

// ---------------------------------------------------------------------------
// Map and Promise
// ---------------------------------------------------------------------------

func (it *Interp) setupMapPromise() {
	mp := it.protos.mapProto
	mrecv := func(it *Interp, this Value) *Object {
		o, ok := this.(*Object)
		if !ok || o.class != "Map" {
			it.throwError("TypeError", "receiver is not a Map")
		}
		return o
	}
	mapIndex := func(m *Object, key Value) int {
		for i, k := range m.mapKeys {
			if strictEquals(k, key) {
				return i
			}
		}
		return -1
	}
	mp.setProp("get", Value(it.makeNative("get", 1, func(it *Interp, this Value, args []Value) Value {
		m := mrecv(it, this)
		if i := mapIndex(m, arg(args, 0)); i >= 0 {
			return m.mapVals[i]
		}
		return undef
	})))
	mp.setProp("set", Value(it.makeNative("set", 2, func(it *Interp, this Value, args []Value) Value {
		m := mrecv(it, this)
		if i := mapIndex(m, arg(args, 0)); i >= 0 {
			m.mapVals[i] = arg(args, 1)
		} else {
			m.mapKeys = append(m.mapKeys, arg(args, 0))
			m.mapVals = append(m.mapVals, arg(args, 1))
			it.charge(2)
		}
		return this
	})))
	mp.setProp("has", Value(it.makeNative("has", 1, func(it *Interp, this Value, args []Value) Value {
		return mapIndex(mrecv(it, this), arg(args, 0)) >= 0
	})))
	mp.setProp("delete", Value(it.makeNative("delete", 1, func(it *Interp, this Value, args []Value) Value {
		m := mrecv(it, this)
		i := mapIndex(m, arg(args, 0))
		if i < 0 {
			return false
		}
		m.mapKeys = append(m.mapKeys[:i], m.mapKeys[i+1:]...)
		m.mapVals = append(m.mapVals[:i], m.mapVals[i+1:]...)
		return true
	})))
	mp.setProp("clear", Value(it.makeNative("clear", 0, func(it *Interp, this Value, args []Value) Value {
		m := mrecv(it, this)
		m.mapKeys, m.mapVals = nil, nil
		return undef
	})))
	mp.setProp("forEach", Value(it.makeNative("forEach", 1, func(it *Interp, this Value, args []Value) Value {
		m := mrecv(it, this)
		fn, ok := arg(args, 0).(*Object)
		if !ok || !fn.IsFunction() {
			it.throwError("TypeError", "value is not a function")
		}
		for i := range m.mapKeys {
			it.callFunction(fn, undef, []Value{m.mapVals[i], m.mapKeys[i], this})
		}
		return undef
	})))
	mp.setAccessor("size", it.makeNative("size", 0, func(it *Interp, this Value, args []Value) Value {
		return float64(len(mrecv(it, this).mapKeys))
	}), nil)

	mctor := it.makeNative("Map", 0, func(it *Interp, this Value, args []Value) Value {
		it.throwError("TypeError", "constructor requires new")
		return undef
	})
	mctor.ctor = func(it *Interp, args []Value) *Object {
		m := newObject("Map", it.protos.mapProto)
		if _, isU := arg(args, 0).(Undefined); !isU {
			for _, pair := range it.iterableToSlice(args[0]) {
				po, ok := pair.(*Object)
				if !ok || len(po.elems) < 2 {
					it.throwError("TypeError", "iterator value is not an entry object")
				}
				m.mapKeys = append(m.mapKeys, po.elems[0])
				m.mapVals = append(m.mapVals, po.elems[1])
			}
		}
		return m
	}
	mctor.setProp("prototype", Value(mp))
	mp.setProp("constructor", Value(mctor))
	it.protos.mapCtor = mctor
	it.defineGlobal("Map", Value(mctor))

	it.setupPromise()
}

func (it *Interp) setupPromise() {
	pp := it.protos.promiseProto
	precv := func(it *Interp, this Value) *Object {
		o, ok := this.(*Object)
		if !ok || o.class != "Promise" {
			it.throwError("TypeError", "receiver is not a Promise")
		}
		return o
	}
	pp.setProp("then", Value(it.makeNative("then", 2, func(it *Interp, this Value, args []Value) Value {
		p := precv(it, this)
		onF, _ := arg(args, 0).(*Object)
		onR, _ := arg(args, 1).(*Object)
		if onF != nil && !onF.IsFunction() {
			onF = nil
		}
		if onR != nil && !onR.IsFunction() {
			onR = nil
		}
		next := newObject("Promise", it.protos.promiseProto)
		r := promiseReaction{onFulfilled: onF, onRejected: onR, next: next}
		if p.pstate == 0 {
			p.preactions = append(p.preactions, r)
		} else {
			it.scheduleReaction(p, r)
		}
		return Value(next)
	})))
	pp.setProp("catch", Value(it.makeNative("catch", 1, func(it *Interp, this Value, args []Value) Value {
		thenVal := it.getMember(this, "then")
		thenFn := thenVal.(*Object)
		return it.callFunction(thenFn, this, []Value{undef, arg(args, 0)})
	})))
	pp.setProp("finally", Value(it.makeNative("finally", 1, func(it *Interp, this Value, args []Value) Value {
		cb, _ := arg(args, 0).(*Object)
		onF := it.makeNative("", 1, func(it *Interp, _ Value, a []Value) Value {
			if cb != nil && cb.IsFunction() {
				it.callFunction(cb, undef, nil)
			}
			return arg(a, 0)
		})
		onR := it.makeNative("", 1, func(it *Interp, _ Value, a []Value) Value {
			if cb != nil && cb.IsFunction() {
				it.callFunction(cb, undef, nil)
			}
			panic(jsThrow{arg(a, 0)})
		})
		thenFn := it.getMember(this, "then").(*Object)
		return it.callFunction(thenFn, this, []Value{Value(onF), Value(onR)})
	})))

	ctor := it.makeNative("Promise", 1, func(it *Interp, this Value, args []Value) Value {
		it.throwError("TypeError", "constructor requires new")
		return undef
	})
	ctor.ctor = func(it *Interp, args []Value) *Object {
		executor, ok := arg(args, 0).(*Object)
		if !ok || !executor.IsFunction() {
			it.throwError("TypeError", "executor is not a function")
		}
		p := newObject("Promise", it.protos.promiseProto)
		resolveFn := it.makeNative("resolve", 1, func(it *Interp, _ Value, a []Value) Value {
			it.settlePromise(p, 1, arg(a, 0))
			return undef
		})
		rejectFn := it.makeNative("reject", 1, func(it *Interp, _ Value, a []Value) Value {
			it.settlePromise(p, 2, arg(a, 0))
			return undef
		})
		func() {
			defer func() {
				if r := recover(); r != nil {
					t, isThrow := r.(jsThrow)
					if !isThrow {
						panic(r)
					}
					it.settlePromise(p, 2, t.v)
				}
			}()
			it.callFunction(executor, undef, []Value{Value(resolveFn), Value(rejectFn)})
		}()
		return p
	}
	ctor.setProp("prototype", Value(pp))
	ctor.setProp("resolve", Value(it.makeNative("resolve", 1, func(it *Interp, this Value, args []Value) Value {
		p := newObject("Promise", it.protos.promiseProto)
		it.settlePromise(p, 1, arg(args, 0))
		return Value(p)
	})))
	ctor.setProp("reject", Value(it.makeNative("reject", 1, func(it *Interp, this Value, args []Value) Value {
		p := newObject("Promise", it.protos.promiseProto)
		it.settlePromise(p, 2, arg(args, 0))
		return Value(p)
	})))
	ctor.setProp("all", Value(it.makeNative("all", 1, func(it *Interp, this Value, args []Value) Value {
		items := it.iterableToSlice(arg(args, 0))
		out := newObject("Promise", it.protos.promiseProto)
		results := make([]Value, len(items))
		remaining := len(items)
		if remaining == 0 {
			arr := newObject("Array", it.protos.arrayProto)
			it.settlePromise(out, 1, Value(arr))
			return Value(out)
		}
		for i, item := range items {
			i := i
			ip, ok := item.(*Object)
			if !ok || ip.class != "Promise" {
				results[i] = item
				remaining--
				continue
			}
			onF := it.makeNative("", 1, func(it *Interp, _ Value, a []Value) Value {
				results[i] = arg(a, 0)
				remaining--
				if remaining == 0 {
					arr := newObject("Array", it.protos.arrayProto)
					arr.elems = results
					it.settlePromise(out, 1, Value(arr))
				}
				return undef
			})
			onR := it.makeNative("", 1, func(it *Interp, _ Value, a []Value) Value {
				it.settlePromise(out, 2, arg(a, 0))
				return undef
			})
			r := promiseReaction{onFulfilled: onF, onRejected: onR, next: newObject("Promise", it.protos.promiseProto)}
			if ip.pstate == 0 {
				ip.preactions = append(ip.preactions, r)
			} else {
				it.scheduleReaction(ip, r)
			}
		}
		if remaining == 0 && out.pstate == 0 {
			arr := newObject("Array", it.protos.arrayProto)
			arr.elems = results
			it.settlePromise(out, 1, Value(arr))
		}
		return Value(out)
	})))
	pp.setProp("constructor", Value(ctor))
	it.protos.promiseCtor = ctor
	it.defineGlobal("Promise", Value(ctor))
}

// settlePromise resolves or rejects p; resolving with another promise adopts
// its eventual state.
func (it *Interp) settlePromise(p *Object, state int, v Value) {
	if p.pstate != 0 {
		return // already settled
	}
	if state == 1 {
		if vp, ok := v.(*Object); ok && vp.class == "Promise" {
			adopt := promiseReaction{next: p}
			if vp.pstate == 0 {
				vp.preactions = append(vp.preactions, adopt)
			} else {
				it.microtasks = append(it.microtasks, func() {
					p.pstate = 0 // allow settle to run
					it.settlePromise(p, vp.pstate, vp.pvalue)
				})
				p.pstate = -1 // locked: waiting for adoption
			}
			return
		}
	}
	p.pstate = state
	p.pvalue = v
	reactions := p.preactions
	p.preactions = nil
	for _, r := range reactions {
		it.scheduleReaction(p, r)
	}
}

// scheduleReaction queues one then/catch reaction as a microtask.
func (it *Interp) scheduleReaction(p *Object, r promiseReaction) {
	it.microtasks = append(it.microtasks, func() {
		state, v := p.pstate, p.pvalue
		handler := r.onFulfilled
		if state == 2 {
			handler = r.onRejected
		}
		if r.next == nil {
			return
		}
		if handler == nil {
			// Pass-through: propagate the settled state to the next promise.
			r.next.pstate = 0
			it.settlePromise(r.next, state, v)
			return
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t, isThrow := rec.(jsThrow)
					if !isThrow {
						panic(rec)
					}
					it.settlePromise(r.next, 2, t.v)
				}
			}()
			out := it.callFunction(handler, undef, []Value{v})
			it.settlePromise(r.next, 1, out)
		}()
	})
}

// ---------------------------------------------------------------------------
// Math and JSON
// ---------------------------------------------------------------------------

func (it *Interp) setupMathJSON() {
	m := newObject("Object", it.protos.objectProto)
	unary := func(name string, fn func(float64) float64) {
		m.setProp(name, Value(it.makeNative(name, 1, func(it *Interp, this Value, args []Value) Value {
			return fn(it.toNumber(arg(args, 0)))
		})))
	}
	unary("floor", math.Floor)
	unary("ceil", math.Ceil)
	unary("abs", math.Abs)
	unary("sqrt", math.Sqrt)
	unary("trunc", math.Trunc)
	unary("log", math.Log)
	unary("log2", math.Log2)
	unary("log10", math.Log10)
	unary("exp", math.Exp)
	unary("sin", math.Sin)
	unary("cos", math.Cos)
	unary("tan", math.Tan)
	unary("asin", math.Asin)
	unary("acos", math.Acos)
	unary("atan", math.Atan)
	unary("cbrt", math.Cbrt)
	unary("sign", func(f float64) float64 {
		switch {
		case math.IsNaN(f):
			return f
		case f > 0:
			return 1
		case f < 0:
			return -1
		}
		return f
	})
	unary("round", func(f float64) float64 {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return f
		}
		return math.Floor(f + 0.5) // JS rounds halves toward +Infinity
	})
	m.setProp("pow", Value(it.makeNative("pow", 2, func(it *Interp, this Value, args []Value) Value {
		return math.Pow(it.toNumber(arg(args, 0)), it.toNumber(arg(args, 1)))
	})))
	m.setProp("atan2", Value(it.makeNative("atan2", 2, func(it *Interp, this Value, args []Value) Value {
		return math.Atan2(it.toNumber(arg(args, 0)), it.toNumber(arg(args, 1)))
	})))
	m.setProp("hypot", Value(it.makeNative("hypot", 2, func(it *Interp, this Value, args []Value) Value {
		sum := 0.0
		for _, a := range args {
			f := it.toNumber(a)
			sum += f * f
		}
		return math.Sqrt(sum)
	})))
	m.setProp("max", Value(it.makeNative("max", 2, func(it *Interp, this Value, args []Value) Value {
		out := math.Inf(-1)
		for _, a := range args {
			f := it.toNumber(a)
			if math.IsNaN(f) {
				return math.NaN()
			}
			if f > out {
				out = f
			}
		}
		return out
	})))
	m.setProp("min", Value(it.makeNative("min", 2, func(it *Interp, this Value, args []Value) Value {
		out := math.Inf(1)
		for _, a := range args {
			f := it.toNumber(a)
			if math.IsNaN(f) {
				return math.NaN()
			}
			if f < out {
				out = f
			}
		}
		return out
	})))
	m.setProp("random", Value(it.makeNative("random", 0, func(it *Interp, this Value, args []Value) Value {
		return it.nextRandom() // seeded: deterministic across runs
	})))
	m.setProp("PI", math.Pi)
	m.setProp("E", math.E)
	it.protos.mathObj = m
	it.defineGlobal("Math", Value(m))

	j := newObject("Object", it.protos.objectProto)
	j.setProp("stringify", Value(it.makeNative("stringify", 3, func(it *Interp, this Value, args []Value) Value {
		indent := ""
		switch iv := arg(args, 2).(type) {
		case float64:
			n := int(iv)
			if n > 10 {
				n = 10
			}
			indent = strings.Repeat(" ", n)
		case string:
			indent = iv
		}
		s, ok := it.jsonStringify(arg(args, 0), indent, "")
		if !ok {
			return undef
		}
		it.charge(len(s))
		return s
	})))
	j.setProp("parse", Value(it.makeNative("parse", 1, func(it *Interp, this Value, args []Value) Value {
		return it.jsonParse(it.toString(arg(args, 0)))
	})))
	it.protos.jsonObj = j
	it.defineGlobal("JSON", Value(j))
}

// ---------------------------------------------------------------------------
// Global functions
// ---------------------------------------------------------------------------

func (it *Interp) setupGlobalFunctions() {
	it.defineGlobal("undefined", undef)
	it.defineGlobal("NaN", math.NaN())
	it.defineGlobal("Infinity", math.Inf(1))

	it.defineGlobal("parseInt", Value(it.makeNative("parseInt", 2, func(it *Interp, this Value, args []Value) Value {
		radix := 0
		if _, isU := arg(args, 1).(Undefined); !isU {
			radix = int(it.toNumber(args[1]))
		}
		return jsParseInt(it.toString(arg(args, 0)), radix)
	})))
	it.defineGlobal("parseFloat", Value(it.makeNative("parseFloat", 1, func(it *Interp, this Value, args []Value) Value {
		return jsParseFloat(it.toString(arg(args, 0)))
	})))
	it.defineGlobal("isNaN", Value(it.makeNative("isNaN", 1, func(it *Interp, this Value, args []Value) Value {
		return math.IsNaN(it.toNumber(arg(args, 0)))
	})))
	it.defineGlobal("isFinite", Value(it.makeNative("isFinite", 1, func(it *Interp, this Value, args []Value) Value {
		f := it.toNumber(arg(args, 0))
		return !math.IsNaN(f) && !math.IsInf(f, 0)
	})))

	it.defineGlobal("atob", Value(it.makeNative("atob", 1, func(it *Interp, this Value, args []Value) Value {
		s := it.toString(arg(args, 0))
		b, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			it.throwError("Error", "invalid base64 input")
		}
		// atob yields one char per byte (latin-1), not UTF-8 decoding.
		rs := make([]rune, len(b))
		for i, c := range b {
			rs[i] = rune(c)
		}
		it.charge(len(rs))
		return string(rs)
	})))
	it.defineGlobal("btoa", Value(it.makeNative("btoa", 1, func(it *Interp, this Value, args []Value) Value {
		s := it.toString(arg(args, 0))
		b := make([]byte, 0, len(s))
		for _, r := range s {
			if r > 0xFF {
				it.throwError("Error", "invalid character in btoa input")
			}
			b = append(b, byte(r))
		}
		return base64.StdEncoding.EncodeToString(b)
	})))

	it.defineGlobal("escape", Value(it.makeNative("escape", 1, func(it *Interp, this Value, args []Value) Value {
		return jsEscape(it.toString(arg(args, 0)))
	})))
	it.defineGlobal("unescape", Value(it.makeNative("unescape", 1, func(it *Interp, this Value, args []Value) Value {
		return jsUnescape(it.toString(arg(args, 0)))
	})))
	for _, name := range []string{"decodeURIComponent", "decodeURI"} {
		preserve := ""
		if name == "decodeURI" {
			preserve = ";/?:@&=+$,#"
		}
		keep := preserve
		it.defineGlobal(name, Value(it.makeNative(name, 1, func(it *Interp, this Value, args []Value) Value {
			s, ok := percentDecode(it.toString(arg(args, 0)), keep)
			if !ok {
				it.throwError("URIError", "malformed URI sequence")
			}
			return s
		})))
	}
	for _, name := range []string{"encodeURIComponent", "encodeURI"} {
		uriKeep := "-_.!~*'()"
		if name == "encodeURI" {
			uriKeep = "-_.!~*'();/?:@&=+$,#"
		}
		keep := uriKeep
		it.defineGlobal(name, Value(it.makeNative(name, 1, func(it *Interp, this Value, args []Value) Value {
			return percentEncode(it.toString(arg(args, 0)), keep)
		})))
	}

	it.defineGlobal("eval", Value(it.makeNative("eval", 1, func(it *Interp, this Value, args []Value) Value {
		src, ok := arg(args, 0).(string)
		if !ok {
			return arg(args, 0) // eval of a non-string returns it unchanged
		}
		return it.evalSource(src)
	})))

	it.defineGlobal("setTimeout", Value(it.makeNative("setTimeout", 2, func(it *Interp, this Value, args []Value) Value {
		return it.scheduleTimer(args)
	})))
	it.defineGlobal("setInterval", Value(it.makeNative("setInterval", 2, func(it *Interp, this Value, args []Value) Value {
		// The sandbox fires each interval exactly once (documented in
		// DESIGN.md): a single deterministic tick preserves the observable
		// behavior the protection transforms rely on without unbounded runs.
		return it.scheduleTimer(args)
	})))
	for _, name := range []string{"clearTimeout", "clearInterval"} {
		it.defineGlobal(name, Value(it.makeNative(name, 1, func(it *Interp, this Value, args []Value) Value {
			id := int(it.toNumber(arg(args, 0)))
			for i, t := range it.timers {
				if t.seq == id {
					it.timers = append(it.timers[:i], it.timers[i+1:]...)
					break
				}
			}
			return undef
		})))
	}

	it.defineGlobal("fetch", Value(it.makeNative("fetch", 1, func(it *Interp, this Value, args []Value) Value {
		// No network in the sandbox: fetch deterministically rejects, which
		// exercises the .catch paths of the async corpus flavors.
		p := newObject("Promise", it.protos.promiseProto)
		it.settlePromise(p, 2, Value(it.newError("TypeError", "network is disabled")))
		return Value(p)
	})))
}

// evalSource implements eval(src): the program runs in the global scope
// (indirect-eval semantics, which is all the transforms use), and the
// completion value is the value of the last expression statement.
func (it *Interp) evalSource(src string) Value {
	prog, err := parser.ParseProgram(src)
	if err != nil {
		it.throwError("SyntaxError", "invalid eval source")
	}
	it.charge(len(src))
	it.hoist(prog.Body, it.global)
	var last Value = undef
	for _, stmt := range prog.Body {
		if es, ok := stmt.(*ast.ExpressionStatement); ok {
			it.step()
			last = it.eval(es.Expression, it.global)
			continue
		}
		c := it.execStatement(stmt, it.global)
		if c.kind != completionNormal {
			break
		}
	}
	return last
}

func (it *Interp) scheduleTimer(args []Value) Value {
	fn, ok := arg(args, 0).(*Object)
	if !ok || !fn.IsFunction() {
		it.unsupported("timer-handler", "non-function timer callback")
	}
	delay := float64(0)
	if _, isU := arg(args, 1).(Undefined); !isU {
		delay = it.toNumber(args[1])
	}
	return it.addTimer(fn, delay)
}

// ---------------------------------------------------------------------------
// Host objects: console, document, module system, Date
// ---------------------------------------------------------------------------

func (it *Interp) setupHostObjects() {
	c := newObject("Object", it.protos.objectProto)
	logFn := it.makeNative("log", 0, func(it *Interp, this Value, args []Value) Value {
		it.log(args)
		return undef
	})
	for _, name := range []string{"log", "error", "warn", "info", "debug"} {
		c.setProp(name, Value(logFn))
	}
	it.protos.consoleObj = c
	it.defineGlobal("console", Value(c))

	// Date: only the deterministic surface. Date.now returns a fixed epoch;
	// constructing Date objects is outside the sandbox subset.
	d := it.makeNative("Date", 0, func(it *Interp, this Value, args []Value) Value {
		return "[sandbox Date]"
	})
	d.ctor = func(it *Interp, args []Value) *Object {
		it.unsupported("date", "new Date()")
		return nil
	}
	d.setProp("now", Value(it.makeNative("now", 0, func(it *Interp, this Value, args []Value) Value {
		return float64(1700000000000)
	})))
	it.defineGlobal("Date", Value(d))

	it.setupDocument()

	// CommonJS stubs: module.exports exists and is writable; require returns
	// an empty object for any module id.
	mod := newObject("Object", it.protos.objectProto)
	exp := newObject("Object", it.protos.objectProto)
	mod.setProp("exports", Value(exp))
	it.protos.moduleObj = mod
	it.defineGlobal("module", Value(mod))
	it.defineGlobal("exports", Value(exp))
	it.defineGlobal("require", Value(it.makeNative("require", 1, func(it *Interp, this Value, args []Value) Value {
		return Value(newObject("Object", it.protos.objectProto))
	})))

	it.defineGlobal("globalThis", Value(it.gobj))
	it.defineGlobal("window", Value(it.gobj))
	it.defineGlobal("self", Value(it.gobj))
	it.defineGlobal("global", Value(it.gobj))
}

// setupDocument installs a minimal DOM: event listeners fire once,
// deterministically, after the main script with a synthetic event whose
// target matches nothing; queries return empty results.
func (it *Interp) setupDocument() {
	doc := newObject("Object", it.protos.objectProto)
	doc.setProp("addEventListener", Value(it.makeNative("addEventListener", 2, func(it *Interp, this Value, args []Value) Value {
		fn, ok := arg(args, 1).(*Object)
		if !ok || !fn.IsFunction() {
			return undef
		}
		ev := it.syntheticEvent()
		wrapper := it.makeNative("", 0, func(it *Interp, _ Value, _ []Value) Value {
			return it.callFunction(fn, Value(doc), []Value{ev})
		})
		it.addTimer(wrapper, 0)
		return undef
	})))
	doc.setProp("querySelectorAll", Value(it.makeNative("querySelectorAll", 1, func(it *Interp, this Value, args []Value) Value {
		return Value(newObject("Array", it.protos.arrayProto))
	})))
	doc.setProp("querySelector", Value(it.makeNative("querySelector", 1, func(it *Interp, this Value, args []Value) Value {
		return null
	})))
	doc.setProp("getElementById", Value(it.makeNative("getElementById", 1, func(it *Interp, this Value, args []Value) Value {
		return null
	})))
	doc.setProp("createElement", Value(it.makeNative("createElement", 1, func(it *Interp, this Value, args []Value) Value {
		return Value(newObject("Object", it.protos.objectProto))
	})))
	it.protos.documentObj = doc
	it.defineGlobal("document", Value(doc))
}

// syntheticEvent builds the event passed to DOM handlers: target.closest
// matches nothing, so handlers take their early-return path.
func (it *Interp) syntheticEvent() Value {
	ev := newObject("Object", it.protos.objectProto)
	target := newObject("Object", it.protos.objectProto)
	target.setProp("closest", Value(it.makeNative("closest", 1, func(it *Interp, this Value, args []Value) Value {
		return null
	})))
	classList := newObject("Object", it.protos.objectProto)
	classList.setProp("toggle", Value(it.makeNative("toggle", 1, func(it *Interp, this Value, args []Value) Value {
		return false
	})))
	target.setProp("classList", Value(classList))
	ev.setProp("target", Value(target))
	ev.setProp("preventDefault", Value(it.makeNative("preventDefault", 0, func(it *Interp, this Value, args []Value) Value {
		return undef
	})))
	ev.setProp("type", "synthetic")
	return Value(ev)
}
