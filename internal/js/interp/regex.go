package interp

import (
	"regexp"
	"strings"
)

// jsRegexp is the compiled-on-demand backing of a JS RegExp object. JS regex
// syntax is translated to Go's RE2 where possible; patterns RE2 cannot express
// (backreferences, lookaround) abort with a named unsupported feature at first
// *use*, not at construction — a literal that is built but never tested (as
// the self-defending guard does) costs nothing.
type jsRegexp struct {
	source string
	flags  string

	compiled   bool
	re         *regexp.Regexp
	compileErr error
}

// newRegexp builds a RegExp object without compiling the pattern.
func (it *Interp) newRegexp(source, flags string) *Object {
	o := newObject("RegExp", it.protos.regexpProto)
	o.regex = &jsRegexp{source: source, flags: flags}
	o.setProp("source", source)
	o.setProp("flags", flags)
	o.setProp("global", strings.Contains(flags, "g"))
	o.setProp("lastIndex", float64(0))
	return o
}

// compileRegexp resolves the Go regexp for r, translating JS syntax to RE2.
// Failure is an unsupported-feature abort so the oracle can attribute the
// skip.
func (it *Interp) compileRegexp(r *jsRegexp) *regexp.Regexp {
	if r == nil {
		it.throwError("TypeError", "receiver is not a regular expression")
	}
	if !r.compiled {
		r.compiled = true
		r.re, r.compileErr = compileJSPattern(r.source, r.flags)
	}
	if r.compileErr != nil {
		it.unsupported("regex", r.source)
	}
	return r.re
}

// compileJSPattern translates a JS pattern+flags pair into a Go regexp.
func compileJSPattern(source, flags string) (*regexp.Regexp, error) {
	prefix := ""
	var fl []rune
	for _, f := range flags {
		switch f {
		case 'i', 'm', 's':
			fl = append(fl, f)
		}
		// g and y affect matching protocol, not pattern syntax.
	}
	if len(fl) > 0 {
		prefix = "(?" + string(fl) + ")"
	}
	translated := translateJSPattern(source)
	re, err := regexp.Compile(prefix + translated)
	if err != nil {
		// Second chance: JS allows lone braces ("a{b}") that RE2 rejects as
		// malformed repetitions. Escape them and retry.
		re2, err2 := regexp.Compile(prefix + escapeLoneBraces(translated))
		if err2 == nil {
			return re2, nil
		}
		return nil, err
	}
	return re, nil
}

// translateJSPattern rewrites JS-only escapes into RE2 equivalents. The
// notable case is \b inside a character class, which means backspace in JS
// but is invalid in RE2 classes.
func translateJSPattern(src string) string {
	var out strings.Builder
	inClass := false
	rs := []rune(src)
	for i := 0; i < len(rs); i++ {
		c := rs[i]
		switch {
		case c == '\\' && i+1 < len(rs):
			next := rs[i+1]
			if inClass && next == 'b' {
				out.WriteString("\\x08") // backspace inside a class
				i++
				continue
			}
			out.WriteRune(c)
			out.WriteRune(next)
			i++
		case c == '[':
			inClass = true
			out.WriteRune(c)
		case c == ']':
			inClass = false
			out.WriteRune(c)
		default:
			out.WriteRune(c)
		}
	}
	return out.String()
}

// escapeLoneBraces escapes { and } that do not open valid repetitions.
func escapeLoneBraces(src string) string {
	var out strings.Builder
	rs := []rune(src)
	for i := 0; i < len(rs); i++ {
		c := rs[i]
		if c == '\\' && i+1 < len(rs) {
			out.WriteRune(c)
			out.WriteRune(rs[i+1])
			i++
			continue
		}
		if c == '{' && !validRepetitionAt(rs, i) {
			out.WriteString("\\{")
			continue
		}
		if c == '}' {
			out.WriteString("\\}")
			continue
		}
		out.WriteRune(c)
	}
	return out.String()
}

// validRepetitionAt reports whether rs[i]=='{' opens a {m}, {m,}, or {m,n}
// repetition.
func validRepetitionAt(rs []rune, i int) bool {
	j := i + 1
	digits := 0
	for j < len(rs) && rs[j] >= '0' && rs[j] <= '9' {
		j++
		digits++
	}
	if digits == 0 {
		return false
	}
	if j < len(rs) && rs[j] == ',' {
		j++
		for j < len(rs) && rs[j] >= '0' && rs[j] <= '9' {
			j++
		}
	}
	return j < len(rs) && rs[j] == '}'
}

// ---------------------------------------------------------------------------
// String.prototype.replace / match backing
// ---------------------------------------------------------------------------

// stringReplace implements s.replace(pat, repl) and s.replaceAll.
func (it *Interp) stringReplace(s string, pat, repl Value, all bool) Value {
	// Function or string replacement?
	replFn, _ := repl.(*Object)
	if replFn != nil && !replFn.IsFunction() {
		replFn = nil
	}

	if po, ok := pat.(*Object); ok && po.class == "RegExp" {
		re := it.compileRegexp(po.regex)
		global := all || strings.Contains(po.regex.flags, "g")
		return it.regexReplace(s, re, repl, replFn, global)
	}

	// String pattern: replace the first occurrence (or all for replaceAll).
	p := it.toString(pat)
	count := 1
	if all {
		count = -1
	}
	if replFn != nil {
		var out strings.Builder
		rest := s
		offset := 0
		for count != 0 {
			idx := strings.Index(rest, p)
			if idx < 0 {
				break
			}
			out.WriteString(rest[:idx])
			r := it.callFunction(replFn, undef, []Value{p, float64(len([]rune(s[:offset+idx]))), s})
			out.WriteString(it.toString(r))
			adv := idx + len(p)
			if len(p) == 0 {
				if len(rest) == 0 {
					break
				}
				out.WriteString(rest[idx : idx+1])
				adv = idx + 1
			}
			rest = rest[adv:]
			offset += adv
			if count > 0 {
				count--
			}
		}
		out.WriteString(rest)
		res := out.String()
		it.charge(len(res))
		return res
	}
	r := expandDollarPatterns(it.toString(repl), p, nil)
	var res string
	if all {
		res = strings.ReplaceAll(s, p, r)
	} else {
		res = strings.Replace(s, p, r, 1)
	}
	it.charge(len(res))
	return res
}

func (it *Interp) regexReplace(s string, re *regexp.Regexp, repl Value, replFn *Object, global bool) Value {
	n := 1
	if global {
		n = -1
	}
	matches := re.FindAllStringSubmatchIndex(s, n)
	if matches == nil {
		return s
	}
	var out strings.Builder
	last := 0
	for _, m := range matches {
		out.WriteString(s[last:m[0]])
		groups := make([]string, 0, len(m)/2)
		for g := 0; g < len(m); g += 2 {
			if m[g] < 0 {
				groups = append(groups, "")
			} else {
				groups = append(groups, s[m[g]:m[g+1]])
			}
		}
		if replFn != nil {
			args := make([]Value, 0, len(groups)+2)
			for _, g := range groups {
				args = append(args, g)
			}
			args = append(args, float64(len([]rune(s[:m[0]]))), s)
			out.WriteString(it.toString(it.callFunction(replFn, undef, args)))
		} else {
			out.WriteString(expandDollarPatterns(it.toString(repl), groups[0], groups[1:]))
		}
		last = m[1]
	}
	out.WriteString(s[last:])
	res := out.String()
	it.charge(len(res))
	return res
}

// expandDollarPatterns handles $$, $&, and $1..$9 in string replacements.
func expandDollarPatterns(repl, match string, groups []string) string {
	if !strings.Contains(repl, "$") {
		return repl
	}
	var out strings.Builder
	rs := []rune(repl)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '$' || i+1 >= len(rs) {
			out.WriteRune(rs[i])
			continue
		}
		next := rs[i+1]
		switch {
		case next == '$':
			out.WriteRune('$')
			i++
		case next == '&':
			out.WriteString(match)
			i++
		case next >= '1' && next <= '9':
			g := int(next - '1')
			if g < len(groups) {
				out.WriteString(groups[g])
			}
			i++
		default:
			out.WriteRune('$')
		}
	}
	return out.String()
}

// stringMatch implements s.match(pat): null on no match; with /g/ an array of
// full-match strings; otherwise the first match with its capture groups.
func (it *Interp) stringMatch(s string, pat Value) Value {
	var rx *jsRegexp
	if po, ok := pat.(*Object); ok && po.class == "RegExp" {
		rx = po.regex
	} else {
		rx = &jsRegexp{source: regexp.QuoteMeta(it.toString(pat))}
	}
	re := it.compileRegexp(rx)
	if strings.Contains(rx.flags, "g") {
		ms := re.FindAllString(s, -1)
		if ms == nil {
			return null
		}
		out := newObject("Array", it.protos.arrayProto)
		for _, m := range ms {
			out.elems = append(out.elems, m)
		}
		it.charge(len(out.elems) + 1)
		return Value(out)
	}
	m := re.FindStringSubmatch(s)
	if m == nil {
		return null
	}
	out := newObject("Array", it.protos.arrayProto)
	for _, g := range m {
		out.elems = append(out.elems, g)
	}
	return Value(out)
}
