package interp

import (
	"math"
	"strconv"

	"repro/internal/js/ast"
)

// eval evaluates one expression node.
func (it *Interp) eval(n ast.Node, e *env) Value {
	it.step()
	switch x := n.(type) {
	case *ast.Identifier:
		b, ok := e.lookup(x.Name)
		if !ok {
			// Properties set on the global object (globalThis.x = ...) are
			// readable as bare identifiers.
			if pe, okk := it.gobj.getOwn(x.Name); okk {
				return pe.value
			}
			// The message deliberately omits the name: identifier renaming
			// must not change observable output.
			it.throwError("ReferenceError", "identifier is not defined")
		}
		return b.value
	case *ast.Literal:
		return it.evalLiteral(x)
	case *ast.ThisExpression:
		if b, ok := e.lookup("this"); ok {
			return b.value
		}
		return Value(it.gobj)
	case *ast.ArrayExpression:
		arr := newObject("Array", it.protos.arrayProto)
		for _, el := range x.Elements {
			if el == nil {
				arr.elems = append(arr.elems, undef) // elision
				continue
			}
			if sp, ok := el.(*ast.SpreadElement); ok {
				arr.elems = append(arr.elems, it.iterableToSlice(it.eval(sp.Argument, e))...)
				continue
			}
			arr.elems = append(arr.elems, it.eval(el, e))
		}
		it.charge(len(arr.elems) + 1)
		return Value(arr)
	case *ast.ObjectExpression:
		return it.evalObjectLiteral(x, e)
	case *ast.FunctionExpression:
		name := ""
		if x.ID != nil {
			name = x.ID.Name
		}
		if x.Generator {
			it.unsupported("generator", "")
		}
		if x.Async {
			it.unsupported("async-function", "")
		}
		return Value(it.makeFunction(x.Params, x.Body, e, name, x))
	case *ast.ArrowFunctionExpression:
		if x.Async {
			it.unsupported("async-function", "")
		}
		return Value(it.makeArrow(x, e))
	case *ast.ClassExpression:
		return it.evalClass(x.ID, x.SuperClass, x.Body, e)
	case *ast.TemplateLiteral:
		out := ""
		for i, q := range x.Quasis {
			out += q.Cooked
			if i < len(x.Expressions) {
				out += it.toString(it.eval(x.Expressions[i], e))
			}
		}
		it.charge(len(out))
		return out
	case *ast.MemberExpression:
		if _, isSuper := x.Object.(*ast.Super); isSuper {
			sp := it.superProto(e)
			return it.protoGet(sp, it.currentThis(e), it.propertyKey(x.Property, x.Computed, e))
		}
		obj := it.eval(x.Object, e)
		if x.Optional {
			switch obj.(type) {
			case Undefined, Null:
				return undef
			}
		}
		return it.getMember(obj, it.propertyKey(x.Property, x.Computed, e))
	case *ast.CallExpression:
		return it.evalCall(x, e)
	case *ast.NewExpression:
		callee := it.eval(x.Callee, e)
		fn, ok := callee.(*Object)
		if !ok {
			it.throwError("TypeError", "value is not a constructor")
		}
		return it.construct(fn, it.evalArgs(x.Arguments, e))
	case *ast.UnaryExpression:
		return it.evalUnary(x, e)
	case *ast.UpdateExpression:
		return it.evalUpdate(x, e)
	case *ast.BinaryExpression:
		return it.evalBinary(x, e)
	case *ast.LogicalExpression:
		l := it.eval(x.Left, e)
		switch x.Operator {
		case "&&":
			if !toBoolean(l) {
				return l
			}
			return it.eval(x.Right, e)
		case "||":
			if toBoolean(l) {
				return l
			}
			return it.eval(x.Right, e)
		case "??":
			switch l.(type) {
			case Undefined, Null:
				return it.eval(x.Right, e)
			}
			return l
		}
		it.unsupported("operator", x.Operator)
	case *ast.AssignmentExpression:
		return it.evalAssignment(x, e)
	case *ast.ConditionalExpression:
		if toBoolean(it.eval(x.Test, e)) {
			return it.eval(x.Consequent, e)
		}
		return it.eval(x.Alternate, e)
	case *ast.SequenceExpression:
		var v Value = undef
		for _, sub := range x.Expressions {
			v = it.eval(sub, e)
		}
		return v
	case *ast.TaggedTemplateExpression:
		it.unsupported("tagged-template", "")
	case *ast.AwaitExpression:
		it.unsupported("await", "")
	case *ast.YieldExpression:
		it.unsupported("generator", "yield")
	case *ast.MetaProperty:
		it.unsupported("meta-property", x.Meta.Name+"."+x.Property.Name)
	case *ast.Super:
		it.unsupported("class-super", "")
	case *ast.SpreadElement:
		it.unsupported("spread-position", "")
	default:
		it.unsupported("expression", n.Type())
	}
	return undef
}

func (it *Interp) evalLiteral(x *ast.Literal) Value {
	switch x.Kind {
	case ast.LiteralString:
		return x.String
	case ast.LiteralNumber:
		return x.Number
	case ast.LiteralBoolean:
		return x.Bool
	case ast.LiteralNull:
		return null
	case ast.LiteralRegExp:
		return Value(it.newRegexp(x.Regex.Pattern, x.Regex.Flags))
	}
	it.unsupported("literal", x.Raw)
	return undef
}

func (it *Interp) evalObjectLiteral(x *ast.ObjectExpression, e *env) Value {
	obj := newObject("Object", it.protos.objectProto)
	for _, pn := range x.Properties {
		switch p := pn.(type) {
		case *ast.Property:
			key := it.propertyKey(p.Key, p.Computed, e)
			switch p.Kind {
			case "get":
				fe := p.Value.(*ast.FunctionExpression)
				obj.setAccessor(key, it.makeFunction(fe.Params, fe.Body, e, key, fe), nil)
			case "set":
				fe := p.Value.(*ast.FunctionExpression)
				obj.setAccessor(key, nil, it.makeFunction(fe.Params, fe.Body, e, key, fe))
			default:
				obj.setProp(key, it.eval(p.Value, e))
			}
		case *ast.SpreadElement:
			src := it.eval(p.Argument, e)
			if so, ok := src.(*Object); ok {
				switch so.class {
				case "Array", "Arguments":
					for i, el := range so.elems {
						obj.setProp(jsNumberString(float64(i)), el)
					}
				default:
					for _, k := range so.keys {
						obj.setProp(k, it.getMember(src, k))
					}
				}
			}
		default:
			it.unsupported("object-member", pn.Type())
		}
	}
	it.charge(len(obj.keys) + 1)
	return Value(obj)
}

// propertyKey resolves a member/property key to its string form.
func (it *Interp) propertyKey(key ast.Node, computed bool, e *env) string {
	if computed {
		return it.toString(it.eval(key, e))
	}
	switch k := key.(type) {
	case *ast.Identifier:
		return k.Name
	case *ast.Literal:
		return it.toString(it.evalLiteral(k))
	}
	it.unsupported("property-key", key.Type())
	return ""
}

func (it *Interp) evalArgs(args []ast.Node, e *env) []Value {
	out := make([]Value, 0, len(args))
	for _, a := range args {
		if sp, ok := a.(*ast.SpreadElement); ok {
			out = append(out, it.iterableToSlice(it.eval(sp.Argument, e))...)
			continue
		}
		out = append(out, it.eval(a, e))
	}
	return out
}

func (it *Interp) evalCall(x *ast.CallExpression, e *env) Value {
	if _, isSuper := x.Callee.(*ast.Super); isSuper {
		sb, ok := e.lookup(superBinding)
		if !ok {
			it.unsupported("class-super", "super call outside a derived constructor")
		}
		super := sb.value.(*Object)
		self, okk := it.currentThis(e).(*Object)
		if !okk {
			it.throwError("TypeError", "super called without an instance")
		}
		it.invokeSuper(super, self, it.evalArgs(x.Arguments, e))
		return undef
	}
	var this Value = undef
	var callee Value
	if m, ok := x.Callee.(*ast.MemberExpression); ok {
		if _, isSuper := m.Object.(*ast.Super); isSuper {
			// super.m(...) resolves m on the parent prototype but keeps the
			// current instance as the receiver.
			this = it.currentThis(e)
			callee = it.protoGet(it.superProto(e), this, it.propertyKey(m.Property, m.Computed, e))
		} else {
			obj := it.eval(m.Object, e)
			if m.Optional {
				switch obj.(type) {
				case Undefined, Null:
					return undef
				}
			}
			this = obj
			callee = it.getMember(obj, it.propertyKey(m.Property, m.Computed, e))
		}
	} else {
		callee = it.eval(x.Callee, e)
	}
	if x.Optional {
		switch callee.(type) {
		case Undefined, Null:
			return undef
		}
	}
	fn, ok := callee.(*Object)
	if !ok || !fn.IsFunction() {
		it.throwError("TypeError", "value is not a function")
	}
	return it.callFunction(fn, this, it.evalArgs(x.Arguments, e))
}

func (it *Interp) evalUnary(x *ast.UnaryExpression, e *env) Value {
	if x.Operator == "typeof" {
		if id, ok := x.Argument.(*ast.Identifier); ok {
			if b, found := e.lookup(id.Name); found {
				return typeOf(b.value)
			}
			return "undefined" // typeof never throws on unresolved names
		}
		return typeOf(it.eval(x.Argument, e))
	}
	if x.Operator == "delete" {
		if m, ok := x.Argument.(*ast.MemberExpression); ok {
			obj := it.eval(m.Object, e)
			key := it.propertyKey(m.Property, m.Computed, e)
			if o, isObj := obj.(*Object); isObj {
				if (o.class == "Array" || o.class == "Arguments") && isArrayIndex(key) {
					i, _ := strconv.Atoi(key)
					if i < len(o.elems) {
						o.elems[i] = undef
					}
					return true
				}
				return o.deleteProp(key)
			}
			return true
		}
		it.eval(x.Argument, e)
		return true
	}
	v := it.eval(x.Argument, e)
	switch x.Operator {
	case "-":
		return -it.toNumber(v)
	case "+":
		return it.toNumber(v)
	case "!":
		return !toBoolean(v)
	case "~":
		return float64(^toInt32(it.toNumber(v)))
	case "void":
		return undef
	}
	it.unsupported("operator", x.Operator)
	return undef
}

func (it *Interp) evalUpdate(x *ast.UpdateExpression, e *env) Value {
	old := it.toNumber(it.evalRef(x.Argument, e))
	var next float64
	if x.Operator == "++" {
		next = old + 1
	} else {
		next = old - 1
	}
	it.assignTo(x.Argument, next, e)
	if x.Prefix {
		return next
	}
	return old
}

// evalRef evaluates an assignment target for read (update and compound ops).
func (it *Interp) evalRef(target ast.Node, e *env) Value {
	switch t := target.(type) {
	case *ast.Identifier:
		if b, ok := e.lookup(t.Name); ok {
			return b.value
		}
		it.throwError("ReferenceError", "identifier is not defined")
	case *ast.MemberExpression:
		obj := it.eval(t.Object, e)
		return it.getMember(obj, it.propertyKey(t.Property, t.Computed, e))
	}
	it.unsupported("assignment-target", target.Type())
	return undef
}

func (it *Interp) evalBinary(x *ast.BinaryExpression, e *env) Value {
	l := it.eval(x.Left, e)
	r := it.eval(x.Right, e)
	switch x.Operator {
	case "+":
		lp, rp := l, r
		if o, ok := l.(*Object); ok {
			lp = it.toPrimitive(o, "default")
		}
		if o, ok := r.(*Object); ok {
			rp = it.toPrimitive(o, "default")
		}
		_, ls := lp.(string)
		_, rs := rp.(string)
		if ls || rs {
			s := it.toString(lp) + it.toString(rp)
			it.charge(len(s))
			return s
		}
		return it.toNumber(lp) + it.toNumber(rp)
	case "-":
		return it.toNumber(l) - it.toNumber(r)
	case "*":
		return it.toNumber(l) * it.toNumber(r)
	case "/":
		return it.toNumber(l) / it.toNumber(r)
	case "%":
		return math.Mod(it.toNumber(l), it.toNumber(r))
	case "**":
		return math.Pow(it.toNumber(l), it.toNumber(r))
	case "==":
		return it.looseEquals(l, r)
	case "!=":
		return !it.looseEquals(l, r)
	case "===":
		return strictEquals(l, r)
	case "!==":
		return !strictEquals(l, r)
	case "<":
		res, ok := it.lessThan(l, r)
		return ok && res
	case ">":
		res, ok := it.lessThan(r, l)
		return ok && res
	case "<=":
		res, ok := it.lessThan(r, l)
		return ok && !res
	case ">=":
		res, ok := it.lessThan(l, r)
		return ok && !res
	case "&":
		return float64(toInt32(it.toNumber(l)) & toInt32(it.toNumber(r)))
	case "|":
		return float64(toInt32(it.toNumber(l)) | toInt32(it.toNumber(r)))
	case "^":
		return float64(toInt32(it.toNumber(l)) ^ toInt32(it.toNumber(r)))
	case "<<":
		return float64(toInt32(it.toNumber(l)) << (toUint32(it.toNumber(r)) & 31))
	case ">>":
		return float64(toInt32(it.toNumber(l)) >> (toUint32(it.toNumber(r)) & 31))
	case ">>>":
		return float64(toUint32(it.toNumber(l)) >> (toUint32(it.toNumber(r)) & 31))
	case "in":
		o, ok := r.(*Object)
		if !ok {
			it.throwError("TypeError", "cannot use 'in' on a non-object")
		}
		return it.hasMember(o, it.toString(l))
	case "instanceof":
		fn, ok := r.(*Object)
		if !ok || !fn.IsFunction() {
			it.throwError("TypeError", "right-hand side is not callable")
		}
		lo, isObj := l.(*Object)
		if !isObj {
			return false
		}
		var protoVal Value = undef
		if pv, okk := fn.getOwn("prototype"); okk {
			protoVal = pv.value
		}
		po, okk := protoVal.(*Object)
		if !okk {
			return false
		}
		for p := lo.proto; p != nil; p = p.proto {
			if p == po {
				return true
			}
		}
		return false
	}
	it.unsupported("operator", x.Operator)
	return undef
}

func (it *Interp) evalAssignment(x *ast.AssignmentExpression, e *env) Value {
	if x.Operator == "=" {
		v := it.eval(x.Right, e)
		it.assignTo(x.Left, v, e)
		return v
	}
	// Logical assignment short-circuits; arithmetic compounds read-modify-write.
	switch x.Operator {
	case "&&=":
		cur := it.evalRef(x.Left, e)
		if !toBoolean(cur) {
			return cur
		}
		v := it.eval(x.Right, e)
		it.assignTo(x.Left, v, e)
		return v
	case "||=":
		cur := it.evalRef(x.Left, e)
		if toBoolean(cur) {
			return cur
		}
		v := it.eval(x.Right, e)
		it.assignTo(x.Left, v, e)
		return v
	case "??=":
		cur := it.evalRef(x.Left, e)
		switch cur.(type) {
		case Undefined, Null:
			v := it.eval(x.Right, e)
			it.assignTo(x.Left, v, e)
			return v
		}
		return cur
	}
	cur := it.evalRef(x.Left, e)
	r := it.eval(x.Right, e)
	v := it.applyBinaryValues(x.Operator[:len(x.Operator)-1], cur, r)
	it.assignTo(x.Left, v, e)
	return v
}

// applyBinaryValues applies a binary operator to already-evaluated operands
// (compound assignment).
func (it *Interp) applyBinaryValues(op string, l, r Value) Value {
	switch op {
	case "+":
		lp, rp := l, r
		if o, ok := l.(*Object); ok {
			lp = it.toPrimitive(o, "default")
		}
		if o, ok := r.(*Object); ok {
			rp = it.toPrimitive(o, "default")
		}
		_, ls := lp.(string)
		_, rs := rp.(string)
		if ls || rs {
			s := it.toString(lp) + it.toString(rp)
			it.charge(len(s))
			return s
		}
		return it.toNumber(lp) + it.toNumber(rp)
	case "-":
		return it.toNumber(l) - it.toNumber(r)
	case "*":
		return it.toNumber(l) * it.toNumber(r)
	case "/":
		return it.toNumber(l) / it.toNumber(r)
	case "%":
		return math.Mod(it.toNumber(l), it.toNumber(r))
	case "**":
		return math.Pow(it.toNumber(l), it.toNumber(r))
	case "&":
		return float64(toInt32(it.toNumber(l)) & toInt32(it.toNumber(r)))
	case "|":
		return float64(toInt32(it.toNumber(l)) | toInt32(it.toNumber(r)))
	case "^":
		return float64(toInt32(it.toNumber(l)) ^ toInt32(it.toNumber(r)))
	case "<<":
		return float64(toInt32(it.toNumber(l)) << (toUint32(it.toNumber(r)) & 31))
	case ">>":
		return float64(toInt32(it.toNumber(l)) >> (toUint32(it.toNumber(r)) & 31))
	case ">>>":
		return float64(toUint32(it.toNumber(l)) >> (toUint32(it.toNumber(r)) & 31))
	}
	it.unsupported("operator", op+"=")
	return undef
}

// assignTo writes v into an assignment target: identifier, member, or a
// destructuring pattern (assignment position).
func (it *Interp) assignTo(target ast.Node, v Value, e *env) {
	switch t := target.(type) {
	case *ast.Identifier:
		if b, ok := e.lookup(t.Name); ok {
			if !b.mutable {
				it.throwError("TypeError", "assignment to constant variable")
			}
			b.value = v
			return
		}
		// Sloppy mode: assignment to an undeclared name creates a global.
		it.global.declare(t.Name, v, true)
	case *ast.MemberExpression:
		obj := it.eval(t.Object, e)
		it.setMember(obj, it.propertyKey(t.Property, t.Computed, e), v)
	case *ast.ArrayPattern, *ast.ObjectPattern, *ast.AssignmentPattern:
		it.bindPattern(target, v, e, func(name string, val Value) {
			it.assignTo(ast.NewIdentifier(name), val, e)
		})
	default:
		it.unsupported("assignment-target", target.Type())
	}
}

// ---------------------------------------------------------------------------
// Member access
// ---------------------------------------------------------------------------

func isArrayIndex(key string) bool {
	if key == "" || (len(key) > 1 && key[0] == '0') {
		return false
	}
	for i := 0; i < len(key); i++ {
		if key[i] < '0' || key[i] > '9' {
			return false
		}
	}
	return true
}

// getMember implements property access on any value, including primitive
// method dispatch through the builtin prototypes.
func (it *Interp) getMember(v Value, key string) Value {
	it.step()
	switch x := v.(type) {
	case Undefined:
		it.throwError("TypeError", "cannot read properties of undefined")
	case Null:
		it.throwError("TypeError", "cannot read properties of null")
	case string:
		if key == "length" {
			return float64(len([]rune(x)))
		}
		if isArrayIndex(key) {
			i, _ := strconv.Atoi(key)
			rs := []rune(x)
			if i < len(rs) {
				return string(rs[i])
			}
			return undef
		}
		return it.protoGet(it.protos.stringProto, v, key)
	case float64:
		return it.protoGet(it.protos.numberProto, v, key)
	case bool:
		return it.protoGet(it.protos.booleanProto, v, key)
	case *Object:
		if x.class == "Array" || x.class == "Arguments" {
			if key == "length" {
				return float64(len(x.elems))
			}
			if isArrayIndex(key) {
				i, _ := strconv.Atoi(key)
				if i < len(x.elems) {
					el := x.elems[i]
					if el == nil {
						return undef
					}
					return el
				}
				return undef
			}
		}
		for o := x; o != nil; o = o.proto {
			if e, ok := o.getOwn(key); ok {
				if e.getter != nil {
					return it.callFunction(e.getter, v, nil)
				}
				if e.getter == nil && e.setter != nil {
					return undef
				}
				return e.value
			}
		}
		return undef
	}
	return undef
}

// protoGet resolves a primitive's property through its builtin prototype.
func (it *Interp) protoGet(proto *Object, receiver Value, key string) Value {
	for o := proto; o != nil; o = o.proto {
		if e, ok := o.getOwn(key); ok {
			if e.getter != nil {
				return it.callFunction(e.getter, receiver, nil)
			}
			return e.value
		}
	}
	return undef
}

func (it *Interp) hasMember(o *Object, key string) bool {
	if (o.class == "Array" || o.class == "Arguments") && isArrayIndex(key) {
		i, _ := strconv.Atoi(key)
		return i < len(o.elems)
	}
	for p := o; p != nil; p = p.proto {
		if _, ok := p.getOwn(key); ok {
			return true
		}
	}
	return false
}

// setMember implements property assignment. Writes to primitives are
// silently dropped (sloppy mode).
func (it *Interp) setMember(v Value, key string, val Value) {
	it.step()
	switch x := v.(type) {
	case Undefined:
		it.throwError("TypeError", "cannot set properties of undefined")
	case Null:
		it.throwError("TypeError", "cannot set properties of null")
	case *Object:
		if x.frozen {
			return // sloppy mode: writes to frozen objects are ignored
		}
		if x.class == "Array" || x.class == "Arguments" {
			if key == "length" {
				n := int(it.toNumber(val))
				if n < 0 {
					it.throwError("RangeError", "invalid array length")
				}
				for len(x.elems) < n {
					x.elems = append(x.elems, undef)
				}
				x.elems = x.elems[:n]
				return
			}
			if isArrayIndex(key) {
				i, _ := strconv.Atoi(key)
				if i > 1<<24 {
					panic(&Abort{Feature: "budget.alloc", Detail: "array index too large"})
				}
				for len(x.elems) <= i {
					x.elems = append(x.elems, undef)
				}
				it.charge(1)
				x.elems[i] = val
				return
			}
		}
		// A setter anywhere on the chain intercepts the write; a data
		// property just shadows (own write below).
		for o := x; o != nil; o = o.proto {
			if e, ok := o.getOwn(key); ok {
				if e.getter != nil || e.setter != nil {
					if e.setter != nil {
						it.callFunction(e.setter, v, []Value{val})
					}
					return
				}
				break
			}
		}
		it.charge(1)
		x.setProp(key, val)
	}
}

// ---------------------------------------------------------------------------
// Classes
// ---------------------------------------------------------------------------

// superBinding is the hidden frame slot derived-class methods close over to
// reach their parent constructor; the % makes collision with a JS identifier
// impossible.
const superBinding = "%super%"

// superProto returns the parent class's prototype object for super member
// resolution, aborting if super appears outside a derived class.
func (it *Interp) superProto(e *env) *Object {
	sb, ok := e.lookup(superBinding)
	if !ok {
		it.unsupported("class-super", "super outside a derived class")
	}
	super := sb.value.(*Object)
	if pv, okk := super.getOwn("prototype"); okk {
		if po, ok3 := pv.value.(*Object); ok3 {
			return po
		}
	}
	return it.protos.objectProto
}

// currentThis resolves the lexical `this` of the executing method.
func (it *Interp) currentThis(e *env) Value {
	if b, ok := e.lookup("this"); ok {
		return b.value
	}
	return undef
}

func (it *Interp) evalClass(id *ast.Identifier, superClass ast.Node, body *ast.ClassBody, e *env) Value {
	var superCtor *Object
	if superClass != nil {
		sv := it.eval(superClass, e)
		so, ok := sv.(*Object)
		if !ok || !so.IsFunction() {
			it.throwError("TypeError", "class heritage is not a constructor")
		}
		superCtor = so
	}
	name := ""
	if id != nil {
		name = id.Name
	}
	// Methods of a derived class close over a frame that knows the parent
	// constructor, so `super(...)` and `super.m(...)` can resolve it.
	if superCtor != nil {
		e = newEnv(e, false)
		e.declare(superBinding, Value(superCtor), false)
	}

	var ctorDef *ast.MethodDefinition
	var fields []*ast.PropertyDefinition
	for _, m := range body.Body {
		if md, ok := m.(*ast.MethodDefinition); ok && md.Kind == "constructor" {
			ctorDef = md
		}
		if pd, ok := m.(*ast.PropertyDefinition); ok && !pd.Static {
			fields = append(fields, pd)
		}
	}

	var ctor *Object
	if ctorDef != nil {
		ctor = it.makeFunction(ctorDef.Value.Params, ctorDef.Value.Body, e, name, ctorDef.Value)
	} else {
		ctor = it.makeFunction(nil, &ast.BlockStatement{}, e, name, nil)
	}
	ctor.fn.classFields = fields

	protoVal, _ := ctor.getOwn("prototype")
	proto := protoVal.value.(*Object)

	if superCtor != nil {
		ctor.fn.superCtor = superCtor
		ctor.fn.implicitSuper = ctorDef == nil
		// Static members are inherited through the constructor chain, and
		// instances see parent methods through the prototype chain.
		ctor.proto = superCtor
		if spv, ok := superCtor.getOwn("prototype"); ok {
			if spo, okk := spv.value.(*Object); okk {
				proto.proto = spo
			}
		}
	}

	for _, m := range body.Body {
		switch md := m.(type) {
		case *ast.MethodDefinition:
			if md.Kind == "constructor" {
				continue
			}
			key := it.propertyKey(md.Key, md.Computed, e)
			fn := it.makeFunction(md.Value.Params, md.Value.Body, e, key, md.Value)
			target := proto
			if md.Static {
				target = ctor
			}
			switch md.Kind {
			case "get":
				target.setAccessor(key, fn, nil)
			case "set":
				target.setAccessor(key, nil, fn)
			default:
				target.setProp(key, Value(fn))
			}
		case *ast.PropertyDefinition:
			if !md.Static {
				continue
			}
			key := it.propertyKey(md.Key, md.Computed, e)
			var v Value = undef
			if md.Value != nil {
				v = it.eval(md.Value, e)
			}
			ctor.setProp(key, v)
		}
	}
	return Value(ctor)
}

// initClassFields evaluates instance field initializers on a freshly
// constructed object, before the constructor body runs.
func (it *Interp) initClassFields(fn *Object, self *Object) {
	for _, pd := range fn.fn.classFields {
		frame := newEnv(fn.fn.env, true)
		frame.declare("this", Value(self), false)
		key := it.propertyKey(pd.Key, pd.Computed, frame)
		var v Value = undef
		if pd.Value != nil {
			v = it.eval(pd.Value, frame)
		}
		self.setProp(key, v)
	}
}
